/**
 * @file
 * Experiment T1 — architecture capacity & simulator footprint
 * (Akopyan'15 Table I shape).
 *
 * For a sweep of chip sizes, reports the architectural capacity
 * (cores, neurons, synapses, axons, scheduler depth, packet bits)
 * plus the simulator-side cost: model bytes per core and chip build
 * time.  Crossbars are populated at 50% to measure realistic model
 * footprints.
 */

#include <chrono>
#include <iostream>

#include "chip/chip.hh"
#include "noc/packet.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace nscs;

namespace {

std::vector<CoreConfig>
populatedCores(uint32_t n, uint64_t seed)
{
    Xoshiro256 rng(seed);
    CoreGeometry geom;
    std::vector<CoreConfig> cores;
    cores.reserve(n);
    for (uint32_t c = 0; c < n; ++c) {
        CoreConfig cfg = CoreConfig::make(geom);
        for (uint32_t a = 0; a < geom.numAxons; ++a)
            for (uint32_t j = 0; j < geom.numNeurons; ++j)
                if (rng.chance(0.5))
                    cfg.connect(a, j);
        cores.push_back(std::move(cfg));
    }
    return cores;
}

} // namespace

int
main()
{
    std::cout <<
        "== T1: architecture capacity and simulator footprint ==\n"
        "(shape target: Akopyan'15 Table I; columns scale linearly\n"
        " in core count, packet stays 30 bits)\n\n";

    CoreGeometry geom;
    std::cout << "core geometry: " << geom.numAxons << " axons x "
              << geom.numNeurons << " neurons x " << geom.delaySlots
              << " delay slots; spike packet = "
              << packetWireBits() << " wire bits\n\n";

    TextTable t({"grid", "cores", "neurons", "synapses(50%)",
                 "axons", "bytes/core", "chip RAM", "build ms"});
    for (uint32_t side : {1u, 8u, 16u, 32u, 64u}) {
        uint32_t n = side * side;
        auto t0 = std::chrono::steady_clock::now();
        auto cores = populatedCores(n, 42);
        ChipParams cp;
        cp.width = side;
        cp.height = side;
        Chip chip(cp, std::move(cores));
        auto t1 = std::chrono::steady_clock::now();

        // synapseCount() is cached at crossbar construction, so this
        // sweep no longer rescans every bitmap per sample.
        uint64_t synapses = 0;
        for (uint32_t c = 0; c < chip.numCores(); ++c)
            synapses += chip.core(c).crossbar().synapseCount();
        size_t footprint = chip.footprintBytes();
        double ms = std::chrono::duration<double, std::milli>(
            t1 - t0).count();

        t.addRow({std::to_string(side) + "x" + std::to_string(side),
                  fmtInt(n),
                  fmtInt(static_cast<uint64_t>(n) * geom.numNeurons),
                  fmtInt(synapses),
                  fmtInt(static_cast<uint64_t>(n) * geom.numAxons),
                  fmtBytes(footprint / n),
                  fmtBytes(footprint),
                  fmtF(ms, 1)});
    }
    std::cout << t.str() << "\n";

    std::cout << "reference point: the published chip is 64x64 cores"
                 " = 4,096 cores, 1,048,576 neurons,\n268,435,456"
                 " synapse sites; the simulator reproduces the same"
                 " capacity in RAM.\n";
    return 0;
}
