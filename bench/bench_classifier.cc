/**
 * @file
 * Experiment T3 — classification applications (EEDN-style table).
 *
 * Trains a linear model per task, quantises it to the five on-chip
 * weight levels, deploys it through the full compile/place/route
 * tool flow and measures: accuracy (float host, quantised host,
 * on-chip spiking), spikes per inference, energy per inference and
 * latency.
 *
 * Expected shape: quantisation costs a few points of accuracy; the
 * spiking rate-coded inference tracks the quantised host decision;
 * energy per inference sits in the microjoule range at these sizes.
 *
 * Part 2 measures instance-batched inference throughput: the dense
 * digits model serving a fixed request stream at B ∈ {1, 4, 8, 16}
 * instance lanes.  B=1 is the serving model batching replaces — an
 * independent single-instance run (deploy + serve) per request;
 * B > 1 deploys once and serves B requests per (window + gap)-tick
 * pass through classifyBatch, so deployment and per-pass costs
 * amortise across the stream while per-lane evaluation work is
 * unchanged.  Results merge into BENCH_core.json as
 * "classifierWorkloads" (read-merge-rewrite, so bench_core's
 * sections survive) for the CI perf-smoke diff/trend.
 *
 * Usage: bench_classifier [requests-per-config] (default 64).
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>

#include "apps/classifier.hh"
#include "apps/dataset.hh"
#include "apps/trainer.hh"
#include "chip/chip.hh"
#include "util/json.hh"
#include "util/table.hh"

using namespace nscs;

namespace {

struct Task
{
    const char *name;
    Dataset data;
};

} // namespace

int
main(int argc, char **argv)
{
    uint32_t requests = 64;
    if (argc > 1)
        requests = static_cast<uint32_t>(std::stoul(argv[1]));

    std::cout <<
        "== T3: classification accuracy / energy table ==\n"
        "(synthetic stand-ins for the published vision tasks; the\n"
        " identical train->quantise->compile->run path is exercised)\n"
        "\n";

    std::vector<Task> tasks;
    tasks.push_back({"digits-8x8 (10c)",
                     makeGaussianDigits(10, 8, 40, 0.06, 101)});
    tasks.push_back({"digits-6x6 (4c)",
                     makeGaussianDigits(4, 6, 60, 0.08, 103)});
    tasks.push_back({"bars-8 (8c)", makeBars(8, 40, 0.05, 105)});

    TextTable t({"task", "float acc", "quant acc", "chip acc",
                 "spikes/inf", "uJ/inf", "ticks/inf"});

    for (Task &task : tasks) {
        Dataset train, test;
        task.data.split(5, train, test);
        LinearModel model = trainPerceptron(train, 12, 7);
        QuantizedModel qm = quantize(model);

        ClassifierOptions opt;
        opt.window = 64;
        SpikingClassifier clf(qm, opt);
        EvalResult res = clf.evaluate(test);

        t.addRow({task.name,
                  fmtF(100 * modelAccuracy(model, test), 1) + "%",
                  fmtF(100 * quantizedAccuracy(qm, test), 1) + "%",
                  fmtF(100 * res.accuracy, 1) + "%",
                  fmtInt(res.meanPerInference.inputSpikes +
                         res.meanPerInference.outputSpikes),
                  fmtF(res.meanPerInference.energyJ * 1e6, 3),
                  fmtInt(res.meanPerInference.ticks)});
    }
    std::cout << t.str() << "\n";

    std::cout <<
        "columns: float = host float argmax; quant = host argmax of\n"
        "the 5-level weights; chip = rate-coded spiking inference on\n"
        "the simulated chip (window 64 ticks + settle gap).\n";

    std::cout <<
        "\n== instance-batched inference throughput ==\n"
        "(dense digits-8x8 model; B replica lanes share one\n"
        " deployment, one request per lane per hardware pass)\n\n";

    Dataset tp_data = makeGaussianDigits(10, 8, 40, 0.06, 101);
    Dataset tp_train, tp_test;
    tp_data.split(5, tp_train, tp_test);
    LinearModel tp_model = trainPerceptron(tp_train, 12, 7);
    QuantizedModel tp_qm = quantize(tp_model);

    // Serve the same fixed request stream at every lane count.  The
    // B=1 baseline is the no-batching serving model the tentpole
    // replaces: each request is an independent single-instance run
    // — deploy the network, serve, tear down — exactly the
    // "thousands of small identical networks, one per request"
    // traffic shape.  B > 1 deploys once (inside the timed region,
    // amortised over the stream) and lanes requests through the
    // shared crossbars; the tail pass runs short when B does not
    // divide the stream.
    auto throughput = [&](uint32_t lanes) {
        ClassifierOptions opt;
        opt.window = 64;
        opt.instances = lanes;
        auto t0 = std::chrono::steady_clock::now();
        if (lanes == 1) {
            for (uint32_t r = 0; r < requests; ++r) {
                SpikingClassifier clf(tp_qm, opt);
                clf.classify(
                    tp_test.samples[r % tp_test.samples.size()]);
            }
        } else {
            SpikingClassifier clf(tp_qm, opt);
            std::vector<Sample> batch;
            uint32_t done = 0;
            while (done < requests) {
                uint32_t m = std::min(lanes, requests - done);
                batch.clear();
                for (uint32_t k = 0; k < m; ++k)
                    batch.push_back(
                        tp_test.samples[(done + k) %
                                        tp_test.samples.size()]);
                clf.classifyBatch(batch);
                done += m;
            }
        }
        auto t1 = std::chrono::steady_clock::now();
        double seconds =
            std::chrono::duration<double>(t1 - t0).count();
        return seconds > 0.0 ? requests / seconds : 0.0;
    };

    // One timing rep is hostage to scheduler noise on a shared
    // host: interleave the configurations across several reps and
    // keep each configuration's best rate.  Interleaving means a
    // slow phase (CPU steal, frequency dip) hits every lane count,
    // not whichever config happened to be running.
    const uint32_t lane_counts[] = {1, 4, 8, 16};
    constexpr int kReps = 3;
    double best[4] = {0.0, 0.0, 0.0, 0.0};
    for (int rep = 0; rep < kReps; ++rep)
        for (size_t li = 0; li < 4; ++li)
            best[li] = std::max(best[li], throughput(lane_counts[li]));

    // Occupancy diagnosis of the batching curve: serve the stream
    // once more per lane count on a persistent deployment (untimed)
    // and read back the chip's per-lane occupancy and fold-reuse
    // counters.  These are the numbers that say *why* the curve
    // bends: if active% and axons/slot are flat across B while
    // fold-reuse stays at zero (every lane carries a distinct
    // sample, so no two lanes share an active-axon pattern), then
    // per-lane integrate work grows linearly with B and the req/s
    // curve must flatten once the shared deployment and per-pass
    // scaffolding are amortised — a structural knee, not a
    // fast-path miss (which would show up as a low batched%).
    struct Occupancy
    {
        double activePct = 0.0;   //!< lane-ticks with any input
        double axonsPerSlot = 0.0;
        double foldReusePct = 0.0; //!< folds shared across lanes
        double batchedPct = 0.0;   //!< sops off the scalar path
        double axonWordPct = 0.0;  //!< of batched, via axon-word
    };
    Occupancy occ[4];
    for (size_t li = 0; li < 4; ++li) {
        const uint32_t lanes = lane_counts[li];
        ClassifierOptions opt;
        opt.window = 64;
        opt.instances = lanes;
        SpikingClassifier clf(tp_qm, opt);
        std::vector<Sample> batch;
        uint32_t done = 0;
        while (done < requests) {
            uint32_t m = std::min(lanes, requests - done);
            batch.clear();
            for (uint32_t k = 0; k < m; ++k)
                batch.push_back(
                    tp_test.samples[(done + k) %
                                    tp_test.samples.size()]);
            clf.classifyBatch(batch);
            done += m;
        }
        const Chip &chip = clf.simulator().chip();
        uint64_t slots = 0, axons = 0, reuses = 0;
        uint64_t sops = 0, sops_b = 0, sops_aw = 0, lane_ticks = 0;
        for (uint32_t c = 0; c < chip.numCores(); ++c) {
            const CoreCounters &cc = chip.core(c).counters();
            slots += cc.laneSlotsActive;
            axons += cc.laneActiveAxons;
            reuses += cc.planeReuses;
            sops += cc.sops;
            sops_b += cc.sopsBatched;
            sops_aw += cc.sopsAxonWord;
            lane_ticks += cc.ticksRun * lanes;
        }
        occ[li].activePct = lane_ticks
            ? 100.0 * static_cast<double>(slots) /
                static_cast<double>(lane_ticks)
            : 0.0;
        occ[li].axonsPerSlot = slots
            ? static_cast<double>(axons) / static_cast<double>(slots)
            : 0.0;
        occ[li].foldReusePct = slots
            ? 100.0 * static_cast<double>(reuses) /
                static_cast<double>(slots)
            : 0.0;
        occ[li].batchedPct = sops
            ? 100.0 * static_cast<double>(sops_b) /
                static_cast<double>(sops)
            : 0.0;
        occ[li].axonWordPct = sops_b
            ? 100.0 * static_cast<double>(sops_aw) /
                static_cast<double>(sops_b)
            : 0.0;
    }

    double base_rps = 0.0;
    TextTable tt({"workload", "lanes", "req/s", "speedup", "active%",
                  "axons/slot", "fold-reuse%", "batched%",
                  "axon-word%"});
    JsonValue classifier_workloads = JsonValue::array();
    for (size_t li = 0; li < 4; ++li) {
        const uint32_t lanes = lane_counts[li];
        double rps = best[li];
        if (lanes == 1)
            base_rps = rps;
        double speedup = base_rps > 0.0 ? rps / base_rps : 0.0;
        tt.addRow({"classifier-b" + std::to_string(lanes),
                   fmtInt(lanes), fmtF(rps, 1),
                   fmtF(speedup, 2) + "x", fmtF(occ[li].activePct, 1),
                   fmtF(occ[li].axonsPerSlot, 1),
                   fmtF(occ[li].foldReusePct, 1),
                   fmtF(occ[li].batchedPct, 1),
                   fmtF(occ[li].axonWordPct, 1)});

        JsonValue w = JsonValue::object();
        w.set("name", JsonValue::string(
            "classifier-b" + std::to_string(lanes)));
        w.set("requests", JsonValue::integer(requests));
        w.set("requestsPerSec", JsonValue::number(rps));
        // Field names the diff/trend tooling keys on: the batched
        // request rate plays the fast path, the B=1 rate the scalar
        // baseline, so "speedup" stays machine-independent.
        w.set("fastTicksPerSec", JsonValue::number(rps));
        w.set("scalarTicksPerSec", JsonValue::number(base_rps));
        w.set("speedup", JsonValue::number(speedup));
        w.set("laneActivePct", JsonValue::number(occ[li].activePct));
        w.set("axonsPerSlot", JsonValue::number(occ[li].axonsPerSlot));
        w.set("foldReusePct", JsonValue::number(occ[li].foldReusePct));
        w.set("batchedSopsPct", JsonValue::number(occ[li].batchedPct));
        w.set("axonWordSopsPct",
              JsonValue::number(occ[li].axonWordPct));
        classifier_workloads.append(std::move(w));
    }
    std::cout << tt.str();

    // Merge into BENCH_core.json without clobbering bench_core's
    // sections (whichever bench ran last rewrites the document).
    const std::string path = "BENCH_core.json";
    JsonValue doc;
    std::string text;
    bool merged = false;
    if (readFile(path, text)) {
        JsonParseResult parsed = parseJson(text);
        if (parsed.ok &&
            parsed.value.type() == JsonValue::Type::Object) {
            doc = std::move(parsed.value);
            merged = true;
        }
    }
    if (!merged) {
        doc = JsonValue::object();
        doc.set("bench", JsonValue::string("bench_classifier"));
    }
    doc.set("classifierWorkloads", std::move(classifier_workloads));
    if (writeFile(path, doc.dump(2) + "\n"))
        std::cout << "\n" << (merged ? "merged into " : "wrote ")
                  << path << "\n";
    else
        std::cerr << "\nfailed to write " << path << "\n";

    std::cout <<
        "\nshape target: requests/sec grows with the lane count —\n"
        ">= 2x aggregate throughput at B=8 vs 8 sequential\n"
        "single-instance runs (the B=1 row: one deployment per\n"
        "request, the serving model instance batching replaces —\n"
        "one shared deployment amortises compile + chip build and\n"
        "the per-pass tick scaffolding across all lanes).\n";
    return 0;
}
