/**
 * @file
 * Experiment T3 — classification applications (EEDN-style table).
 *
 * Trains a linear model per task, quantises it to the five on-chip
 * weight levels, deploys it through the full compile/place/route
 * tool flow and measures: accuracy (float host, quantised host,
 * on-chip spiking), spikes per inference, energy per inference and
 * latency.
 *
 * Expected shape: quantisation costs a few points of accuracy; the
 * spiking rate-coded inference tracks the quantised host decision;
 * energy per inference sits in the microjoule range at these sizes.
 */

#include <iostream>

#include "apps/classifier.hh"
#include "apps/dataset.hh"
#include "apps/trainer.hh"
#include "util/table.hh"

using namespace nscs;

namespace {

struct Task
{
    const char *name;
    Dataset data;
};

} // namespace

int
main()
{
    std::cout <<
        "== T3: classification accuracy / energy table ==\n"
        "(synthetic stand-ins for the published vision tasks; the\n"
        " identical train->quantise->compile->run path is exercised)\n"
        "\n";

    std::vector<Task> tasks;
    tasks.push_back({"digits-8x8 (10c)",
                     makeGaussianDigits(10, 8, 40, 0.06, 101)});
    tasks.push_back({"digits-6x6 (4c)",
                     makeGaussianDigits(4, 6, 60, 0.08, 103)});
    tasks.push_back({"bars-8 (8c)", makeBars(8, 40, 0.05, 105)});

    TextTable t({"task", "float acc", "quant acc", "chip acc",
                 "spikes/inf", "uJ/inf", "ticks/inf"});

    for (Task &task : tasks) {
        Dataset train, test;
        task.data.split(5, train, test);
        LinearModel model = trainPerceptron(train, 12, 7);
        QuantizedModel qm = quantize(model);

        ClassifierOptions opt;
        opt.window = 64;
        SpikingClassifier clf(qm, opt);
        EvalResult res = clf.evaluate(test);

        t.addRow({task.name,
                  fmtF(100 * modelAccuracy(model, test), 1) + "%",
                  fmtF(100 * quantizedAccuracy(qm, test), 1) + "%",
                  fmtF(100 * res.accuracy, 1) + "%",
                  fmtInt(res.meanPerInference.inputSpikes +
                         res.meanPerInference.outputSpikes),
                  fmtF(res.meanPerInference.energyJ * 1e6, 3),
                  fmtInt(res.meanPerInference.ticks)});
    }
    std::cout << t.str() << "\n";

    std::cout <<
        "columns: float = host float argmax; quant = host argmax of\n"
        "the 5-level weights; chip = rate-coded spiking inference on\n"
        "the simulated chip (window 64 ticks + settle gap).\n";
    return 0;
}
