/**
 * @file
 * Microbenchmark I3 — the core integrate phase.
 *
 * Drives a single 256x256 core through the dense tick pipeline under
 * three activity profiles and compares the scalar event-by-event
 * integrate path against the word-parallel batched one:
 *
 *  - dense:      every axon active every tick (the hardware's worst
 *                case and the fast path's best: long crossbar rows
 *                fold 64 columns per word op);
 *  - sparse:     5% of axons active per tick — below the adaptive
 *                engagement threshold, so the core stays on the
 *                scalar path and the row records the (absence of)
 *                dispatch overhead;
 *  - stochastic: dense activity with stochastic synapses on a
 *                quarter of the neurons, measuring the cost of the
 *                scalar fallback replay.
 *
 * Emits machine-readable BENCH_core.json (ticks/s, sops/s, fast-path
 * hit rate, speedup) so CI can record the bench trajectory; see the
 * perf-smoke step in .github/workflows.
 *
 * Usage: bench_core [ticks-per-run] (default 1000).
 */

#include <chrono>
#include <iostream>
#include <string>

#include "core/core.hh"
#include "util/json.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace nscs;

namespace {

struct WorkloadSpec
{
    const char *name;
    double axonRate;       //!< fraction of axons active per tick
    double stochRate;      //!< per-(neuron, type) stochastic odds
};

CoreConfig
buildCore(const WorkloadSpec &spec, uint64_t seed)
{
    Xoshiro256 rng(seed);
    CoreGeometry geom;  // default 256 x 256 x 16
    CoreConfig cfg = CoreConfig::make(geom);
    cfg.rngSeed = 0xBEEF;
    for (uint32_t a = 0; a < geom.numAxons; ++a) {
        cfg.axonType[a] = static_cast<uint8_t>(rng.below(4));
        for (uint32_t n = 0; n < geom.numNeurons; ++n)
            if (rng.chance(0.5))
                cfg.connect(a, n);
    }
    for (uint32_t n = 0; n < geom.numNeurons; ++n) {
        NeuronParams &p = cfg.neurons[n];
        // Small mixed-sign weights keep potentials off the rails so
        // the batched path is exercised (except where stochastic
        // synapses force the fallback).
        p.synWeight = {2, -1, 1, -2};
        for (unsigned g = 0; g < kNumAxonTypes; ++g)
            p.synStochastic[g] = rng.chance(spec.stochRate);
        p.threshold = 2000;
        p.negThreshold = 2000;
    }
    return cfg;
}

struct RunResult
{
    double seconds = 0.0;
    uint64_t sops = 0;
    uint64_t sopsBatched = 0;
    uint64_t ticks = 0;
};

RunResult
runCore(const CoreConfig &cfg, const WorkloadSpec &spec,
        uint64_t ticks, bool word_parallel)
{
    Core core(cfg);
    core.setWordParallel(word_parallel);
    const uint32_t num_axons = cfg.geom.numAxons;
    Xoshiro256 input_rng(7);
    std::vector<uint32_t> fired;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t t = 0; t < ticks; ++t) {
        if (spec.axonRate >= 1.0) {
            for (uint32_t a = 0; a < num_axons; ++a)
                core.deposit(t, a);
        } else {
            for (uint32_t a = 0; a < num_axons; ++a)
                if (input_rng.chance(spec.axonRate))
                    core.deposit(t, a);
        }
        fired.clear();
        core.tickDense(t, fired);
    }
    auto t1 = std::chrono::steady_clock::now();
    RunResult r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.sops = core.counters().sops;
    r.sopsBatched = core.counters().sopsBatched;
    r.ticks = ticks;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t ticks = 1000;
    if (argc > 1)
        ticks = std::stoull(argv[1]);

    std::cout <<
        "== I3: integrate-phase microbenchmark ==\n"
        "(single 256x256 core, 50% crossbar, dense tick pipeline;\n"
        " scalar event-by-event vs word-parallel batched integrate)\n\n";

    const WorkloadSpec specs[] = {
        {"dense", 1.0, 0.0},
        {"sparse", 0.05, 0.0},
        {"stochastic", 1.0, 0.25},
    };

    TextTable t({"workload", "path", "ticks/s", "Msops/s",
                 "hit rate", "speedup"});
    JsonValue workloads = JsonValue::array();

    for (const WorkloadSpec &spec : specs) {
        CoreConfig cfg = buildCore(spec, 1234);
        RunResult scalar = runCore(cfg, spec, ticks, false);
        RunResult fast = runCore(cfg, spec, ticks, true);

        auto tps = [](const RunResult &r) {
            return r.seconds > 0 ? r.ticks / r.seconds : 0.0;
        };
        auto sps = [](const RunResult &r) {
            return r.seconds > 0 ? r.sops / r.seconds : 0.0;
        };
        double hit = fast.sops
            ? static_cast<double>(fast.sopsBatched) / fast.sops : 0.0;
        double speedup = fast.seconds > 0
            ? scalar.seconds / fast.seconds : 0.0;

        t.addRow({spec.name, "scalar", fmtF(tps(scalar), 0),
                  fmtF(sps(scalar) / 1e6, 1), "-", "1.00x"});
        t.addRow({spec.name, "word-par", fmtF(tps(fast), 0),
                  fmtF(sps(fast) / 1e6, 1), fmtF(hit * 100, 1) + "%",
                  fmtF(speedup, 2) + "x"});
        t.addRule();

        JsonValue w = JsonValue::object();
        w.set("name", JsonValue::string(spec.name));
        w.set("ticks", JsonValue::integer(static_cast<int64_t>(ticks)));
        w.set("sops", JsonValue::integer(
            static_cast<int64_t>(fast.sops)));
        w.set("scalarTicksPerSec", JsonValue::number(tps(scalar)));
        w.set("fastTicksPerSec", JsonValue::number(tps(fast)));
        w.set("scalarSopsPerSec", JsonValue::number(sps(scalar)));
        w.set("fastSopsPerSec", JsonValue::number(sps(fast)));
        w.set("fastPathHitRate", JsonValue::number(hit));
        w.set("speedup", JsonValue::number(speedup));
        workloads.append(std::move(w));
    }
    std::cout << t.str();

    JsonValue doc = JsonValue::object();
    doc.set("bench", JsonValue::string("bench_core"));
    doc.set("geometry", JsonValue::string("256x256x16"));
    doc.set("workloads", std::move(workloads));
    const std::string path = "BENCH_core.json";
    if (writeFile(path, doc.dump(2) + "\n"))
        std::cout << "\nwrote " << path << "\n";
    else
        std::cerr << "\nfailed to write " << path << "\n";

    std::cout <<
        "\nshape target: >= 1.5x integrate throughput on the dense\n"
        "workload with a ~100% hit rate; the sparse workload stays\n"
        "near 1.0x (adaptive gate holds the scalar path); the\n"
        "stochastic workload bounds the fallback replay overhead.\n";
    return 0;
}
