/**
 * @file
 * Microbenchmark I3 — the core integrate and update phases.
 *
 * Part 1 drives a single 256x256 core through the dense tick
 * pipeline under four activity profiles and compares the scalar
 * event-by-event integrate path against the batched fast paths
 * (axon-word for lightly populated slots, word-parallel above the
 * calibrated crossover):
 *
 *  - dense:        every axon active every tick (the hardware's
 *                  worst case and the word-parallel path's best:
 *                  long crossbar rows fold 64 columns per word op);
 *  - sparse:       5% of axons active per tick (~13 rows) — around
 *                  the axon-word/word-parallel crossover, measuring
 *                  the calibrated three-way gate;
 *  - sparse-event: 2% of axons active per tick (~5 rows) — squarely
 *                  in event-driven territory, measuring the
 *                  axon-word path against per-event scalar walks;
 *  - stochastic:   dense activity with stochastic synapses on a
 *                  quarter of the neurons, measuring the pre-drawn
 *                  outcome batching (LFSR draws stay in
 *                  architectural order).
 *
 * Part 2 isolates the end-of-tick update phase (leak, threshold,
 * fire, reset — the architectural steady-state cost: every neuron,
 * every tick) by running input-free dense ticks and comparing the
 * scalar endOfTickUpdate loop against the batched SoA kernel:
 *
 *  - update-homog: homogeneous deterministic population (the whole
 *                  core is one flat kernel run);
 *  - update-mixed: a quarter of the neurons draw per tick
 *                  (stochastic leak/threshold), bounding the cost of
 *                  the cohort split and scalar interleave.
 *
 * Part 3 measures the board-comms fast path end to end: a
 * 32-population pacemaker ring (mixed fast/slow firing, so measured
 * traffic diverges from the compiler's estimate) compiled onto a 4x4
 * board with a tight per-link packet budget.  The baseline runs the
 * estimate-placed model with XY routing and one packet per spike; the
 * fast configuration re-compiles with a traced traffic profile
 * (profile-guided placement), routes over the congestion-aware table
 * built from the same profile, and coalesces same-destination spikes
 * into multi-spike packets.  Spike semantics are identical machinery
 * (same merge phase, same delivery order contract); only the packet
 * count and link scheduling change, so the wall-clock ratio is the
 * fabric overhead the fast path removes.
 *
 * Emits machine-readable BENCH_core.json (ticks/s, sops/s, fast-path
 * hit rate, speedup) so CI can record the bench trajectory; see the
 * perf-smoke step in .github/workflows and tools/nscs_bench_diff.
 *
 * Usage: bench_core [ticks-per-run] (default 1000).
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>

#include "board/board.hh"
#include "board/traffic.hh"
#include "core/core.hh"
#include "prog/compiler.hh"
#include "runtime/simulator.hh"
#include "util/json.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/table.hh"

using namespace nscs;

namespace {

struct WorkloadSpec
{
    const char *name;
    double axonRate;       //!< fraction of axons active per tick
    double stochRate;      //!< per-(neuron, type) stochastic odds
};

CoreConfig
buildCore(const WorkloadSpec &spec, uint64_t seed)
{
    Xoshiro256 rng(seed);
    CoreGeometry geom;  // default 256 x 256 x 16
    CoreConfig cfg = CoreConfig::make(geom);
    cfg.rngSeed = 0xBEEF;
    for (uint32_t a = 0; a < geom.numAxons; ++a) {
        cfg.axonType[a] = static_cast<uint8_t>(rng.below(4));
        for (uint32_t n = 0; n < geom.numNeurons; ++n)
            if (rng.chance(0.5))
                cfg.connect(a, n);
    }
    for (uint32_t n = 0; n < geom.numNeurons; ++n) {
        NeuronParams &p = cfg.neurons[n];
        // Small mixed-sign weights keep potentials off the rails so
        // the batched path is exercised (except where stochastic
        // synapses force the fallback).
        p.synWeight = {2, -1, 1, -2};
        for (unsigned g = 0; g < kNumAxonTypes; ++g)
            p.synStochastic[g] = rng.chance(spec.stochRate);
        p.threshold = 2000;
        p.negThreshold = 2000;
    }
    return cfg;
}

struct RunResult
{
    double seconds = 0.0;
    uint64_t sops = 0;
    uint64_t sopsBatched = 0;
    uint64_t ticks = 0;
};

/**
 * Update-phase workload: no input spikes, so tickDense is purely the
 * end-of-tick update loop.  @p stoch_rate neurons draw per tick and
 * keep the scalar cohort busy.
 */
CoreConfig
buildUpdateCore(double stoch_rate, uint64_t seed)
{
    Xoshiro256 rng(seed);
    CoreGeometry geom;  // default 256 x 256 x 16
    CoreConfig cfg = CoreConfig::make(geom);
    cfg.rngSeed = 0xFACE;
    for (uint32_t n = 0; n < geom.numNeurons; ++n) {
        NeuronParams &p = cfg.neurons[n];
        p.leak = static_cast<int16_t>(-1 - (n % 3));
        p.threshold = 40;
        p.negThreshold = 300;
        p.resetMode = static_cast<ResetMode>(n % 3);
        p.resetPotential = -20;
        p.initialPotential = static_cast<int32_t>(rng.range(-200, 200));
        if (rng.chance(stoch_rate)) {
            // Per-tick draws: stochastic leak or threshold mask.
            if (rng.chance(0.5))
                p.leakStochastic = true;
            else
                p.thresholdMaskBits = 3;
        }
    }
    return cfg;
}

struct UpdateRunResult
{
    double seconds = 0.0;
    uint64_t evals = 0;
    uint64_t evalsBatched = 0;
    uint64_t ticks = 0;
};

UpdateRunResult
runUpdate(const CoreConfig &cfg, uint64_t ticks, bool batched)
{
    Core core(cfg);
    core.setWordParallelUpdate(batched);
    std::vector<uint32_t> fired;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t t = 0; t < ticks; ++t) {
        fired.clear();
        core.tickDense(t, fired);
    }
    auto t1 = std::chrono::steady_clock::now();
    UpdateRunResult r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.evals = core.counters().evals;
    r.evalsBatched = core.counters().evalsBatched;
    r.ticks = ticks;
    return r;
}

RunResult
runCore(const CoreConfig &cfg, const WorkloadSpec &spec,
        uint64_t ticks, bool word_parallel)
{
    Core core(cfg);
    core.setWordParallel(word_parallel);
    const uint32_t num_axons = cfg.geom.numAxons;
    Xoshiro256 input_rng(7);
    std::vector<uint32_t> fired;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t t = 0; t < ticks; ++t) {
        if (spec.axonRate >= 1.0) {
            for (uint32_t a = 0; a < num_axons; ++a)
                core.deposit(t, a);
        } else {
            for (uint32_t a = 0; a < num_axons; ++a)
                if (input_rng.chance(spec.axonRate))
                    core.deposit(t, a);
        }
        fired.clear();
        core.tickDense(t, fired);
    }
    auto t1 = std::chrono::steady_clock::now();
    RunResult r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.sops = core.counters().sops;
    r.sopsBatched = core.counters().sopsBatched;
    r.ticks = ticks;
    return r;
}

/** Part 3 fabric shape: a 4x4 chip board, two cores per chip. */
constexpr uint32_t kBoardW = 4;
constexpr uint32_t kBoardH = 4;
constexpr uint32_t kGridW = 8;
constexpr uint32_t kGridH = 4;
constexpr uint32_t kRingPops = 32;

/**
 * Part 3 network: a ring of 32 single-core pacemaker populations,
 * pop i driving pop i+1 one-to-one with weight-0 synapses (traffic
 * without recurrent dynamics).  Every other population is slow
 * (period 16); the rest fire every tick.  To the compiler's per-dest
 * estimate all 32 ring edges look identical, so its placement cuts
 * the 16 fast edges at the two-core chip boundaries (4096 crossing
 * spikes/tick); a trace shows the slow-sourced edges carry 16x less
 * volume, and the profile-guided pass re-partitions the ring into
 * {fast, fast-fed} pairs whose boundaries are all slow edges
 * (256 crossing spikes/tick).
 */
CompiledModel
buildBoardModel(std::shared_ptr<const TrafficProfile> profile)
{
    Network net;
    NeuronParams pace;
    pace.synWeight = {0, 0, 0, 0};
    pace.leak = 1;
    pace.resetMode = ResetMode::Store;
    std::vector<PopId> pops;
    for (uint32_t i = 0; i < kRingPops; ++i) {
        pace.threshold = i % 2 == 0 ? 16 : 1;
        pops.push_back(net.addPopulation("ring" + std::to_string(i),
                                         256, pace));
    }
    for (uint32_t i = 0; i < kRingPops; ++i)
        net.connectOneToOne(pops[i], pops[(i + 1) % kRingPops], 0, 1);

    CompileOptions opt;
    opt.gridWidth = kGridW;
    opt.gridHeight = kGridH;
    opt.boardWidth = kBoardW;
    opt.boardHeight = kBoardH;
    opt.placement = PlacementPolicy::Anneal;
    opt.trafficProfile = std::move(profile);
    return compile(net, opt);
}

struct BoardRunResult
{
    double seconds = 0.0;
    BoardCounters counters;
};

/**
 * Deploy @p model on the 4x4 board under a tight link budget and run
 * it.  @p routes switches XY to the congestion-aware table,
 * @p coalesce is the packets-per-destination batching cap, and a
 * non-null @p profile_out turns on traffic tracing and harvests the
 * measured profile after the run.
 */
BoardRunResult
runBoard(const CompiledModel &model, uint64_t ticks,
         std::shared_ptr<const TrafficProfile> routes,
         uint32_t coalesce, TrafficProfile *profile_out)
{
    BoardParams bp;
    bp.width = kBoardW;
    bp.height = kBoardH;
    bp.chip.width = model.gridWidth / kBoardW;
    bp.chip.height = model.gridHeight / kBoardH;
    bp.chip.coreGeom = model.geom;
    bp.chip.engine = EngineKind::Event;
    // Budget-limited fabric: a hot ring edge emits 256 spikes/tick,
    // so one-packet-per-spike overruns the budget (stalls, then
    // drops) while 16-spike coalesced packets ride well under it.
    bp.link.packetsPerTick = 64;
    bp.link.queueCapacity = 512;
    bp.link.coalesce = coalesce;
    bp.trafficProfile = std::move(routes);
    bp.traceTraffic = profile_out != nullptr;
    Simulator sim(bp, model.cores);
    auto t0 = std::chrono::steady_clock::now();
    sim.run(ticks);
    auto t1 = std::chrono::steady_clock::now();
    BoardRunResult r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.counters = sim.board().counters();
    if (profile_out)
        *profile_out = sim.board().trafficProfile();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t ticks = 1000;
    if (argc > 1)
        ticks = std::stoull(argv[1]);

    std::cout <<
        "== I3: integrate-phase microbenchmark ==\n"
        "(single 256x256 core, 50% crossbar, dense tick pipeline;\n"
        " scalar event-by-event vs batched integrate, SIMD level: "
        << simd::levelName(simd::activeLevel()) << ")\n\n";

    const WorkloadSpec specs[] = {
        {"dense", 1.0, 0.0},
        {"sparse", 0.05, 0.0},
        {"sparse-event", 0.02, 0.0},
        {"stochastic", 1.0, 0.25},
    };

    TextTable t({"workload", "path", "ticks/s", "Msops/s",
                 "hit rate", "speedup"});
    JsonValue workloads = JsonValue::array();

    for (const WorkloadSpec &spec : specs) {
        CoreConfig cfg = buildCore(spec, 1234);
        RunResult scalar = runCore(cfg, spec, ticks, false);
        RunResult fast = runCore(cfg, spec, ticks, true);

        auto tps = [](const RunResult &r) {
            return r.seconds > 0 ? r.ticks / r.seconds : 0.0;
        };
        auto sps = [](const RunResult &r) {
            return r.seconds > 0 ? r.sops / r.seconds : 0.0;
        };
        double hit = fast.sops
            ? static_cast<double>(fast.sopsBatched) / fast.sops : 0.0;
        double speedup = fast.seconds > 0
            ? scalar.seconds / fast.seconds : 0.0;

        t.addRow({spec.name, "scalar", fmtF(tps(scalar), 0),
                  fmtF(sps(scalar) / 1e6, 1), "-", "1.00x"});
        t.addRow({spec.name, "word-par", fmtF(tps(fast), 0),
                  fmtF(sps(fast) / 1e6, 1), fmtF(hit * 100, 1) + "%",
                  fmtF(speedup, 2) + "x"});
        t.addRule();

        JsonValue w = JsonValue::object();
        w.set("name", JsonValue::string(spec.name));
        w.set("ticks", JsonValue::integer(static_cast<int64_t>(ticks)));
        w.set("sops", JsonValue::integer(
            static_cast<int64_t>(fast.sops)));
        w.set("scalarTicksPerSec", JsonValue::number(tps(scalar)));
        w.set("fastTicksPerSec", JsonValue::number(tps(fast)));
        w.set("scalarSopsPerSec", JsonValue::number(sps(scalar)));
        w.set("fastSopsPerSec", JsonValue::number(sps(fast)));
        w.set("fastPathHitRate", JsonValue::number(hit));
        w.set("speedup", JsonValue::number(speedup));
        workloads.append(std::move(w));
    }
    std::cout << t.str();

    std::cout <<
        "\n== update-phase microbenchmark ==\n"
        "(input-free dense ticks: leak/threshold/fire/reset only;\n"
        " scalar endOfTickUpdate loop vs batched SoA kernel)\n\n";

    struct UpdateSpec
    {
        const char *name;
        double stochRate;
    };
    const UpdateSpec update_specs[] = {
        {"update-homog", 0.0},
        {"update-mixed", 0.25},
    };
    const uint64_t update_ticks = ticks * 20;

    TextTable ut({"workload", "path", "ticks/s", "Mevals/s",
                  "batched", "speedup"});
    JsonValue update_workloads = JsonValue::array();

    for (const UpdateSpec &spec : update_specs) {
        CoreConfig cfg = buildUpdateCore(spec.stochRate, 99);
        UpdateRunResult scalar = runUpdate(cfg, update_ticks, false);
        UpdateRunResult fast = runUpdate(cfg, update_ticks, true);

        auto tps = [](const UpdateRunResult &r) {
            return r.seconds > 0 ? r.ticks / r.seconds : 0.0;
        };
        auto eps = [](const UpdateRunResult &r) {
            return r.seconds > 0 ? r.evals / r.seconds : 0.0;
        };
        double batched_share = fast.evals
            ? static_cast<double>(fast.evalsBatched) / fast.evals : 0.0;
        double speedup = fast.seconds > 0
            ? scalar.seconds / fast.seconds : 0.0;

        ut.addRow({spec.name, "scalar", fmtF(tps(scalar), 0),
                   fmtF(eps(scalar) / 1e6, 1), "-", "1.00x"});
        ut.addRow({spec.name, "batched", fmtF(tps(fast), 0),
                   fmtF(eps(fast) / 1e6, 1),
                   fmtF(batched_share * 100, 1) + "%",
                   fmtF(speedup, 2) + "x"});
        ut.addRule();

        JsonValue w = JsonValue::object();
        w.set("name", JsonValue::string(spec.name));
        w.set("ticks", JsonValue::integer(
            static_cast<int64_t>(update_ticks)));
        w.set("evals", JsonValue::integer(
            static_cast<int64_t>(fast.evals)));
        w.set("scalarTicksPerSec", JsonValue::number(tps(scalar)));
        w.set("fastTicksPerSec", JsonValue::number(tps(fast)));
        w.set("scalarEvalsPerSec", JsonValue::number(eps(scalar)));
        w.set("fastEvalsPerSec", JsonValue::number(eps(fast)));
        w.set("batchedShare", JsonValue::number(batched_share));
        w.set("speedup", JsonValue::number(speedup));
        update_workloads.append(std::move(w));
    }
    std::cout << ut.str();

    std::cout <<
        "\n== board-comms macro-benchmark ==\n"
        "(32-population pacemaker ring on a 4x4 board, 64-packet\n"
        " link budget; estimate placement + XY routes + one packet\n"
        " per spike vs traced-profile placement + congestion-aware\n"
        " routes + 16-spike packet coalescing)\n\n";

    const uint64_t board_ticks = std::max<uint64_t>(ticks / 2, 50);
    const uint32_t board_coalesce = 16;

    // Trace run (untimed): measure the ring's real traffic under the
    // estimate-guided placement, then recompile with the profile.
    CompiledModel base_model = buildBoardModel(nullptr);
    auto profile = std::make_shared<TrafficProfile>();
    runBoard(base_model, board_ticks, nullptr, 0, profile.get());
    CompiledModel fast_model = buildBoardModel(profile);

    BoardRunResult base =
        runBoard(base_model, board_ticks, nullptr, 0, nullptr);
    BoardRunResult fast = runBoard(fast_model, board_ticks, profile,
                                   board_coalesce, nullptr);

    auto btps = [](const BoardRunResult &r) {
        return r.seconds > 0
            ? static_cast<double>(r.counters.ticks) / r.seconds
            : 0.0;
    };
    double board_speedup =
        fast.seconds > 0 ? base.seconds / fast.seconds : 0.0;
    auto occupancy = [](const BoardRunResult &r) {
        return r.counters.fabricPackets
            ? static_cast<double>(r.counters.egressSpikes) /
                static_cast<double>(r.counters.fabricPackets)
            : 0.0;
    };

    TextTable bt({"config", "ticks/s", "egress spikes", "packets",
                  "spikes/pkt", "stalls", "drops", "speedup"});
    bt.addRow({"baseline", fmtF(btps(base), 0),
               fmtInt(base.counters.egressSpikes),
               fmtInt(base.counters.fabricPackets),
               fmtF(occupancy(base), 2),
               fmtInt(base.counters.linkStalls),
               fmtInt(base.counters.linkDrops), "1.00x"});
    bt.addRow({"fast path", fmtF(btps(fast), 0),
               fmtInt(fast.counters.egressSpikes),
               fmtInt(fast.counters.fabricPackets),
               fmtF(occupancy(fast), 2),
               fmtInt(fast.counters.linkStalls),
               fmtInt(fast.counters.linkDrops),
               fmtF(board_speedup, 2) + "x"});
    std::cout << bt.str();
    std::cout << "\nprofile-guided placement: "
              << (fast_model.stats.profileGuided ? "yes" : "no")
              << " (baseline cost " << fmtF(base_model.stats.placementCost, 0)
              << ", fast cost " << fmtF(fast_model.stats.placementCost, 0)
              << ")\n";

    JsonValue board_workloads = JsonValue::array();
    {
        JsonValue w = JsonValue::object();
        w.set("name", JsonValue::string("board-comms"));
        w.set("ticks", JsonValue::integer(
            static_cast<int64_t>(board_ticks)));
        w.set("scalarTicksPerSec", JsonValue::number(btps(base)));
        w.set("fastTicksPerSec", JsonValue::number(btps(fast)));
        w.set("speedup", JsonValue::number(board_speedup));
        w.set("baselinePackets", JsonValue::integer(
            static_cast<int64_t>(base.counters.fabricPackets)));
        w.set("fastPackets", JsonValue::integer(
            static_cast<int64_t>(fast.counters.fabricPackets)));
        w.set("packetsCoalesced", JsonValue::integer(
            static_cast<int64_t>(fast.counters.packetsCoalesced)));
        w.set("baselineStalls", JsonValue::integer(
            static_cast<int64_t>(base.counters.linkStalls)));
        w.set("fastStalls", JsonValue::integer(
            static_cast<int64_t>(fast.counters.linkStalls)));
        w.set("payloadOccupancy", JsonValue::number(occupancy(fast)));
        w.set("profileGuided",
              JsonValue::boolean(fast_model.stats.profileGuided));
        board_workloads.append(std::move(w));
    }

    JsonValue doc = JsonValue::object();
    doc.set("bench", JsonValue::string("bench_core"));
    doc.set("geometry", JsonValue::string("256x256x16"));
    doc.set("simdLevel",
            JsonValue::string(simd::levelName(simd::activeLevel())));
    doc.set("workloads", std::move(workloads));
    doc.set("updateWorkloads", std::move(update_workloads));
    doc.set("boardWorkloads", std::move(board_workloads));
    const std::string path = "BENCH_core.json";
    if (writeFile(path, doc.dump(2) + "\n"))
        std::cout << "\nwrote " << path << "\n";
    else
        std::cerr << "\nfailed to write " << path << "\n";

    std::cout <<
        "\nshape target: >= 1.5x integrate throughput on the dense\n"
        "workload with a ~100% hit rate; sparse and sparse-event\n"
        ">= 1.5x via the axon-word path; stochastic >= 1.5x via\n"
        "pre-drawn outcome batching.  update phase: >= 1.5x ticks/s\n"
        "on update-homog with 100% batched share; update-mixed\n"
        "bounds the cohort-split cost.  board-comms: >= 1.5x\n"
        "aggregate throughput from coalescing + profile-guided\n"
        "placement + congestion-aware routing over the\n"
        "one-packet-per-spike/XY baseline.\n";
    return 0;
}
