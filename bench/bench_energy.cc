/**
 * @file
 * Experiment T2 — energy breakdown at the nominal operating point
 * (Merolla'14 / SC'14 headline numbers' shape).
 *
 * Runs the cortical workload at the published nominal point (20 Hz
 * mean rate, 128 synapses per spike), prints the energy
 * decomposition, effective energy per synaptic event and GSOPS/W,
 * both for the simulated 16x16 chip and linearly scaled to 64x64.
 */

#include <iostream>

#include "bench/workload.hh"
#include "util/table.hh"

using namespace nscs;
using namespace nscs::bench;

namespace {

void
report(const char *label, const EnergyEvents &e,
       const EnergyParams &ep)
{
    EnergyBreakdown b = computeEnergy(e, ep);
    double window = static_cast<double>(e.ticks) * ep.tickSeconds;
    double power = averagePowerW(b, e, ep);
    double sops_s = static_cast<double>(e.sops) / window;

    std::cout << label << ":\n";
    TextTable t({"component", "energy(uJ)", "share(%)"});
    struct Row { const char *name; double j; };
    const Row rows[] = {
        {"leakage", b.leakageJ},
        {"synaptic events", b.sopJ},
        {"neuron updates", b.neuronJ},
        {"spike generation", b.spikeJ},
        {"interconnect hops", b.hopJ},
    };
    for (const Row &r : rows)
        t.addRow({r.name, fmtF(r.j * 1e6, 3),
                  fmtF(100.0 * r.j / b.totalJ(), 1)});
    t.addRule();
    t.addRow({"total", fmtF(b.totalJ() * 1e6, 3), "100.0"});
    std::cout << t.str();
    std::cout << "  mean power        : " << fmtF(power * 1e3, 2)
              << " mW\n";
    std::cout << "  SOP rate          : " << fmtSi(sops_s, "SOPs/s")
              << "\n";
    std::cout << "  energy per SOP    : "
              << fmtF(energyPerSopJ(b, e) * 1e12, 1) << " pJ\n";
    std::cout << "  efficiency        : "
              << fmtF(sops_s / power / 1e9, 1) << " GSOPS/W\n\n";
}

} // namespace

int
main()
{
    std::cout <<
        "== T2: energy breakdown at the nominal operating point ==\n"
        "(shape target: tens of mW total at 20 Hz / 128 density;\n"
        " ~26 pJ/SOP; tens of GSOPS/W)\n\n";

    CorticalParams wp;
    wp.gridW = wp.gridH = 16;
    wp.density = 128;
    wp.ratePerTick = 0.02;  // 20 Hz at 1 ms ticks
    wp.seed = 11;
    CorticalWorkload w = makeCortical(wp);
    auto sim = makeCorticalSim(w, EngineKind::Event);
    sim->run(500);

    EnergyEvents e = sim->chip().energyEvents();
    const EnergyParams &ep = sim->chip().params().energy;
    report("simulated 16x16-core chip (500 ticks)", e, ep);

    EnergyEvents big = e;
    big.cores = 4096;
    big.neurons = e.neurons * 16;
    big.sops = e.sops * 16;
    big.spikes = e.spikes * 16;
    big.hops = e.hops * 16 * 2;  // longer mean paths at 64x64
    report("linear scale-out to the 64x64-core chip", big, ep);

    return 0;
}
