/**
 * @file
 * Ablation A2 — execution-engine comparison.
 *
 * The event-driven engine skips cores with no parked spikes, no due
 * self-events and no per-tick-stochastic neurons, catching skipped
 * neurons up with the closed-form leak fast-forward.  Sweeps the
 * activity level at a fixed chip size and reports the wall-clock
 * advantage and the evaluation counts that explain it.
 *
 * Expected shape: the event engine's advantage is largest at sparse
 * activity and erodes as every core becomes busy every tick.
 */

#include <iostream>

#include "bench/workload.hh"
#include "util/table.hh"

using namespace nscs;
using namespace nscs::bench;

int
main()
{
    std::cout <<
        "== A2: clock vs event execution engines ==\n"
        "(shape target: event >> clock at sparse activity;\n"
        " advantage shrinks with load)\n\n";

    const uint64_t ticks = 100;

    TextTable t({"rate(Hz)", "engine", "ticks/s", "neuron evals",
                 "core activations", "speedup"});

    for (double rate : {0.0001, 0.001, 0.01, 0.05, 0.1}) {
        double clock_tps = 0;
        for (EngineKind ek : {EngineKind::Clock, EngineKind::Event}) {
            CorticalParams wp;
            wp.gridW = wp.gridH = 16;
            wp.density = 128;
            wp.ratePerTick = rate;
            wp.seed = 9;
            CorticalWorkload w = makeCortical(wp);
            auto sim = makeCorticalSim(w, ek);
            RunPerf perf = sim->run(ticks);

            uint64_t evals = 0;
            for (uint32_t c = 0; c < sim->chip().numCores(); ++c)
                evals += sim->chip().core(c).counters().evals;
            double tps = perf.ticksPerSecond();
            if (ek == EngineKind::Clock)
                clock_tps = tps;
            t.addRow({fmtF(rate * 1000, 2),
                      ek == EngineKind::Clock ? "clock" : "event",
                      fmtF(tps, 1),
                      fmtInt(evals),
                      fmtInt(sim->chip().counters().coreActivations),
                      fmtF(tps / clock_tps, 2) + "x"});
        }
        t.addRule();
    }
    std::cout << t.str();
    return 0;
}
