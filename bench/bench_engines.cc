/**
 * @file
 * Ablation A2 — execution-engine comparison.
 *
 * The event-driven engine skips cores with no parked spikes, no due
 * self-events and no per-tick-stochastic neurons, catching skipped
 * neurons up with the closed-form leak fast-forward.  Sweeps the
 * activity level at a fixed chip size and reports the wall-clock
 * advantage and the evaluation counts that explain it.
 *
 * Expected shape: the event engine's advantage is largest at sparse
 * activity and erodes as every core becomes busy every tick.
 *
 * A second sweep compares the serial tick engine against the
 * multi-threaded one (Chip::tickParallel) on a 64-core chip at busy
 * activity, where per-tick evaluation dominates and parallel core
 * evaluation pays off.  Spike output is bit-identical by
 * construction; only wall clock changes.
 */

#include <iostream>

#include "bench/workload.hh"
#include "util/table.hh"

using namespace nscs;
using namespace nscs::bench;

int
main()
{
    std::cout <<
        "== A2: clock vs event execution engines ==\n"
        "(shape target: event >> clock at sparse activity;\n"
        " advantage shrinks with load)\n\n";

    const uint64_t ticks = 100;

    TextTable t({"rate(Hz)", "engine", "ticks/s", "neuron evals",
                 "core activations", "speedup"});

    for (double rate : {0.0001, 0.001, 0.01, 0.05, 0.1}) {
        double clock_tps = 0;
        for (EngineKind ek : {EngineKind::Clock, EngineKind::Event}) {
            CorticalParams wp;
            wp.gridW = wp.gridH = 16;
            wp.density = 128;
            wp.ratePerTick = rate;
            wp.seed = 9;
            CorticalWorkload w = makeCortical(wp);
            auto sim = makeCorticalSim(w, ek);
            RunPerf perf = sim->run(ticks);

            uint64_t evals = 0;
            for (uint32_t c = 0; c < sim->chip().numCores(); ++c)
                evals += sim->chip().core(c).counters().evals;
            double tps = perf.ticksPerSecond();
            if (ek == EngineKind::Clock)
                clock_tps = tps;
            t.addRow({fmtF(rate * 1000, 2),
                      ek == EngineKind::Clock ? "clock" : "event",
                      fmtF(tps, 1),
                      fmtInt(evals),
                      fmtInt(sim->chip().counters().coreActivations),
                      fmtF(tps / clock_tps, 2) + "x"});
        }
        t.addRule();
    }
    std::cout << t.str();

    std::cout <<
        "\n== A2b: serial vs parallel tick engine ==\n"
        "(64-core chip, busy activity; shape target: ticks/s scales\n"
        " with worker threads up to the machine's core count)\n\n";

    TextTable p({"engine", "threads", "ticks/s", "speedup"});
    const uint64_t pticks = 200;
    double serial_tps = 0;
    for (uint32_t threads : {0u, 2u, 4u, 8u}) {
        CorticalParams wp;
        wp.gridW = wp.gridH = 8;
        wp.density = 128;
        wp.ratePerTick = 0.05;
        wp.seed = 9;
        CorticalWorkload w = makeCortical(wp);
        auto sim = makeCorticalSim(w, EngineKind::Clock,
                                   NocModel::Functional, threads);
        RunPerf perf = sim->run(pticks);
        double tps = perf.ticksPerSecond();
        if (threads == 0)
            serial_tps = tps;
        p.addRow({threads == 0 ? "serial" : "parallel",
                  fmtInt(threads),
                  fmtF(tps, 1),
                  fmtF(tps / serial_tps, 2) + "x"});
    }
    std::cout << p.str();

    std::cout <<
        "\n== A2c: scalar vs word-parallel synaptic integration ==\n"
        "(64-core chip, busy activity, serial clock engine; shape\n"
        " target: word-parallel wins where integrate dominates)\n\n";

    TextTable q({"integrate", "ticks/s", "sops", "hit rate", "speedup"});
    double scalar_tps = 0;
    for (bool fast : {false, true}) {
        CorticalParams wp;
        wp.gridW = wp.gridH = 8;
        wp.density = 128;
        // Dense activity: half the driven axons fire per tick, well
        // above the cores' adaptive word-parallel threshold.
        wp.ratePerTick = 0.5;
        wp.seed = 9;
        CorticalWorkload w = makeCortical(wp);
        auto sim = makeCorticalSim(w, EngineKind::Clock);
        for (uint32_t c = 0; c < sim->chip().numCores(); ++c)
            sim->chip().core(c).setWordParallel(fast);
        RunPerf perf = sim->run(pticks);

        uint64_t sops = 0, batched = 0;
        for (uint32_t c = 0; c < sim->chip().numCores(); ++c) {
            sops += sim->chip().core(c).counters().sops;
            batched += sim->chip().core(c).counters().sopsBatched;
        }
        double tps = perf.ticksPerSecond();
        if (!fast)
            scalar_tps = tps;
        double hit = sops ? static_cast<double>(batched) / sops : 0.0;
        q.addRow({fast ? "word-par" : "scalar",
                  fmtF(tps, 1),
                  fmtInt(sops),
                  fast ? fmtF(hit * 100, 1) + "%" : "-",
                  fmtF(tps / scalar_tps, 2) + "x"});
    }
    std::cout << q.str();
    return 0;
}
