/**
 * @file
 * Experiment T4 — one-to-one verification (Akopyan'15 Section V
 * claim): the cycle-level chip and the functional reference
 * simulator produce identical spike streams for every legal model,
 * including stochastic neurons, under both execution engines and
 * both transport models.  Also reports the relative speed of the
 * implementations.
 */

#include <chrono>
#include <iostream>

#include "baseline/reference_sim.hh"
#include "prog/compiler.hh"
#include "prog/network.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace nscs;

namespace {

Network
randomNetwork(uint64_t seed)
{
    Xoshiro256 rng(seed);
    Network net;
    std::vector<PopId> ids;
    for (uint32_t p = 0; p < 3; ++p) {
        NeuronParams proto;
        proto.synWeight = {2, -1, 3, -2};
        proto.threshold = static_cast<int32_t>(rng.range(2, 8));
        proto.leak = static_cast<int16_t>(rng.range(-2, 2));
        proto.negThreshold = 5;
        proto.synStochastic[0] = rng.chance(0.5);
        proto.leakStochastic = rng.chance(0.5);
        proto.thresholdMaskBits = rng.chance(0.5) ? 2 : 0;
        ids.push_back(net.addPopulation("p" + std::to_string(p),
                                        24, proto));
    }
    for (uint32_t e = 0; e < 6; ++e)
        net.connectRandom(ids[rng.below(3)], ids[rng.below(3)],
                          0.08, static_cast<uint8_t>(rng.below(4)),
                          static_cast<uint8_t>(rng.range(2, 5)),
                          rng.next());
    uint32_t in = net.addInput("drive");
    for (uint32_t k = 0; k < 8; ++k)
        net.bindInput(in, {ids[k % 3], k}, 2);
    for (uint32_t k = 0; k < 12; ++k)
        net.markOutput({ids[k % 3], 12 + k / 3});
    return net;
}

} // namespace

int
main()
{
    std::cout <<
        "== T4: chip vs reference one-to-one equivalence ==\n"
        "(claim: zero spike mismatches across engines, transports\n"
        " and stochastic modes)\n\n";

    CompileOptions opt;
    opt.geom.numAxons = 256;
    opt.geom.numNeurons = 32;

    const uint64_t ticks = 400;
    uint64_t total_spikes = 0, mismatches = 0, configs = 0;
    double ref_secs = 0, chip_secs = 0;

    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Network net = randomNetwork(seed);
        CompiledModel model = compile(net, opt);
        const auto &targets = model.inputTargets("drive");
        Xoshiro256 in_rng(seed * 31337);
        std::vector<uint8_t> fire(ticks);
        for (auto &f : fire)
            f = in_rng.chance(0.4);

        ReferenceSim ref(model);
        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t t = 0; t < ticks; ++t) {
            if (fire[t])
                for (const InputSpike &s : targets)
                    ref.injectInput(s.core, s.axon, t);
            ref.tick();
        }
        ref_secs += std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();

        struct Combo { EngineKind ek; NocModel nm; const char *nm2; };
        const Combo combos[] = {
            {EngineKind::Clock, NocModel::Functional, "clock/func"},
            {EngineKind::Event, NocModel::Functional, "event/func"},
            {EngineKind::Event, NocModel::Cycle, "event/cycle"},
        };
        for (const Combo &combo : combos) {
            ChipParams cp;
            cp.width = model.gridWidth;
            cp.height = model.gridHeight;
            cp.coreGeom = model.geom;
            cp.engine = combo.ek;
            cp.noc = combo.nm;
            Chip chip(cp, model.cores);
            auto t1 = std::chrono::steady_clock::now();
            for (uint64_t t = 0; t < ticks; ++t) {
                if (fire[t])
                    for (const InputSpike &s : targets)
                        chip.injectInput(s.core, s.axon, t);
                chip.tick();
            }
            if (combo.ek == EngineKind::Event &&
                combo.nm == NocModel::Functional)
                chip_secs += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t1).count();

            if (chip.outputs() != ref.outputs())
                ++mismatches;
            ++configs;
        }
        total_spikes += ref.outputs().size();
    }

    TextTable t({"metric", "value"});
    t.addRow({"configurations checked", fmtInt(configs)});
    t.addRow({"ticks per configuration", fmtInt(ticks)});
    t.addRow({"output spikes compared", fmtInt(total_spikes * 3)});
    t.addRow({"spike-stream mismatches", fmtInt(mismatches)});
    t.addRow({"reference sim time (s)", fmtF(ref_secs, 3)});
    t.addRow({"event-chip time (s)", fmtF(chip_secs, 3)});
    t.addRow({"event-chip speedup vs ref",
              fmtF(ref_secs / chip_secs, 2) + "x"});
    std::cout << t.str() << "\n";

    if (mismatches == 0)
        std::cout << "PASS: one-to-one equivalence holds.\n";
    else
        std::cout << "FAIL: mismatches detected!\n";
    return mismatches == 0 ? 0 : 1;
}
