/**
 * @file
 * Experiment F2 — the neuron behaviour gallery (Cassidy'13 Figs.
 * 5-8 shape): one parameterised digital neuron reproduces a
 * catalogue of biologically relevant behaviours.  Prints a raster
 * per behaviour plus ISI statistics.
 */

#include <iostream>

#include "neuron/behaviors.hh"
#include "runtime/trace.hh"
#include "util/table.hh"

using namespace nscs;

int
main()
{
    std::cout <<
        "== F2: neuron behaviour gallery ==\n"
        "(shape target: Cassidy'13 behaviour catalogue; one neuron\n"
        " model, parameter presets only)\n\n";

    const uint32_t ticks = 2000;
    const uint32_t raster_window = 96;

    TextTable stats({"behavior", "spikes", "mean ISI", "ISI CV",
                     "description"});

    for (Behavior b : allBehaviors()) {
        BehaviorPreset preset = behaviorPreset(b);
        BehaviorTrace trace = runBehavior(preset, ticks);

        std::cout << behaviorName(b) << ":\n";
        std::cout << "  in  "
                  << renderSpikeRow(trace.inputTicks, 0,
                                    raster_window) << "\n";
        std::cout << "  out "
                  << renderSpikeRow(trace.spikes, 0, raster_window)
                  << "\n";

        stats.addRow({behaviorName(b),
                      fmtInt(trace.spikes.size()),
                      fmtF(meanIsi(trace.spikes), 2),
                      fmtF(isiCv(trace.spikes), 3),
                      behaviorDescription(b)});
    }

    std::cout << "\n" << stats.str();
    std::cout << "\nall " << allBehaviors().size()
              << " behaviours produced by one neuron model with "
                 "parameter presets only.\n";
    return 0;
}
