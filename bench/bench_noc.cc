/**
 * @file
 * Experiment F5 — interconnect characterisation.
 *
 * Part 1: mean/P99 packet latency and delivered throughput vs
 * offered load under uniform-random traffic on a 16x16 mesh — the
 * classic latency/throughput curve with a saturation knee.
 *
 * Part 2: unloaded latency vs hop distance — linear, one cycle per
 * hop plus local ejection.
 */

#include <iostream>

#include "noc/mesh.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace nscs;

int
main()
{
    std::cout <<
        "== F5: NoC latency/throughput characterisation ==\n"
        "(shape target: flat latency at low load, knee near\n"
        " saturation; latency linear in hop distance)\n\n";

    const uint32_t side = 16;
    const uint64_t cycles = 4000;
    const uint64_t warmup = 500;

    std::cout << "part 1: uniform random traffic, " << side << "x"
              << side << " mesh, " << cycles << " cycles\n\n";

    TextTable t({"offered(flits/node/cyc)", "delivered", "mean lat",
                 "p99 lat", "stalls"});

    for (double load : {0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.35}) {
        Mesh mesh({side, side, 4});
        Xoshiro256 rng(1234);
        Histogram lat(0, 400, 200);
        uint64_t delivered = 0;

        for (uint64_t cyc = 0; cyc < cycles; ++cyc) {
            for (uint32_t y = 0; y < side; ++y) {
                for (uint32_t x = 0; x < side; ++x) {
                    if (!rng.chance(load))
                        continue;
                    SpikePacket p;
                    auto tx = static_cast<uint32_t>(rng.below(side));
                    auto ty = static_cast<uint32_t>(rng.below(side));
                    p.dx = static_cast<int16_t>(
                        static_cast<int32_t>(tx) -
                        static_cast<int32_t>(x));
                    p.dy = static_cast<int16_t>(
                        static_cast<int32_t>(ty) -
                        static_cast<int32_t>(y));
                    mesh.inject(x, y, p);  // drop on stall
                }
            }
            mesh.stepCycle();
            for (const MeshDelivery &d : mesh.deliveries()) {
                ++delivered;
                if (cyc >= warmup)
                    lat.add(static_cast<double>(
                        d.cycle - d.packet.injectCycle + 1));
            }
            mesh.clearDeliveries();
        }

        double per_node_cyc = static_cast<double>(delivered) /
            static_cast<double>(cycles) / (side * side);
        t.addRow({fmtF(load, 3),
                  fmtF(per_node_cyc, 3),
                  fmtF(lat.mean(), 1),
                  fmtF(lat.quantile(0.99), 1),
                  fmtInt(mesh.stats().injectStalls)});
    }
    std::cout << t.str() << "\n";

    std::cout << "part 2: unloaded latency vs hop distance (8x8)\n\n";
    TextTable t2({"hops", "latency(cycles)"});
    for (uint32_t d = 0; d <= 7; ++d) {
        Mesh mesh({8, 8, 4});
        SpikePacket p;
        p.dx = static_cast<int16_t>(d);
        mesh.inject(0, 0, p);
        uint64_t cyc = 0;
        while (mesh.deliveries().empty()) {
            mesh.stepCycle();
            ++cyc;
        }
        t2.addRow({std::to_string(d), fmtInt(cyc)});
    }
    std::cout << t2.str();
    return 0;
}
