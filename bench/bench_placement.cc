/**
 * @file
 * Ablation A1 — placement policy (tool-flow ablation).
 *
 * Compiles a clustered logical network (chains of populations with
 * heavy intra-chain traffic) under the three placement policies and
 * reports placement cost, mean destination hop distance, measured
 * mesh latency (cycle-accurate transport) and the interconnect
 * energy share.
 *
 * Expected shape: traffic-aware placement cuts mean hops and
 * interconnect energy versus row-major; annealing refines greedy.
 */

#include <iostream>

#include "prog/compiler.hh"
#include "prog/network.hh"
#include "runtime/simulator.hh"
#include "util/table.hh"

using namespace nscs;

namespace {

/** Chains of relay populations: strong, structured locality. */
Network
clusteredNetwork()
{
    Network net;
    NeuronParams relay;
    relay.threshold = 1;
    NeuronParams pacemaker;
    pacemaker.leak = 1;
    pacemaker.threshold = 10;

    const uint32_t chains = 12, length = 6, width = 24;
    for (uint32_t c = 0; c < chains; ++c) {
        PopId prev = net.addPopulation(
            "drv" + std::to_string(c), width, pacemaker);
        for (uint32_t l = 0; l < length; ++l) {
            PopId next = net.addPopulation(
                "ch" + std::to_string(c) + "_" + std::to_string(l),
                width, relay);
            net.connectOneToOne(prev, next, 0, 1);
            prev = next;
        }
    }
    return net;
}

} // namespace

int
main()
{
    std::cout <<
        "== A1: placement policy ablation ==\n"
        "(shape target: traffic-aware placement cuts hops, mesh\n"
        " latency and interconnect energy vs naive row-major)\n\n";

    TextTable t({"policy", "place cost", "mean hops", "mesh lat",
                 "hop energy share"});

    for (auto policy : {PlacementPolicy::RowMajor,
                        PlacementPolicy::GreedyBfs,
                        PlacementPolicy::Anneal}) {
        Network net = clusteredNetwork();
        CompileOptions opt;
        opt.geom.numNeurons = 32;
        opt.geom.numAxons = 64;
        opt.placement = policy;
        opt.placerSeed = 5;
        CompiledModel model = compile(net, opt);

        // Re-derive the placement cost from the compiled offsets.
        double place_cost = 0;
        for (const auto &cfg : model.cores)
            for (const auto &d : cfg.dests)
                if (d.kind == NeuronDest::Kind::Core)
                    place_cost += std::abs(d.dx) + std::abs(d.dy);

        ChipParams cp;
        cp.width = model.gridWidth;
        cp.height = model.gridHeight;
        cp.coreGeom = model.geom;
        cp.noc = NocModel::Cycle;
        Simulator sim(cp, model.cores);
        sim.run(100);

        const MeshStats *ms = sim.chip().meshStats();
        EnergyBreakdown b = sim.chip().energy();
        t.addRow({placementPolicyName(policy),
                  fmtF(place_cost, 0),
                  fmtF(model.stats.meanDestHops, 2),
                  ms ? fmtF(ms->latency.mean(), 1) : "-",
                  fmtF(100.0 * b.hopJ / b.totalJ(), 2) + "%"});
    }
    std::cout << t.str() << "\n";
    std::cout << "(12 pacemaker-driven relay chains; traffic is "
                 "chain-local, so locality-aware\n placement wins; "
                 "mesh latency measured on the cycle-accurate "
                 "transport)\n";
    return 0;
}
