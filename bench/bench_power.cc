/**
 * @file
 * Experiment F3 — power vs mean firing rate for several synaptic
 * densities (Merolla'14 Fig. 4 shape).
 *
 * Runs the synthetic cortical workload on a 16x16-core chip for a
 * sweep of input rates and densities, measures the actual neuron
 * firing rate and event counts, and evaluates the calibrated energy
 * model.  A second column scales the activity to the published
 * 64x64-core chip (the model is linear in event counts).
 *
 * Expected shape: power is affine in rate with slope proportional
 * to density, over a static leakage floor.
 */

#include <iostream>

#include "bench/workload.hh"
#include "util/table.hh"

using namespace nscs;
using namespace nscs::bench;

int
main()
{
    std::cout <<
        "== F3: power vs firing rate x synaptic density ==\n"
        "(shape target: Merolla'14 Fig. 4 — affine in rate, slope\n"
        " ~ density, leakage floor at rate 0)\n\n";

    const uint64_t ticks = 200;
    const uint32_t grid = 16;
    const double tick_s = 1e-3;

    TextTable t({"density", "rate(Hz)", "SOPs/s", "power(mW)",
                 "pJ/SOP", "power@4096cores(mW)"});

    for (uint32_t density : {64u, 128u, 256u}) {
        for (double rate : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
            CorticalParams wp;
            wp.gridW = wp.gridH = grid;
            wp.density = density;
            wp.ratePerTick = rate;
            wp.seed = 7;
            CorticalWorkload w = makeCortical(wp);
            auto sim = makeCorticalSim(w, EngineKind::Event);
            sim->run(ticks);

            EnergyEvents e = sim->chip().energyEvents();
            EnergyBreakdown b = sim->chip().energy();
            double window = static_cast<double>(ticks) * tick_s;
            double neuron_hz = static_cast<double>(e.spikes) /
                (static_cast<double>(e.neurons) * window);
            double sops_s = static_cast<double>(e.sops) / window;
            double power = averagePowerW(
                b, e, sim->chip().params().energy);

            // Linear scale-out to the 64x64 chip: 16x the cores and
            // 16x the activity at the same per-core behaviour.
            EnergyEvents big = e;
            big.cores = 4096;
            big.neurons = e.neurons * 16;
            big.sops = e.sops * 16;
            big.spikes = e.spikes * 16;
            big.hops = e.hops * 16 * 2;  // mean hop distance ~2x
            EnergyBreakdown bigB = computeEnergy(
                big, sim->chip().params().energy);
            double big_power = averagePowerW(
                bigB, big, sim->chip().params().energy);

            t.addRow({std::to_string(density),
                      fmtF(neuron_hz, 1),
                      fmtSi(sops_s),
                      fmtF(power * 1e3, 2),
                      fmtF(energyPerSopJ(b, e) * 1e12, 1),
                      fmtF(big_power * 1e3, 1)});
        }
        t.addRule();
    }
    std::cout << t.str() << "\n";
    std::cout <<
        "published anchors (64x64 cores): ~26-30 mW leakage floor,\n"
        "63-72 mW at ~20 Hz / 128 density, ~26 pJ per synaptic\n"
        "event at the nominal point.\n";
    return 0;
}
