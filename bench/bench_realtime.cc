/**
 * @file
 * Experiment F6 — real-time headroom (SC'14 real-time claim shape).
 *
 * At the architectural tick of 1 ms, a simulator is "real-time"
 * when it executes 1000 ticks per wall-clock second.  Sweeps the
 * input rate on a 16x16-core chip and reports wall-clock per tick
 * and the real-time factor for the event-driven engine, locating
 * the activity level where real-time is lost.
 */

#include <iostream>

#include "bench/workload.hh"
#include "util/table.hh"

using namespace nscs;
using namespace nscs::bench;

int
main()
{
    std::cout <<
        "== F6: real-time headroom vs activity ==\n"
        "(shape target: real-time at low activity, graceful\n"
        " degradation as spike traffic grows)\n\n";

    const uint64_t ticks = 200;

    TextTable t({"rate(Hz)", "spikes/tick", "us/tick", "RT factor",
                 "real-time?"});

    for (double rate : {0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
        CorticalParams wp;
        wp.gridW = wp.gridH = 16;
        wp.density = 128;
        wp.ratePerTick = rate;
        wp.seed = 21;
        CorticalWorkload w = makeCortical(wp);
        auto sim = makeCorticalSim(w, EngineKind::Event);
        RunPerf perf = sim->run(ticks);

        EnergyEvents e = sim->chip().energyEvents();
        double spikes_per_tick = static_cast<double>(e.spikes) /
            static_cast<double>(ticks);
        double us_per_tick = perf.seconds / ticks * 1e6;
        double rtf = perf.realTimeFactor(1e-3);
        t.addRow({fmtF(rate * 1000, 1),
                  fmtF(spikes_per_tick, 1),
                  fmtF(us_per_tick, 1),
                  fmtF(rtf, 2) + "x",
                  rtf >= 1.0 ? "yes" : "no"});
    }
    std::cout << t.str() << "\n";
    std::cout << "(64k neurons, 8.4M synapse sites on the simulated"
                 " 16x16 chip; 1 ms architectural ticks)\n";
    return 0;
}
