/**
 * @file
 * Experiment F4 — simulator throughput scaling (SC'14 shape).
 *
 * Default mode sweeps the chip size at a fixed sparse per-core
 * workload (2 Hz, 128 density) and reports wall-clock throughput
 * (ticks/s, MSOPs/s) for the clock-driven engine, the event-driven
 * engine, and the conventional clock-driven IR-level baseline
 * (DenseSim).
 *
 * Expected shape: near-linear slowdown in core count for all three;
 * the event-driven engine leads at this activity level, and the
 * architecture-aware simulators stay within a small factor of the
 * IR-level baseline while additionally modelling cores, schedulers
 * and the interconnect.
 *
 * Board mode (--board WxH [--side N] [--ticks N]) measures multi-chip
 * scale-out instead: one chip of side x side cores versus a WxH board
 * of identical chips running the dense 20 Hz cortical workload, with
 * the board's chips evaluated across worker lanes.  The figure of
 * merit is *aggregate* throughput (MSOPs/s across the whole fabric):
 * with >= W*H hardware threads a board sustains near-linear aggregate
 * throughput in chip count while per-board ticks/s holds near the
 * single-chip rate — the sharding story of the ROADMAP's north star.
 * Near 1 hardware thread the board rows degenerate to ~1x: the
 * printed hardware-lane count is part of the record.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "baseline/dense_sim.hh"
#include "bench/workload.hh"
#include "prog/network.hh"
#include "util/table.hh"

using namespace nscs;
using namespace nscs::bench;

namespace {

/** Board scale-out comparison (see file comment). */
int
runBoardMode(uint32_t board_w, uint32_t board_h, uint32_t side,
             uint64_t ticks)
{
    const uint32_t hw = std::max(1u,
                                 std::thread::hardware_concurrency());
    const uint32_t chips = board_w * board_h;
    std::cout << "== F4b: board scale-out, " << board_w << "x"
              << board_h << " chips of " << side << "x" << side
              << " cores (dense 20 Hz workload, " << hw
              << " hardware lanes) ==\n"
              << "(figure of merit: aggregate MSOPs/s across the "
                 "fabric; near-linear in\n chips when hardware "
                 "lanes >= chips)\n\n";

    auto dense = [&](uint32_t grid_w, uint32_t grid_h,
                     uint64_t seed) {
        CorticalParams wp;
        wp.gridW = grid_w;
        wp.gridH = grid_h;
        wp.density = 128;
        wp.ratePerTick = 0.02;
        wp.seed = seed;
        return makeCortical(wp);
    };

    TextTable t({"target", "cores", "ticks/s", "MSOPs/s",
                 "aggregate x"});
    double base_msops = 0.0;

    // Single chip of the board's per-chip geometry: the baseline.
    {
        CorticalWorkload w = dense(side, side, 11);
        auto sim = makeCorticalSim(w, EngineKind::Clock);
        RunPerf perf = sim->run(ticks);
        EnergyEvents e = sim->chip().energyEvents();
        base_msops = static_cast<double>(e.sops) / perf.seconds / 1e6;
        t.addRow({"1 chip (serial)", fmtInt(side * side),
                  fmtF(perf.ticksPerSecond(), 1),
                  fmtF(base_msops, 1), "1.00x"});
    }

    struct Row { const char *name; uint32_t threads; };
    const Row rows[] = {
        {"board (serial)", 0},
        {"board (parallel)", 0xFFFFFFFFu},  // resolved to hw below
    };
    CorticalWorkload w = dense(board_w * side, board_h * side, 11);
    for (const Row &row : rows) {
        uint32_t threads = row.threads == 0xFFFFFFFFu
            ? std::min(hw, chips) : row.threads;
        auto sim = makeCorticalBoardSim(w, EngineKind::Clock,
                                        board_w, board_h, threads);
        RunPerf perf = sim->run(ticks);
        EnergyEvents e = sim->board().energyEvents();
        double msops = static_cast<double>(e.sops) /
            perf.seconds / 1e6;
        t.addRow({row.name, fmtInt(chips * side * side),
                  fmtF(perf.ticksPerSecond(), 1), fmtF(msops, 1),
                  fmtF(msops / base_msops, 2) + "x"});
    }
    std::cout << t.str();
    std::cout << "\n(board rows carry " << chips
              << "x the neurons of the single chip; aggregate x"
              << " is total-SOPs/s relative to it)\n";
    return 0;
}

/**
 * IR-level equivalent of the cortical workload for DenseSim: the
 * same integrator neurons and fan-out, driven by phase-staggered
 * pacemaker relays at the same 2 Hz rate, minus the architectural
 * detail (no cores/schedulers/packets).
 */
Network
makeIrWorkload(uint32_t cores, uint32_t density, uint32_t period)
{
    Network net;
    const uint32_t driven = 128;

    NeuronParams pacemaker;
    pacemaker.leak = 1;
    pacemaker.threshold = static_cast<int32_t>(period);

    NeuronParams integrator;
    integrator.synWeight = {1, 1, 1, 1};
    integrator.threshold = std::max<int32_t>(
        1, static_cast<int32_t>(driven * density / 256));

    for (uint32_t c = 0; c < cores; ++c) {
        PopId ax = net.addPopulation("ax" + std::to_string(c),
                                     driven, pacemaker);
        PopId nr = net.addPopulation("nr" + std::to_string(c),
                                     256, integrator);
        for (uint32_t a = 0; a < driven; ++a) {
            // Stagger pacemaker phases across the period.
            NeuronParams p = pacemaker;
            p.initialPotential = static_cast<int32_t>(
                (a * 7) % period);
            net.setNeuronParams({ax, a}, p);
            for (uint32_t k = 0; k < density; ++k)
                net.connect({ax, a}, {nr, (a * density + k) % 256},
                            0, 1);
        }
    }
    return net;
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t board_w = 0, board_h = 0, side = 8;
    uint64_t bticks = 40;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "usage: bench_scaling [--board WxH] "
                             "[--side N] [--ticks N]\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--board") {
            std::string v = next();
            if (!parseGridSpec(v, board_w, board_h)) {
                std::cerr << "bad --board '" << v << "'\n";
                return 2;
            }
        } else if (arg == "--side") {
            side = static_cast<uint32_t>(std::atoi(next()));
        } else if (arg == "--ticks") {
            bticks = static_cast<uint64_t>(std::atoll(next()));
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return 2;
        }
    }
    if (board_w != 0)
        return runBoardMode(board_w, board_h, side, bticks);

    std::cout <<
        "== F4: simulator throughput vs chip size ==\n"
        "(shape target: SC'14 — near-linear cost in cores; the\n"
        " event engine wins at sparse activity)\n\n";

    const uint64_t ticks = 50;
    const uint32_t density = 128;
    const double rate = 0.002;  // 2 Hz: sparse cortical activity

    TextTable t({"cores", "engine", "ticks/s", "MSOPs/s",
                 "rel. clock"});

    const uint32_t par_threads = std::max(
        2u, std::thread::hardware_concurrency());

    for (uint32_t side : {4u, 8u, 16u, 32u}) {
        double clock_tps = 0.0;
        struct EngineRow { EngineKind ek; uint32_t threads;
                           const char *name; };
        const EngineRow rows[] = {
            {EngineKind::Clock, 0, "clock"},
            {EngineKind::Event, 0, "event"},
            {EngineKind::Clock, par_threads, "clock (parallel)"},
        };
        for (const EngineRow &row : rows) {
            CorticalParams wp;
            wp.gridW = wp.gridH = side;
            wp.density = density;
            wp.ratePerTick = rate;
            wp.seed = 3;
            CorticalWorkload w = makeCortical(wp);
            auto sim = makeCorticalSim(w, row.ek,
                                       NocModel::Functional,
                                       row.threads);
            RunPerf perf = sim->run(ticks);
            EnergyEvents e = sim->chip().energyEvents();
            double tps = perf.ticksPerSecond();
            double msops = static_cast<double>(e.sops) /
                perf.seconds / 1e6;
            if (row.ek == EngineKind::Clock && row.threads == 0)
                clock_tps = tps;
            t.addRow({fmtInt(side * side),
                      row.name,
                      fmtF(tps, 1),
                      fmtF(msops, 1),
                      fmtF(tps / clock_tps, 2) + "x"});
        }

        // Conventional IR-level baseline (capped: its build cost
        // dominates beyond 256 cores).
        if (side <= 16) {
            Network ir = makeIrWorkload(
                side * side, density,
                static_cast<uint32_t>(1.0 / rate));
            DenseSim dense(ir);
            auto t0 = std::chrono::steady_clock::now();
            dense.run(ticks);
            auto t1 = std::chrono::steady_clock::now();
            double secs = std::chrono::duration<double>(
                t1 - t0).count();
            double tps = static_cast<double>(ticks) / secs;
            double msops = static_cast<double>(
                dense.counters().sops) / secs / 1e6;
            t.addRow({fmtInt(side * side), "densesim (IR)",
                      fmtF(tps, 1), fmtF(msops, 1),
                      fmtF(tps / clock_tps, 2) + "x"});
        }
        t.addRule();
    }
    std::cout << t.str();
    return 0;
}
