/**
 * @file
 * Experiment F4 — simulator throughput scaling (SC'14 shape).
 *
 * Sweeps the chip size at a fixed sparse per-core workload (2 Hz,
 * 128 density) and reports wall-clock throughput (ticks/s, MSOPs/s) for
 * the clock-driven engine, the event-driven engine, and the
 * conventional clock-driven IR-level baseline (DenseSim).
 *
 * Expected shape: near-linear slowdown in core count for all three;
 * the event-driven engine leads at this activity level, and the
 * architecture-aware simulators stay within a small factor of the
 * IR-level baseline while additionally modelling cores, schedulers
 * and the interconnect.
 */

#include <chrono>
#include <iostream>
#include <thread>

#include "baseline/dense_sim.hh"
#include "bench/workload.hh"
#include "prog/network.hh"
#include "util/table.hh"

using namespace nscs;
using namespace nscs::bench;

namespace {

/**
 * IR-level equivalent of the cortical workload for DenseSim: the
 * same integrator neurons and fan-out, driven by phase-staggered
 * pacemaker relays at the same 2 Hz rate, minus the architectural
 * detail (no cores/schedulers/packets).
 */
Network
makeIrWorkload(uint32_t cores, uint32_t density, uint32_t period)
{
    Network net;
    const uint32_t driven = 128;

    NeuronParams pacemaker;
    pacemaker.leak = 1;
    pacemaker.threshold = static_cast<int32_t>(period);

    NeuronParams integrator;
    integrator.synWeight = {1, 1, 1, 1};
    integrator.threshold = std::max<int32_t>(
        1, static_cast<int32_t>(driven * density / 256));

    for (uint32_t c = 0; c < cores; ++c) {
        PopId ax = net.addPopulation("ax" + std::to_string(c),
                                     driven, pacemaker);
        PopId nr = net.addPopulation("nr" + std::to_string(c),
                                     256, integrator);
        for (uint32_t a = 0; a < driven; ++a) {
            // Stagger pacemaker phases across the period.
            NeuronParams p = pacemaker;
            p.initialPotential = static_cast<int32_t>(
                (a * 7) % period);
            net.setNeuronParams({ax, a}, p);
            for (uint32_t k = 0; k < density; ++k)
                net.connect({ax, a}, {nr, (a * density + k) % 256},
                            0, 1);
        }
    }
    return net;
}

} // namespace

int
main()
{
    std::cout <<
        "== F4: simulator throughput vs chip size ==\n"
        "(shape target: SC'14 — near-linear cost in cores; the\n"
        " event engine wins at sparse activity)\n\n";

    const uint64_t ticks = 50;
    const uint32_t density = 128;
    const double rate = 0.002;  // 2 Hz: sparse cortical activity

    TextTable t({"cores", "engine", "ticks/s", "MSOPs/s",
                 "rel. clock"});

    const uint32_t par_threads = std::max(
        2u, std::thread::hardware_concurrency());

    for (uint32_t side : {4u, 8u, 16u, 32u}) {
        double clock_tps = 0.0;
        struct EngineRow { EngineKind ek; uint32_t threads;
                           const char *name; };
        const EngineRow rows[] = {
            {EngineKind::Clock, 0, "clock"},
            {EngineKind::Event, 0, "event"},
            {EngineKind::Clock, par_threads, "clock (parallel)"},
        };
        for (const EngineRow &row : rows) {
            CorticalParams wp;
            wp.gridW = wp.gridH = side;
            wp.density = density;
            wp.ratePerTick = rate;
            wp.seed = 3;
            CorticalWorkload w = makeCortical(wp);
            auto sim = makeCorticalSim(w, row.ek,
                                       NocModel::Functional,
                                       row.threads);
            RunPerf perf = sim->run(ticks);
            EnergyEvents e = sim->chip().energyEvents();
            double tps = perf.ticksPerSecond();
            double msops = static_cast<double>(e.sops) /
                perf.seconds / 1e6;
            if (row.ek == EngineKind::Clock && row.threads == 0)
                clock_tps = tps;
            t.addRow({fmtInt(side * side),
                      row.name,
                      fmtF(tps, 1),
                      fmtF(msops, 1),
                      fmtF(tps / clock_tps, 2) + "x"});
        }

        // Conventional IR-level baseline (capped: its build cost
        // dominates beyond 256 cores).
        if (side <= 16) {
            Network ir = makeIrWorkload(
                side * side, density,
                static_cast<uint32_t>(1.0 / rate));
            DenseSim dense(ir);
            auto t0 = std::chrono::steady_clock::now();
            dense.run(ticks);
            auto t1 = std::chrono::steady_clock::now();
            double secs = std::chrono::duration<double>(
                t1 - t0).count();
            double tps = static_cast<double>(ticks) / secs;
            double msops = static_cast<double>(
                dense.counters().sops) / secs / 1e6;
            t.addRow({fmtInt(side * side), "densesim (IR)",
                      fmtF(tps, 1), fmtF(msops, 1),
                      fmtF(tps / clock_tps, 2) + "x"});
        }
        t.addRule();
    }
    std::cout << t.str();
    return 0;
}
