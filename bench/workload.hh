/**
 * @file
 * Shared synthetic workloads for the benchmark suite.
 *
 * The "cortical" power/throughput workload parameterises the two
 * quantities the published power model depends on: the mean firing
 * rate and the synaptic density (crossbar fan-out per spike).  Each
 * core drives half its axons from an external Bernoulli source; each
 * driven axon fans out to `density` neurons acting as integrators,
 * and each neuron forwards its (rare) output spike to a sink axon on
 * a random core, exercising the interconnect without creating
 * runaway recurrence.
 */

#ifndef NSCS_BENCH_WORKLOAD_HH
#define NSCS_BENCH_WORKLOAD_HH

#include <memory>
#include <vector>

#include "board/board.hh"
#include "chip/chip.hh"
#include "runtime/simulator.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {
namespace bench {

/** Workload construction knobs. */
struct CorticalParams
{
    uint32_t gridW = 16;       //!< cores in x
    uint32_t gridH = 16;       //!< cores in y
    uint32_t density = 128;    //!< synapses per driven axon
    double ratePerTick = 0.02; //!< Bernoulli rate per driven axon
    uint64_t seed = 1;
};

/** A built workload: chip configs plus the matching input source. */
struct CorticalWorkload
{
    std::vector<CoreConfig> cores;
    std::vector<InputSpike> drivenAxons;  //!< all Poisson targets
    CorticalParams params;
};

/** Build the synthetic cortical workload. */
inline CorticalWorkload
makeCortical(const CorticalParams &wp)
{
    CorticalWorkload w;
    w.params = wp;
    Xoshiro256 rng(wp.seed);
    CoreGeometry geom;  // default 256 x 256 x 16

    const uint32_t driven = geom.numAxons / 2;
    const uint32_t cores = wp.gridW * wp.gridH;
    for (uint32_t c = 0; c < cores; ++c) {
        CoreConfig cfg = CoreConfig::make(geom);
        cfg.rngSeed = static_cast<uint16_t>(rng.below(65536) | 1);
        // Driven axons 0..127 fan out to `density` neurons each.
        for (uint32_t a = 0; a < driven; ++a) {
            for (uint32_t k = 0; k < wp.density; ++k)
                cfg.connect(a, (a * wp.density + k) % geom.numNeurons);
        }
        // Neurons integrate to a threshold that keeps the output
        // rate near the input rate, and forward to sink axons
        // (empty rows) on random cores so spikes traverse the mesh.
        uint32_t fanin = driven * wp.density / geom.numNeurons;
        for (uint32_t n = 0; n < geom.numNeurons; ++n) {
            cfg.neurons[n].threshold =
                std::max<int32_t>(1, static_cast<int32_t>(fanin));
            NeuronDest &d = cfg.dests[n];
            d.kind = NeuronDest::Kind::Core;
            uint32_t cx = c % wp.gridW, cy = c / wp.gridW;
            auto tx = static_cast<uint32_t>(rng.below(wp.gridW));
            auto ty = static_cast<uint32_t>(rng.below(wp.gridH));
            d.dx = static_cast<int16_t>(static_cast<int32_t>(tx) -
                                        static_cast<int32_t>(cx));
            d.dy = static_cast<int16_t>(static_cast<int32_t>(ty) -
                                        static_cast<int32_t>(cy));
            d.axon = static_cast<uint16_t>(
                driven + rng.below(geom.numAxons - driven));
            d.delay = static_cast<uint8_t>(1 + rng.below(15));
        }
        for (uint32_t a = 0; a < driven; ++a)
            w.drivenAxons.push_back({c, a});
        w.cores.push_back(std::move(cfg));
    }
    return w;
}

/** Simulator wired with the workload's Poisson source.  @p threads
 *  selects the chip's parallel tick engine (0/1 = serial). */
inline std::unique_ptr<Simulator>
makeCorticalSim(const CorticalWorkload &w, EngineKind engine,
                NocModel noc = NocModel::Functional,
                uint32_t threads = 0,
                std::shared_ptr<const FaultPlan> fault_plan = nullptr)
{
    ChipParams cp;
    cp.width = w.params.gridW;
    cp.height = w.params.gridH;
    cp.coreGeom = CoreGeometry{};
    cp.engine = engine;
    cp.noc = noc;
    cp.threads = threads;
    cp.faultPlan = std::move(fault_plan);
    auto sim = std::make_unique<Simulator>(cp, w.cores);
    if (w.params.ratePerTick > 0.0) {
        sim->addSource(std::make_unique<PoissonSource>(
            w.drivenAxons, w.params.ratePerTick,
            w.params.seed ^ 0xD1CEull));
    }
    return sim;
}

/**
 * Board simulator over the same global workload: the core grid is
 * sharded across a @p board_w x @p board_h grid of chips (gridW/gridH
 * must divide evenly).  The input source targets global core ids, so
 * the identical workload drives both framings — the basis of the
 * chip-vs-board differential tests.
 */
inline std::unique_ptr<Simulator>
makeCorticalBoardSim(const CorticalWorkload &w, EngineKind engine,
                     uint32_t board_w, uint32_t board_h,
                     uint32_t board_threads = 0,
                     LinkParams link = LinkParams{},
                     uint32_t chip_threads = 0,
                     std::shared_ptr<const FaultPlan> fault_plan =
                         nullptr)
{
    if (w.params.gridW % board_w != 0 ||
        w.params.gridH % board_h != 0)
        fatal("board %ux%u does not tile the %ux%u workload grid",
              board_w, board_h, w.params.gridW, w.params.gridH);
    BoardParams bp;
    bp.width = board_w;
    bp.height = board_h;
    bp.chip.width = w.params.gridW / board_w;
    bp.chip.height = w.params.gridH / board_h;
    bp.chip.coreGeom = CoreGeometry{};
    bp.chip.engine = engine;
    bp.chip.threads = chip_threads;
    bp.link = link;
    bp.threads = board_threads;
    bp.faultPlan = std::move(fault_plan);
    auto sim = std::make_unique<Simulator>(bp, w.cores);
    if (w.params.ratePerTick > 0.0) {
        sim->addSource(std::make_unique<PoissonSource>(
            w.drivenAxons, w.params.ratePerTick,
            w.params.seed ^ 0xD1CEull));
    }
    return sim;
}

} // namespace bench
} // namespace nscs

#endif // NSCS_BENCH_WORKLOAD_HH
