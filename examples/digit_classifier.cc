/**
 * @file
 * End-to-end spiking digit classifier.
 *
 * Generates a synthetic 8x8 "digits" dataset, trains a linear
 * model off-chip, quantises it to the five on-chip weight levels,
 * deploys it through the compile/place/route tool flow and runs
 * rate-coded inference on the simulated chip — the full published
 * application workflow on synthetic data.
 *
 * With a third argument B > 1 the deployment also runs in throughput
 * mode: B replica instance lanes share the compiled crossbars, one
 * request per lane per hardware pass, and the same test set is
 * re-evaluated batched — same predictions, B requests per pass.
 *
 *   build/examples/digit_classifier [classes] [per_class] [instances]
 */

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "apps/classifier.hh"
#include "apps/dataset.hh"
#include "apps/trainer.hh"
#include "util/table.hh"

using namespace nscs;

int
main(int argc, char **argv)
{
    uint32_t classes = 10;
    uint32_t per_class = 40;
    uint32_t instances = 1;
    if (argc > 1)
        classes = static_cast<uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        per_class = static_cast<uint32_t>(std::atoi(argv[2]));
    if (argc > 3)
        instances = static_cast<uint32_t>(std::atoi(argv[3]));
    if (instances == 0)
        instances = 1;

    std::cout << "generating " << classes << "-class synthetic 8x8 "
              << "digits (" << per_class << " samples/class)...\n";
    Dataset ds = makeGaussianDigits(classes, 8, per_class, 0.06, 2024);
    Dataset train, test;
    ds.split(5, train, test);

    std::cout << "training averaged perceptron on "
              << train.samples.size() << " samples...\n";
    LinearModel model = trainPerceptron(train, 12, 7);
    QuantizedModel qm = quantize(model);

    ClassifierOptions opt;
    opt.window = 64;
    SpikingClassifier clf(qm, opt);
    const CompiledModel &compiled = clf.compiled();
    std::cout << "deployed onto a " << compiled.gridWidth << "x"
              << compiled.gridHeight << " core grid ("
              << compiled.stats.synapses << " synapses, threshold "
              << clf.threshold() << ", window " << opt.window
              << " ticks)\n\n";

    EvalResult res = clf.evaluate(test);

    TextTable t({"metric", "value"});
    t.addRow({"float accuracy (host)",
              fmtF(100 * modelAccuracy(model, test), 1) + "%"});
    t.addRow({"quantised accuracy (host)",
              fmtF(100 * quantizedAccuracy(qm, test), 1) + "%"});
    t.addRow({"spiking accuracy (chip)",
              fmtF(100 * res.accuracy, 1) + "%"});
    t.addRow({"test samples", fmtInt(res.samples)});
    t.addRow({"input spikes / inference",
              fmtInt(res.meanPerInference.inputSpikes)});
    t.addRow({"output spikes / inference",
              fmtInt(res.meanPerInference.outputSpikes)});
    t.addRow({"energy / inference",
              fmtF(res.meanPerInference.energyJ * 1e6, 3) + " uJ"});
    t.addRow({"latency / inference",
              fmtInt(res.meanPerInference.ticks) + " ticks"});
    std::cout << t.str();

    if (instances > 1) {
        // Throughput mode: the same model deployed once with B
        // instance lanes, requests mapped onto free lanes by
        // evaluate().  The baseline is the serving model batching
        // replaces — an independent deployment per request.
        // Accuracy is identical by the determinism contract; what
        // changes is requests per second.
        std::cout << "\nthroughput mode: " << instances
                  << " instance lanes, one shared deployment\n";
        using clock = std::chrono::steady_clock;

        auto s0 = clock::now();
        uint32_t seq_correct = 0;
        for (const Sample &s : test.samples) {
            SpikingClassifier one(qm, opt);
            if (one.classify(s) == s.label)
                ++seq_correct;
        }
        auto s1 = clock::now();
        double seq_s =
            std::chrono::duration<double>(s1 - s0).count();
        double seq_rate = seq_s > 0.0
            ? test.samples.size() / seq_s : 0.0;
        double seq_acc = static_cast<double>(seq_correct) /
            static_cast<double>(test.samples.size());

        ClassifierOptions bopt = opt;
        bopt.instances = instances;
        auto b0 = clock::now();
        SpikingClassifier batched(qm, bopt);
        EvalResult bres = batched.evaluate(test);
        auto b1 = clock::now();
        double bat_s =
            std::chrono::duration<double>(b1 - b0).count();
        double bat_rate = bat_s > 0.0 ? bres.samples / bat_s : 0.0;

        TextTable tp({"mode", "accuracy", "req/s"});
        tp.addRow({"deploy-per-request (B=1)",
                   fmtF(100 * seq_acc, 1) + "%",
                   fmtF(seq_rate, 1)});
        tp.addRow({"batched (B=" + std::to_string(instances) + ")",
                   fmtF(100 * bres.accuracy, 1) + "%",
                   fmtF(bat_rate, 1)});
        std::cout << tp.str();
        if (bres.accuracy != seq_acc)
            std::cout << "WARNING: batched accuracy diverged from "
                         "sequential — determinism contract broken\n";
    }
    return 0;
}
