/**
 * @file
 * End-to-end spiking digit classifier.
 *
 * Generates a synthetic 8x8 "digits" dataset, trains a linear
 * model off-chip, quantises it to the five on-chip weight levels,
 * deploys it through the compile/place/route tool flow and runs
 * rate-coded inference on the simulated chip — the full published
 * application workflow on synthetic data.
 *
 *   build/examples/digit_classifier [classes] [per_class]
 */

#include <cstdlib>
#include <iostream>

#include "apps/classifier.hh"
#include "apps/dataset.hh"
#include "apps/trainer.hh"
#include "util/table.hh"

using namespace nscs;

int
main(int argc, char **argv)
{
    uint32_t classes = 10;
    uint32_t per_class = 40;
    if (argc > 1)
        classes = static_cast<uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        per_class = static_cast<uint32_t>(std::atoi(argv[2]));

    std::cout << "generating " << classes << "-class synthetic 8x8 "
              << "digits (" << per_class << " samples/class)...\n";
    Dataset ds = makeGaussianDigits(classes, 8, per_class, 0.06, 2024);
    Dataset train, test;
    ds.split(5, train, test);

    std::cout << "training averaged perceptron on "
              << train.samples.size() << " samples...\n";
    LinearModel model = trainPerceptron(train, 12, 7);
    QuantizedModel qm = quantize(model);

    ClassifierOptions opt;
    opt.window = 64;
    SpikingClassifier clf(qm, opt);
    const CompiledModel &compiled = clf.compiled();
    std::cout << "deployed onto a " << compiled.gridWidth << "x"
              << compiled.gridHeight << " core grid ("
              << compiled.stats.synapses << " synapses, threshold "
              << clf.threshold() << ", window " << opt.window
              << " ticks)\n\n";

    EvalResult res = clf.evaluate(test);

    TextTable t({"metric", "value"});
    t.addRow({"float accuracy (host)",
              fmtF(100 * modelAccuracy(model, test), 1) + "%"});
    t.addRow({"quantised accuracy (host)",
              fmtF(100 * quantizedAccuracy(qm, test), 1) + "%"});
    t.addRow({"spiking accuracy (chip)",
              fmtF(100 * res.accuracy, 1) + "%"});
    t.addRow({"test samples", fmtInt(res.samples)});
    t.addRow({"input spikes / inference",
              fmtInt(res.meanPerInference.inputSpikes)});
    t.addRow({"output spikes / inference",
              fmtInt(res.meanPerInference.outputSpikes)});
    t.addRow({"energy / inference",
              fmtF(res.meanPerInference.energyJ * 1e6, 3) + " uJ"});
    t.addRow({"latency / inference",
              fmtInt(res.meanPerInference.ticks) + " ticks"});
    std::cout << t.str();
    return 0;
}
