/**
 * @file
 * The neuron behaviour gallery as a runnable example: prints input
 * and output rasters for every preset in the gallery, with the
 * parameters that produce each behaviour.
 *
 *   build/examples/neuron_behaviors [ticks]
 */

#include <cstdlib>
#include <iostream>

#include "neuron/behaviors.hh"
#include "runtime/trace.hh"

using namespace nscs;

int
main(int argc, char **argv)
{
    uint32_t ticks = 120;
    if (argc > 1)
        ticks = static_cast<uint32_t>(std::atoi(argv[1]));

    for (Behavior b : allBehaviors()) {
        BehaviorPreset preset = behaviorPreset(b);
        BehaviorTrace trace = runBehavior(preset, ticks);
        const NeuronParams &p = preset.params;

        std::cout << "### " << behaviorName(b) << "\n"
                  << behaviorDescription(b) << "\n"
                  << "params: w0=" << p.synWeight[0]
                  << " w1=" << p.synWeight[1]
                  << " leak=" << p.leak
                  << (p.leakReversal ? " (reversal)" : "")
                  << " threshold=" << p.threshold;
        if (p.thresholdMaskBits)
            std::cout << " maskBits="
                      << static_cast<int>(p.thresholdMaskBits);
        if (p.negThreshold)
            std::cout << " negThreshold=" << p.negThreshold
                      << (p.negSaturate ? " (saturate)" : " (reset)");
        std::cout << " resetMode="
                  << static_cast<int>(p.resetMode) << "\n";

        std::cout << " in  "
                  << renderSpikeRow(trace.inputTicks, 0, ticks)
                  << "\n out "
                  << renderSpikeRow(trace.spikes, 0, ticks) << "\n\n";
    }
    return 0;
}
