/**
 * @file
 * Quickstart: the smallest end-to-end NSCS program.
 *
 * Builds a three-neuron logical network (an integrator, a leaky
 * coincidence detector and a pacemaker), compiles it onto a chip,
 * drives it with a schedule of input spikes and prints the output
 * raster plus the chip's statistics.
 *
 *   build/examples/quickstart [MODEL_OUT.json]
 *
 * With an argument, additionally saves the compiled model file for
 * the nscs_run / nscs_inspect tools.
 */

#include <iostream>

#include "prog/compiler.hh"
#include "prog/network.hh"
#include "runtime/simulator.hh"
#include "runtime/trace.hh"
#include "util/table.hh"

using namespace nscs;

int
main(int argc, char **argv)
{
    // 1. Describe the logical network. --------------------------------

    Network net;

    // An integrator: counts input spikes, fires every third one.
    NeuronParams integrator;
    integrator.synWeight = {1, 0, 0, 0};  // axon type 0 adds +1
    integrator.threshold = 3;

    // A leaky coincidence detector: only paired spikes fire it.
    NeuronParams coincidence;
    coincidence.synWeight = {4, 0, 0, 0};
    coincidence.leak = -2;
    coincidence.leakReversal = true;  // decay toward zero
    coincidence.threshold = 4;

    // A pacemaker: positive leak, fires every 10 ticks, no input.
    NeuronParams pacemaker;
    pacemaker.leak = 1;
    pacemaker.threshold = 10;

    PopId pop = net.addPopulation("demo", 3, integrator);
    net.setNeuronParams({pop, 1}, coincidence);
    net.setNeuronParams({pop, 2}, pacemaker);

    // External input drives neurons 0 and 1 through axon type 0.
    uint32_t in = net.addInput("stim");
    net.bindInput(in, {pop, 0}, 0);
    net.bindInput(in, {pop, 1}, 0);

    // All three neurons are observable output lines 0..2.
    for (uint32_t i = 0; i < 3; ++i)
        net.markOutput({pop, i});

    // 2. Compile onto the chip. ----------------------------------------

    CompileOptions copts;  // default 256x256x16 cores, greedy placer
    CompiledModel model = compile(net, copts);
    std::cout << "compiled onto " << model.gridWidth << "x"
              << model.gridHeight << " core(s), "
              << model.stats.synapses << " synapses\n\n";
    if (argc > 1) {
        if (!saveCompiledModel(argv[1], model)) {
            std::cerr << "cannot write model '" << argv[1] << "'\n";
            return 1;
        }
        std::cout << "model saved to " << argv[1] << "\n\n";
    }

    // 3. Simulate with a spike schedule. -------------------------------

    ChipParams chip_params;
    chip_params.width = model.gridWidth;
    chip_params.height = model.gridHeight;
    chip_params.coreGeom = model.geom;
    chip_params.engine = EngineKind::Event;

    Simulator sim(chip_params, model.cores);

    auto schedule = std::make_unique<ScheduleSource>();
    // A burst (ticks 5,6 - a coincidence), singles at 15 and 25,
    // another pair at 30,31.
    for (uint64_t t : {5, 6, 15, 25, 30, 31})
        for (const InputSpike &target : model.inputTargets("stim"))
            schedule->add(t, target);
    sim.addSource(std::move(schedule));

    sim.run(40);

    // 4. Inspect the results. ------------------------------------------

    std::cout << "output raster (40 ticks):\n"
              << renderRaster(sim.recorder().spikes(), 0, 3, 0, 40)
              << "\n"
              << "line 0 = integrator (fires every 3rd input)\n"
              << "line 1 = coincidence detector (fires on pairs)\n"
              << "line 2 = pacemaker (fires every 10 ticks)\n\n";

    StatGroup stats;
    sim.chip().dumpStats("chip", stats);
    std::cout << stats.format();
    return 0;
}
