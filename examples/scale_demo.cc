/**
 * @file
 * Scale demonstration: a 32x32-core fabric (262,144 neurons, ~8.4M
 * populated synapses) running the synthetic cortical workload at
 * 20 Hz, with throughput, activity and energy reporting.
 *
 *   build/examples/scale_demo [gridSide] [ticks] [--board WxH]
 *                             [--threads N]
 *
 * With --board the same global core grid is sharded across a WxH
 * grid of chips joined by inter-chip links (gridSide must divide
 * evenly); --threads evaluates chips across worker lanes.  Output is
 * bit-identical to the single-chip run in every configuration.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench/workload.hh"
#include "util/table.hh"

using namespace nscs;
using namespace nscs::bench;

int
main(int argc, char **argv)
{
    uint32_t side = 32;
    uint64_t ticks = 100;
    uint32_t board_w = 1, board_h = 1;
    uint32_t threads = 0;
    int pos = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--board") == 0 && i + 1 < argc) {
            if (!parseGridSpec(argv[++i], board_w, board_h)) {
                std::cerr << "bad --board\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = static_cast<uint32_t>(std::atoi(argv[++i]));
        } else if (pos == 0) {
            side = static_cast<uint32_t>(std::atoi(argv[i]));
            ++pos;
        } else if (pos == 1) {
            ticks = static_cast<uint64_t>(std::atoll(argv[i]));
            ++pos;
        } else {
            std::cerr << "unexpected argument '" << argv[i] << "'\n"
                      << "usage: scale_demo [gridSide] [ticks] "
                         "[--board WxH] [--threads N]\n";
            return 2;
        }
    }
    const bool board_mode = board_w * board_h > 1;
    if (board_mode && (side % board_w || side % board_h)) {
        std::cerr << "grid side " << side << " does not tile a "
                  << board_w << "x" << board_h << " board\n";
        return 2;
    }

    CorticalParams wp;
    wp.gridW = wp.gridH = side;
    wp.density = 128;
    wp.ratePerTick = 0.02;
    wp.seed = 2025;

    std::cout << "building " << side << "x" << side << " core grid ("
              << side * side * 256 << " neurons)";
    if (board_mode)
        std::cout << " sharded across " << board_w << "x" << board_h
                  << " chips";
    std::cout << "...\n";
    CorticalWorkload w = makeCortical(wp);
    auto sim = board_mode
        ? makeCorticalBoardSim(w, EngineKind::Event, board_w, board_h,
                               threads)
        : makeCorticalSim(w, EngineKind::Event,
                          NocModel::Functional, threads);
    size_t footprint = board_mode ? sim->board().footprintBytes()
                                  : sim->chip().footprintBytes();
    std::cout << "model footprint: " << fmtBytes(footprint) << "\n";

    std::cout << "running " << ticks << " ticks...\n\n";
    RunPerf perf = sim->run(ticks);

    EnergyEvents e = board_mode ? sim->board().energyEvents()
                                : sim->chip().energyEvents();
    EnergyBreakdown b = board_mode ? sim->board().energy()
                                   : sim->chip().energy();
    const EnergyParams &ep = board_mode
        ? sim->board().params().chip.energy
        : sim->chip().params().energy;

    TextTable t({"metric", "value"});
    if (board_mode) {
        t.addRow({"chips", fmtInt(sim->board().numChips())});
        t.addRow({"worker lanes", fmtInt(threads)});
    }
    t.addRow({"cores", fmtInt(e.cores)});
    t.addRow({"neurons", fmtInt(e.neurons)});
    t.addRow({"ticks simulated", fmtInt(ticks)});
    t.addRow({"wall-clock", fmtF(perf.seconds, 3) + " s"});
    t.addRow({"throughput", fmtF(perf.ticksPerSecond(), 1)
              + " ticks/s"});
    t.addRow({"real-time factor (1 ms ticks)",
              fmtF(perf.realTimeFactor(), 2) + "x"});
    t.addRow({"synaptic events", fmtInt(e.sops)});
    t.addRow({"SOP throughput",
              fmtSi(static_cast<double>(e.sops) / perf.seconds,
                    "SOPs/s")});
    t.addRow({"spikes", fmtInt(e.spikes)});
    if (board_mode) {
        const BoardCounters &bc = sim->board().counters();
        t.addRow({"inter-chip spikes", fmtInt(bc.egressSpikes)});
        t.addRow({"link traversals", fmtInt(bc.linkPackets)});
        t.addRow({"link stalls", fmtInt(bc.linkStalls)});
    }
    t.addRow({"modelled chip power",
              fmtF(averagePowerW(b, e, ep) * 1e3, 2) + " mW"});
    t.addRow({"modelled energy/SOP",
              fmtF(energyPerSopJ(b, e) * 1e12, 1) + " pJ"});
    std::cout << t.str();
    return 0;
}
