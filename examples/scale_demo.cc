/**
 * @file
 * Scale demonstration: a 32x32-core chip (262,144 neurons, ~8.4M
 * populated synapses) running the synthetic cortical workload at
 * 20 Hz, with throughput, activity and energy reporting.
 *
 *   build/examples/scale_demo [gridSide] [ticks]
 */

#include <cstdlib>
#include <iostream>

#include "bench/workload.hh"
#include "util/table.hh"

using namespace nscs;
using namespace nscs::bench;

int
main(int argc, char **argv)
{
    uint32_t side = 32;
    uint64_t ticks = 100;
    if (argc > 1)
        side = static_cast<uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        ticks = static_cast<uint64_t>(std::atoll(argv[2]));

    CorticalParams wp;
    wp.gridW = wp.gridH = side;
    wp.density = 128;
    wp.ratePerTick = 0.02;
    wp.seed = 2025;

    std::cout << "building " << side << "x" << side << " chip ("
              << side * side * 256 << " neurons)...\n";
    CorticalWorkload w = makeCortical(wp);
    auto sim = makeCorticalSim(w, EngineKind::Event);
    std::cout << "model footprint: "
              << fmtBytes(sim->chip().footprintBytes()) << "\n";

    std::cout << "running " << ticks << " ticks...\n\n";
    RunPerf perf = sim->run(ticks);

    EnergyEvents e = sim->chip().energyEvents();
    EnergyBreakdown b = sim->chip().energy();

    TextTable t({"metric", "value"});
    t.addRow({"cores", fmtInt(e.cores)});
    t.addRow({"neurons", fmtInt(e.neurons)});
    t.addRow({"ticks simulated", fmtInt(ticks)});
    t.addRow({"wall-clock", fmtF(perf.seconds, 3) + " s"});
    t.addRow({"throughput", fmtF(perf.ticksPerSecond(), 1)
              + " ticks/s"});
    t.addRow({"real-time factor (1 ms ticks)",
              fmtF(perf.realTimeFactor(), 2) + "x"});
    t.addRow({"synaptic events", fmtInt(e.sops)});
    t.addRow({"SOP throughput",
              fmtSi(static_cast<double>(e.sops) / perf.seconds,
                    "SOPs/s")});
    t.addRow({"spikes", fmtInt(e.spikes)});
    t.addRow({"modelled chip power",
              fmtF(averagePowerW(b, e,
                                 sim->chip().params().energy) * 1e3,
                   2) + " mW"});
    t.addRow({"modelled energy/SOP",
              fmtF(energyPerSopJ(b, e) * 1e12, 1) + " pJ"});
    std::cout << t.str();
    return 0;
}
