/**
 * @file
 * Sound-source localisation with a Jeffress delay-line model — the
 * classic neuromorphic coincidence-detection application, built
 * entirely from corelets.
 *
 * Two "ears" each feed a chain of relays; coincidence neurons tap
 * the two chains at complementary depths, so the interaural delay
 * of a sound selects which coincidence neuron fires.  The winning
 * output line therefore encodes the azimuth.
 *
 *   build/examples/sound_localizer
 */

#include <iostream>

#include "prog/compiler.hh"
#include "prog/corelet.hh"
#include "prog/network.hh"
#include "runtime/simulator.hh"
#include "util/table.hh"

using namespace nscs;

int
main()
{
    // Delay axis: interaural delays of -4 .. +4 ticks in steps of 2.
    const uint32_t taps = 5;       // coincidence positions
    const uint32_t depth = taps;   // relay chain length per ear

    Network net;

    auto left = corelets::delayLine(net, "left_ear", depth);
    auto right = corelets::delayLine(net, "right_ear", depth);

    // Coincidence detectors: tap i listens to position i of the
    // left chain and position taps-1-i of the right chain.  Only a
    // matching interaural delay makes both taps fire the same tick.
    std::vector<corelets::Ports> detectors;
    for (uint32_t i = 0; i < taps; ++i) {
        auto det = corelets::majority(
            net, "coinc" + std::to_string(i), 2);
        net.connect({left.pop, i}, det.in[0], 0, 1);
        net.connect({right.pop, taps - 1 - i}, det.in[0], 0, 1);
        net.markOutput(det.out[0]);
        detectors.push_back(det);
    }

    uint32_t in_l = net.addInput("left");
    uint32_t in_r = net.addInput("right");
    net.bindInput(in_l, left.in[0], 0);
    net.bindInput(in_r, right.in[0], 0);

    CompiledModel model = compile(net, CompileOptions{});
    ChipParams cp;
    cp.width = model.gridWidth;
    cp.height = model.gridHeight;
    cp.coreGeom = model.geom;

    std::cout << "Jeffress localiser: " << taps
              << " azimuth channels, compiled onto "
              << model.gridWidth << "x" << model.gridHeight
              << " core(s)\n\n";

    TextTable t({"interaural delay", "winning channel",
                 "interpretation"});
    const char *names[] = {"far left", "left", "centre", "right",
                           "far right"};

    for (int delay = -4; delay <= 4; delay += 2) {
        Chip chip(cp, model.cores);
        // A click train: 6 clicks, 12 ticks apart; the right ear
        // leads for positive delay (source on the left).
        for (int click = 0; click < 6; ++click) {
            uint64_t base = 4 + static_cast<uint64_t>(click) * 12;
            uint64_t t_left = base + (delay > 0 ? delay : 0);
            uint64_t t_right = base + (delay < 0 ? -delay : 0);
            uint64_t until = std::max(t_left, t_right) + 1;
            while (chip.now() < until) {
                uint64_t t = chip.now();
                if (t == t_left)
                    for (const InputSpike &s :
                             model.inputTargets("left"))
                        chip.injectInput(s.core, s.axon, t);
                if (t == t_right)
                    for (const InputSpike &s :
                             model.inputTargets("right"))
                        chip.injectInput(s.core, s.axon, t);
                chip.tick();
            }
        }
        chip.run(2 * taps + 4);  // drain the chains

        // Count spikes per channel.
        std::vector<uint64_t> counts(taps, 0);
        for (const OutputSpike &s : chip.outputs())
            ++counts[s.line];
        uint32_t best = 0;
        for (uint32_t i = 1; i < taps; ++i)
            if (counts[i] > counts[best])
                best = i;

        t.addRow({std::to_string(delay) + " ticks",
                  "channel " + std::to_string(best),
                  names[best]});
    }
    std::cout << t.str();
    std::cout << "\n(the winning channel moves monotonically with "
                 "the interaural delay)\n";
    return 0;
}
