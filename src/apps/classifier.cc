#include "apps/classifier.hh"

#include <algorithm>

#include "apps/encoder.hh"
#include "util/logging.hh"

namespace nscs {

int32_t
autoClassifierThreshold(const QuantizedModel &model)
{
    return std::max<int32_t>(2, static_cast<int32_t>(model.dim) / 16);
}

Network
buildClassifierNetwork(const QuantizedModel &model, int32_t threshold)
{
    NSCS_ASSERT(model.classes > 0 && model.dim > 0,
                "empty quantized model");
    Network net;

    NeuronParams cls;
    cls.synWeight = {1, -1, 2, -2};
    cls.threshold = threshold;
    cls.leak = -1;
    cls.negThreshold = 0;
    cls.negSaturate = true;
    cls.resetMode = ResetMode::Store;
    cls.resetPotential = 0;

    PopId classes = net.addPopulation("classes", model.classes, cls);

    for (uint32_t f = 0; f < model.dim; ++f) {
        uint32_t input = net.addInput("f" + std::to_string(f));
        for (uint32_t c = 0; c < model.classes; ++c) {
            int8_t q = model.weight(c, f);
            if (q == 0)
                continue;
            uint8_t type = (q == 1) ? 0 : (q == -1) ? 1
                         : (q == 2) ? 2 : 3;
            net.bindInput(input, {classes, c}, type);
        }
    }
    for (uint32_t c = 0; c < model.classes; ++c)
        net.markOutput({classes, c});
    return net;
}

SpikingClassifier::SpikingClassifier(const QuantizedModel &model,
                                     const ClassifierOptions &opt)
    : qm_(model), opt_(opt)
{
    threshold_ = opt_.threshold > 0 ? opt_.threshold
                                    : autoClassifierThreshold(qm_);
    net_ = buildClassifierNetwork(qm_, threshold_);
    compiled_ = compile(net_, opt_.compile);

    gap_ = opt_.gap > 0 ? opt_.gap
         : std::max<uint32_t>(compiled_.geom.delaySlots,
                              static_cast<uint32_t>(threshold_) + 8);

    NSCS_ASSERT(opt_.instances > 0,
                "classifier needs at least one instance lane");
    ChipParams cp;
    cp.width = compiled_.gridWidth;
    cp.height = compiled_.gridHeight;
    cp.coreGeom = compiled_.geom;
    cp.engine = opt_.engine;
    cp.noc = opt_.noc;
    cp.instances = opt_.instances;
    sim_ = std::make_unique<Simulator>(cp, compiled_.cores);

    auto sched = std::make_unique<ScheduleSource>();
    schedule_ = sched.get();
    sim_->addSource(std::move(sched));

    featureTargets_.resize(qm_.dim);
    for (uint32_t f = 0; f < qm_.dim; ++f) {
        std::string name = "f" + std::to_string(f);
        auto it = compiled_.inputs.find(name);
        if (it != compiled_.inputs.end())
            featureTargets_[f] = it->second;
    }
}

void
SpikingClassifier::beginPass(uint64_t t0)
{
    // Persistent serving: everything scheduled or recorded before
    // this pass has been consumed (readout windows never look back
    // past t0), so drop it — otherwise a long-lived server's
    // schedule and spike log grow without bound and every request
    // pays for the accumulated history.
    schedule_->discardBefore(t0);
    sim_->recorder().clear();
}

uint64_t
SpikingClassifier::scheduleSample(const Sample &sample, uint64_t t0,
                                  uint32_t inst)
{
    NSCS_ASSERT(sample.features.size() == qm_.dim,
                "sample dim %zu != model dim %u",
                sample.features.size(), qm_.dim);
    uint64_t injected = 0;
    for (uint32_t f = 0; f < qm_.dim; ++f) {
        if (featureTargets_[f].empty())
            continue;
        encodeRate(sample.features[f], opt_.window, encodeScratch_);
        for (uint32_t off : encodeScratch_) {
            for (InputSpike target : featureTargets_[f]) {
                target.instance = inst;
                schedule_->add(t0 + off, target);
                ++injected;
            }
        }
    }
    return injected;
}

uint64_t
SpikingClassifier::scheduleBatch(const Sample *samples, size_t n,
                                 uint64_t t0)
{
    if (opt_.window > 64) {
        // Offsets no longer fit one mask word; fall back to the
        // per-lane path (the tail sort handles the ordering).
        uint64_t injected = 0;
        for (size_t i = 0; i < n; ++i)
            injected += scheduleSample(samples[i], t0,
                                       static_cast<uint32_t>(i));
        return injected;
    }

    // Encode every (lane, feature) train into one offset mask, then
    // emit offset-major: adds arrive in ascending tick order, so the
    // schedule's sorted prefix never goes dirty and spikesFor never
    // sorts.  Within a tick the lane-major, feature-major emit order
    // below is exactly the stable-sorted order the per-lane path
    // produces, so the delivered spike sequence — and therefore the
    // run — is bit-identical.
    encodeMasks_.assign(n * qm_.dim, 0);
    uint64_t any = 0;
    for (size_t i = 0; i < n; ++i) {
        NSCS_ASSERT(samples[i].features.size() == qm_.dim,
                    "sample dim %zu != model dim %u",
                    samples[i].features.size(), qm_.dim);
        for (uint32_t f = 0; f < qm_.dim; ++f) {
            if (featureTargets_[f].empty())
                continue;
            uint64_t m = encodeRateMask(samples[i].features[f],
                                        opt_.window);
            encodeMasks_[i * qm_.dim + f] = m;
            any |= m;
        }
    }

    uint64_t injected = 0;
    for (uint32_t off = 0; off < opt_.window; ++off) {
        const uint64_t bit = 1ull << off;
        if (!(any & bit))
            continue;
        for (size_t i = 0; i < n; ++i) {
            const uint64_t *row = encodeMasks_.data() + i * qm_.dim;
            for (uint32_t f = 0; f < qm_.dim; ++f) {
                if (!(row[f] & bit))
                    continue;
                for (InputSpike target : featureTargets_[f]) {
                    target.instance = static_cast<uint32_t>(i);
                    schedule_->add(t0 + off, target);
                    ++injected;
                }
            }
        }
    }
    return injected;
}

uint32_t
SpikingClassifier::classify(const Sample &sample)
{
    Chip &chip = sim_->chip();
    uint64_t t0 = chip.now();
    double energy0 = chip.energy().totalJ();

    beginPass(t0);
    uint64_t injected = scheduleBatch(&sample, 1, t0);

    uint64_t ticks = opt_.window + gap_;
    sim_->run(ticks);

    uint64_t t1 = chip.now();
    const SpikeRecorder &rec = sim_->recorder();
    uint32_t pred = rec.argmaxLineInWindow(0, qm_.classes, t0, t1);

    lastStats_ = InferenceStats{};
    lastStats_.inputSpikes = injected;
    for (uint32_t c = 0; c < qm_.classes; ++c)
        lastStats_.outputSpikes += rec.countInWindow(c, t0, t1);
    lastStats_.ticks = ticks;
    lastStats_.energyJ = chip.energy().totalJ() - energy0;
    return pred;
}

std::vector<uint32_t>
SpikingClassifier::classifyBatch(const std::vector<Sample> &samples)
{
    NSCS_ASSERT(!samples.empty() &&
                    samples.size() <= opt_.instances,
                "batch of %zu samples on %u instance lanes",
                samples.size(), opt_.instances);

    Chip &chip = sim_->chip();
    uint64_t t0 = chip.now();
    double energy0 = chip.energy().totalJ();

    beginPass(t0);
    uint64_t injected =
        scheduleBatch(samples.data(), samples.size(), t0);

    uint64_t ticks = opt_.window + gap_;
    sim_->run(ticks);

    uint64_t t1 = chip.now();
    const SpikeRecorder &rec = sim_->recorder();
    std::vector<uint32_t> preds(samples.size());
    lastStats_ = InferenceStats{};
    lastStats_.inputSpikes = injected;
    lastStats_.ticks = ticks;
    for (uint32_t i = 0; i < samples.size(); ++i) {
        preds[i] =
            rec.argmaxLineInWindow(0, qm_.classes, t0, t1, i);
        for (uint32_t c = 0; c < qm_.classes; ++c)
            lastStats_.outputSpikes +=
                rec.countInWindow(c, t0, t1, i);
    }
    lastStats_.energyJ = chip.energy().totalJ() - energy0;
    return preds;
}

EvalResult
SpikingClassifier::evaluate(const Dataset &data, uint32_t max_samples)
{
    EvalResult res;
    uint32_t n = static_cast<uint32_t>(data.samples.size());
    if (max_samples > 0 && max_samples < n)
        n = max_samples;
    if (n == 0)
        return res;

    uint32_t correct = 0;
    InferenceStats total;
    if (opt_.instances > 1) {
        // Throughput mode: fill the instance lanes, one sample per
        // lane per pass; the tail pass runs short.
        std::vector<Sample> batch;
        for (uint32_t i = 0; i < n; i += opt_.instances) {
            uint32_t m = std::min(opt_.instances, n - i);
            batch.assign(data.samples.begin() + i,
                         data.samples.begin() + i + m);
            std::vector<uint32_t> preds = classifyBatch(batch);
            for (uint32_t k = 0; k < m; ++k)
                if (preds[k] == data.samples[i + k].label)
                    ++correct;
            total.inputSpikes += lastStats_.inputSpikes;
            total.outputSpikes += lastStats_.outputSpikes;
            total.ticks += lastStats_.ticks;
            total.energyJ += lastStats_.energyJ;
        }
    } else {
        for (uint32_t i = 0; i < n; ++i) {
            const Sample &s = data.samples[i];
            if (classify(s) == s.label)
                ++correct;
            total.inputSpikes += lastStats_.inputSpikes;
            total.outputSpikes += lastStats_.outputSpikes;
            total.ticks += lastStats_.ticks;
            total.energyJ += lastStats_.energyJ;
        }
    }
    res.accuracy = static_cast<double>(correct) /
        static_cast<double>(n);
    res.samples = n;
    res.meanPerInference.inputSpikes = total.inputSpikes / n;
    res.meanPerInference.outputSpikes = total.outputSpikes / n;
    res.meanPerInference.ticks = total.ticks / n;
    res.meanPerInference.energyJ = total.energyJ / n;
    return res;
}

} // namespace nscs
