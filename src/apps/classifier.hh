/**
 * @file
 * End-to-end spiking classifier (experiment T3).
 *
 * Deploys a quantised linear model onto the chip: one input line per
 * feature, one output neuron per class with the weight table
 * (+1, -1, +2, -2), synapses present where the quantised weight is
 * non-zero.  Features are rate-coded over a window; the decision is
 * the class whose output neuron spiked most.  Class neurons carry a
 * gentle -1 leak with a zero floor so residual potential drains in
 * the inter-sample gap.
 */

#ifndef NSCS_APPS_CLASSIFIER_HH
#define NSCS_APPS_CLASSIFIER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/dataset.hh"
#include "apps/trainer.hh"
#include "prog/compiler.hh"
#include "runtime/simulator.hh"

namespace nscs {

/** Classifier deployment options. */
struct ClassifierOptions
{
    uint32_t window = 64;     //!< rate-code window in ticks
    uint32_t gap = 0;         //!< settle ticks between samples (0=auto)
    int32_t threshold = 0;    //!< class-neuron threshold (0 = auto)
    uint32_t instances = 1;   //!< model replicas batched per pass
    CompileOptions compile;   //!< tool-flow options
    EngineKind engine = EngineKind::Event;
    NocModel noc = NocModel::Functional;
};

/** Per-inference measurements. */
struct InferenceStats
{
    uint64_t inputSpikes = 0;   //!< encoded spikes injected
    uint64_t outputSpikes = 0;  //!< class spikes observed
    uint64_t ticks = 0;         //!< window + gap
    double energyJ = 0.0;       //!< chip energy for the inference
};

/** Aggregate evaluation result. */
struct EvalResult
{
    double accuracy = 0.0;
    uint32_t samples = 0;
    InferenceStats meanPerInference;  //!< averaged over samples
};

/** A deployed classifier. */
class SpikingClassifier
{
  public:
    SpikingClassifier(const QuantizedModel &model,
                      const ClassifierOptions &opt);

    /** Classify one sample; returns the predicted label. */
    uint32_t classify(const Sample &sample);

    /**
     * Classify up to ClassifierOptions::instances samples in one
     * hardware pass, one sample per instance lane; a short batch
     * (the uneven tail of a request stream) leaves the trailing
     * lanes idle.  Returns one predicted label per sample.  Each
     * prediction is bit-identical to a classify() of that sample on
     * a single-instance deployment.
     */
    std::vector<uint32_t> classifyBatch(
        const std::vector<Sample> &samples);

    /** Stats of the most recent classify() call. */
    const InferenceStats &lastStats() const { return lastStats_; }

    /** Evaluate on a dataset (all samples when max_samples == 0). */
    EvalResult evaluate(const Dataset &data, uint32_t max_samples = 0);

    /** The compiled model (inspection). */
    const CompiledModel &compiled() const { return compiled_; }

    /** The underlying simulator (inspection). */
    Simulator &simulator() { return *sim_; }

    /** Effective class-neuron threshold. */
    int32_t threshold() const { return threshold_; }

    /** Effective inter-sample gap. */
    uint32_t gap() const { return gap_; }

  private:
    QuantizedModel qm_;
    ClassifierOptions opt_;
    int32_t threshold_ = 1;
    uint32_t gap_ = 16;
    Network net_;
    CompiledModel compiled_;
    std::unique_ptr<Simulator> sim_;
    ScheduleSource *schedule_ = nullptr;  //!< owned by sim_
    /** Injection targets per feature (cached from compiled_). */
    std::vector<std::vector<InputSpike>> featureTargets_;
    InferenceStats lastStats_;
    /** Reused encodeRate output; avoids one alloc per feature. */
    std::vector<uint32_t> encodeScratch_;
    /** Per-(lane, feature) offset masks for scheduleBatch. */
    std::vector<uint64_t> encodeMasks_;

    /** Drop last pass's schedule and recordings, keeping a
     *  long-lived server's memory bounded. */
    void beginPass(uint64_t t0);
    /** Schedule @p sample's rate-coded spikes on lane @p inst. */
    uint64_t scheduleSample(const Sample &sample, uint64_t t0,
                            uint32_t inst);
    /**
     * Schedule @p n samples (one per lane, lane i = samples[i]) in
     * ascending tick order so the schedule's sorted prefix stays
     * clean and no pass ever pays a sort.  Emits the same spikes in
     * the same per-tick order as n scheduleSample calls.
     */
    uint64_t scheduleBatch(const Sample *samples, size_t n,
                           uint64_t t0);
};

/**
 * Build just the logical classifier network (used by benches that
 * want to compile it with different options).  Appends one input per
 * feature named "f<i>" and marks one output line per class.
 */
Network buildClassifierNetwork(const QuantizedModel &model,
                               int32_t threshold);

/** The auto threshold heuristic: max(2, dim / 16). */
int32_t autoClassifierThreshold(const QuantizedModel &model);

} // namespace nscs

#endif // NSCS_APPS_CLASSIFIER_HH
