#include "apps/dataset.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {

void
Dataset::split(uint32_t k, Dataset &train, Dataset &test) const
{
    NSCS_ASSERT(k >= 2, "split ratio k must be >= 2");
    train.numClasses = test.numClasses = numClasses;
    train.featureDim = test.featureDim = featureDim;
    train.samples.clear();
    test.samples.clear();
    // Stratified: every k-th sample *of each class* goes to test.
    std::vector<uint64_t> seen(numClasses, 0);
    for (const Sample &s : samples) {
        if (seen[s.label]++ % k == 0)
            test.samples.push_back(s);
        else
            train.samples.push_back(s);
    }
}

namespace {

double
clamp01(double v)
{
    return std::min(1.0, std::max(0.0, v));
}

} // anonymous namespace

Dataset
makeGaussianDigits(uint32_t classes, uint32_t side,
                   uint32_t per_class, double noise, uint64_t seed)
{
    Xoshiro256 rng(seed);
    Dataset ds;
    ds.numClasses = classes;
    ds.featureDim = side * side;

    // Smooth random prototypes: a few Gaussian blobs per class.
    std::vector<std::vector<double>> protos(classes);
    for (uint32_t c = 0; c < classes; ++c) {
        auto &img = protos[c];
        img.assign(ds.featureDim, 0.0);
        uint32_t blobs = 2 + static_cast<uint32_t>(rng.below(3));
        for (uint32_t b = 0; b < blobs; ++b) {
            double cx = rng.uniform(0.15, 0.85) * side;
            double cy = rng.uniform(0.15, 0.85) * side;
            double sigma = rng.uniform(0.08, 0.2) * side;
            for (uint32_t y = 0; y < side; ++y) {
                for (uint32_t x = 0; x < side; ++x) {
                    double d2 = (x - cx) * (x - cx) +
                        (y - cy) * (y - cy);
                    img[y * side + x] +=
                        std::exp(-d2 / (2 * sigma * sigma));
                }
            }
        }
        for (auto &p : img)
            p = clamp01(p);
    }

    for (uint32_t c = 0; c < classes; ++c) {
        for (uint32_t i = 0; i < per_class; ++i) {
            Sample s;
            s.label = c;
            s.features.resize(ds.featureDim);
            for (uint32_t f = 0; f < ds.featureDim; ++f)
                s.features[f] =
                    clamp01(protos[c][f] + rng.normal(0.0, noise));
            ds.samples.push_back(std::move(s));
        }
    }
    // Interleave classes so split() stays stratified.
    std::vector<Sample> interleaved;
    interleaved.reserve(ds.samples.size());
    for (uint32_t i = 0; i < per_class; ++i)
        for (uint32_t c = 0; c < classes; ++c)
            interleaved.push_back(ds.samples[c * per_class + i]);
    ds.samples = std::move(interleaved);
    return ds;
}

Dataset
makeXor(uint32_t per_class, double noise, uint64_t seed)
{
    Xoshiro256 rng(seed);
    Dataset ds;
    ds.numClasses = 2;
    ds.featureDim = 2;
    for (uint32_t i = 0; i < per_class * 2; ++i) {
        Sample s;
        bool qx = rng.chance(0.5);
        bool qy = rng.chance(0.5);
        s.label = (qx != qy) ? 1 : 0;
        double x = (qx ? 0.75 : 0.25) + rng.normal(0.0, noise);
        double y = (qy ? 0.75 : 0.25) + rng.normal(0.0, noise);
        s.features = {clamp01(x), clamp01(y)};
        ds.samples.push_back(std::move(s));
    }
    return ds;
}

Dataset
makeBars(uint32_t side, uint32_t per_class, double noise,
         uint64_t seed)
{
    Xoshiro256 rng(seed);
    Dataset ds;
    ds.numClasses = side;
    ds.featureDim = side * side;
    for (uint32_t i = 0; i < per_class * side; ++i) {
        Sample s;
        s.label = i % side;  // the row carrying the bar
        s.features.assign(ds.featureDim, 0.0);
        for (uint32_t k = 0; k < side; ++k)
            s.features[s.label * side + k] = 1.0;
        for (auto &f : s.features)
            f = std::min(1.0, std::max(0.0,
                                       f + rng.normal(0.0, noise)));
        ds.samples.push_back(std::move(s));
    }
    return ds;
}

} // namespace nscs
