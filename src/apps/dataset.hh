/**
 * @file
 * Synthetic datasets.
 *
 * The published system's application results use real sensor/vision
 * datasets we cannot ship; these generators produce synthetic
 * equivalents that exercise the identical train -> quantise ->
 * compile -> run tool-flow path (see DESIGN.md substitution record).
 * All generators are deterministic in their seed.
 */

#ifndef NSCS_APPS_DATASET_HH
#define NSCS_APPS_DATASET_HH

#include <cstdint>
#include <vector>

namespace nscs {

/** One labelled sample with features in [0, 1]. */
struct Sample
{
    std::vector<double> features;
    uint32_t label = 0;
};

/** A labelled dataset. */
struct Dataset
{
    uint32_t numClasses = 0;
    uint32_t featureDim = 0;
    std::vector<Sample> samples;

    /** Split off every k-th sample as a test set. */
    void split(uint32_t k, Dataset &train, Dataset &test) const;
};

/**
 * "Digits": @p classes random smooth prototype images of
 * side x side pixels; samples are prototypes plus Gaussian noise,
 * clamped to [0, 1].
 */
Dataset makeGaussianDigits(uint32_t classes, uint32_t side,
                           uint32_t per_class, double noise,
                           uint64_t seed);

/**
 * XOR in the unit square with jitter: label = quadrant parity.
 * The classic not-linearly-separable sanity task (featureDim 2).
 */
Dataset makeXor(uint32_t per_class, double noise, uint64_t seed);

/**
 * Bars: side x side images containing one horizontal bar; the label
 * is the row carrying the bar (side classes).  A linearly separable
 * variant of the classic neuromorphic bars demo.
 */
Dataset makeBars(uint32_t side, uint32_t per_class, double noise,
                 uint64_t seed);

} // namespace nscs

#endif // NSCS_APPS_DATASET_HH
