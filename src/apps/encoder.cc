#include "apps/encoder.hh"

#include <cmath>

#include "util/logging.hh"

namespace nscs {

void
encodeRate(double value, uint32_t window,
           std::vector<uint32_t> &out)
{
    NSCS_ASSERT(value >= 0.0 && value <= 1.0,
                "rate value %f outside [0, 1]", value);
    out.clear();
    double acc = 0.0;
    for (uint32_t t = 0; t < window; ++t) {
        acc += value;
        if (acc >= 1.0 - 1e-12) {
            out.push_back(t);
            acc -= 1.0;
        }
    }
}

std::vector<uint32_t>
encodeRate(double value, uint32_t window)
{
    std::vector<uint32_t> spikes;
    encodeRate(value, window, spikes);
    return spikes;
}

uint64_t
encodeRateMask(double value, uint32_t window)
{
    NSCS_ASSERT(window <= 64,
                "encodeRateMask window %u exceeds one word", window);
    NSCS_ASSERT(value >= 0.0 && value <= 1.0,
                "rate value %f outside [0, 1]", value);
    // Same error-diffusion recurrence as encodeRate: bit t set iff
    // encodeRate would emit offset t.
    uint64_t mask = 0;
    double acc = 0.0;
    for (uint32_t t = 0; t < window; ++t) {
        acc += value;
        if (acc >= 1.0 - 1e-12) {
            mask |= 1ull << t;
            acc -= 1.0;
        }
    }
    return mask;
}

std::vector<uint32_t>
encodeRateStochastic(double value, uint32_t window, Xoshiro256 &rng)
{
    NSCS_ASSERT(value >= 0.0 && value <= 1.0,
                "rate value %f outside [0, 1]", value);
    std::vector<uint32_t> spikes;
    for (uint32_t t = 0; t < window; ++t)
        if (rng.chance(value))
            spikes.push_back(t);
    return spikes;
}

std::vector<uint32_t>
encodeTimeToSpike(double value, uint32_t window)
{
    if (value <= 0.0 || window == 0)
        return {};
    if (value > 1.0)
        value = 1.0;
    auto t = static_cast<uint32_t>(
        std::lround((1.0 - value) * (window - 1)));
    return {t};
}

std::vector<std::vector<uint32_t>>
encodePopulation(double value, uint32_t units, double sigma,
                 uint32_t window)
{
    NSCS_ASSERT(units >= 2, "population code needs >= 2 units");
    std::vector<std::vector<uint32_t>> trains(units);
    for (uint32_t i = 0; i < units; ++i) {
        double centre = static_cast<double>(i) /
            static_cast<double>(units - 1);
        double act = std::exp(-(value - centre) * (value - centre) /
                              (2 * sigma * sigma));
        trains[i] = encodeRate(act, window);
    }
    return trains;
}

double
decodeRate(const std::vector<uint32_t> &spikes, uint32_t window)
{
    if (window == 0)
        return 0.0;
    return static_cast<double>(spikes.size()) /
        static_cast<double>(window);
}

} // namespace nscs
