/**
 * @file
 * Spike encoders and decoders: analog values <-> spike trains.
 */

#ifndef NSCS_APPS_ENCODER_HH
#define NSCS_APPS_ENCODER_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace nscs {

/**
 * Deterministic rate code by error diffusion: a value v in [0, 1]
 * over a window of W ticks produces floor-or-ceil(v*W) evenly spaced
 * spikes.  Returns the spike ticks in [0, W).
 */
std::vector<uint32_t> encodeRate(double value, uint32_t window);

/** Allocation-free variant: clears and refills @p out.  The serving
 *  hot path calls this once per feature per request. */
void encodeRate(double value, uint32_t window,
                std::vector<uint32_t> &out);

/**
 * Bitmask variant for windows of at most 64 ticks: bit t is set iff
 * encodeRate(value, window) would emit offset t.  Lets a batch
 * scheduler walk offsets in ascending order across many trains
 * without materialising them.
 */
uint64_t encodeRateMask(double value, uint32_t window);

/** Bernoulli rate code: spike each tick with probability v. */
std::vector<uint32_t> encodeRateStochastic(double value,
                                           uint32_t window,
                                           Xoshiro256 &rng);

/**
 * Time-to-first-spike code: one spike at round((1-v) * (window-1));
 * strong values spike early.  Values <= 0 produce no spike.
 */
std::vector<uint32_t> encodeTimeToSpike(double value, uint32_t window);

/**
 * Population code: @p units Gaussian tuning curves with centres
 * evenly spaced in [0, 1] and width sigma; unit i emits a
 * deterministic rate-coded train of its activation.
 */
std::vector<std::vector<uint32_t>> encodePopulation(double value,
                                                    uint32_t units,
                                                    double sigma,
                                                    uint32_t window);

/** Decode a rate-coded train: spikes / window. */
double decodeRate(const std::vector<uint32_t> &spikes,
                  uint32_t window);

} // namespace nscs

#endif // NSCS_APPS_ENCODER_HH
