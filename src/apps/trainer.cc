#include "apps/trainer.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {

namespace {

uint32_t
argmaxScore(const std::vector<double> &scores)
{
    uint32_t best = 0;
    for (uint32_t c = 1; c < scores.size(); ++c)
        if (scores[c] > scores[best])
            best = c;
    return best;
}

} // anonymous namespace

LinearModel
trainPerceptron(const Dataset &train, uint32_t epochs, uint64_t seed)
{
    NSCS_ASSERT(!train.samples.empty(), "training on empty dataset");
    LinearModel model;
    model.classes = train.numClasses;
    model.dim = train.featureDim;
    model.w.assign(static_cast<size_t>(model.classes) * model.dim,
                   0.0);
    std::vector<double> acc(model.w.size(), 0.0);

    Xoshiro256 rng(seed);
    std::vector<uint32_t> order(train.samples.size());
    for (uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;

    uint64_t steps = 0;
    for (uint32_t e = 0; e < epochs; ++e) {
        // Fisher-Yates shuffle per epoch.
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);

        for (uint32_t idx : order) {
            const Sample &s = train.samples[idx];
            std::vector<double> scores(model.classes, 0.0);
            for (uint32_t c = 0; c < model.classes; ++c) {
                double dot = 0.0;
                const double *row =
                    &model.w[static_cast<size_t>(c) * model.dim];
                for (uint32_t f = 0; f < model.dim; ++f)
                    dot += row[f] * s.features[f];
                scores[c] = dot;
            }
            uint32_t pred = argmaxScore(scores);
            if (pred != s.label) {
                double *up =
                    &model.w[static_cast<size_t>(s.label) * model.dim];
                double *down =
                    &model.w[static_cast<size_t>(pred) * model.dim];
                for (uint32_t f = 0; f < model.dim; ++f) {
                    up[f] += s.features[f];
                    down[f] -= s.features[f];
                }
            }
            ++steps;
            for (size_t i = 0; i < model.w.size(); ++i)
                acc[i] += model.w[i];
        }
    }

    // Averaged perceptron: the mean trajectory generalises better.
    if (steps > 0)
        for (size_t i = 0; i < model.w.size(); ++i)
            model.w[i] = acc[i] / static_cast<double>(steps);
    return model;
}

double
modelAccuracy(const LinearModel &model, const Dataset &data)
{
    if (data.samples.empty())
        return 0.0;
    uint32_t correct = 0;
    for (const Sample &s : data.samples) {
        std::vector<double> scores(model.classes, 0.0);
        for (uint32_t c = 0; c < model.classes; ++c)
            for (uint32_t f = 0; f < model.dim; ++f)
                scores[c] += model.weight(c, f) * s.features[f];
        if (argmaxScore(scores) == s.label)
            ++correct;
    }
    return static_cast<double>(correct) /
        static_cast<double>(data.samples.size());
}

QuantizedModel
quantize(const LinearModel &model)
{
    QuantizedModel qm;
    qm.classes = model.classes;
    qm.dim = model.dim;
    qm.q.resize(model.w.size());
    double wmax = 0.0;
    for (double w : model.w)
        wmax = std::max(wmax, std::fabs(w));
    qm.scale = wmax > 0.0 ? wmax / 2.0 : 1.0;
    for (size_t i = 0; i < model.w.size(); ++i) {
        auto level = static_cast<int>(std::lround(model.w[i] /
                                                  qm.scale));
        qm.q[i] = static_cast<int8_t>(std::clamp(level, -2, 2));
    }
    return qm;
}

double
quantizedAccuracy(const QuantizedModel &model, const Dataset &data)
{
    if (data.samples.empty())
        return 0.0;
    uint32_t correct = 0;
    for (const Sample &s : data.samples) {
        std::vector<double> scores(model.classes, 0.0);
        for (uint32_t c = 0; c < model.classes; ++c)
            for (uint32_t f = 0; f < model.dim; ++f)
                scores[c] += model.weight(c, f) * s.features[f];
        if (argmaxScore(scores) == s.label)
            ++correct;
    }
    return static_cast<double>(correct) /
        static_cast<double>(data.samples.size());
}

} // namespace nscs
