/**
 * @file
 * Host-side training and weight quantisation.
 *
 * The published tool flow trains off-chip and deploys quantised
 * weights onto cores.  NSCS mirrors that: an averaged one-vs-all
 * perceptron (bias-free; features are rate-coded probabilities)
 * trains in floating point, then quantises to the five levels
 * {-2, -1, 0, +1, +2} expressible with the four axon-type weights
 * (+1, -1, +2, -2) plus absent synapses.
 */

#ifndef NSCS_APPS_TRAINER_HH
#define NSCS_APPS_TRAINER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/dataset.hh"

namespace nscs {

/** A trained float linear model (bias-free, one row per class). */
struct LinearModel
{
    uint32_t classes = 0;
    uint32_t dim = 0;
    std::vector<double> w;  //!< classes x dim, row-major

    double
    weight(uint32_t c, uint32_t f) const
    {
        return w[static_cast<size_t>(c) * dim + f];
    }
};

/** The chip-ready quantised model. */
struct QuantizedModel
{
    uint32_t classes = 0;
    uint32_t dim = 0;
    std::vector<int8_t> q;  //!< classes x dim in {-2..2}
    double scale = 1.0;     //!< float weight units per level

    int8_t
    weight(uint32_t c, uint32_t f) const
    {
        return q[static_cast<size_t>(c) * dim + f];
    }
};

/** Train an averaged one-vs-all perceptron. */
LinearModel trainPerceptron(const Dataset &train, uint32_t epochs,
                            uint64_t seed);

/** Accuracy of the float model (argmax of w.x). */
double modelAccuracy(const LinearModel &model, const Dataset &data);

/** Quantise to 5 levels; scale = max|w| / 2. */
QuantizedModel quantize(const LinearModel &model);

/** Host-side accuracy of the quantised model (argmax of q.x). */
double quantizedAccuracy(const QuantizedModel &model,
                         const Dataset &data);

} // namespace nscs

#endif // NSCS_APPS_TRAINER_HH
