#include "baseline/dense_sim.hh"

#include "neuron/neuron.hh"
#include "util/logging.hh"

namespace nscs {

DenseSim::DenseSim(const Network &net, uint16_t rng_seed)
    : net_(net), seed_(rng_seed), rng_(rng_seed)
{
    net_.validate();
    const uint32_t n = net_.numNeurons();
    params_.resize(n);
    v_.resize(n);
    synOf_.resize(n);
    outputLine_.assign(n, -1);

    uint32_t max_delay = 1;
    for (uint32_t gid = 0; gid < n; ++gid)
        params_[gid] = net_.neuronParams(net_.fromGlobalIndex(gid));
    for (const Edge &e : net_.edges()) {
        synOf_[net_.globalIndex(e.src)].push_back(
            {net_.globalIndex(e.dst), e.typeClass, e.delay});
        if (e.delay > max_delay)
            max_delay = e.delay;
    }
    for (uint32_t line = 0; line < net_.numOutputs(); ++line)
        outputLine_[net_.globalIndex(net_.outputNeuron(line))] = line;

    ringSize_ = max_delay + 1;
    ring_.assign(ringSize_, {});
    reset();
}

void
DenseSim::reset()
{
    for (uint32_t gid = 0; gid < net_.numNeurons(); ++gid)
        v_[gid] = applyNegativeRule(params_[gid].initialPotential,
                                    params_[gid]);
    for (auto &slot : ring_)
        slot.clear();
    pendingInputs_.clear();
    outputs_.clear();
    counters_ = DenseCounters{};
    rng_.reset(seed_);
    now_ = 0;
}

void
DenseSim::injectInput(uint32_t input, uint64_t tick)
{
    NSCS_ASSERT(input < net_.numInputs(),
                "DenseSim input %u of %u", input, net_.numInputs());
    NSCS_ASSERT(tick >= now_, "DenseSim input for past tick");
    pendingInputs_[tick].push_back(input);
}

void
DenseSim::tick()
{
    const uint64_t t = now_;

    // External inputs integrate this tick.
    auto it = pendingInputs_.find(t);
    if (it != pendingInputs_.end()) {
        for (uint32_t input : it->second) {
            for (const InputAttachment &a :
                     net_.inputAttachments(input)) {
                uint32_t gid = net_.globalIndex(a.dst);
                v_[gid] = integrateSynapse(v_[gid], params_[gid],
                                           a.typeClass, &rng_);
                ++counters_.sops;
            }
        }
        pendingInputs_.erase(it);
    }

    // Delayed recurrent events due this tick.
    auto &due = ring_[t % ringSize_];
    for (const Event &ev : due) {
        v_[ev.dst] = integrateSynapse(v_[ev.dst], params_[ev.dst],
                                      ev.type, &rng_);
        ++counters_.sops;
    }
    due.clear();

    // Conventional clock-driven sweep: every neuron, every tick.
    for (uint32_t gid = 0; gid < net_.numNeurons(); ++gid) {
        ++counters_.evals;
        if (!endOfTickUpdate(v_[gid], params_[gid], &rng_))
            continue;
        ++counters_.spikes;
        if (outputLine_[gid] >= 0)
            outputs_.push_back(
                {t, static_cast<uint32_t>(outputLine_[gid])});
        for (const Syn &s : synOf_[gid])
            ring_[(t + s.delay) % ringSize_].push_back(
                {s.dst, s.type});
    }

    ++now_;
    ++counters_.ticks;
}

void
DenseSim::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

} // namespace nscs
