/**
 * @file
 * Conventional clock-driven SNN simulator — the NEST/Brian-class
 * baseline.
 *
 * Runs the logical network IR directly: no cores, no crossbars, no
 * schedulers, no packets — just neurons, per-source synapse lists and
 * a delay ring, with every neuron updated every tick.  Dynamics are
 * the same integer semantics as the architecture (so deterministic
 * networks produce identical spike trains when the compiler inserted
 * no splitter relays), but the execution style is the conventional
 * software one, which is what benches F4/A2 compare against.
 *
 * Stochastic networks are supported with a single private PRNG whose
 * draw order differs from the per-core hardware streams, so
 * stochastic traces are statistically, not bitwise, comparable.
 */

#ifndef NSCS_BASELINE_DENSE_SIM_HH
#define NSCS_BASELINE_DENSE_SIM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "chip/chip.hh"
#include "prog/network.hh"
#include "util/rng.hh"

namespace nscs {

/** Baseline simulator counters. */
struct DenseCounters
{
    uint64_t ticks = 0;
    uint64_t sops = 0;     //!< synaptic events delivered
    uint64_t spikes = 0;   //!< neuron fires
    uint64_t evals = 0;    //!< neuron updates executed
};

/** The conventional simulator. */
class DenseSim
{
  public:
    /** Build from a validated network (referenced, not copied). */
    explicit DenseSim(const Network &net, uint16_t rng_seed = 0xACE1);

    /** Fire external input line @p input at tick @p tick (>= now). */
    void injectInput(uint32_t input, uint64_t tick);

    /** Execute one tick. */
    void tick();

    /** Execute @p n ticks. */
    void run(uint64_t n);

    /** Next tick to execute. */
    uint64_t now() const { return now_; }

    /** Output spikes (line ids follow Network::markOutput order). */
    const std::vector<OutputSpike> &outputs() const { return outputs_; }

    /** Drop drained output spikes. */
    void clearOutputs() { outputs_.clear(); }

    /** Membrane potential of a neuron (testing). */
    int32_t potential(uint32_t gid) const { return v_[gid]; }

    /** Counters. */
    const DenseCounters &counters() const { return counters_; }

    /** Return to the initial state (pending inputs cleared). */
    void reset();

  private:
    struct Syn
    {
        uint32_t dst;
        uint8_t type;
        uint8_t delay;
    };

    /** A spike event due at a tick: target neuron + type class. */
    struct Event
    {
        uint32_t dst;
        uint8_t type;
    };

    const Network &net_;
    uint16_t seed_;
    std::vector<NeuronParams> params_;
    std::vector<int32_t> v_;
    std::vector<std::vector<Syn>> synOf_;     //!< per source gid
    std::vector<int64_t> outputLine_;         //!< -1 or line id
    std::vector<std::vector<Event>> ring_;    //!< delay ring buffer
    uint32_t ringSize_ = 0;
    std::map<uint64_t, std::vector<uint32_t>> pendingInputs_;
    std::vector<OutputSpike> outputs_;
    DenseCounters counters_;
    Lfsr16 rng_;
    uint64_t now_ = 0;
};

} // namespace nscs

#endif // NSCS_BASELINE_DENSE_SIM_HH
