#include "baseline/reference_sim.hh"

#include "neuron/neuron.hh"
#include "util/logging.hh"

namespace nscs {

ReferenceSim::ReferenceSim(const CompiledModel &model)
    : model_(model)
{
    cores_.resize(model_.cores.size());
    reset();
}

void
ReferenceSim::reset()
{
    for (size_t c = 0; c < cores_.size(); ++c) {
        RefCore &rc = cores_[c];
        rc.cfg = &model_.cores[c];
        const CoreGeometry &g = rc.cfg->geom;
        rc.v.resize(g.numNeurons);
        for (uint32_t n = 0; n < g.numNeurons; ++n) {
            const NeuronParams &p = rc.cfg->neurons[n];
            rc.v[n] = applyNegativeRule(p.initialPotential, p);
        }
        rc.slots.assign(g.delaySlots, BitVec(g.numAxons));
        rc.rng.reset(rc.cfg->rngSeed);
    }
    outputs_.clear();
    counters_ = ReferenceCounters{};
    now_ = 0;
}

void
ReferenceSim::injectInput(uint32_t core, uint32_t axon,
                          uint64_t delivery_tick)
{
    NSCS_ASSERT(core < cores_.size(), "reference injectInput core %u",
                core);
    RefCore &rc = cores_[core];
    NSCS_ASSERT(delivery_tick >= now_ &&
                delivery_tick < now_ + rc.cfg->geom.delaySlots,
                "reference injectInput outside scheduler window");
    rc.slots[delivery_tick % rc.cfg->geom.delaySlots].set(axon);
}

void
ReferenceSim::tick()
{
    const uint64_t t = now_;
    const uint32_t grid_w = model_.gridWidth;

    for (uint32_t c = 0; c < cores_.size(); ++c) {
        RefCore &rc = cores_[c];
        const CoreConfig &cfg = *rc.cfg;
        const uint32_t slots = cfg.geom.delaySlots;

        // Phase 1: drain + integrate, (axon, neuron)-major.
        BitVec &slot = rc.slots[t % slots];
        if (slot.any()) {
            slot.forEachSet([&](size_t a) {
                unsigned g = cfg.axonType[a];
                cfg.xbarRows[a].forEachSet([&](size_t j) {
                    rc.v[j] = integrateSynapse(
                        rc.v[j], cfg.neurons[j], g, &rc.rng);
                    ++counters_.sops;
                });
            });
            slot.reset();
        }

        // Phases 2+3: every neuron, ascending.
        for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n) {
            if (!endOfTickUpdate(rc.v[n], cfg.neurons[n], &rc.rng))
                continue;
            ++counters_.spikes;
            const NeuronDest &d = cfg.dests[n];
            switch (d.kind) {
              case NeuronDest::Kind::None:
                break;
              case NeuronDest::Kind::Output:
                outputs_.push_back({t, d.line});
                ++counters_.spikesOut;
                break;
              case NeuronDest::Kind::Core: {
                uint32_t sx = c % grid_w, sy = c / grid_w;
                uint32_t target =
                    (sy + static_cast<int32_t>(d.dy)) * grid_w +
                    (sx + static_cast<int32_t>(d.dx));
                RefCore &dst = cores_[target];
                dst.slots[(t + d.delay) %
                          dst.cfg->geom.delaySlots].set(d.axon);
                break;
              }
            }
        }
    }

    ++now_;
    ++counters_.ticks;
}

void
ReferenceSim::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

} // namespace nscs
