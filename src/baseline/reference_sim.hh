/**
 * @file
 * Functional reference simulator — the "Compass" analog.
 *
 * An independent tick-level implementation of the architectural
 * semantics, consuming the same CompiledModel as the Chip.  It shares
 * only the pure per-neuron update functions (neuron/neuron.hh) with
 * the cycle-level implementation; cores, schedulers, routing and
 * engine scheduling are re-implemented from the written contract.
 * Its purpose is the published system's one-to-one verification
 * claim: for every legal model and input, the reference and the chip
 * produce identical output spike streams, PRNG draw for PRNG draw.
 */

#ifndef NSCS_BASELINE_REFERENCE_SIM_HH
#define NSCS_BASELINE_REFERENCE_SIM_HH

#include <cstdint>
#include <vector>

#include "chip/chip.hh"
#include "prog/compiled.hh"
#include "util/bitvec.hh"
#include "util/rng.hh"

namespace nscs {

/** Reference implementation counters. */
struct ReferenceCounters
{
    uint64_t ticks = 0;
    uint64_t sops = 0;
    uint64_t spikes = 0;
    uint64_t spikesOut = 0;
};

/** The reference simulator. */
class ReferenceSim
{
  public:
    explicit ReferenceSim(const CompiledModel &model);

    /** Park an external spike (same contract as Chip::injectInput). */
    void injectInput(uint32_t core, uint32_t axon,
                     uint64_t delivery_tick);

    /** Execute one tick. */
    void tick();

    /** Execute @p n ticks. */
    void run(uint64_t n);

    /** Next tick to execute. */
    uint64_t now() const { return now_; }

    /** Output spikes accumulated since the last drain. */
    const std::vector<OutputSpike> &outputs() const { return outputs_; }

    /** Drop drained output spikes. */
    void clearOutputs() { outputs_.clear(); }

    /** Counters. */
    const ReferenceCounters &counters() const { return counters_; }

    /** Return to the initial state. */
    void reset();

  private:
    struct RefCore
    {
        const CoreConfig *cfg = nullptr;
        std::vector<int32_t> v;
        std::vector<BitVec> slots;   //!< delaySlots x numAxons
        Lfsr16 rng;
    };

    const CompiledModel &model_;
    std::vector<RefCore> cores_;
    std::vector<OutputSpike> outputs_;
    ReferenceCounters counters_;
    uint64_t now_ = 0;
};

} // namespace nscs

#endif // NSCS_BASELINE_REFERENCE_SIM_HH
