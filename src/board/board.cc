#include "board/board.hh"

#include <algorithm>
#include <cstdlib>

#include "runtime/parallel.hh"
#include "runtime/source.hh"
#include "util/logging.hh"

namespace nscs {

bool
parseGridSpec(const std::string &spec, uint32_t &w, uint32_t &h)
{
    size_t x = spec.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= spec.size())
        return false;
    auto parse = [](const std::string &s, uint32_t &out) {
        if (s.empty() ||
            s.find_first_not_of("0123456789") != std::string::npos)
            return false;
        unsigned long v = std::strtoul(s.c_str(), nullptr, 10);
        if (v == 0 || v > 256)
            return false;
        out = static_cast<uint32_t>(v);
        return true;
    };
    return parse(spec.substr(0, x), w) && parse(spec.substr(x + 1), h);
}

const char *
linkDirName(uint32_t dir)
{
    static const char *kNames[4] = {"east", "west", "north", "south"};
    return dir < 4 ? kNames[dir] : "?";
}

std::pair<uint32_t, uint32_t>
xyRouteStep(uint32_t at, uint32_t dst, uint32_t bw)
{
    uint32_t ax = at % bw, ay = at / bw;
    uint32_t tx = dst % bw, ty = dst / bw;
    if (tx != ax) {
        return {tx > ax ? Board::East : Board::West,
                ay * bw + (tx > ax ? ax + 1 : ax - 1)};
    }
    return {ty > ay ? Board::North : Board::South,
            (ty > ay ? ay + 1 : ay - 1) * bw + ax};
}

Board::Board(const BoardParams &params, std::vector<CoreConfig> configs)
    : params_(params)
{
    const uint32_t bw = params_.width;
    const uint32_t bh = params_.height;
    if (bw == 0 || bh == 0)
        fatal("board grid %ux%u is empty", bw, bh);
    if (params_.chip.noc != NocModel::Functional)
        fatal("board requires the functional on-chip transport "
              "(egress packets bypass the mesh)");
    chipW_ = params_.chip.width;
    chipH_ = params_.chip.height;
    if (chipW_ == 0 || chipH_ == 0)
        fatal("board chip grid %ux%u is empty", chipW_, chipH_);
    gw_ = bw * chipW_;
    gh_ = bh * chipH_;
    if (configs.size() != static_cast<size_t>(gw_) * gh_)
        fatal("board expects %u core configs (global %ux%u grid), "
              "got %zu", gw_ * gh_, gw_, gh_, configs.size());

    // Every destination must land on the global core grid; the chips
    // themselves skip this check under allowEgress.
    for (uint32_t gy = 0; gy < gh_; ++gy) {
        for (uint32_t gx = 0; gx < gw_; ++gx) {
            const CoreConfig &cfg = configs[gy * gw_ + gx];
            for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n) {
                const NeuronDest &d = cfg.dests[n];
                if (d.kind != NeuronDest::Kind::Core)
                    continue;
                int64_t tx = static_cast<int64_t>(gx) + d.dx;
                int64_t ty = static_cast<int64_t>(gy) + d.dy;
                if (tx < 0 || tx >= static_cast<int64_t>(gw_) ||
                    ty < 0 || ty >= static_cast<int64_t>(gh_))
                    fatal("core (%u, %u) neuron %u targets "
                          "(%lld, %lld) outside the %ux%u global "
                          "grid", gx, gy, n,
                          static_cast<long long>(tx),
                          static_cast<long long>(ty), gw_, gh_);
            }
        }
    }

    // Slice the board fault plan: core-targeted events translate
    // their global core index into (chip, local core) and feed that
    // chip's plan; link events stay board-owned.
    if (params_.chip.faultPlan)
        fatal("board fault plans belong in BoardParams::faultPlan "
              "(chip.faultPlan would bypass global-index slicing)");
    std::vector<std::shared_ptr<const FaultPlan>> chipPlans(
        static_cast<size_t>(bw) * bh);
    if (params_.faultPlan) {
        std::vector<FaultPlan> slices(chipPlans.size());
        for (const FaultEvent &ev : params_.faultPlan->events) {
            if (isLinkFault(ev.kind)) {
                if (ev.chip >= chipPlans.size() || ev.dir >= 4)
                    fatal("link fault event %u targets link "
                          "(chip %u, dir %u) off the %ux%u chip grid",
                          ev.id, ev.chip, ev.dir, bw, bh);
                if (ev.kind == FaultKind::DeadLink)
                    deadLinkEvents_.push_back(ev);
                else
                    linkFaultWindows_.push_back(ev);
                continue;
            }
            if (ev.core >= gw_ * gh_)
                fatal("fault event %u targets global core %u of %u",
                      ev.id, ev.core, gw_ * gh_);
            uint32_t gx = ev.core % gw_, gy = ev.core / gw_;
            uint32_t ci = (gy / chipH_) * bw + gx / chipW_;
            FaultEvent local = ev;
            local.core = (gy % chipH_) * chipW_ + gx % chipW_;
            slices[ci].events.push_back(local);
        }
        std::stable_sort(deadLinkEvents_.begin(),
                         deadLinkEvents_.end(),
                         [](const FaultEvent &a, const FaultEvent &b) {
                             return a.tick < b.tick;
                         });
        deadLinkSuppressed_.assign(deadLinkEvents_.size(), 0);
        linkFaultSuppressed_.assign(linkFaultWindows_.size(), 0);
        for (size_t i = 0; i < chipPlans.size(); ++i)
            if (!slices[i].events.empty())
                chipPlans[i] = std::make_shared<const FaultPlan>(
                    std::move(slices[i]));
    }

    // Partition the global grid into per-chip config slices.  The
    // relative destination offsets survive re-partition untouched:
    // they are offsets from the source core, which sits at the same
    // global coordinate in both framings.
    ChipParams cp = params_.chip;
    cp.allowEgress = true;
    // Chips record their intra-chip core-to-core routes; the board
    // records egress routes.  trafficProfile() merges the two into
    // one full-fidelity cell matrix.
    cp.traceTraffic = params_.traceTraffic;
    chips_.reserve(static_cast<size_t>(bw) * bh);
    for (uint32_t cy = 0; cy < bh; ++cy) {
        for (uint32_t cx = 0; cx < bw; ++cx) {
            std::vector<CoreConfig> slice;
            slice.reserve(static_cast<size_t>(chipW_) * chipH_);
            for (uint32_t ly = 0; ly < chipH_; ++ly) {
                for (uint32_t lx = 0; lx < chipW_; ++lx) {
                    uint32_t gx = cx * chipW_ + lx;
                    uint32_t gy = cy * chipH_ + ly;
                    // Each global cell feeds exactly one chip slice,
                    // so moving keeps peak memory at one model copy.
                    slice.push_back(std::move(configs[gy * gw_ + gx]));
                }
            }
            cp.faultPlan = chipPlans[cy * bw + cx];
            chips_.push_back(
                std::make_unique<Chip>(cp, std::move(slice)));
        }
    }

    linkStats_.assign(static_cast<size_t>(numChips()) * 4,
                      LinkCounters{});
    linkBudget_.assign(linkStats_.size(), 0);
    linkQueued_.assign(linkStats_.size(), 0);
    linkDead_.assign(linkStats_.size(), 0);
    if (params_.link.reliable && params_.link.dedupWindow != 0) {
        dedupRing_.assign(numChips(),
                          std::vector<uint32_t>(
                              params_.link.dedupWindow, 0xffffffffu));
        dedupPos_.assign(numChips(), 0);
    }

    if (params_.trafficProfile) {
        const TrafficProfile &tp = *params_.trafficProfile;
        if (tp.boardW != bw || tp.boardH != bh)
            fatal("traffic profile covers a %ux%u chip grid, board "
                  "is %ux%u", tp.boardW, tp.boardH, bw, bh);
        // Empty table (oversized board or an unloaded profile)
        // falls back to XY.
        routes_ = buildRouteTable(tp);
    }
    if (params_.traceTraffic) {
        // Dense pair matrix + one map per global cell; bounded so a
        // trace run cannot silently eat gigabytes.
        if (numChips() > 1024)
            fatal("traffic tracing supports at most 1024 chips "
                  "(board has %u)", numChips());
        pairTraffic_.assign(
            static_cast<size_t>(numChips()) * numChips(), 0);
        cellTraffic_.assign(numCores(), {});
    }

    if (params_.threads >= 2) {
        pool_ = std::make_unique<ThreadPool>(params_.threads);
    }
}

Board::Board(Board &&) = default;
Board &Board::operator=(Board &&) = default;
Board::~Board() = default;

void
Board::reset()
{
    for (auto &chip : chips_)
        chip->reset();
    outputs_.clear();
    counters_ = BoardCounters{};
    std::fill(linkStats_.begin(), linkStats_.end(), LinkCounters{});
    std::fill(linkQueued_.begin(), linkQueued_.end(), 0u);
    pending_.clear();
    now_ = 0;
    deadLinkCursor_ = 0;
    std::fill(deadLinkSuppressed_.begin(), deadLinkSuppressed_.end(),
              0);
    std::fill(linkFaultSuppressed_.begin(),
              linkFaultSuppressed_.end(), 0);
    std::fill(linkDead_.begin(), linkDead_.end(), 0);
    detectedAlarms_.clear();
    linkFaultStats_ = FaultStats{};
    nextSeq_ = 0;
    for (auto &ring : dedupRing_)
        std::fill(ring.begin(), ring.end(), 0xffffffffu);
    std::fill(dedupPos_.begin(), dedupPos_.end(), 0u);
    cloneScratch_.clear();
    std::fill(pairTraffic_.begin(), pairTraffic_.end(), 0u);
    for (auto &row : cellTraffic_)
        row.clear();
    batch_.clear();
    openPacket_.clear();
}

void
Board::injectInput(uint32_t core, uint32_t axon,
                   uint64_t delivery_tick, uint32_t inst)
{
    NSCS_ASSERT(core < numCores(), "injectInput core %u of %u",
                core, numCores());
    uint32_t gx = core % gw_, gy = core / gw_;
    uint32_t ci = (gy / chipH_) * params_.width + gx / chipW_;
    uint32_t li = (gy % chipH_) * chipW_ + gx % chipW_;
    chips_[ci]->injectInput(li, axon, delivery_tick, inst);
}

void
Board::injectInputs(const std::vector<InputSpike> &spikes,
                    uint64_t delivery_tick)
{
    for (const InputSpike &s : spikes)
        injectInput(s.core, s.axon, delivery_tick, s.instance);
}

/**
 * Advance @p p toward its destination chip, consuming link budget
 * per hop.  Cut-through: with zero transit delay a packet crosses as
 * many links as budgets allow within one merge phase.  A nonzero
 * transit delay parks the packet after each hop and resumes it
 * delay ticks later; an exhausted budget parks it in the link's
 * stall queue for the next tick (without moving its delivery tick,
 * so congestion surfaces as the late-delivery hazard).
 */
int
Board::activeLinkFault(FaultKind kind, uint32_t link, uint64_t t) const
{
    for (size_t i = 0; i < linkFaultWindows_.size(); ++i) {
        const FaultEvent &ev = linkFaultWindows_[i];
        if (ev.kind != kind || linkFaultSuppressed_[i])
            continue;
        if (ev.chip * 4 + ev.dir != link)
            continue;
        if (t >= ev.tick && t < ev.windowEnd())
            return static_cast<int>(i);
    }
    return -1;
}

uint32_t
Board::packetChecksum(const BoardPacket &p) const
{
    // Header checksum over the fields that survive transit unchanged
    // (deliveryTick grows by extraDelay per hop, so it stays out).
    uint64_t h = 0x9e3779b97f4a7c15ull;
    auto mix = [&h](uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(p.dstChip);
    mix(p.dstCore);
    mix(p.axon);
    mix(p.instance);
    mix(p.seq);
    // A coalesced packet checksums its whole payload: corruption of
    // any riding spike rejects the packet as a unit.
    mix(p.payload.size());
    for (const RoutedSpike &s : p.payload) {
        mix(s.core);
        mix(s.axon);
        mix(s.instance);
    }
    return static_cast<uint32_t>(h ^ (h >> 32));
}

void
Board::deliverPacket(const BoardPacket &p)
{
    if (params_.link.reliable) {
        if (packetChecksum(p) != p.checksum) {
            ++linkFaultStats_.checksumErrors;
            return;
        }
        if (!dedupRing_.empty()) {
            std::vector<uint32_t> &ring = dedupRing_[p.dstChip];
            for (uint32_t seen : ring) {
                if (seen == p.seq) {
                    ++linkFaultStats_.dupsDropped;
                    return;
                }
            }
            ring[dedupPos_[p.dstChip]] = p.seq;
            dedupPos_[p.dstChip] =
                (dedupPos_[p.dstChip] + 1) %
                static_cast<uint32_t>(ring.size());
        }
    }
    // Checksum and dedup cleared the packet as a whole; deliver the
    // header spike, then the coalesced payload (all sharing the
    // header's delivery tick) through the bulk path.
    Chip &chip = *chips_[p.dstChip];
    chip.depositRouted(p.dstCore, p.axon, p.deliveryTick, p.instance);
    if (!p.payload.empty())
        chip.depositRoutedMany(p.payload.data(), p.payload.size(),
                               p.deliveryTick);
}

std::pair<uint32_t, uint32_t>
Board::routeStep(uint32_t at, uint32_t dst) const
{
    if (routes_.empty())
        return xyRouteStep(at, dst, params_.width);
    return routes_.step(at, dst);
}

void
Board::walkPacket(BoardPacket p, uint64_t t)
{
    const uint32_t bw = params_.width;
    const uint32_t bh = params_.height;
    const LinkParams &lp = params_.link;
    while (p.atChip != p.dstChip) {
        auto [dir, next] = routeStep(p.atChip, p.dstChip);
        uint32_t link = p.atChip * 4 + dir;

        if (!linkDead_.empty() && linkDead_[link]) {
            // Reroute around the dead link: prefer a step that still
            // makes progress in the other dimension, else a lateral
            // step the next X-then-Y walk can recover from.
            uint32_t ax = p.atChip % bw, ay = p.atChip / bw;
            uint32_t ty = p.dstChip / bw;
            bool xstep = dir == East || dir == West;
            bool hasAlt = true;
            uint32_t adir = 0, anext = 0;
            if (xstep && ty != ay) {
                adir = ty > ay ? North : South;
                anext = (ty > ay ? ay + 1 : ay - 1) * bw + ax;
            } else if (xstep) {
                if (bh < 2)
                    hasAlt = false;
                else {
                    adir = ay + 1 < bh ? North : South;
                    anext = (ay + 1 < bh ? ay + 1 : ay - 1) * bw + ax;
                }
            } else {
                // A Y step means x is already aligned; sidestep in x.
                if (bw < 2)
                    hasAlt = false;
                else {
                    adir = ax + 1 < bw ? East : West;
                    anext = ay * bw + (ax + 1 < bw ? ax + 1 : ax - 1);
                }
            }
            constexpr uint8_t kDetourCap = 8;
            if (!hasAlt || p.detours >= kDetourCap ||
                linkDead_[p.atChip * 4 + adir]) {
                ++linkFaultStats_.detourDrops;
                ++linkFaultStats_.unrecoveredDrops;
                return;
            }
            ++p.detours;
            ++linkFaultStats_.detours;
            dir = adir;
            next = anext;
            link = p.atChip * 4 + adir;
        }

        LinkCounters &lc = linkStats_[link];
        if (lp.packetsPerTick != 0 && linkBudget_[link] == 0) {
            if (lp.queueCapacity != 0 &&
                linkQueued_[link] >= lp.queueCapacity) {
                ++lc.drops;
                ++counters_.linkDrops;
                return;
            }
            ++lc.stalls;
            ++counters_.linkStalls;
            ++linkQueued_[link];
            lc.peakQueue = std::max<uint64_t>(lc.peakQueue,
                                              linkQueued_[link]);
            p.queuedLink = static_cast<int32_t>(link);
            pending_[t + 1].push_back(p);
            return;
        }

        int drop = activeLinkFault(FaultKind::LinkDrop, link, t);
        if (drop >= 0) {
            const FaultEvent &ev = linkFaultWindows_[drop];
            if (lp.packetsPerTick != 0)
                --linkBudget_[link];  // the lost attempt used the slot
            ++linkFaultStats_.linkDrops;
            if (lp.reliable && p.retries < lp.maxRetries) {
                // Retransmit next tick; the delivery tick stays put,
                // so a recovered loss can still arrive late.
                ++p.retries;
                ++linkFaultStats_.retries;
                pending_[t + 1].push_back(p);
                return;
            }
            ++linkFaultStats_.unrecoveredDrops;
            if (ev.transient) {
                ++linkFaultStats_.alarms;
                detectedAlarms_.push_back(ev.id);
            }
            return;
        }

        if (lp.packetsPerTick != 0)
            --linkBudget_[link];
        ++lc.packets;
        ++counters_.linkPackets;
        p.atChip = next;
        p.deliveryTick += lp.extraDelay;

        int dup = activeLinkFault(FaultKind::LinkDuplicate, link, t);
        if (dup >= 0 && !p.dupClone) {
            const FaultEvent &ev = linkFaultWindows_[dup];
            ++linkFaultStats_.linkDups;
            // A protected link dedups the clone at delivery; an
            // unprotected one corrupts state, so a transient dup
            // raises the recovery alarm instead.
            if (!lp.reliable && ev.transient) {
                ++linkFaultStats_.alarms;
                detectedAlarms_.push_back(ev.id);
            }
            BoardPacket clone = p;
            clone.dupClone = 1;
            cloneScratch_.push_back(clone);
        }

        uint64_t transit = lp.extraDelay;
        int slow = activeLinkFault(FaultKind::LinkDelay, link, t);
        if (slow >= 0) {
            ++linkFaultStats_.linkDelays;
            transit += linkFaultWindows_[slow].delayTicks;
        }
        if (transit != 0) {
            pending_[t + transit].push_back(p);
            return;
        }
    }
    deliverPacket(p);
}

void
Board::walkWithClones(BoardPacket p, uint64_t t)
{
    walkPacket(std::move(p), t);
    if (cloneScratch_.empty())
        return;
    // Clones cannot re-duplicate (dupClone), so one drain suffices.
    for (size_t i = 0; i < cloneScratch_.size(); ++i) {
        BoardPacket clone = cloneScratch_[i];
        walkPacket(std::move(clone), t);
    }
    cloneScratch_.clear();
}

void
Board::applyDueFaults(uint64_t t)
{
    while (deadLinkCursor_ < deadLinkEvents_.size() &&
           deadLinkEvents_[deadLinkCursor_].tick <= t) {
        const FaultEvent &ev = deadLinkEvents_[deadLinkCursor_];
        if (!deadLinkSuppressed_[deadLinkCursor_]) {
            uint32_t link = ev.chip * 4 + ev.dir;
            if (!linkDead_[link]) {
                linkDead_[link] = 1;
                ++linkFaultStats_.deadLinks;
            }
        }
        ++deadLinkCursor_;
    }
}

void
Board::mergePhase(uint64_t t)
{
    const LinkParams &lp = params_.link;
    if (lp.packetsPerTick != 0)
        std::fill(linkBudget_.begin(), linkBudget_.end(),
                  lp.packetsPerTick);

    // In-flight packets due now resume first, in the order they
    // parked (deterministic: parking happens in the serial merge).
    while (!pending_.empty() && pending_.begin()->first <= t) {
        NSCS_ASSERT(pending_.begin()->first == t,
                    "in-transit packet missed its resume tick %llu "
                    "(now %llu)",
                    static_cast<unsigned long long>(
                        pending_.begin()->first),
                    static_cast<unsigned long long>(t));
        std::vector<BoardPacket> due =
            std::move(pending_.begin()->second);
        pending_.erase(pending_.begin());
        for (BoardPacket &p : due) {
            if (p.queuedLink >= 0) {
                --linkQueued_[p.queuedLink];
                p.queuedLink = -1;
            }
            walkWithClones(p, t);
        }
    }

    // Fresh egress, chips ascending, each buffer in routing order.
    // Per chip the drain runs in two stages: resolve destinations
    // and group same-(dst chip, delivery tick) spikes into coalesced
    // packets (LinkParams::coalesce), then seal and walk the packets
    // in creation order.  Staging is what lets a later spike join an
    // earlier packet; it cannot change behavior with coalescing off,
    // because packet creation reads only the egress buffer while the
    // walk mutates only link state.
    const uint32_t bw = params_.width;
    const uint32_t cap = lp.coalesce;
    for (uint32_t ci = 0; ci < numChips(); ++ci) {
        Chip &chip = *chips_[ci];
        if (chip.egress().empty())
            continue;
        uint32_t ox = (ci % bw) * chipW_;       // chip origin, cores
        uint32_t oy = (ci / bw) * chipH_;
        batch_.clear();
        openPacket_.clear();
        for (const EgressSpike &e : chip.egress()) {
            uint32_t sx = ox + e.srcCore % chipW_;
            uint32_t sy = oy + e.srcCore / chipW_;
            auto gx = static_cast<uint32_t>(
                static_cast<int32_t>(sx) + e.dx);
            auto gy = static_cast<uint32_t>(
                static_cast<int32_t>(sy) + e.dy);
            NSCS_ASSERT(gx < gw_ && gy < gh_,
                        "egress target (%u, %u) off the %ux%u grid",
                        gx, gy, gw_, gh_);
            ++counters_.egressSpikes;
            counters_.hops +=
                static_cast<uint64_t>(std::abs(e.dx)) +
                static_cast<uint64_t>(std::abs(e.dy));
            const uint32_t dstChip = (gy / chipH_) * bw + gx / chipW_;
            const uint32_t dstCore =
                (gy % chipH_) * chipW_ + gx % chipW_;
            if (!pairTraffic_.empty()) {
                pairTraffic_[static_cast<size_t>(ci) * numChips() +
                             dstChip] += 1;
                cellTraffic_[sy * gw_ + sx][gy * gw_ + gx] += 1;
            }
            if (cap > 1) {
                const auto key =
                    std::make_pair(dstChip, e.deliveryTick);
                auto it = openPacket_.find(key);
                if (it != openPacket_.end()) {
                    BoardPacket &open = batch_[it->second];
                    open.payload.push_back(
                        {dstCore, e.axon,
                         static_cast<uint16_t>(e.instance)});
                    ++counters_.packetsCoalesced;
                    if (1 + open.payload.size() >= cap)
                        openPacket_.erase(it);
                    continue;
                }
            }
            BoardPacket p;
            p.atChip = ci;
            p.dstChip = dstChip;
            p.dstCore = dstCore;
            p.axon = e.axon;
            p.instance = static_cast<uint16_t>(e.instance);
            p.deliveryTick = e.deliveryTick;
            batch_.push_back(std::move(p));
            if (cap > 1)
                openPacket_[std::make_pair(dstChip, e.deliveryTick)] =
                    batch_.size() - 1;
        }
        chip.clearEgress();
        counters_.fabricPackets += batch_.size();
        for (BoardPacket &p : batch_) {
            if (lp.reliable) {
                // Sequence numbers issue in merge order (serial and
                // deterministic), so retransmits and dedup replay
                // bit-identically at any thread count.  The checksum
                // seals here, once the payload is final.
                p.seq = nextSeq_++;
                p.checksum = packetChecksum(p);
            }
            walkWithClones(std::move(p), t);
        }
        batch_.clear();
    }

    // Drain chip outputs in ascending chip order.
    for (auto &chip : chips_) {
        if (chip->outputs().empty())
            continue;
        outputs_.insert(outputs_.end(), chip->outputs().begin(),
                        chip->outputs().end());
        chip->clearOutputs();
    }
}

void
Board::tick()
{
    const uint64_t t = now_;
    applyDueFaults(t);

    // Evaluation phase: chips only mutate their own state (egress is
    // buffered locally), so they evaluate concurrently.
    if (pool_) {
        pool_->parallelFor(numChips(),
                           [this](uint32_t i) { chips_[i]->tick(); });
    } else {
        for (auto &chip : chips_)
            chip->tick();
    }

    mergePhase(t);

    ++now_;
    ++counters_.ticks;
}

void
Board::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

FaultStats
Board::faultStats() const
{
    FaultStats s = linkFaultStats_;
    for (const auto &chip : chips_) {
        const FaultStats &cs = chip->faultStats();
        s.deadCores += cs.deadCores;
        s.stuckWords += cs.stuckWords;
        s.seuFlips += cs.seuFlips;
        s.alarms += cs.alarms;
    }
    return s;
}

void
Board::suppressFault(uint32_t id)
{
    for (auto &chip : chips_)
        chip->suppressFault(id);
    for (size_t i = 0; i < linkFaultWindows_.size(); ++i)
        if (linkFaultWindows_[i].id == id)
            linkFaultSuppressed_[i] = 1;
    for (size_t i = 0; i < deadLinkEvents_.size(); ++i)
        if (deadLinkEvents_[i].id == id)
            deadLinkSuppressed_[i] = 1;
}

void
Board::drainDetectedFaults(std::vector<uint32_t> &out)
{
    for (auto &chip : chips_)
        chip->drainDetectedFaults(out);
    out.insert(out.end(), detectedAlarms_.begin(),
               detectedAlarms_.end());
    detectedAlarms_.clear();
}

void
Board::saveState(JsonValue &out) const
{
    out = JsonValue::object();
    out.set("now", JsonValue::string(u64ToHex(now_)));

    JsonValue counters = JsonValue::object();
    auto putCounter = [&counters](const char *key, uint64_t value) {
        counters.set(key,
                     JsonValue::integer(static_cast<int64_t>(value)));
    };
    putCounter("ticks", counters_.ticks);
    putCounter("egressSpikes", counters_.egressSpikes);
    putCounter("linkPackets", counters_.linkPackets);
    putCounter("linkStalls", counters_.linkStalls);
    putCounter("linkDrops", counters_.linkDrops);
    putCounter("hops", counters_.hops);
    putCounter("fabricPackets", counters_.fabricPackets);
    putCounter("packetsCoalesced", counters_.packetsCoalesced);
    out.set("counters", std::move(counters));

    JsonValue outputs = JsonValue::array();
    for (const OutputSpike &s : outputs_) {
        outputs.append(JsonValue::integer(static_cast<int64_t>(s.tick)));
        outputs.append(JsonValue::integer(s.line));
        outputs.append(JsonValue::integer(s.instance));
    }
    out.set("outputs", std::move(outputs));

    JsonValue links = JsonValue::array();
    for (const LinkCounters &lc : linkStats_) {
        links.append(JsonValue::integer(static_cast<int64_t>(lc.packets)));
        links.append(JsonValue::integer(static_cast<int64_t>(lc.stalls)));
        links.append(JsonValue::integer(static_cast<int64_t>(lc.drops)));
        links.append(
            JsonValue::integer(static_cast<int64_t>(lc.peakQueue)));
    }
    out.set("linkStats", std::move(links));

    JsonValue queued = JsonValue::array();
    for (uint32_t q : linkQueued_)
        queued.append(JsonValue::integer(q));
    out.set("linkQueued", std::move(queued));

    // In-flight packets, keyed by resume tick (map order is already
    // sorted); each bucket keeps its FIFO order.
    JsonValue pending = JsonValue::array();
    for (const auto &[tick, packets] : pending_) {
        JsonValue bucket = JsonValue::object();
        bucket.set("tick",
                   JsonValue::integer(static_cast<int64_t>(tick)));
        JsonValue flat = JsonValue::array();
        for (const BoardPacket &p : packets) {
            flat.append(JsonValue::integer(p.atChip));
            flat.append(JsonValue::integer(p.dstChip));
            flat.append(JsonValue::integer(p.dstCore));
            flat.append(JsonValue::integer(p.axon));
            flat.append(JsonValue::integer(p.instance));
            flat.append(JsonValue::integer(p.queuedLink));
            flat.append(JsonValue::integer(
                static_cast<int64_t>(p.deliveryTick)));
            flat.append(JsonValue::integer(p.seq));
            flat.append(JsonValue::integer(p.checksum));
            flat.append(JsonValue::integer(p.retries));
            flat.append(JsonValue::integer(p.detours));
            flat.append(JsonValue::integer(p.dupClone));
        }
        bucket.set("packets", std::move(flat));
        // Coalesced payloads ride in a parallel per-packet array of
        // (core, axon, instance) triples; omitted when every packet
        // is bare, which keeps pre-coalescing snapshots byte-stable.
        bool anyPayload = false;
        for (const BoardPacket &p : packets)
            if (!p.payload.empty()) {
                anyPayload = true;
                break;
            }
        if (anyPayload) {
            JsonValue payloads = JsonValue::array();
            for (const BoardPacket &p : packets) {
                JsonValue pl = JsonValue::array();
                for (const RoutedSpike &s : p.payload) {
                    pl.append(JsonValue::integer(s.core));
                    pl.append(JsonValue::integer(s.axon));
                    pl.append(JsonValue::integer(s.instance));
                }
                payloads.append(std::move(pl));
            }
            bucket.set("payloads", std::move(payloads));
        }
        pending.append(std::move(bucket));
    }
    out.set("pending", std::move(pending));

    out.set("nextSeq", JsonValue::integer(nextSeq_));
    if (!dedupRing_.empty()) {
        JsonValue rings = JsonValue::array();
        for (const auto &ring : dedupRing_) {
            JsonValue r = JsonValue::array();
            for (uint32_t seen : ring)
                r.append(JsonValue::integer(seen));
            rings.append(std::move(r));
        }
        out.set("dedupRings", std::move(rings));
        JsonValue pos = JsonValue::array();
        for (uint32_t p : dedupPos_)
            pos.append(JsonValue::integer(p));
        out.set("dedupPos", std::move(pos));
    }

    JsonValue dead = JsonValue::array();
    for (uint8_t d : linkDead_)
        dead.append(JsonValue::integer(d));
    out.set("linkDead", std::move(dead));
    out.set("deadLinkCursor",
            JsonValue::integer(
                static_cast<int64_t>(deadLinkCursor_)));
    JsonValue deadSup = JsonValue::array();
    for (uint8_t f : deadLinkSuppressed_)
        deadSup.append(JsonValue::integer(f));
    out.set("deadLinkSuppressed", std::move(deadSup));
    JsonValue winSup = JsonValue::array();
    for (uint8_t f : linkFaultSuppressed_)
        winSup.append(JsonValue::integer(f));
    out.set("linkFaultSuppressed", std::move(winSup));
    JsonValue alarms = JsonValue::array();
    for (uint32_t id : detectedAlarms_)
        alarms.append(JsonValue::integer(id));
    out.set("alarms", std::move(alarms));
    out.set("faultStats", faultStatsToJson(linkFaultStats_));

    JsonValue chips = JsonValue::array();
    for (const auto &chip : chips_) {
        JsonValue cs;
        chip->saveState(cs);
        chips.append(std::move(cs));
    }
    out.set("chips", std::move(chips));
}

bool
Board::restoreState(const JsonValue &in)
{
    if (in.type() != JsonValue::Type::Object)
        return false;
    for (const char *key : {"now", "counters", "outputs", "linkStats",
                            "linkQueued", "pending", "chips"})
        if (!in.has(key))
            return false;
    uint64_t now;
    if (!u64FromHex(in.at("now").asString(), now))
        return false;

    const JsonValue &chips = in.at("chips");
    if (chips.type() != JsonValue::Type::Array ||
        chips.size() != numChips())
        return false;
    for (uint32_t c = 0; c < numChips(); ++c)
        if (!chips_[c]->restoreState(chips.at(c)))
            return false;

    now_ = now;
    const JsonValue &counters = in.at("counters");
    auto getCounter = [&counters](const char *key) {
        return static_cast<uint64_t>(counters.getInt(key, 0));
    };
    counters_.ticks = getCounter("ticks");
    counters_.egressSpikes = getCounter("egressSpikes");
    counters_.linkPackets = getCounter("linkPackets");
    counters_.linkStalls = getCounter("linkStalls");
    counters_.linkDrops = getCounter("linkDrops");
    counters_.hops = getCounter("hops");
    counters_.fabricPackets = getCounter("fabricPackets");
    counters_.packetsCoalesced = getCounter("packetsCoalesced");

    const JsonValue &outputs = in.at("outputs");
    if (outputs.type() != JsonValue::Type::Array ||
        outputs.size() % 3 != 0)
        return false;
    outputs_.clear();
    for (size_t i = 0; i < outputs.size(); i += 3)
        outputs_.push_back(
            {static_cast<uint64_t>(outputs.at(i).asInt()),
             static_cast<uint32_t>(outputs.at(i + 1).asInt()),
             static_cast<uint32_t>(outputs.at(i + 2).asInt())});

    const JsonValue &links = in.at("linkStats");
    if (links.type() != JsonValue::Type::Array ||
        links.size() != linkStats_.size() * 4)
        return false;
    for (size_t i = 0; i < linkStats_.size(); ++i) {
        LinkCounters &lc = linkStats_[i];
        lc.packets = static_cast<uint64_t>(links.at(i * 4).asInt());
        lc.stalls = static_cast<uint64_t>(links.at(i * 4 + 1).asInt());
        lc.drops = static_cast<uint64_t>(links.at(i * 4 + 2).asInt());
        lc.peakQueue =
            static_cast<uint64_t>(links.at(i * 4 + 3).asInt());
    }

    const JsonValue &queued = in.at("linkQueued");
    if (queued.type() != JsonValue::Type::Array ||
        queued.size() != linkQueued_.size())
        return false;
    for (size_t i = 0; i < linkQueued_.size(); ++i)
        linkQueued_[i] = static_cast<uint32_t>(queued.at(i).asInt());

    const JsonValue &pending = in.at("pending");
    if (pending.type() != JsonValue::Type::Array)
        return false;
    pending_.clear();
    for (size_t b = 0; b < pending.size(); ++b) {
        const JsonValue &bucket = pending.at(b);
        if (bucket.type() != JsonValue::Type::Object ||
            !bucket.has("tick") || !bucket.has("packets"))
            return false;
        const JsonValue &flat = bucket.at("packets");
        if (flat.type() != JsonValue::Type::Array ||
            flat.size() % 12 != 0)
            return false;
        std::vector<BoardPacket> &dst =
            pending_[static_cast<uint64_t>(
                bucket.at("tick").asInt())];
        for (size_t i = 0; i < flat.size(); i += 12) {
            BoardPacket p;
            p.atChip = static_cast<uint32_t>(flat.at(i).asInt());
            p.dstChip = static_cast<uint32_t>(flat.at(i + 1).asInt());
            p.dstCore = static_cast<uint32_t>(flat.at(i + 2).asInt());
            p.axon = static_cast<uint16_t>(flat.at(i + 3).asInt());
            p.instance =
                static_cast<uint16_t>(flat.at(i + 4).asInt());
            p.queuedLink =
                static_cast<int32_t>(flat.at(i + 5).asInt());
            p.deliveryTick =
                static_cast<uint64_t>(flat.at(i + 6).asInt());
            p.seq = static_cast<uint32_t>(flat.at(i + 7).asInt());
            p.checksum =
                static_cast<uint32_t>(flat.at(i + 8).asInt());
            p.retries = static_cast<uint8_t>(flat.at(i + 9).asInt());
            p.detours =
                static_cast<uint8_t>(flat.at(i + 10).asInt());
            p.dupClone =
                static_cast<uint8_t>(flat.at(i + 11).asInt());
            if (p.atChip >= numChips() || p.dstChip >= numChips())
                return false;
            dst.push_back(p);
        }
        if (bucket.has("payloads")) {
            const JsonValue &payloads = bucket.at("payloads");
            if (payloads.type() != JsonValue::Type::Array ||
                payloads.size() != dst.size())
                return false;
            for (size_t k = 0; k < payloads.size(); ++k) {
                const JsonValue &pl = payloads.at(k);
                if (pl.type() != JsonValue::Type::Array ||
                    pl.size() % 3 != 0)
                    return false;
                std::vector<RoutedSpike> &payload = dst[k].payload;
                for (size_t i = 0; i < pl.size(); i += 3)
                    payload.push_back(
                        {static_cast<uint32_t>(pl.at(i).asInt()),
                         static_cast<uint16_t>(pl.at(i + 1).asInt()),
                         static_cast<uint16_t>(
                             pl.at(i + 2).asInt())});
            }
        }
    }

    nextSeq_ = static_cast<uint32_t>(in.getInt("nextSeq", 0));
    if (!dedupRing_.empty()) {
        if (!in.has("dedupRings") || !in.has("dedupPos"))
            return false;
        const JsonValue &rings = in.at("dedupRings");
        const JsonValue &pos = in.at("dedupPos");
        if (rings.size() != dedupRing_.size() ||
            pos.size() != dedupPos_.size())
            return false;
        for (size_t c = 0; c < dedupRing_.size(); ++c) {
            const JsonValue &r = rings.at(c);
            if (r.size() != dedupRing_[c].size())
                return false;
            for (size_t i = 0; i < dedupRing_[c].size(); ++i)
                dedupRing_[c][i] =
                    static_cast<uint32_t>(r.at(i).asInt());
            dedupPos_[c] = static_cast<uint32_t>(pos.at(c).asInt());
        }
    }

    if (in.has("linkDead")) {
        const JsonValue &dead = in.at("linkDead");
        if (dead.size() != linkDead_.size())
            return false;
        for (size_t i = 0; i < linkDead_.size(); ++i)
            linkDead_[i] = dead.at(i).asInt() ? 1 : 0;
    }
    deadLinkCursor_ =
        static_cast<size_t>(in.getInt("deadLinkCursor", 0));
    if (deadLinkCursor_ > deadLinkEvents_.size())
        return false;
    if (in.has("deadLinkSuppressed")) {
        const JsonValue &sup = in.at("deadLinkSuppressed");
        if (sup.size() != deadLinkSuppressed_.size())
            return false;
        for (size_t i = 0; i < deadLinkSuppressed_.size(); ++i)
            deadLinkSuppressed_[i] = sup.at(i).asInt() ? 1 : 0;
    }
    if (in.has("linkFaultSuppressed")) {
        const JsonValue &sup = in.at("linkFaultSuppressed");
        if (sup.size() != linkFaultSuppressed_.size())
            return false;
        for (size_t i = 0; i < linkFaultSuppressed_.size(); ++i)
            linkFaultSuppressed_[i] = sup.at(i).asInt() ? 1 : 0;
    }
    detectedAlarms_.clear();
    if (in.has("alarms")) {
        const JsonValue &alarms = in.at("alarms");
        for (size_t i = 0; i < alarms.size(); ++i)
            detectedAlarms_.push_back(
                static_cast<uint32_t>(alarms.at(i).asInt()));
    }
    if (in.has("faultStats"))
        linkFaultStats_ = faultStatsFromJson(in.at("faultStats"));
    cloneScratch_.clear();
    return true;
}

EnergyEvents
Board::energyEvents() const
{
    EnergyEvents e;
    e.ticks = counters_.ticks;
    for (const auto &chip : chips_) {
        EnergyEvents ce = chip->energyEvents();
        e.cores += ce.cores;
        e.neurons += ce.neurons;
        e.sops += ce.sops;
        e.spikes += ce.spikes;
        e.hops += ce.hops;
    }
    // Board-level hops: the core-grid distance of egress spikes, so
    // the aggregate matches what one large chip would have counted.
    e.hops += counters_.hops;
    return e;
}

EnergyBreakdown
Board::energy() const
{
    return computeEnergy(energyEvents(), params_.chip.energy);
}

TrafficProfile
Board::trafficProfile() const
{
    TrafficProfile tp;
    tp.boardW = params_.width;
    tp.boardH = params_.height;
    tp.chipW = chipW_;
    tp.chipH = chipH_;
    tp.ticks = counters_.ticks;
    tp.egressSpikes = counters_.egressSpikes;
    tp.links.resize(linkStats_.size());
    for (size_t l = 0; l < linkStats_.size(); ++l) {
        tp.links[l].packets = linkStats_[l].packets;
        tp.links[l].stalls = linkStats_[l].stalls;
        tp.links[l].drops = linkStats_[l].drops;
    }
    // Pair and cell matrices exist only under traceTraffic.  The
    // board's own matrix holds the inter-chip routes; each chip
    // contributes its intra-chip routes, translated from local core
    // ids to global cells.
    tp.pairSpikes = pairTraffic_;
    tp.cells = cellTraffic_;
    if (!tp.cells.empty()) {
        for (uint32_t ci = 0; ci < numChips(); ++ci) {
            const uint32_t cx = ci % params_.width;
            const uint32_t cy = ci / params_.width;
            const auto &local = chips_[ci]->cellTraffic();
            for (uint32_t lc = 0;
                 lc < static_cast<uint32_t>(local.size()); ++lc) {
                if (local[lc].empty())
                    continue;
                const uint32_t sx = cx * chipW_ + lc % chipW_;
                const uint32_t sy = cy * chipH_ + lc / chipW_;
                auto &row = tp.cells[sy * gw_ + sx];
                for (const auto &[dst, n] : local[lc]) {
                    const uint32_t gx = cx * chipW_ + dst % chipW_;
                    const uint32_t gy = cy * chipH_ + dst / chipW_;
                    row[gy * gw_ + gx] += n;
                }
            }
        }
    }
    return tp;
}

std::string
Board::linkName(uint32_t link) const
{
    uint32_t chip = link / 4;
    return "chip(" + std::to_string(chip % params_.width) + "," +
        std::to_string(chip / params_.width) + ")." +
        linkDirName(link % 4);
}

void
Board::dumpStats(const char *prefix, StatGroup &group) const
{
    std::string pre(prefix);
    EnergyEvents e = energyEvents();
    group.add(pre + ".ticks", static_cast<double>(counters_.ticks),
              "board ticks executed");
    group.add(pre + ".chips", static_cast<double>(numChips()),
              "chips on board");
    group.add(pre + ".cores", static_cast<double>(e.cores),
              "cores across chips");
    group.add(pre + ".neurons", static_cast<double>(e.neurons),
              "neurons across chips");
    group.add(pre + ".sops", static_cast<double>(e.sops),
              "synaptic events");
    group.add(pre + ".spikes", static_cast<double>(e.spikes),
              "neuron fires");
    group.add(pre + ".egressSpikes",
              static_cast<double>(counters_.egressSpikes),
              "spikes routed between chips");
    group.add(pre + ".linkPackets",
              static_cast<double>(counters_.linkPackets),
              "inter-chip link traversals");
    group.add(pre + ".linkStalls",
              static_cast<double>(counters_.linkStalls),
              "packets stalled on link bandwidth");
    group.add(pre + ".linkDrops",
              static_cast<double>(counters_.linkDrops),
              "packets dropped at full link queues");
    group.add(pre + ".fabricPackets",
              static_cast<double>(counters_.fabricPackets),
              "packets entering the inter-chip fabric");
    group.add(pre + ".packetsCoalesced",
              static_cast<double>(counters_.packetsCoalesced),
              "spikes that rode an open coalesced packet");
    if (counters_.fabricPackets != 0)
        group.add(pre + ".payloadOccupancy",
                  static_cast<double>(counters_.egressSpikes) /
                      static_cast<double>(counters_.fabricPackets),
                  "spikes per fabric packet");
    group.add(pre + ".hops", static_cast<double>(e.hops),
              "router traversals (on-chip + board)");
    uint64_t routed = 0, late = 0, out = 0;
    for (const auto &chip : chips_) {
        routed += chip->counters().spikesRouted;
        late += chip->counters().lateDeliveries;
        out += chip->counters().spikesOut;
    }
    group.add(pre + ".spikesRouted", static_cast<double>(routed),
              "intra-chip core-to-core spikes");
    group.add(pre + ".spikesOut", static_cast<double>(out),
              "off-board output spikes");
    group.add(pre + ".lateDeliveries", static_cast<double>(late),
              "packets that missed their delivery slot");
    for (uint32_t l = 0; l < linkStats_.size(); ++l) {
        const LinkCounters &lc = linkStats_[l];
        if (lc.packets == 0 && lc.stalls == 0 && lc.drops == 0)
            continue;
        std::string lp = pre + ".link." + linkName(l);
        group.add(lp + ".packets", static_cast<double>(lc.packets),
                  "packets transferred");
        group.add(lp + ".stalls", static_cast<double>(lc.stalls),
                  "bandwidth stalls");
        group.add(lp + ".drops", static_cast<double>(lc.drops),
                  "queue-full drops");
        group.add(lp + ".peakQueue",
                  static_cast<double>(lc.peakQueue),
                  "stall queue high-water mark");
    }
    if (params_.faultPlan) {
        FaultStats fs = faultStats();
        group.add(pre + ".fault.deadCores",
                  static_cast<double>(fs.deadCores),
                  "cores killed by injected faults");
        group.add(pre + ".fault.stuckWords",
                  static_cast<double>(fs.stuckWords),
                  "crossbar words stuck by injected faults");
        group.add(pre + ".fault.seuFlips",
                  static_cast<double>(fs.seuFlips),
                  "injected potential bit flips");
        group.add(pre + ".fault.deadLinks",
                  static_cast<double>(fs.deadLinks),
                  "links killed by injected faults");
        group.add(pre + ".fault.linkDrops",
                  static_cast<double>(fs.linkDrops),
                  "packets hit by injected drop faults");
        group.add(pre + ".fault.linkDups",
                  static_cast<double>(fs.linkDups),
                  "packets hit by injected duplicate faults");
        group.add(pre + ".fault.linkDelays",
                  static_cast<double>(fs.linkDelays),
                  "packets hit by injected delay faults");
        group.add(pre + ".fault.retries",
                  static_cast<double>(fs.retries),
                  "reliable-link retransmissions");
        group.add(pre + ".fault.dupsDropped",
                  static_cast<double>(fs.dupsDropped),
                  "duplicates discarded by the dedup window");
        group.add(pre + ".fault.detours",
                  static_cast<double>(fs.detours),
                  "dead-link reroute steps");
        group.add(pre + ".fault.detourDrops",
                  static_cast<double>(fs.detourDrops),
                  "packets lost with no route around dead links");
        group.add(pre + ".fault.unrecoveredDrops",
                  static_cast<double>(fs.unrecoveredDrops),
                  "packets lost for good to injected faults");
        group.add(pre + ".fault.checksumErrors",
                  static_cast<double>(fs.checksumErrors),
                  "reliable-link checksum rejections");
        group.add(pre + ".fault.alarms",
                  static_cast<double>(fs.alarms),
                  "detected-fault alarms raised");
    }
    EnergyBreakdown b = computeEnergy(e, params_.chip.energy);
    energyStats(b, e, params_.chip.energy, (pre + ".energy").c_str(),
                group);
}

size_t
Board::footprintBytes() const
{
    size_t bytes = sizeof(Board);
    for (const auto &chip : chips_)
        bytes += chip->footprintBytes();
    bytes += linkStats_.capacity() * sizeof(LinkCounters);
    bytes += linkBudget_.capacity() * sizeof(uint32_t);
    bytes += linkQueued_.capacity() * sizeof(uint32_t);
    bytes += outputs_.capacity() * sizeof(OutputSpike);
    for (const auto &kv : pending_) {
        bytes += kv.second.capacity() * sizeof(BoardPacket);
        for (const BoardPacket &p : kv.second)
            bytes += p.payload.capacity() * sizeof(RoutedSpike);
    }
    bytes += batch_.capacity() * sizeof(BoardPacket);
    bytes += routes_.nextDir.capacity();
    bytes += pairTraffic_.capacity() * sizeof(uint64_t);
    // Red-black tree nodes: payload plus ~3 pointers + color.
    constexpr size_t kMapNode =
        sizeof(std::pair<uint32_t, uint64_t>) + 4 * sizeof(void *);
    for (const auto &row : cellTraffic_)
        bytes += sizeof(row) + row.size() * kMapNode;
    bytes += linkFaultWindows_.capacity() * sizeof(FaultEvent);
    bytes += deadLinkEvents_.capacity() * sizeof(FaultEvent);
    bytes += linkFaultSuppressed_.capacity() +
        deadLinkSuppressed_.capacity() + linkDead_.capacity();
    bytes += detectedAlarms_.capacity() * sizeof(uint32_t);
    bytes += cloneScratch_.capacity() * sizeof(BoardPacket);
    for (const auto &ring : dedupRing_)
        bytes += ring.capacity() * sizeof(uint32_t);
    bytes += dedupPos_.capacity() * sizeof(uint32_t);
    if (params_.faultPlan)
        bytes += params_.faultPlan->footprintBytes();
    return bytes;
}

} // namespace nscs
