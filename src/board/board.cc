#include "board/board.hh"

#include <algorithm>
#include <cstdlib>

#include "runtime/parallel.hh"
#include "util/logging.hh"

namespace nscs {

bool
parseGridSpec(const std::string &spec, uint32_t &w, uint32_t &h)
{
    size_t x = spec.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= spec.size())
        return false;
    auto parse = [](const std::string &s, uint32_t &out) {
        if (s.empty() ||
            s.find_first_not_of("0123456789") != std::string::npos)
            return false;
        unsigned long v = std::strtoul(s.c_str(), nullptr, 10);
        if (v == 0 || v > 256)
            return false;
        out = static_cast<uint32_t>(v);
        return true;
    };
    return parse(spec.substr(0, x), w) && parse(spec.substr(x + 1), h);
}

const char *
linkDirName(uint32_t dir)
{
    static const char *kNames[4] = {"east", "west", "north", "south"};
    return dir < 4 ? kNames[dir] : "?";
}

std::pair<uint32_t, uint32_t>
xyRouteStep(uint32_t at, uint32_t dst, uint32_t bw)
{
    uint32_t ax = at % bw, ay = at / bw;
    uint32_t tx = dst % bw, ty = dst / bw;
    if (tx != ax) {
        return {tx > ax ? Board::East : Board::West,
                ay * bw + (tx > ax ? ax + 1 : ax - 1)};
    }
    return {ty > ay ? Board::North : Board::South,
            (ty > ay ? ay + 1 : ay - 1) * bw + ax};
}

Board::Board(const BoardParams &params, std::vector<CoreConfig> configs)
    : params_(params)
{
    const uint32_t bw = params_.width;
    const uint32_t bh = params_.height;
    if (bw == 0 || bh == 0)
        fatal("board grid %ux%u is empty", bw, bh);
    if (params_.chip.noc != NocModel::Functional)
        fatal("board requires the functional on-chip transport "
              "(egress packets bypass the mesh)");
    chipW_ = params_.chip.width;
    chipH_ = params_.chip.height;
    if (chipW_ == 0 || chipH_ == 0)
        fatal("board chip grid %ux%u is empty", chipW_, chipH_);
    gw_ = bw * chipW_;
    gh_ = bh * chipH_;
    if (configs.size() != static_cast<size_t>(gw_) * gh_)
        fatal("board expects %u core configs (global %ux%u grid), "
              "got %zu", gw_ * gh_, gw_, gh_, configs.size());

    // Every destination must land on the global core grid; the chips
    // themselves skip this check under allowEgress.
    for (uint32_t gy = 0; gy < gh_; ++gy) {
        for (uint32_t gx = 0; gx < gw_; ++gx) {
            const CoreConfig &cfg = configs[gy * gw_ + gx];
            for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n) {
                const NeuronDest &d = cfg.dests[n];
                if (d.kind != NeuronDest::Kind::Core)
                    continue;
                int64_t tx = static_cast<int64_t>(gx) + d.dx;
                int64_t ty = static_cast<int64_t>(gy) + d.dy;
                if (tx < 0 || tx >= static_cast<int64_t>(gw_) ||
                    ty < 0 || ty >= static_cast<int64_t>(gh_))
                    fatal("core (%u, %u) neuron %u targets "
                          "(%lld, %lld) outside the %ux%u global "
                          "grid", gx, gy, n,
                          static_cast<long long>(tx),
                          static_cast<long long>(ty), gw_, gh_);
            }
        }
    }

    // Partition the global grid into per-chip config slices.  The
    // relative destination offsets survive re-partition untouched:
    // they are offsets from the source core, which sits at the same
    // global coordinate in both framings.
    ChipParams cp = params_.chip;
    cp.allowEgress = true;
    chips_.reserve(static_cast<size_t>(bw) * bh);
    for (uint32_t cy = 0; cy < bh; ++cy) {
        for (uint32_t cx = 0; cx < bw; ++cx) {
            std::vector<CoreConfig> slice;
            slice.reserve(static_cast<size_t>(chipW_) * chipH_);
            for (uint32_t ly = 0; ly < chipH_; ++ly) {
                for (uint32_t lx = 0; lx < chipW_; ++lx) {
                    uint32_t gx = cx * chipW_ + lx;
                    uint32_t gy = cy * chipH_ + ly;
                    // Each global cell feeds exactly one chip slice,
                    // so moving keeps peak memory at one model copy.
                    slice.push_back(std::move(configs[gy * gw_ + gx]));
                }
            }
            chips_.push_back(
                std::make_unique<Chip>(cp, std::move(slice)));
        }
    }

    linkStats_.assign(static_cast<size_t>(numChips()) * 4,
                      LinkCounters{});
    linkBudget_.assign(linkStats_.size(), 0);
    linkQueued_.assign(linkStats_.size(), 0);

    if (params_.threads >= 2) {
        pool_ = std::make_unique<ThreadPool>(params_.threads);
    }
}

Board::Board(Board &&) = default;
Board &Board::operator=(Board &&) = default;
Board::~Board() = default;

void
Board::reset()
{
    for (auto &chip : chips_)
        chip->reset();
    outputs_.clear();
    counters_ = BoardCounters{};
    std::fill(linkStats_.begin(), linkStats_.end(), LinkCounters{});
    std::fill(linkQueued_.begin(), linkQueued_.end(), 0u);
    pending_.clear();
    now_ = 0;
}

void
Board::injectInput(uint32_t core, uint32_t axon,
                   uint64_t delivery_tick)
{
    NSCS_ASSERT(core < numCores(), "injectInput core %u of %u",
                core, numCores());
    uint32_t gx = core % gw_, gy = core / gw_;
    uint32_t ci = (gy / chipH_) * params_.width + gx / chipW_;
    uint32_t li = (gy % chipH_) * chipW_ + gx % chipW_;
    chips_[ci]->injectInput(li, axon, delivery_tick);
}

/**
 * Advance @p p toward its destination chip, consuming link budget
 * per hop.  Cut-through: with zero transit delay a packet crosses as
 * many links as budgets allow within one merge phase.  A nonzero
 * transit delay parks the packet after each hop and resumes it
 * delay ticks later; an exhausted budget parks it in the link's
 * stall queue for the next tick (without moving its delivery tick,
 * so congestion surfaces as the late-delivery hazard).
 */
void
Board::walkPacket(BoardPacket p, uint64_t t)
{
    const uint32_t bw = params_.width;
    const LinkParams &lp = params_.link;
    while (p.atChip != p.dstChip) {
        auto [dir, next] = xyRouteStep(p.atChip, p.dstChip, bw);
        uint32_t link = p.atChip * 4 + dir;
        LinkCounters &lc = linkStats_[link];
        if (lp.packetsPerTick != 0 && linkBudget_[link] == 0) {
            if (lp.queueCapacity != 0 &&
                linkQueued_[link] >= lp.queueCapacity) {
                ++lc.drops;
                ++counters_.linkDrops;
                return;
            }
            ++lc.stalls;
            ++counters_.linkStalls;
            ++linkQueued_[link];
            lc.peakQueue = std::max<uint64_t>(lc.peakQueue,
                                              linkQueued_[link]);
            p.queuedLink = static_cast<int32_t>(link);
            pending_[t + 1].push_back(p);
            return;
        }
        if (lp.packetsPerTick != 0)
            --linkBudget_[link];
        ++lc.packets;
        ++counters_.linkPackets;
        p.atChip = next;
        p.deliveryTick += lp.extraDelay;
        if (lp.extraDelay != 0) {
            pending_[t + lp.extraDelay].push_back(p);
            return;
        }
    }
    chips_[p.dstChip]->depositRouted(p.dstCore, p.axon,
                                     p.deliveryTick);
}

void
Board::mergePhase(uint64_t t)
{
    const LinkParams &lp = params_.link;
    if (lp.packetsPerTick != 0)
        std::fill(linkBudget_.begin(), linkBudget_.end(),
                  lp.packetsPerTick);

    // In-flight packets due now resume first, in the order they
    // parked (deterministic: parking happens in the serial merge).
    while (!pending_.empty() && pending_.begin()->first <= t) {
        NSCS_ASSERT(pending_.begin()->first == t,
                    "in-transit packet missed its resume tick %llu "
                    "(now %llu)",
                    static_cast<unsigned long long>(
                        pending_.begin()->first),
                    static_cast<unsigned long long>(t));
        std::vector<BoardPacket> due =
            std::move(pending_.begin()->second);
        pending_.erase(pending_.begin());
        for (BoardPacket &p : due) {
            if (p.queuedLink >= 0) {
                --linkQueued_[p.queuedLink];
                p.queuedLink = -1;
            }
            walkPacket(p, t);
        }
    }

    // Fresh egress, chips ascending, each buffer in routing order.
    const uint32_t bw = params_.width;
    for (uint32_t ci = 0; ci < numChips(); ++ci) {
        Chip &chip = *chips_[ci];
        if (chip.egress().empty())
            continue;
        uint32_t ox = (ci % bw) * chipW_;       // chip origin, cores
        uint32_t oy = (ci / bw) * chipH_;
        for (const EgressSpike &e : chip.egress()) {
            uint32_t sx = ox + e.srcCore % chipW_;
            uint32_t sy = oy + e.srcCore / chipW_;
            auto gx = static_cast<uint32_t>(
                static_cast<int32_t>(sx) + e.dx);
            auto gy = static_cast<uint32_t>(
                static_cast<int32_t>(sy) + e.dy);
            NSCS_ASSERT(gx < gw_ && gy < gh_,
                        "egress target (%u, %u) off the %ux%u grid",
                        gx, gy, gw_, gh_);
            ++counters_.egressSpikes;
            counters_.hops +=
                static_cast<uint64_t>(std::abs(e.dx)) +
                static_cast<uint64_t>(std::abs(e.dy));
            BoardPacket p;
            p.atChip = ci;
            p.dstChip = (gy / chipH_) * bw + gx / chipW_;
            p.dstCore = (gy % chipH_) * chipW_ + gx % chipW_;
            p.axon = e.axon;
            p.deliveryTick = e.deliveryTick;
            walkPacket(p, t);
        }
        chip.clearEgress();
    }

    // Drain chip outputs in ascending chip order.
    for (auto &chip : chips_) {
        if (chip->outputs().empty())
            continue;
        outputs_.insert(outputs_.end(), chip->outputs().begin(),
                        chip->outputs().end());
        chip->clearOutputs();
    }
}

void
Board::tick()
{
    const uint64_t t = now_;

    // Evaluation phase: chips only mutate their own state (egress is
    // buffered locally), so they evaluate concurrently.
    if (pool_) {
        pool_->parallelFor(numChips(),
                           [this](uint32_t i) { chips_[i]->tick(); });
    } else {
        for (auto &chip : chips_)
            chip->tick();
    }

    mergePhase(t);

    ++now_;
    ++counters_.ticks;
}

void
Board::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

EnergyEvents
Board::energyEvents() const
{
    EnergyEvents e;
    e.ticks = counters_.ticks;
    for (const auto &chip : chips_) {
        EnergyEvents ce = chip->energyEvents();
        e.cores += ce.cores;
        e.neurons += ce.neurons;
        e.sops += ce.sops;
        e.spikes += ce.spikes;
        e.hops += ce.hops;
    }
    // Board-level hops: the core-grid distance of egress spikes, so
    // the aggregate matches what one large chip would have counted.
    e.hops += counters_.hops;
    return e;
}

EnergyBreakdown
Board::energy() const
{
    return computeEnergy(energyEvents(), params_.chip.energy);
}

std::string
Board::linkName(uint32_t link) const
{
    uint32_t chip = link / 4;
    return "chip(" + std::to_string(chip % params_.width) + "," +
        std::to_string(chip / params_.width) + ")." +
        linkDirName(link % 4);
}

void
Board::dumpStats(const char *prefix, StatGroup &group) const
{
    std::string pre(prefix);
    EnergyEvents e = energyEvents();
    group.add(pre + ".ticks", static_cast<double>(counters_.ticks),
              "board ticks executed");
    group.add(pre + ".chips", static_cast<double>(numChips()),
              "chips on board");
    group.add(pre + ".cores", static_cast<double>(e.cores),
              "cores across chips");
    group.add(pre + ".neurons", static_cast<double>(e.neurons),
              "neurons across chips");
    group.add(pre + ".sops", static_cast<double>(e.sops),
              "synaptic events");
    group.add(pre + ".spikes", static_cast<double>(e.spikes),
              "neuron fires");
    group.add(pre + ".egressSpikes",
              static_cast<double>(counters_.egressSpikes),
              "spikes routed between chips");
    group.add(pre + ".linkPackets",
              static_cast<double>(counters_.linkPackets),
              "inter-chip link traversals");
    group.add(pre + ".linkStalls",
              static_cast<double>(counters_.linkStalls),
              "packets stalled on link bandwidth");
    group.add(pre + ".linkDrops",
              static_cast<double>(counters_.linkDrops),
              "packets dropped at full link queues");
    group.add(pre + ".hops", static_cast<double>(e.hops),
              "router traversals (on-chip + board)");
    uint64_t routed = 0, late = 0, out = 0;
    for (const auto &chip : chips_) {
        routed += chip->counters().spikesRouted;
        late += chip->counters().lateDeliveries;
        out += chip->counters().spikesOut;
    }
    group.add(pre + ".spikesRouted", static_cast<double>(routed),
              "intra-chip core-to-core spikes");
    group.add(pre + ".spikesOut", static_cast<double>(out),
              "off-board output spikes");
    group.add(pre + ".lateDeliveries", static_cast<double>(late),
              "packets that missed their delivery slot");
    for (uint32_t l = 0; l < linkStats_.size(); ++l) {
        const LinkCounters &lc = linkStats_[l];
        if (lc.packets == 0 && lc.stalls == 0 && lc.drops == 0)
            continue;
        std::string lp = pre + ".link." + linkName(l);
        group.add(lp + ".packets", static_cast<double>(lc.packets),
                  "packets transferred");
        group.add(lp + ".stalls", static_cast<double>(lc.stalls),
                  "bandwidth stalls");
        group.add(lp + ".drops", static_cast<double>(lc.drops),
                  "queue-full drops");
        group.add(lp + ".peakQueue",
                  static_cast<double>(lc.peakQueue),
                  "stall queue high-water mark");
    }
    EnergyBreakdown b = computeEnergy(e, params_.chip.energy);
    energyStats(b, e, params_.chip.energy, (pre + ".energy").c_str(),
                group);
}

size_t
Board::footprintBytes() const
{
    size_t bytes = sizeof(Board);
    for (const auto &chip : chips_)
        bytes += chip->footprintBytes();
    bytes += linkStats_.capacity() * sizeof(LinkCounters);
    bytes += linkBudget_.capacity() * sizeof(uint32_t);
    bytes += linkQueued_.capacity() * sizeof(uint32_t);
    bytes += outputs_.capacity() * sizeof(OutputSpike);
    for (const auto &kv : pending_)
        bytes += kv.second.capacity() * sizeof(BoardPacket);
    return bytes;
}

} // namespace nscs
