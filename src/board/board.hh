/**
 * @file
 * The board: a grid of chips joined by inter-chip links, running one
 * simulation under a global tick discipline.
 *
 * Boards compose chips exactly the way chips compose cores: a
 * W×H grid of identical chips spans a global core grid of
 * (W·chipW)×(H·chipH) cores, and a neuron destination is still a
 * relative core offset — offsets that leave the owning chip surface
 * as EgressSpikes (see chip/chip.hh) and travel over links instead
 * of the on-chip mesh.  Following the scaling argument of the
 * source architecture (and Mehonic & Kenyon's observation that
 * neuromorphic scale-out is a *communication* problem), links are
 * the scarce resource: each directed link between adjacent chips
 * carries a bounded number of packets per tick, adds a fixed transit
 * delay per hop, and counts stalls and drops.
 *
 * Tick semantics:
 *
 *  1. Evaluation phase: every chip executes its own tick t.  Chips
 *     touch only their own state (cross-chip spikes are buffered as
 *     egress), so chips evaluate concurrently across the board's
 *     ThreadPool lanes; each chip may additionally run its own
 *     parallel tick engine.
 *  2. Merge phase (serial, deterministic): in-transit packets due
 *     this tick resume first, then each chip's egress buffer drains
 *     in ascending chip order.  A packet follows X-then-Y
 *     dimension-order routing over the chip grid; every link
 *     traversal consumes one unit of that link's per-tick budget and
 *     adds the link's transit delay to both the packet's progress
 *     and its delivery tick.  A packet meeting an exhausted link
 *     parks in that link's queue (a stall) and retries next tick; a
 *     full queue drops the packet.  Stall ticks do *not* move the
 *     delivery tick, so a congested packet can miss its scheduler
 *     slot and is then handled by the chip's late-delivery wrap rule
 *     — the same architectural hazard the on-chip mesh models.
 *
 * Determinism contract: the merge phase is serial and ordered, so
 * output spikes, counters and link statistics are bit-identical
 * regardless of the board's (or any chip's) thread count — the same
 * contract Chip::tickParallel honors.  With an unconstrained link
 * (budget 0 = unlimited, transit delay 0) a board is architecturally
 * equivalent to one large chip over the same global core grid: every
 * spike integrates at the same target on the same tick.
 */

#ifndef NSCS_BOARD_BOARD_HH
#define NSCS_BOARD_BOARD_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "board/traffic.hh"
#include "chip/chip.hh"

namespace nscs {

class ThreadPool;

/** Parse a "WxH" grid spec; false on malformed or zero dimensions. */
bool parseGridSpec(const std::string &spec, uint32_t &w, uint32_t &h);

/** Lowercase name of a link direction (Board::Dir). */
const char *linkDirName(uint32_t dir);

/**
 * One step of the X-then-Y dimension-order route between chips on a
 * width-@p bw grid: returns {direction, next chip index}.  This is
 * the routing function the runtime walk uses; static traffic
 * analysis (nscs_inspect) shares it so the two cannot diverge.
 * @p at must differ from @p dst.
 */
std::pair<uint32_t, uint32_t> xyRouteStep(uint32_t at, uint32_t dst,
                                          uint32_t bw);

/** Inter-chip link model. */
struct LinkParams
{
    /** Packets one link can transfer per tick; 0 = unlimited. */
    uint32_t packetsPerTick = 0;

    /** Transit ticks added per link hop (0 = same-tick cut-through,
     *  matching the functional on-chip transport). */
    uint32_t extraDelay = 0;

    /** Stalled packets one link can queue; 0 = unlimited.  Packets
     *  arriving at a full queue are dropped. */
    uint32_t queueCapacity = 0;

    /**
     * Reliable link protocol: packets carry a sequence number and a
     * checksum; a packet lost to an injected drop fault is
     * retransmitted (up to maxRetries), and duplicated packets are
     * discarded at the destination by a per-chip dedup window.
     * Retransmission consumes fresh link budget on the retry tick
     * and does not move the delivery tick, so recovered losses can
     * still surface as the late-delivery hazard.
     */
    bool reliable = false;

    /** Retransmissions before a drop-faulted packet is abandoned. */
    uint32_t maxRetries = 3;

    /** Sequence numbers each chip remembers for duplicate discard. */
    uint32_t dedupWindow = 64;

    /**
     * Packet coalescing: spikes leaving one chip for the same
     * destination chip with the same delivery tick share one packet,
     * up to this many spikes per packet (0 or 1 = one spike per
     * packet, the PR 4 behavior).  A coalesced packet is the unit of
     * every link mechanism — it consumes one budget slot, stalls,
     * drops, retries and dedups as a whole — so link-budget-limited
     * workloads gain throughput without changing which spikes are
     * delivered where or when.
     */
    uint32_t coalesce = 0;
};

/** Board construction parameters. */
struct BoardParams
{
    uint32_t width = 1;   //!< chips in x
    uint32_t height = 1;  //!< chips in y

    /** Per-chip parameters; chip.width/height are cores per chip and
     *  chip.noc must be Functional.  chip.allowEgress is forced on.
     *  chip.threads may select a per-chip parallel engine on top of
     *  the board's own lanes. */
    ChipParams chip;

    LinkParams link;      //!< model of every inter-chip link

    /** Worker lanes for the board-level evaluation phase; 0 or 1
     *  evaluates chips serially.  Output is bit-identical either
     *  way. */
    uint32_t threads = 0;

    /**
     * Optional fault plan for the whole board.  Core-targeted events
     * use *global* core indices (the configs[] layout) and are sliced
     * into per-chip plans; link events name a (chip, dir) pair.  Do
     * not set chip.faultPlan directly on a board.  Events apply at
     * the start of their scheduled tick.
     */
    std::shared_ptr<const FaultPlan> faultPlan;

    /**
     * Record chip-pair and core-cell traffic during the run so
     * Board::trafficProfile() returns a full profile (the per-link
     * loads are always counted).  Off by default: the full-resolution
     * matrices cost memory and a map update per egress spike.
     */
    bool traceTraffic = false;

    /**
     * Traffic profile from a previous trace run.  When set (and the
     * board dimensions match), inter-chip routes follow static
     * congestion-aware shortest paths over the measured link loads
     * (buildRouteTable) instead of fixed XY.  Determinism is
     * unaffected: the table is built once at construction.
     */
    std::shared_ptr<const TrafficProfile> trafficProfile;
};

/** Per-link event counters. */
struct LinkCounters
{
    uint64_t packets = 0;   //!< successful transfers
    uint64_t stalls = 0;    //!< packets parked on an exhausted budget
    uint64_t drops = 0;     //!< packets lost to a full queue
    uint64_t peakQueue = 0; //!< high-water mark of the stall queue
};

/** Board-level aggregate counters (beyond per-chip counters). */
struct BoardCounters
{
    uint64_t ticks = 0;        //!< board ticks executed
    uint64_t egressSpikes = 0; //!< spikes that left their chip
    uint64_t linkPackets = 0;  //!< link traversals (all links)
    uint64_t linkStalls = 0;   //!< stall events (all links)
    uint64_t linkDrops = 0;    //!< dropped packets (all links)
    uint64_t hops = 0;         //!< core-grid manhattan of egress spikes
    uint64_t fabricPackets = 0;    //!< packets entering the fabric
    uint64_t packetsCoalesced = 0; //!< spikes that rode an open packet
};

/** The simulated board. */
class Board
{
  public:
    /** Direction of a link leaving a chip. */
    enum Dir : uint32_t { East = 0, West = 1, North = 2, South = 3 };

    /**
     * Build a board.  @p configs holds one CoreConfig per core of
     * the *global* core grid in row-major order (index =
     * gy * globalWidth() + gx) — the same layout a single chip over
     * the whole grid would take, which is what makes chip-vs-board
     * differential testing a pure re-partition.
     */
    Board(const BoardParams &params, std::vector<CoreConfig> configs);

    Board(Board &&);
    Board &operator=(Board &&);
    ~Board();

    /** Return every chip and all links to the initial state. */
    void reset();

    /**
     * Deposit an external input spike into global core @p core's
     * axon @p axon for delivery at absolute tick @p delivery_tick.
     * Host I/O is functional: no link bandwidth is consumed.
     */
    void injectInput(uint32_t core, uint32_t axon,
                     uint64_t delivery_tick, uint32_t inst = 0);

    /** Bulk injectInput: every spike delivers at @p delivery_tick
     *  (see Chip::injectInputs). */
    void injectInputs(const std::vector<InputSpike> &spikes,
                      uint64_t delivery_tick);

    /** Execute one global tick (see the file comment). */
    void tick();

    /** Execute @p n ticks. */
    void run(uint64_t n);

    /** Next tick to execute (== ticks executed so far). */
    uint64_t now() const { return now_; }

    /**
     * Output spikes accumulated since the last drain, in
     * deterministic (tick, then chip-major) order.
     */
    const std::vector<OutputSpike> &outputs() const { return outputs_; }

    /** Drop drained output spikes. */
    void clearOutputs() { outputs_.clear(); }

    /** Number of chips. */
    uint32_t numChips() const
    {
        return static_cast<uint32_t>(chips_.size());
    }

    /** Chip access. */
    const Chip &chip(uint32_t idx) const { return *chips_[idx]; }

    /** Mutable chip access (diagnostics/tests). */
    Chip &chip(uint32_t idx) { return *chips_[idx]; }

    /** Global core grid width (cores). */
    uint32_t globalWidth() const { return gw_; }

    /** Global core grid height (cores). */
    uint32_t globalHeight() const { return gh_; }

    /** Total cores across all chips. */
    uint32_t numCores() const { return gw_ * gh_; }

    /** Board-level counters. */
    const BoardCounters &counters() const { return counters_; }

    /**
     * Per-link counters, indexed chip * 4 + Dir.  Links leading off
     * the board exist in the table but never carry traffic.
     */
    const std::vector<LinkCounters> &linkCounters() const
    {
        return linkStats_;
    }

    /** Aggregate energy inputs over every chip plus link traffic. */
    EnergyEvents energyEvents() const;

    /** Energy decomposition since reset (per-chip constants). */
    EnergyBreakdown energy() const;

    /** Construction parameters. */
    const BoardParams &params() const { return params_; }

    /** Append board + aggregate chip stats under @p prefix. */
    void dumpStats(const char *prefix, StatGroup &group) const;

    /** Total heap footprint of chips + fabric in bytes. */
    size_t footprintBytes() const;

    /** Human-readable name of a link, e.g. "chip(1,0).east". */
    std::string linkName(uint32_t link) const;

    /**
     * Export the traffic measured since reset as a profile.  Link
     * loads are always populated; the chip-pair and core-cell
     * matrices are present only when BoardParams::traceTraffic was
     * set.  Deterministic for a fixed seed and input schedule.
     */
    TrafficProfile trafficProfile() const;

    /** The active route table; empty means XY routing. */
    const RouteTable &routeTable() const { return routes_; }

    // --- fault injection -------------------------------------------------

    /**
     * Aggregate fault counters: the board's link-level stats plus
     * every chip's core-level stats (all zero without a plan).
     */
    FaultStats faultStats() const;

    /** True when fault injection has killed link @p link. */
    bool linkDead(uint32_t link) const { return linkDead_[link] != 0; }

    /** Suppress plan event @p id board-wide (see Chip::suppressFault). */
    void suppressFault(uint32_t id);

    /**
     * Move the ids of transient faults detected since the last drain
     * (chips in ascending order, then link faults) into @p out.
     */
    void drainDetectedFaults(std::vector<uint32_t> &out);

    // --- snapshot --------------------------------------------------------

    /** Serialize the full mutable board state into @p out (snapshot). */
    void saveState(JsonValue &out) const;

    /**
     * Restore state saved by saveState().  Construction parameters
     * must match the snapshot's origin; @return false on a
     * structural mismatch (state is unspecified on failure).
     */
    bool restoreState(const JsonValue &in);

  private:
    /** A cross-chip spike in flight. */
    struct BoardPacket
    {
        uint32_t atChip = 0;        //!< current chip index
        uint32_t dstChip = 0;       //!< destination chip index
        uint32_t dstCore = 0;       //!< local core on dstChip
        uint16_t axon = 0;          //!< target axon
        uint16_t instance = 0;      //!< destination instance lane
        int32_t queuedLink = -1;    //!< stall queue membership
        uint64_t deliveryTick = 0;  //!< scheduler delivery tick

        // Reliable-protocol / fault-model fields (LinkParams).
        uint32_t seq = 0;           //!< merge-order sequence number
        uint32_t checksum = 0;      //!< header checksum (reliable)
        uint8_t retries = 0;        //!< retransmissions so far
        uint8_t detours = 0;        //!< dead-link reroute steps taken
        uint8_t dupClone = 0;       //!< spawned by a duplicate fault

        /** Coalesced spikes riding along (LinkParams::coalesce); the
         *  header fields above carry the first spike.  All share
         *  deliveryTick and dstChip. */
        std::vector<RoutedSpike> payload;
    };

    void walkPacket(BoardPacket p, uint64_t t);
    void walkWithClones(BoardPacket p, uint64_t t);
    void mergePhase(uint64_t t);
    std::pair<uint32_t, uint32_t> routeStep(uint32_t at,
                                            uint32_t dst) const;
    void applyDueFaults(uint64_t t);
    void deliverPacket(const BoardPacket &p);
    uint32_t packetChecksum(const BoardPacket &p) const;
    int activeLinkFault(FaultKind kind, uint32_t link,
                        uint64_t t) const;

    BoardParams params_;
    uint32_t chipW_ = 0, chipH_ = 0;  //!< cores per chip
    uint32_t gw_ = 0, gh_ = 0;        //!< global core grid
    std::vector<std::unique_ptr<Chip>> chips_;
    std::unique_ptr<ThreadPool> pool_;
    std::vector<OutputSpike> outputs_;
    BoardCounters counters_;
    std::vector<LinkCounters> linkStats_;   //!< chip * 4 + Dir
    std::vector<uint32_t> linkBudget_;      //!< remaining this tick
    std::vector<uint32_t> linkQueued_;      //!< stalled per link
    /** In-transit packets keyed by resume tick; FIFO within a tick.
     *  Holds both transit-delayed and stalled packets. */
    std::map<uint64_t, std::vector<BoardPacket>> pending_;
    uint64_t now_ = 0;

    // Fault injection (BoardParams::faultPlan).  Window faults
    // (drop/duplicate/delay) are matched per link traversal while
    // [tick, windowEnd) is open; dead-link events are cursor-applied
    // at tick start like chip faults.
    std::vector<FaultEvent> linkFaultWindows_;
    std::vector<uint8_t> linkFaultSuppressed_;
    std::vector<FaultEvent> deadLinkEvents_;   //!< sorted by tick
    size_t deadLinkCursor_ = 0;
    std::vector<uint8_t> deadLinkSuppressed_;
    std::vector<uint8_t> linkDead_;            //!< chip * 4 + Dir
    std::vector<uint32_t> detectedAlarms_;
    FaultStats linkFaultStats_;

    // Reliable link protocol (LinkParams::reliable).
    uint32_t nextSeq_ = 0;
    std::vector<std::vector<uint32_t>> dedupRing_;  //!< per chip
    std::vector<uint32_t> dedupPos_;
    std::vector<BoardPacket> cloneScratch_;  //!< duplicate-fault spawn

    // Congestion-aware routing (BoardParams::trafficProfile); empty
    // table = XY.
    RouteTable routes_;

    // Traffic tracing (BoardParams::traceTraffic).
    std::vector<uint64_t> pairTraffic_;  //!< src * numChips + dst
    std::vector<std::map<uint32_t, uint64_t>> cellTraffic_;

    // Per-chip egress coalescing scratch (mergePhase).
    std::vector<BoardPacket> batch_;
    std::map<std::pair<uint32_t, uint64_t>, size_t> openPacket_;
};

} // namespace nscs

#endif // NSCS_BOARD_BOARD_HH
