/**
 * @file
 * Traffic profile serialization and the congestion-aware route
 * table.  See traffic.hh for the contracts.
 */

#include "board/traffic.hh"

#include <algorithm>
#include <limits>

#include "util/json.hh"
#include "util/logging.hh"

namespace nscs {

namespace {

/** Route tables above this chip count fall back to XY routing. */
constexpr uint32_t kMaxRoutedChips = 1024;

constexpr const char *kFormat = "nscs-traffic";
constexpr int64_t kVersion = 1;

/**
 * Counters are emitted as plain JSON integers: they count spikes and
 * packets of finite runs, far below the 2^53 exact-integer ceiling.
 */
JsonValue
count(uint64_t v)
{
    return JsonValue::integer(static_cast<int64_t>(v));
}

/** Neighbor of @p chip one hop in @p dir, or numChips when off-board. */
uint32_t
linkNeighbor(uint32_t chip, uint32_t dir, uint32_t bw, uint32_t bh)
{
    const uint32_t x = chip % bw;
    const uint32_t y = chip / bw;
    switch (dir) {
    case 0:  // East
        return x + 1 < bw ? chip + 1 : bw * bh;
    case 1:  // West
        return x > 0 ? chip - 1 : bw * bh;
    case 2:  // North
        return y + 1 < bh ? chip + bw : bw * bh;
    default:  // South
        return y > 0 ? chip - bw : bw * bh;
    }
}

} // namespace

std::pair<uint32_t, uint32_t>
RouteTable::step(uint32_t at, uint32_t dst) const
{
    const uint32_t n = boardW * boardH;
    NSCS_ASSERT(at < n && dst < n && at != dst,
                "RouteTable::step: bad chip pair");
    const uint32_t dir = nextDir[at * n + dst];
    NSCS_ASSERT(dir < 4, "RouteTable::step: unreachable destination");
    const uint32_t next = linkNeighbor(at, dir, boardW, boardH);
    NSCS_ASSERT(next < n, "RouteTable::step: hop leaves the board");
    return {dir, next};
}

JsonValue
trafficProfileToJson(const TrafficProfile &profile)
{
    JsonValue doc = JsonValue::object();
    doc.set("format", JsonValue::string(kFormat));
    doc.set("version", JsonValue::integer(kVersion));
    doc.set("boardWidth", count(profile.boardW));
    doc.set("boardHeight", count(profile.boardH));
    doc.set("chipWidth", count(profile.chipW));
    doc.set("chipHeight", count(profile.chipH));
    doc.set("ticks", count(profile.ticks));
    doc.set("egressSpikes", count(profile.egressSpikes));

    // Sparse flat triples (src chip, dst chip, spikes).
    JsonValue pairs = JsonValue::array();
    const uint32_t n = profile.numChips();
    if (!profile.pairSpikes.empty()) {
        NSCS_ASSERT(profile.pairSpikes.size() ==
                        static_cast<size_t>(n) * n,
                    "traffic profile: pair matrix size mismatch");
        for (uint32_t s = 0; s < n; ++s)
            for (uint32_t d = 0; d < n; ++d) {
                const uint64_t v = profile.pairSpikes[s * n + d];
                if (v == 0)
                    continue;
                pairs.append(count(s));
                pairs.append(count(d));
                pairs.append(count(v));
            }
    }
    doc.set("pairs", std::move(pairs));

    // Sparse flat quads (link, packets, stalls, drops).
    JsonValue links = JsonValue::array();
    if (!profile.links.empty()) {
        NSCS_ASSERT(profile.links.size() == static_cast<size_t>(n) * 4,
                    "traffic profile: link table size mismatch");
        for (uint32_t l = 0; l < n * 4; ++l) {
            const TrafficLinkLoad &ll = profile.links[l];
            if (ll.packets == 0 && ll.stalls == 0 && ll.drops == 0)
                continue;
            links.append(count(l));
            links.append(count(ll.packets));
            links.append(count(ll.stalls));
            links.append(count(ll.drops));
        }
    }
    doc.set("links", std::move(links));

    // Sparse flat triples (src cell, dst cell, spikes).
    JsonValue cells = JsonValue::array();
    for (uint32_t s = 0; s < profile.cells.size(); ++s)
        for (const auto &[d, v] : profile.cells[s]) {
            cells.append(count(s));
            cells.append(count(d));
            cells.append(count(v));
        }
    doc.set("cells", std::move(cells));
    return doc;
}

bool
trafficProfileFromJson(const JsonValue &doc, TrafficProfile &profile,
                       std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };
    if (doc.type() != JsonValue::Type::Object)
        return fail("traffic profile: document is not an object");
    if (doc.getString("format", "") != kFormat)
        return fail("traffic profile: missing format tag '" +
                    std::string(kFormat) + "'");
    if (doc.getInt("version", 0) != kVersion)
        return fail("traffic profile: unsupported version");

    profile = TrafficProfile{};
    profile.boardW =
        static_cast<uint32_t>(doc.getInt("boardWidth", 0));
    profile.boardH =
        static_cast<uint32_t>(doc.getInt("boardHeight", 0));
    profile.chipW = static_cast<uint32_t>(doc.getInt("chipWidth", 0));
    profile.chipH =
        static_cast<uint32_t>(doc.getInt("chipHeight", 0));
    profile.ticks = static_cast<uint64_t>(doc.getInt("ticks", 0));
    profile.egressSpikes =
        static_cast<uint64_t>(doc.getInt("egressSpikes", 0));
    if (profile.boardW == 0 || profile.boardH == 0 ||
        profile.chipW == 0 || profile.chipH == 0)
        return fail("traffic profile: zero board or chip dimension");

    const uint32_t n = profile.numChips();
    const auto triples = [&](const char *key, auto &&sink,
                             uint64_t limit_a, uint64_t limit_b) {
        if (!doc.has(key))
            return true;
        const JsonValue &arr = doc.at(key);
        if (arr.type() != JsonValue::Type::Array ||
            arr.size() % 3 != 0)
            return false;
        for (size_t i = 0; i < arr.size(); i += 3) {
            const int64_t a = arr.at(i).asInt();
            const int64_t b = arr.at(i + 1).asInt();
            const int64_t v = arr.at(i + 2).asInt();
            if (a < 0 || b < 0 || v < 0 ||
                static_cast<uint64_t>(a) >= limit_a ||
                static_cast<uint64_t>(b) >= limit_b)
                return false;
            sink(static_cast<uint32_t>(a), static_cast<uint32_t>(b),
                 static_cast<uint64_t>(v));
        }
        return true;
    };

    profile.pairSpikes.assign(static_cast<size_t>(n) * n, 0);
    if (!triples(
            "pairs",
            [&](uint32_t s, uint32_t d, uint64_t v) {
                profile.pairSpikes[static_cast<size_t>(s) * n + d] = v;
            },
            n, n))
        return fail("traffic profile: malformed 'pairs' array");

    profile.links.assign(static_cast<size_t>(n) * 4, {});
    if (doc.has("links")) {
        const JsonValue &arr = doc.at("links");
        if (arr.type() != JsonValue::Type::Array ||
            arr.size() % 4 != 0)
            return fail("traffic profile: malformed 'links' array");
        for (size_t i = 0; i < arr.size(); i += 4) {
            const int64_t l = arr.at(i).asInt();
            if (l < 0 || static_cast<uint64_t>(l) >=
                             static_cast<uint64_t>(n) * 4)
                return fail("traffic profile: link index out of "
                            "range");
            TrafficLinkLoad &ll = profile.links[static_cast<size_t>(l)];
            ll.packets = static_cast<uint64_t>(arr.at(i + 1).asInt());
            ll.stalls = static_cast<uint64_t>(arr.at(i + 2).asInt());
            ll.drops = static_cast<uint64_t>(arr.at(i + 3).asInt());
        }
    }

    const uint32_t cells = profile.numCells();
    profile.cells.assign(cells, {});
    if (!triples(
            "cells",
            [&](uint32_t s, uint32_t d, uint64_t v) {
                profile.cells[s][d] = v;
            },
            cells, cells))
        return fail("traffic profile: malformed 'cells' array");
    return true;
}

bool
saveTrafficProfile(const std::string &path,
                   const TrafficProfile &profile)
{
    return writeFile(path, trafficProfileToJson(profile).dump(2) +
                               "\n");
}

bool
loadTrafficProfile(const std::string &path, TrafficProfile &profile,
                   std::string *err)
{
    std::string text;
    if (!readFile(path, text)) {
        if (err)
            *err = "cannot read '" + path + "'";
        return false;
    }
    JsonParseResult parsed = parseJson(text);
    if (!parsed.ok) {
        if (err)
            *err = parsed.error;
        return false;
    }
    return trafficProfileFromJson(parsed.value, profile, err);
}

std::vector<uint64_t>
congestionLinkWeights(const TrafficProfile &profile)
{
    const uint32_t n = profile.numChips();
    std::vector<uint64_t> weights(static_cast<size_t>(n) * 4, 16);
    if (profile.links.size() != weights.size())
        return weights;

    // Mean load over on-board links that saw any traffic; unloaded
    // links keep the base weight so cold paths stay attractive.
    uint64_t total = 0;
    uint64_t loaded = 0;
    std::vector<uint64_t> load(weights.size(), 0);
    for (uint32_t l = 0; l < weights.size(); ++l) {
        const TrafficLinkLoad &ll = profile.links[l];
        load[l] = ll.packets + 4 * ll.stalls;
        if (load[l] > 0) {
            total += load[l];
            ++loaded;
        }
    }
    if (loaded == 0)
        return weights;
    const uint64_t mean = std::max<uint64_t>(1, total / loaded);
    for (uint32_t l = 0; l < weights.size(); ++l)
        weights[l] = 16 + std::min<uint64_t>(240, load[l] * 16 / mean);
    return weights;
}

RouteTable
buildRouteTable(const TrafficProfile &profile)
{
    RouteTable table;
    const uint32_t bw = profile.boardW;
    const uint32_t bh = profile.boardH;
    const uint32_t n = bw * bh;
    if (n == 0 || n > kMaxRoutedChips)
        return table;

    // No recorded link load means nothing to steer around: leave the
    // table empty so the caller keeps the plain XY walk.
    bool any_load = false;
    if (profile.links.size() == static_cast<size_t>(n) * 4) {
        for (const TrafficLinkLoad &ll : profile.links) {
            if (ll.packets + ll.stalls > 0) {
                any_load = true;
                break;
            }
        }
    }
    if (!any_load)
        return table;

    const std::vector<uint64_t> weights =
        congestionLinkWeights(profile);
    table.boardW = bw;
    table.boardH = bh;
    table.nextDir.assign(static_cast<size_t>(n) * n, 0xff);

    constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
    std::vector<uint64_t> dist(n);
    std::vector<uint8_t> done(n);

    // Per-destination shortest path to dst over the chip grid.  A
    // hop v -> u costs the weight of v's outgoing link, so running
    // plain Dijkstra from dst over *incoming* links gives dist[v] =
    // cheapest v -> dst cost.  O(n^2) scans keep it free of heap
    // containers and fully deterministic (lowest index settles
    // first); route tables are built once per Board.
    for (uint32_t dst = 0; dst < n; ++dst) {
        std::fill(dist.begin(), dist.end(), kInf);
        std::fill(done.begin(), done.end(), uint8_t{0});
        dist[dst] = 0;
        for (uint32_t round = 0; round < n; ++round) {
            uint32_t u = n;
            uint64_t best = kInf;
            for (uint32_t v = 0; v < n; ++v)
                if (!done[v] && dist[v] < best) {
                    best = dist[v];
                    u = v;
                }
            if (u == n)
                break;
            done[u] = 1;
            // Relax every neighbor v with an edge v -> u.
            for (uint32_t dir = 0; dir < 4; ++dir) {
                // v -> u along dir means u -> v along dir ^ 1 (the
                // direction encoding pairs E/W and N/S).
                const uint32_t v = linkNeighbor(u, dir ^ 1, bw, bh);
                if (v >= n)
                    continue;
                const uint64_t w =
                    weights[static_cast<size_t>(v) * 4 + dir];
                if (dist[u] != kInf && dist[u] + w < dist[v])
                    dist[v] = dist[u] + w;
            }
        }
        // First direction in E, W, N, S order that lies on a
        // shortest path wins; under uniform weights this reproduces
        // the X-then-Y order of xyRouteStep.
        for (uint32_t v = 0; v < n; ++v) {
            if (v == dst || dist[v] == kInf)
                continue;
            for (uint32_t dir = 0; dir < 4; ++dir) {
                const uint32_t next = linkNeighbor(v, dir, bw, bh);
                if (next >= n || dist[next] == kInf)
                    continue;
                const uint64_t w =
                    weights[static_cast<size_t>(v) * 4 + dir];
                if (dist[next] + w == dist[v]) {
                    table.nextDir[static_cast<size_t>(v) * n + dst] =
                        static_cast<uint8_t>(dir);
                    break;
                }
            }
        }
    }
    return table;
}

} // namespace nscs
