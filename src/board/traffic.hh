/**
 * @file
 * Board traffic profiles and profile-derived routing.
 *
 * A TrafficProfile is the record of one trace run: how many spikes
 * crossed each (src chip, dst chip) pair, how loaded each inter-chip
 * link was (packets forwarded, stalls, drops), and — at full
 * resolution — how many spikes each global core cell sent to each
 * other cell.  It is harvested from a Board that ran with
 * BoardParams::traceTraffic set, serialized to JSON by nscs_run
 * --trace-traffic, and consumed in two places:
 *
 *  - CompileOptions::trafficProfile feeds the per-cell matrix into
 *    the placer so chip-crossing terms are weighted by *measured*
 *    volume instead of the one-packet-per-dest estimate, and
 *
 *  - BoardParams::trafficProfile feeds the per-link loads into
 *    buildRouteTable(), a static congestion-aware route selector the
 *    Board consults instead of fixed XY.
 *
 * Both uses are deterministic: the profile is a pure function of a
 * seeded run, and everything derived from it (weights, shortest
 * paths, tie-breaks) is integer arithmetic with a stable order.
 */

#ifndef NSCS_BOARD_TRAFFIC_HH
#define NSCS_BOARD_TRAFFIC_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace nscs {

class JsonValue;

/** Load observed on one directed inter-chip link during a trace. */
struct TrafficLinkLoad
{
    uint64_t packets = 0;  //!< packets forwarded over the link
    uint64_t stalls = 0;   //!< budget stalls charged to the link
    uint64_t drops = 0;    //!< queue-capacity drops at the link
};

/**
 * One trace run's measured communication, at chip-pair, link and
 * core-cell granularity.  Link index is chip * 4 + direction with
 * the Board's direction encoding (0 E, 1 W, 2 N, 3 S).
 */
struct TrafficProfile
{
    uint32_t boardW = 0;  //!< chips per row
    uint32_t boardH = 0;  //!< chip rows
    uint32_t chipW = 0;   //!< core columns per chip
    uint32_t chipH = 0;   //!< core rows per chip
    uint64_t ticks = 0;   //!< ticks the trace covered
    uint64_t egressSpikes = 0;

    /** Dense src-major numChips()^2 spike counts per chip pair. */
    std::vector<uint64_t> pairSpikes;

    /** Dense numChips() * 4 per-link loads. */
    std::vector<TrafficLinkLoad> links;

    /**
     * Sparse per-source-cell spike counts: cells[src][dst] = spikes,
     * with src/dst global core cells (y * boardW * chipW + x).
     * Full-fidelity: chips record their intra-chip routes and the
     * board its inter-chip ones, so the profile-guided placer sees
     * every exercised edge's true volume — including pairs the
     * traced placement happened to co-locate.
     */
    std::vector<std::map<uint32_t, uint64_t>> cells;

    uint32_t numChips() const { return boardW * boardH; }
    uint32_t numCells() const
    {
        return boardW * chipW * boardH * chipH;
    }
};

/** Serialize to the "nscs-traffic" v1 JSON document. */
JsonValue trafficProfileToJson(const TrafficProfile &profile);

/**
 * Parse a profile back; @return false (with *err set when non-null)
 * on format violations.
 */
bool trafficProfileFromJson(const JsonValue &doc,
                            TrafficProfile &profile,
                            std::string *err);

/** File convenience wrappers over the JSON forms. */
bool saveTrafficProfile(const std::string &path,
                        const TrafficProfile &profile);
bool loadTrafficProfile(const std::string &path,
                        TrafficProfile &profile, std::string *err);

/**
 * Static next-hop table: for every (at, dst) chip pair, which
 * outgoing direction a packet at @p at takes toward @p dst.  Shared
 * by the Board's runtime walk and nscs_inspect's static analysis so
 * the two cannot diverge (the same rule as xyRouteStep).
 */
struct RouteTable
{
    uint32_t boardW = 0;
    uint32_t boardH = 0;

    /** nextDir[at * numChips + dst]; 0xff when at == dst. */
    std::vector<uint8_t> nextDir;

    bool empty() const { return nextDir.empty(); }

    /** (direction, next chip) one hop from @p at toward @p dst. */
    std::pair<uint32_t, uint32_t> step(uint32_t at,
                                       uint32_t dst) const;
};

/**
 * Integer congestion weight per directed link, derived from the
 * profile's link loads: 16 + min(240, 16 * load / mean loaded-link
 * load), where load = packets + 4 * stalls (a stall wastes a full
 * tick of link budget, so it is weighted far above one forwarded
 * packet).  An unloaded fabric yields uniform weights, under which
 * the route table below reproduces XY routing exactly.
 */
std::vector<uint64_t>
congestionLinkWeights(const TrafficProfile &profile);

/**
 * Build the congestion-aware route table: per-destination shortest
 * paths over congestionLinkWeights() with deterministic tie-breaking
 * (lowest-index chip settles first; among equal-cost next hops the
 * first direction in E, W, N, S order wins — which makes the table
 * identical to xyRouteStep under uniform weights).  Returns an empty
 * table (caller falls back to XY) when the profile records no link
 * load or the board exceeds the supported size.
 */
RouteTable buildRouteTable(const TrafficProfile &profile);

} // namespace nscs

#endif // NSCS_BOARD_TRAFFIC_HH
