#include "chip/chip.hh"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "runtime/parallel.hh"
#include "util/logging.hh"

namespace nscs {

namespace {
constexpr uint64_t kNever = ~0ull;
} // anonymous namespace

Chip::Chip(const ChipParams &params, std::vector<CoreConfig> configs)
    : params_(params)
{
    const uint32_t w = params_.width;
    const uint32_t h = params_.height;
    if (w == 0 || h == 0)
        fatal("chip grid %ux%u is empty", w, h);
    if (configs.size() != static_cast<size_t>(w) * h)
        fatal("chip expects %u core configs, got %zu",
              w * h, configs.size());

    cores_.reserve(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        if (!(configs[i].geom == params_.coreGeom))
            fatal("core %zu geometry differs from chip geometry", i);
        cores_.push_back(std::make_unique<Core>(std::move(configs[i])));
    }

    if (params_.allowEgress && params_.noc == NocModel::Cycle)
        fatal("edge egress requires the functional transport model "
              "(egress packets bypass the on-chip mesh)");

    // Destinations must stay on the grid — unless the chip sits in a
    // board fabric (allowEgress), where out-of-grid targets surface
    // as egress packets and the board validates them against the
    // global core grid instead.
    for (uint32_t c = 0; c < numCores(); ++c) {
        uint32_t x = c % w, y = c / w;
        const CoreConfig &cfg = cores_[c]->config();
        for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n) {
            const NeuronDest &d = cfg.dests[n];
            if (d.kind != NeuronDest::Kind::Core)
                continue;
            int64_t tx = static_cast<int64_t>(x) + d.dx;
            int64_t ty = static_cast<int64_t>(y) + d.dy;
            if (!params_.allowEgress &&
                (tx < 0 || tx >= static_cast<int64_t>(w) ||
                 ty < 0 || ty >= static_cast<int64_t>(h)))
                fatal("core (%u, %u) neuron %u targets (%lld, %lld) "
                      "outside %ux%u grid", x, y, n,
                      static_cast<long long>(tx),
                      static_cast<long long>(ty), w, h);
            if (d.axon >= params_.coreGeom.numAxons)
                fatal("core (%u, %u) neuron %u targets axon %u of %u",
                      x, y, n, d.axon, params_.coreGeom.numAxons);
        }
    }

    if (params_.noc == NocModel::Cycle) {
        MeshParams mp;
        mp.width = w;
        mp.height = h;
        mp.fifoDepth = params_.meshFifoDepth;
        mesh_ = std::make_unique<Mesh>(mp);
    }

    lastWake_.assign(numCores(), kNever);
    for (uint32_t c = 0; c < numCores(); ++c)
        if (cores_[c]->hasDenseNeurons())
            denseCores_.push_back(c);

    if (params_.engine == EngineKind::Event) {
        for (uint32_t c = 0; c < numCores(); ++c) {
            auto se = cores_[c]->nextSelfEvent();
            if (se)
                scheduleWake(c, *se);
        }
    }

    if (params_.threads >= 2) {
        pool_ = std::make_unique<ThreadPool>(params_.threads);
        chunks_.resize(pool_->lanes());
    }
}

Chip::Chip(Chip &&) = default;
Chip &Chip::operator=(Chip &&) = default;
Chip::~Chip() = default;

void
Chip::reset()
{
    for (auto &core : cores_)
        core->reset();
    if (mesh_)
        mesh_->reset();
    outputs_.clear();
    egress_.clear();
    counters_ = ChipCounters{};
    now_ = 0;
    agenda_.clear();
    pendingInject_.clear();
    std::fill(lastWake_.begin(), lastWake_.end(), kNever);
    if (params_.engine == EngineKind::Event) {
        for (uint32_t c = 0; c < numCores(); ++c) {
            auto se = cores_[c]->nextSelfEvent();
            if (se)
                scheduleWake(c, *se);
        }
    }
}

void
Chip::scheduleWake(uint32_t core, uint64_t tick)
{
    if (params_.engine != EngineKind::Event)
        return;
    if (lastWake_[core] == tick)
        return;
    lastWake_[core] = tick;
    agenda_.emplace_back(tick, core);
    std::push_heap(agenda_.begin(), agenda_.end(), std::greater<>{});
}

uint64_t
Chip::effectiveDeliveryTick(uint64_t delivery_tick,
                            uint64_t first_available) const
{
    if (delivery_tick >= first_available)
        return delivery_tick;
    uint64_t slots = params_.coreGeom.delaySlots;
    uint64_t gap = first_available - delivery_tick;
    uint64_t wraps = (gap + slots - 1) / slots;
    return delivery_tick + wraps * slots;
}

void
Chip::depositAndWake(uint32_t core, uint32_t axon,
                     uint64_t delivery_tick, uint64_t first_available)
{
    uint64_t effective = effectiveDeliveryTick(delivery_tick,
                                               first_available);
    if (effective != delivery_tick)
        ++counters_.lateDeliveries;
    cores_[core]->deposit(delivery_tick, axon);
    scheduleWake(core, effective);
}

void
Chip::injectInput(uint32_t core, uint32_t axon, uint64_t delivery_tick)
{
    NSCS_ASSERT(core < numCores(), "injectInput core %u of %u",
                core, numCores());
    NSCS_ASSERT(delivery_tick >= now_,
                "injectInput for past tick %llu (now %llu)",
                static_cast<unsigned long long>(delivery_tick),
                static_cast<unsigned long long>(now_));
    NSCS_ASSERT(delivery_tick < now_ + params_.coreGeom.delaySlots,
                "injectInput for tick %llu overruns the %u-slot "
                "scheduler (now %llu)",
                static_cast<unsigned long long>(delivery_tick),
                params_.coreGeom.delaySlots,
                static_cast<unsigned long long>(now_));
    depositAndWake(core, axon, delivery_tick, now_);
}

void
Chip::depositRouted(uint32_t core, uint32_t axon,
                    uint64_t delivery_tick)
{
    NSCS_ASSERT(core < numCores(), "depositRouted core %u of %u",
                core, numCores());
    depositAndWake(core, axon, delivery_tick, now_);
}

void
Chip::routeSpike(uint32_t src_core, uint32_t neuron,
                 const NeuronDest &dest, uint64_t t)
{
    switch (dest.kind) {
      case NeuronDest::Kind::None:
        ++counters_.spikesDropped;
        return;
      case NeuronDest::Kind::Output:
        outputs_.push_back({t, dest.line});
        ++counters_.spikesOut;
        return;
      case NeuronDest::Kind::Core:
        break;
    }
    (void)neuron;
    const uint32_t w = params_.width;
    uint32_t sx = src_core % w, sy = src_core / w;
    auto tx = static_cast<uint32_t>(static_cast<int32_t>(sx) + dest.dx);
    auto ty = static_cast<uint32_t>(static_cast<int32_t>(sy) + dest.dy);
    uint64_t delivery = t + dest.delay;

    if (params_.allowEgress && (tx >= w || ty >= params_.height)) {
        // Off-chip target: surface as an egress packet for the board
        // to route (tx/ty wrapped negative reads as >= w/h here).
        egress_.push_back({src_core, dest.dx, dest.dy, dest.axon,
                           delivery});
        ++counters_.spikesEgress;
        return;
    }
    ++counters_.spikesRouted;

    if (params_.noc == NocModel::Functional) {
        counters_.hops += static_cast<uint64_t>(std::abs(dest.dx)) +
            static_cast<uint64_t>(std::abs(dest.dy));
        depositAndWake(ty * w + tx, dest.axon, delivery, t + 1);
        return;
    }

    SpikePacket pkt;
    pkt.dx = dest.dx;
    pkt.dy = dest.dy;
    pkt.axon = dest.axon;
    pkt.deliveryTick = delivery;
    pkt.injectTick = t;
    pendingInject_.push_back({sx, sy, pkt});
}

void
Chip::runMesh(uint64_t t)
{
    if (!mesh_)
        return;
    uint32_t budget = params_.cyclesPerTick;
    uint32_t used = 0;
    while (used < budget &&
           (!pendingInject_.empty() || !mesh_->idle())) {
        // Offer pending injections; keep the ones that stalled.
        size_t pending = pendingInject_.size();
        for (size_t i = 0; i < pending; ++i) {
            PendingInject pi = pendingInject_.front();
            pendingInject_.pop_front();
            if (!mesh_->inject(pi.x, pi.y, pi.pkt)) {
                ++counters_.injectRetries;
                pendingInject_.push_back(pi);
            }
        }
        mesh_->stepCycle();
        ++used;
        for (const MeshDelivery &d : mesh_->deliveries()) {
            uint32_t core = d.y * params_.width + d.x;
            depositAndWake(core, d.packet.axon, d.packet.deliveryTick,
                           t + 1);
        }
        mesh_->clearDeliveries();
    }
    counters_.meshCycles += used;
}

void
Chip::collectActive(uint64_t t)
{
    activeScratch_.clear();
    if (params_.engine == EngineKind::Clock) {
        for (uint32_t c = 0; c < numCores(); ++c)
            activeScratch_.push_back(c);
    } else {
        for (uint32_t c : denseCores_)
            activeScratch_.push_back(c);
        while (!agenda_.empty() && agenda_.front().first <= t) {
            auto [tick, c] = agenda_.front();
            NSCS_ASSERT(tick == t,
                        "agenda entry for past tick %llu (now %llu)",
                        static_cast<unsigned long long>(tick),
                        static_cast<unsigned long long>(t));
            std::pop_heap(agenda_.begin(), agenda_.end(),
                          std::greater<>{});
            agenda_.pop_back();
            if (lastWake_[c] == tick)
                lastWake_[c] = kNever;
            activeScratch_.push_back(c);
        }
        std::sort(activeScratch_.begin(), activeScratch_.end());
        activeScratch_.erase(std::unique(activeScratch_.begin(),
                                         activeScratch_.end()),
                             activeScratch_.end());
    }
}

void
Chip::evaluateCore(uint32_t core, uint64_t t,
                   std::vector<uint32_t> &fired)
{
    if (params_.engine == EngineKind::Clock)
        cores_[core]->tickDense(t, fired);
    else
        cores_[core]->tickSparse(t, fired);
}

void
Chip::finishTick(uint64_t t)
{
    if (params_.noc == NocModel::Cycle)
        runMesh(t);

    if (params_.engine == EngineKind::Event) {
        for (uint32_t c : activeScratch_) {
            auto se = cores_[c]->nextSelfEvent();
            if (se)
                scheduleWake(c, *se);
        }
    }

    ++now_;
    ++counters_.ticks;
}

void
Chip::tick()
{
    if (pool_)
        tickParallel();
    else
        tickSerial();
}

void
Chip::tickSerial()
{
    const uint64_t t = now_;
    collectActive(t);

    for (uint32_t c : activeScratch_) {
        firedScratch_.clear();
        evaluateCore(c, t, firedScratch_);
        ++counters_.coreActivations;
        for (uint32_t n : firedScratch_)
            routeSpike(c, n, cores_[c]->dest(n), t);
    }

    finishTick(t);
}

void
Chip::tickParallel()
{
    const uint64_t t = now_;
    collectActive(t);

    // Evaluation phase: cores only mutate their own state (routing,
    // i.e. cross-core deposits, is deferred), so active cores can be
    // evaluated concurrently.  Contiguous chunks of activeScratch_
    // keep each chunk's fired list in ascending active-index order.
    const auto n = static_cast<uint32_t>(activeScratch_.size());
    if (chunks_.empty())
        chunks_.resize(1);
    const auto num_chunks =
        std::min(static_cast<uint32_t>(chunks_.size()), n);
    const auto eval_chunk = [&](uint32_t k) {
        EvalChunk &chunk = chunks_[k];
        chunk.fired.clear();
        const uint32_t begin =
            static_cast<uint32_t>(uint64_t{n} * k / num_chunks);
        const uint32_t end =
            static_cast<uint32_t>(uint64_t{n} * (k + 1) / num_chunks);
        for (uint32_t i = begin; i < end; ++i) {
            chunk.scratch.clear();
            evaluateCore(activeScratch_[i], t, chunk.scratch);
            for (uint32_t fired : chunk.scratch)
                chunk.fired.emplace_back(i, fired);
        }
    };
    if (pool_) {
        pool_->parallelFor(num_chunks, eval_chunk);
    } else {
        for (uint32_t k = 0; k < num_chunks; ++k)
            eval_chunk(k);
    }
    counters_.coreActivations += n;

    // Merge phase: route in ascending active-index order — exactly
    // the serial engine's order, so outputs, counters and mesh
    // injections are bit-identical.
    for (uint32_t k = 0; k < num_chunks; ++k) {
        for (auto [i, neuron] : chunks_[k].fired) {
            uint32_t c = activeScratch_[i];
            routeSpike(c, neuron, cores_[c]->dest(neuron), t);
        }
    }

    finishTick(t);
}

void
Chip::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

const MeshStats *
Chip::meshStats() const
{
    return mesh_ ? &mesh_->stats() : nullptr;
}

EnergyEvents
Chip::energyEvents() const
{
    EnergyEvents e;
    e.ticks = counters_.ticks;
    e.cores = numCores();
    e.neurons = static_cast<uint64_t>(numCores()) *
        params_.coreGeom.numNeurons;
    for (const auto &core : cores_) {
        const CoreCounters &cc = core->counters();
        e.sops += cc.sops;
        e.spikes += cc.spikes;
    }
    e.hops = mesh_ ? mesh_->stats().flitMoves : counters_.hops;
    return e;
}

EnergyBreakdown
Chip::energy() const
{
    return computeEnergy(energyEvents(), params_.energy);
}

void
Chip::dumpStats(const char *prefix, StatGroup &group) const
{
    std::string pre(prefix);
    EnergyEvents e = energyEvents();
    group.add(pre + ".ticks", static_cast<double>(counters_.ticks),
              "ticks executed");
    group.add(pre + ".cores", static_cast<double>(e.cores),
              "cores on chip");
    group.add(pre + ".neurons", static_cast<double>(e.neurons),
              "neurons on chip");
    group.add(pre + ".sops", static_cast<double>(e.sops),
              "synaptic events");
    group.add(pre + ".spikes", static_cast<double>(e.spikes),
              "neuron fires");
    group.add(pre + ".spikesRouted",
              static_cast<double>(counters_.spikesRouted),
              "core-to-core spikes");
    group.add(pre + ".spikesOut",
              static_cast<double>(counters_.spikesOut),
              "off-chip spikes");
    if (params_.allowEgress)
        group.add(pre + ".spikesEgress",
                  static_cast<double>(counters_.spikesEgress),
                  "spikes surfaced as edge egress");
    group.add(pre + ".hops", static_cast<double>(e.hops),
              "router traversals");
    group.add(pre + ".lateDeliveries",
              static_cast<double>(counters_.lateDeliveries),
              "packets that missed their delivery slot");
    group.add(pre + ".coreActivations",
              static_cast<double>(counters_.coreActivations),
              "core tick evaluations (simulation effort)");
    uint64_t evals = 0, evals_batched = 0, sops_batched = 0;
    uint64_t evals_stoch_batched = 0;
    uint64_t compactions = 0;
    for (const auto &core : cores_) {
        const CoreCounters &cc = core->counters();
        evals += cc.evals;
        evals_batched += cc.evalsBatched;
        evals_stoch_batched += cc.evalsStochBatched;
        sops_batched += cc.sopsBatched;
        compactions += cc.selfEventCompactions;
    }
    group.add(pre + ".evals", static_cast<double>(evals),
              "end-of-tick neuron evaluations");
    group.add(pre + ".evalsBatched",
              static_cast<double>(evals_batched),
              "of evals, via the batched SoA update kernel");
    group.add(pre + ".evalsStochBatched",
              static_cast<double>(evals_stoch_batched),
              "of evalsBatched, stochastic cohort via "
              "precomputed draws");
    group.add(pre + ".sopsBatched",
              static_cast<double>(sops_batched),
              "of sops, via the word-parallel integrate path");
    group.add(pre + ".selfEventCompactions",
              static_cast<double>(compactions),
              "lazy self-event heap rebuilds");
    EnergyBreakdown b = computeEnergy(e, params_.energy);
    energyStats(b, e, params_.energy, (pre + ".energy").c_str(), group);
}

size_t
Chip::footprintBytes() const
{
    size_t bytes = sizeof(Chip);
    for (const auto &core : cores_)
        bytes += core->footprintBytes();
    bytes += egress_.capacity() * sizeof(EgressSpike);
    bytes += agenda_.capacity() * sizeof(std::pair<uint64_t, uint32_t>);
    bytes += lastWake_.capacity() * sizeof(uint64_t);
    return bytes;
}

} // namespace nscs
