#include "chip/chip.hh"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "runtime/parallel.hh"
#include "runtime/source.hh"
#include "util/logging.hh"

namespace nscs {

namespace {
constexpr uint64_t kNever = ~0ull;
} // anonymous namespace

Chip::Chip(const ChipParams &params, std::vector<CoreConfig> configs)
    : params_(params)
{
    const uint32_t w = params_.width;
    const uint32_t h = params_.height;
    if (w == 0 || h == 0)
        fatal("chip grid %ux%u is empty", w, h);
    if (configs.size() != static_cast<size_t>(w) * h)
        fatal("chip expects %u core configs, got %zu",
              w * h, configs.size());

    if (params_.instances == 0)
        fatal("chip needs >= 1 instance lane");
    if (params_.instances > 1 && params_.noc == NocModel::Cycle)
        fatal("instance batching requires the functional transport "
              "model (mesh packets do not carry a lane index)");

    cores_.reserve(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        if (!(configs[i].geom == params_.coreGeom))
            fatal("core %zu geometry differs from chip geometry", i);
        cores_.push_back(std::make_unique<Core>(std::move(configs[i]),
                                                params_.instances));
    }

    if (params_.allowEgress && params_.noc == NocModel::Cycle)
        fatal("edge egress requires the functional transport model "
              "(egress packets bypass the on-chip mesh)");

    // Destinations must stay on the grid — unless the chip sits in a
    // board fabric (allowEgress), where out-of-grid targets surface
    // as egress packets and the board validates them against the
    // global core grid instead.
    for (uint32_t c = 0; c < numCores(); ++c) {
        uint32_t x = c % w, y = c / w;
        const CoreConfig &cfg = cores_[c]->config();
        for (uint32_t n = 0; n < cfg.geom.numNeurons; ++n) {
            const NeuronDest &d = cfg.dests[n];
            if (d.kind != NeuronDest::Kind::Core)
                continue;
            int64_t tx = static_cast<int64_t>(x) + d.dx;
            int64_t ty = static_cast<int64_t>(y) + d.dy;
            if (!params_.allowEgress &&
                (tx < 0 || tx >= static_cast<int64_t>(w) ||
                 ty < 0 || ty >= static_cast<int64_t>(h)))
                fatal("core (%u, %u) neuron %u targets (%lld, %lld) "
                      "outside %ux%u grid", x, y, n,
                      static_cast<long long>(tx),
                      static_cast<long long>(ty), w, h);
            if (d.axon >= params_.coreGeom.numAxons)
                fatal("core (%u, %u) neuron %u targets axon %u of %u",
                      x, y, n, d.axon, params_.coreGeom.numAxons);
        }
    }

    if (params_.noc == NocModel::Cycle) {
        MeshParams mp;
        mp.width = w;
        mp.height = h;
        mp.fifoDepth = params_.meshFifoDepth;
        mesh_ = std::make_unique<Mesh>(mp);
    }

    lastWake_.assign(numCores(), kNever);
    for (uint32_t c = 0; c < numCores(); ++c)
        if (cores_[c]->hasDenseNeurons())
            denseCores_.push_back(c);

    coreDead_.assign(numCores(), 0);
    if (params_.faultPlan) {
        faultEvents_ = params_.faultPlan->events;
        for (const FaultEvent &ev : faultEvents_) {
            if (isLinkFault(ev.kind))
                fatal("chip fault plan carries link fault '%s'; link "
                      "faults target Board plans",
                      faultKindName(ev.kind));
            if (ev.core >= numCores())
                fatal("fault event %u targets core %u of %u",
                      ev.id, ev.core, numCores());
            if (ev.kind == FaultKind::StuckWord &&
                (ev.axon >= params_.coreGeom.numAxons ||
                 ev.word >= (params_.coreGeom.numNeurons + 63) / 64))
                fatal("stuck-word event %u targets axon %u word %u "
                      "outside the %ux%u crossbar", ev.id, ev.axon,
                      ev.word, params_.coreGeom.numAxons,
                      params_.coreGeom.numNeurons);
            if (ev.kind == FaultKind::PotentialFlip &&
                ev.instance >= params_.instances)
                fatal("potential-flip event %u targets instance %u "
                      "of %u", ev.id, ev.instance, params_.instances);
        }
        std::stable_sort(faultEvents_.begin(), faultEvents_.end(),
                         [](const FaultEvent &a, const FaultEvent &b) {
                             return a.tick < b.tick;
                         });
        faultSuppressed_.assign(faultEvents_.size(), 0);
    }

    if (params_.engine == EngineKind::Event) {
        for (uint32_t c = 0; c < numCores(); ++c) {
            auto se = cores_[c]->nextSelfEvent();
            if (se)
                scheduleWake(c, *se);
        }
    }

    if (params_.traceTraffic)
        cellTraffic_.assign(numCores(), {});

    if (params_.threads >= 2) {
        pool_ = std::make_unique<ThreadPool>(params_.threads);
        chunks_.resize(pool_->lanes());
    }
}

Chip::Chip(Chip &&) = default;
Chip &Chip::operator=(Chip &&) = default;
Chip::~Chip() = default;

void
Chip::reset()
{
    for (auto &core : cores_)
        core->reset();
    if (mesh_)
        mesh_->reset();
    outputs_.clear();
    egress_.clear();
    for (auto &row : cellTraffic_)
        row.clear();
    counters_ = ChipCounters{};
    now_ = 0;
    agenda_.clear();
    pendingInject_.clear();
    std::fill(lastWake_.begin(), lastWake_.end(), kNever);
    faultCursor_ = 0;
    std::fill(faultSuppressed_.begin(), faultSuppressed_.end(), 0);
    std::fill(coreDead_.begin(), coreDead_.end(), 0);
    detectedAlarms_.clear();
    faultStats_ = FaultStats{};
    if (params_.engine == EngineKind::Event) {
        for (uint32_t c = 0; c < numCores(); ++c) {
            auto se = cores_[c]->nextSelfEvent();
            if (se)
                scheduleWake(c, *se);
        }
    }
}

void
Chip::scheduleWake(uint32_t core, uint64_t tick)
{
    if (params_.engine != EngineKind::Event)
        return;
    if (lastWake_[core] == tick)
        return;
    lastWake_[core] = tick;
    agenda_.emplace_back(tick, core);
    std::push_heap(agenda_.begin(), agenda_.end(), std::greater<>{});
}

uint64_t
Chip::effectiveDeliveryTick(uint64_t delivery_tick,
                            uint64_t first_available) const
{
    if (delivery_tick >= first_available)
        return delivery_tick;
    uint64_t slots = params_.coreGeom.delaySlots;
    uint64_t gap = first_available - delivery_tick;
    uint64_t wraps = (gap + slots - 1) / slots;
    return delivery_tick + wraps * slots;
}

void
Chip::depositAndWake(uint32_t core, uint32_t axon,
                     uint64_t delivery_tick, uint64_t first_available,
                     uint32_t inst)
{
    uint64_t effective = effectiveDeliveryTick(delivery_tick,
                                               first_available);
    if (effective != delivery_tick)
        ++counters_.lateDeliveries;
    cores_[core]->deposit(delivery_tick, axon, inst);
    scheduleWake(core, effective);
}

void
Chip::injectInput(uint32_t core, uint32_t axon, uint64_t delivery_tick,
                  uint32_t inst)
{
    NSCS_ASSERT(core < numCores(), "injectInput core %u of %u",
                core, numCores());
    NSCS_ASSERT(inst < params_.instances,
                "injectInput instance %u of %u", inst,
                params_.instances);
    NSCS_ASSERT(delivery_tick >= now_,
                "injectInput for past tick %llu (now %llu)",
                static_cast<unsigned long long>(delivery_tick),
                static_cast<unsigned long long>(now_));
    NSCS_ASSERT(delivery_tick < now_ + params_.coreGeom.delaySlots,
                "injectInput for tick %llu overruns the %u-slot "
                "scheduler (now %llu)",
                static_cast<unsigned long long>(delivery_tick),
                params_.coreGeom.delaySlots,
                static_cast<unsigned long long>(now_));
    depositAndWake(core, axon, delivery_tick, now_, inst);
}

void
Chip::injectInputs(const std::vector<InputSpike> &spikes,
                   uint64_t delivery_tick)
{
    if (spikes.empty())
        return;
    NSCS_ASSERT(delivery_tick >= now_,
                "injectInputs for past tick %llu (now %llu)",
                static_cast<unsigned long long>(delivery_tick),
                static_cast<unsigned long long>(now_));
    NSCS_ASSERT(delivery_tick < now_ + params_.coreGeom.delaySlots,
                "injectInputs for tick %llu overruns the %u-slot "
                "scheduler (now %llu)",
                static_cast<unsigned long long>(delivery_tick),
                params_.coreGeom.delaySlots,
                static_cast<unsigned long long>(now_));
    const uint64_t effective = effectiveDeliveryTick(delivery_tick,
                                                     now_);
    if (effective != delivery_tick)
        counters_.lateDeliveries +=
            static_cast<uint64_t>(spikes.size());
    // Runs of same-core spikes (the common shape: one compiled
    // input line fans out, then the next) share one pointer chase
    // and one wake-up; scheduleWake's own dedupe covers cores that
    // reappear later in the batch.
    Core *core = nullptr;
    uint32_t core_idx = ~0u;
    for (const InputSpike &s : spikes) {
        NSCS_ASSERT(s.core < numCores(), "injectInputs core %u of %u",
                    s.core, numCores());
        NSCS_ASSERT(s.instance < params_.instances,
                    "injectInputs instance %u of %u", s.instance,
                    params_.instances);
        if (s.core != core_idx) {
            core_idx = s.core;
            core = cores_[s.core].get();
            scheduleWake(s.core, effective);
        }
        core->deposit(delivery_tick, s.axon, s.instance);
    }
}

void
Chip::depositRouted(uint32_t core, uint32_t axon,
                    uint64_t delivery_tick, uint32_t inst)
{
    NSCS_ASSERT(core < numCores(), "depositRouted core %u of %u",
                core, numCores());
    NSCS_ASSERT(inst < params_.instances,
                "depositRouted instance %u of %u", inst,
                params_.instances);
    depositAndWake(core, axon, delivery_tick, now_, inst);
}

void
Chip::depositRoutedMany(const RoutedSpike *spikes, size_t n,
                        uint64_t delivery_tick)
{
    if (n == 0)
        return;
    // Unlike injectInputs, a past delivery tick is legal here: link
    // contention delays packets past their slot, and the whole
    // payload shares the header's tick, so the wrap is computed
    // once.
    const uint64_t effective = effectiveDeliveryTick(delivery_tick,
                                                     now_);
    if (effective != delivery_tick)
        counters_.lateDeliveries += static_cast<uint64_t>(n);
    Core *core = nullptr;
    uint32_t core_idx = ~0u;
    for (size_t i = 0; i < n; ++i) {
        const RoutedSpike &s = spikes[i];
        NSCS_ASSERT(s.core < numCores(),
                    "depositRoutedMany core %u of %u", s.core,
                    numCores());
        NSCS_ASSERT(s.instance < params_.instances,
                    "depositRoutedMany instance %u of %u", s.instance,
                    params_.instances);
        if (s.core != core_idx) {
            core_idx = s.core;
            core = cores_[s.core].get();
            scheduleWake(s.core, effective);
        }
        core->deposit(delivery_tick, s.axon, s.instance);
    }
}

void
Chip::routeSpike(uint32_t src_core, const InstanceFire &fire,
                 const NeuronDest &dest, uint64_t t)
{
    switch (dest.kind) {
      case NeuronDest::Kind::None:
        ++counters_.spikesDropped;
        return;
      case NeuronDest::Kind::Output:
        outputs_.push_back({t, dest.line, fire.instance});
        ++counters_.spikesOut;
        return;
      case NeuronDest::Kind::Core:
        break;
    }
    const uint32_t w = params_.width;
    uint32_t sx = src_core % w, sy = src_core / w;
    auto tx = static_cast<uint32_t>(static_cast<int32_t>(sx) + dest.dx);
    auto ty = static_cast<uint32_t>(static_cast<int32_t>(sy) + dest.dy);
    uint64_t delivery = t + dest.delay;

    if (params_.allowEgress && (tx >= w || ty >= params_.height)) {
        // Off-chip target: surface as an egress packet for the board
        // to route (tx/ty wrapped negative reads as >= w/h here).
        egress_.push_back({src_core, dest.dx, dest.dy, dest.axon,
                           delivery, fire.instance});
        ++counters_.spikesEgress;
        return;
    }
    ++counters_.spikesRouted;
    if (!cellTraffic_.empty())
        ++cellTraffic_[src_core][ty * w + tx];

    if (params_.noc == NocModel::Functional) {
        counters_.hops += static_cast<uint64_t>(std::abs(dest.dx)) +
            static_cast<uint64_t>(std::abs(dest.dy));
        depositAndWake(ty * w + tx, dest.axon, delivery, t + 1,
                       fire.instance);
        return;
    }

    SpikePacket pkt;
    pkt.dx = dest.dx;
    pkt.dy = dest.dy;
    pkt.axon = dest.axon;
    pkt.deliveryTick = delivery;
    pkt.injectTick = t;
    pendingInject_.push_back({sx, sy, pkt});
}

void
Chip::runMesh(uint64_t t)
{
    if (!mesh_)
        return;
    uint32_t budget = params_.cyclesPerTick;
    uint32_t used = 0;
    while (used < budget &&
           (!pendingInject_.empty() || !mesh_->idle())) {
        // Offer pending injections; keep the ones that stalled.
        size_t pending = pendingInject_.size();
        for (size_t i = 0; i < pending; ++i) {
            PendingInject pi = pendingInject_.front();
            pendingInject_.pop_front();
            if (!mesh_->inject(pi.x, pi.y, pi.pkt)) {
                ++counters_.injectRetries;
                pendingInject_.push_back(pi);
            }
        }
        mesh_->stepCycle();
        ++used;
        for (const MeshDelivery &d : mesh_->deliveries()) {
            uint32_t core = d.y * params_.width + d.x;
            // Mesh transport implies a single instance lane (checked
            // at construction).
            depositAndWake(core, d.packet.axon, d.packet.deliveryTick,
                           t + 1, 0);
        }
        mesh_->clearDeliveries();
    }
    counters_.meshCycles += used;
}

void
Chip::applyDueFaults(uint64_t t)
{
    while (faultCursor_ < faultEvents_.size() &&
           faultEvents_[faultCursor_].tick <= t) {
        const FaultEvent &ev = faultEvents_[faultCursor_];
        if (!faultSuppressed_[faultCursor_]) {
            switch (ev.kind) {
              case FaultKind::DeadCore:
                if (!coreDead_[ev.core]) {
                    coreDead_[ev.core] = 1;
                    ++faultStats_.deadCores;
                }
                break;
              case FaultKind::StuckWord:
                cores_[ev.core]->applyStuckWord(ev.axon, ev.word,
                                                ev.bits);
                ++faultStats_.stuckWords;
                break;
              case FaultKind::PotentialFlip:
                cores_[ev.core]->flipPotentialBit(ev.neuron, ev.bit,
                                                  ev.instance);
                ++faultStats_.seuFlips;
                // Model an ECC/scrub alarm: a transient upset is
                // detected the tick it lands, giving the recovery
                // layer a rollback trigger.  Permanent flips model
                // unprotected state and go unnoticed.
                if (ev.transient) {
                    ++faultStats_.alarms;
                    detectedAlarms_.push_back(ev.id);
                }
                break;
              default:
                break; // link kinds rejected at construction
            }
        }
        ++faultCursor_;
    }
}

void
Chip::collectActive(uint64_t t)
{
    activeScratch_.clear();
    if (params_.engine == EngineKind::Clock) {
        for (uint32_t c = 0; c < numCores(); ++c)
            if (!coreDead_[c])
                activeScratch_.push_back(c);
    } else {
        for (uint32_t c : denseCores_)
            if (!coreDead_[c])
                activeScratch_.push_back(c);
        while (!agenda_.empty() && agenda_.front().first <= t) {
            auto [tick, c] = agenda_.front();
            NSCS_ASSERT(tick == t,
                        "agenda entry for past tick %llu (now %llu)",
                        static_cast<unsigned long long>(tick),
                        static_cast<unsigned long long>(t));
            std::pop_heap(agenda_.begin(), agenda_.end(),
                          std::greater<>{});
            agenda_.pop_back();
            if (lastWake_[c] == tick)
                lastWake_[c] = kNever;
            if (!coreDead_[c])
                activeScratch_.push_back(c);
        }
        std::sort(activeScratch_.begin(), activeScratch_.end());
        activeScratch_.erase(std::unique(activeScratch_.begin(),
                                         activeScratch_.end()),
                             activeScratch_.end());
    }
}

void
Chip::evaluateCore(uint32_t core, uint64_t t,
                   std::vector<InstanceFire> &fired)
{
    if (params_.engine == EngineKind::Clock)
        cores_[core]->tickDense(t, fired);
    else
        cores_[core]->tickSparse(t, fired);
}

void
Chip::finishTick(uint64_t t)
{
    if (params_.noc == NocModel::Cycle)
        runMesh(t);

    if (params_.engine == EngineKind::Event) {
        for (uint32_t c : activeScratch_) {
            auto se = cores_[c]->nextSelfEvent();
            if (se)
                scheduleWake(c, *se);
        }
    }

    ++now_;
    ++counters_.ticks;
}

void
Chip::tick()
{
    if (pool_)
        tickParallel();
    else
        tickSerial();
}

void
Chip::tickSerial()
{
    const uint64_t t = now_;
    applyDueFaults(t);
    collectActive(t);

    for (uint32_t c : activeScratch_) {
        firedScratch_.clear();
        evaluateCore(c, t, firedScratch_);
        ++counters_.coreActivations;
        for (const InstanceFire &f : firedScratch_)
            routeSpike(c, f, cores_[c]->dest(f.neuron), t);
    }

    finishTick(t);
}

void
Chip::tickParallel()
{
    const uint64_t t = now_;
    applyDueFaults(t);
    collectActive(t);

    // Evaluation phase: cores only mutate their own state (routing,
    // i.e. cross-core deposits, is deferred), so active cores can be
    // evaluated concurrently.  Contiguous chunks of activeScratch_
    // keep each chunk's fired list in ascending active-index order.
    const auto n = static_cast<uint32_t>(activeScratch_.size());
    if (chunks_.empty())
        chunks_.resize(1);
    const auto num_chunks =
        std::min(static_cast<uint32_t>(chunks_.size()), n);
    const auto eval_chunk = [&](uint32_t k) {
        EvalChunk &chunk = chunks_[k];
        chunk.fired.clear();
        const uint32_t begin =
            static_cast<uint32_t>(uint64_t{n} * k / num_chunks);
        const uint32_t end =
            static_cast<uint32_t>(uint64_t{n} * (k + 1) / num_chunks);
        for (uint32_t i = begin; i < end; ++i) {
            chunk.scratch.clear();
            evaluateCore(activeScratch_[i], t, chunk.scratch);
            for (const InstanceFire &fired : chunk.scratch)
                chunk.fired.emplace_back(i, fired);
        }
    };
    if (pool_) {
        pool_->parallelFor(num_chunks, eval_chunk);
    } else {
        for (uint32_t k = 0; k < num_chunks; ++k)
            eval_chunk(k);
    }
    counters_.coreActivations += n;

    // Merge phase: route in ascending active-index order — exactly
    // the serial engine's order, so outputs, counters and mesh
    // injections are bit-identical.
    for (uint32_t k = 0; k < num_chunks; ++k) {
        for (const auto &[i, fire] : chunks_[k].fired) {
            uint32_t c = activeScratch_[i];
            routeSpike(c, fire, cores_[c]->dest(fire.neuron), t);
        }
    }

    finishTick(t);
}

void
Chip::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        tick();
}

void
Chip::suppressFault(uint32_t id)
{
    for (size_t i = 0; i < faultEvents_.size(); ++i)
        if (faultEvents_[i].id == id)
            faultSuppressed_[i] = 1;
}

void
Chip::drainDetectedFaults(std::vector<uint32_t> &out)
{
    out.insert(out.end(), detectedAlarms_.begin(),
               detectedAlarms_.end());
    detectedAlarms_.clear();
}

void
Chip::saveState(JsonValue &out) const
{
    out = JsonValue::object();
    out.set("now", JsonValue::string(u64ToHex(now_)));

    JsonValue counters = JsonValue::object();
    auto putCounter = [&counters](const char *key, uint64_t value) {
        counters.set(key,
                     JsonValue::integer(static_cast<int64_t>(value)));
    };
    putCounter("ticks", counters_.ticks);
    putCounter("coreActivations", counters_.coreActivations);
    putCounter("spikesRouted", counters_.spikesRouted);
    putCounter("spikesOut", counters_.spikesOut);
    putCounter("spikesEgress", counters_.spikesEgress);
    putCounter("spikesDropped", counters_.spikesDropped);
    putCounter("hops", counters_.hops);
    putCounter("lateDeliveries", counters_.lateDeliveries);
    putCounter("meshCycles", counters_.meshCycles);
    putCounter("injectRetries", counters_.injectRetries);
    out.set("counters", std::move(counters));

    JsonValue outputs = JsonValue::array();
    for (const OutputSpike &s : outputs_) {
        outputs.append(JsonValue::integer(static_cast<int64_t>(s.tick)));
        outputs.append(JsonValue::integer(s.line));
        outputs.append(JsonValue::integer(s.instance));
    }
    out.set("outputs", std::move(outputs));

    JsonValue egress = JsonValue::array();
    for (const EgressSpike &s : egress_) {
        egress.append(JsonValue::integer(s.srcCore));
        egress.append(JsonValue::integer(s.dx));
        egress.append(JsonValue::integer(s.dy));
        egress.append(JsonValue::integer(s.axon));
        egress.append(
            JsonValue::integer(static_cast<int64_t>(s.deliveryTick)));
        egress.append(JsonValue::integer(s.instance));
    }
    out.set("egress", std::move(egress));

    // The raw agenda array, verbatim: pop_heap order depends on the
    // array layout (see Core::saveState on selfEvents).
    JsonValue agenda = JsonValue::array();
    for (const auto &[tick, c] : agenda_) {
        agenda.append(JsonValue::integer(static_cast<int64_t>(tick)));
        agenda.append(JsonValue::integer(c));
    }
    out.set("agenda", std::move(agenda));

    // kNever (~0ull) travels as -1.
    JsonValue lastWake = JsonValue::array();
    for (uint64_t w : lastWake_)
        lastWake.append(JsonValue::integer(
            w == kNever ? int64_t{-1} : static_cast<int64_t>(w)));
    out.set("lastWake", std::move(lastWake));

    out.set("faultCursor",
            JsonValue::integer(static_cast<int64_t>(faultCursor_)));
    JsonValue suppressed = JsonValue::array();
    for (uint8_t f : faultSuppressed_)
        suppressed.append(JsonValue::integer(f));
    out.set("faultSuppressed", std::move(suppressed));
    JsonValue dead = JsonValue::array();
    for (uint8_t d : coreDead_)
        dead.append(JsonValue::integer(d));
    out.set("coreDead", std::move(dead));
    JsonValue alarms = JsonValue::array();
    for (uint32_t id : detectedAlarms_)
        alarms.append(JsonValue::integer(id));
    out.set("alarms", std::move(alarms));
    out.set("faultStats", faultStatsToJson(faultStats_));

    JsonValue cores = JsonValue::array();
    for (const auto &core : cores_) {
        JsonValue cs;
        core->saveState(cs);
        cores.append(std::move(cs));
    }
    out.set("cores", std::move(cores));
}

bool
Chip::restoreState(const JsonValue &in)
{
    if (params_.noc != NocModel::Functional)
        return false;
    if (in.type() != JsonValue::Type::Object)
        return false;
    for (const char *key : {"now", "counters", "outputs", "egress",
                            "agenda", "lastWake", "cores"})
        if (!in.has(key))
            return false;
    uint64_t now;
    if (!u64FromHex(in.at("now").asString(), now))
        return false;

    const JsonValue &cores = in.at("cores");
    if (cores.type() != JsonValue::Type::Array ||
        cores.size() != numCores())
        return false;
    for (uint32_t c = 0; c < numCores(); ++c)
        if (!cores_[c]->restoreState(cores.at(c)))
            return false;

    now_ = now;
    const JsonValue &counters = in.at("counters");
    auto getCounter = [&counters](const char *key) {
        return static_cast<uint64_t>(counters.getInt(key, 0));
    };
    counters_.ticks = getCounter("ticks");
    counters_.coreActivations = getCounter("coreActivations");
    counters_.spikesRouted = getCounter("spikesRouted");
    counters_.spikesOut = getCounter("spikesOut");
    counters_.spikesEgress = getCounter("spikesEgress");
    counters_.spikesDropped = getCounter("spikesDropped");
    counters_.hops = getCounter("hops");
    counters_.lateDeliveries = getCounter("lateDeliveries");
    counters_.meshCycles = getCounter("meshCycles");
    counters_.injectRetries = getCounter("injectRetries");

    const JsonValue &outputs = in.at("outputs");
    if (outputs.type() != JsonValue::Type::Array ||
        outputs.size() % 3 != 0)
        return false;
    outputs_.clear();
    for (size_t i = 0; i < outputs.size(); i += 3)
        outputs_.push_back(
            {static_cast<uint64_t>(outputs.at(i).asInt()),
             static_cast<uint32_t>(outputs.at(i + 1).asInt()),
             static_cast<uint32_t>(outputs.at(i + 2).asInt())});

    const JsonValue &egress = in.at("egress");
    if (egress.type() != JsonValue::Type::Array ||
        egress.size() % 6 != 0)
        return false;
    egress_.clear();
    for (size_t i = 0; i < egress.size(); i += 6)
        egress_.push_back(
            {static_cast<uint32_t>(egress.at(i).asInt()),
             static_cast<int32_t>(egress.at(i + 1).asInt()),
             static_cast<int32_t>(egress.at(i + 2).asInt()),
             static_cast<uint16_t>(egress.at(i + 3).asInt()),
             static_cast<uint64_t>(egress.at(i + 4).asInt()),
             static_cast<uint32_t>(egress.at(i + 5).asInt())});

    const JsonValue &agenda = in.at("agenda");
    if (agenda.type() != JsonValue::Type::Array ||
        agenda.size() % 2 != 0)
        return false;
    agenda_.clear();
    for (size_t i = 0; i < agenda.size(); i += 2) {
        uint32_t c = static_cast<uint32_t>(agenda.at(i + 1).asInt());
        if (c >= numCores())
            return false;
        agenda_.emplace_back(
            static_cast<uint64_t>(agenda.at(i).asInt()), c);
    }

    const JsonValue &lastWake = in.at("lastWake");
    if (lastWake.type() != JsonValue::Type::Array ||
        lastWake.size() != numCores())
        return false;
    for (uint32_t c = 0; c < numCores(); ++c) {
        int64_t w = lastWake.at(c).asInt();
        lastWake_[c] = w < 0 ? kNever : static_cast<uint64_t>(w);
    }

    faultCursor_ = static_cast<size_t>(in.getInt("faultCursor", 0));
    if (faultCursor_ > faultEvents_.size())
        return false;
    if (in.has("faultSuppressed")) {
        const JsonValue &suppressed = in.at("faultSuppressed");
        if (suppressed.size() != faultSuppressed_.size())
            return false;
        for (size_t i = 0; i < faultSuppressed_.size(); ++i)
            faultSuppressed_[i] =
                suppressed.at(i).asInt() ? 1 : 0;
    }
    if (in.has("coreDead")) {
        const JsonValue &dead = in.at("coreDead");
        if (dead.size() != coreDead_.size())
            return false;
        for (size_t i = 0; i < coreDead_.size(); ++i)
            coreDead_[i] = dead.at(i).asInt() ? 1 : 0;
    }
    detectedAlarms_.clear();
    if (in.has("alarms")) {
        const JsonValue &alarms = in.at("alarms");
        for (size_t i = 0; i < alarms.size(); ++i)
            detectedAlarms_.push_back(
                static_cast<uint32_t>(alarms.at(i).asInt()));
    }
    if (in.has("faultStats"))
        faultStats_ = faultStatsFromJson(in.at("faultStats"));

    pendingInject_.clear();
    return true;
}

const MeshStats *
Chip::meshStats() const
{
    return mesh_ ? &mesh_->stats() : nullptr;
}

EnergyEvents
Chip::energyEvents() const
{
    EnergyEvents e;
    e.ticks = counters_.ticks;
    e.cores = numCores();
    e.neurons = static_cast<uint64_t>(numCores()) *
        params_.coreGeom.numNeurons;
    for (const auto &core : cores_) {
        const CoreCounters &cc = core->counters();
        e.sops += cc.sops;
        e.spikes += cc.spikes;
    }
    e.hops = mesh_ ? mesh_->stats().flitMoves : counters_.hops;
    return e;
}

EnergyBreakdown
Chip::energy() const
{
    return computeEnergy(energyEvents(), params_.energy);
}

void
Chip::dumpStats(const char *prefix, StatGroup &group) const
{
    std::string pre(prefix);
    EnergyEvents e = energyEvents();
    group.add(pre + ".ticks", static_cast<double>(counters_.ticks),
              "ticks executed");
    group.add(pre + ".cores", static_cast<double>(e.cores),
              "cores on chip");
    group.add(pre + ".neurons", static_cast<double>(e.neurons),
              "neurons on chip");
    group.add(pre + ".sops", static_cast<double>(e.sops),
              "synaptic events");
    group.add(pre + ".spikes", static_cast<double>(e.spikes),
              "neuron fires");
    group.add(pre + ".spikesRouted",
              static_cast<double>(counters_.spikesRouted),
              "core-to-core spikes");
    group.add(pre + ".spikesOut",
              static_cast<double>(counters_.spikesOut),
              "off-chip spikes");
    if (params_.allowEgress)
        group.add(pre + ".spikesEgress",
                  static_cast<double>(counters_.spikesEgress),
                  "spikes surfaced as edge egress");
    group.add(pre + ".hops", static_cast<double>(e.hops),
              "router traversals");
    group.add(pre + ".lateDeliveries",
              static_cast<double>(counters_.lateDeliveries),
              "packets that missed their delivery slot");
    group.add(pre + ".coreActivations",
              static_cast<double>(counters_.coreActivations),
              "core tick evaluations (simulation effort)");
    uint64_t evals = 0, evals_batched = 0, sops_batched = 0;
    uint64_t evals_stoch_batched = 0;
    uint64_t compactions = 0;
    for (const auto &core : cores_) {
        const CoreCounters &cc = core->counters();
        evals += cc.evals;
        evals_batched += cc.evalsBatched;
        evals_stoch_batched += cc.evalsStochBatched;
        sops_batched += cc.sopsBatched;
        compactions += cc.selfEventCompactions;
    }
    group.add(pre + ".evals", static_cast<double>(evals),
              "end-of-tick neuron evaluations");
    group.add(pre + ".evalsBatched",
              static_cast<double>(evals_batched),
              "of evals, via the batched SoA update kernel");
    group.add(pre + ".evalsStochBatched",
              static_cast<double>(evals_stoch_batched),
              "of evalsBatched, stochastic cohort via "
              "precomputed draws");
    group.add(pre + ".sopsBatched",
              static_cast<double>(sops_batched),
              "of sops, via the word-parallel integrate path");
    group.add(pre + ".selfEventCompactions",
              static_cast<double>(compactions),
              "lazy self-event heap rebuilds");
    if (params_.faultPlan) {
        group.add(pre + ".fault.deadCores",
                  static_cast<double>(faultStats_.deadCores),
                  "cores killed by injected faults");
        group.add(pre + ".fault.stuckWords",
                  static_cast<double>(faultStats_.stuckWords),
                  "crossbar words stuck by injected faults");
        group.add(pre + ".fault.seuFlips",
                  static_cast<double>(faultStats_.seuFlips),
                  "injected potential bit flips");
        group.add(pre + ".fault.alarms",
                  static_cast<double>(faultStats_.alarms),
                  "detected-fault alarms raised");
    }
    EnergyBreakdown b = computeEnergy(e, params_.energy);
    energyStats(b, e, params_.energy, (pre + ".energy").c_str(), group);
}

size_t
Chip::footprintBytes() const
{
    size_t bytes = sizeof(Chip);
    for (const auto &core : cores_)
        bytes += core->footprintBytes();
    bytes += egress_.capacity() * sizeof(EgressSpike);
    constexpr size_t kMapNode =
        sizeof(std::pair<uint32_t, uint64_t>) + 4 * sizeof(void *);
    for (const auto &row : cellTraffic_)
        bytes += sizeof(row) + row.size() * kMapNode;
    bytes += agenda_.capacity() * sizeof(std::pair<uint64_t, uint32_t>);
    bytes += lastWake_.capacity() * sizeof(uint64_t);
    bytes += faultEvents_.capacity() * sizeof(FaultEvent);
    bytes += faultSuppressed_.capacity() + coreDead_.capacity();
    bytes += detectedAlarms_.capacity() * sizeof(uint32_t);
    if (params_.faultPlan)
        bytes += params_.faultPlan->footprintBytes();
    return bytes;
}

} // namespace nscs
