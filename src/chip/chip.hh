/**
 * @file
 * The chip: a grid of neurosynaptic cores joined by the mesh, run
 * under a global tick discipline.
 *
 * Tick semantics (1 kHz in real time): at tick t every core drains
 * its scheduler slot, integrates, updates neurons and emits spikes;
 * each spike is then routed to (source + dx, source + dy) where it is
 * parked for delivery at tick t + delay.  Delivery must complete
 * before the delivery tick; packets that arrive after their slot has
 * drained wait a full scheduler wrap and are counted as late (an
 * architectural hazard, not a simulator error).
 *
 * Two execution engines with bit-identical spike output:
 *  - Clock: every core evaluates every tick (tickDense);
 *  - Event: cores run only when they have parked spikes to drain, a
 *    due predicted self-event, or per-tick-stochastic neurons
 *    (tickSparse).
 *
 * Two spike-transport models:
 *  - Functional: spikes teleport into the destination scheduler at
 *    emission; hop counts are accounted analytically (|dx| + |dy|).
 *    Semantically exact as long as real transport would meet the
 *    delivery deadline.
 *  - Cycle: spikes traverse the cycle-accurate mesh with buffering,
 *    arbitration and backpressure; a per-tick router-cycle budget
 *    models the physical tick length.
 *
 * External I/O is functional in both transport models: input spikes
 * are deposited directly into target schedulers, output spikes are
 * recorded with their generation tick.
 */

#ifndef NSCS_CHIP_CHIP_HH
#define NSCS_CHIP_CHIP_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "chip/energy.hh"
#include "core/core.hh"
#include "noc/mesh.hh"
#include "runtime/fault.hh"
#include "util/stats.hh"

namespace nscs {
struct InputSpike;  // runtime/source.hh
}

namespace nscs {

class ThreadPool;

/** Execution engine selection. */
enum class EngineKind : uint8_t {
    Clock,  //!< evaluate every core every tick
    Event,  //!< evaluate only cores with work
};

/** Spike transport model selection. */
enum class NocModel : uint8_t {
    Functional,  //!< exact-semantics instant transport
    Cycle,       //!< cycle-accurate mesh
};

/** Chip construction parameters. */
struct ChipParams
{
    uint32_t width = 4;              //!< cores in x
    uint32_t height = 4;             //!< cores in y
    CoreGeometry coreGeom;           //!< geometry of every core
    EngineKind engine = EngineKind::Event;
    NocModel noc = NocModel::Functional;
    uint32_t meshFifoDepth = 4;      //!< router FIFO capacity (Cycle)
    uint32_t cyclesPerTick = 4096;   //!< router cycles per tick (Cycle)
    EnergyParams energy;             //!< energy constants

    /**
     * Worker lanes for the parallel tick engine; 0 or 1 selects the
     * serial engine.  Output is bit-identical either way: cores are
     * evaluated concurrently (every destination delay is >= 1 tick,
     * so evaluation of tick t never observes tick-t deposits) and
     * spikes are then routed serially in the serial engine's order.
     */
    uint32_t threads = 0;

    /**
     * Replica instance lanes per core (instance batching).  Every
     * core executes this many replicas of its configured network in
     * lockstep: configuration is shared read-only, mutable state is
     * per-lane, and each lane's spike stream is bit-identical to a
     * single-instance run fed the same inputs (see Core).  All spike
     * I/O structs (OutputSpike, EgressSpike, InputSpike) carry the
     * lane index.  Requires the Functional transport model when > 1:
     * mesh SpikePackets do not carry a lane.
     */
    uint32_t instances = 1;

    /**
     * Permit neuron destinations that land outside this chip's core
     * grid.  Such spikes surface as EgressSpikes instead of being a
     * configuration error; the containing Board routes them over
     * inter-chip links.  Requires the Functional transport model
     * (egress packets bypass the on-chip mesh).  Off by default: a
     * standalone chip treats out-of-grid targets as fatal.
     */
    bool allowEgress = false;

    /**
     * Record per-(source core, destination core) routed-spike counts
     * for traffic profiling.  Covers intra-chip routes only (egress
     * spikes are counted by the containing Board, which alone knows
     * the global geometry); Board::trafficProfile() merges both into
     * one full-fidelity core-to-core matrix.  Off by default: the
     * per-spike map update is measurement overhead.
     */
    bool traceTraffic = false;

    /**
     * Optional fault plan.  A standalone chip accepts only the
     * core-targeted kinds (dead core, stuck word, potential flip)
     * with chip-local core indices; a Board slices its own plan into
     * per-chip plans before constructing chips, so link kinds here
     * are a configuration error.  Events apply at the start of their
     * scheduled tick, before the cores evaluate.
     */
    std::shared_ptr<const FaultPlan> faultPlan;
};

/** An output spike that left the chip. */
struct OutputSpike
{
    uint64_t tick = 0;     //!< generation tick
    uint32_t line = 0;     //!< output line id
    uint32_t instance = 0; //!< emitting instance lane

    bool operator==(const OutputSpike &other) const = default;
};

/**
 * A spike whose destination lies beyond this chip's core grid
 * (ChipParams::allowEgress).  Offsets are relative to the source
 * core in core units, exactly as configured in the NeuronDest; the
 * board resolves them against the chip's position in the global core
 * grid.  Egress spikes accumulate during a tick in routing order and
 * are drained by the board's serial merge phase.
 */
struct EgressSpike
{
    uint32_t srcCore = 0;      //!< source core (local row-major index)
    int32_t dx = 0;            //!< relative core hops in x
    int32_t dy = 0;            //!< relative core hops in y
    uint16_t axon = 0;         //!< target axon index
    uint64_t deliveryTick = 0; //!< fire tick + configured delay
    uint32_t instance = 0;     //!< emitting/target instance lane

    bool operator==(const EgressSpike &other) const = default;
};

/**
 * One spike of a coalesced board packet's payload: a fully resolved
 * destination on the receiving chip.  The packet header carries the
 * shared delivery tick (see Board; LinkParams::coalesce).
 */
struct RoutedSpike
{
    uint32_t core = 0;      //!< local core (row-major index)
    uint16_t axon = 0;      //!< target axon index
    uint16_t instance = 0;  //!< destination instance lane

    bool operator==(const RoutedSpike &other) const = default;
};

/** Chip-level aggregate counters (beyond per-core counters). */
struct ChipCounters
{
    uint64_t ticks = 0;           //!< ticks executed
    uint64_t coreActivations = 0; //!< core tick evaluations
    uint64_t spikesRouted = 0;    //!< core-to-core spikes
    uint64_t spikesOut = 0;       //!< off-chip spikes
    uint64_t spikesEgress = 0;    //!< spikes surfaced as edge egress
    uint64_t spikesDropped = 0;   //!< fired with Kind::None dest
    uint64_t hops = 0;            //!< router traversals (both models)
    uint64_t lateDeliveries = 0;  //!< arrived after their slot drained
    uint64_t meshCycles = 0;      //!< cycles stepped (Cycle model)
    uint64_t injectRetries = 0;   //!< backpressure retries (Cycle)
};

/** The simulated chip. */
class Chip
{
  public:
    /**
     * Build a chip.  @p configs holds one CoreConfig per core in
     * row-major order (index = y * width + x) and must match
     * params.width * params.height; every config must match
     * params.coreGeom.
     */
    Chip(const ChipParams &params, std::vector<CoreConfig> configs);

    Chip(Chip &&);
    Chip &operator=(Chip &&);
    ~Chip();

    /** Return every core and the fabric to the initial state. */
    void reset();

    /**
     * Deposit an external input spike into @p core's axon @p axon
     * for delivery at absolute tick @p delivery_tick (must be >=
     * the next tick to execute).
     */
    void injectInput(uint32_t core, uint32_t axon,
                     uint64_t delivery_tick, uint32_t inst = 0);

    /**
     * Deposit a batch of external spikes, all for delivery at tick
     * @p delivery_tick.  Equivalent to calling injectInput per
     * spike; the bulk path hoists the tick-range check, the
     * effective-tick computation and the per-core wake-up out of
     * the per-spike loop — the classifier front-end injects
     * thousands of same-tick spikes per serving pass.
     */
    void injectInputs(const std::vector<InputSpike> &spikes,
                      uint64_t delivery_tick);

    /**
     * Execute one tick.  Uses the parallel engine when
     * params.threads >= 2, the serial engine otherwise.
     */
    void tick();

    /**
     * Execute one tick on the parallel path: evaluate the active
     * cores across the worker pool, then merge and route the fired
     * spikes serially in ascending core order.  Bit-identical to the
     * serial engine; with params.threads < 2 the evaluation phase
     * runs on the calling thread only.
     */
    void tickParallel();

    /** Execute one tick on the serial engine regardless of params. */
    void tickSerial();

    /** Execute @p n ticks. */
    void run(uint64_t n);

    /** Next tick to execute (== ticks executed so far). */
    uint64_t now() const { return now_; }

    /** Output spikes accumulated since the last drain. */
    const std::vector<OutputSpike> &outputs() const { return outputs_; }

    /** Drop drained output spikes. */
    void clearOutputs() { outputs_.clear(); }

    /** Egress spikes accumulated since the last drain (allowEgress). */
    const std::vector<EgressSpike> &egress() const { return egress_; }

    /** Per-source-core intra-chip routed-spike counts (local core ->
     *  local core -> spikes); empty unless ChipParams::traceTraffic. */
    const std::vector<std::map<uint32_t, uint64_t>> &
    cellTraffic() const
    {
        return cellTraffic_;
    }

    /** Drop drained egress spikes. */
    void clearEgress() { egress_.clear(); }

    /**
     * Deposit a spike routed in from outside the chip (board merge
     * phase) for delivery at absolute tick @p delivery_tick.  Unlike
     * injectInput, a delivery tick already in the past is handled
     * with the late-delivery wrap rule (the packet waits a full
     * scheduler revolution and is counted) rather than asserted:
     * link contention legitimately delays packets past their slot.
     */
    void depositRouted(uint32_t core, uint32_t axon,
                       uint64_t delivery_tick, uint32_t inst = 0);

    /**
     * Deposit a coalesced packet payload: @p n routed spikes all
     * delivering at @p delivery_tick.  Equivalent to calling
     * depositRouted per spike (including the late-delivery wrap
     * rule); the bulk path hoists the effective-tick computation and
     * shares the core pointer and wake-up across same-core runs,
     * mirroring injectInputs.
     */
    void depositRoutedMany(const RoutedSpike *spikes, size_t n,
                           uint64_t delivery_tick);

    /** Number of cores. */
    uint32_t numCores() const { return static_cast<uint32_t>(cores_.size()); }

    /** Replica instance lanes per core. */
    uint32_t instances() const { return params_.instances; }

    /** Core access. */
    const Core &core(uint32_t idx) const { return *cores_[idx]; }

    /** Mutable core access (diagnostics/tests). */
    Core &core(uint32_t idx) { return *cores_[idx]; }

    /** Chip-level counters. */
    const ChipCounters &counters() const { return counters_; }

    /** Mesh statistics (Cycle model; empty otherwise). */
    const MeshStats *meshStats() const;

    /** Sum of core counters plus chip counters as energy inputs. */
    EnergyEvents energyEvents() const;

    /** Energy decomposition since reset. */
    EnergyBreakdown energy() const;

    /** Construction parameters. */
    const ChipParams &params() const { return params_; }

    /** Append chip stats to @p group under @p prefix. */
    void dumpStats(const char *prefix, StatGroup &group) const;

    /** Total heap footprint of cores + fabric in bytes. */
    size_t footprintBytes() const;

    // --- fault injection -------------------------------------------------

    /** Fault injection counters (all zero without a plan). */
    const FaultStats &faultStats() const { return faultStats_; }

    /** True when fault injection has killed core @p core. */
    bool coreDead(uint32_t core) const { return coreDead_[core] != 0; }

    /**
     * Suppress the plan event with originating-plan id @p id: it will
     * not (re-)apply on subsequent ticks.  The Simulator calls this
     * after rolling back to a checkpoint so the deterministic replay
     * runs clean of the transient fault it is recovering from.
     */
    void suppressFault(uint32_t id);

    /**
     * Move the ids of transient faults detected since the last drain
     * (in detection order) into @p out.
     */
    void drainDetectedFaults(std::vector<uint32_t> &out);

    // --- snapshot --------------------------------------------------------

    /** Serialize the full mutable chip state into @p out (snapshot). */
    void saveState(JsonValue &out) const;

    /**
     * Restore state saved by saveState().  Construction parameters
     * (grid, geometry, engine, fault plan) must match the snapshot's
     * origin; @return false on a structural mismatch (state is
     * unspecified on failure).  Requires the Functional transport
     * model — the Cycle mesh's in-flight flits are not serialized.
     */
    bool restoreState(const JsonValue &in);

  private:
    void routeSpike(uint32_t src_core, const InstanceFire &fire,
                    const NeuronDest &dest, uint64_t t);
    void depositAndWake(uint32_t core, uint32_t axon,
                        uint64_t delivery_tick, uint64_t t,
                        uint32_t inst);
    void runMesh(uint64_t t);
    void scheduleWake(uint32_t core, uint64_t tick);
    uint64_t effectiveDeliveryTick(uint64_t delivery_tick,
                                   uint64_t t) const;
    void collectActive(uint64_t t);
    void evaluateCore(uint32_t core, uint64_t t,
                      std::vector<InstanceFire> &fired);
    void finishTick(uint64_t t);
    void applyDueFaults(uint64_t t);

    ChipParams params_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::unique_ptr<Mesh> mesh_;          //!< Cycle model only
    std::vector<OutputSpike> outputs_;
    std::vector<EgressSpike> egress_;     //!< allowEgress only
    // Intra-chip traffic matrix (ChipParams::traceTraffic); rows are
    // source cores, sparse columns destination cores.  routeSpike()
    // updates it at the serial routing point, so the parallel tick
    // engine needs no synchronisation around it.
    std::vector<std::map<uint32_t, uint64_t>> cellTraffic_;
    ChipCounters counters_;
    uint64_t now_ = 0;

    // Event engine agenda: an explicit (tick, core) min-heap via
    // std::push_heap/pop_heap rather than std::priority_queue, so
    // footprintBytes() can account for its capacity (tick paths must
    // not hold opaque heaps — see Core::selfEvents_ and nscs_lint's
    // priority-queue rule).
    std::vector<uint32_t> denseCores_;
    std::vector<std::pair<uint64_t, uint32_t>> agenda_;
    std::vector<uint64_t> lastWake_;     //!< dedup helper per core
    std::vector<uint32_t> activeScratch_;
    std::vector<InstanceFire> firedScratch_;

    // Parallel engine (params.threads >= 2).
    std::unique_ptr<ThreadPool> pool_;
    /** Per-chunk reusable buffers for the parallel evaluation phase. */
    struct EvalChunk
    {
        /** (index into activeScratch_, fire), in eval order. */
        std::vector<std::pair<uint32_t, InstanceFire>> fired;
        std::vector<InstanceFire> scratch; //!< per-core fired scratch
    };
    std::vector<EvalChunk> chunks_;

    // Cycle model: spikes awaiting successful injection.
    struct PendingInject
    {
        uint32_t x, y;
        SpikePacket pkt;
    };
    std::deque<PendingInject> pendingInject_;

    // Fault injection (ChipParams::faultPlan).  faultEvents_ is the
    // chip-local slice, stable-sorted by tick; faultCursor_ advances
    // past events whose tick has been reached, and faultSuppressed_
    // (parallel to faultEvents_) marks events the recovery layer has
    // neutralized.
    std::vector<FaultEvent> faultEvents_;
    size_t faultCursor_ = 0;
    std::vector<uint8_t> faultSuppressed_;
    std::vector<uint8_t> coreDead_;
    std::vector<uint32_t> detectedAlarms_;
    FaultStats faultStats_;
};

} // namespace nscs

#endif // NSCS_CHIP_CHIP_HH
