#include "chip/energy.hh"

namespace nscs {

EnergyBreakdown
computeEnergy(const EnergyEvents &e, const EnergyParams &p)
{
    EnergyBreakdown b;
    double window = static_cast<double>(e.ticks) * p.tickSeconds;
    b.leakageJ = p.leakagePerCoreW * static_cast<double>(e.cores)
        * window;
    b.sopJ = p.sopEnergyJ * static_cast<double>(e.sops);
    b.neuronJ = p.neuronUpdateJ * static_cast<double>(e.neurons)
        * static_cast<double>(e.ticks);
    b.spikeJ = p.spikeGenJ * static_cast<double>(e.spikes);
    b.hopJ = p.hopEnergyJ * static_cast<double>(e.hops);
    return b;
}

double
averagePowerW(const EnergyBreakdown &b, const EnergyEvents &e,
              const EnergyParams &p)
{
    double window = static_cast<double>(e.ticks) * p.tickSeconds;
    if (window <= 0.0)
        return 0.0;
    return b.totalJ() / window;
}

double
energyPerSopJ(const EnergyBreakdown &b, const EnergyEvents &e)
{
    if (e.sops == 0)
        return 0.0;
    return b.totalJ() / static_cast<double>(e.sops);
}

void
energyStats(const EnergyBreakdown &b, const EnergyEvents &e,
            const EnergyParams &p, const char *prefix,
            StatGroup &group)
{
    std::string pre(prefix);
    group.add(pre + ".leakageJ", b.leakageJ, "static leakage energy");
    group.add(pre + ".sopJ", b.sopJ, "synaptic event energy");
    group.add(pre + ".neuronJ", b.neuronJ, "neuron update energy");
    group.add(pre + ".spikeJ", b.spikeJ, "spike generation energy");
    group.add(pre + ".hopJ", b.hopJ, "interconnect energy");
    group.add(pre + ".totalJ", b.totalJ(), "total energy");
    group.add(pre + ".powerW", averagePowerW(b, e, p), "mean power");
    group.add(pre + ".pJPerSop", energyPerSopJ(b, e) * 1e12,
              "effective energy per synaptic event (pJ)");
}

} // namespace nscs
