/**
 * @file
 * Event-based energy/power model.
 *
 * The modelled architecture is fully event-driven at the circuit
 * level, so chip energy decomposes into a static leakage term plus
 * per-event active energies.  The default constants are calibrated so
 * that a 64x64-core chip running the published nominal operating
 * point (1 M neurons at 20 Hz mean rate, 128 active synapses per
 * spike, 1 ms ticks) lands near the published figures: total power in
 * the tens of milliwatts, effective energy per synaptic event around
 * 25 pJ.  The calibration is documented in EXPERIMENTS.md; the model
 * reproduces published *scaling shapes*, not silicon measurements.
 */

#ifndef NSCS_CHIP_ENERGY_HH
#define NSCS_CHIP_ENERGY_HH

#include <cstdint>

#include "util/stats.hh"

namespace nscs {

/** Energy constants (Joules / Watts / seconds). */
struct EnergyParams
{
    double leakagePerCoreW = 6.5e-6;  //!< static leakage per core
    double sopEnergyJ = 12e-12;       //!< per synaptic event (read+add)
    double neuronUpdateJ = 1.1e-12;   //!< per neuron per tick
    double spikeGenJ = 18e-12;        //!< per fired spike (incl. sched)
    double hopEnergyJ = 3.0e-12;      //!< per router traversal
    double tickSeconds = 1e-3;        //!< real-time tick duration
};

/** Architectural event totals the model consumes. */
struct EnergyEvents
{
    uint64_t ticks = 0;          //!< elapsed ticks
    uint64_t cores = 0;          //!< number of cores
    uint64_t neurons = 0;        //!< total neurons across cores
    uint64_t sops = 0;           //!< synaptic events delivered
    uint64_t spikes = 0;         //!< neuron fires
    uint64_t hops = 0;           //!< router traversals
};

/** Energy decomposition over a measurement window. */
struct EnergyBreakdown
{
    double leakageJ = 0;   //!< static leakage
    double sopJ = 0;       //!< synaptic events
    double neuronJ = 0;    //!< neuron updates
    double spikeJ = 0;     //!< spike generation
    double hopJ = 0;       //!< interconnect traversals

    /** Total energy in Joules. */
    double
    totalJ() const
    {
        return leakageJ + sopJ + neuronJ + spikeJ + hopJ;
    }
};

/** Compute the decomposition for @p events under @p params. */
EnergyBreakdown computeEnergy(const EnergyEvents &events,
                              const EnergyParams &params);

/** Mean power in Watts over the window covered by @p events. */
double averagePowerW(const EnergyBreakdown &breakdown,
                     const EnergyEvents &events,
                     const EnergyParams &params);

/** Effective energy per synaptic event (Joules; 0 if no SOPs). */
double energyPerSopJ(const EnergyBreakdown &breakdown,
                     const EnergyEvents &events);

/** Append the breakdown to a stat group under @p prefix. */
void energyStats(const EnergyBreakdown &breakdown,
                 const EnergyEvents &events,
                 const EnergyParams &params,
                 const char *prefix, StatGroup &group);

} // namespace nscs

#endif // NSCS_CHIP_ENERGY_HH
