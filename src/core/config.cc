#include "core/config.hh"

#include "util/logging.hh"

namespace nscs {

CoreConfig
CoreConfig::make(const CoreGeometry &geom)
{
    CoreConfig cfg;
    cfg.geom = geom;
    cfg.axonType.assign(geom.numAxons, 0);
    cfg.xbarRows.assign(geom.numAxons, BitVec(geom.numNeurons));
    cfg.neurons.assign(geom.numNeurons, NeuronParams{});
    cfg.dests.assign(geom.numNeurons, NeuronDest{});
    return cfg;
}

void
CoreConfig::connect(uint32_t axon, uint32_t neuron, bool on)
{
    NSCS_ASSERT(axon < geom.numAxons && neuron < geom.numNeurons,
                "connect(%u, %u) outside %ux%u core",
                axon, neuron, geom.numAxons, geom.numNeurons);
    xbarRows[axon].set(neuron, on);
}

size_t
CoreConfig::footprintBytes() const
{
    size_t bytes = sizeof(CoreConfig);
    bytes += axonType.capacity();
    for (const auto &row : xbarRows)
        bytes += row.footprintBytes();
    bytes += neurons.capacity() * sizeof(NeuronParams);
    bytes += dests.capacity() * sizeof(NeuronDest);
    return bytes;
}

void
validateCoreConfig(const CoreConfig &cfg, const char *ctx, int max_delta)
{
    const CoreGeometry &g = cfg.geom;
    if (g.numAxons == 0 || g.numNeurons == 0)
        fatal("%s: empty core geometry", ctx);
    if (g.delaySlots < 2)
        fatal("%s: delaySlots=%u must be >= 2", ctx, g.delaySlots);
    if (cfg.axonType.size() != g.numAxons)
        fatal("%s: axonType size %zu != numAxons %u",
              ctx, cfg.axonType.size(), g.numAxons);
    if (cfg.xbarRows.size() != g.numAxons)
        fatal("%s: xbarRows size %zu != numAxons %u",
              ctx, cfg.xbarRows.size(), g.numAxons);
    if (cfg.neurons.size() != g.numNeurons)
        fatal("%s: neurons size %zu != numNeurons %u",
              ctx, cfg.neurons.size(), g.numNeurons);
    if (cfg.dests.size() != g.numNeurons)
        fatal("%s: dests size %zu != numNeurons %u",
              ctx, cfg.dests.size(), g.numNeurons);

    for (uint32_t a = 0; a < g.numAxons; ++a) {
        if (cfg.axonType[a] >= kNumAxonTypes)
            fatal("%s: axon %u has type %u >= %u",
                  ctx, a, cfg.axonType[a], kNumAxonTypes);
        if (cfg.xbarRows[a].size() != g.numNeurons)
            fatal("%s: crossbar row %u has %zu bits, expected %u",
                  ctx, a, cfg.xbarRows[a].size(), g.numNeurons);
    }
    for (uint32_t n = 0; n < g.numNeurons; ++n) {
        validateNeuronParams(cfg.neurons[n], ctx);
        const NeuronDest &d = cfg.dests[n];
        switch (d.kind) {
          case NeuronDest::Kind::None:
            break;
          case NeuronDest::Kind::Core:
            if (d.delay < 1 || d.delay >= g.delaySlots)
                fatal("%s: neuron %u delay %u outside [1, %u]",
                      ctx, n, d.delay, g.delaySlots - 1);
            if (max_delta > 0 &&
                (d.dx > max_delta || d.dx < -max_delta ||
                 d.dy > max_delta || d.dy < -max_delta))
                fatal("%s: neuron %u dest offset (%d, %d) exceeds "
                      "packet range +/-%d", ctx, n, d.dx, d.dy,
                      max_delta);
            break;
          case NeuronDest::Kind::Output:
            break;
          default:
            fatal("%s: neuron %u has invalid dest kind", ctx, n);
        }
    }
}

JsonValue
coreConfigToJson(const CoreConfig &cfg)
{
    JsonValue o = JsonValue::object();

    JsonValue geom = JsonValue::object();
    geom.set("numAxons", JsonValue::integer(cfg.geom.numAxons));
    geom.set("numNeurons", JsonValue::integer(cfg.geom.numNeurons));
    geom.set("delaySlots", JsonValue::integer(cfg.geom.delaySlots));
    o.set("geometry", std::move(geom));

    JsonValue types = JsonValue::array();
    for (uint8_t t : cfg.axonType)
        types.append(JsonValue::integer(t));
    o.set("axonType", std::move(types));

    // Crossbar rows serialize sparsely as set-bit index lists.
    JsonValue rows = JsonValue::array();
    for (const auto &row : cfg.xbarRows) {
        JsonValue bits = JsonValue::array();
        row.forEachSet([&bits](size_t j) {
            bits.append(JsonValue::integer(static_cast<int64_t>(j)));
        });
        rows.append(std::move(bits));
    }
    o.set("crossbar", std::move(rows));

    JsonValue neurons = JsonValue::array();
    for (const auto &p : cfg.neurons)
        neurons.append(neuronParamsToJson(p));
    o.set("neurons", std::move(neurons));

    JsonValue dests = JsonValue::array();
    for (const auto &d : cfg.dests) {
        JsonValue dj = JsonValue::object();
        dj.set("kind", JsonValue::integer(static_cast<int>(d.kind)));
        if (d.kind == NeuronDest::Kind::Core) {
            dj.set("dx", JsonValue::integer(d.dx));
            dj.set("dy", JsonValue::integer(d.dy));
            dj.set("axon", JsonValue::integer(d.axon));
            dj.set("delay", JsonValue::integer(d.delay));
        } else if (d.kind == NeuronDest::Kind::Output) {
            dj.set("line", JsonValue::integer(d.line));
            dj.set("delay", JsonValue::integer(d.delay));
        }
        dests.append(std::move(dj));
    }
    o.set("dests", std::move(dests));

    o.set("rngSeed", JsonValue::integer(cfg.rngSeed));
    return o;
}

CoreConfig
coreConfigFromJson(const JsonValue &v)
{
    CoreGeometry geom;
    if (v.has("geometry")) {
        const auto &g = v.at("geometry");
        geom.numAxons = static_cast<uint32_t>(
            g.getInt("numAxons", geom.numAxons));
        geom.numNeurons = static_cast<uint32_t>(
            g.getInt("numNeurons", geom.numNeurons));
        geom.delaySlots = static_cast<uint32_t>(
            g.getInt("delaySlots", geom.delaySlots));
    }
    CoreConfig cfg = CoreConfig::make(geom);

    if (v.has("axonType")) {
        const auto &types = v.at("axonType");
        if (types.size() != geom.numAxons)
            fatal("core config: axonType has %zu entries, expected %u",
                  types.size(), geom.numAxons);
        for (uint32_t a = 0; a < geom.numAxons; ++a)
            cfg.axonType[a] = static_cast<uint8_t>(types.at(a).asInt());
    }
    if (v.has("crossbar")) {
        const auto &rows = v.at("crossbar");
        if (rows.size() != geom.numAxons)
            fatal("core config: crossbar has %zu rows, expected %u",
                  rows.size(), geom.numAxons);
        for (uint32_t a = 0; a < geom.numAxons; ++a) {
            const auto &bits = rows.at(a);
            for (size_t i = 0; i < bits.size(); ++i)
                cfg.connect(a, static_cast<uint32_t>(bits.at(i).asInt()));
        }
    }
    if (v.has("neurons")) {
        const auto &neurons = v.at("neurons");
        if (neurons.size() != geom.numNeurons)
            fatal("core config: neurons has %zu entries, expected %u",
                  neurons.size(), geom.numNeurons);
        for (uint32_t n = 0; n < geom.numNeurons; ++n)
            cfg.neurons[n] = neuronParamsFromJson(neurons.at(n));
    }
    if (v.has("dests")) {
        const auto &dests = v.at("dests");
        if (dests.size() != geom.numNeurons)
            fatal("core config: dests has %zu entries, expected %u",
                  dests.size(), geom.numNeurons);
        for (uint32_t n = 0; n < geom.numNeurons; ++n) {
            const auto &dj = dests.at(n);
            NeuronDest d;
            d.kind = static_cast<NeuronDest::Kind>(dj.getInt("kind", 0));
            d.dx = static_cast<int16_t>(dj.getInt("dx", 0));
            d.dy = static_cast<int16_t>(dj.getInt("dy", 0));
            d.axon = static_cast<uint16_t>(dj.getInt("axon", 0));
            d.delay = static_cast<uint8_t>(dj.getInt("delay", 1));
            d.line = static_cast<uint32_t>(dj.getInt("line", 0));
            cfg.dests[n] = d;
        }
    }
    cfg.rngSeed = static_cast<uint16_t>(v.getInt("rngSeed", 0xACE1));
    validateCoreConfig(cfg, "coreConfigFromJson");
    return cfg;
}

} // namespace nscs
