/**
 * @file
 * Static configuration of one neurosynaptic core.
 *
 * A core couples a set of input axons to a set of neurons through a
 * binary crossbar.  Every axon carries a *type* (0..3); each neuron
 * interprets each type through its own signed weight, so the crossbar
 * itself stores a single bit per (axon, neuron) pair.  Every neuron
 * owns exactly one spike destination: a relative core offset plus
 * target axon and delivery delay, or an off-chip output line.
 * Fan-out beyond one target is built from splitter cores by the
 * compiler (see prog/).
 *
 * The default geometry (256 axons x 256 neurons x 16 delay slots)
 * matches the published architecture; all of it is parameterisable.
 */

#ifndef NSCS_CORE_CONFIG_HH
#define NSCS_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "neuron/params.hh"
#include "util/bitvec.hh"
#include "util/json.hh"

namespace nscs {

/** Physical dimensions of a core. */
struct CoreGeometry
{
    uint32_t numAxons = 256;    //!< input axons (crossbar rows)
    uint32_t numNeurons = 256;  //!< neurons (crossbar columns)
    uint32_t delaySlots = 16;   //!< scheduler depth in ticks

    bool operator==(const CoreGeometry &other) const = default;
};

/** Where a neuron's output spike goes. */
struct NeuronDest
{
    /** Destination kind. */
    enum class Kind : uint8_t {
        None = 0,     //!< neuron output is unused
        Core = 1,     //!< another (or the same) core on this chip
        Output = 2,   //!< off-chip output line
    };

    Kind kind = Kind::None;
    int16_t dx = 0;       //!< relative core hops in x (Kind::Core)
    int16_t dy = 0;       //!< relative core hops in y (Kind::Core)
    uint16_t axon = 0;    //!< target axon index (Kind::Core)
    uint8_t delay = 1;    //!< delivery delay in ticks, >= 1
    uint32_t line = 0;    //!< output line id (Kind::Output)

    bool operator==(const NeuronDest &other) const = default;
};

/** Complete serialisable configuration of one core. */
struct CoreConfig
{
    CoreGeometry geom;

    /** Axon type (0..kNumAxonTypes-1) per axon. */
    std::vector<uint8_t> axonType;

    /** Crossbar row per axon: bit j = synapse to neuron j. */
    std::vector<BitVec> xbarRows;

    /** Parameters per neuron. */
    std::vector<NeuronParams> neurons;

    /** Destination per neuron. */
    std::vector<NeuronDest> dests;

    /** Seed for the shared per-core PRNG. */
    uint16_t rngSeed = 0xACE1;

    /** Construct with geometry, everything zeroed/default. */
    static CoreConfig make(const CoreGeometry &geom = CoreGeometry{});

    /** Set a crossbar bit. */
    void connect(uint32_t axon, uint32_t neuron, bool on = true);

    /** Estimated model memory of this configuration in bytes. */
    size_t footprintBytes() const;
};

/**
 * Validate a core configuration against its geometry; fatal() with
 * @p ctx on any violation.  @p max_delta bounds |dx|/|dy| (packet
 * field width); pass 0 to skip that check.
 */
void validateCoreConfig(const CoreConfig &cfg, const char *ctx,
                        int max_delta = 255);

/** Serialize a core configuration. */
JsonValue coreConfigToJson(const CoreConfig &cfg);

/** Parse a core configuration (fatal on malformed input). */
CoreConfig coreConfigFromJson(const JsonValue &v);

} // namespace nscs

#endif // NSCS_CORE_CONFIG_HH
