#include "core/core.hh"

#include <algorithm>
#include <bit>
#include <chrono>

#include "util/logging.hh"
#include "util/saturate.hh"
#include "util/simd.hh"

namespace nscs {

Core::Core(CoreConfig cfg, uint32_t instances)
    : cfg_(std::move(cfg)),
      xbar_(cfg_.xbarRows, cfg_.geom.numNeurons),
      sched_(cfg_.geom.delaySlots, cfg_.geom.numAxons, instances),
      evalMask_(cfg_.geom.numNeurons)
{
    validateCoreConfig(cfg_, "Core");
    NSCS_ASSERT(instances >= 1, "core needs >= 1 instance");
    const uint32_t n = cfg_.geom.numNeurons;
    cls_.resize(n);
    for (uint32_t j = 0; j < n; ++j)
        cls_[j] = classifyNeuron(cfg_.neurons[j]);
    // Lanes must exist before buildLanes(): threshold calibration
    // probes the real integrate paths through lane 0.
    inst_.init(instances, n);
    buildLanes();
    buildUpdateCohorts();
    reset();
}

/**
 * Project the update-relevant NeuronParams fields into SoA lanes and
 * split the population into the deterministic update cohort (zero
 * per-tick draws, batchable) and the stochastic cohort (scalar).
 * Deterministic neurons are additionally grouped into maximal
 * ascending runs so the homogeneous case — the architectural
 * steady state — is one flat kernel sweep over the whole core.
 */
void
Core::buildUpdateCohorts()
{
    const uint32_t n = cfg_.geom.numNeurons;
    update_.build(cfg_.neurons);
    detEvalScratch_ = BitVec(n);
    detRuns_.clear();
    stochUpdList_.clear();
    uint32_t j = 0;
    while (j < n) {
        if (update_.deterministic.test(j)) {
            uint32_t b = j;
            while (j < n && update_.deterministic.test(j))
                ++j;
            detRuns_.emplace_back(b, j);
        } else {
            stochUpdList_.push_back(j);
            ++j;
        }
    }
}

void
Core::buildLanes()
{
    const uint32_t num_neurons = cfg_.geom.numNeurons;
    const uint32_t num_axons = cfg_.geom.numAxons;
    const size_t words = (num_neurons + 63) / 64;

    // Enough carry-save bit-planes to count up to num_axons events
    // per (neuron, type) without overflow.
    planeCount_ = static_cast<uint32_t>(std::bit_width(num_axons));

    vLo_.resize(num_neurons);
    vHi_.resize(num_neurons);
    for (uint32_t j = 0; j < num_neurons; ++j) {
        PotentialRange r = potentialRange(cfg_.neurons[j]);
        vLo_[j] = r.lo;
        vHi_[j] = r.hi;
    }

    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        TypeLane &lane = lanes_[g];
        lane.axons = BitVec(num_axons);
        lane.stoch = BitVec(num_neurons);
        lane.weight.assign(num_neurons, 0);
        lane.colUsed.assign(words, 0);
        lane.present = false;
        for (uint32_t j = 0; j < num_neurons; ++j) {
            lane.weight[j] = cfg_.neurons[j].synWeight[g];
            if (cfg_.neurons[j].synStochastic[g])
                lane.stoch.set(j);
        }
    }
    for (uint32_t a = 0; a < num_axons; ++a) {
        TypeLane &lane = lanes_[cfg_.axonType[a]];
        lane.axons.set(a);
        lane.present = true;
        const uint64_t *row = xbar_.row(a).words().data();
        for (size_t w = 0; w < words; ++w)
            lane.colUsed[w] |= row[w];
    }

    folds_.resize(instances());
    for (FoldScratch &f : folds_) {
        for (unsigned g = 0; g < kNumAxonTypes; ++g) {
            f.type[g].rowOr = BitVec(num_neurons);
            f.type[g].planes.assign(
                static_cast<size_t>(planeCount_) * words, 0);
            f.type[g].activeAxons = 0;
        }
        f.touched = BitVec(num_neurons);
        f.key = BitVec(num_axons);
        f.live = false;
    }
    foldUnion_ = BitVec(num_axons);
    fallback_ = BitVec(num_neurons);

    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        StochFold &sf = stochFold_[g];
        sf.rowOr.assign(words, 0);
        sf.planes.assign(static_cast<size_t>(planeCount_) * words, 0);
        sf.activeAxons = 0;
        awRows_[g].clear();
        awRows_[g].reserve(num_axons);
    }
    stochSucc_.assign(static_cast<size_t>(num_axons) * words, 0);

    calibrateIntegrateThresholds();
}

/**
 * Derive the scalar / axon-word / word-parallel engagement
 * thresholds.
 *
 * Small cores keep the analytic density models: scalar cost ~ events
 * = rows x density x neurons; word-parallel adds ~ one extraction per
 * touched neuron, so its break-even sits at roughly 10 / density
 * active rows; the axon-word path's overhead is only one row-word
 * load per active row per word plus the same extraction confined to
 * set bits, so it overtakes scalar after roughly 2 / density rows.
 * Cores large enough for the path choice to matter are
 * micro-calibrated instead: synthetic active slots of doubling
 * activity are timed through the *real* integrate paths and the
 * measured crossovers win — axon-word against scalar, word-parallel
 * against the best of the other two.  Everything the probes mutate
 * (lane-0 potentials, counters, PRNG, plane scratch) is
 * re-initialised by reset() immediately after construction, and the
 * thresholds only select between bit-identical paths, so calibration
 * cannot perturb architectural results.
 */
void
Core::calibrateIntegrateThresholds()
{
    const uint32_t num_axons = cfg_.geom.numAxons;
    const uint32_t num_neurons = cfg_.geom.numNeurons;
    const uint64_t synapses = xbar_.synapseCount();
    // An empty crossbar never integrates; the thresholds are moot.
    if (synapses == 0) {
        wpMinActive_ = num_axons + 1;
        awMinActive_ = num_axons + 1;
        return;
    }
    const double density = static_cast<double>(synapses) /
        (static_cast<double>(num_axons) * num_neurons);
    const uint32_t model = std::max<uint32_t>(
        1, static_cast<uint32_t>(10.0 / density));
    const uint32_t aw_model = std::max<uint32_t>(
        2, static_cast<uint32_t>(2.0 / density));

    // Below this size one integrate costs well under the timer
    // granularity and the path choice is in the noise; per-core
    // probing would dominate construction instead of helping.
    std::vector<uint32_t> rows;
    if (static_cast<uint64_t>(num_axons) * num_neurons >= (1u << 14))
        for (uint32_t a = 0; a < num_axons; ++a)
            if (xbar_.axonDegree(a) > 0)
                rows.push_back(a);
    if (rows.size() < 2) {
        wpMinActive_ = std::min(model, num_axons + 1);
        awMinActive_ = std::min(aw_model, wpMinActive_);
        return;
    }

    InstanceLane &L0 = inst_[0];
    BitVec active(num_axons);
    enum Path { kProbeScalar, kProbeAxonWord, kProbeWordParallel };
    auto probe = [&](int path) {
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            // Re-zero the potentials so every rep measures the
            // steady-state path: drifting values would saturate at
            // the rails and push later batched reps onto the
            // fallback replay, biasing the crossover.
            std::fill(L0.v.begin(), L0.v.end(), 0);
            // Construction-time perf calibration: picks between
            // bit-identical integrate paths, so host timing cannot
            // change architectural output (see the method comment).
            // nscs-lint: allow(wall-clock): calibration, output-neutral
            auto t0 = std::chrono::steady_clock::now();
            if (path == kProbeWordParallel) {
                integrateWordParallel(L0, 0, active, 0, false);
                // Charge the fold-scratch teardown to the
                // word-parallel probe: a per-tick run pays it once
                // per distinct pattern, and letting reps 2..3 reuse
                // the cached planes would measure apply-only cost.
                clearIntegratePlanes();
            } else if (path == kProbeAxonWord) {
                integrateAxonWord(L0, active, 0, false);
            } else {
                integrateScalar(L0, active, 0, false);
            }
            // nscs-lint: allow(wall-clock): see t0 above.
            auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best, std::chrono::duration<double>(t1 - t0).count());
        }
        return best;
    };

    // Doubling sweep over active-row counts, capped so a sweep that
    // never finds the crossovers stays a bounded fraction of
    // construction cost.  The first k where a batched probe clearly
    // wins (reference time measurable, 10% margin — a 0-vs-0
    // timer-granularity tie must not hand it the verdict) brackets
    // that crossover in (k/2, k]; the density model wins inside its
    // bracket, else the conservative upper end (at the crossover
    // both paths cost the same, so erring toward the lighter path
    // never loses).
    const uint32_t k_max = std::min<uint32_t>(
        static_cast<uint32_t>(rows.size()), 64);
    uint32_t set_rows = 0;
    uint32_t prev = 0;
    uint32_t aw_pick = 0, wp_pick = 0;
    bool aw_found = false, wp_found = false;
    for (uint32_t k = 1; set_rows < k_max; k *= 2) {
        k = std::min<uint32_t>(k, k_max);
        while (set_rows < k)
            active.set(rows[set_rows++]);
        const double sc = probe(kProbeScalar);
        const double aw = probe(kProbeAxonWord);
        const double wp = probe(kProbeWordParallel);
        if (!aw_found && sc > 0.0 && aw * 10 <= sc * 9) {
            aw_found = true;
            aw_pick =
                (aw_model > prev && aw_model <= k) ? aw_model : k;
        }
        // The middle band belongs to axon-word, so word-parallel
        // must beat whichever of the two lighter paths is faster.
        const double ref = std::min(sc, aw);
        if (!wp_found && ref > 0.0 && wp * 10 <= ref * 9) {
            wp_found = true;
            wp_pick = (model > prev && model <= k) ? model : k;
        }
        if (aw_found && wp_found)
            break;
        prev = k;
        if (k == k_max)
            break;
    }
    // A path that never won inside the probe budget is sticky-off at
    // least through prev rows: keep the analytic model where it is
    // more conservative and stay past the probed range otherwise.
    wpMinActive_ = wp_found
        ? std::max<uint32_t>(1, wp_pick)
        : static_cast<uint32_t>(std::min<uint64_t>(
              std::max<uint64_t>(model, 2ull * prev),
              static_cast<uint64_t>(num_axons) + 1));
    awMinActive_ = aw_found ? std::max<uint32_t>(1, aw_pick)
                            : wpMinActive_;
    awMinActive_ = std::min(awMinActive_, wpMinActive_);
}

void
Core::reset()
{
    const uint32_t n = cfg_.geom.numNeurons;
    revertXbarOverrides();
    denseList_.clear();
    for (uint32_t j = 0; j < n; ++j)
        if (cls_[j] == UpdateClass::Dense)
            denseList_.push_back(j);
    for (InstanceLane &L : inst_.lanes) {
        L.selfEvents.clear();
        L.selfEventsStale = 0;
        for (uint32_t j = 0; j < n; ++j) {
            // Architectural reset contract: the negative-threshold
            // rule is applied once to the configured initial
            // potential.
            L.v[j] = applyNegativeRule(
                cfg_.neurons[j].initialPotential, cfg_.neurons[j]);
            L.doneThrough[j] = 0;
            L.scheduledFire[j] = kNoFire;
            if (cls_[j] != UpdateClass::Dense) {
                auto delta = nextFireDelta(L.v[j], cfg_.neurons[j]);
                if (delta) {
                    L.scheduledFire[j] = *delta - 1;
                    pushSelfEvent(L, L.scheduledFire[j], j);
                }
            }
        }
        L.firedBits.reset();
        L.rng.reset(cfg_.rngSeed);
    }
    detEvalScratch_.reset();
    sched_.reset();
    evalMask_.reset();
    clearIntegratePlanes();
    clearStochFold();
    counters_ = CoreCounters{};
    mode_ = Mode::Unset;
}

void
Core::deposit(uint64_t delivery_tick, uint32_t axon, uint32_t inst)
{
    NSCS_ASSERT(axon < cfg_.geom.numAxons,
                "deposit to axon %u of %u", axon, cfg_.geom.numAxons);
    NSCS_ASSERT(inst < instances(),
                "deposit to instance %u of %u", inst, instances());
    sched_.deposit(delivery_tick, axon, inst);
}

void
Core::commitMode(Mode m)
{
    if (mode_ == Mode::Unset)
        mode_ = m;
    NSCS_ASSERT(mode_ == m,
                "core evaluated with mixed strategies; reset() first");
}

void
Core::catchUp(InstanceLane &L, uint32_t n, uint64_t t)
{
    uint64_t done = L.doneThrough[n];
    if (done >= t)
        return;
    NSCS_ASSERT(cls_[n] != UpdateClass::Dense,
                "Dense neuron %u fell behind (done %llu < t %llu)", n,
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(t));
    L.v[n] = leakForward(L.v[n], cfg_.neurons[n], t - done);
    L.doneThrough[n] = t;
}

void
Core::integrateActiveAxons(InstanceLane &L, uint32_t inst, uint64_t t,
                           bool sparse)
{
    if (sched_.slotEmpty(t, inst))
        return;
    const BitVec &active = sched_.slot(t, inst);
    const uint32_t count = sched_.slotCount(t, inst);
    ++counters_.laneSlotsActive;
    counters_.laneActiveAxons += count;
    if (wordParallel_ && count >= wpMinActive_)
        integrateWordParallel(L, inst, active, t, sparse);
    else if (wordParallel_ && count >= awMinActive_ &&
             count <= kAxonWordMaxRows)
        integrateAxonWord(L, active, t, sparse);
    else
        integrateScalar(L, active, t, sparse);
    // The slot is NOT cleared here: later instance lanes still read
    // their slots this tick, so all of this tick's slot planes drop
    // together in finishTickIntegrate().
}

/**
 * The architectural reference order: one integrateSynapse call per
 * (axon, neuron) event, axons ascending, neurons ascending within a
 * row.  The word-parallel path below must match this bit for bit.
 */
void
Core::integrateScalar(InstanceLane &L, const BitVec &active,
                      uint64_t t, bool sparse)
{
    active.forEachSet([this, &L, t, sparse](size_t a) {
        unsigned g = cfg_.axonType[a];
        const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
        row.forEachSet([this, &L, t, sparse, g](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (sparse) {
                if (cls_[n] != UpdateClass::Dense)
                    catchUp(L, n, t);
                evalMask_.set(n);
            }
            L.v[n] = integrateSynapse(L.v[n], cfg_.neurons[n], g,
                                      &L.rng);
            ++counters_.sops;
        });
    });
}

/**
 * Phase 1 of the word-parallel integrate: fold the active-axon
 * pattern against each axon-type partition with 64-bit word
 * operations.  The OR of active rows gives the touched-neuron mask,
 * and carry-save bit-plane addition of the same rows gives per-neuron
 * event counts per type (a column popcount computed 64 columns at a
 * time).  The fold depends only on the pattern and the (shared)
 * crossbar — never on lane state.  This is the single-lane builder;
 * batched ticks fill every lane at once through foldTickPlanes.
 */
void
Core::buildIntegratePlanes(FoldScratch &f, const BitVec &active)
{
    const size_t words = f.touched.words().size();
    const simd::Ops &so = simd::ops();
    f.touched.reset();
    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        const TypeLane &lane = lanes_[g];
        TypeFold &tf = f.type[g];
        tf.activeAxons = 0;
        if (!lane.present || !active.intersects(lane.axons))
            continue;
        active.forEachSetMasked(lane.axons, [this, &tf, &so,
                                             words](size_t a) {
            const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
            ++tf.activeAxons;
            tf.rowOr.orAccumulate(row);
            // Carry-save add: plane p holds bit p of every column's
            // running count (vectorized per dispatch level).
            so.foldRow(tf.planes.data(), words, planeCount_,
                       row.words().data(), words);
        });
        f.touched.orAccumulate(tf.rowOr);
    }
    f.key = active;
    f.live = true;
}

/**
 * Transposed fold for a batched tick: one pass over the union of
 * every word-parallel lane's active axons, fetching each crossbar
 * row once and carry-saving it into the fold of every lane whose
 * slot carries that axon.  Produces, per lane, exactly the planes
 * buildIntegratePlanes would (carry-save addition and the touched
 * OR are order-independent), while each crossbar row — the
 * shared-read part of the integrate — streams through every
 * receiving lane back to back while it is cache-hot, once per tick
 * instead of once per lane scattered across the tick.  Lanes below
 * the word-parallel threshold are left un-folded; by the same test,
 * integrateActiveAxons routes them to the axon-word or scalar path.
 * Lane chunks of 64 keep the per-axon lane set in one word without
 * capping the instance count.
 */
void
Core::foldTickPlanes(uint64_t t)
{
    if (!wordParallel_)
        return;
    const uint32_t total = instances();
    for (uint32_t base = 0; base < total; base += 64) {
        const uint32_t chunk = std::min<uint32_t>(64, total - base);
        uint64_t wp_mask = 0;
        const uint64_t *slots[64];
        for (uint32_t k = 0; k < chunk; ++k) {
            const uint32_t inst = base + k;
            if (sched_.slotEmpty(t, inst) ||
                sched_.slotCount(t, inst) < wpMinActive_)
                continue;
            wp_mask |= 1ull << k;
            slots[k] = sched_.slot(t, inst).words().data();
            FoldScratch &f = folds_[inst];
            f.touched.reset();
            for (unsigned g = 0; g < kNumAxonTypes; ++g)
                f.type[g].activeAxons = 0;
            f.key = sched_.slot(t, inst);
            f.live = true;
        }
        if (!wp_mask)
            continue;
        if (std::popcount(wp_mask) > 1)
            counters_.planeReuses +=
                static_cast<uint64_t>(std::popcount(wp_mask)) - 1;

        foldUnion_.reset();
        for (uint64_t m = wp_mask; m;) {
            const auto k = static_cast<unsigned>(__builtin_ctzll(m));
            m &= m - 1;
            foldUnion_.orAccumulate(sched_.slot(t, base + k));
        }

        const size_t words = evalMask_.words().size();
        foldUnion_.forEachSet([&](size_t a) {
            const size_t aw = a >> 6;
            const uint64_t abit = 1ull << (a & 63);
            uint64_t present = 0;
            for (uint64_t m = wp_mask; m;) {
                const auto k =
                    static_cast<unsigned>(__builtin_ctzll(m));
                m &= m - 1;
                if (slots[k][aw] & abit)
                    present |= 1ull << k;
            }
            const unsigned g = cfg_.axonType[a];
            const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
            const simd::Ops &so = simd::ops();
            for (uint64_t m = present; m;) {
                const auto k =
                    static_cast<unsigned>(__builtin_ctzll(m));
                m &= m - 1;
                FoldScratch &f = folds_[base + k];
                TypeFold &tf = f.type[g];
                tf.rowOr.orAccumulate(row);
                f.touched.orAccumulate(row);
                so.foldRow(tf.planes.data(), words, planeCount_,
                           row.words().data(), words);
                ++tf.activeAxons;
            }
        });
    }
}

/** Drop one lane's fold scratch, word-wise over the words it
 *  touched. */
void
Core::clearFold(FoldScratch &f)
{
    if (!f.live)
        return;
    const size_t words = f.touched.words().size();
    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        TypeFold &tf = f.type[g];
        if (!tf.activeAxons)
            continue;
        const auto planes_used = static_cast<unsigned>(
            std::bit_width(tf.activeAxons));
        tf.rowOr.forEachSetWord([&tf, words,
                                 planes_used](size_t w, uint64_t) {
            size_t idx = w;
            for (unsigned p = 0; p < planes_used; ++p, idx += words)
                tf.planes[idx] = 0;
        });
        tf.rowOr.reset();
        tf.activeAxons = 0;
    }
    f.touched.reset();
    f.live = false;
}

/** Drop every lane's fold scratch. */
void
Core::clearIntegratePlanes()
{
    for (FoldScratch &f : folds_)
        clearFold(f);
}

/**
 * Pre-draw every stochastic synaptic event of this lane's active
 * slot, in the exact architectural draw order (axons ascending,
 * neurons ascending within a row, drawing only at stochastic
 * (neuron, type) positions).  Each outcome depends only on its
 * stream position and the static weight — never on the membrane
 * potential — so consuming the draws up front leaves the LFSR at
 * the same position, with the same outcomes, as the scalar
 * interleaving.  Successes land in per-axon masks (stochSucc_, for
 * the outcome-replay fallback) and fold into per-type carry-save
 * count planes (stochFold_, for the batched apply).
 *
 * @return true when any draw was consumed; false means the slot has
 * no stochastic events in play and the fold scratch is untouched.
 */
bool
Core::predrawStochOutcomes(InstanceLane &L, const BitVec &active)
{
    const size_t words = fallback_.words().size();
    const simd::Ops &so = simd::ops();
    bool any = false;
    active.forEachSet([this, &L, &so, words, &any](size_t a) {
        const unsigned g = cfg_.axonType[a];
        const TypeLane &lane = lanes_[g];
        const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
        if (!row.intersects(lane.stoch))
            return;
        any = true;
        uint64_t *succ = stochSucc_.data() + a * words;
        std::fill_n(succ, words, uint64_t{0});
        row.forEachSetMasked(lane.stoch, [&L, &lane, succ](size_t j) {
            const int32_t s = lane.weight[j];
            const uint8_t rho = L.rng.nextByte();
            if (rho < (s < 0 ? -s : s))
                succ[j >> 6] |= 1ull << (j & 63);
        });
        StochFold &sf = stochFold_[g];
        so.foldRow(sf.planes.data(), words, planeCount_, succ, words);
        so.orAccumulate(sf.rowOr.data(), succ, words);
        ++sf.activeAxons;
    });
    return any;
}

/** Drop the stochastic fold scratch, word-wise over the words its
 *  success masks touched.  Runs per lane: the next lane pre-draws
 *  its own outcomes. */
void
Core::clearStochFold()
{
    const size_t words = fallback_.words().size();
    for (StochFold &sf : stochFold_) {
        if (!sf.activeAxons)
            continue;
        const auto used = static_cast<unsigned>(
            std::bit_width(sf.activeAxons));
        for (size_t w = 0; w < words; ++w) {
            if (!sf.rowOr[w])
                continue;
            size_t idx = w;
            for (unsigned p = 0; p < used; ++p, idx += words)
                sf.planes[idx] = 0;
            sf.rowOr[w] = 0;
        }
        sf.activeAxons = 0;
    }
}

/**
 * Event-by-event replay of the fallback neurons in the architectural
 * (axon-major) order.  With @p outcomes_recorded, this lane's
 * stochastic draws were all consumed by predrawStochOutcomes, so
 * stochastic events apply their recorded success without touching
 * the stream; otherwise they draw here, at the same stream positions
 * the scalar path would use (deterministic events never draw, so
 * batching them cannot shift the stochastic positions).
 */
void
Core::replayFallback(InstanceLane &L, const BitVec &active,
                     bool outcomes_recorded)
{
    const size_t words = fallback_.words().size();
    active.forEachSet([this, &L, words, outcomes_recorded](size_t a) {
        const unsigned g = cfg_.axonType[a];
        const BitVec &stoch = lanes_[g].stoch;
        const uint64_t *succ = stochSucc_.data() + a * words;
        xbar_.row(static_cast<uint32_t>(a)).forEachSetMasked(
            fallback_, [&](size_t j) {
                auto n = static_cast<uint32_t>(j);
                if (outcomes_recorded &&
                    ((stoch.words()[j >> 6] >> (j & 63)) & 1)) {
                    if ((succ[j >> 6] >> (j & 63)) & 1) {
                        const int32_t s = lanes_[g].weight[n];
                        L.v[n] = satAdd(L.v[n], (s > 0) - (s < 0),
                                        cfg_.neurons[n].potentialBits);
                    }
                } else {
                    L.v[n] = integrateSynapse(L.v[n], cfg_.neurons[n],
                                              g, &L.rng);
                }
                ++counters_.sops;
            });
    });
    fallback_.reset();
}

/**
 * Word-parallel synaptic integration.
 *
 * Phase 1 (buildIntegratePlanes above) folds the active-axon slot
 * into (touched mask, count planes) — or reuses the lane's fold when
 * the batched per-tick pass (foldTickPlanes) already built it.
 * When the slot has stochastic synapses in play, their outcomes are
 * pre-drawn into success-count planes (predrawStochOutcomes).
 *
 * Phase 2 applies synapses as one batched add per (neuron, type):
 * count x weight for deterministic types, successes x sgn(weight)
 * for stochastic ones.  Equivalence argument: the scalar path is a
 * chain of saturating adds in (axon, neuron) order whose stochastic
 * links contribute sgn(weight) exactly on pre-drawn success.
 * Addition is commutative, so the chain equals the batched sum
 * whenever no partial sum can leave the register rails; the guard
 * checks the worst-case excursion (all positive contributions first
 * / all negative first brackets every interleaving, and each
 * per-type aggregate is single-signed, so the type buckets bound the
 * per-event sums).  Neurons that fail the guard — mixed signs near
 * the rails — fall back to the scalar replay, as do stochastic
 * targets when outcome batching is toggled off.
 *
 * Phase 3 (replayFallback above) replays the fallback neurons event
 * by event in the architectural order, re-applying recorded
 * stochastic outcomes without re-drawing.
 */
void
Core::integrateWordParallel(InstanceLane &L, uint32_t inst,
                            const BitVec &active, uint64_t t,
                            bool sparse)
{
    FoldScratch &f = folds_[inst];
    const size_t words = f.touched.words().size();

    if (!f.live || !(f.key == active)) {
        clearFold(f);
        buildIntegratePlanes(f, active);
    }
    if (sparse)
        evalMask_.orAccumulate(f.touched);

    const bool predrawn =
        stochIntegrateBatch_ && predrawStochOutcomes(L, active);

    // Plane p of type g can be nonzero only once 2^p rows were
    // folded; bound extraction accordingly.
    unsigned planes_used[kNumAxonTypes];
    unsigned succ_used[kNumAxonTypes];
    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        planes_used[g] = static_cast<unsigned>(
            std::bit_width(f.type[g].activeAxons));
        succ_used[g] = static_cast<unsigned>(
            std::bit_width(stochFold_[g].activeAxons));
    }

    // Phase 2: batch-apply events per touched word with the
    // dispatch-layer applyWord kernel; it reports the committed
    // lanes, and saturation-risk targets (plus, when outcome
    // batching is off, stochastic targets via forcedDivert) land in
    // the fallback set.  Event counters come from popcounts of the
    // count planes masked with the committed lanes — plane p holds
    // bit p of each lane's event count, so its masked population
    // contributes 2^p events.
    const simd::Ops &sops = simd::ops();
    bool any_fallback = false;
    f.touched.forEachSetWord([&](size_t w, uint64_t word) {
        if (sparse) {
            uint64_t bits = word;
            while (bits) {
                const auto b =
                    static_cast<unsigned>(__builtin_ctzll(bits));
                bits &= bits - 1;
                const auto n = static_cast<uint32_t>(w * 64 + b);
                if (cls_[n] != UpdateClass::Dense)
                    catchUp(L, n, t);
            }
        }
        simd::ApplyWord a;
        a.detStride = words;
        a.succStride = words;
        a.forcedDivert = 0;
        for (unsigned g = 0; g < kNumAxonTypes; ++g) {
            const TypeFold &tf = f.type[g];
            const uint64_t row_or =
                tf.activeAxons ? tf.rowOr.words()[w] : 0;
            a.detUsed[g] = row_or ? planes_used[g] : 0;
            if (!a.detUsed[g]) {
                a.detPlanes[g] = nullptr;
                a.succPlanes[g] = nullptr;
                a.succUsed[g] = 0;
                a.weight[g] = nullptr;
                a.stochMask[g] = 0;
                continue;
            }
            a.detPlanes[g] = tf.planes.data() + w;
            a.succUsed[g] = succ_used[g];
            a.succPlanes[g] = succ_used[g]
                ? stochFold_[g].planes.data() + w
                : nullptr;
            a.weight[g] = lanes_[g].weight.data() + w * 64;
            a.stochMask[g] = lanes_[g].stoch.words()[w];
            if (!predrawn)
                a.forcedDivert |= row_or & a.stochMask[g];
        }
        a.v = L.v.data() + w * 64;
        a.vLo = vLo_.data() + w * 64;
        a.vHi = vHi_.data() + w * 64;
        const auto lanes_n = static_cast<uint32_t>(
            std::min<size_t>(64, vLo_.size() - w * 64));
        const uint64_t applied = sops.applyWord(a, lanes_n);
        const uint64_t fb = word & ~applied;
        if (fb) {
            fallback_.orWordAt(w, fb);
            any_fallback = true;
        }
        uint64_t events = 0, sevents = 0;
        for (unsigned g = 0; g < kNumAxonTypes; ++g) {
            for (unsigned p = 0; p < a.detUsed[g]; ++p) {
                const uint64_t hit =
                    a.detPlanes[g][p * words] & applied;
                events += static_cast<uint64_t>(
                              __builtin_popcountll(hit))
                    << p;
                sevents +=
                    static_cast<uint64_t>(__builtin_popcountll(
                        hit & a.stochMask[g]))
                    << p;
            }
        }
        counters_.sops += events;
        counters_.sopsBatched += events;
        counters_.sopsStochBatched += sevents;
    });

    if (any_fallback)
        replayFallback(L, active, predrawn);
    if (predrawn)
        clearStochFold();
    // The lane's fold stays live until finishTickIntegrate() drops
    // every lane's scratch at end of tick.
}

/**
 * Event-driven axon-word integration: the middle path for sparsely
 * active slots, engaged for active-axon counts in
 * [awMinActive_, wpMinActive_).
 *
 * Instead of folding whole crossbar rows into the per-lane fold
 * scratch and extracting per touched neuron (whose per-word teardown
 * and deep planes only amortize over enough rows), the active rows
 * are walked once per 64-neuron word: each row contributes one word
 * to a stack-resident carry-save accumulator per type (bit_width(k)
 * planes for k rows — registers, not memory), and the word's touched
 * bits are applied immediately while the planes are hot.  Words no
 * active row touches cost k loads and one branch.
 *
 * Apply semantics, the guard, stochastic pre-draw and the fallback
 * replay are exactly the word-parallel path's (see
 * integrateWordParallel); only the fold's lifetime and locality
 * differ, so the equivalence argument carries over unchanged.
 */
void
Core::integrateAxonWord(InstanceLane &L, const BitVec &active,
                        uint64_t t, bool sparse)
{
    const size_t words = fallback_.words().size();
    const bool predrawn =
        stochIntegrateBatch_ && predrawStochOutcomes(L, active);

    for (auto &rows : awRows_)
        rows.clear();
    active.forEachSet([this](size_t a) {
        awRows_[cfg_.axonType[a]].push_back(
            xbar_.row(static_cast<uint32_t>(a)).words().data());
    });

    unsigned aw_used[kNumAxonTypes];
    unsigned succ_used[kNumAxonTypes];
    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        aw_used[g] = static_cast<unsigned>(
            std::bit_width(awRows_[g].size()));
        succ_used[g] = static_cast<unsigned>(
            std::bit_width(stochFold_[g].activeAxons));
        NSCS_ASSERT(aw_used[g] <= kAxonWordMaxPlanes,
                    "axon-word path engaged beyond its plane budget "
                    "(%zu rows of type %u)", awRows_[g].size(), g);
    }

    bool any_fallback = false;
    for (size_t w = 0; w < words; ++w) {
        uint64_t row_or[kNumAxonTypes];
        uint64_t planes[kNumAxonTypes][kAxonWordMaxPlanes];
        uint64_t or_all = 0;
        for (unsigned g = 0; g < kNumAxonTypes; ++g) {
            row_or[g] = 0;
            if (awRows_[g].empty() || !lanes_[g].colUsed[w])
                continue;
            for (unsigned p = 0; p < aw_used[g]; ++p)
                planes[g][p] = 0;
            for (const uint64_t *r : awRows_[g]) {
                // Carry-save add of one row word; the running count
                // fits in aw_used[g] planes, so the ripple stops
                // inside the stack array.
                uint64_t carry = r[w];
                row_or[g] |= carry;
                for (unsigned p = 0; carry; ++p) {
                    const uint64_t old = planes[g][p];
                    planes[g][p] = old ^ carry;
                    carry &= old;
                }
            }
            or_all |= row_or[g];
        }
        if (!or_all)
            continue;
        if (sparse) {
            evalMask_.orWordAt(w, or_all);
            uint64_t bits = or_all;
            while (bits) {
                const auto b =
                    static_cast<unsigned>(__builtin_ctzll(bits));
                bits &= bits - 1;
                const auto n = static_cast<uint32_t>(w * 64 + b);
                if (cls_[n] != UpdateClass::Dense)
                    catchUp(L, n, t);
            }
        }
        // Apply through the dispatch-layer kernel while the stack
        // planes are hot (counter derivation as in
        // integrateWordParallel).
        simd::ApplyWord a;
        a.detStride = 1;
        a.succStride = words;
        a.forcedDivert = 0;
        for (unsigned g = 0; g < kNumAxonTypes; ++g) {
            a.detUsed[g] = row_or[g] ? aw_used[g] : 0;
            if (!a.detUsed[g]) {
                a.detPlanes[g] = nullptr;
                a.succPlanes[g] = nullptr;
                a.succUsed[g] = 0;
                a.weight[g] = nullptr;
                a.stochMask[g] = 0;
                continue;
            }
            a.detPlanes[g] = planes[g];
            a.succUsed[g] = succ_used[g];
            a.succPlanes[g] = succ_used[g]
                ? stochFold_[g].planes.data() + w
                : nullptr;
            a.weight[g] = lanes_[g].weight.data() + w * 64;
            a.stochMask[g] = lanes_[g].stoch.words()[w];
            if (!predrawn)
                a.forcedDivert |= row_or[g] & a.stochMask[g];
        }
        a.v = L.v.data() + w * 64;
        a.vLo = vLo_.data() + w * 64;
        a.vHi = vHi_.data() + w * 64;
        const auto lanes_n = static_cast<uint32_t>(
            std::min<size_t>(64, vLo_.size() - w * 64));
        const uint64_t applied = simd::ops().applyWord(a, lanes_n);
        const uint64_t fb = or_all & ~applied;
        if (fb) {
            fallback_.orWordAt(w, fb);
            any_fallback = true;
        }
        uint64_t events = 0, sevents = 0;
        for (unsigned g = 0; g < kNumAxonTypes; ++g) {
            for (unsigned p = 0; p < a.detUsed[g]; ++p) {
                const uint64_t hit = planes[g][p] & applied;
                events += static_cast<uint64_t>(
                              __builtin_popcountll(hit))
                    << p;
                sevents +=
                    static_cast<uint64_t>(__builtin_popcountll(
                        hit & a.stochMask[g]))
                    << p;
            }
        }
        counters_.sops += events;
        counters_.sopsBatched += events;
        counters_.sopsAxonWord += events;
        counters_.sopsStochBatched += sevents;
    }
    if (any_fallback)
        replayFallback(L, active, predrawn);
    if (predrawn)
        clearStochFold();
}

/** End-of-tick teardown after every instance lane has evaluated:
 *  drop the cached fold scratch and this tick's slot planes. */
void
Core::finishTickIntegrate(uint64_t t)
{
    clearIntegratePlanes();
    sched_.clearTickSlots(t);
}

/** Dense (every-neuron) evaluation of one instance lane: integrate
 *  its slot, then update all neurons, leaving fires in L.firedBits
 *  for emitFired. */
void
Core::evalDenseLane(InstanceLane &L, uint32_t inst, uint64_t t)
{
    integrateActiveAxons(L, inst, t, false);
    const uint32_t n = cfg_.geom.numNeurons;
    if (!wordParallelUpdate_) {
        // Scalar reference: one endOfTickUpdate per neuron, ascending.
        for (uint32_t j = 0; j < n; ++j) {
            if (endOfTickUpdate(L.v[j], cfg_.neurons[j], &L.rng))
                L.firedBits.set(j);
            ++counters_.evals;
        }
        return;
    }
    // Batched: the deterministic cohort consumes no draws, so running
    // its runs through the SoA kernel first and the stochastic cohort
    // after (ascending) preserves the reference LFSR stream; the
    // stochastic cohort itself batches through precomputed draw
    // outcomes — the draws are position-only, so drawing them all up
    // front in the per-neuron scalar order leaves the stream
    // untouched.  emitFired then merges both cohorts' fires in
    // ascending order.
    for (const auto &[b, e] : detRuns_)
        batchUpdateRange(update_, L.v.data(), b, e, L.firedBits);
    const auto stoch_n = static_cast<uint64_t>(stochUpdList_.size());
    if (stochUpdateBatch_ && stoch_n != 0) {
        precomputeStochDraws(update_, stochUpdList_, L.rng,
                             stochDraws_);
        for (uint32_t j : stochUpdList_) {
            if (batchUpdateStochOne(update_, stochDraws_, L.v.data(),
                                    j))
                L.firedBits.set(j);
        }
        counters_.evalsBatched += stoch_n;
        counters_.evalsStochBatched += stoch_n;
    } else {
        for (uint32_t j : stochUpdList_) {
            if (endOfTickUpdate(L.v[j], cfg_.neurons[j], &L.rng))
                L.firedBits.set(j);
        }
    }
    counters_.evals += n;
    counters_.evalsBatched += n - stoch_n;
}

void
Core::tickDense(uint64_t t, std::vector<uint32_t> &fired)
{
    NSCS_ASSERT(instances() == 1,
                "plain tickDense on a %u-instance core; use the "
                "InstanceFire overload", instances());
    commitMode(Mode::Dense);
    ++counters_.ticksRun;
    InstanceLane &L = inst_[0];
    evalDenseLane(L, 0, t);
    finishTickIntegrate(t);
    emitFired(L, fired);
}

void
Core::tickDense(uint64_t t, std::vector<InstanceFire> &fired)
{
    commitMode(Mode::Dense);
    ++counters_.ticksRun;
    if (instances() > 1)
        foldTickPlanes(t);
    for (uint32_t i = 0; i < instances(); ++i) {
        InstanceLane &L = inst_[i];
        evalDenseLane(L, i, t);
        emitFired(L, i, fired);
    }
    finishTickIntegrate(t);
}

/** Drain L.firedBits into @p fired in ascending index order. */
void
Core::emitFired(InstanceLane &L, std::vector<uint32_t> &fired)
{
    L.firedBits.forEachSet([this, &fired](size_t j) {
        fired.push_back(static_cast<uint32_t>(j));
        ++counters_.spikes;
    });
    L.firedBits.reset();
}

/** Drain L.firedBits as (instance, neuron) fires, ascending. */
void
Core::emitFired(InstanceLane &L, uint32_t inst,
                std::vector<InstanceFire> &fired)
{
    L.firedBits.forEachSet([this, inst, &fired](size_t j) {
        fired.push_back({inst, static_cast<uint32_t>(j)});
        ++counters_.spikes;
    });
    L.firedBits.reset();
}

void
Core::pushSelfEvent(InstanceLane &L, uint64_t tick, uint32_t n)
{
    L.selfEvents.emplace_back(tick, n);
    std::push_heap(L.selfEvents.begin(), L.selfEvents.end(),
                   std::greater<>{});
}

void
Core::popSelfEventTop(InstanceLane &L)
{
    std::pop_heap(L.selfEvents.begin(), L.selfEvents.end(),
                  std::greater<>{});
    L.selfEvents.pop_back();
}

/**
 * Record that a live heap pair just turned stale (its neuron was
 * re-predicted), and lazily rebuild the heap once stale pairs
 * outnumber live ones.  Without this, long sparse runs on
 * frequently re-predicted neurons grow the heap without bound; with
 * it, the heap holds at most ~2x the live prediction count (plus the
 * rebuild floor).
 */
void
Core::noteStaleSelfEvent(InstanceLane &L)
{
    ++L.selfEventsStale;
    if (L.selfEvents.size() < 64 ||
        L.selfEventsStale * 2 <= L.selfEvents.size())
        return;
    // Drop pairs that no longer match their neuron's prediction.  A
    // neuron re-predicted away from and then back to the same tick
    // leaves two pairs that both read live here; sort + unique
    // collapses them so the rebuilt heap holds exactly one pair per
    // outstanding prediction and the stale counter restarts from a
    // clean slate.  A sorted ascending range already satisfies the
    // min-heap property, so no make_heap is needed.
    std::erase_if(L.selfEvents, [&L](const auto &e) {
        return L.scheduledFire[e.second] != e.first;
    });
    std::sort(L.selfEvents.begin(), L.selfEvents.end());
    L.selfEvents.erase(
        std::unique(L.selfEvents.begin(), L.selfEvents.end()),
        L.selfEvents.end());
    L.selfEventsStale = 0;
    ++counters_.selfEventCompactions;
}

void
Core::scheduleSelfEvent(InstanceLane &L, uint32_t n)
{
    auto delta = nextFireDelta(L.v[n], cfg_.neurons[n]);
    uint64_t sf = delta ? L.doneThrough[n] + *delta - 1 : kNoFire;
    uint64_t old = L.scheduledFire[n];
    if (sf == old)
        return;
    L.scheduledFire[n] = sf;
    if (sf != kNoFire)
        pushSelfEvent(L, sf, n);
    // The previous prediction's pair (old, n) is still in the heap
    // and now reads stale; account for it after the push so a
    // triggered compaction sees the fresh pair as live.
    if (old != kNoFire)
        noteStaleSelfEvent(L);
}

/** Sparse evaluation of one instance lane: drain its due
 *  self-events, integrate its slot, update the evaluation set,
 *  leaving fires in L.firedBits for emitFired. */
void
Core::evalSparseLane(InstanceLane &L, uint32_t inst, uint64_t t)
{
    evalMask_.reset();

    // Due self-events join the evaluation set.  A popped live pair is
    // consumed: clearing scheduledFire keeps the near-invariant
    // that a non-kNoFire prediction has one live pair in the heap
    // (re-predicting back to a previously-staled tick can transiently
    // duplicate a live pair; the duplicate drains here as stale and
    // compaction collapses it, so the stale accounting only defers,
    // never corrupts).
    while (!L.selfEvents.empty() && L.selfEvents.front().first <= t) {
        auto [tick, n] = L.selfEvents.front();
        if (L.scheduledFire[n] != tick) {
            popSelfEventTop(L);  // stale prediction
            if (L.selfEventsStale > 0)
                --L.selfEventsStale;
            continue;
        }
        NSCS_ASSERT(tick == t,
                    "missed self-event for neuron %u at tick %llu "
                    "(now %llu)", n,
                    static_cast<unsigned long long>(tick),
                    static_cast<unsigned long long>(t));
        popSelfEventTop(L);
        L.scheduledFire[n] = kNoFire;
        evalMask_.set(n);
    }

    integrateActiveAxons(L, inst, t, true);

    for (uint32_t n : denseList_)
        evalMask_.set(n);

    if (!wordParallelUpdate_) {
        // Scalar reference: ascending over the full evaluation set.
        evalMask_.forEachSet([this, &L, t](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (cls_[n] != UpdateClass::Dense)
                catchUp(L, n, t);
            if (endOfTickUpdate(L.v[n], cfg_.neurons[n], &L.rng))
                L.firedBits.set(n);
            ++counters_.evals;
            L.doneThrough[n] = t + 1;
            if (cls_[n] != UpdateClass::Dense)
                scheduleSelfEvent(L, n);
        });
        return;
    }

    // Batched: evalMask_ ∩ deterministic goes through the SoA kernel
    // (zero draws), the stochastic remainder runs scalar in ascending
    // order — the reference draw order, since deterministic neurons
    // never draw.  Fired bits from both cohorts merge ascending.
    detEvalScratch_ = evalMask_;
    detEvalScratch_ &= update_.deterministic;
    detEvalScratch_.forEachSet([this, &L, t](size_t j) {
        auto n = static_cast<uint32_t>(j);
        if (cls_[n] != UpdateClass::Dense)
            catchUp(L, n, t);
    });
    uint64_t batched =
        batchUpdateMasked(update_, L.v.data(), detEvalScratch_,
                          L.firedBits);
    counters_.evals += batched;
    counters_.evalsBatched += batched;
    detEvalScratch_.forEachSet([this, &L, t](size_t j) {
        auto n = static_cast<uint32_t>(j);
        L.doneThrough[n] = t + 1;
        if (cls_[n] != UpdateClass::Dense)
            scheduleSelfEvent(L, n);
    });

    // The remainder is exactly the drawsPerTick neurons, which
    // always classify Dense: never skipped (no catch-up), never
    // self-predicted, and in evalMask_ every tick — so it equals
    // stochUpdList_ and batches through precomputed draws exactly as
    // in the dense strategy.
    const auto stoch_n = static_cast<uint64_t>(stochUpdList_.size());
    if (stochUpdateBatch_ && stoch_n != 0) {
        precomputeStochDraws(update_, stochUpdList_, L.rng,
                             stochDraws_);
        for (uint32_t j : stochUpdList_) {
            if (batchUpdateStochOne(update_, stochDraws_, L.v.data(),
                                    j))
                L.firedBits.set(j);
            L.doneThrough[j] = t + 1;
        }
        counters_.evals += stoch_n;
        counters_.evalsBatched += stoch_n;
        counters_.evalsStochBatched += stoch_n;
    } else {
        evalMask_.forEachSetMasked(update_.stochastic,
                                   [this, &L, t](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (endOfTickUpdate(L.v[n], cfg_.neurons[n], &L.rng))
                L.firedBits.set(n);
            ++counters_.evals;
            L.doneThrough[n] = t + 1;
        });
    }
}

void
Core::tickSparse(uint64_t t, std::vector<uint32_t> &fired)
{
    NSCS_ASSERT(instances() == 1,
                "plain tickSparse on a %u-instance core; use the "
                "InstanceFire overload", instances());
    commitMode(Mode::Sparse);
    ++counters_.ticksRun;
    InstanceLane &L = inst_[0];
    evalSparseLane(L, 0, t);
    finishTickIntegrate(t);
    emitFired(L, fired);
}

void
Core::tickSparse(uint64_t t, std::vector<InstanceFire> &fired)
{
    commitMode(Mode::Sparse);
    ++counters_.ticksRun;
    if (instances() > 1)
        foldTickPlanes(t);
    for (uint32_t i = 0; i < instances(); ++i) {
        InstanceLane &L = inst_[i];
        evalSparseLane(L, i, t);
        emitFired(L, i, fired);
    }
    finishTickIntegrate(t);
}

std::optional<uint64_t>
Core::nextSelfEvent()
{
    std::optional<uint64_t> best;
    for (InstanceLane &L : inst_.lanes) {
        while (!L.selfEvents.empty()) {
            auto [tick, n] = L.selfEvents.front();
            if (L.scheduledFire[n] != tick) {
                popSelfEventTop(L);
                if (L.selfEventsStale > 0)
                    --L.selfEventsStale;
                continue;
            }
            if (!best || tick < *best)
                best = tick;
            break;
        }
    }
    return best;
}

size_t
Core::selfEventQueueDepth() const
{
    size_t depth = 0;
    for (const InstanceLane &L : inst_.lanes)
        depth += L.selfEvents.size();
    return depth;
}

const CoreCounters &
Core::counters() const
{
    uint64_t draws = 0;
    for (const InstanceLane &L : inst_.lanes)
        draws += L.rng.draws();
    counters_.rngDraws = draws;
    counters_.deposits = sched_.deposits();
    counters_.collisions = sched_.collisions();
    return counters_;
}

int32_t
Core::settledPotential(uint32_t n, uint64_t t, uint32_t inst) const
{
    NSCS_ASSERT(n < cfg_.geom.numNeurons, "neuron %u out of range", n);
    NSCS_ASSERT(inst < instances(), "instance %u of %u", inst,
                instances());
    const InstanceLane &L = inst_[inst];
    if (mode_ != Mode::Sparse)
        return L.v[n];
    uint64_t done = L.doneThrough[n];
    if (done >= t || cls_[n] == UpdateClass::Dense)
        return L.v[n];
    return leakForward(L.v[n], cfg_.neurons[n], t - done);
}

size_t
Core::footprintBytes() const
{
    size_t bytes = sizeof(Core);
    bytes += cfg_.footprintBytes();
    bytes += xbar_.footprintBytes();
    bytes += sched_.footprintBytes();
    bytes += inst_.footprintBytes();
    bytes += cls_.capacity() * sizeof(UpdateClass);
    bytes += denseList_.capacity() * sizeof(uint32_t);
    bytes += evalMask_.footprintBytes();
    for (const TypeLane &lane : lanes_) {
        bytes += lane.axons.footprintBytes();
        bytes += lane.stoch.footprintBytes();
        bytes += lane.weight.capacity() * sizeof(int32_t);
        bytes += lane.colUsed.capacity() * sizeof(uint64_t);
    }
    for (const FoldScratch &f : folds_) {
        for (const TypeFold &tf : f.type) {
            bytes += tf.rowOr.footprintBytes();
            bytes += tf.planes.capacity() * sizeof(uint64_t);
        }
        bytes += f.touched.footprintBytes();
        bytes += f.key.footprintBytes();
    }
    bytes += folds_.capacity() * sizeof(FoldScratch);
    bytes += foldUnion_.footprintBytes();
    for (const StochFold &sf : stochFold_) {
        bytes += sf.rowOr.capacity() * sizeof(uint64_t);
        bytes += sf.planes.capacity() * sizeof(uint64_t);
    }
    bytes += stochSucc_.capacity() * sizeof(uint64_t);
    for (const auto &rows : awRows_)
        bytes += rows.capacity() * sizeof(const uint64_t *);
    bytes += vLo_.capacity() * sizeof(int32_t);
    bytes += vHi_.capacity() * sizeof(int32_t);
    bytes += fallback_.footprintBytes();
    bytes += update_.footprintBytes();
    bytes += detRuns_.capacity() *
        sizeof(std::pair<uint32_t, uint32_t>);
    bytes += stochUpdList_.capacity() * sizeof(uint32_t);
    bytes += stochDraws_.footprintBytes();
    bytes += detEvalScratch_.footprintBytes();
    bytes += xbarOverrides_.capacity() * sizeof(XbarOverride);
    return bytes;
}

void
Core::applyStuckWord(uint32_t axon, uint32_t word, uint64_t bits)
{
    NSCS_ASSERT(axon < cfg_.geom.numAxons, "stuck word on axon %u of %u",
                axon, cfg_.geom.numAxons);
    NSCS_ASSERT(word < (cfg_.geom.numNeurons + 63) / 64,
                "stuck word index %u out of range", word);
    for (XbarOverride &ov : xbarOverrides_) {
        if (ov.axon == axon && ov.word == word) {
            ov.bits = bits;
            xbar_.setRowWord(axon, word, bits);
            lanes_[cfg_.axonType[axon]].colUsed[word] |= bits;
            return;
        }
    }
    XbarOverride ov;
    ov.axon = axon;
    ov.word = word;
    ov.bits = bits;
    ov.original = xbar_.row(axon).words()[word];
    xbarOverrides_.push_back(ov);
    xbar_.setRowWord(axon, word, bits);
    // Keep the column-occupancy mask a superset of the live rows.
    lanes_[cfg_.axonType[axon]].colUsed[word] |= bits;
}

void
Core::flipPotentialBit(uint32_t n, uint32_t bit, uint32_t inst)
{
    NSCS_ASSERT(n < cfg_.geom.numNeurons, "SEU on neuron %u of %u", n,
                cfg_.geom.numNeurons);
    NSCS_ASSERT(inst < instances(), "SEU on instance %u of %u", inst,
                instances());
    InstanceLane &L = inst_[inst];
    int32_t v = L.v[n] ^ static_cast<int32_t>(1u << (bit & 31));
    L.v[n] = std::clamp(v, vLo_[n], vHi_[n]);
}

void
Core::revertXbarOverrides()
{
    for (const XbarOverride &ov : xbarOverrides_) {
        xbar_.setRowWord(ov.axon, ov.word, ov.original);
        lanes_[cfg_.axonType[ov.axon]].colUsed[ov.word] |=
            ov.original;
    }
    xbarOverrides_.clear();
}

void
Core::saveState(JsonValue &out) const
{
    out = JsonValue::object();
    auto intArray = [](const auto &src, auto proj) {
        JsonValue arr = JsonValue::array();
        for (const auto &x : src)
            arr.append(JsonValue::integer(proj(x)));
        return arr;
    };
    out.set("instances", JsonValue::integer(instances()));
    JsonValue lanes = JsonValue::array();
    for (const InstanceLane &L : inst_.lanes) {
        JsonValue lj = JsonValue::object();
        lj.set("v", intArray(L.v, [](int32_t x) {
            return static_cast<int64_t>(x);
        }));
        lj.set("doneThrough", intArray(L.doneThrough, [](uint64_t x) {
            return static_cast<int64_t>(x);
        }));
        // kNoFire (~0ull) travels as -1: JSON integers are int64.
        lj.set("schedFire", intArray(L.scheduledFire, [](uint64_t x) {
            return x == kNoFire ? int64_t{-1}
                                : static_cast<int64_t>(x);
        }));
        // The raw heap array, verbatim: pop_heap order depends on the
        // array layout, so restoring a re-pushed heap would not
        // replay bit-identically.
        JsonValue selfEvents = JsonValue::array();
        for (const auto &[tick, n] : L.selfEvents) {
            selfEvents.append(
                JsonValue::integer(static_cast<int64_t>(tick)));
            selfEvents.append(JsonValue::integer(n));
        }
        lj.set("selfEvents", std::move(selfEvents));
        lj.set("selfEventsStale",
               JsonValue::integer(
                   static_cast<int64_t>(L.selfEventsStale)));
        JsonValue rng = JsonValue::object();
        rng.set("state", JsonValue::integer(L.rng.state()));
        rng.set("draws",
                JsonValue::integer(
                    static_cast<int64_t>(L.rng.draws())));
        lj.set("rng", std::move(rng));
        lanes.append(std::move(lj));
    }
    out.set("lanes", std::move(lanes));
    out.set("mode", JsonValue::integer(static_cast<int64_t>(mode_)));
    JsonValue sched;
    sched_.saveState(sched);
    out.set("sched", std::move(sched));
    JsonValue overrides = JsonValue::array();
    for (const XbarOverride &ov : xbarOverrides_) {
        JsonValue o = JsonValue::object();
        o.set("axon", JsonValue::integer(ov.axon));
        o.set("word", JsonValue::integer(ov.word));
        o.set("bits", JsonValue::string(u64ToHex(ov.bits)));
        o.set("original", JsonValue::string(u64ToHex(ov.original)));
        overrides.append(std::move(o));
    }
    out.set("xbarOverrides", std::move(overrides));
    const CoreCounters &c = counters();  // refreshes derived fields
    JsonValue counters = JsonValue::object();
    auto putCounter = [&counters](const char *key, uint64_t value) {
        counters.set(key, JsonValue::integer(static_cast<int64_t>(value)));
    };
    putCounter("sops", c.sops);
    putCounter("spikes", c.spikes);
    putCounter("evals", c.evals);
    putCounter("ticksRun", c.ticksRun);
    putCounter("sopsBatched", c.sopsBatched);
    putCounter("sopsAxonWord", c.sopsAxonWord);
    putCounter("sopsStochBatched", c.sopsStochBatched);
    putCounter("laneSlotsActive", c.laneSlotsActive);
    putCounter("laneActiveAxons", c.laneActiveAxons);
    putCounter("evalsBatched", c.evalsBatched);
    putCounter("evalsStochBatched", c.evalsStochBatched);
    putCounter("selfEventCompactions", c.selfEventCompactions);
    putCounter("planeReuses", c.planeReuses);
    out.set("counters", std::move(counters));
}

bool
Core::restoreState(const JsonValue &in)
{
    if (in.type() != JsonValue::Type::Object)
        return false;
    const uint32_t n = cfg_.geom.numNeurons;
    for (const char *key : {"lanes", "sched", "xbarOverrides",
                            "counters"})
        if (!in.has(key))
            return false;
    const JsonValue &lanes = in.at("lanes");
    if (lanes.type() != JsonValue::Type::Array ||
        lanes.size() != instances())
        return false;
    for (uint32_t i = 0; i < instances(); ++i) {
        const JsonValue &lj = lanes.at(i);
        InstanceLane &L = inst_[i];
        for (const char *key : {"v", "doneThrough", "schedFire",
                                "selfEvents", "rng"})
            if (!lj.has(key))
                return false;
        const JsonValue &v = lj.at("v");
        const JsonValue &done = lj.at("doneThrough");
        const JsonValue &fire = lj.at("schedFire");
        if (v.size() != n || done.size() != n || fire.size() != n)
            return false;
        for (uint32_t j = 0; j < n; ++j) {
            L.v[j] = static_cast<int32_t>(v.at(j).asInt());
            L.doneThrough[j] =
                static_cast<uint64_t>(done.at(j).asInt());
            int64_t f = fire.at(j).asInt();
            L.scheduledFire[j] =
                f < 0 ? kNoFire : static_cast<uint64_t>(f);
        }
        const JsonValue &selfEvents = lj.at("selfEvents");
        if (selfEvents.size() % 2 != 0)
            return false;
        L.selfEvents.clear();
        L.selfEvents.reserve(selfEvents.size() / 2);
        for (size_t k = 0; k < selfEvents.size(); k += 2) {
            auto tick =
                static_cast<uint64_t>(selfEvents.at(k).asInt());
            auto neuron =
                static_cast<uint32_t>(selfEvents.at(k + 1).asInt());
            if (neuron >= n)
                return false;
            L.selfEvents.emplace_back(tick, neuron);
        }
        L.selfEventsStale =
            static_cast<uint64_t>(lj.getInt("selfEventsStale", 0));
        const JsonValue &rng = lj.at("rng");
        L.rng.restoreState(
            static_cast<uint16_t>(rng.getInt("state", 0)),
            static_cast<uint64_t>(rng.getInt("draws", 0)));
        L.firedBits.reset();
    }
    int64_t mode = in.getInt("mode", 0);
    if (mode < 0 || mode > 2)
        return false;
    mode_ = static_cast<Mode>(mode);
    if (!sched_.restoreState(in.at("sched")))
        return false;
    revertXbarOverrides();
    const JsonValue &overrides = in.at("xbarOverrides");
    for (size_t i = 0; i < overrides.size(); ++i) {
        const JsonValue &o = overrides.at(i);
        auto axon = static_cast<uint32_t>(o.getInt("axon", 0));
        auto word = static_cast<uint32_t>(o.getInt("word", 0));
        uint64_t bits = 0;
        if (axon >= cfg_.geom.numAxons ||
            word >= (cfg_.geom.numNeurons + 63) / 64 ||
            !u64FromHex(o.getString("bits", ""), bits))
            return false;
        applyStuckWord(axon, word, bits);
    }
    const JsonValue &counters = in.at("counters");
    counters_ = CoreCounters{};
    counters_.sops = static_cast<uint64_t>(counters.getInt("sops", 0));
    counters_.spikes =
        static_cast<uint64_t>(counters.getInt("spikes", 0));
    counters_.evals = static_cast<uint64_t>(counters.getInt("evals", 0));
    counters_.ticksRun =
        static_cast<uint64_t>(counters.getInt("ticksRun", 0));
    counters_.sopsBatched =
        static_cast<uint64_t>(counters.getInt("sopsBatched", 0));
    counters_.sopsAxonWord =
        static_cast<uint64_t>(counters.getInt("sopsAxonWord", 0));
    counters_.sopsStochBatched =
        static_cast<uint64_t>(counters.getInt("sopsStochBatched", 0));
    counters_.laneSlotsActive =
        static_cast<uint64_t>(counters.getInt("laneSlotsActive", 0));
    counters_.laneActiveAxons =
        static_cast<uint64_t>(counters.getInt("laneActiveAxons", 0));
    counters_.evalsBatched =
        static_cast<uint64_t>(counters.getInt("evalsBatched", 0));
    counters_.evalsStochBatched =
        static_cast<uint64_t>(counters.getInt("evalsStochBatched", 0));
    counters_.selfEventCompactions = static_cast<uint64_t>(
        counters.getInt("selfEventCompactions", 0));
    counters_.planeReuses =
        static_cast<uint64_t>(counters.getInt("planeReuses", 0));
    // Per-tick scratch is clean between ticks by invariant; make that
    // true regardless of what state this core was in before restore.
    denseList_.clear();
    for (uint32_t j = 0; j < n; ++j)
        if (cls_[j] == UpdateClass::Dense)
            denseList_.push_back(j);
    evalMask_.reset();
    detEvalScratch_.reset();
    clearIntegratePlanes();
    clearStochFold();
    fallback_.reset();
    return true;
}

} // namespace nscs
