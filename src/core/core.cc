#include "core/core.hh"

#include "util/logging.hh"

namespace nscs {

Core::Core(CoreConfig cfg)
    : cfg_(std::move(cfg)),
      xbar_(cfg_.xbarRows, cfg_.geom.numNeurons),
      sched_(cfg_.geom.delaySlots, cfg_.geom.numAxons),
      rng_(cfg_.rngSeed),
      evalMask_(cfg_.geom.numNeurons)
{
    validateCoreConfig(cfg_, "Core");
    const uint32_t n = cfg_.geom.numNeurons;
    v_.resize(n);
    cls_.resize(n);
    doneThrough_.resize(n);
    scheduledFire_.resize(n);
    for (uint32_t j = 0; j < n; ++j)
        cls_[j] = classifyNeuron(cfg_.neurons[j]);
    reset();
}

void
Core::reset()
{
    const uint32_t n = cfg_.geom.numNeurons;
    denseList_.clear();
    selfEvents_ = {};
    for (uint32_t j = 0; j < n; ++j) {
        // Architectural reset contract: the negative-threshold rule
        // is applied once to the configured initial potential.
        v_[j] = applyNegativeRule(cfg_.neurons[j].initialPotential,
                                  cfg_.neurons[j]);
        doneThrough_[j] = 0;
        scheduledFire_[j] = kNoFire;
        if (cls_[j] == UpdateClass::Dense) {
            denseList_.push_back(j);
        } else {
            auto delta = nextFireDelta(v_[j], cfg_.neurons[j]);
            if (delta) {
                scheduledFire_[j] = *delta - 1;
                selfEvents_.emplace(scheduledFire_[j], j);
            }
        }
    }
    sched_.reset();
    rng_.reset(cfg_.rngSeed);
    evalMask_.reset();
    counters_ = CoreCounters{};
    mode_ = Mode::Unset;
}

void
Core::deposit(uint64_t delivery_tick, uint32_t axon)
{
    NSCS_ASSERT(axon < cfg_.geom.numAxons,
                "deposit to axon %u of %u", axon, cfg_.geom.numAxons);
    sched_.deposit(delivery_tick, axon);
}

void
Core::commitMode(Mode m)
{
    if (mode_ == Mode::Unset)
        mode_ = m;
    NSCS_ASSERT(mode_ == m,
                "core evaluated with mixed strategies; reset() first");
}

void
Core::catchUp(uint32_t n, uint64_t t)
{
    uint64_t done = doneThrough_[n];
    if (done >= t)
        return;
    NSCS_ASSERT(cls_[n] != UpdateClass::Dense,
                "Dense neuron %u fell behind (done %llu < t %llu)", n,
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(t));
    v_[n] = leakForward(v_[n], cfg_.neurons[n], t - done);
    doneThrough_[n] = t;
}

void
Core::integrateActiveAxons(uint64_t t, bool sparse)
{
    const BitVec &active = sched_.slot(t);
    if (active.none())
        return;
    active.forEachSet([this, t, sparse](size_t a) {
        unsigned g = cfg_.axonType[a];
        const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
        row.forEachSet([this, t, sparse, g](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (sparse) {
                if (cls_[n] != UpdateClass::Dense)
                    catchUp(n, t);
                evalMask_.set(n);
            }
            v_[n] = integrateSynapse(v_[n], cfg_.neurons[n], g, &rng_);
            ++counters_.sops;
        });
    });
    sched_.clearSlot(t);
}

void
Core::tickDense(uint64_t t, std::vector<uint32_t> &fired)
{
    commitMode(Mode::Dense);
    ++counters_.ticksRun;
    integrateActiveAxons(t, false);
    const uint32_t n = cfg_.geom.numNeurons;
    for (uint32_t j = 0; j < n; ++j) {
        bool f = endOfTickUpdate(v_[j], cfg_.neurons[j], &rng_);
        ++counters_.evals;
        if (f) {
            fired.push_back(j);
            ++counters_.spikes;
        }
    }
}

void
Core::scheduleSelfEvent(uint32_t n)
{
    auto delta = nextFireDelta(v_[n], cfg_.neurons[n]);
    uint64_t sf = delta ? doneThrough_[n] + *delta - 1 : kNoFire;
    if (sf == scheduledFire_[n])
        return;
    scheduledFire_[n] = sf;
    if (sf != kNoFire)
        selfEvents_.emplace(sf, n);
}

void
Core::tickSparse(uint64_t t, std::vector<uint32_t> &fired)
{
    commitMode(Mode::Sparse);
    ++counters_.ticksRun;

    evalMask_.reset();

    // Due self-events join the evaluation set.
    while (!selfEvents_.empty() && selfEvents_.top().first <= t) {
        auto [tick, n] = selfEvents_.top();
        if (scheduledFire_[n] != tick) {
            selfEvents_.pop();  // stale prediction
            continue;
        }
        NSCS_ASSERT(tick == t,
                    "missed self-event for neuron %u at tick %llu "
                    "(now %llu)", n,
                    static_cast<unsigned long long>(tick),
                    static_cast<unsigned long long>(t));
        selfEvents_.pop();
        evalMask_.set(n);
    }

    integrateActiveAxons(t, true);

    for (uint32_t n : denseList_)
        evalMask_.set(n);

    evalMask_.forEachSet([this, t, &fired](size_t j) {
        auto n = static_cast<uint32_t>(j);
        if (cls_[n] != UpdateClass::Dense)
            catchUp(n, t);
        bool f = endOfTickUpdate(v_[n], cfg_.neurons[n], &rng_);
        ++counters_.evals;
        doneThrough_[n] = t + 1;
        if (f) {
            fired.push_back(n);
            ++counters_.spikes;
        }
        if (cls_[n] != UpdateClass::Dense)
            scheduleSelfEvent(n);
    });
}

std::optional<uint64_t>
Core::nextSelfEvent()
{
    while (!selfEvents_.empty()) {
        auto [tick, n] = selfEvents_.top();
        if (scheduledFire_[n] != tick) {
            selfEvents_.pop();
            continue;
        }
        return tick;
    }
    return std::nullopt;
}

const CoreCounters &
Core::counters() const
{
    counters_.rngDraws = rng_.draws();
    counters_.deposits = sched_.deposits();
    counters_.collisions = sched_.collisions();
    return counters_;
}

int32_t
Core::settledPotential(uint32_t n, uint64_t t) const
{
    NSCS_ASSERT(n < v_.size(), "neuron %u out of range", n);
    if (mode_ != Mode::Sparse)
        return v_[n];
    uint64_t done = doneThrough_[n];
    if (done >= t || cls_[n] == UpdateClass::Dense)
        return v_[n];
    return leakForward(v_[n], cfg_.neurons[n], t - done);
}

size_t
Core::footprintBytes() const
{
    size_t bytes = sizeof(Core);
    bytes += cfg_.footprintBytes();
    bytes += xbar_.footprintBytes();
    bytes += sched_.footprintBytes();
    bytes += v_.capacity() * sizeof(int32_t);
    bytes += cls_.capacity() * sizeof(UpdateClass);
    bytes += denseList_.capacity() * sizeof(uint32_t);
    bytes += doneThrough_.capacity() * sizeof(uint64_t);
    bytes += scheduledFire_.capacity() * sizeof(uint64_t);
    bytes += evalMask_.footprintBytes();
    return bytes;
}

} // namespace nscs
