#include "core/core.hh"

#include <algorithm>
#include <bit>
#include <chrono>

#include "util/logging.hh"

namespace nscs {

Core::Core(CoreConfig cfg)
    : cfg_(std::move(cfg)),
      xbar_(cfg_.xbarRows, cfg_.geom.numNeurons),
      sched_(cfg_.geom.delaySlots, cfg_.geom.numAxons),
      rng_(cfg_.rngSeed),
      evalMask_(cfg_.geom.numNeurons)
{
    validateCoreConfig(cfg_, "Core");
    const uint32_t n = cfg_.geom.numNeurons;
    v_.resize(n);
    cls_.resize(n);
    doneThrough_.resize(n);
    scheduledFire_.resize(n);
    for (uint32_t j = 0; j < n; ++j)
        cls_[j] = classifyNeuron(cfg_.neurons[j]);
    buildLanes();
    buildUpdateCohorts();
    reset();
}

/**
 * Project the update-relevant NeuronParams fields into SoA lanes and
 * split the population into the deterministic update cohort (zero
 * per-tick draws, batchable) and the stochastic cohort (scalar).
 * Deterministic neurons are additionally grouped into maximal
 * ascending runs so the homogeneous case — the architectural
 * steady state — is one flat kernel sweep over the whole core.
 */
void
Core::buildUpdateCohorts()
{
    const uint32_t n = cfg_.geom.numNeurons;
    update_.build(cfg_.neurons);
    firedBits_ = BitVec(n);
    detEvalScratch_ = BitVec(n);
    detRuns_.clear();
    stochUpdList_.clear();
    uint32_t j = 0;
    while (j < n) {
        if (update_.deterministic.test(j)) {
            uint32_t b = j;
            while (j < n && update_.deterministic.test(j))
                ++j;
            detRuns_.emplace_back(b, j);
        } else {
            stochUpdList_.push_back(j);
            ++j;
        }
    }
}

void
Core::buildLanes()
{
    const uint32_t num_neurons = cfg_.geom.numNeurons;
    const uint32_t num_axons = cfg_.geom.numAxons;
    const size_t words = (num_neurons + 63) / 64;

    // Enough carry-save bit-planes to count up to num_axons events
    // per (neuron, type) without overflow.
    planeCount_ = static_cast<uint32_t>(std::bit_width(num_axons));

    vLo_.resize(num_neurons);
    vHi_.resize(num_neurons);
    for (uint32_t j = 0; j < num_neurons; ++j) {
        PotentialRange r = potentialRange(cfg_.neurons[j]);
        vLo_[j] = r.lo;
        vHi_[j] = r.hi;
    }

    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        TypeLane &lane = lanes_[g];
        lane.axons = BitVec(num_axons);
        lane.stoch = BitVec(num_neurons);
        lane.weight.assign(num_neurons, 0);
        lane.rowOr = BitVec(num_neurons);
        lane.planes.assign(static_cast<size_t>(planeCount_) * words, 0);
        lane.present = false;
        lane.activeAxons = 0;
        for (uint32_t j = 0; j < num_neurons; ++j) {
            lane.weight[j] = cfg_.neurons[j].synWeight[g];
            if (cfg_.neurons[j].synStochastic[g])
                lane.stoch.set(j);
        }
    }
    for (uint32_t a = 0; a < num_axons; ++a) {
        TypeLane &lane = lanes_[cfg_.axonType[a]];
        lane.axons.set(a);
        lane.present = true;
    }

    touched_ = BitVec(num_neurons);
    fallback_ = BitVec(num_neurons);

    wpMinActive_ = calibrateWordParallelThreshold();
}

/**
 * Derive the scalar vs word-parallel engagement threshold.
 *
 * Small cores keep the analytic density model: scalar cost ~ events =
 * rows x density x neurons, word-parallel cost adds ~ one extraction
 * per touched neuron, so break-even sits at roughly 10 / density
 * active rows.  Cores large enough for the path choice to matter are
 * micro-calibrated instead: synthetic active slots of doubling
 * activity are timed through the *real* scalar and word-parallel
 * integrate paths and the measured crossover wins.  Everything the
 * probes mutate (potentials, counters, PRNG, lane scratch) is
 * re-initialised by reset() immediately after construction, and the
 * threshold only selects between two bit-identical paths, so
 * calibration cannot perturb architectural results.
 */
uint32_t
Core::calibrateWordParallelThreshold()
{
    const uint32_t num_axons = cfg_.geom.numAxons;
    const uint32_t num_neurons = cfg_.geom.numNeurons;
    const uint64_t synapses = xbar_.synapseCount();
    // An empty crossbar never integrates; the threshold is moot.
    if (synapses == 0)
        return num_axons + 1;
    const double density = static_cast<double>(synapses) /
        (static_cast<double>(num_axons) * num_neurons);
    const uint32_t model = std::max<uint32_t>(
        1, static_cast<uint32_t>(10.0 / density));

    // Below this size one integrate costs well under the timer
    // granularity and the path choice is in the noise; per-core
    // probing would dominate construction instead of helping.
    if (static_cast<uint64_t>(num_axons) * num_neurons < (1u << 14))
        return std::min(model, num_axons + 1);

    std::vector<uint32_t> rows;
    for (uint32_t a = 0; a < num_axons; ++a)
        if (xbar_.axonDegree(a) > 0)
            rows.push_back(a);
    if (rows.size() < 2)
        return std::min(model, num_axons + 1);

    BitVec active(num_axons);
    auto probe = [&](bool word_parallel) {
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            // Re-zero the potentials so every rep measures the
            // steady-state path: drifting values would saturate at
            // the rails and push later word-parallel reps onto the
            // fallback replay, biasing the crossover.
            std::fill(v_.begin(), v_.end(), 0);
            // Construction-time perf calibration: picks between two
            // bit-identical integrate paths, so host timing cannot
            // change architectural output (see the method comment).
            // nscs-lint: allow(wall-clock): calibration, output-neutral
            auto t0 = std::chrono::steady_clock::now();
            if (word_parallel)
                integrateWordParallel(active, 0, false);
            else
                integrateScalar(active, 0, false);
            // nscs-lint: allow(wall-clock): see t0 above.
            auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best, std::chrono::duration<double>(t1 - t0).count());
        }
        return best;
    };

    // Doubling sweep over active-row counts, capped so a sweep that
    // never finds the crossover stays a bounded fraction of
    // construction cost.  The first k where the word-parallel probe
    // clearly wins (scalar time measurable, 10% margin — a 0-vs-0
    // timer-granularity tie must not hand word-parallel the verdict)
    // brackets the crossover in (k/2, k].
    const uint32_t k_max = std::min<uint32_t>(
        static_cast<uint32_t>(rows.size()), 64);
    uint32_t set_rows = 0;
    uint32_t prev = 0;
    for (uint32_t k = 1; set_rows < k_max; k *= 2) {
        k = std::min<uint32_t>(k, k_max);
        while (set_rows < k)
            active.set(rows[set_rows++]);
        double wp = probe(true);
        double sc = probe(false);
        if (sc > 0.0 && wp * 10 <= sc * 9) {
            // Crossover is in (prev, k].  Pick the density model when
            // it lands inside the bracket, else the conservative
            // upper end: at the crossover both paths cost the same,
            // so erring toward scalar never loses and keeps
            // break-even slots off the extraction overhead.
            uint32_t pick = (model > prev && model <= k) ? model : k;
            return std::max<uint32_t>(1, pick);
        }
        prev = k;
        if (k == k_max)
            break;
    }
    // Word-parallel never won inside the probe budget: scalar is
    // sticky at least through prev rows, so keep the analytic model
    // where it is more conservative and stay past the probed range
    // otherwise.
    return static_cast<uint32_t>(std::min<uint64_t>(
        std::max<uint64_t>(model, 2ull * prev),
        static_cast<uint64_t>(num_axons) + 1));
}

void
Core::reset()
{
    const uint32_t n = cfg_.geom.numNeurons;
    revertXbarOverrides();
    denseList_.clear();
    selfEvents_.clear();
    selfEventsStale_ = 0;
    for (uint32_t j = 0; j < n; ++j) {
        // Architectural reset contract: the negative-threshold rule
        // is applied once to the configured initial potential.
        v_[j] = applyNegativeRule(cfg_.neurons[j].initialPotential,
                                  cfg_.neurons[j]);
        doneThrough_[j] = 0;
        scheduledFire_[j] = kNoFire;
        if (cls_[j] == UpdateClass::Dense) {
            denseList_.push_back(j);
        } else {
            auto delta = nextFireDelta(v_[j], cfg_.neurons[j]);
            if (delta) {
                scheduledFire_[j] = *delta - 1;
                pushSelfEvent(scheduledFire_[j], j);
            }
        }
    }
    firedBits_.reset();
    detEvalScratch_.reset();
    sched_.reset();
    rng_.reset(cfg_.rngSeed);
    evalMask_.reset();
    counters_ = CoreCounters{};
    mode_ = Mode::Unset;
}

void
Core::deposit(uint64_t delivery_tick, uint32_t axon)
{
    NSCS_ASSERT(axon < cfg_.geom.numAxons,
                "deposit to axon %u of %u", axon, cfg_.geom.numAxons);
    sched_.deposit(delivery_tick, axon);
}

void
Core::commitMode(Mode m)
{
    if (mode_ == Mode::Unset)
        mode_ = m;
    NSCS_ASSERT(mode_ == m,
                "core evaluated with mixed strategies; reset() first");
}

void
Core::catchUp(uint32_t n, uint64_t t)
{
    uint64_t done = doneThrough_[n];
    if (done >= t)
        return;
    NSCS_ASSERT(cls_[n] != UpdateClass::Dense,
                "Dense neuron %u fell behind (done %llu < t %llu)", n,
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(t));
    v_[n] = leakForward(v_[n], cfg_.neurons[n], t - done);
    doneThrough_[n] = t;
}

void
Core::integrateActiveAxons(uint64_t t, bool sparse)
{
    if (sched_.slotEmpty(t))
        return;
    const BitVec &active = sched_.slot(t);
    if (wordParallel_ && sched_.slotCount(t) >= wpMinActive_)
        integrateWordParallel(active, t, sparse);
    else
        integrateScalar(active, t, sparse);
    sched_.clearSlot(t);
}

/**
 * The architectural reference order: one integrateSynapse call per
 * (axon, neuron) event, axons ascending, neurons ascending within a
 * row.  The word-parallel path below must match this bit for bit.
 */
void
Core::integrateScalar(const BitVec &active, uint64_t t, bool sparse)
{
    active.forEachSet([this, t, sparse](size_t a) {
        unsigned g = cfg_.axonType[a];
        const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
        row.forEachSet([this, t, sparse, g](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (sparse) {
                if (cls_[n] != UpdateClass::Dense)
                    catchUp(n, t);
                evalMask_.set(n);
            }
            v_[n] = integrateSynapse(v_[n], cfg_.neurons[n], g, &rng_);
            ++counters_.sops;
        });
    });
}

/**
 * Word-parallel synaptic integration.
 *
 * Phase 1 folds the active-axon slot against each axon-type
 * partition with 64-bit word operations: the OR of active rows
 * gives the touched-neuron mask, and carry-save bit-plane addition
 * of the same rows gives per-neuron event counts per type (a column
 * popcount computed 64 columns at a time).
 *
 * Phase 2 applies deterministic synapses as one batched
 * v += count * weight add per type.  Equivalence argument: the
 * scalar path is a chain of saturating adds in (axon, neuron)
 * order.  Addition is commutative, so the chain equals the batched
 * sum whenever no partial sum can leave the register rails; the
 * guard checks the worst-case excursion (all positive contributions
 * first / all negative first brackets every interleaving).  Neurons
 * that fail the guard — mixed signs near the rails — or that have a
 * stochastic synapse in play fall back to the scalar path.
 *
 * Phase 3 replays the fallback neurons event by event in the
 * architectural order.  Deterministic events never draw from the
 * PRNG, so batching them cannot shift the draw positions of the
 * stochastic events replayed here: the draw order stays axon-major,
 * which is the cross-engine equivalence contract.
 */
void
Core::integrateWordParallel(const BitVec &active, uint64_t t,
                            bool sparse)
{
    const size_t words = touched_.words().size();

    // Phase 1: partition the active slot by axon type and fold each
    // partition's crossbar rows into (touched mask, count planes).
    touched_.reset();
    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        TypeLane &lane = lanes_[g];
        lane.activeAxons = 0;
        if (!lane.present || !active.intersects(lane.axons))
            continue;
        active.forEachSetMasked(lane.axons, [this, &lane,
                                             words](size_t a) {
            const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
            ++lane.activeAxons;
            row.forEachSetWord([&lane, words](size_t w, uint64_t bits) {
                lane.rowOr.orWordAt(w, bits);
                // Carry-save add: plane p holds bit p of every
                // column's running count.
                uint64_t carry = bits;
                size_t idx = w;
                while (carry) {
                    uint64_t old = lane.planes[idx];
                    lane.planes[idx] = old ^ carry;
                    carry &= old;
                    idx += words;
                }
            });
        });
        touched_.orAccumulate(lane.rowOr);
    }
    if (sparse)
        evalMask_.orAccumulate(touched_);

    // Plane p of lane g can be nonzero only once 2^p rows were
    // folded; bound extraction and cleanup accordingly.
    unsigned planes_used[kNumAxonTypes];
    for (unsigned g = 0; g < kNumAxonTypes; ++g)
        planes_used[g] = static_cast<unsigned>(
            std::bit_width(lanes_[g].activeAxons));

    // Phase 2: batch-apply deterministic events per touched neuron;
    // divert saturation-risk and stochastic targets to the fallback
    // set.
    bool any_fallback = false;
    touched_.forEachSetWord([&](size_t w, uint64_t word) {
        uint64_t bits = word;
        while (bits) {
            unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            auto n = static_cast<uint32_t>(w * 64 + b);
            if (sparse && cls_[n] != UpdateClass::Dense)
                catchUp(n, t);
            int64_t delta = 0, pos = 0, neg = 0;
            uint64_t events = 0;
            bool stochastic = false;
            for (unsigned g = 0; g < kNumAxonTypes; ++g) {
                const TypeLane &lane = lanes_[g];
                if (!lane.activeAxons ||
                    !((lane.rowOr.words()[w] >> b) & 1))
                    continue;
                if ((lane.stoch.words()[w] >> b) & 1) {
                    stochastic = true;
                    break;
                }
                uint64_t cnt = 0;
                size_t idx = w;
                for (unsigned p = 0; p < planes_used[g];
                     ++p, idx += words)
                    cnt |= ((lane.planes[idx] >> b) & 1) << p;
                events += cnt;
                int64_t d = static_cast<int64_t>(cnt) * lane.weight[n];
                delta += d;
                if (d > 0)
                    pos += d;
                else
                    neg += d;
            }
            if (stochastic) {
                fallback_.set(n);
                any_fallback = true;
                continue;
            }
            int64_t v0 = v_[n];
            if (v0 + pos <= vHi_[n] && v0 + neg >= vLo_[n]) {
                v_[n] = static_cast<int32_t>(v0 + delta);
                counters_.sops += events;
                counters_.sopsBatched += events;
            } else {
                fallback_.set(n);
                any_fallback = true;
            }
        }
    });

    // Phase 3: event-by-event replay of the fallback neurons in the
    // architectural (axon-major) order; the only PRNG consumer.
    if (any_fallback) {
        active.forEachSet([this](size_t a) {
            unsigned g = cfg_.axonType[a];
            xbar_.row(static_cast<uint32_t>(a)).forEachSetMasked(
                fallback_, [this, g](size_t j) {
                    auto n = static_cast<uint32_t>(j);
                    v_[n] = integrateSynapse(v_[n], cfg_.neurons[n], g,
                                             &rng_);
                    ++counters_.sops;
                });
        });
        fallback_.reset();
    }

    // Scratch cleanup, word-wise over the words each lane touched.
    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        TypeLane &lane = lanes_[g];
        if (!lane.activeAxons)
            continue;
        lane.rowOr.forEachSetWord([&lane, words,
                                   &planes_used, g](size_t w, uint64_t) {
            size_t idx = w;
            for (unsigned p = 0; p < planes_used[g]; ++p, idx += words)
                lane.planes[idx] = 0;
        });
        lane.rowOr.reset();
    }
}

void
Core::tickDense(uint64_t t, std::vector<uint32_t> &fired)
{
    commitMode(Mode::Dense);
    ++counters_.ticksRun;
    integrateActiveAxons(t, false);
    const uint32_t n = cfg_.geom.numNeurons;
    if (!wordParallelUpdate_) {
        // Scalar reference: one endOfTickUpdate per neuron, ascending.
        for (uint32_t j = 0; j < n; ++j) {
            bool f = endOfTickUpdate(v_[j], cfg_.neurons[j], &rng_);
            ++counters_.evals;
            if (f) {
                fired.push_back(j);
                ++counters_.spikes;
            }
        }
        return;
    }
    // Batched: the deterministic cohort consumes no draws, so running
    // its runs through the SoA kernel first and the stochastic cohort
    // after (ascending) preserves the reference LFSR stream; the
    // stochastic cohort itself batches through precomputed draw
    // outcomes — the draws are position-only, so drawing them all up
    // front in the per-neuron scalar order leaves the stream
    // untouched.  emitFired then merges both cohorts' fires in
    // ascending order.
    for (const auto &[b, e] : detRuns_)
        batchUpdateRange(update_, v_.data(), b, e, firedBits_);
    const auto stoch_n = static_cast<uint64_t>(stochUpdList_.size());
    if (stochUpdateBatch_ && stoch_n != 0) {
        precomputeStochDraws(update_, stochUpdList_, rng_,
                             stochDraws_);
        for (uint32_t j : stochUpdList_) {
            if (batchUpdateStochOne(update_, stochDraws_, v_.data(),
                                    j))
                firedBits_.set(j);
        }
        counters_.evalsBatched += stoch_n;
        counters_.evalsStochBatched += stoch_n;
    } else {
        for (uint32_t j : stochUpdList_) {
            if (endOfTickUpdate(v_[j], cfg_.neurons[j], &rng_))
                firedBits_.set(j);
        }
    }
    counters_.evals += n;
    counters_.evalsBatched += n - stoch_n;
    emitFired(fired);
}

/** Drain firedBits_ into @p fired in ascending index order. */
void
Core::emitFired(std::vector<uint32_t> &fired)
{
    firedBits_.forEachSet([this, &fired](size_t j) {
        fired.push_back(static_cast<uint32_t>(j));
        ++counters_.spikes;
    });
    firedBits_.reset();
}

void
Core::pushSelfEvent(uint64_t tick, uint32_t n)
{
    selfEvents_.emplace_back(tick, n);
    std::push_heap(selfEvents_.begin(), selfEvents_.end(),
                   std::greater<>{});
}

void
Core::popSelfEventTop()
{
    std::pop_heap(selfEvents_.begin(), selfEvents_.end(),
                  std::greater<>{});
    selfEvents_.pop_back();
}

/**
 * Record that a live heap pair just turned stale (its neuron was
 * re-predicted), and lazily rebuild the heap once stale pairs
 * outnumber live ones.  Without this, long sparse runs on
 * frequently re-predicted neurons grow the heap without bound; with
 * it, the heap holds at most ~2x the live prediction count (plus the
 * rebuild floor).
 */
void
Core::noteStaleSelfEvent()
{
    ++selfEventsStale_;
    if (selfEvents_.size() < 64 ||
        selfEventsStale_ * 2 <= selfEvents_.size())
        return;
    // Drop pairs that no longer match their neuron's prediction.  A
    // neuron re-predicted away from and then back to the same tick
    // leaves two pairs that both read live here; sort + unique
    // collapses them so the rebuilt heap holds exactly one pair per
    // outstanding prediction and the stale counter restarts from a
    // clean slate.  A sorted ascending range already satisfies the
    // min-heap property, so no make_heap is needed.
    std::erase_if(selfEvents_, [this](const auto &e) {
        return scheduledFire_[e.second] != e.first;
    });
    std::sort(selfEvents_.begin(), selfEvents_.end());
    selfEvents_.erase(
        std::unique(selfEvents_.begin(), selfEvents_.end()),
        selfEvents_.end());
    selfEventsStale_ = 0;
    ++counters_.selfEventCompactions;
}

void
Core::scheduleSelfEvent(uint32_t n)
{
    auto delta = nextFireDelta(v_[n], cfg_.neurons[n]);
    uint64_t sf = delta ? doneThrough_[n] + *delta - 1 : kNoFire;
    uint64_t old = scheduledFire_[n];
    if (sf == old)
        return;
    scheduledFire_[n] = sf;
    if (sf != kNoFire)
        pushSelfEvent(sf, n);
    // The previous prediction's pair (old, n) is still in the heap
    // and now reads stale; account for it after the push so a
    // triggered compaction sees the fresh pair as live.
    if (old != kNoFire)
        noteStaleSelfEvent();
}

void
Core::tickSparse(uint64_t t, std::vector<uint32_t> &fired)
{
    commitMode(Mode::Sparse);
    ++counters_.ticksRun;

    evalMask_.reset();

    // Due self-events join the evaluation set.  A popped live pair is
    // consumed: clearing scheduledFire_ keeps the near-invariant
    // that a non-kNoFire prediction has one live pair in the heap
    // (re-predicting back to a previously-staled tick can transiently
    // duplicate a live pair; the duplicate drains here as stale and
    // compaction collapses it, so the stale accounting only defers,
    // never corrupts).
    while (!selfEvents_.empty() && selfEvents_.front().first <= t) {
        auto [tick, n] = selfEvents_.front();
        if (scheduledFire_[n] != tick) {
            popSelfEventTop();  // stale prediction
            if (selfEventsStale_ > 0)
                --selfEventsStale_;
            continue;
        }
        NSCS_ASSERT(tick == t,
                    "missed self-event for neuron %u at tick %llu "
                    "(now %llu)", n,
                    static_cast<unsigned long long>(tick),
                    static_cast<unsigned long long>(t));
        popSelfEventTop();
        scheduledFire_[n] = kNoFire;
        evalMask_.set(n);
    }

    integrateActiveAxons(t, true);

    for (uint32_t n : denseList_)
        evalMask_.set(n);

    if (!wordParallelUpdate_) {
        // Scalar reference: ascending over the full evaluation set.
        evalMask_.forEachSet([this, t, &fired](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (cls_[n] != UpdateClass::Dense)
                catchUp(n, t);
            bool f = endOfTickUpdate(v_[n], cfg_.neurons[n], &rng_);
            ++counters_.evals;
            doneThrough_[n] = t + 1;
            if (f) {
                fired.push_back(n);
                ++counters_.spikes;
            }
            if (cls_[n] != UpdateClass::Dense)
                scheduleSelfEvent(n);
        });
        return;
    }

    // Batched: evalMask_ ∩ deterministic goes through the SoA kernel
    // (zero draws), the stochastic remainder runs scalar in ascending
    // order — the reference draw order, since deterministic neurons
    // never draw.  Fired bits from both cohorts merge ascending.
    detEvalScratch_ = evalMask_;
    detEvalScratch_ &= update_.deterministic;
    detEvalScratch_.forEachSet([this, t](size_t j) {
        auto n = static_cast<uint32_t>(j);
        if (cls_[n] != UpdateClass::Dense)
            catchUp(n, t);
    });
    uint64_t batched =
        batchUpdateMasked(update_, v_.data(), detEvalScratch_,
                          firedBits_);
    counters_.evals += batched;
    counters_.evalsBatched += batched;
    detEvalScratch_.forEachSet([this, t](size_t j) {
        auto n = static_cast<uint32_t>(j);
        doneThrough_[n] = t + 1;
        if (cls_[n] != UpdateClass::Dense)
            scheduleSelfEvent(n);
    });

    // The remainder is exactly the drawsPerTick neurons, which
    // always classify Dense: never skipped (no catch-up), never
    // self-predicted, and in evalMask_ every tick — so it equals
    // stochUpdList_ and batches through precomputed draws exactly as
    // in tickDense.
    const auto stoch_n = static_cast<uint64_t>(stochUpdList_.size());
    if (stochUpdateBatch_ && stoch_n != 0) {
        precomputeStochDraws(update_, stochUpdList_, rng_,
                             stochDraws_);
        for (uint32_t j : stochUpdList_) {
            if (batchUpdateStochOne(update_, stochDraws_, v_.data(),
                                    j))
                firedBits_.set(j);
            doneThrough_[j] = t + 1;
        }
        counters_.evals += stoch_n;
        counters_.evalsBatched += stoch_n;
        counters_.evalsStochBatched += stoch_n;
    } else {
        evalMask_.forEachSetMasked(update_.stochastic,
                                   [this, t](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (endOfTickUpdate(v_[n], cfg_.neurons[n], &rng_))
                firedBits_.set(n);
            ++counters_.evals;
            doneThrough_[n] = t + 1;
        });
    }
    emitFired(fired);
}

std::optional<uint64_t>
Core::nextSelfEvent()
{
    while (!selfEvents_.empty()) {
        auto [tick, n] = selfEvents_.front();
        if (scheduledFire_[n] != tick) {
            popSelfEventTop();
            if (selfEventsStale_ > 0)
                --selfEventsStale_;
            continue;
        }
        return tick;
    }
    return std::nullopt;
}

const CoreCounters &
Core::counters() const
{
    counters_.rngDraws = rng_.draws();
    counters_.deposits = sched_.deposits();
    counters_.collisions = sched_.collisions();
    return counters_;
}

int32_t
Core::settledPotential(uint32_t n, uint64_t t) const
{
    NSCS_ASSERT(n < v_.size(), "neuron %u out of range", n);
    if (mode_ != Mode::Sparse)
        return v_[n];
    uint64_t done = doneThrough_[n];
    if (done >= t || cls_[n] == UpdateClass::Dense)
        return v_[n];
    return leakForward(v_[n], cfg_.neurons[n], t - done);
}

size_t
Core::footprintBytes() const
{
    size_t bytes = sizeof(Core);
    bytes += cfg_.footprintBytes();
    bytes += xbar_.footprintBytes();
    bytes += sched_.footprintBytes();
    bytes += v_.capacity() * sizeof(int32_t);
    bytes += cls_.capacity() * sizeof(UpdateClass);
    bytes += denseList_.capacity() * sizeof(uint32_t);
    bytes += doneThrough_.capacity() * sizeof(uint64_t);
    bytes += scheduledFire_.capacity() * sizeof(uint64_t);
    bytes += evalMask_.footprintBytes();
    for (const TypeLane &lane : lanes_) {
        bytes += lane.axons.footprintBytes();
        bytes += lane.stoch.footprintBytes();
        bytes += lane.weight.capacity() * sizeof(int32_t);
        bytes += lane.rowOr.footprintBytes();
        bytes += lane.planes.capacity() * sizeof(uint64_t);
    }
    bytes += vLo_.capacity() * sizeof(int32_t);
    bytes += vHi_.capacity() * sizeof(int32_t);
    bytes += touched_.footprintBytes();
    bytes += fallback_.footprintBytes();
    bytes += update_.footprintBytes();
    bytes += detRuns_.capacity() *
        sizeof(std::pair<uint32_t, uint32_t>);
    bytes += stochUpdList_.capacity() * sizeof(uint32_t);
    bytes += stochDraws_.footprintBytes();
    bytes += firedBits_.footprintBytes();
    bytes += detEvalScratch_.footprintBytes();
    // The self-event heap was previously omitted, under-reporting
    // long sparse runs where stale predictions accumulate.
    bytes += selfEvents_.capacity() *
        sizeof(std::pair<uint64_t, uint32_t>);
    bytes += xbarOverrides_.capacity() * sizeof(XbarOverride);
    return bytes;
}

void
Core::applyStuckWord(uint32_t axon, uint32_t word, uint64_t bits)
{
    NSCS_ASSERT(axon < cfg_.geom.numAxons, "stuck word on axon %u of %u",
                axon, cfg_.geom.numAxons);
    NSCS_ASSERT(word < (cfg_.geom.numNeurons + 63) / 64,
                "stuck word index %u out of range", word);
    for (XbarOverride &ov : xbarOverrides_) {
        if (ov.axon == axon && ov.word == word) {
            ov.bits = bits;
            xbar_.setRowWord(axon, word, bits);
            return;
        }
    }
    XbarOverride ov;
    ov.axon = axon;
    ov.word = word;
    ov.bits = bits;
    ov.original = xbar_.row(axon).words()[word];
    xbarOverrides_.push_back(ov);
    xbar_.setRowWord(axon, word, bits);
}

void
Core::flipPotentialBit(uint32_t n, uint32_t bit)
{
    NSCS_ASSERT(n < v_.size(), "SEU on neuron %u of %zu", n, v_.size());
    int32_t v = v_[n] ^ static_cast<int32_t>(1u << (bit & 31));
    v_[n] = std::clamp(v, vLo_[n], vHi_[n]);
}

void
Core::revertXbarOverrides()
{
    for (const XbarOverride &ov : xbarOverrides_)
        xbar_.setRowWord(ov.axon, ov.word, ov.original);
    xbarOverrides_.clear();
}

void
Core::saveState(JsonValue &out) const
{
    out = JsonValue::object();
    auto intArray = [](const auto &src, auto proj) {
        JsonValue arr = JsonValue::array();
        for (const auto &x : src)
            arr.append(JsonValue::integer(proj(x)));
        return arr;
    };
    out.set("v", intArray(v_, [](int32_t x) {
        return static_cast<int64_t>(x);
    }));
    out.set("doneThrough", intArray(doneThrough_, [](uint64_t x) {
        return static_cast<int64_t>(x);
    }));
    // kNoFire (~0ull) travels as -1: JSON integers are int64.
    out.set("schedFire", intArray(scheduledFire_, [](uint64_t x) {
        return x == kNoFire ? int64_t{-1} : static_cast<int64_t>(x);
    }));
    // The raw heap array, verbatim: pop_heap order depends on the
    // array layout, so restoring a re-pushed heap would not replay
    // bit-identically.
    JsonValue selfEvents = JsonValue::array();
    for (const auto &[tick, n] : selfEvents_) {
        selfEvents.append(JsonValue::integer(static_cast<int64_t>(tick)));
        selfEvents.append(JsonValue::integer(n));
    }
    out.set("selfEvents", std::move(selfEvents));
    out.set("selfEventsStale",
            JsonValue::integer(static_cast<int64_t>(selfEventsStale_)));
    out.set("mode", JsonValue::integer(static_cast<int64_t>(mode_)));
    JsonValue rng = JsonValue::object();
    rng.set("state", JsonValue::integer(rng_.state()));
    rng.set("draws",
            JsonValue::integer(static_cast<int64_t>(rng_.draws())));
    out.set("rng", std::move(rng));
    JsonValue sched;
    sched_.saveState(sched);
    out.set("sched", std::move(sched));
    JsonValue overrides = JsonValue::array();
    for (const XbarOverride &ov : xbarOverrides_) {
        JsonValue o = JsonValue::object();
        o.set("axon", JsonValue::integer(ov.axon));
        o.set("word", JsonValue::integer(ov.word));
        o.set("bits", JsonValue::string(u64ToHex(ov.bits)));
        o.set("original", JsonValue::string(u64ToHex(ov.original)));
        overrides.append(std::move(o));
    }
    out.set("xbarOverrides", std::move(overrides));
    const CoreCounters &c = counters();  // refreshes derived fields
    JsonValue counters = JsonValue::object();
    auto putCounter = [&counters](const char *key, uint64_t value) {
        counters.set(key, JsonValue::integer(static_cast<int64_t>(value)));
    };
    putCounter("sops", c.sops);
    putCounter("spikes", c.spikes);
    putCounter("evals", c.evals);
    putCounter("ticksRun", c.ticksRun);
    putCounter("sopsBatched", c.sopsBatched);
    putCounter("evalsBatched", c.evalsBatched);
    putCounter("evalsStochBatched", c.evalsStochBatched);
    putCounter("selfEventCompactions", c.selfEventCompactions);
    out.set("counters", std::move(counters));
}

bool
Core::restoreState(const JsonValue &in)
{
    if (in.type() != JsonValue::Type::Object)
        return false;
    const uint32_t n = cfg_.geom.numNeurons;
    for (const char *key : {"v", "doneThrough", "schedFire", "selfEvents",
                            "rng", "sched", "xbarOverrides", "counters"})
        if (!in.has(key))
            return false;
    const JsonValue &v = in.at("v");
    const JsonValue &done = in.at("doneThrough");
    const JsonValue &fire = in.at("schedFire");
    if (v.size() != n || done.size() != n || fire.size() != n)
        return false;
    for (uint32_t j = 0; j < n; ++j) {
        v_[j] = static_cast<int32_t>(v.at(j).asInt());
        doneThrough_[j] = static_cast<uint64_t>(done.at(j).asInt());
        int64_t f = fire.at(j).asInt();
        scheduledFire_[j] = f < 0 ? kNoFire : static_cast<uint64_t>(f);
    }
    const JsonValue &selfEvents = in.at("selfEvents");
    if (selfEvents.size() % 2 != 0)
        return false;
    selfEvents_.clear();
    selfEvents_.reserve(selfEvents.size() / 2);
    for (size_t i = 0; i < selfEvents.size(); i += 2) {
        auto tick = static_cast<uint64_t>(selfEvents.at(i).asInt());
        auto neuron =
            static_cast<uint32_t>(selfEvents.at(i + 1).asInt());
        if (neuron >= n)
            return false;
        selfEvents_.emplace_back(tick, neuron);
    }
    selfEventsStale_ =
        static_cast<uint64_t>(in.getInt("selfEventsStale", 0));
    int64_t mode = in.getInt("mode", 0);
    if (mode < 0 || mode > 2)
        return false;
    mode_ = static_cast<Mode>(mode);
    const JsonValue &rng = in.at("rng");
    rng_.restoreState(static_cast<uint16_t>(rng.getInt("state", 0)),
                      static_cast<uint64_t>(rng.getInt("draws", 0)));
    if (!sched_.restoreState(in.at("sched")))
        return false;
    revertXbarOverrides();
    const JsonValue &overrides = in.at("xbarOverrides");
    for (size_t i = 0; i < overrides.size(); ++i) {
        const JsonValue &o = overrides.at(i);
        auto axon = static_cast<uint32_t>(o.getInt("axon", 0));
        auto word = static_cast<uint32_t>(o.getInt("word", 0));
        uint64_t bits = 0;
        if (axon >= cfg_.geom.numAxons ||
            word >= (cfg_.geom.numNeurons + 63) / 64 ||
            !u64FromHex(o.getString("bits", ""), bits))
            return false;
        applyStuckWord(axon, word, bits);
    }
    const JsonValue &counters = in.at("counters");
    counters_ = CoreCounters{};
    counters_.sops = static_cast<uint64_t>(counters.getInt("sops", 0));
    counters_.spikes =
        static_cast<uint64_t>(counters.getInt("spikes", 0));
    counters_.evals = static_cast<uint64_t>(counters.getInt("evals", 0));
    counters_.ticksRun =
        static_cast<uint64_t>(counters.getInt("ticksRun", 0));
    counters_.sopsBatched =
        static_cast<uint64_t>(counters.getInt("sopsBatched", 0));
    counters_.evalsBatched =
        static_cast<uint64_t>(counters.getInt("evalsBatched", 0));
    counters_.evalsStochBatched =
        static_cast<uint64_t>(counters.getInt("evalsStochBatched", 0));
    counters_.selfEventCompactions = static_cast<uint64_t>(
        counters.getInt("selfEventCompactions", 0));
    // Per-tick scratch is clean between ticks by invariant; make that
    // true regardless of what state this core was in before restore.
    denseList_.clear();
    for (uint32_t j = 0; j < n; ++j)
        if (cls_[j] == UpdateClass::Dense)
            denseList_.push_back(j);
    evalMask_.reset();
    firedBits_.reset();
    detEvalScratch_.reset();
    touched_.reset();
    fallback_.reset();
    return true;
}

} // namespace nscs
