#include "core/core.hh"

#include <algorithm>
#include <bit>
#include <chrono>

#include "util/logging.hh"

namespace nscs {

Core::Core(CoreConfig cfg, uint32_t instances)
    : cfg_(std::move(cfg)),
      xbar_(cfg_.xbarRows, cfg_.geom.numNeurons),
      sched_(cfg_.geom.delaySlots, cfg_.geom.numAxons, instances),
      evalMask_(cfg_.geom.numNeurons)
{
    validateCoreConfig(cfg_, "Core");
    NSCS_ASSERT(instances >= 1, "core needs >= 1 instance");
    const uint32_t n = cfg_.geom.numNeurons;
    cls_.resize(n);
    for (uint32_t j = 0; j < n; ++j)
        cls_[j] = classifyNeuron(cfg_.neurons[j]);
    // Lanes must exist before buildLanes(): threshold calibration
    // probes the real integrate paths through lane 0.
    inst_.init(instances, n);
    buildLanes();
    buildUpdateCohorts();
    reset();
}

/**
 * Project the update-relevant NeuronParams fields into SoA lanes and
 * split the population into the deterministic update cohort (zero
 * per-tick draws, batchable) and the stochastic cohort (scalar).
 * Deterministic neurons are additionally grouped into maximal
 * ascending runs so the homogeneous case — the architectural
 * steady state — is one flat kernel sweep over the whole core.
 */
void
Core::buildUpdateCohorts()
{
    const uint32_t n = cfg_.geom.numNeurons;
    update_.build(cfg_.neurons);
    detEvalScratch_ = BitVec(n);
    detRuns_.clear();
    stochUpdList_.clear();
    uint32_t j = 0;
    while (j < n) {
        if (update_.deterministic.test(j)) {
            uint32_t b = j;
            while (j < n && update_.deterministic.test(j))
                ++j;
            detRuns_.emplace_back(b, j);
        } else {
            stochUpdList_.push_back(j);
            ++j;
        }
    }
}

void
Core::buildLanes()
{
    const uint32_t num_neurons = cfg_.geom.numNeurons;
    const uint32_t num_axons = cfg_.geom.numAxons;
    const size_t words = (num_neurons + 63) / 64;

    // Enough carry-save bit-planes to count up to num_axons events
    // per (neuron, type) without overflow.
    planeCount_ = static_cast<uint32_t>(std::bit_width(num_axons));

    vLo_.resize(num_neurons);
    vHi_.resize(num_neurons);
    for (uint32_t j = 0; j < num_neurons; ++j) {
        PotentialRange r = potentialRange(cfg_.neurons[j]);
        vLo_[j] = r.lo;
        vHi_[j] = r.hi;
    }

    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        TypeLane &lane = lanes_[g];
        lane.axons = BitVec(num_axons);
        lane.stoch = BitVec(num_neurons);
        lane.weight.assign(num_neurons, 0);
        lane.present = false;
        for (uint32_t j = 0; j < num_neurons; ++j) {
            lane.weight[j] = cfg_.neurons[j].synWeight[g];
            if (cfg_.neurons[j].synStochastic[g])
                lane.stoch.set(j);
        }
    }
    for (uint32_t a = 0; a < num_axons; ++a) {
        TypeLane &lane = lanes_[cfg_.axonType[a]];
        lane.axons.set(a);
        lane.present = true;
    }

    folds_.resize(instances());
    for (FoldScratch &f : folds_) {
        for (unsigned g = 0; g < kNumAxonTypes; ++g) {
            f.type[g].rowOr = BitVec(num_neurons);
            f.type[g].planes.assign(
                static_cast<size_t>(planeCount_) * words, 0);
            f.type[g].activeAxons = 0;
        }
        f.touched = BitVec(num_neurons);
        f.key = BitVec(num_axons);
        f.live = false;
    }
    foldUnion_ = BitVec(num_axons);
    fallback_ = BitVec(num_neurons);

    wpMinActive_ = calibrateWordParallelThreshold();
}

/**
 * Derive the scalar vs word-parallel engagement threshold.
 *
 * Small cores keep the analytic density model: scalar cost ~ events =
 * rows x density x neurons, word-parallel cost adds ~ one extraction
 * per touched neuron, so break-even sits at roughly 10 / density
 * active rows.  Cores large enough for the path choice to matter are
 * micro-calibrated instead: synthetic active slots of doubling
 * activity are timed through the *real* scalar and word-parallel
 * integrate paths and the measured crossover wins.  Everything the
 * probes mutate (lane-0 potentials, counters, PRNG, plane scratch) is
 * re-initialised by reset() immediately after construction, and the
 * threshold only selects between two bit-identical paths, so
 * calibration cannot perturb architectural results.
 */
uint32_t
Core::calibrateWordParallelThreshold()
{
    const uint32_t num_axons = cfg_.geom.numAxons;
    const uint32_t num_neurons = cfg_.geom.numNeurons;
    const uint64_t synapses = xbar_.synapseCount();
    // An empty crossbar never integrates; the threshold is moot.
    if (synapses == 0)
        return num_axons + 1;
    const double density = static_cast<double>(synapses) /
        (static_cast<double>(num_axons) * num_neurons);
    const uint32_t model = std::max<uint32_t>(
        1, static_cast<uint32_t>(10.0 / density));

    // Below this size one integrate costs well under the timer
    // granularity and the path choice is in the noise; per-core
    // probing would dominate construction instead of helping.
    if (static_cast<uint64_t>(num_axons) * num_neurons < (1u << 14))
        return std::min(model, num_axons + 1);

    std::vector<uint32_t> rows;
    for (uint32_t a = 0; a < num_axons; ++a)
        if (xbar_.axonDegree(a) > 0)
            rows.push_back(a);
    if (rows.size() < 2)
        return std::min(model, num_axons + 1);

    InstanceLane &L0 = inst_[0];
    BitVec active(num_axons);
    auto probe = [&](bool word_parallel) {
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            // Re-zero the potentials so every rep measures the
            // steady-state path: drifting values would saturate at
            // the rails and push later word-parallel reps onto the
            // fallback replay, biasing the crossover.
            std::fill(L0.v.begin(), L0.v.end(), 0);
            // Construction-time perf calibration: picks between two
            // bit-identical integrate paths, so host timing cannot
            // change architectural output (see the method comment).
            // nscs-lint: allow(wall-clock): calibration, output-neutral
            auto t0 = std::chrono::steady_clock::now();
            if (word_parallel) {
                integrateWordParallel(L0, 0, active, 0, false);
                // Charge the fold-scratch teardown to the
                // word-parallel probe: a per-tick run pays it once
                // per distinct pattern, and letting reps 2..3 reuse
                // the cached planes would measure apply-only cost.
                clearIntegratePlanes();
            } else {
                integrateScalar(L0, active, 0, false);
            }
            // nscs-lint: allow(wall-clock): see t0 above.
            auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best, std::chrono::duration<double>(t1 - t0).count());
        }
        return best;
    };

    // Doubling sweep over active-row counts, capped so a sweep that
    // never finds the crossover stays a bounded fraction of
    // construction cost.  The first k where the word-parallel probe
    // clearly wins (scalar time measurable, 10% margin — a 0-vs-0
    // timer-granularity tie must not hand word-parallel the verdict)
    // brackets the crossover in (k/2, k].
    const uint32_t k_max = std::min<uint32_t>(
        static_cast<uint32_t>(rows.size()), 64);
    uint32_t set_rows = 0;
    uint32_t prev = 0;
    for (uint32_t k = 1; set_rows < k_max; k *= 2) {
        k = std::min<uint32_t>(k, k_max);
        while (set_rows < k)
            active.set(rows[set_rows++]);
        double wp = probe(true);
        double sc = probe(false);
        if (sc > 0.0 && wp * 10 <= sc * 9) {
            // Crossover is in (prev, k].  Pick the density model when
            // it lands inside the bracket, else the conservative
            // upper end: at the crossover both paths cost the same,
            // so erring toward scalar never loses and keeps
            // break-even slots off the extraction overhead.
            uint32_t pick = (model > prev && model <= k) ? model : k;
            return std::max<uint32_t>(1, pick);
        }
        prev = k;
        if (k == k_max)
            break;
    }
    // Word-parallel never won inside the probe budget: scalar is
    // sticky at least through prev rows, so keep the analytic model
    // where it is more conservative and stay past the probed range
    // otherwise.
    return static_cast<uint32_t>(std::min<uint64_t>(
        std::max<uint64_t>(model, 2ull * prev),
        static_cast<uint64_t>(num_axons) + 1));
}

void
Core::reset()
{
    const uint32_t n = cfg_.geom.numNeurons;
    revertXbarOverrides();
    denseList_.clear();
    for (uint32_t j = 0; j < n; ++j)
        if (cls_[j] == UpdateClass::Dense)
            denseList_.push_back(j);
    for (InstanceLane &L : inst_.lanes) {
        L.selfEvents.clear();
        L.selfEventsStale = 0;
        for (uint32_t j = 0; j < n; ++j) {
            // Architectural reset contract: the negative-threshold
            // rule is applied once to the configured initial
            // potential.
            L.v[j] = applyNegativeRule(
                cfg_.neurons[j].initialPotential, cfg_.neurons[j]);
            L.doneThrough[j] = 0;
            L.scheduledFire[j] = kNoFire;
            if (cls_[j] != UpdateClass::Dense) {
                auto delta = nextFireDelta(L.v[j], cfg_.neurons[j]);
                if (delta) {
                    L.scheduledFire[j] = *delta - 1;
                    pushSelfEvent(L, L.scheduledFire[j], j);
                }
            }
        }
        L.firedBits.reset();
        L.rng.reset(cfg_.rngSeed);
    }
    detEvalScratch_.reset();
    sched_.reset();
    evalMask_.reset();
    clearIntegratePlanes();
    counters_ = CoreCounters{};
    mode_ = Mode::Unset;
}

void
Core::deposit(uint64_t delivery_tick, uint32_t axon, uint32_t inst)
{
    NSCS_ASSERT(axon < cfg_.geom.numAxons,
                "deposit to axon %u of %u", axon, cfg_.geom.numAxons);
    NSCS_ASSERT(inst < instances(),
                "deposit to instance %u of %u", inst, instances());
    sched_.deposit(delivery_tick, axon, inst);
}

void
Core::commitMode(Mode m)
{
    if (mode_ == Mode::Unset)
        mode_ = m;
    NSCS_ASSERT(mode_ == m,
                "core evaluated with mixed strategies; reset() first");
}

void
Core::catchUp(InstanceLane &L, uint32_t n, uint64_t t)
{
    uint64_t done = L.doneThrough[n];
    if (done >= t)
        return;
    NSCS_ASSERT(cls_[n] != UpdateClass::Dense,
                "Dense neuron %u fell behind (done %llu < t %llu)", n,
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(t));
    L.v[n] = leakForward(L.v[n], cfg_.neurons[n], t - done);
    L.doneThrough[n] = t;
}

void
Core::integrateActiveAxons(InstanceLane &L, uint32_t inst, uint64_t t,
                           bool sparse)
{
    if (sched_.slotEmpty(t, inst))
        return;
    const BitVec &active = sched_.slot(t, inst);
    if (wordParallel_ && sched_.slotCount(t, inst) >= wpMinActive_)
        integrateWordParallel(L, inst, active, t, sparse);
    else
        integrateScalar(L, active, t, sparse);
    // The slot is NOT cleared here: later instance lanes still read
    // their slots this tick, so all of this tick's slot planes drop
    // together in finishTickIntegrate().
}

/**
 * The architectural reference order: one integrateSynapse call per
 * (axon, neuron) event, axons ascending, neurons ascending within a
 * row.  The word-parallel path below must match this bit for bit.
 */
void
Core::integrateScalar(InstanceLane &L, const BitVec &active,
                      uint64_t t, bool sparse)
{
    active.forEachSet([this, &L, t, sparse](size_t a) {
        unsigned g = cfg_.axonType[a];
        const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
        row.forEachSet([this, &L, t, sparse, g](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (sparse) {
                if (cls_[n] != UpdateClass::Dense)
                    catchUp(L, n, t);
                evalMask_.set(n);
            }
            L.v[n] = integrateSynapse(L.v[n], cfg_.neurons[n], g,
                                      &L.rng);
            ++counters_.sops;
        });
    });
}

/**
 * Phase 1 of the word-parallel integrate: fold the active-axon
 * pattern against each axon-type partition with 64-bit word
 * operations.  The OR of active rows gives the touched-neuron mask,
 * and carry-save bit-plane addition of the same rows gives per-neuron
 * event counts per type (a column popcount computed 64 columns at a
 * time).  The fold depends only on the pattern and the (shared)
 * crossbar — never on lane state.  This is the single-lane builder;
 * batched ticks fill every lane at once through foldTickPlanes.
 */
void
Core::buildIntegratePlanes(FoldScratch &f, const BitVec &active)
{
    const size_t words = f.touched.words().size();
    f.touched.reset();
    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        const TypeLane &lane = lanes_[g];
        TypeFold &tf = f.type[g];
        tf.activeAxons = 0;
        if (!lane.present || !active.intersects(lane.axons))
            continue;
        active.forEachSetMasked(lane.axons, [this, &tf,
                                             words](size_t a) {
            const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
            ++tf.activeAxons;
            row.forEachSetWord([&tf, words](size_t w, uint64_t bits) {
                tf.rowOr.orWordAt(w, bits);
                // Carry-save add: plane p holds bit p of every
                // column's running count.
                uint64_t carry = bits;
                size_t idx = w;
                while (carry) {
                    uint64_t old = tf.planes[idx];
                    tf.planes[idx] = old ^ carry;
                    carry &= old;
                    idx += words;
                }
            });
        });
        f.touched.orAccumulate(tf.rowOr);
    }
    f.key = active;
    f.live = true;
}

/**
 * Transposed fold for a batched tick: one pass over the union of
 * every word-parallel lane's active axons, fetching each crossbar
 * row once and carry-saving it into the fold of every lane whose
 * slot carries that axon.  Produces, per lane, exactly the planes
 * buildIntegratePlanes would (carry-save addition and the touched
 * OR are order-independent), while the row traversal — the
 * shared-read part of the integrate — is paid once per tick instead
 * of once per lane.  Lanes below the word-parallel threshold are
 * left un-folded; integrateActiveAxons routes them to the scalar
 * path by the same test.  Lane chunks of 64 keep the per-axon lane
 * set in one word without capping the instance count.
 */
void
Core::foldTickPlanes(uint64_t t)
{
    if (!wordParallel_)
        return;
    const uint32_t total = instances();
    for (uint32_t base = 0; base < total; base += 64) {
        const uint32_t chunk = std::min<uint32_t>(64, total - base);
        uint64_t wp_mask = 0;
        const uint64_t *slots[64];
        for (uint32_t k = 0; k < chunk; ++k) {
            const uint32_t inst = base + k;
            if (sched_.slotEmpty(t, inst) ||
                sched_.slotCount(t, inst) < wpMinActive_)
                continue;
            wp_mask |= 1ull << k;
            slots[k] = sched_.slot(t, inst).words().data();
            FoldScratch &f = folds_[inst];
            f.touched.reset();
            for (unsigned g = 0; g < kNumAxonTypes; ++g)
                f.type[g].activeAxons = 0;
            f.key = sched_.slot(t, inst);
            f.live = true;
        }
        if (!wp_mask)
            continue;
        if (std::popcount(wp_mask) > 1)
            counters_.planeReuses +=
                static_cast<uint64_t>(std::popcount(wp_mask)) - 1;

        foldUnion_.reset();
        for (uint64_t m = wp_mask; m;) {
            const auto k = static_cast<unsigned>(__builtin_ctzll(m));
            m &= m - 1;
            foldUnion_.orAccumulate(sched_.slot(t, base + k));
        }

        const size_t words = evalMask_.words().size();
        foldUnion_.forEachSet([&](size_t a) {
            const size_t aw = a >> 6;
            const uint64_t abit = 1ull << (a & 63);
            uint64_t present = 0;
            for (uint64_t m = wp_mask; m;) {
                const auto k =
                    static_cast<unsigned>(__builtin_ctzll(m));
                m &= m - 1;
                if (slots[k][aw] & abit)
                    present |= 1ull << k;
            }
            const unsigned g = cfg_.axonType[a];
            const BitVec &row = xbar_.row(static_cast<uint32_t>(a));
            row.forEachSetWord([&](size_t w, uint64_t bits) {
                for (uint64_t m = present; m;) {
                    const auto k =
                        static_cast<unsigned>(__builtin_ctzll(m));
                    m &= m - 1;
                    FoldScratch &f = folds_[base + k];
                    TypeFold &tf = f.type[g];
                    tf.rowOr.orWordAt(w, bits);
                    f.touched.orWordAt(w, bits);
                    uint64_t carry = bits;
                    size_t idx = w;
                    while (carry) {
                        uint64_t old = tf.planes[idx];
                        tf.planes[idx] = old ^ carry;
                        carry &= old;
                        idx += words;
                    }
                }
            });
            for (uint64_t m = present; m;) {
                const auto k =
                    static_cast<unsigned>(__builtin_ctzll(m));
                m &= m - 1;
                ++folds_[base + k].type[g].activeAxons;
            }
        });
    }
}

/** Drop one lane's fold scratch, word-wise over the words it
 *  touched. */
void
Core::clearFold(FoldScratch &f)
{
    if (!f.live)
        return;
    const size_t words = f.touched.words().size();
    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        TypeFold &tf = f.type[g];
        if (!tf.activeAxons)
            continue;
        const auto planes_used = static_cast<unsigned>(
            std::bit_width(tf.activeAxons));
        tf.rowOr.forEachSetWord([&tf, words,
                                 planes_used](size_t w, uint64_t) {
            size_t idx = w;
            for (unsigned p = 0; p < planes_used; ++p, idx += words)
                tf.planes[idx] = 0;
        });
        tf.rowOr.reset();
        tf.activeAxons = 0;
    }
    f.touched.reset();
    f.live = false;
}

/** Drop every lane's fold scratch. */
void
Core::clearIntegratePlanes()
{
    for (FoldScratch &f : folds_)
        clearFold(f);
}

/**
 * Word-parallel synaptic integration.
 *
 * Phase 1 (buildIntegratePlanes above) folds the active-axon slot
 * into (touched mask, count planes) — or reuses the lane's fold when
 * the batched per-tick pass (foldTickPlanes) already built it.
 *
 * Phase 2 applies deterministic synapses as one batched
 * v += count * weight add per type.  Equivalence argument: the
 * scalar path is a chain of saturating adds in (axon, neuron)
 * order.  Addition is commutative, so the chain equals the batched
 * sum whenever no partial sum can leave the register rails; the
 * guard checks the worst-case excursion (all positive contributions
 * first / all negative first brackets every interleaving).  Neurons
 * that fail the guard — mixed signs near the rails — or that have a
 * stochastic synapse in play fall back to the scalar path.
 *
 * Phase 3 replays the fallback neurons event by event in the
 * architectural order.  Deterministic events never draw from the
 * PRNG, so batching them cannot shift the draw positions of the
 * stochastic events replayed here: the draw order stays axon-major,
 * which is the cross-engine equivalence contract.
 */
void
Core::integrateWordParallel(InstanceLane &L, uint32_t inst,
                            const BitVec &active, uint64_t t,
                            bool sparse)
{
    FoldScratch &f = folds_[inst];
    const size_t words = f.touched.words().size();

    if (!f.live || !(f.key == active)) {
        clearFold(f);
        buildIntegratePlanes(f, active);
    }
    if (sparse)
        evalMask_.orAccumulate(f.touched);

    // Plane p of type g can be nonzero only once 2^p rows were
    // folded; bound extraction accordingly.
    unsigned planes_used[kNumAxonTypes];
    for (unsigned g = 0; g < kNumAxonTypes; ++g)
        planes_used[g] = static_cast<unsigned>(
            std::bit_width(f.type[g].activeAxons));

    // Phase 2: batch-apply deterministic events per touched neuron;
    // divert saturation-risk and stochastic targets to the fallback
    // set.
    bool any_fallback = false;
    f.touched.forEachSetWord([&](size_t w, uint64_t word) {
        uint64_t bits = word;
        while (bits) {
            unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            auto n = static_cast<uint32_t>(w * 64 + b);
            if (sparse && cls_[n] != UpdateClass::Dense)
                catchUp(L, n, t);
            int64_t delta = 0, pos = 0, neg = 0;
            uint64_t events = 0;
            bool stochastic = false;
            for (unsigned g = 0; g < kNumAxonTypes; ++g) {
                const TypeFold &tf = f.type[g];
                if (!tf.activeAxons ||
                    !((tf.rowOr.words()[w] >> b) & 1))
                    continue;
                if ((lanes_[g].stoch.words()[w] >> b) & 1) {
                    stochastic = true;
                    break;
                }
                uint64_t cnt = 0;
                size_t idx = w;
                for (unsigned p = 0; p < planes_used[g];
                     ++p, idx += words)
                    cnt |= ((tf.planes[idx] >> b) & 1) << p;
                events += cnt;
                int64_t d = static_cast<int64_t>(cnt) *
                    lanes_[g].weight[n];
                delta += d;
                if (d > 0)
                    pos += d;
                else
                    neg += d;
            }
            if (stochastic) {
                fallback_.set(n);
                any_fallback = true;
                continue;
            }
            int64_t v0 = L.v[n];
            if (v0 + pos <= vHi_[n] && v0 + neg >= vLo_[n]) {
                L.v[n] = static_cast<int32_t>(v0 + delta);
                counters_.sops += events;
                counters_.sopsBatched += events;
            } else {
                fallback_.set(n);
                any_fallback = true;
            }
        }
    });

    // Phase 3: event-by-event replay of the fallback neurons in the
    // architectural (axon-major) order; the only PRNG consumer.
    if (any_fallback) {
        active.forEachSet([this, &L](size_t a) {
            unsigned g = cfg_.axonType[a];
            xbar_.row(static_cast<uint32_t>(a)).forEachSetMasked(
                fallback_, [this, &L, g](size_t j) {
                    auto n = static_cast<uint32_t>(j);
                    L.v[n] = integrateSynapse(L.v[n], cfg_.neurons[n],
                                              g, &L.rng);
                    ++counters_.sops;
                });
        });
        fallback_.reset();
    }
    // The lane's fold stays live until finishTickIntegrate() drops
    // every lane's scratch at end of tick.
}

/** End-of-tick teardown after every instance lane has evaluated:
 *  drop the cached fold scratch and this tick's slot planes. */
void
Core::finishTickIntegrate(uint64_t t)
{
    clearIntegratePlanes();
    sched_.clearTickSlots(t);
}

/** Dense (every-neuron) evaluation of one instance lane: integrate
 *  its slot, then update all neurons, leaving fires in L.firedBits
 *  for emitFired. */
void
Core::evalDenseLane(InstanceLane &L, uint32_t inst, uint64_t t)
{
    integrateActiveAxons(L, inst, t, false);
    const uint32_t n = cfg_.geom.numNeurons;
    if (!wordParallelUpdate_) {
        // Scalar reference: one endOfTickUpdate per neuron, ascending.
        for (uint32_t j = 0; j < n; ++j) {
            if (endOfTickUpdate(L.v[j], cfg_.neurons[j], &L.rng))
                L.firedBits.set(j);
            ++counters_.evals;
        }
        return;
    }
    // Batched: the deterministic cohort consumes no draws, so running
    // its runs through the SoA kernel first and the stochastic cohort
    // after (ascending) preserves the reference LFSR stream; the
    // stochastic cohort itself batches through precomputed draw
    // outcomes — the draws are position-only, so drawing them all up
    // front in the per-neuron scalar order leaves the stream
    // untouched.  emitFired then merges both cohorts' fires in
    // ascending order.
    for (const auto &[b, e] : detRuns_)
        batchUpdateRange(update_, L.v.data(), b, e, L.firedBits);
    const auto stoch_n = static_cast<uint64_t>(stochUpdList_.size());
    if (stochUpdateBatch_ && stoch_n != 0) {
        precomputeStochDraws(update_, stochUpdList_, L.rng,
                             stochDraws_);
        for (uint32_t j : stochUpdList_) {
            if (batchUpdateStochOne(update_, stochDraws_, L.v.data(),
                                    j))
                L.firedBits.set(j);
        }
        counters_.evalsBatched += stoch_n;
        counters_.evalsStochBatched += stoch_n;
    } else {
        for (uint32_t j : stochUpdList_) {
            if (endOfTickUpdate(L.v[j], cfg_.neurons[j], &L.rng))
                L.firedBits.set(j);
        }
    }
    counters_.evals += n;
    counters_.evalsBatched += n - stoch_n;
}

void
Core::tickDense(uint64_t t, std::vector<uint32_t> &fired)
{
    NSCS_ASSERT(instances() == 1,
                "plain tickDense on a %u-instance core; use the "
                "InstanceFire overload", instances());
    commitMode(Mode::Dense);
    ++counters_.ticksRun;
    InstanceLane &L = inst_[0];
    evalDenseLane(L, 0, t);
    finishTickIntegrate(t);
    emitFired(L, fired);
}

void
Core::tickDense(uint64_t t, std::vector<InstanceFire> &fired)
{
    commitMode(Mode::Dense);
    ++counters_.ticksRun;
    if (instances() > 1)
        foldTickPlanes(t);
    for (uint32_t i = 0; i < instances(); ++i) {
        InstanceLane &L = inst_[i];
        evalDenseLane(L, i, t);
        emitFired(L, i, fired);
    }
    finishTickIntegrate(t);
}

/** Drain L.firedBits into @p fired in ascending index order. */
void
Core::emitFired(InstanceLane &L, std::vector<uint32_t> &fired)
{
    L.firedBits.forEachSet([this, &fired](size_t j) {
        fired.push_back(static_cast<uint32_t>(j));
        ++counters_.spikes;
    });
    L.firedBits.reset();
}

/** Drain L.firedBits as (instance, neuron) fires, ascending. */
void
Core::emitFired(InstanceLane &L, uint32_t inst,
                std::vector<InstanceFire> &fired)
{
    L.firedBits.forEachSet([this, inst, &fired](size_t j) {
        fired.push_back({inst, static_cast<uint32_t>(j)});
        ++counters_.spikes;
    });
    L.firedBits.reset();
}

void
Core::pushSelfEvent(InstanceLane &L, uint64_t tick, uint32_t n)
{
    L.selfEvents.emplace_back(tick, n);
    std::push_heap(L.selfEvents.begin(), L.selfEvents.end(),
                   std::greater<>{});
}

void
Core::popSelfEventTop(InstanceLane &L)
{
    std::pop_heap(L.selfEvents.begin(), L.selfEvents.end(),
                  std::greater<>{});
    L.selfEvents.pop_back();
}

/**
 * Record that a live heap pair just turned stale (its neuron was
 * re-predicted), and lazily rebuild the heap once stale pairs
 * outnumber live ones.  Without this, long sparse runs on
 * frequently re-predicted neurons grow the heap without bound; with
 * it, the heap holds at most ~2x the live prediction count (plus the
 * rebuild floor).
 */
void
Core::noteStaleSelfEvent(InstanceLane &L)
{
    ++L.selfEventsStale;
    if (L.selfEvents.size() < 64 ||
        L.selfEventsStale * 2 <= L.selfEvents.size())
        return;
    // Drop pairs that no longer match their neuron's prediction.  A
    // neuron re-predicted away from and then back to the same tick
    // leaves two pairs that both read live here; sort + unique
    // collapses them so the rebuilt heap holds exactly one pair per
    // outstanding prediction and the stale counter restarts from a
    // clean slate.  A sorted ascending range already satisfies the
    // min-heap property, so no make_heap is needed.
    std::erase_if(L.selfEvents, [&L](const auto &e) {
        return L.scheduledFire[e.second] != e.first;
    });
    std::sort(L.selfEvents.begin(), L.selfEvents.end());
    L.selfEvents.erase(
        std::unique(L.selfEvents.begin(), L.selfEvents.end()),
        L.selfEvents.end());
    L.selfEventsStale = 0;
    ++counters_.selfEventCompactions;
}

void
Core::scheduleSelfEvent(InstanceLane &L, uint32_t n)
{
    auto delta = nextFireDelta(L.v[n], cfg_.neurons[n]);
    uint64_t sf = delta ? L.doneThrough[n] + *delta - 1 : kNoFire;
    uint64_t old = L.scheduledFire[n];
    if (sf == old)
        return;
    L.scheduledFire[n] = sf;
    if (sf != kNoFire)
        pushSelfEvent(L, sf, n);
    // The previous prediction's pair (old, n) is still in the heap
    // and now reads stale; account for it after the push so a
    // triggered compaction sees the fresh pair as live.
    if (old != kNoFire)
        noteStaleSelfEvent(L);
}

/** Sparse evaluation of one instance lane: drain its due
 *  self-events, integrate its slot, update the evaluation set,
 *  leaving fires in L.firedBits for emitFired. */
void
Core::evalSparseLane(InstanceLane &L, uint32_t inst, uint64_t t)
{
    evalMask_.reset();

    // Due self-events join the evaluation set.  A popped live pair is
    // consumed: clearing scheduledFire keeps the near-invariant
    // that a non-kNoFire prediction has one live pair in the heap
    // (re-predicting back to a previously-staled tick can transiently
    // duplicate a live pair; the duplicate drains here as stale and
    // compaction collapses it, so the stale accounting only defers,
    // never corrupts).
    while (!L.selfEvents.empty() && L.selfEvents.front().first <= t) {
        auto [tick, n] = L.selfEvents.front();
        if (L.scheduledFire[n] != tick) {
            popSelfEventTop(L);  // stale prediction
            if (L.selfEventsStale > 0)
                --L.selfEventsStale;
            continue;
        }
        NSCS_ASSERT(tick == t,
                    "missed self-event for neuron %u at tick %llu "
                    "(now %llu)", n,
                    static_cast<unsigned long long>(tick),
                    static_cast<unsigned long long>(t));
        popSelfEventTop(L);
        L.scheduledFire[n] = kNoFire;
        evalMask_.set(n);
    }

    integrateActiveAxons(L, inst, t, true);

    for (uint32_t n : denseList_)
        evalMask_.set(n);

    if (!wordParallelUpdate_) {
        // Scalar reference: ascending over the full evaluation set.
        evalMask_.forEachSet([this, &L, t](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (cls_[n] != UpdateClass::Dense)
                catchUp(L, n, t);
            if (endOfTickUpdate(L.v[n], cfg_.neurons[n], &L.rng))
                L.firedBits.set(n);
            ++counters_.evals;
            L.doneThrough[n] = t + 1;
            if (cls_[n] != UpdateClass::Dense)
                scheduleSelfEvent(L, n);
        });
        return;
    }

    // Batched: evalMask_ ∩ deterministic goes through the SoA kernel
    // (zero draws), the stochastic remainder runs scalar in ascending
    // order — the reference draw order, since deterministic neurons
    // never draw.  Fired bits from both cohorts merge ascending.
    detEvalScratch_ = evalMask_;
    detEvalScratch_ &= update_.deterministic;
    detEvalScratch_.forEachSet([this, &L, t](size_t j) {
        auto n = static_cast<uint32_t>(j);
        if (cls_[n] != UpdateClass::Dense)
            catchUp(L, n, t);
    });
    uint64_t batched =
        batchUpdateMasked(update_, L.v.data(), detEvalScratch_,
                          L.firedBits);
    counters_.evals += batched;
    counters_.evalsBatched += batched;
    detEvalScratch_.forEachSet([this, &L, t](size_t j) {
        auto n = static_cast<uint32_t>(j);
        L.doneThrough[n] = t + 1;
        if (cls_[n] != UpdateClass::Dense)
            scheduleSelfEvent(L, n);
    });

    // The remainder is exactly the drawsPerTick neurons, which
    // always classify Dense: never skipped (no catch-up), never
    // self-predicted, and in evalMask_ every tick — so it equals
    // stochUpdList_ and batches through precomputed draws exactly as
    // in the dense strategy.
    const auto stoch_n = static_cast<uint64_t>(stochUpdList_.size());
    if (stochUpdateBatch_ && stoch_n != 0) {
        precomputeStochDraws(update_, stochUpdList_, L.rng,
                             stochDraws_);
        for (uint32_t j : stochUpdList_) {
            if (batchUpdateStochOne(update_, stochDraws_, L.v.data(),
                                    j))
                L.firedBits.set(j);
            L.doneThrough[j] = t + 1;
        }
        counters_.evals += stoch_n;
        counters_.evalsBatched += stoch_n;
        counters_.evalsStochBatched += stoch_n;
    } else {
        evalMask_.forEachSetMasked(update_.stochastic,
                                   [this, &L, t](size_t j) {
            auto n = static_cast<uint32_t>(j);
            if (endOfTickUpdate(L.v[n], cfg_.neurons[n], &L.rng))
                L.firedBits.set(n);
            ++counters_.evals;
            L.doneThrough[n] = t + 1;
        });
    }
}

void
Core::tickSparse(uint64_t t, std::vector<uint32_t> &fired)
{
    NSCS_ASSERT(instances() == 1,
                "plain tickSparse on a %u-instance core; use the "
                "InstanceFire overload", instances());
    commitMode(Mode::Sparse);
    ++counters_.ticksRun;
    InstanceLane &L = inst_[0];
    evalSparseLane(L, 0, t);
    finishTickIntegrate(t);
    emitFired(L, fired);
}

void
Core::tickSparse(uint64_t t, std::vector<InstanceFire> &fired)
{
    commitMode(Mode::Sparse);
    ++counters_.ticksRun;
    if (instances() > 1)
        foldTickPlanes(t);
    for (uint32_t i = 0; i < instances(); ++i) {
        InstanceLane &L = inst_[i];
        evalSparseLane(L, i, t);
        emitFired(L, i, fired);
    }
    finishTickIntegrate(t);
}

std::optional<uint64_t>
Core::nextSelfEvent()
{
    std::optional<uint64_t> best;
    for (InstanceLane &L : inst_.lanes) {
        while (!L.selfEvents.empty()) {
            auto [tick, n] = L.selfEvents.front();
            if (L.scheduledFire[n] != tick) {
                popSelfEventTop(L);
                if (L.selfEventsStale > 0)
                    --L.selfEventsStale;
                continue;
            }
            if (!best || tick < *best)
                best = tick;
            break;
        }
    }
    return best;
}

size_t
Core::selfEventQueueDepth() const
{
    size_t depth = 0;
    for (const InstanceLane &L : inst_.lanes)
        depth += L.selfEvents.size();
    return depth;
}

const CoreCounters &
Core::counters() const
{
    uint64_t draws = 0;
    for (const InstanceLane &L : inst_.lanes)
        draws += L.rng.draws();
    counters_.rngDraws = draws;
    counters_.deposits = sched_.deposits();
    counters_.collisions = sched_.collisions();
    return counters_;
}

int32_t
Core::settledPotential(uint32_t n, uint64_t t, uint32_t inst) const
{
    NSCS_ASSERT(n < cfg_.geom.numNeurons, "neuron %u out of range", n);
    NSCS_ASSERT(inst < instances(), "instance %u of %u", inst,
                instances());
    const InstanceLane &L = inst_[inst];
    if (mode_ != Mode::Sparse)
        return L.v[n];
    uint64_t done = L.doneThrough[n];
    if (done >= t || cls_[n] == UpdateClass::Dense)
        return L.v[n];
    return leakForward(L.v[n], cfg_.neurons[n], t - done);
}

size_t
Core::footprintBytes() const
{
    size_t bytes = sizeof(Core);
    bytes += cfg_.footprintBytes();
    bytes += xbar_.footprintBytes();
    bytes += sched_.footprintBytes();
    bytes += inst_.footprintBytes();
    bytes += cls_.capacity() * sizeof(UpdateClass);
    bytes += denseList_.capacity() * sizeof(uint32_t);
    bytes += evalMask_.footprintBytes();
    for (const TypeLane &lane : lanes_) {
        bytes += lane.axons.footprintBytes();
        bytes += lane.stoch.footprintBytes();
        bytes += lane.weight.capacity() * sizeof(int32_t);
    }
    for (const FoldScratch &f : folds_) {
        for (const TypeFold &tf : f.type) {
            bytes += tf.rowOr.footprintBytes();
            bytes += tf.planes.capacity() * sizeof(uint64_t);
        }
        bytes += f.touched.footprintBytes();
        bytes += f.key.footprintBytes();
    }
    bytes += folds_.capacity() * sizeof(FoldScratch);
    bytes += foldUnion_.footprintBytes();
    bytes += vLo_.capacity() * sizeof(int32_t);
    bytes += vHi_.capacity() * sizeof(int32_t);
    bytes += fallback_.footprintBytes();
    bytes += update_.footprintBytes();
    bytes += detRuns_.capacity() *
        sizeof(std::pair<uint32_t, uint32_t>);
    bytes += stochUpdList_.capacity() * sizeof(uint32_t);
    bytes += stochDraws_.footprintBytes();
    bytes += detEvalScratch_.footprintBytes();
    bytes += xbarOverrides_.capacity() * sizeof(XbarOverride);
    return bytes;
}

void
Core::applyStuckWord(uint32_t axon, uint32_t word, uint64_t bits)
{
    NSCS_ASSERT(axon < cfg_.geom.numAxons, "stuck word on axon %u of %u",
                axon, cfg_.geom.numAxons);
    NSCS_ASSERT(word < (cfg_.geom.numNeurons + 63) / 64,
                "stuck word index %u out of range", word);
    for (XbarOverride &ov : xbarOverrides_) {
        if (ov.axon == axon && ov.word == word) {
            ov.bits = bits;
            xbar_.setRowWord(axon, word, bits);
            return;
        }
    }
    XbarOverride ov;
    ov.axon = axon;
    ov.word = word;
    ov.bits = bits;
    ov.original = xbar_.row(axon).words()[word];
    xbarOverrides_.push_back(ov);
    xbar_.setRowWord(axon, word, bits);
}

void
Core::flipPotentialBit(uint32_t n, uint32_t bit, uint32_t inst)
{
    NSCS_ASSERT(n < cfg_.geom.numNeurons, "SEU on neuron %u of %u", n,
                cfg_.geom.numNeurons);
    NSCS_ASSERT(inst < instances(), "SEU on instance %u of %u", inst,
                instances());
    InstanceLane &L = inst_[inst];
    int32_t v = L.v[n] ^ static_cast<int32_t>(1u << (bit & 31));
    L.v[n] = std::clamp(v, vLo_[n], vHi_[n]);
}

void
Core::revertXbarOverrides()
{
    for (const XbarOverride &ov : xbarOverrides_)
        xbar_.setRowWord(ov.axon, ov.word, ov.original);
    xbarOverrides_.clear();
}

void
Core::saveState(JsonValue &out) const
{
    out = JsonValue::object();
    auto intArray = [](const auto &src, auto proj) {
        JsonValue arr = JsonValue::array();
        for (const auto &x : src)
            arr.append(JsonValue::integer(proj(x)));
        return arr;
    };
    out.set("instances", JsonValue::integer(instances()));
    JsonValue lanes = JsonValue::array();
    for (const InstanceLane &L : inst_.lanes) {
        JsonValue lj = JsonValue::object();
        lj.set("v", intArray(L.v, [](int32_t x) {
            return static_cast<int64_t>(x);
        }));
        lj.set("doneThrough", intArray(L.doneThrough, [](uint64_t x) {
            return static_cast<int64_t>(x);
        }));
        // kNoFire (~0ull) travels as -1: JSON integers are int64.
        lj.set("schedFire", intArray(L.scheduledFire, [](uint64_t x) {
            return x == kNoFire ? int64_t{-1}
                                : static_cast<int64_t>(x);
        }));
        // The raw heap array, verbatim: pop_heap order depends on the
        // array layout, so restoring a re-pushed heap would not
        // replay bit-identically.
        JsonValue selfEvents = JsonValue::array();
        for (const auto &[tick, n] : L.selfEvents) {
            selfEvents.append(
                JsonValue::integer(static_cast<int64_t>(tick)));
            selfEvents.append(JsonValue::integer(n));
        }
        lj.set("selfEvents", std::move(selfEvents));
        lj.set("selfEventsStale",
               JsonValue::integer(
                   static_cast<int64_t>(L.selfEventsStale)));
        JsonValue rng = JsonValue::object();
        rng.set("state", JsonValue::integer(L.rng.state()));
        rng.set("draws",
                JsonValue::integer(
                    static_cast<int64_t>(L.rng.draws())));
        lj.set("rng", std::move(rng));
        lanes.append(std::move(lj));
    }
    out.set("lanes", std::move(lanes));
    out.set("mode", JsonValue::integer(static_cast<int64_t>(mode_)));
    JsonValue sched;
    sched_.saveState(sched);
    out.set("sched", std::move(sched));
    JsonValue overrides = JsonValue::array();
    for (const XbarOverride &ov : xbarOverrides_) {
        JsonValue o = JsonValue::object();
        o.set("axon", JsonValue::integer(ov.axon));
        o.set("word", JsonValue::integer(ov.word));
        o.set("bits", JsonValue::string(u64ToHex(ov.bits)));
        o.set("original", JsonValue::string(u64ToHex(ov.original)));
        overrides.append(std::move(o));
    }
    out.set("xbarOverrides", std::move(overrides));
    const CoreCounters &c = counters();  // refreshes derived fields
    JsonValue counters = JsonValue::object();
    auto putCounter = [&counters](const char *key, uint64_t value) {
        counters.set(key, JsonValue::integer(static_cast<int64_t>(value)));
    };
    putCounter("sops", c.sops);
    putCounter("spikes", c.spikes);
    putCounter("evals", c.evals);
    putCounter("ticksRun", c.ticksRun);
    putCounter("sopsBatched", c.sopsBatched);
    putCounter("evalsBatched", c.evalsBatched);
    putCounter("evalsStochBatched", c.evalsStochBatched);
    putCounter("selfEventCompactions", c.selfEventCompactions);
    putCounter("planeReuses", c.planeReuses);
    out.set("counters", std::move(counters));
}

bool
Core::restoreState(const JsonValue &in)
{
    if (in.type() != JsonValue::Type::Object)
        return false;
    const uint32_t n = cfg_.geom.numNeurons;
    for (const char *key : {"lanes", "sched", "xbarOverrides",
                            "counters"})
        if (!in.has(key))
            return false;
    const JsonValue &lanes = in.at("lanes");
    if (lanes.type() != JsonValue::Type::Array ||
        lanes.size() != instances())
        return false;
    for (uint32_t i = 0; i < instances(); ++i) {
        const JsonValue &lj = lanes.at(i);
        InstanceLane &L = inst_[i];
        for (const char *key : {"v", "doneThrough", "schedFire",
                                "selfEvents", "rng"})
            if (!lj.has(key))
                return false;
        const JsonValue &v = lj.at("v");
        const JsonValue &done = lj.at("doneThrough");
        const JsonValue &fire = lj.at("schedFire");
        if (v.size() != n || done.size() != n || fire.size() != n)
            return false;
        for (uint32_t j = 0; j < n; ++j) {
            L.v[j] = static_cast<int32_t>(v.at(j).asInt());
            L.doneThrough[j] =
                static_cast<uint64_t>(done.at(j).asInt());
            int64_t f = fire.at(j).asInt();
            L.scheduledFire[j] =
                f < 0 ? kNoFire : static_cast<uint64_t>(f);
        }
        const JsonValue &selfEvents = lj.at("selfEvents");
        if (selfEvents.size() % 2 != 0)
            return false;
        L.selfEvents.clear();
        L.selfEvents.reserve(selfEvents.size() / 2);
        for (size_t k = 0; k < selfEvents.size(); k += 2) {
            auto tick =
                static_cast<uint64_t>(selfEvents.at(k).asInt());
            auto neuron =
                static_cast<uint32_t>(selfEvents.at(k + 1).asInt());
            if (neuron >= n)
                return false;
            L.selfEvents.emplace_back(tick, neuron);
        }
        L.selfEventsStale =
            static_cast<uint64_t>(lj.getInt("selfEventsStale", 0));
        const JsonValue &rng = lj.at("rng");
        L.rng.restoreState(
            static_cast<uint16_t>(rng.getInt("state", 0)),
            static_cast<uint64_t>(rng.getInt("draws", 0)));
        L.firedBits.reset();
    }
    int64_t mode = in.getInt("mode", 0);
    if (mode < 0 || mode > 2)
        return false;
    mode_ = static_cast<Mode>(mode);
    if (!sched_.restoreState(in.at("sched")))
        return false;
    revertXbarOverrides();
    const JsonValue &overrides = in.at("xbarOverrides");
    for (size_t i = 0; i < overrides.size(); ++i) {
        const JsonValue &o = overrides.at(i);
        auto axon = static_cast<uint32_t>(o.getInt("axon", 0));
        auto word = static_cast<uint32_t>(o.getInt("word", 0));
        uint64_t bits = 0;
        if (axon >= cfg_.geom.numAxons ||
            word >= (cfg_.geom.numNeurons + 63) / 64 ||
            !u64FromHex(o.getString("bits", ""), bits))
            return false;
        applyStuckWord(axon, word, bits);
    }
    const JsonValue &counters = in.at("counters");
    counters_ = CoreCounters{};
    counters_.sops = static_cast<uint64_t>(counters.getInt("sops", 0));
    counters_.spikes =
        static_cast<uint64_t>(counters.getInt("spikes", 0));
    counters_.evals = static_cast<uint64_t>(counters.getInt("evals", 0));
    counters_.ticksRun =
        static_cast<uint64_t>(counters.getInt("ticksRun", 0));
    counters_.sopsBatched =
        static_cast<uint64_t>(counters.getInt("sopsBatched", 0));
    counters_.evalsBatched =
        static_cast<uint64_t>(counters.getInt("evalsBatched", 0));
    counters_.evalsStochBatched =
        static_cast<uint64_t>(counters.getInt("evalsStochBatched", 0));
    counters_.selfEventCompactions = static_cast<uint64_t>(
        counters.getInt("selfEventCompactions", 0));
    counters_.planeReuses =
        static_cast<uint64_t>(counters.getInt("planeReuses", 0));
    // Per-tick scratch is clean between ticks by invariant; make that
    // true regardless of what state this core was in before restore.
    denseList_.clear();
    for (uint32_t j = 0; j < n; ++j)
        if (cls_[j] == UpdateClass::Dense)
            denseList_.push_back(j);
    evalMask_.reset();
    detEvalScratch_.reset();
    clearIntegratePlanes();
    fallback_.reset();
    return true;
}

} // namespace nscs
