/**
 * @file
 * Runtime model of one neurosynaptic core.
 *
 * Per-tick pipeline (see neuron/params.hh for neuron semantics):
 *
 *   1. drain: read and clear the scheduler slot for this tick,
 *      yielding the set of active axons;
 *   2. integrate: for each active axon in ascending index order, for
 *      each crossbar-connected neuron in ascending index order, apply
 *      one synaptic event;
 *   3. update: for each neuron in ascending index order, apply leak,
 *      threshold, fire and reset; fired neuron indices are reported
 *      to the caller, which routes them via the neuron's destination.
 *
 * The update phase, like integration, has two implementations with
 * bit-identical results (see neuron/batch.hh for the kernel and its
 * equivalence argument):
 *
 *  - scalar:  one endOfTickUpdate call per neuron in ascending index
 *             order (the architectural reference);
 *  - batched: neurons are partitioned at construction into a
 *             *deterministic* cohort (zero per-tick PRNG draws: no
 *             stochastic leak, no threshold mask) and a *stochastic*
 *             cohort.  Deterministic neurons update through a flat
 *             SoA kernel writing fired bits into a BitVec;
 *             stochastic neurons then run the scalar update in
 *             ascending index order.  Deterministic neurons never
 *             draw, so the split leaves the LFSR stream untouched;
 *             fired indices are emitted in ascending order by
 *             scanning the merged fired BitVec.  The sparse strategy
 *             batches over evalMask_ ∩ deterministic.
 *
 * Two evaluation strategies with bit-identical results:
 *
 *  - tickDense():  evaluates every neuron every tick (the hardware's
 *                  own schedule, and the clock-driven engine's).
 *  - tickSparse(): evaluates only neurons that (a) draw from the PRNG
 *                  every tick ("dense" neurons), (b) received input
 *                  this tick, or (c) are due for a predicted
 *                  spontaneous fire.  Skipped neurons are caught up
 *                  with the closed-form leakForward when next
 *                  touched.  Only stochastic features consume PRNG
 *                  draws, and those neurons are never skipped, so the
 *                  shared PRNG stream is identical across strategies.
 *
 * A core must not mix strategies within one run; reset() clears the
 * commitment.
 *
 * Synaptic integration itself has three implementations with
 * bit-identical results (see integrateWordParallel in core.cc for
 * the equivalence argument):
 *
 *  - scalar:        one integrateSynapse call per (axon, neuron)
 *                   event, in architectural order;
 *  - axon-word:     for sparsely active ticks, the active rows are
 *                   carry-saved per 64-neuron word into small
 *                   stack-resident count planes and applied word by
 *                   word — the event-driven middle path between
 *                   scalar and the full fold;
 *  - word-parallel: the active-axon slot is folded against per-type
 *                   crossbar partitions with 64-bit word operations,
 *                   yielding a touched-neuron mask and per-neuron
 *                   event counts per type; deterministic synapses
 *                   are then applied as one count x weight add per
 *                   type.
 *
 * Stochastic synapses batch too: their LFSR outcomes depend only on
 * the draw position and the static weight, so both batched paths
 * pre-draw every stochastic event in architectural order into
 * per-axon success masks, fold successes into count planes, and
 * apply successes x sgn(weight) alongside the deterministic adds.
 * Neurons whose events could saturate mid-sequence drop to a scalar
 * replay that re-applies the recorded outcomes without re-drawing,
 * so the stream position is preserved exactly.
 *
 * Reset semantics: the negative-threshold rule is applied once to
 * every neuron's initial potential at reset (this makes skipping
 * sound for all non-Dense classes and is part of the architectural
 * contract implemented by the reference simulator as well).
 */

#ifndef NSCS_CORE_CORE_HH
#define NSCS_CORE_CORE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "core/crossbar.hh"
#include "core/scheduler.hh"
#include "neuron/batch.hh"
#include "neuron/neuron.hh"
#include "util/rng.hh"

namespace nscs {

/** Architectural and simulation-effort event counters of one core. */
struct CoreCounters
{
    uint64_t sops = 0;         //!< synaptic events delivered
    uint64_t spikes = 0;       //!< neuron fires
    uint64_t evals = 0;        //!< end-of-tick neuron evaluations run
    uint64_t ticksRun = 0;     //!< ticks this core was activated
    uint64_t deposits = 0;     //!< scheduler deposits
    uint64_t collisions = 0;   //!< scheduler merge collisions
    uint64_t rngDraws = 0;     //!< PRNG draws consumed

    /**
     * Of sops, events applied by the word-parallel batched integrate
     * path (one add per (neuron, type) instead of one per event).
     * Purely a simulation-effort statistic: architectural results are
     * bit-identical whichever path applied the event.
     */
    uint64_t sopsBatched = 0;

    /**
     * Of sopsBatched, events applied by the axon-word sparse path
     * (stack-resident per-word count planes instead of the full
     * per-lane fold).  Simulation-effort statistic only.
     */
    uint64_t sopsAxonWord = 0;

    /**
     * Of sops, stochastic synaptic events whose LFSR outcomes were
     * pre-drawn and applied as batched success counts instead of one
     * draw-and-add per event.  Simulation-effort statistic only.
     */
    uint64_t sopsStochBatched = 0;

    /**
     * (lane, tick) evaluations whose scheduler slot carried at least
     * one active axon, and the total active axons across them.
     * Occupancy diagnostics for instance-batched runs: the mean slot
     * population is laneActiveAxons / laneSlotsActive, and the
     * fraction of lane-ticks with any input is laneSlotsActive /
     * (ticksRun x instances).
     */
    uint64_t laneSlotsActive = 0;
    uint64_t laneActiveAxons = 0;

    /**
     * Of evals, end-of-tick updates applied by the batched SoA
     * update kernel instead of the scalar endOfTickUpdate.  Like
     * sopsBatched, a simulation-effort statistic only.
     */
    uint64_t evalsBatched = 0;

    /**
     * Of evalsBatched, stochastic-cohort updates applied through the
     * precomputed-draw kernel (see neuron/batch.hh).
     */
    uint64_t evalsStochBatched = 0;

    /** Lazy compactions of the self-event heap (see tickSparse). */
    uint64_t selfEventCompactions = 0;

    /**
     * Word-parallel integrate plane folds skipped because a later
     * instance lane received the identical active-axon pattern this
     * tick and reused the cached bit-plane counts (see
     * integrateWordParallel; only meaningful with instances > 1).
     */
    uint64_t planeReuses = 0;
};

/**
 * One fired neuron of one instance lane, as reported by the batched
 * tick entry points.  Emission order is instance-major: all of lane
 * 0's fires in ascending neuron order, then lane 1's, and so on —
 * the order a sequential per-instance run would produce.
 */
struct InstanceFire
{
    uint32_t instance = 0;
    uint32_t neuron = 0;

    bool operator==(const InstanceFire &other) const = default;
};

/** One core's runtime state, executing @c instances replica lanes. */
class Core
{
  public:
    /**
     * Build from a validated configuration (copied in), running
     * @p instances replicas of the configured network.  The crossbar,
     * axon types, neuron parameters and all SoA projections are
     * shared read-only across replicas; each replica owns an
     * InstanceLane of mutable state (neuron/batch.hh) plus a private
     * scheduler slot plane, and every lane's LFSR is seeded with the
     * same configured seed.  Lanes evaluate strictly one after the
     * other within a tick, so each lane's spike stream is
     * bit-identical to a single-instance run fed the same inputs.
     */
    explicit Core(CoreConfig cfg, uint32_t instances = 1);

    /** Return to the configured initial state (all lanes). */
    void reset();

    /** Number of replica instance lanes. */
    uint32_t instances() const { return static_cast<uint32_t>(inst_.size()); }

    /** Park an incoming spike for instance @p inst; collisions are
     *  counted internally. */
    void deposit(uint64_t delivery_tick, uint32_t axon,
                 uint32_t inst = 0);

    /** True when no spike is parked for @p tick in any instance. */
    bool slotEmpty(uint64_t tick) const { return sched_.slotEmpty(tick); }

    /**
     * Full evaluation of tick @p t; appends fired neuron indices (in
     * ascending order) to @p fired.  Single-instance cores only
     * (panics when instances() > 1 — use the InstanceFire overload).
     */
    void tickDense(uint64_t t, std::vector<uint32_t> &fired);

    /**
     * Sparse evaluation of tick @p t; appends the identical fired
     * set.  The caller (event-driven engine) must invoke this for
     * every tick at which the core has work: a non-empty scheduler
     * slot, any dense neuron, or a due self-event (see
     * nextSelfEvent).  Single-instance cores only.
     */
    void tickSparse(uint64_t t, std::vector<uint32_t> &fired);

    /**
     * Batched full evaluation of tick @p t across every instance
     * lane; appends (instance, neuron) fires in instance-major
     * ascending order to @p fired.
     */
    void tickDense(uint64_t t, std::vector<InstanceFire> &fired);

    /** Batched sparse evaluation of tick @p t across every instance
     *  lane (see the single-instance overload for the caller
     *  contract, which applies per lane). */
    void tickSparse(uint64_t t, std::vector<InstanceFire> &fired);

    /** True if any neuron draws from the PRNG every tick. */
    bool hasDenseNeurons() const { return !denseList_.empty(); }

    /**
     * Earliest tick at which a skipped neuron will spontaneously
     * fire, if any such prediction is outstanding.  Pops stale
     * entries; call after each tickSparse to plan the next wake-up.
     */
    std::optional<uint64_t> nextSelfEvent();

    /** Configuration (immutable after construction). */
    const CoreConfig &config() const { return cfg_; }

    /** Destination of neuron @p n (routing). */
    const NeuronDest &dest(uint32_t n) const { return cfg_.dests[n]; }

    /** Crossbar view (capacity stats). */
    const Crossbar &crossbar() const { return xbar_; }

    /** Event counters (rngDraws refreshed on read). */
    const CoreCounters &counters() const;

    /**
     * Raw membrane potential of neuron @p n in instance @p inst as
     * of its last evaluation (see settledPotential for a projected
     * value).
     */
    int32_t
    potential(uint32_t n, uint32_t inst = 0) const
    {
        return inst_[inst].v[n];
    }

    /** Membrane potential projected to the beginning of tick @p t
     *  without mutating state (valid for non-Dense neurons). */
    int32_t settledPotential(uint32_t n, uint64_t t,
                             uint32_t inst = 0) const;

    /**
     * Toggle the word-parallel integrate fast path (default on).
     * Results are bit-identical either way; the toggle exists for
     * differential testing and benchmarking.  May be flipped at any
     * tick boundary.
     */
    void setWordParallel(bool on) { wordParallel_ = on; }

    /** True when the word-parallel integrate path is enabled. */
    bool wordParallel() const { return wordParallel_; }

    /**
     * Minimum active-axon count in a tick's slot for the
     * word-parallel path to engage; below it the scalar path runs
     * (its cost scales with delivered events, while the
     * word-parallel path adds a per-touched-neuron extraction term
     * that only amortizes once enough rows fold together).  The
     * default is derived from the crossbar density at construction;
     * 0 forces word-parallel whenever enabled.  Results are
     * bit-identical at any setting.
     */
    void setWordParallelMinActive(uint32_t n) { wpMinActive_ = n; }

    /** Current word-parallel engagement threshold. */
    uint32_t wordParallelMinActive() const { return wpMinActive_; }

    /**
     * Minimum active-axon count for the axon-word sparse path: slots
     * with at least this many but fewer than wordParallelMinActive()
     * active axons integrate through per-word stack-resident count
     * planes instead of the scalar event loop.  The default is
     * derived at construction alongside the word-parallel threshold;
     * 0 makes the axon-word path cover everything below the
     * word-parallel threshold.  Results are bit-identical at any
     * setting.
     */
    void setAxonWordMinActive(uint32_t n) { awMinActive_ = n; }

    /** Current axon-word engagement threshold. */
    uint32_t axonWordMinActive() const { return awMinActive_; }

    /**
     * Toggle the batched end-of-tick update path (default on).
     * Results are bit-identical either way; the toggle exists for
     * differential testing and benchmarking.  May be flipped at any
     * tick boundary.
     */
    void setWordParallelUpdate(bool on) { wordParallelUpdate_ = on; }

    /** True when the batched update path is enabled. */
    bool wordParallelUpdate() const { return wordParallelUpdate_; }

    /**
     * Toggle the precomputed-draw batched update of the stochastic
     * cohort (default on; only effective while the batched update
     * path itself is enabled).  Results are bit-identical either
     * way — the LFSR outcomes are position-only — so the toggle
     * exists for differential testing and benchmarking.
     */
    void setStochasticUpdateBatch(bool on) { stochUpdateBatch_ = on; }

    /** True when the stochastic cohort updates via precomputed
     *  draws. */
    bool stochasticUpdateBatch() const { return stochUpdateBatch_; }

    /**
     * Toggle the precomputed-outcome batching of stochastic
     * *synaptic* events on the word-parallel and axon-word integrate
     * paths (default on).  Off, a neuron with a stochastic synapse in
     * play diverts to the scalar replay, which draws per event at the
     * same stream positions.  Results are bit-identical either way —
     * draw outcomes are position-only — so the toggle exists for
     * differential testing and benchmarking.
     */
    void setStochasticIntegrateBatch(bool on)
    {
        stochIntegrateBatch_ = on;
    }

    /** True when stochastic synaptic events batch via pre-drawn
     *  outcomes. */
    bool stochasticIntegrateBatch() const
    {
        return stochIntegrateBatch_;
    }

    /**
     * Entries currently held by the self-event heaps across all
     * instance lanes, stale ones included (diagnostics: lazy
     * compaction keeps each lane bounded by roughly twice its live
     * prediction count).
     */
    size_t selfEventQueueDepth() const;

    /** Heap footprint of the runtime core in bytes. */
    size_t footprintBytes() const;

    // --- fault injection -------------------------------------------------

    /**
     * Freeze the 64-bit word @p word of crossbar row @p axon at
     * @p bits (stuck-at fault).  The first application per (axon,
     * word) records the configured value so reset() and snapshot
     * restore can revert; re-applying overwrites in place.
     */
    void applyStuckWord(uint32_t axon, uint32_t word, uint64_t bits);

    /**
     * XOR bit @p bit into neuron @p n's membrane potential in
     * instance lane @p inst (SEU model), then clamp to the neuron's
     * saturation rails so the corrupted value stays architecturally
     * representable.
     */
    void flipPotentialBit(uint32_t n, uint32_t bit, uint32_t inst = 0);

    /** Number of crossbar words currently overridden by faults. */
    size_t xbarOverrideCount() const { return xbarOverrides_.size(); }

    // --- snapshot --------------------------------------------------------

    /** Serialize the full mutable state into @p out (snapshot). */
    void saveState(JsonValue &out) const;

    /**
     * Restore state saved by saveState().  The core's configuration
     * must match the one the snapshot was taken from; @return false
     * on a structural mismatch (state is unspecified on failure).
     */
    bool restoreState(const JsonValue &in);

  private:
    /** Strategy commitment guard. */
    enum class Mode : uint8_t { Unset, Dense, Sparse };

    /**
     * Per-axon-type structure-of-arrays view of the configuration,
     * built once at construction, plus the per-tick scratch the
     * word-parallel integrate path folds into.  The AoS NeuronParams
     * array stays the source of truth; these lanes are a dense
     * read-only projection of the three fields the integrate hot
     * loop needs (weight, stochastic flag, axon partition).
     */
    struct TypeLane
    {
        BitVec axons;                 //!< axons of this type
        BitVec stoch;                 //!< neurons with stochastic syn
        std::vector<int32_t> weight;  //!< per-neuron weight lane
        /**
         * Per-word union of this type's crossbar rows — a
         * conservative column-occupancy mask (crossbar mutations OR
         * their bits in, so a cleared synapse may leave a stale 1).
         * The axon-word path skips the ripple for words with no
         * columns in use; on thin crossbars (a deployed classifier
         * uses ~10 of 256 columns) that is most of its overhead.
         */
        std::vector<uint64_t> colUsed;
        bool present = false;         //!< any axon carries this type
    };

    /** One axon type's fold output (per-tick scratch, cleared
     *  word-wise after each drain). */
    struct TypeFold
    {
        BitVec rowOr;                 //!< OR of active crossbar rows
        std::vector<uint64_t> planes; //!< carry-save count bit-planes
        uint32_t activeAxons = 0;     //!< active axons this tick
    };

    /**
     * One instance lane's folded integrate scratch: per-type count
     * planes plus the touched-neuron union.  When live, key holds
     * the active-axon pattern the fold was built from; the fold
     * depends only on that pattern and the (shared) crossbar, never
     * on lane state.  Filled either lazily per lane
     * (buildIntegratePlanes) or for all word-parallel lanes at once
     * by the transposed per-tick pass (foldTickPlanes), and dropped
     * unconditionally at end of tick.
     */
    struct FoldScratch
    {
        std::array<TypeFold, kNumAxonTypes> type;
        BitVec touched;  //!< union of rowOr across types
        BitVec key;      //!< pattern the fold was built from
        bool live = false;
    };

    void buildLanes();
    void buildUpdateCohorts();
    void calibrateIntegrateThresholds();
    void integrateActiveAxons(InstanceLane &L, uint32_t inst,
                              uint64_t t, bool sparse);
    void integrateScalar(InstanceLane &L, const BitVec &active,
                         uint64_t t, bool sparse);
    void integrateWordParallel(InstanceLane &L, uint32_t inst,
                               const BitVec &active, uint64_t t,
                               bool sparse);
    void integrateAxonWord(InstanceLane &L, const BitVec &active,
                           uint64_t t, bool sparse);
    bool predrawStochOutcomes(InstanceLane &L, const BitVec &active);
    void clearStochFold();
    void replayFallback(InstanceLane &L, const BitVec &active,
                        bool outcomes_recorded);
    void buildIntegratePlanes(FoldScratch &f, const BitVec &active);
    void foldTickPlanes(uint64_t t);
    void clearFold(FoldScratch &f);
    void clearIntegratePlanes();
    void evalDenseLane(InstanceLane &L, uint32_t inst, uint64_t t);
    void evalSparseLane(InstanceLane &L, uint32_t inst, uint64_t t);
    void finishTickIntegrate(uint64_t t);
    void emitFired(InstanceLane &L, std::vector<uint32_t> &fired);
    void emitFired(InstanceLane &L, uint32_t inst,
                   std::vector<InstanceFire> &fired);
    void catchUp(InstanceLane &L, uint32_t n, uint64_t t);
    void scheduleSelfEvent(InstanceLane &L, uint32_t n);
    void pushSelfEvent(InstanceLane &L, uint64_t tick, uint32_t n);
    void popSelfEventTop(InstanceLane &L);
    void noteStaleSelfEvent(InstanceLane &L);
    void commitMode(Mode m);

    CoreConfig cfg_;
    Crossbar xbar_;
    Scheduler sched_;

    /**
     * Per-replica mutable state: potentials, event-engine
     * bookkeeping, LFSR stream and fired mask, one lane per instance
     * (neuron/batch.hh).  Everything below this member is either
     * configuration shared read-only across lanes or per-tick
     * scratch that each lane consumes in turn (lanes evaluate
     * sequentially within a tick, never concurrently).
     */
    InstanceLanes inst_;

    std::vector<UpdateClass> cls_;       //!< per-neuron class
    std::vector<uint32_t> denseList_;    //!< Dense neurons, ascending

    // Word-parallel integrate state (see integrateWordParallel).
    std::array<TypeLane, kNumAxonTypes> lanes_;
    std::vector<int32_t> vLo_;           //!< per-neuron lower rail
    std::vector<int32_t> vHi_;           //!< per-neuron upper rail
    BitVec fallback_;                    //!< scratch: scalar replays
    uint32_t planeCount_ = 0;            //!< carry-save plane budget
    uint32_t wpMinActive_ = 0;           //!< word-parallel threshold
    uint32_t awMinActive_ = 0;           //!< axon-word threshold
    bool wordParallel_ = true;
    bool wordParallelUpdate_ = true;
    bool stochUpdateBatch_ = true;
    bool stochIntegrateBatch_ = true;

    /**
     * Upper slot-population bound for the axon-word path: its count
     * planes live on the stack, sized for bit_width(rows) of them.
     * Slots beyond the bound but below the word-parallel threshold
     * run scalar (only reachable with a hand-set threshold split).
     */
    static constexpr uint32_t kAxonWordMaxRows = 128;
    static constexpr unsigned kAxonWordMaxPlanes = 8;

    /**
     * Per-tick scratch of the stochastic integrate batching: one
     * axon type's fold of pre-drawn success masks into carry-save
     * count planes, mirroring TypeFold for deterministic events.
     * rowOr (raw words, internal only) bounds the word-wise
     * teardown.  Consumed and cleared within one lane's integrate,
     * so a single set is shared by all instance lanes.
     */
    struct StochFold
    {
        std::vector<uint64_t> rowOr;  //!< OR of success masks
        std::vector<uint64_t> planes; //!< success-count bit-planes
        uint32_t activeAxons = 0;     //!< folded rows this tick
    };

    std::array<StochFold, kNumAxonTypes> stochFold_;
    /** Per-axon success masks of the current lane's pre-drawn
     *  stochastic outcomes (numAxons x neuron-words, row-major).  A
     *  row is (re)filled whenever its axon is active with stochastic
     *  targets, so stale rows are never read. */
    std::vector<uint64_t> stochSucc_;
    /** Scratch: active crossbar rows per type for the axon-word
     *  path, ascending. */
    std::array<std::vector<const uint64_t *>, kNumAxonTypes> awRows_;

    /**
     * One fold scratch per instance lane.  Batched ticks fill every
     * word-parallel lane's fold in one transposed crossbar pass
     * (foldTickPlanes): each active row is fetched once and
     * carry-saved into the fold of every lane whose slot carries
     * that axon, so the row traversal — the shared-read part of the
     * integrate — is paid once per tick instead of once per lane.
     * All folds drop unconditionally at end of tick.
     */
    std::vector<FoldScratch> folds_;
    BitVec foldUnion_;  //!< scratch: union of lane slots per tick

    // Batched update-phase state (see neuron/batch.hh).
    UpdateLanes update_;                 //!< SoA update projection
    /** Maximal runs [first, second) of deterministic-cohort neurons
     *  (ascending); one run spanning the core when homogeneous. */
    std::vector<std::pair<uint32_t, uint32_t>> detRuns_;
    std::vector<uint32_t> stochUpdList_; //!< stochastic cohort, asc.
    StochDraws stochDraws_;              //!< per-tick draw outcomes
    BitVec detEvalScratch_;              //!< scratch: evalMask ∩ det

    BitVec evalMask_;                    //!< per-tick evaluation set

    /** One fault-injected crossbar word, with the configured value it
     *  displaced so reset()/restore can revert. */
    struct XbarOverride {
        uint32_t axon = 0;
        uint32_t word = 0;
        uint64_t bits = 0;      //!< frozen value
        uint64_t original = 0;  //!< configured value it replaced
    };

    /** Revert all stuck-word overrides to the configured crossbar. */
    void revertXbarOverrides();

    std::vector<XbarOverride> xbarOverrides_;

    Mode mode_ = Mode::Unset;
    mutable CoreCounters counters_;

    static constexpr uint64_t kNoFire = ~0ull;
};

} // namespace nscs

#endif // NSCS_CORE_CORE_HH
