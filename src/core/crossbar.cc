#include "core/crossbar.hh"

#include "util/logging.hh"

namespace nscs {

Crossbar::Crossbar(std::vector<BitVec> rows, uint32_t num_neurons)
    : rows_(std::move(rows)), numNeurons_(num_neurons)
{
    for (const auto &row : rows_)
        NSCS_ASSERT(row.size() == numNeurons_,
                    "crossbar row width %zu != %u neurons",
                    row.size(), numNeurons_);
}

uint64_t
Crossbar::synapseCount() const
{
    uint64_t n = 0;
    for (const auto &row : rows_)
        n += row.count();
    return n;
}

size_t
Crossbar::neuronFanIn(uint32_t neuron) const
{
    size_t n = 0;
    for (const auto &row : rows_)
        if (row.test(neuron))
            ++n;
    return n;
}

size_t
Crossbar::footprintBytes() const
{
    size_t bytes = sizeof(Crossbar);
    for (const auto &row : rows_)
        bytes += row.footprintBytes();
    return bytes;
}

} // namespace nscs
