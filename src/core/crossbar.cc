#include "core/crossbar.hh"

#include "util/logging.hh"

namespace nscs {

Crossbar::Crossbar(std::vector<BitVec> rows, uint32_t num_neurons)
    : rows_(std::move(rows)), numNeurons_(num_neurons)
{
    // The crossbar only mutates through setRowWord (fault injection,
    // snapshot restore), so the aggregate stats (total synapses,
    // per-row degree, per-column fan-in) are computed eagerly instead
    // of rescanning the bitmap per query.
    for (const BitVec &row : rows_)
        NSCS_ASSERT(row.size() == numNeurons_,
                    "crossbar row width %zu != %u neurons",
                    row.size(), numNeurons_);
    recomputeAggregates();
}

void
Crossbar::recomputeAggregates()
{
    axonDegree_.assign(rows_.size(), 0);
    fanIn_.assign(numNeurons_, 0);
    synapseCount_ = 0;
    for (size_t a = 0; a < rows_.size(); ++a) {
        const BitVec &row = rows_[a];
        size_t degree = row.count();
        axonDegree_[a] = static_cast<uint32_t>(degree);
        synapseCount_ += degree;
        row.forEachSet([this](size_t j) { ++fanIn_[j]; });
    }
}

void
Crossbar::setRowWord(uint32_t axon, size_t word_index, uint64_t bits)
{
    NSCS_ASSERT(axon < rows_.size(), "setRowWord axon %u of %zu",
                axon, rows_.size());
    rows_[axon].setWord(word_index, bits);
    recomputeAggregates();
}

size_t
Crossbar::neuronFanIn(uint32_t neuron) const
{
    NSCS_ASSERT(neuron < numNeurons_, "neuronFanIn(%u) of %u neurons",
                neuron, numNeurons_);
    return fanIn_[neuron];
}

size_t
Crossbar::footprintBytes() const
{
    size_t bytes = sizeof(Crossbar);
    for (const auto &row : rows_)
        bytes += row.footprintBytes();
    bytes += axonDegree_.capacity() * sizeof(uint32_t);
    bytes += fanIn_.capacity() * sizeof(uint32_t);
    return bytes;
}

} // namespace nscs
