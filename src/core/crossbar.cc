#include "core/crossbar.hh"

#include "util/logging.hh"

namespace nscs {

Crossbar::Crossbar(std::vector<BitVec> rows, uint32_t num_neurons)
    : rows_(std::move(rows)), numNeurons_(num_neurons)
{
    // The crossbar is immutable after build, so the aggregate stats
    // (total synapses, per-row degree, per-column fan-in) are
    // computed once here instead of rescanning the bitmap per query.
    axonDegree_.resize(rows_.size());
    fanIn_.assign(numNeurons_, 0);
    for (size_t a = 0; a < rows_.size(); ++a) {
        const BitVec &row = rows_[a];
        NSCS_ASSERT(row.size() == numNeurons_,
                    "crossbar row width %zu != %u neurons",
                    row.size(), numNeurons_);
        size_t degree = row.count();
        axonDegree_[a] = static_cast<uint32_t>(degree);
        synapseCount_ += degree;
        row.forEachSet([this](size_t j) { ++fanIn_[j]; });
    }
}

size_t
Crossbar::neuronFanIn(uint32_t neuron) const
{
    NSCS_ASSERT(neuron < numNeurons_, "neuronFanIn(%u) of %u neurons",
                neuron, numNeurons_);
    return fanIn_[neuron];
}

size_t
Crossbar::footprintBytes() const
{
    size_t bytes = sizeof(Crossbar);
    for (const auto &row : rows_)
        bytes += row.footprintBytes();
    bytes += axonDegree_.capacity() * sizeof(uint32_t);
    bytes += fanIn_.capacity() * sizeof(uint32_t);
    return bytes;
}

} // namespace nscs
