/**
 * @file
 * Binary synaptic crossbar: one bit per (axon, neuron) pair.
 *
 * The crossbar is the core's synapse memory.  A set bit (a, j) means
 * axon a drives neuron j; the *strength* of that synapse is the
 * neuron's weight for the axon's type, so the crossbar itself is
 * binary, exactly as in the modelled hardware (256x256 SRAM).
 */

#ifndef NSCS_CORE_CROSSBAR_HH
#define NSCS_CORE_CROSSBAR_HH

#include <cstdint>
#include <vector>

#include "util/bitvec.hh"

namespace nscs {

/** Runtime crossbar built from configuration rows. */
class Crossbar
{
  public:
    Crossbar() = default;

    /** Build from per-axon rows (each @p numNeurons bits wide). */
    Crossbar(std::vector<BitVec> rows, uint32_t num_neurons);

    /** Number of axons (rows). */
    uint32_t numAxons() const { return static_cast<uint32_t>(rows_.size()); }

    /** Number of neurons (columns). */
    uint32_t numNeurons() const { return numNeurons_; }

    /** Synapse presence test. */
    bool
    connected(uint32_t axon, uint32_t neuron) const
    {
        return rows_[axon].test(neuron);
    }

    /** Row of synapses driven by @p axon. */
    const BitVec &row(uint32_t axon) const { return rows_[axon]; }

    /** Total set bits (synapse count); cached at construction. */
    uint64_t synapseCount() const { return synapseCount_; }

    /** Number of synapses on @p axon (its fan-out inside the core);
     *  cached at construction. */
    size_t axonDegree(uint32_t axon) const { return axonDegree_[axon]; }

    /** Number of synapses into @p neuron (its fan-in); cached at
     *  construction. */
    size_t neuronFanIn(uint32_t neuron) const;

    /** Heap footprint in bytes. */
    size_t footprintBytes() const;

    /**
     * Force the 64-bit backing word @p word_index of @p axon's row to
     * @p bits (bits beyond numNeurons() are masked off) and refresh
     * the cached degree/fan-in aggregates.  Fault injection
     * (stuck-at word) and snapshot restore only — not a hot path.
     */
    void setRowWord(uint32_t axon, size_t word_index, uint64_t bits);

  private:
    /** Rescan rows_ into the cached aggregates. */
    void recomputeAggregates();

    std::vector<BitVec> rows_;
    std::vector<uint32_t> axonDegree_;   //!< per-row popcount
    std::vector<uint32_t> fanIn_;        //!< per-column popcount
    uint64_t synapseCount_ = 0;
    uint32_t numNeurons_ = 0;
};

} // namespace nscs

#endif // NSCS_CORE_CROSSBAR_HH
