#include "core/scheduler.hh"

#include "util/logging.hh"

namespace nscs {

Scheduler::Scheduler(uint32_t delay_slots, uint32_t num_axons)
    : delaySlots_(delay_slots),
      slots_(delay_slots, BitVec(num_axons))
{
    NSCS_ASSERT(delay_slots >= 2, "scheduler needs >= 2 slots");
}

bool
Scheduler::deposit(uint64_t delivery_tick, uint32_t axon)
{
    BitVec &s = slots_[delivery_tick % delaySlots_];
    bool collision = s.test(axon);
    s.set(axon);
    ++deposits_;
    if (collision)
        ++collisions_;
    return collision;
}

const BitVec &
Scheduler::slot(uint64_t tick) const
{
    return slots_[tick % delaySlots_];
}

bool
Scheduler::slotEmpty(uint64_t tick) const
{
    return slots_[tick % delaySlots_].none();
}

void
Scheduler::clearSlot(uint64_t tick)
{
    slots_[tick % delaySlots_].reset();
}

void
Scheduler::reset()
{
    for (auto &s : slots_)
        s.reset();
    deposits_ = 0;
    collisions_ = 0;
}

size_t
Scheduler::footprintBytes() const
{
    size_t bytes = sizeof(Scheduler);
    for (const auto &s : slots_)
        bytes += s.footprintBytes();
    return bytes;
}

} // namespace nscs
