#include "core/scheduler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace nscs {

Scheduler::Scheduler(uint32_t delay_slots, uint32_t num_axons,
                     uint32_t instances)
    : delaySlots_(delay_slots),
      instances_(instances),
      slots_(static_cast<size_t>(delay_slots) * instances,
             BitVec(num_axons)),
      slotCounts_(static_cast<size_t>(delay_slots) * instances, 0),
      tickCounts_(delay_slots, 0)
{
    NSCS_ASSERT(delay_slots >= 2, "scheduler needs >= 2 slots");
    NSCS_ASSERT(instances >= 1, "scheduler needs >= 1 instance");
}

bool
Scheduler::deposit(uint64_t delivery_tick, uint32_t axon, uint32_t inst)
{
    size_t idx = planeIndex(delivery_tick, inst);
    BitVec &s = slots_[idx];
    bool collision = s.test(axon);
    s.set(axon);
    ++deposits_;
    if (collision) {
        ++collisions_;
    } else {
        ++slotCounts_[idx];
        ++tickCounts_[delivery_tick % delaySlots_];
    }
    return collision;
}

const BitVec &
Scheduler::slot(uint64_t tick, uint32_t inst) const
{
    return slots_[planeIndex(tick, inst)];
}

bool
Scheduler::slotEmpty(uint64_t tick) const
{
    return tickCounts_[tick % delaySlots_] == 0;
}

bool
Scheduler::slotEmpty(uint64_t tick, uint32_t inst) const
{
    return slotCounts_[planeIndex(tick, inst)] == 0;
}

uint32_t
Scheduler::slotCount(uint64_t tick, uint32_t inst) const
{
    return slotCounts_[planeIndex(tick, inst)];
}

void
Scheduler::clearSlot(uint64_t tick, uint32_t inst)
{
    size_t idx = planeIndex(tick, inst);
    if (slotCounts_[idx] == 0)
        return;
    slots_[idx].reset();
    tickCounts_[tick % delaySlots_] -= slotCounts_[idx];
    slotCounts_[idx] = 0;
}

void
Scheduler::clearTickSlots(uint64_t tick)
{
    for (uint32_t inst = 0; inst < instances_; ++inst)
        clearSlot(tick, inst);
}

void
Scheduler::reset()
{
    for (auto &s : slots_)
        s.reset();
    std::fill(slotCounts_.begin(), slotCounts_.end(), 0);
    std::fill(tickCounts_.begin(), tickCounts_.end(), 0);
    deposits_ = 0;
    collisions_ = 0;
}

void
Scheduler::saveState(JsonValue &out) const
{
    out = JsonValue::object();
    JsonValue slots = JsonValue::array();
    for (const BitVec &s : slots_)
        slots.append(JsonValue::string(s.toHex()));
    out.set("slots", std::move(slots));
    out.set("deposits", JsonValue::integer(static_cast<int64_t>(deposits_)));
    out.set("collisions",
            JsonValue::integer(static_cast<int64_t>(collisions_)));
}

bool
Scheduler::restoreState(const JsonValue &in)
{
    if (in.type() != JsonValue::Type::Object || !in.has("slots"))
        return false;
    const JsonValue &slots = in.at("slots");
    if (slots.type() != JsonValue::Type::Array ||
        slots.size() != slots_.size())
        return false;
    std::fill(tickCounts_.begin(), tickCounts_.end(), 0);
    for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots.at(i).type() != JsonValue::Type::String)
            return false;
        if (!slots_[i].fromHex(slots.at(i).asString()))
            return false;
        slotCounts_[i] = static_cast<uint32_t>(slots_[i].count());
        tickCounts_[i / instances_] += slotCounts_[i];
    }
    deposits_ = static_cast<uint64_t>(in.getInt("deposits", 0));
    collisions_ = static_cast<uint64_t>(in.getInt("collisions", 0));
    return true;
}

size_t
Scheduler::footprintBytes() const
{
    size_t bytes = sizeof(Scheduler);
    for (const auto &s : slots_)
        bytes += s.footprintBytes();
    bytes += slotCounts_.capacity() * sizeof(uint32_t);
    bytes += tickCounts_.capacity() * sizeof(uint32_t);
    return bytes;
}

} // namespace nscs
