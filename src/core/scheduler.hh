/**
 * @file
 * The core's delay scheduler: a delaySlots x numAxons bit SRAM,
 * replicated per model instance.
 *
 * Incoming spike packets carry a delivery tick; the scheduler parks
 * the spike in slot (deliveryTick mod delaySlots) until the core
 * drains that slot at the start of the corresponding tick.  Two
 * packets addressing the same (slot, axon) merge into one event; the
 * hardware behaves the same way and the collision is counted.
 *
 * Instance batching adds a third dimension: each of the B replica
 * instances owns a private slot plane, so spikes addressed to
 * different replicas never merge.  An aggregate per-tick count keeps
 * the any-instance slotEmpty(tick) probe O(1).
 */

#ifndef NSCS_CORE_SCHEDULER_HH
#define NSCS_CORE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "util/bitvec.hh"
#include "util/json.hh"

namespace nscs {

/** Tick-indexed axon event buffer with per-instance slot planes. */
class Scheduler
{
  public:
    Scheduler() = default;

    /** @p delay_slots slots of @p num_axons bits each, replicated
     *  for @p instances replica lanes. */
    Scheduler(uint32_t delay_slots, uint32_t num_axons,
              uint32_t instances = 1);

    /**
     * Park a spike for @p axon of instance @p inst at
     * @p delivery_tick.
     * @return true if the bit was already set (collision/merge).
     */
    bool deposit(uint64_t delivery_tick, uint32_t axon,
                 uint32_t inst = 0);

    /** Slot contents of instance @p inst for @p tick (no clear). */
    const BitVec &slot(uint64_t tick, uint32_t inst = 0) const;

    /** True when no spike is parked for @p tick in *any* instance.
     *  O(1): backed by a per-tick population count, not a scan. */
    bool slotEmpty(uint64_t tick) const;

    /** True when instance @p inst has no spike parked for @p tick. */
    bool slotEmpty(uint64_t tick, uint32_t inst) const;

    /** Number of distinct axons parked for @p tick in instance
     *  @p inst (O(1)). */
    uint32_t slotCount(uint64_t tick, uint32_t inst = 0) const;

    /** Clear the slot of instance @p inst for @p tick. */
    void clearSlot(uint64_t tick, uint32_t inst = 0);

    /** Clear @p tick's slot across all instances (end of tick, after
     *  every instance lane has drained). */
    void clearTickSlots(uint64_t tick);

    /** Clear all slots. */
    void reset();

    /** Number of slots. */
    uint32_t delaySlots() const { return delaySlots_; }

    /** Number of instance planes. */
    uint32_t instances() const { return instances_; }

    /** Total deposits since construction/reset. */
    uint64_t deposits() const { return deposits_; }

    /** Total merged (already-set) deposits. */
    uint64_t collisions() const { return collisions_; }

    /** Heap footprint in bytes. */
    size_t footprintBytes() const;

    /** Serialize the full scheduler state into @p out (snapshot). */
    void saveState(JsonValue &out) const;

    /**
     * Restore state saved by saveState().  Slot geometry (including
     * the instance count) must match this scheduler's; @return false
     * on any mismatch (the scheduler is left unspecified on failure).
     */
    bool restoreState(const JsonValue &in);

  private:
    /** Backing index of (slot, instance). */
    size_t
    planeIndex(uint64_t tick, uint32_t inst) const
    {
        return static_cast<size_t>(tick % delaySlots_) * instances_ +
               inst;
    }

    uint32_t delaySlots_ = 0;
    uint32_t instances_ = 1;
    std::vector<BitVec> slots_;          //!< [slot * instances + inst]
    std::vector<uint32_t> slotCounts_;   //!< set bits per (slot, inst)
    std::vector<uint32_t> tickCounts_;   //!< set bits per slot, all inst
    uint64_t deposits_ = 0;
    uint64_t collisions_ = 0;
};

} // namespace nscs

#endif // NSCS_CORE_SCHEDULER_HH
