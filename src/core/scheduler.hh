/**
 * @file
 * The core's delay scheduler: a delaySlots x numAxons bit SRAM.
 *
 * Incoming spike packets carry a delivery tick; the scheduler parks
 * the spike in slot (deliveryTick mod delaySlots) until the core
 * drains that slot at the start of the corresponding tick.  Two
 * packets addressing the same (slot, axon) merge into one event; the
 * hardware behaves the same way and the collision is counted.
 */

#ifndef NSCS_CORE_SCHEDULER_HH
#define NSCS_CORE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "util/bitvec.hh"
#include "util/json.hh"

namespace nscs {

/** Tick-indexed axon event buffer. */
class Scheduler
{
  public:
    Scheduler() = default;

    /** @p delay_slots slots of @p num_axons bits each. */
    Scheduler(uint32_t delay_slots, uint32_t num_axons);

    /**
     * Park a spike for @p axon at @p delivery_tick.
     * @return true if the bit was already set (collision/merge).
     */
    bool deposit(uint64_t delivery_tick, uint32_t axon);

    /** Slot contents for @p tick (does not clear). */
    const BitVec &slot(uint64_t tick) const;

    /** True when no spike is parked for @p tick.  O(1): backed by a
     *  per-slot population count, not a word scan. */
    bool slotEmpty(uint64_t tick) const;

    /** Number of distinct axons parked for @p tick (O(1)). */
    uint32_t slotCount(uint64_t tick) const;

    /** Clear the slot for @p tick (after draining). */
    void clearSlot(uint64_t tick);

    /** Clear all slots. */
    void reset();

    /** Number of slots. */
    uint32_t delaySlots() const { return delaySlots_; }

    /** Total deposits since construction/reset. */
    uint64_t deposits() const { return deposits_; }

    /** Total merged (already-set) deposits. */
    uint64_t collisions() const { return collisions_; }

    /** Heap footprint in bytes. */
    size_t footprintBytes() const;

    /** Serialize the full scheduler state into @p out (snapshot). */
    void saveState(JsonValue &out) const;

    /**
     * Restore state saved by saveState().  Slot geometry must match
     * this scheduler's; @return false on any mismatch (the scheduler
     * is left unspecified on failure).
     */
    bool restoreState(const JsonValue &in);

  private:
    uint32_t delaySlots_ = 0;
    std::vector<BitVec> slots_;
    std::vector<uint32_t> slotCounts_;   //!< set bits per slot
    uint64_t deposits_ = 0;
    uint64_t collisions_ = 0;
};

} // namespace nscs

#endif // NSCS_CORE_SCHEDULER_HH
