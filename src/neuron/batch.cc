#include "neuron/batch.hh"

#include <algorithm>

#include "neuron/neuron.hh"
#include "util/saturate.hh"

namespace nscs {

void
UpdateLanes::build(const std::vector<NeuronParams> &params)
{
    const size_t n = params.size();
    leak.resize(n);
    revSel.resize(n);
    thr.resize(n);
    negLim.resize(n);
    posMul.resize(n);
    posAdd.resize(n);
    negMul.resize(n);
    negAdd.resize(n);
    lo.resize(n);
    hi.resize(n);
    deterministic = BitVec(n);
    stochastic = BitVec(n);

    for (size_t j = 0; j < n; ++j) {
        const NeuronParams &p = params[j];
        PotentialRange r = potentialRange(p);
        lo[j] = r.lo;
        hi[j] = r.hi;
        leak[j] = p.leak;
        revSel[j] = p.leakReversal ? 1 : 0;
        thr[j] = p.threshold;
        negLim[j] = -p.negThreshold;
        switch (p.resetMode) {
          case ResetMode::Store:
            posMul[j] = 0;
            posAdd[j] = p.resetPotential;
            break;
          case ResetMode::Linear:
            posMul[j] = 1;
            posAdd[j] = -p.threshold;
            break;
          case ResetMode::None:
            posMul[j] = 1;
            posAdd[j] = 0;
            break;
        }
        if (p.negSaturate) {
            negMul[j] = 0;
            negAdd[j] = -p.negThreshold;
        } else {
            switch (p.resetMode) {
              case ResetMode::Store:
                negMul[j] = 0;
                negAdd[j] = satClamp(
                    -static_cast<int64_t>(p.resetPotential),
                    p.potentialBits);
                break;
              case ResetMode::Linear:
                negMul[j] = 1;
                negAdd[j] = p.negThreshold;
                break;
              case ResetMode::None:
                negMul[j] = 1;
                negAdd[j] = 0;
                break;
            }
        }
        if (!drawsPerTick(p))
            deterministic.set(j);
        else
            stochastic.set(j);
    }
    narrow = true;
    for (const NeuronParams &p : params)
        if (p.potentialBits > 30)
            narrow = false;
}

size_t
UpdateLanes::footprintBytes() const
{
    auto vec = [](const std::vector<int32_t> &v) {
        return v.capacity() * sizeof(int32_t);
    };
    return vec(leak) + vec(revSel) + vec(thr) + vec(negLim) +
        vec(posMul) + vec(posAdd) + vec(negMul) + vec(negAdd) +
        vec(lo) + vec(hi) + deterministic.footprintBytes() +
        stochastic.footprintBytes();
}

namespace {

template <typename W>
void
batchUpdateRangeT(const UpdateLanes &lanes, int32_t *v,
                  uint32_t begin, uint32_t end, BitVec &fired_bits)
{
    // Per 64-lane strip: a flat compute loop storing fired flags as
    // bytes (no cross-lane dependency, so it can vectorize), then a
    // scalar pack of the flags into the strip's fired word.
    uint32_t j = begin;
    while (j < end) {
        const size_t word = j / 64;
        const uint32_t base = j;
        const uint32_t stop = std::min<uint32_t>(
            end, static_cast<uint32_t>((word + 1) * 64));
        uint8_t flags[64];
        for (uint32_t k = 0; j < stop; ++j, ++k)
            flags[k] = batchUpdateOneT<W>(lanes, v, j);
        uint64_t bits = 0;
        for (uint32_t k = 0; k < stop - base; ++k)
            bits |= static_cast<uint64_t>(flags[k])
                << ((base + k) % 64);
        if (bits)
            fired_bits.orWordAt(word, bits);
    }
}

} // anonymous namespace

void
batchUpdateRange(const UpdateLanes &lanes, int32_t *v,
                 uint32_t begin, uint32_t end, BitVec &fired_bits)
{
    if (lanes.narrow)
        batchUpdateRangeT<int32_t>(lanes, v, begin, end, fired_bits);
    else
        batchUpdateRangeT<int64_t>(lanes, v, begin, end, fired_bits);
}

uint64_t
batchUpdateMasked(const UpdateLanes &lanes, int32_t *v,
                  const BitVec &mask, BitVec &fired_bits)
{
    uint64_t updated = 0;
    mask.forEachSetWord([&](size_t w, uint64_t word) {
        if (word == ~0ull) {
            batchUpdateRange(lanes, v, static_cast<uint32_t>(w * 64),
                             static_cast<uint32_t>(w * 64 + 64),
                             fired_bits);
            updated += 64;
            return;
        }
        uint64_t bits = word;
        uint64_t fired = 0;
        while (bits) {
            unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            fired |= static_cast<uint64_t>(
                batchUpdateOne(lanes, v, w * 64 + b)) << b;
            ++updated;
        }
        if (fired)
            fired_bits.orWordAt(w, fired);
    });
    return updated;
}

} // namespace nscs
