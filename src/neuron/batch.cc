#include "neuron/batch.hh"

#include <algorithm>

#include "neuron/neuron.hh"
#include "util/saturate.hh"
#include "util/simd.hh"

namespace nscs {

void
UpdateLanes::build(const std::vector<NeuronParams> &params)
{
    const size_t n = params.size();
    leak.resize(n);
    revSel.resize(n);
    thr.resize(n);
    negLim.resize(n);
    posMul.resize(n);
    posAdd.resize(n);
    negMul.resize(n);
    negAdd.resize(n);
    lo.resize(n);
    hi.resize(n);
    deterministic = BitVec(n);
    stochastic = BitVec(n);
    leakStochFlag.resize(n);
    maskBits.resize(n);
    posLinear.resize(n);
    leakSgn.resize(n);
    leakAbs.resize(n);

    for (size_t j = 0; j < n; ++j) {
        const NeuronParams &p = params[j];
        leakStochFlag[j] = p.leakStochastic ? 1 : 0;
        maskBits[j] = p.thresholdMaskBits;
        posLinear[j] = p.resetMode == ResetMode::Linear ? 1 : 0;
        leakSgn[j] = (p.leak > 0) - (p.leak < 0);
        leakAbs[j] = p.leak < 0 ? -p.leak : p.leak;
        PotentialRange r = potentialRange(p);
        lo[j] = r.lo;
        hi[j] = r.hi;
        leak[j] = p.leak;
        revSel[j] = p.leakReversal ? 1 : 0;
        thr[j] = p.threshold;
        negLim[j] = -p.negThreshold;
        switch (p.resetMode) {
          case ResetMode::Store:
            posMul[j] = 0;
            posAdd[j] = p.resetPotential;
            break;
          case ResetMode::Linear:
            posMul[j] = 1;
            posAdd[j] = -p.threshold;
            break;
          case ResetMode::None:
            posMul[j] = 1;
            posAdd[j] = 0;
            break;
        }
        if (p.negSaturate) {
            negMul[j] = 0;
            negAdd[j] = -p.negThreshold;
        } else {
            switch (p.resetMode) {
              case ResetMode::Store:
                negMul[j] = 0;
                negAdd[j] = satClamp(
                    -static_cast<int64_t>(p.resetPotential),
                    p.potentialBits);
                break;
              case ResetMode::Linear:
                negMul[j] = 1;
                negAdd[j] = p.negThreshold;
                break;
              case ResetMode::None:
                negMul[j] = 1;
                negAdd[j] = 0;
                break;
            }
        }
        if (!drawsPerTick(p))
            deterministic.set(j);
        else
            stochastic.set(j);
    }
    narrow = true;
    for (const NeuronParams &p : params)
        if (p.potentialBits > 30)
            narrow = false;

    // Homogeneous-core detection: when every neuron projects to the
    // same lane values the kernel's per-lane loads are redundant.
    // Lane-value equality (not NeuronParams equality) is the right
    // test — only the update-relevant projection must agree.
    auto constant = [](const std::vector<int32_t> &lane) {
        for (int32_t x : lane)
            if (x != lane.front())
                return false;
        return true;
    };
    uniform = n > 0 && constant(leak) && constant(revSel) &&
        constant(thr) && constant(negLim) && constant(posMul) &&
        constant(posAdd) && constant(negMul) && constant(negAdd) &&
        constant(lo) && constant(hi);
}

void
precomputeStochDraws(const UpdateLanes &lanes,
                     const std::vector<uint32_t> &stoch_list,
                     Lfsr16 &rng, StochDraws &out)
{
    out.resize(lanes.size());
    for (uint32_t j : stoch_list) {
        // Architectural draw order per neuron: leak byte first, then
        // the threshold mask (see endOfTickUpdate).  Outcomes depend
        // only on the draw position, never on the potential.
        int32_t eff = lanes.leak[j];
        if (lanes.leakStochFlag[j]) {
            uint8_t rho = rng.nextByte();
            eff = rho < lanes.leakAbs[j] ? lanes.leakSgn[j] : 0;
        }
        int32_t eta = 0;
        if (lanes.maskBits[j])
            eta = rng.nextMasked(lanes.maskBits[j]);
        out.leak[j] = eff;
        out.thr[j] = lanes.thr[j] + eta;
        // Linear resets subtract (threshold + eta); Store and None
        // adds are draw-independent.
        out.posAdd[j] = lanes.posLinear[j] ? lanes.posAdd[j] - eta
                                           : lanes.posAdd[j];
    }
}

size_t
UpdateLanes::footprintBytes() const
{
    auto vec = [](const std::vector<int32_t> &v) {
        return v.capacity() * sizeof(int32_t);
    };
    auto bvec = [](const std::vector<uint8_t> &v) {
        return v.capacity();
    };
    return vec(leak) + vec(revSel) + vec(thr) + vec(negLim) +
        vec(posMul) + vec(posAdd) + vec(negMul) + vec(negAdd) +
        vec(lo) + vec(hi) + deterministic.footprintBytes() +
        stochastic.footprintBytes() + bvec(leakStochFlag) +
        bvec(maskBits) + bvec(posLinear) + vec(leakSgn) +
        vec(leakAbs);
}

namespace {

template <typename W>
void
batchUpdateRangeT(const UpdateLanes &lanes, int32_t *v,
                  uint32_t begin, uint32_t end, BitVec &fired_bits)
{
    // Per 64-lane strip: a flat compute loop storing fired flags as
    // bytes (no cross-lane dependency, so it can vectorize), then a
    // scalar pack of the flags into the strip's fired word.
    uint32_t j = begin;
    while (j < end) {
        const size_t word = j / 64;
        const uint32_t base = j;
        const uint32_t stop = std::min<uint32_t>(
            end, static_cast<uint32_t>((word + 1) * 64));
        uint8_t flags[64];
        for (uint32_t k = 0; j < stop; ++j, ++k)
            flags[k] = batchUpdateOneT<W>(lanes, v, j);
        uint64_t bits = 0;
        for (uint32_t k = 0; k < stop - base; ++k)
            bits |= static_cast<uint64_t>(flags[k])
                << ((base + k) % 64);
        if (bits)
            fired_bits.orWordAt(word, bits);
    }
}

/**
 * Homogeneous-core variant: every lane value is hoisted into a
 * register before the strip loop, so the loop body reads nothing but
 * the potential array — the memory-bound 10-lane kernel becomes a
 * pure streaming pass (see ROADMAP: fused-lane follow-up).
 * Arithmetic is identical to batchUpdateOneV, value for value.
 */
template <typename W>
void
batchUpdateUniformRangeT(const UpdateLanes &lanes, int32_t *v,
                         uint32_t begin, uint32_t end,
                         BitVec &fired_bits)
{
    const W leak = lanes.leak[0];
    const W rev = lanes.revSel[0];
    const W thr = lanes.thr[0];
    const W neg_lim = lanes.negLim[0];
    const W pos_mul = lanes.posMul[0];
    const W pos_add = lanes.posAdd[0];
    const W neg_mul = lanes.negMul[0];
    const W neg_add = lanes.negAdd[0];
    const W lo = lanes.lo[0];
    const W hi = lanes.hi[0];

    uint32_t j = begin;
    while (j < end) {
        const size_t word = j / 64;
        const uint32_t base = j;
        const uint32_t stop = std::min<uint32_t>(
            end, static_cast<uint32_t>((word + 1) * 64));
        uint8_t flags[64];
        for (uint32_t k = 0; j < stop; ++j, ++k) {
            W x = v[j];
            W sg = (x > 0) - (x < 0);
            W omega = 1 + rev * (sg - 1);
            W u = x + omega * leak;
            u = u < lo ? lo : (u > hi ? hi : u);
            bool fired = u >= thr;
            bool neg = u < neg_lim;
            W pos = pos_mul * u + pos_add;
            pos = pos < lo ? lo : (pos > hi ? hi : pos);
            W ng = neg_mul * u + neg_add;
            ng = ng < lo ? lo : (ng > hi ? hi : ng);
            W out = fired ? pos : (neg ? ng : u);
            v[j] = static_cast<int32_t>(out);
            flags[k] = fired;
        }
        uint64_t bits = 0;
        for (uint32_t k = 0; k < stop - base; ++k)
            bits |= static_cast<uint64_t>(flags[k])
                << ((base + k) % 64);
        if (bits)
            fired_bits.orWordAt(word, bits);
    }
}

/**
 * Narrow-cohort range kernel through the runtime-dispatched SIMD
 * strip (util/simd.hh): per word-aligned strip, hand the lane
 * pointers to the active level's updateStrip and OR the returned
 * fired flags into the strip's word.  Every dispatch level computes
 * batchUpdateOneV<int32_t> value for value, so the choice of level
 * never changes an output bit.
 */
void
batchUpdateRangeSimd(const UpdateLanes &lanes, int32_t *v,
                     uint32_t begin, uint32_t end, BitVec &fired_bits)
{
    const simd::Ops &ops = simd::ops();
    uint32_t j = begin;
    while (j < end) {
        const size_t word = j / 64;
        const uint32_t stop = std::min<uint32_t>(
            end, static_cast<uint32_t>((word + 1) * 64));
        simd::UpdateStrip s = {
            v + j,
            lanes.leak.data() + j,
            lanes.revSel.data() + j,
            lanes.thr.data() + j,
            lanes.negLim.data() + j,
            lanes.posMul.data() + j,
            lanes.posAdd.data() + j,
            lanes.negMul.data() + j,
            lanes.negAdd.data() + j,
            lanes.lo.data() + j,
            lanes.hi.data() + j,
        };
        uint64_t bits = ops.updateStrip(s, stop - j);
        if (bits)
            fired_bits.orWordAt(word, bits << (j % 64));
        j = stop;
    }
}

/** Runs shorter than this skip the dispatched strip kernel. */
constexpr uint32_t kSimdMinLanes = 16;

} // anonymous namespace

void
batchUpdateRange(const UpdateLanes &lanes, int32_t *v,
                 uint32_t begin, uint32_t end, BitVec &fired_bits)
{
    // The narrow proof (every intermediate fits int32) is exactly
    // the SIMD strip kernel's precondition; wide cores keep the
    // scalar int64 kernels.  Short runs — the deterministic gaps
    // between scattered stochastic neurons — stay on the inlined
    // int32 template: the dispatch call plus the vector kernels'
    // masked loads of eleven lane arrays cost more than they save
    // under ~a quarter strip, and batchUpdateOneT<int32_t> is the
    // same arithmetic value for value, so the cutoff never changes
    // an output bit.
    if (lanes.narrow) {
        if (end - begin >= kSimdMinLanes)
            batchUpdateRangeSimd(lanes, v, begin, end, fired_bits);
        else
            batchUpdateRangeT<int32_t>(lanes, v, begin, end,
                                       fired_bits);
        return;
    }
    if (lanes.uniform)
        batchUpdateUniformRangeT<int64_t>(lanes, v, begin, end,
                                          fired_bits);
    else
        batchUpdateRangeT<int64_t>(lanes, v, begin, end, fired_bits);
}

uint64_t
batchUpdateMasked(const UpdateLanes &lanes, int32_t *v,
                  const BitVec &mask, BitVec &fired_bits)
{
    uint64_t updated = 0;
    mask.forEachSetWord([&](size_t w, uint64_t word) {
        if (word == ~0ull) {
            batchUpdateRange(lanes, v, static_cast<uint32_t>(w * 64),
                             static_cast<uint32_t>(w * 64 + 64),
                             fired_bits);
            updated += 64;
            return;
        }
        uint64_t bits = word;
        uint64_t fired = 0;
        while (bits) {
            unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            fired |= static_cast<uint64_t>(
                batchUpdateOne(lanes, v, w * 64 + b)) << b;
            ++updated;
        }
        if (fired)
            fired_bits.orWordAt(w, fired);
    });
    return updated;
}

void
InstanceLane::init(uint32_t neurons)
{
    v.assign(neurons, 0);
    doneThrough.assign(neurons, 0);
    scheduledFire.assign(neurons, 0);
    selfEvents.clear();
    selfEventsStale = 0;
    firedBits = BitVec(neurons);
}

size_t
InstanceLane::footprintBytes() const
{
    return v.capacity() * sizeof(int32_t) +
           doneThrough.capacity() * sizeof(uint64_t) +
           scheduledFire.capacity() * sizeof(uint64_t) +
           selfEvents.capacity() *
               sizeof(std::pair<uint64_t, uint32_t>) +
           firedBits.footprintBytes();
}

void
InstanceLanes::init(uint32_t instances, uint32_t neurons)
{
    lanes.clear();
    lanes.resize(instances);
    for (InstanceLane &lane : lanes)
        lane.init(neurons);
}

size_t
InstanceLanes::footprintBytes() const
{
    size_t total = lanes.capacity() * sizeof(InstanceLane);
    for (const InstanceLane &lane : lanes)
        total += lane.footprintBytes();
    return total;
}

} // namespace nscs
