/**
 * @file
 * Batched (word-parallel) end-of-tick neuron updates.
 *
 * The per-tick update phase — leak, threshold, fire, reset — is the
 * architectural steady-state cost of the chip: the hardware evaluates
 * every neuron every tick.  The scalar path (neuron/neuron.hh's
 * endOfTickUpdate) walks the AoS NeuronParams array and branches on
 * every field; this file provides the structure-of-arrays projection
 * and a flat, auto-vectorizable kernel for the *deterministic update
 * cohort* — neurons that draw nothing per tick (no stochastic leak,
 * no threshold mask), which is every neuron with
 * drawsPerTick(p) == false.
 *
 * Equivalence argument (mirrors the word-parallel integrate path):
 * for a zero-draw neuron, one end-of-tick update is the pure function
 *
 *   u   = clamp(v + omega * leak)          omega = reversal ? sgn(v) : 1
 *   out = u >= threshold       -> posReset(u)       (fired)
 *       | u < -negThreshold    -> negRule(u)
 *       | otherwise            -> u
 *
 * and both posReset and negRule are affine selects of the form
 * clamp(mul * u + add) with per-neuron constants:
 *
 *   posReset: Store (0, R)   Linear (1, -threshold)    None (1, 0)
 *   negRule:  saturate (0, -beta)   Store (0, clamp(-R))
 *             Linear (1, +beta)     None (1, 0)
 *
 * Projecting (mul, add) pairs into lanes at construction removes every
 * data-dependent branch from the kernel, so updating a neuron is a
 * handful of lane loads, two compares and three clamped selects —
 * identical arithmetic to the scalar path, evaluated in the same
 * per-neuron order, consuming zero PRNG draws.  Stochastic-cohort
 * neurons must keep using endOfTickUpdate; see core/core.cc for how
 * the cohorts are interleaved without perturbing the LFSR stream.
 */

#ifndef NSCS_NEURON_BATCH_HH
#define NSCS_NEURON_BATCH_HH

#include <cstdint>
#include <vector>

#include "neuron/params.hh"
#include "util/bitvec.hh"

namespace nscs {

/**
 * Structure-of-arrays projection of the update-relevant NeuronParams
 * fields, one lane entry per neuron.  The AoS params array stays the
 * source of truth; lanes are a read-only view built once.
 */
struct UpdateLanes
{
    std::vector<int32_t> leak;     //!< signed leak per tick
    std::vector<int32_t> revSel;   //!< 1 if leakReversal else 0
    std::vector<int32_t> thr;      //!< positive threshold
    std::vector<int32_t> negLim;   //!< -negThreshold
    std::vector<int32_t> posMul;   //!< positive-reset select: mul
    std::vector<int32_t> posAdd;   //!< positive-reset select: add
    std::vector<int32_t> negMul;   //!< negative-rule select: mul
    std::vector<int32_t> negAdd;   //!< negative-rule select: add
    std::vector<int32_t> lo;       //!< lower saturation rail
    std::vector<int32_t> hi;       //!< upper saturation rail

    /** Zero-draw neurons (the batchable deterministic cohort). */
    BitVec deterministic;

    /** Complement: neurons that draw per tick (scalar cohort). */
    BitVec stochastic;

    /**
     * True when every neuron's potentialBits <= 30, in which case
     * all kernel intermediates (|rail| + |leak|, u + add with
     * |add| <= rail) fit in int32 and the narrow kernel applies —
     * int32 lanes auto-vectorize on baseline x86-64 where int64
     * compares do not.
     */
    bool narrow = false;

    /** Build all lanes from a validated parameter array. */
    void build(const std::vector<NeuronParams> &params);

    /** Number of neurons projected. */
    size_t size() const { return leak.size(); }

    /** Heap footprint of the lanes in bytes. */
    size_t footprintBytes() const;
};

/**
 * One batched end-of-tick update of neuron @p j.  @p j must be in the
 * deterministic cohort.  @return true if the neuron fired.
 *
 * Kept inline in the header so the flat range kernel, the masked
 * kernel and any caller-side loop all compile down to the same
 * branch-free select chain.
 */
template <typename W>
inline bool
batchUpdateOneT(const UpdateLanes &L, int32_t *v, size_t j)
{
    // Restrict-qualified lane views: the potential array can never
    // alias the const projection lanes, and telling the compiler so
    // keeps the word loop in batchUpdateRange auto-vectorizable.
    const int32_t *__restrict leak = L.leak.data();
    const int32_t *__restrict rev = L.revSel.data();
    const int32_t *__restrict thr = L.thr.data();
    const int32_t *__restrict neg_lim = L.negLim.data();
    const int32_t *__restrict pos_mul = L.posMul.data();
    const int32_t *__restrict pos_add = L.posAdd.data();
    const int32_t *__restrict neg_mul = L.negMul.data();
    const int32_t *__restrict neg_add = L.negAdd.data();
    const int32_t *__restrict lo_l = L.lo.data();
    const int32_t *__restrict hi_l = L.hi.data();

    W x = v[j];
    W sg = (x > 0) - (x < 0);
    // omega = reversal ? sgn(v) : 1, as an arithmetic select.
    W omega = 1 + rev[j] * (sg - 1);
    W lo = lo_l[j];
    W hi = hi_l[j];
    W u = x + omega * leak[j];
    u = u < lo ? lo : (u > hi ? hi : u);
    bool fired = u >= thr[j];
    bool neg = u < neg_lim[j];
    W pos = pos_mul[j] * u + pos_add[j];
    pos = pos < lo ? lo : (pos > hi ? hi : pos);
    W ng = neg_mul[j] * u + neg_add[j];
    ng = ng < lo ? lo : (ng > hi ? hi : ng);
    W out = fired ? pos : (neg ? ng : u);
    v[j] = static_cast<int32_t>(out);
    return fired;
}

/** One batched update with the widest-safe arithmetic type. */
inline bool
batchUpdateOne(const UpdateLanes &L, int32_t *v, size_t j)
{
    return L.narrow ? batchUpdateOneT<int32_t>(L, v, j)
                    : batchUpdateOneT<int64_t>(L, v, j);
}

/**
 * Flat batched update of neurons [begin, end) — all of which must be
 * in the deterministic cohort.  Fired neurons are OR-ed into
 * @p fired_bits (sized to the neuron count) 64 lanes per word.
 */
void batchUpdateRange(const UpdateLanes &lanes, int32_t *v,
                      uint32_t begin, uint32_t end, BitVec &fired_bits);

/**
 * Masked batched update: update exactly the set bits of @p mask
 * (which must already be restricted to the deterministic cohort), in
 * ascending index order; full words take the flat kernel.
 * @return the number of neurons updated.
 */
uint64_t batchUpdateMasked(const UpdateLanes &lanes, int32_t *v,
                           const BitVec &mask, BitVec &fired_bits);

} // namespace nscs

#endif // NSCS_NEURON_BATCH_HH
