/**
 * @file
 * Batched (word-parallel) end-of-tick neuron updates.
 *
 * The per-tick update phase — leak, threshold, fire, reset — is the
 * architectural steady-state cost of the chip: the hardware evaluates
 * every neuron every tick.  The scalar path (neuron/neuron.hh's
 * endOfTickUpdate) walks the AoS NeuronParams array and branches on
 * every field; this file provides the structure-of-arrays projection
 * and a flat, auto-vectorizable kernel for the *deterministic update
 * cohort* — neurons that draw nothing per tick (no stochastic leak,
 * no threshold mask), which is every neuron with
 * drawsPerTick(p) == false.
 *
 * Equivalence argument (mirrors the word-parallel integrate path):
 * for a zero-draw neuron, one end-of-tick update is the pure function
 *
 *   u   = clamp(v + omega * leak)          omega = reversal ? sgn(v) : 1
 *   out = u >= threshold       -> posReset(u)       (fired)
 *       | u < -negThreshold    -> negRule(u)
 *       | otherwise            -> u
 *
 * and both posReset and negRule are affine selects of the form
 * clamp(mul * u + add) with per-neuron constants:
 *
 *   posReset: Store (0, R)   Linear (1, -threshold)    None (1, 0)
 *   negRule:  saturate (0, -beta)   Store (0, clamp(-R))
 *             Linear (1, +beta)     None (1, 0)
 *
 * Projecting (mul, add) pairs into lanes at construction removes every
 * data-dependent branch from the kernel, so updating a neuron is a
 * handful of lane loads, two compares and three clamped selects —
 * identical arithmetic to the scalar path, evaluated in the same
 * per-neuron order, consuming zero PRNG draws.  See core/core.cc for
 * how the cohorts are interleaved without perturbing the LFSR stream.
 *
 * Two extensions on top of the deterministic kernel:
 *
 *  - Uniform fast path: when every neuron projects to identical lane
 *    values (a fully homogeneous core — the architectural common
 *    case), the per-lane loads collapse to scalar constants hoisted
 *    out of the loop, leaving a pure streaming pass over the
 *    potential array (UpdateLanes::uniform).
 *
 *  - Stochastic cohort via precomputed draws: a drawsPerTick
 *    neuron's PRNG outcomes are *position-only* — the stochastic
 *    leak draw compares a byte against |leak| and the threshold mask
 *    draw produces eta, neither of which depends on the membrane
 *    potential.  Drawing all outcomes first (per neuron, leak draw
 *    then mask draw, ascending index — exactly the scalar order)
 *    yields per-tick effective lanes (leak', threshold + eta,
 *    posAdd - eta for Linear resets) under which the update is the
 *    same pure affine-select function as the deterministic kernel.
 *    The draw stream is untouched: same draws, same order, same
 *    count (see precomputeStochDraws).
 */

#ifndef NSCS_NEURON_BATCH_HH
#define NSCS_NEURON_BATCH_HH

#include <cstdint>
#include <vector>

#include "neuron/params.hh"
#include "util/bitvec.hh"
#include "util/rng.hh"

namespace nscs {

/**
 * Structure-of-arrays projection of the update-relevant NeuronParams
 * fields, one lane entry per neuron.  The AoS params array stays the
 * source of truth; lanes are a read-only view built once.
 */
struct UpdateLanes
{
    std::vector<int32_t> leak;     //!< signed leak per tick
    std::vector<int32_t> revSel;   //!< 1 if leakReversal else 0
    std::vector<int32_t> thr;      //!< positive threshold
    std::vector<int32_t> negLim;   //!< -negThreshold
    std::vector<int32_t> posMul;   //!< positive-reset select: mul
    std::vector<int32_t> posAdd;   //!< positive-reset select: add
    std::vector<int32_t> negMul;   //!< negative-rule select: mul
    std::vector<int32_t> negAdd;   //!< negative-rule select: add
    std::vector<int32_t> lo;       //!< lower saturation rail
    std::vector<int32_t> hi;       //!< upper saturation rail

    /** Zero-draw neurons (the batchable deterministic cohort). */
    BitVec deterministic;

    /** Complement: neurons that draw per tick. */
    BitVec stochastic;

    // Static per-neuron facts the stochastic draw precompute needs
    // (meaningful only for stochastic-cohort neurons).
    std::vector<uint8_t> leakStochFlag; //!< stochastic leak enabled
    std::vector<uint8_t> maskBits;      //!< threshold mask width
    std::vector<uint8_t> posLinear;     //!< ResetMode::Linear
    std::vector<int32_t> leakSgn;       //!< sgn(leak)
    std::vector<int32_t> leakAbs;       //!< |leak| (vs. byte draw)

    /**
     * True when every neuron projects to identical lane values: the
     * homogeneous-core fast path applies (scalar constants instead
     * of per-lane loads).
     */
    bool uniform = false;

    /**
     * True when every neuron's potentialBits <= 30, in which case
     * all kernel intermediates (|rail| + |leak|, u + add with
     * |add| <= rail) fit in int32 and the narrow kernel applies —
     * int32 lanes auto-vectorize on baseline x86-64 where int64
     * compares do not.
     */
    bool narrow = false;

    /** Build all lanes from a validated parameter array. */
    void build(const std::vector<NeuronParams> &params);

    /** Number of neurons projected. */
    size_t size() const { return leak.size(); }

    /** Heap footprint of the lanes in bytes. */
    size_t footprintBytes() const;
};

/**
 * Restrict-qualified pointer view of the update lanes: the potential
 * array can never alias the const projection lanes, and telling the
 * compiler so keeps the word loop in batchUpdateRange
 * auto-vectorizable.  The stochastic-cohort kernel substitutes the
 * three per-tick-varying lanes (leak, thr, posAdd) with precomputed
 * draw outcomes and reuses the identical arithmetic.
 */
struct UpdateLaneView
{
    const int32_t *__restrict leak;
    const int32_t *__restrict rev;
    const int32_t *__restrict thr;
    const int32_t *__restrict negLim;
    const int32_t *__restrict posMul;
    const int32_t *__restrict posAdd;
    const int32_t *__restrict negMul;
    const int32_t *__restrict negAdd;
    const int32_t *__restrict lo;
    const int32_t *__restrict hi;
};

/** View of the static (deterministic-cohort) lanes. */
inline UpdateLaneView
laneView(const UpdateLanes &L)
{
    return {L.leak.data(),   L.revSel.data(), L.thr.data(),
            L.negLim.data(), L.posMul.data(), L.posAdd.data(),
            L.negMul.data(), L.negAdd.data(), L.lo.data(),
            L.hi.data()};
}

/**
 * One batched end-of-tick update of neuron @p j under lane view
 * @p V.  @return true if the neuron fired.
 *
 * Kept inline in the header so the flat range kernel, the masked
 * kernel and any caller-side loop all compile down to the same
 * branch-free select chain.
 */
template <typename W>
inline bool
batchUpdateOneV(const UpdateLaneView &V, int32_t *v, size_t j)
{
    W x = v[j];
    W sg = (x > 0) - (x < 0);
    // omega = reversal ? sgn(v) : 1, as an arithmetic select.
    W omega = 1 + V.rev[j] * (sg - 1);
    W lo = V.lo[j];
    W hi = V.hi[j];
    W u = x + omega * V.leak[j];
    u = u < lo ? lo : (u > hi ? hi : u);
    bool fired = u >= V.thr[j];
    bool neg = u < V.negLim[j];
    W pos = V.posMul[j] * u + V.posAdd[j];
    pos = pos < lo ? lo : (pos > hi ? hi : pos);
    W ng = V.negMul[j] * u + V.negAdd[j];
    ng = ng < lo ? lo : (ng > hi ? hi : ng);
    W out = fired ? pos : (neg ? ng : u);
    v[j] = static_cast<int32_t>(out);
    return fired;
}

template <typename W>
inline bool
batchUpdateOneT(const UpdateLanes &L, int32_t *v, size_t j)
{
    return batchUpdateOneV<W>(laneView(L), v, j);
}

/** One batched update with the widest-safe arithmetic type. */
inline bool
batchUpdateOne(const UpdateLanes &L, int32_t *v, size_t j)
{
    return L.narrow ? batchUpdateOneT<int32_t>(L, v, j)
                    : batchUpdateOneT<int64_t>(L, v, j);
}

/**
 * Per-tick stochastic draw outcomes, projected into effective lanes
 * indexed by neuron (only stochastic-cohort positions are written).
 */
struct StochDraws
{
    std::vector<int32_t> leak;    //!< effective leak this tick
    std::vector<int32_t> thr;     //!< threshold + eta
    std::vector<int32_t> posAdd;  //!< positive-reset add, eta folded

    /** Size the scratch for @p n neurons. */
    void
    resize(size_t n)
    {
        leak.resize(n);
        thr.resize(n);
        posAdd.resize(n);
    }

    /** Heap footprint in bytes. */
    size_t
    footprintBytes() const
    {
        return (leak.capacity() + thr.capacity() +
                posAdd.capacity()) * sizeof(int32_t);
    }
};

/**
 * Draw every per-tick PRNG outcome of the stochastic cohort
 * @p stoch_list (ascending neuron indices) in the architectural
 * order — per neuron: the stochastic leak byte, then the threshold
 * mask — and fold the outcomes into effective lanes in @p out.
 * After this call, batchUpdateStochOne applied per neuron in any
 * order computes exactly what endOfTickUpdate would have, with the
 * LFSR stream advanced identically.
 */
void precomputeStochDraws(const UpdateLanes &lanes,
                          const std::vector<uint32_t> &stoch_list,
                          Lfsr16 &rng, StochDraws &out);

/**
 * One stochastic-cohort update of neuron @p j using precomputed draw
 * outcomes.  Always runs the wide kernel: eta widens the threshold
 * and reset intermediates past the narrow-kernel headroom proof.
 */
inline bool
batchUpdateStochOne(const UpdateLanes &L, const StochDraws &D,
                    int32_t *v, size_t j)
{
    UpdateLaneView V = laneView(L);
    V.leak = D.leak.data();
    V.thr = D.thr.data();
    V.posAdd = D.posAdd.data();
    return batchUpdateOneV<int64_t>(V, v, j);
}

/**
 * Flat batched update of neurons [begin, end) — all of which must be
 * in the deterministic cohort.  Fired neurons are OR-ed into
 * @p fired_bits (sized to the neuron count) 64 lanes per word.
 */
void batchUpdateRange(const UpdateLanes &lanes, int32_t *v,
                      uint32_t begin, uint32_t end, BitVec &fired_bits);

/**
 * Masked batched update: update exactly the set bits of @p mask
 * (which must already be restricted to the deterministic cohort), in
 * ascending index order; full words take the flat kernel.
 * @return the number of neurons updated.
 */
uint64_t batchUpdateMasked(const UpdateLanes &lanes, int32_t *v,
                           const BitVec &mask, BitVec &fired_bits);

/**
 * All mutable per-replica state of one model instance running on a
 * core: membrane potentials, event-engine bookkeeping, the private
 * LFSR stream and the fired mask.  Everything *configured* (crossbar,
 * axon types, neuron parameters, update-lane projections) stays on
 * the core, shared read-only across instances.
 *
 * The determinism contract of instance batching hangs off this
 * split: a lane holds exactly the state a single-instance core
 * holds, each lane's LFSR is seeded with the same core seed, and the
 * core evaluates lanes strictly one after the other within a tick —
 * so lane i's trajectory is bit-identical to an independent
 * sequential run of the same model with the same inputs.
 */
struct InstanceLane
{
    /** Membrane potential per neuron. */
    std::vector<int32_t> v;

    /** Event engine: tick each neuron's updates are settled through. */
    std::vector<uint64_t> doneThrough;

    /** Predicted unstimulated self-fire tick per neuron (the core's
     *  kNoFire sentinel when none). */
    std::vector<uint64_t> scheduledFire;

    /** Min-heap (std::push_heap/pop_heap with std::greater) of
     *  pending (tick, neuron) self-fire events. */
    std::vector<std::pair<uint64_t, uint32_t>> selfEvents;

    /** Lazily-compacted stale entries in selfEvents. */
    uint64_t selfEventsStale = 0;

    /** This replica's private hardware PRNG stream. */
    Lfsr16 rng;

    /** Neurons that fired in the lane's last evaluated tick. */
    BitVec firedBits;

    /** Size all per-neuron state for @p neurons neurons. */
    void init(uint32_t neurons);

    /** Heap footprint of this lane in bytes. */
    size_t footprintBytes() const;
};

/**
 * The per-instance lanes of one core: lane i carries replica i.
 * B == 1 is the degenerate (classic single-instance) case; the core
 * always runs through lanes so there is exactly one code path.
 */
struct InstanceLanes
{
    std::vector<InstanceLane> lanes;

    /** Create @p instances lanes of @p neurons neurons each. */
    void init(uint32_t instances, uint32_t neurons);

    /** Number of instance lanes. */
    uint32_t
    size() const
    {
        return static_cast<uint32_t>(lanes.size());
    }

    InstanceLane &operator[](size_t i) { return lanes[i]; }
    const InstanceLane &operator[](size_t i) const { return lanes[i]; }

    /** Heap footprint of all lanes in bytes. */
    size_t footprintBytes() const;
};

} // namespace nscs

#endif // NSCS_NEURON_BATCH_HH
