#include "neuron/behaviors.hh"

#include <cmath>
#include <deque>

#include "neuron/neuron.hh"
#include "util/logging.hh"

namespace nscs {

const std::vector<Behavior> &
allBehaviors()
{
    static const std::vector<Behavior> all = {
        Behavior::TonicSpiking,
        Behavior::TonicBursting,
        Behavior::Integrator,
        Behavior::CoincidenceDetector,
        Behavior::Pacemaker,
        Behavior::StochasticSpiker,
        Behavior::RateDivider,
        Behavior::SaturatingInhibition,
        Behavior::NegativeRebound,
        Behavior::Adaptation,
        Behavior::Refractory,
        Behavior::ThresholdJitter,
    };
    return all;
}

std::string
behaviorName(Behavior b)
{
    switch (b) {
      case Behavior::TonicSpiking:         return "tonic-spiking";
      case Behavior::TonicBursting:        return "tonic-bursting";
      case Behavior::Integrator:           return "integrator";
      case Behavior::CoincidenceDetector:  return "coincidence-detector";
      case Behavior::Pacemaker:            return "pacemaker";
      case Behavior::StochasticSpiker:     return "stochastic-spiker";
      case Behavior::RateDivider:          return "rate-divider";
      case Behavior::SaturatingInhibition: return "saturating-inhibition";
      case Behavior::NegativeRebound:      return "negative-rebound";
      case Behavior::Adaptation:           return "adaptation";
      case Behavior::Refractory:           return "refractory";
      case Behavior::ThresholdJitter:      return "threshold-jitter";
    }
    panic("unknown behavior");
}

std::string
behaviorDescription(Behavior b)
{
    switch (b) {
      case Behavior::TonicSpiking:
        return "regular drive produces a regular spike train";
      case Behavior::TonicBursting:
        return "linear reset turns each strong input into a burst";
      case Behavior::Integrator:
        return "zero leak sums inputs perfectly across gaps";
      case Behavior::CoincidenceDetector:
        return "leak-reversal decay: only paired pulses reach threshold";
      case Behavior::Pacemaker:
        return "positive leak self-oscillates with no input";
      case Behavior::StochasticSpiker:
        return "masked random threshold yields irregular intervals";
      case Behavior::RateDivider:
        return "stochastic synapse passes ~1/4 of input spikes";
      case Behavior::SaturatingInhibition:
        return "inhibition floors at -beta; release rebound follows";
      case Behavior::NegativeRebound:
        return "negative reset converts inhibition into a rebound spike";
      case Behavior::Adaptation:
        return "delayed self-inhibition stretches the ISI after onset";
      case Behavior::Refractory:
        return "strong self-inhibition enforces a post-spike dead time";
      case Behavior::ThresholdJitter:
        return "stochastic threshold jitters an otherwise regular train";
    }
    panic("unknown behavior");
}

BehaviorPreset
behaviorPreset(Behavior b)
{
    BehaviorPreset preset;
    preset.behavior = b;
    NeuronParams &p = preset.params;
    switch (b) {
      case Behavior::TonicSpiking:
        p.synWeight[0] = 1;
        p.threshold = 4;
        preset.inputPeriod = 1;
        break;
      case Behavior::TonicBursting:
        p.synWeight[0] = 12;
        p.threshold = 4;
        p.resetMode = ResetMode::Linear;
        preset.inputPeriod = 8;
        break;
      case Behavior::Integrator:
        p.synWeight[0] = 1;
        p.threshold = 3;
        preset.inputPeriod = 7;
        break;
      case Behavior::CoincidenceDetector:
        p.synWeight[0] = 4;
        p.leak = -2;
        p.leakReversal = true;
        p.threshold = 4;
        preset.extraInputs = {5, 6, 20, 30, 31, 45, 60, 61};
        break;
      case Behavior::Pacemaker:
        p.leak = 2;
        p.threshold = 16;
        break;
      case Behavior::StochasticSpiker:
        p.leak = 2;
        p.threshold = 8;
        p.thresholdMaskBits = 4;
        break;
      case Behavior::RateDivider:
        p.synWeight[0] = 64;
        p.synStochastic[0] = true;
        p.threshold = 1;
        preset.inputPeriod = 1;
        break;
      case Behavior::SaturatingInhibition:
        p.synWeight[0] = -3;
        p.leak = 1;
        p.threshold = 6;
        p.negThreshold = 10;
        p.negSaturate = true;
        preset.inputPeriod = 1;
        preset.inputCount = 50;
        break;
      case Behavior::NegativeRebound:
        // The negative reset maps a deep inhibitory excursion to
        // -R = +25, just under threshold, so a rebound spike follows
        // within a few ticks.  beta sits below the positive reset
        // potential (-25) so normal firing never triggers the jump.
        p.synWeight[0] = -80;
        p.leak = 1;
        p.threshold = 30;
        p.negThreshold = 30;
        p.negSaturate = false;
        p.resetMode = ResetMode::Store;
        p.resetPotential = -25;
        preset.inputPeriod = 40;
        preset.inputStart = 10;
        break;
      case Behavior::Adaptation:
        p.synWeight[0] = 2;
        p.synWeight[1] = -2;
        p.threshold = 10;
        preset.inputPeriod = 1;
        preset.feedbackDelay = 1;
        break;
      case Behavior::Refractory:
        p.synWeight[0] = 5;
        p.synWeight[1] = -15;
        p.threshold = 5;
        p.negThreshold = 20;
        p.negSaturate = true;
        preset.inputPeriod = 1;
        preset.feedbackDelay = 1;
        break;
      case Behavior::ThresholdJitter:
        p.synWeight[0] = 4;
        p.threshold = 12;
        p.thresholdMaskBits = 3;
        preset.inputPeriod = 1;
        break;
    }
    validateNeuronParams(p, behaviorName(b).c_str());
    return preset;
}

BehaviorTrace
runBehavior(const BehaviorPreset &preset, uint32_t ticks)
{
    Neuron neuron(preset.params, preset.seed);
    BehaviorTrace trace;
    trace.potential.reserve(ticks);

    size_t extra_idx = 0;
    uint32_t delivered = 0;
    std::deque<uint32_t> feedback;

    for (uint32_t t = 0; t < ticks; ++t) {
        bool input = false;
        if (preset.inputPeriod > 0 && t >= preset.inputStart &&
            (t - preset.inputStart) % preset.inputPeriod == 0 &&
            (preset.inputCount == 0 || delivered < preset.inputCount)) {
            input = true;
            ++delivered;
        }
        while (extra_idx < preset.extraInputs.size() &&
               preset.extraInputs[extra_idx] == t) {
            input = true;
            ++extra_idx;
        }
        if (input) {
            neuron.receive(0);
            trace.inputTicks.push_back(t);
        }
        while (!feedback.empty() && feedback.front() == t) {
            neuron.receive(1);
            feedback.pop_front();
        }
        bool fired = neuron.tick();
        trace.potential.push_back(neuron.potential());
        if (fired) {
            trace.spikes.push_back(t);
            if (preset.feedbackDelay > 0)
                feedback.push_back(t + preset.feedbackDelay);
        }
    }
    return trace;
}

double
meanIsi(const std::vector<uint32_t> &spikes)
{
    if (spikes.size() < 2)
        return 0.0;
    double total = static_cast<double>(spikes.back() - spikes.front());
    return total / static_cast<double>(spikes.size() - 1);
}

double
isiCv(const std::vector<uint32_t> &spikes)
{
    if (spikes.size() < 3)
        return 0.0;
    double mean = meanIsi(spikes);
    if (mean <= 0.0)
        return 0.0;
    double var = 0.0;
    for (size_t i = 1; i < spikes.size(); ++i) {
        double isi = static_cast<double>(spikes[i] - spikes[i - 1]);
        var += (isi - mean) * (isi - mean);
    }
    var /= static_cast<double>(spikes.size() - 2);
    return std::sqrt(var) / mean;
}

} // namespace nscs
