/**
 * @file
 * Canonical single-neuron behaviour gallery (experiment F2).
 *
 * The TrueNorth neuron paper demonstrates that one parameterised
 * digital neuron reproduces a catalogue of biologically relevant
 * behaviours.  This module provides self-contained presets — a
 * parameter set plus a standard stimulus, optionally a self-feedback
 * loop — and a tiny host-level runner that produces the spike train
 * for plotting and assertion.
 *
 * Behaviours that biologically require adaptation state (spike
 * frequency adaptation, refractory period) are realised the way the
 * hardware realises them: the neuron's own output is looped back to
 * an inhibitory axon with a delivery delay.  The runner implements
 * that loop directly; the prog/ layer builds the identical structure
 * as a one-core network.
 */

#ifndef NSCS_NEURON_BEHAVIORS_HH
#define NSCS_NEURON_BEHAVIORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "neuron/params.hh"

namespace nscs {

/** Identifier for each gallery entry. */
enum class Behavior {
    TonicSpiking,        //!< regular input -> regular output
    TonicBursting,       //!< linear reset emits spike bursts
    Integrator,          //!< perfect temporal summation (leak 0)
    CoincidenceDetector, //!< leak-reversal decay; only paired inputs fire
    Pacemaker,           //!< positive leak fires with no input
    StochasticSpiker,    //!< masked random threshold, Poisson-like ISI
    RateDivider,         //!< stochastic synapse thins the input train
    SaturatingInhibition,//!< negative threshold floor under inhibition
    NegativeRebound,     //!< negative reset produces post-inhibitory spike
    Adaptation,          //!< self-inhibition stretches ISIs over time
    Refractory,          //!< strong brief self-inhibition enforces dead time
    ThresholdJitter,     //!< stochastic threshold jitters regular ISIs
};

/** All behaviours in gallery order. */
const std::vector<Behavior> &allBehaviors();

/** Short name, e.g. "tonic-spiking". */
std::string behaviorName(Behavior b);

/** One-line description for tables. */
std::string behaviorDescription(Behavior b);

/**
 * A gallery preset: neuron parameters plus the standard stimulus that
 * elicits the behaviour.
 */
struct BehaviorPreset
{
    Behavior behavior;
    NeuronParams params;
    /** Deliver an input spike on axon type 0 every this many ticks
     *  (0 = no input). */
    uint32_t inputPeriod = 0;
    /** First tick that carries input. */
    uint32_t inputStart = 0;
    /** Number of periodic inputs to deliver (0 = unlimited). */
    uint32_t inputCount = 0;
    /** Explicit extra input ticks (for paired-pulse stimuli). */
    std::vector<uint32_t> extraInputs;
    /** When nonzero, the neuron's own spikes are fed back to axon
     *  type 1 after this many ticks (self-feedback loop). */
    uint32_t feedbackDelay = 0;
    /** PRNG seed for the stochastic presets. */
    uint16_t seed = 0x5EED;
};

/** Fetch the preset for a behaviour. */
BehaviorPreset behaviorPreset(Behavior b);

/** Result of running a preset. */
struct BehaviorTrace
{
    std::vector<uint32_t> spikes;      //!< output spike ticks
    std::vector<int32_t> potential;    //!< V after each tick
    std::vector<uint32_t> inputTicks;  //!< ticks that carried input
};

/** Run a preset for @p ticks ticks on the host-level runner. */
BehaviorTrace runBehavior(const BehaviorPreset &preset, uint32_t ticks);

/** Mean inter-spike interval of a spike train (0 when < 2 spikes). */
double meanIsi(const std::vector<uint32_t> &spikes);

/** Coefficient of variation of the ISIs (0 when < 3 spikes). */
double isiCv(const std::vector<uint32_t> &spikes);

} // namespace nscs

#endif // NSCS_NEURON_BEHAVIORS_HH
