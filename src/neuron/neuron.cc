#include "neuron/neuron.hh"

#include "util/logging.hh"
#include "util/saturate.hh"

namespace nscs {

namespace {

/** sgn with sgn(0) == 0, as used by leak reversal. */
int
sgn(int32_t x)
{
    return (x > 0) - (x < 0);
}

/**
 * Apply the negative-threshold rule once.  For every class the
 * engines may skip (Pure/LazyLeak), this rule is idempotent; the
 * non-idempotent combination (negative *linear* reset) forces Dense
 * classification, see classifyNeuron.
 */
int32_t
negativeHandle(int32_t v, const NeuronParams &p)
{
    if (v >= -p.negThreshold)
        return v;
    if (p.negSaturate)
        return -p.negThreshold;
    switch (p.resetMode) {
      case ResetMode::Store:
        return satClamp(-static_cast<int64_t>(p.resetPotential),
                        p.potentialBits);
      case ResetMode::Linear:
        return satAdd(v, p.negThreshold, p.potentialBits);
      case ResetMode::None:
        return v;
    }
    panic("unreachable reset mode");
}

} // anonymous namespace

int32_t
applyNegativeRule(int32_t v, const NeuronParams &p)
{
    return negativeHandle(v, p);
}

UpdateClass
classifyNeuron(const NeuronParams &p)
{
    if (drawsPerTick(p))
        return UpdateClass::Dense;
    // Negative linear reset climbs by beta per tick while below
    // -beta: spontaneous state change that has no closed form here.
    bool neg_linear = !p.negSaturate &&
        p.resetMode == ResetMode::Linear && p.negThreshold > 0;
    if (neg_linear)
        return UpdateClass::Dense;
    if (p.leak == 0)
        return UpdateClass::Pure;
    if (p.leakReversal)
        return UpdateClass::Dense;
    if (p.leak > 0) {
        // Rising: the only spontaneous negative-side event is the
        // one-shot saturation clamp, which is monotone.  A negative
        // *reset* (kappa=0) can jump downward and even cycle, so it
        // stays Dense.
        return p.negSaturate ? UpdateClass::LazyLeak
                             : UpdateClass::Dense;
    }
    // Falling: needs a monotone floor (saturate) or no reaction at
    // all (None reset) for a closed form.
    if (p.negSaturate || p.resetMode == ResetMode::None)
        return UpdateClass::LazyLeak;
    return UpdateClass::Dense;
}

PotentialRange
potentialRange(const NeuronParams &p)
{
    return {satMin(p.potentialBits), satMax(p.potentialBits)};
}

int32_t
integrateSynapse(int32_t v, const NeuronParams &p, unsigned g,
                 Lfsr16 *rng)
{
    NSCS_ASSERT(g < kNumAxonTypes, "axon type %u out of range", g);
    int16_t s = p.synWeight[g];
    if (!p.synStochastic[g])
        return satAdd(v, s, p.potentialBits);
    NSCS_ASSERT(rng != nullptr, "stochastic synapse without PRNG");
    uint8_t rho = rng->nextByte();
    if (rho < (s < 0 ? -s : s))
        return satAdd(v, sgn(s), p.potentialBits);
    return v;
}

int32_t
applyLeak(int32_t v, const NeuronParams &p, Lfsr16 *rng)
{
    int omega = p.leakReversal ? sgn(v) : 1;
    if (!p.leakStochastic)
        return satAdd(v, omega * p.leak, p.potentialBits);
    NSCS_ASSERT(rng != nullptr, "stochastic leak without PRNG");
    uint8_t rho = rng->nextByte();
    if (rho < (p.leak < 0 ? -p.leak : p.leak))
        return satAdd(v, omega * sgn(p.leak), p.potentialBits);
    return v;
}

FireResult
thresholdFireReset(int32_t v, const NeuronParams &p, Lfsr16 *rng)
{
    int32_t eta = 0;
    if (p.thresholdMaskBits > 0) {
        NSCS_ASSERT(rng != nullptr, "stochastic threshold without PRNG");
        eta = rng->nextMasked(p.thresholdMaskBits);
    }
    FireResult res;
    if (v >= p.threshold + eta) {
        res.fired = true;
        switch (p.resetMode) {
          case ResetMode::Store:
            res.v = p.resetPotential;
            break;
          case ResetMode::Linear:
            res.v = satAdd(v, -(p.threshold + eta), p.potentialBits);
            break;
          case ResetMode::None:
            res.v = v;
            break;
        }
        return res;
    }
    res.fired = false;
    res.v = negativeHandle(v, p);
    return res;
}

bool
endOfTickUpdate(int32_t &v, const NeuronParams &p, Lfsr16 *rng)
{
    int32_t leaked = applyLeak(v, p, rng);
    FireResult r = thresholdFireReset(leaked, p, rng);
    v = r.v;
    return r.fired;
}

int32_t
leakForward(int32_t v, const NeuronParams &p, uint64_t ticks)
{
    if (ticks == 0)
        return v;
    UpdateClass cls = classifyNeuron(p);
    NSCS_ASSERT(cls != UpdateClass::Dense,
                "leakForward on a Dense neuron");
    if (p.leak == 0) {
        // Pure: one unstimulated tick applies the (idempotent)
        // negative rule — a fire can leave V below -beta (Store
        // reset with R < -beta), which the next tick normalises.
        return negativeHandle(v, p);
    }
    int64_t lam = p.leak;
    if (lam > 0) {
        // One explicit step handles a possible one-shot clamp up to
        // -beta from a deeply negative start; afterwards the
        // trajectory is a rising line.
        int64_t u = satAdd(v, p.leak, p.potentialBits);
        if (u < -p.negThreshold)
            u = -p.negThreshold;
        return satClamp(u + lam * static_cast<int64_t>(ticks - 1),
                        p.potentialBits);
    }
    // Falling line with a floor: -beta when saturating, the register
    // minimum when the negative rule is None.
    int64_t raw = static_cast<int64_t>(v) +
        lam * static_cast<int64_t>(ticks);
    int32_t lin = satClamp(raw, p.potentialBits);
    if (p.negSaturate && lin < -p.negThreshold)
        return -p.negThreshold;
    return lin;
}

std::optional<uint64_t>
nextFireDelta(int32_t v, const NeuronParams &p)
{
    UpdateClass cls = classifyNeuron(p);
    NSCS_ASSERT(cls != UpdateClass::Dense,
                "nextFireDelta on a Dense neuron");
    int64_t lam = p.leak;
    if (lam == 0) {
        if (v >= p.threshold)
            return 1;
        // The negative rule can lift V above threshold one tick
        // later (negative reset with -R >= alpha: a rebound fire).
        if (negativeHandle(v, p) >= p.threshold)
            return 2;
        return std::nullopt;
    }
    if (lam > 0) {
        int64_t u1 = satAdd(v, p.leak, p.potentialBits);
        if (u1 < -p.negThreshold)
            u1 = -p.negThreshold;
        if (u1 >= p.threshold)
            return 1;
        // u_k = u1 + (k-1)*lam; first k with u_k >= threshold.
        int64_t need = p.threshold - u1;
        uint64_t extra = static_cast<uint64_t>((need + lam - 1) / lam);
        return 1 + extra;
    }
    // Falling: only an immediate overshoot can still fire.
    return satAdd(v, p.leak, p.potentialBits) >= p.threshold
        ? std::optional<uint64_t>(1) : std::nullopt;
}

Neuron::Neuron(const NeuronParams &params, uint16_t seed)
    : params_(params), v_(params.initialPotential), rng_(seed)
{
    validateNeuronParams(params_, "Neuron");
}

void
Neuron::receive(unsigned g)
{
    v_ = integrateSynapse(v_, params_, g, &rng_);
}

bool
Neuron::tick()
{
    return endOfTickUpdate(v_, params_, &rng_);
}

} // namespace nscs
