/**
 * @file
 * Pure neuron dynamics: the per-tick update functions shared by the
 * cycle-level core, the functional reference simulator and the
 * event-driven engine's analytic fast-forward.
 *
 * All functions are free and side-effect-free apart from PRNG draws,
 * so the equivalence contract (identical draws in identical order)
 * is easy to audit.  See neuron/params.hh for the full semantics.
 */

#ifndef NSCS_NEURON_NEURON_HH
#define NSCS_NEURON_NEURON_HH

#include <cstdint>
#include <optional>

#include "neuron/params.hh"
#include "util/rng.hh"

namespace nscs {

/**
 * How an execution engine may treat a neuron without changing
 * results.
 */
enum class UpdateClass : uint8_t {
    /**
     * No per-tick state change while unstimulated and below
     * threshold: leak == 0 and no per-tick draws.  May be skipped on
     * ticks without input, except when a pending re-fire is due.
     */
    Pure,
    /**
     * Deterministic nonzero leak without reversal whose unstimulated
     * trajectory has a closed form (see leakForward); spontaneous
     * fires are predictable (see nextFireDelta).
     */
    LazyLeak,
    /** Must be evaluated every tick (per-tick draws or reversal or a
     *  sawtooth negative-reset trajectory). */
    Dense,
};

/** Classify a (validated) parameter set for engine scheduling. */
UpdateClass classifyNeuron(const NeuronParams &p);

/** Inclusive saturation rails of a neuron's membrane register. */
struct PotentialRange
{
    int32_t lo = 0;   //!< most negative representable potential
    int32_t hi = 0;   //!< most positive representable potential
};

/**
 * Saturation rails for @p p's potentialBits.  Synaptic integration
 * is a chain of saturating adds; as long as every partial sum stays
 * strictly inside these rails the chain is order-independent, which
 * is the soundness condition of the core's word-parallel batched
 * integrate path.
 */
PotentialRange potentialRange(const NeuronParams &p);

/**
 * Apply one synaptic event of axon type @p g to potential @p v.
 * @param rng the per-core PRNG; must be non-null when
 *            synStochastic[g] is set (exactly one draw then).
 */
int32_t integrateSynapse(int32_t v, const NeuronParams &p, unsigned g,
                         Lfsr16 *rng);

/** Apply the leak step (phase 2 of the per-tick semantics). */
int32_t applyLeak(int32_t v, const NeuronParams &p, Lfsr16 *rng);

/** Outcome of the threshold/fire/reset phase. */
struct FireResult
{
    bool fired = false;   //!< positive threshold was crossed
    int32_t v = 0;        //!< potential after reset handling
};

/** Apply the threshold/fire/reset step (phase 3). */
FireResult thresholdFireReset(int32_t v, const NeuronParams &p,
                              Lfsr16 *rng);

/**
 * Apply the negative-threshold rule once (no fire, no draws).  Also
 * used to normalise initial potentials at reset; idempotent for every
 * class an engine may skip.
 */
int32_t applyNegativeRule(int32_t v, const NeuronParams &p);

/**
 * Convenience: run phases 2+3 (an end-of-tick update with no
 * further synaptic input).  @return true if the neuron fired.
 */
bool endOfTickUpdate(int32_t &v, const NeuronParams &p, Lfsr16 *rng);

/**
 * Advance an *unstimulated* LazyLeak/Pure neuron @p ticks end-of-tick
 * updates at once.  Preconditions (panic on violation): the neuron
 * classifies Pure or LazyLeak, and no fire occurs within the window —
 * i.e. ticks < nextFireDelta(v, p) when that is defined.
 */
int32_t leakForward(int32_t v, const NeuronParams &p, uint64_t ticks);

/**
 * Number of end-of-tick updates after which an unstimulated neuron at
 * potential @p v (as left by its last update) will next fire, or
 * nullopt if it never will.  Defined for Pure and LazyLeak classes.
 */
std::optional<uint64_t> nextFireDelta(int32_t v, const NeuronParams &p);

/**
 * Value-semantic single neuron: params + potential + private PRNG.
 * Used for single-neuron studies (behaviour gallery, unit tests);
 * cores keep neuron state in arrays instead.
 */
class Neuron
{
  public:
    /** Construct with validated parameters and a PRNG seed. */
    explicit Neuron(const NeuronParams &params, uint16_t seed = 0xACE1);

    /** Deliver one spike with axon type @p g (phase 1). */
    void receive(unsigned g);

    /** Finish the tick (phases 2+3). @return true if fired. */
    bool tick();

    /** Current membrane potential. */
    int32_t potential() const { return v_; }

    /** Overwrite the membrane potential (testing). */
    void setPotential(int32_t v) { v_ = v; }

    /** Parameter set. */
    const NeuronParams &params() const { return params_; }

    /** The private PRNG (testing / draw accounting). */
    Lfsr16 &rng() { return rng_; }

  private:
    NeuronParams params_;
    int32_t v_;
    Lfsr16 rng_;
};

} // namespace nscs

#endif // NSCS_NEURON_NEURON_HH
