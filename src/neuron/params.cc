#include "neuron/params.hh"

#include "util/logging.hh"
#include "util/saturate.hh"

namespace nscs {

void
validateNeuronParams(const NeuronParams &p, const char *ctx)
{
    for (unsigned g = 0; g < kNumAxonTypes; ++g) {
        if (p.synWeight[g] < -255 || p.synWeight[g] > 255)
            fatal("%s: synWeight[%u]=%d outside [-255, 255]",
                  ctx, g, p.synWeight[g]);
    }
    if (p.leak < -255 || p.leak > 255)
        fatal("%s: leak=%d outside [-255, 255]", ctx, p.leak);
    if (p.threshold < 1)
        fatal("%s: threshold=%d must be >= 1", ctx, p.threshold);
    if (p.negThreshold < 0)
        fatal("%s: negThreshold=%d must be >= 0", ctx, p.negThreshold);
    if (p.thresholdMaskBits > 16)
        fatal("%s: thresholdMaskBits=%u must be <= 16",
              ctx, p.thresholdMaskBits);
    if (p.potentialBits < 8 || p.potentialBits > 31)
        fatal("%s: potentialBits=%u outside [8, 31]",
              ctx, p.potentialBits);

    int32_t hi = satMax(p.potentialBits);
    int32_t lo = satMin(p.potentialBits);
    int64_t max_thresh = static_cast<int64_t>(p.threshold) +
        ((1 << p.thresholdMaskBits) - 1);
    if (max_thresh > hi)
        fatal("%s: threshold+mask (%lld) exceeds potential range (%d)",
              ctx, static_cast<long long>(max_thresh), hi);
    if (-p.negThreshold < lo)
        fatal("%s: -negThreshold (%d) below potential range (%d)",
              ctx, -p.negThreshold, lo);
    if (p.resetPotential > hi || p.resetPotential < lo)
        fatal("%s: resetPotential=%d outside potential range",
              ctx, p.resetPotential);
    if (p.initialPotential > hi || p.initialPotential < lo)
        fatal("%s: initialPotential=%d outside potential range",
              ctx, p.initialPotential);
    if (p.resetMode == ResetMode::Store &&
        p.resetPotential >= p.threshold) {
        warn("%s: resetPotential (%d) >= threshold (%d): neuron will "
             "re-fire every tick", ctx, p.resetPotential, p.threshold);
    }
}

bool
usesRandomness(const NeuronParams &p)
{
    if (p.leakStochastic || p.thresholdMaskBits > 0)
        return true;
    for (bool b : p.synStochastic)
        if (b)
            return true;
    return false;
}

bool
drawsPerTick(const NeuronParams &p)
{
    return p.leakStochastic || p.thresholdMaskBits > 0;
}

namespace {
const NeuronParams kDefaults{};
} // anonymous namespace

JsonValue
neuronParamsToJson(const NeuronParams &p)
{
    JsonValue o = JsonValue::object();
    if (p.synWeight != kDefaults.synWeight) {
        JsonValue w = JsonValue::array();
        for (auto s : p.synWeight)
            w.append(JsonValue::integer(s));
        o.set("synWeight", std::move(w));
    }
    if (p.synStochastic != kDefaults.synStochastic) {
        JsonValue b = JsonValue::array();
        for (auto s : p.synStochastic)
            b.append(JsonValue::boolean(s));
        o.set("synStochastic", std::move(b));
    }
    if (p.leak != kDefaults.leak)
        o.set("leak", JsonValue::integer(p.leak));
    if (p.leakReversal != kDefaults.leakReversal)
        o.set("leakReversal", JsonValue::boolean(p.leakReversal));
    if (p.leakStochastic != kDefaults.leakStochastic)
        o.set("leakStochastic", JsonValue::boolean(p.leakStochastic));
    if (p.threshold != kDefaults.threshold)
        o.set("threshold", JsonValue::integer(p.threshold));
    if (p.negThreshold != kDefaults.negThreshold)
        o.set("negThreshold", JsonValue::integer(p.negThreshold));
    if (p.thresholdMaskBits != kDefaults.thresholdMaskBits)
        o.set("thresholdMaskBits",
              JsonValue::integer(p.thresholdMaskBits));
    if (p.resetMode != kDefaults.resetMode)
        o.set("resetMode",
              JsonValue::integer(static_cast<int>(p.resetMode)));
    if (p.negSaturate != kDefaults.negSaturate)
        o.set("negSaturate", JsonValue::boolean(p.negSaturate));
    if (p.resetPotential != kDefaults.resetPotential)
        o.set("resetPotential", JsonValue::integer(p.resetPotential));
    if (p.initialPotential != kDefaults.initialPotential)
        o.set("initialPotential",
              JsonValue::integer(p.initialPotential));
    if (p.potentialBits != kDefaults.potentialBits)
        o.set("potentialBits", JsonValue::integer(p.potentialBits));
    return o;
}

NeuronParams
neuronParamsFromJson(const JsonValue &v)
{
    NeuronParams p;
    if (v.has("synWeight")) {
        const auto &w = v.at("synWeight");
        if (w.size() != kNumAxonTypes)
            fatal("neuron params: synWeight must have %u entries",
                  kNumAxonTypes);
        for (unsigned g = 0; g < kNumAxonTypes; ++g)
            p.synWeight[g] = static_cast<int16_t>(w.at(g).asInt());
    }
    if (v.has("synStochastic")) {
        const auto &b = v.at("synStochastic");
        if (b.size() != kNumAxonTypes)
            fatal("neuron params: synStochastic must have %u entries",
                  kNumAxonTypes);
        for (unsigned g = 0; g < kNumAxonTypes; ++g)
            p.synStochastic[g] = b.at(g).asBool();
    }
    p.leak = static_cast<int16_t>(v.getInt("leak", p.leak));
    p.leakReversal = v.getBool("leakReversal", p.leakReversal);
    p.leakStochastic = v.getBool("leakStochastic", p.leakStochastic);
    p.threshold = static_cast<int32_t>(v.getInt("threshold",
                                                p.threshold));
    p.negThreshold = static_cast<int32_t>(v.getInt("negThreshold",
                                                   p.negThreshold));
    p.thresholdMaskBits = static_cast<uint8_t>(
        v.getInt("thresholdMaskBits", p.thresholdMaskBits));
    p.resetMode = static_cast<ResetMode>(
        v.getInt("resetMode", static_cast<int>(p.resetMode)));
    p.negSaturate = v.getBool("negSaturate", p.negSaturate);
    p.resetPotential = static_cast<int32_t>(
        v.getInt("resetPotential", p.resetPotential));
    p.initialPotential = static_cast<int32_t>(
        v.getInt("initialPotential", p.initialPotential));
    p.potentialBits = static_cast<uint8_t>(
        v.getInt("potentialBits", p.potentialBits));
    validateNeuronParams(p, "neuronParamsFromJson");
    return p;
}

} // namespace nscs
