/**
 * @file
 * Parameters of the digital neurosynaptic neuron.
 *
 * The model follows the TrueNorth building-block neuron (Cassidy et
 * al., IJCNN 2013): a unit-delay discrete-time leaky
 * integrate-and-fire neuron with
 *
 *  - four signed synaptic weights selected by the *axon type* of the
 *    incoming spike (axons, not synapses, carry the type; every
 *    neuron interprets each type through its own weight),
 *  - per-type deterministic or stochastic synapse modes,
 *  - deterministic or stochastic leak, with an optional "leak
 *    reversal" that directs the leak toward/away from zero,
 *  - deterministic threshold plus an optional masked random component,
 *  - three positive reset modes and two negative-threshold modes,
 *  - a saturating fixed-width membrane-potential register.
 *
 * Exact per-tick semantics (the contract both the cycle-level chip
 * and the functional reference simulator implement, including the
 * order of PRNG draws):
 *
 *  1. Synaptic integration, in increasing (axon, neuron) order over
 *     the spikes delivered this tick:
 *       g := type of axon;  s := synWeight[g]
 *       deterministic (synStochastic[g] == false):
 *           V := satAdd(V, s)
 *       stochastic:
 *           rho := rng.nextByte()                     (one draw)
 *           if rho < |s|: V := satAdd(V, sgn(s))
 *  2. Leak:
 *       omega := leakReversal ? sgn(V) : +1           (sgn(0) == 0)
 *       deterministic (leakStochastic == false):
 *           V := satAdd(V, omega * leak)
 *       stochastic:
 *           rho := rng.nextByte()                     (one draw)
 *           if rho < |leak|: V := satAdd(V, omega * sgn(leak))
 *  3. Threshold, fire, reset:
 *       eta := thresholdMaskBits ? rng.nextMasked(TM) : 0  (one draw)
 *       if V >= threshold + eta:                      -> FIRE
 *           Store:  V := resetPotential
 *           Linear: V := V - (threshold + eta)
 *           None:   V unchanged
 *       else if V < -negThreshold:
 *           negSaturate:  V := -negThreshold
 *           else (negative reset):
 *               Store:  V := -resetPotential
 *               Linear: V := V + negThreshold
 *               None:   V unchanged
 *
 * PRNG draw discipline: a stochastic synapse event draws exactly
 * once per delivered spike; stochastic leak draws exactly once per
 * neuron per tick; a nonzero threshold mask draws exactly once per
 * neuron per tick.  Neurons with no stochastic feature never draw, so
 * execution engines may skip their evaluation without perturbing the
 * shared per-core PRNG stream.
 */

#ifndef NSCS_NEURON_PARAMS_HH
#define NSCS_NEURON_PARAMS_HH

#include <array>
#include <cstdint>

#include "util/json.hh"

namespace nscs {

/** Number of axon types (and per-neuron synaptic weights). */
constexpr unsigned kNumAxonTypes = 4;

/** Positive-threshold reset behaviour (gamma). */
enum class ResetMode : uint8_t {
    Store = 0,   //!< V <- resetPotential
    Linear = 1,  //!< V <- V - (threshold + eta)
    None = 2,    //!< V unchanged
};

/**
 * Complete per-neuron parameter set.  Defaults give a deterministic
 * unit-weight integrate-and-fire neuron with threshold 1.
 */
struct NeuronParams
{
    /** Signed synaptic weight per axon type; |w| <= 255. */
    std::array<int16_t, kNumAxonTypes> synWeight {1, 1, 1, 1};

    /** Per-type stochastic synapse flag (b). */
    std::array<bool, kNumAxonTypes> synStochastic {};

    /** Signed leak added every tick (lambda); |leak| <= 255. */
    int16_t leak = 0;

    /** Leak reversal flag (epsilon): leak follows sgn(V). */
    bool leakReversal = false;

    /** Stochastic leak flag (c): apply sgn(leak) with p=|leak|/256. */
    bool leakStochastic = false;

    /** Positive threshold (alpha); must be >= 1. */
    int32_t threshold = 1;

    /** Negative threshold magnitude (beta); must be >= 0. */
    int32_t negThreshold = 0;

    /** Stochastic threshold mask width TM in bits (0 = off, <= 16). */
    uint8_t thresholdMaskBits = 0;

    /** Positive reset mode (gamma). */
    ResetMode resetMode = ResetMode::Store;

    /** Negative-threshold mode (kappa): true = saturate at -beta. */
    bool negSaturate = true;

    /** Reset potential (R). */
    int32_t resetPotential = 0;

    /** Membrane potential at configuration time. */
    int32_t initialPotential = 0;

    /** Width of the saturating membrane register in bits (<= 31). */
    uint8_t potentialBits = 20;

    bool operator==(const NeuronParams &other) const = default;
};

/**
 * Validate a parameter set; calls fatal() with @p ctx in the message
 * on any violation (user error: parameters come from models/tools).
 */
void validateNeuronParams(const NeuronParams &p, const char *ctx);

/** @return true if any stochastic feature is enabled. */
bool usesRandomness(const NeuronParams &p);

/** @return true if the neuron must be evaluated every tick to stay
 *  bit-equivalent (per-tick PRNG draws). */
bool drawsPerTick(const NeuronParams &p);

/** Serialize to a JSON object (skips default-valued fields). */
JsonValue neuronParamsToJson(const NeuronParams &p);

/** Deserialize; missing fields keep defaults; calls fatal on junk. */
NeuronParams neuronParamsFromJson(const JsonValue &v);

} // namespace nscs

#endif // NSCS_NEURON_PARAMS_HH
