#include "noc/mesh.hh"

#include "util/logging.hh"

namespace nscs {

namespace {

/** The input port a flit lands on after leaving through @p out. */
Port
oppositePort(Port out)
{
    switch (out) {
      case Port::North: return Port::South;
      case Port::South: return Port::North;
      case Port::East:  return Port::West;
      case Port::West:  return Port::East;
      case Port::Local: break;
    }
    panic("oppositePort(Local)");
}

} // anonymous namespace

Mesh::Mesh(const MeshParams &params)
    : params_(params)
{
    NSCS_ASSERT(params_.width > 0 && params_.height > 0,
                "empty mesh %ux%u", params_.width, params_.height);
    NSCS_ASSERT(params_.fifoDepth > 0, "mesh fifoDepth must be > 0");
    routers_.resize(static_cast<size_t>(params_.width) * params_.height);
}

bool
Mesh::inject(uint32_t x, uint32_t y, const SpikePacket &pkt)
{
    NSCS_ASSERT(x < params_.width && y < params_.height,
                "inject at (%u, %u) outside %ux%u mesh",
                x, y, params_.width, params_.height);
    auto &fifo = routers_[idx(x, y)]
        .inBuf[static_cast<size_t>(Port::Local)];
    if (fifo.size() >= params_.fifoDepth) {
        ++stats_.injectStalls;
        return false;
    }
    SpikePacket p = pkt;
    p.injectCycle = cycle_;
    fifo.push_back(p);
    ++stats_.injected;
    return true;
}

void
Mesh::stepCycle()
{
    moves_.clear();

    // Phase 1: every output port grants at most one requesting input,
    // judged against pre-cycle downstream occupancy.
    const uint32_t w = params_.width;
    const uint32_t h = params_.height;
    for (uint32_t y = 0; y < h; ++y) {
        for (uint32_t x = 0; x < w; ++x) {
            uint32_t r = idx(x, y);
            Router &router = routers_[r];
            for (unsigned o = 0; o < kNumPorts; ++o) {
                Port out = static_cast<Port>(o);

                // Downstream space check.
                if (out != Port::Local) {
                    uint32_t nx = x, ny = y;
                    switch (out) {
                      case Port::North: ny = y + 1; break;
                      case Port::South: ny = y - 1; break;
                      case Port::East:  nx = x + 1; break;
                      case Port::West:  nx = x - 1; break;
                      case Port::Local: break;
                    }
                    if (nx >= w || ny >= h) {
                        // No neighbour: nothing can request an edge
                        // exit (validated configs keep packets on
                        // grid), so just skip the port.
                        continue;
                    }
                    const auto &down = routers_[idx(nx, ny)]
                        .inBuf[static_cast<size_t>(oppositePort(out))];
                    if (down.size() >= params_.fifoDepth)
                        continue;
                }

                // Round-robin over requesting inputs.
                for (unsigned k = 0; k < kNumPorts; ++k) {
                    unsigned i = (router.rrPtr[o] + k) % kNumPorts;
                    const auto &fifo = router.inBuf[i];
                    if (fifo.empty())
                        continue;
                    if (routeOutput(fifo.front()) != out)
                        continue;
                    moves_.push_back({r, static_cast<uint8_t>(i), out});
                    router.rrPtr[o] =
                        static_cast<uint8_t>((i + 1) % kNumPorts);
                    break;
                }
            }
        }
    }

    // Phase 2: commit all granted moves.
    for (const Move &m : moves_) {
        Router &router = routers_[m.router];
        auto &fifo = router.inBuf[m.inPort];
        NSCS_ASSERT(!fifo.empty(), "granted move from empty FIFO");
        SpikePacket pkt = fifo.front();
        fifo.pop_front();
        uint32_t x = m.router % params_.width;
        uint32_t y = m.router / params_.width;
        if (m.outPort == Port::Local) {
            ++stats_.delivered;
            stats_.latency.add(
                static_cast<double>(cycle_ - pkt.injectCycle + 1));
            stats_.hops.add(static_cast<double>(pkt.hops));
            deliveries_.push_back({x, y, pkt, cycle_});
            continue;
        }
        consumeHop(pkt, m.outPort);
        uint32_t nx = x, ny = y;
        switch (m.outPort) {
          case Port::North: ny = y + 1; break;
          case Port::South: ny = y - 1; break;
          case Port::East:  nx = x + 1; break;
          case Port::West:  nx = x - 1; break;
          case Port::Local: break;
        }
        NSCS_ASSERT(nx < params_.width && ny < params_.height,
                    "packet routed off-grid at (%u, %u) via %s",
                    x, y, portName(m.outPort));
        routers_[idx(nx, ny)]
            .inBuf[static_cast<size_t>(oppositePort(m.outPort))]
            .push_back(pkt);
        ++stats_.flitMoves;
    }

    ++cycle_;
    ++stats_.cycles;
}

bool
Mesh::idle() const
{
    for (const auto &r : routers_)
        if (!r.idle())
            return false;
    return true;
}

size_t
Mesh::occupancy() const
{
    size_t n = 0;
    for (const auto &r : routers_)
        n += r.occupancy();
    return n;
}

const Router &
Mesh::router(uint32_t x, uint32_t y) const
{
    NSCS_ASSERT(x < params_.width && y < params_.height,
                "router (%u, %u) outside mesh", x, y);
    return routers_[idx(x, y)];
}

void
Mesh::reset()
{
    for (auto &r : routers_) {
        for (auto &q : r.inBuf)
            q.clear();
        r.rrPtr = {};
    }
    deliveries_.clear();
    stats_ = MeshStats{};
    cycle_ = 0;
}

} // namespace nscs
