/**
 * @file
 * Cycle-accurate 2-D mesh interconnect.
 *
 * A grid of 5-port routers (see noc/router.hh) wired so that router
 * (x, y)'s East output feeds router (x+1, y)'s West input and its
 * North output feeds (x, y+1)'s South input.  Each global cycle is a
 * two-phase step: every output port picks at most one head flit from
 * the input FIFOs requesting it (round-robin), checked against the
 * downstream FIFO's pre-cycle free space; all granted moves then
 * commit at once.  Each input FIFO has a unique upstream output, so
 * commits never conflict.
 *
 * Packets whose remaining offset reaches (0, 0) exit through the
 * Local port into the delivery list, which the chip drains into core
 * schedulers.  Injection enters the Local input FIFO and may fail
 * when the FIFO is full (the core retries next cycle — transmit
 * backpressure).
 */

#ifndef NSCS_NOC_MESH_HH
#define NSCS_NOC_MESH_HH

#include <cstdint>
#include <vector>

#include "noc/router.hh"
#include "util/stats.hh"

namespace nscs {

/** Mesh construction parameters. */
struct MeshParams
{
    uint32_t width = 1;      //!< routers in x
    uint32_t height = 1;     //!< routers in y
    uint32_t fifoDepth = 4;  //!< per-input-port FIFO capacity
};

/** A packet that exited its destination router's Local port. */
struct MeshDelivery
{
    uint32_t x = 0;          //!< destination router x
    uint32_t y = 0;          //!< destination router y
    SpikePacket packet;      //!< the delivered packet
    uint64_t cycle = 0;      //!< delivery cycle
};

/** Aggregate mesh statistics. */
struct MeshStats
{
    uint64_t injected = 0;       //!< accepted injections
    uint64_t injectStalls = 0;   //!< rejected injections (FIFO full)
    uint64_t delivered = 0;      //!< packets handed to Local
    uint64_t flitMoves = 0;      //!< router-to-router traversals
    uint64_t cycles = 0;         //!< stepCycle invocations
    RunningStat latency;         //!< inject->deliver cycles
    RunningStat hops;            //!< per-packet hop count
};

/** The interconnect fabric. */
class Mesh
{
  public:
    explicit Mesh(const MeshParams &params);

    /**
     * Offer a packet to router (@p x, @p y)'s Local input port.
     * @return false when the FIFO is full (caller must retry).
     */
    bool inject(uint32_t x, uint32_t y, const SpikePacket &pkt);

    /** Advance every router by one cycle. */
    void stepCycle();

    /**
     * Packets delivered so far and not yet drained; callers consume
     * and then call clearDeliveries().
     */
    const std::vector<MeshDelivery> &deliveries() const
    {
        return deliveries_;
    }

    /** Drop drained deliveries. */
    void clearDeliveries() { deliveries_.clear(); }

    /** True when no flit is buffered anywhere. */
    bool idle() const;

    /** Total buffered flits (diagnostics). */
    size_t occupancy() const;

    /** Statistics. */
    const MeshStats &stats() const { return stats_; }

    /** Construction parameters. */
    const MeshParams &params() const { return params_; }

    /** Router at (@p x, @p y) (tests/diagnostics). */
    const Router &router(uint32_t x, uint32_t y) const;

    /** Current cycle count. */
    uint64_t cycle() const { return cycle_; }

    /** Clear all buffers, deliveries and statistics. */
    void reset();

  private:
    uint32_t idx(uint32_t x, uint32_t y) const
    {
        return y * params_.width + x;
    }

    MeshParams params_;
    std::vector<Router> routers_;
    std::vector<MeshDelivery> deliveries_;
    MeshStats stats_;
    uint64_t cycle_ = 0;

    /** Scratch for the compute phase (granted moves). */
    struct Move
    {
        uint32_t router;   //!< source router index
        uint8_t inPort;    //!< source input port
        Port outPort;      //!< granted output port
    };
    std::vector<Move> moves_;
};

} // namespace nscs

#endif // NSCS_NOC_MESH_HH
