#include "noc/packet.hh"

#include "util/logging.hh"

namespace nscs {

uint32_t
packetEncode(const SpikePacket &p, uint32_t delay_slots)
{
    NSCS_ASSERT(p.dx >= -256 && p.dx <= 255 &&
                p.dy >= -256 && p.dy <= 255,
                "packet offset (%d, %d) exceeds 9-bit fields",
                p.dx, p.dy);
    NSCS_ASSERT(p.axon < 256, "packet axon %u exceeds 8-bit field",
                p.axon);
    uint32_t dx9 = static_cast<uint32_t>(p.dx) & 0x1FFu;
    uint32_t dy9 = static_cast<uint32_t>(p.dy) & 0x1FFu;
    uint32_t slot = static_cast<uint32_t>(p.deliveryTick % delay_slots)
        & 0xFu;
    return (dx9 << 21) | (dy9 << 12) | (uint32_t(p.axon) << 4) | slot;
}

SpikePacket
packetDecode(uint32_t wire, uint32_t delay_slots)
{
    SpikePacket p;
    auto sext9 = [](uint32_t f) {
        return static_cast<int16_t>((f & 0x100u) ? (f | ~0x1FFu) : f);
    };
    p.dx = sext9((wire >> 21) & 0x1FFu);
    p.dy = sext9((wire >> 12) & 0x1FFu);
    p.axon = static_cast<uint16_t>((wire >> 4) & 0xFFu);
    p.deliveryTick = wire & 0xFu;
    (void)delay_slots;
    return p;
}

} // namespace nscs
