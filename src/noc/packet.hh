/**
 * @file
 * The on-chip spike packet.
 *
 * Spikes travel as single-flit packets with *relative* addressing:
 * the packet carries the remaining (dx, dy) core hops, decremented as
 * it moves, the target axon index, and the delivery tick.  The wire
 * format packs dx and dy as 9-bit signed fields, the axon as 8 bits
 * and the delivery tick modulo the scheduler depth as 4 bits — 30
 * bits per spike, matching the modelled architecture's packet budget.
 *
 * The simulation additionally carries the absolute delivery tick and
 * bookkeeping timestamps; wireBits() shows what silicon would send.
 */

#ifndef NSCS_NOC_PACKET_HH
#define NSCS_NOC_PACKET_HH

#include <cstdint>

namespace nscs {

/** A spike in flight. */
struct SpikePacket
{
    int16_t dx = 0;            //!< remaining x hops (+ = east)
    int16_t dy = 0;            //!< remaining y hops (+ = north)
    uint16_t axon = 0;         //!< target axon index
    uint64_t deliveryTick = 0; //!< absolute tick the spike fires at
    uint64_t injectTick = 0;   //!< tick the spike was generated
    uint64_t injectCycle = 0;  //!< mesh cycle of injection (stats)
    uint8_t hops = 0;          //!< router-to-router moves so far
};

/** Number of wire bits per spike packet for @p delay_slot_bits. */
constexpr unsigned
packetWireBits(unsigned delta_bits = 9, unsigned axon_bits = 8,
               unsigned delay_slot_bits = 4)
{
    return 2 * delta_bits + axon_bits + delay_slot_bits;
}

/**
 * Pack the architectural fields into the 30-bit wire format
 * (dx | dy | axon | delivery slot), as a 32-bit container.
 * Offsets must fit 9-bit signed fields; callers validate earlier.
 */
uint32_t packetEncode(const SpikePacket &p, uint32_t delay_slots);

/** Inverse of packetEncode (absolute fields left at zero). */
SpikePacket packetDecode(uint32_t wire, uint32_t delay_slots);

} // namespace nscs

#endif // NSCS_NOC_PACKET_HH
