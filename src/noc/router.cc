// Router is a plain state holder; routing decisions are constexpr in
// the header.  This translation unit exists to anchor the library and
// to hold the port pretty-printer.

#include "noc/router.hh"

namespace nscs {

/** Human-readable port name (tracing, tests). */
const char *
portName(Port p)
{
    switch (p) {
      case Port::Local: return "local";
      case Port::North: return "north";
      case Port::East:  return "east";
      case Port::South: return "south";
      case Port::West:  return "west";
    }
    return "?";
}

} // namespace nscs
