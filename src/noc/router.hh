/**
 * @file
 * A 5-port input-buffered mesh router with dimension-order routing.
 *
 * Ports: Local, North, East, South, West.  A packet routes X-first
 * (drain dx, then dy, then exit Local).  Each input port owns a small
 * FIFO; each output port has a round-robin arbiter over the input
 * ports whose head flit requests it.  One flit per output per cycle.
 *
 * The router holds state only; movement is coordinated by the Mesh so
 * that a global two-phase (compute, commit) step gives every router a
 * consistent pre-cycle view.
 */

#ifndef NSCS_NOC_ROUTER_HH
#define NSCS_NOC_ROUTER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>

#include "noc/packet.hh"

namespace nscs {

/** Router port indices. */
enum class Port : uint8_t {
    Local = 0,
    North = 1,
    East = 2,
    South = 3,
    West = 4,
};

/** Number of router ports. */
constexpr unsigned kNumPorts = 5;

/**
 * Dimension-order (X then Y) output port for a packet's remaining
 * offset.
 */
constexpr Port
routeOutput(const SpikePacket &p)
{
    if (p.dx > 0)
        return Port::East;
    if (p.dx < 0)
        return Port::West;
    if (p.dy > 0)
        return Port::North;
    if (p.dy < 0)
        return Port::South;
    return Port::Local;
}

/**
 * Update a packet's remaining offset for a traversal out of
 * @p out (no-op for Local).
 */
constexpr void
consumeHop(SpikePacket &p, Port out)
{
    switch (out) {
      case Port::East:  --p.dx; break;
      case Port::West:  ++p.dx; break;
      case Port::North: --p.dy; break;
      case Port::South: ++p.dy; break;
      case Port::Local: break;
    }
    if (out != Port::Local)
        ++p.hops;
}

/** Human-readable port name (tracing, tests). */
const char *portName(Port p);

/** Per-router state: five input FIFOs plus arbiter pointers. */
struct Router
{
    /** Input FIFO per port. */
    std::array<std::deque<SpikePacket>, kNumPorts> inBuf;

    /** Round-robin pointer per *output* port. */
    std::array<uint8_t, kNumPorts> rrPtr = {};

    /** True when every input FIFO is empty. */
    bool
    idle() const
    {
        for (const auto &q : inBuf)
            if (!q.empty())
                return false;
        return true;
    }

    /** Total buffered flits. */
    size_t
    occupancy() const
    {
        size_t n = 0;
        for (const auto &q : inBuf)
            n += q.size();
        return n;
    }
};

} // namespace nscs

#endif // NSCS_NOC_ROUTER_HH
