#include "prog/compiled.hh"

#include "util/logging.hh"

namespace nscs {

const std::vector<InputSpike> &
CompiledModel::inputTargets(const std::string &name) const
{
    auto it = inputs.find(name);
    if (it == inputs.end())
        fatal("compiled model has no input named '%s'", name.c_str());
    return it->second;
}

JsonValue
compiledModelToJson(const CompiledModel &model)
{
    JsonValue o = JsonValue::object();
    o.set("gridWidth", JsonValue::integer(model.gridWidth));
    o.set("gridHeight", JsonValue::integer(model.gridHeight));
    if (model.boardWidth != 1 || model.boardHeight != 1) {
        o.set("boardWidth", JsonValue::integer(model.boardWidth));
        o.set("boardHeight", JsonValue::integer(model.boardHeight));
    }

    JsonValue cores = JsonValue::array();
    for (const auto &cfg : model.cores)
        cores.append(coreConfigToJson(cfg));
    o.set("cores", std::move(cores));

    JsonValue inputs = JsonValue::object();
    for (const auto &kv : model.inputs) {
        JsonValue arr = JsonValue::array();
        for (const auto &t : kv.second) {
            JsonValue tj = JsonValue::object();
            tj.set("core", JsonValue::integer(t.core));
            tj.set("axon", JsonValue::integer(t.axon));
            arr.append(std::move(tj));
        }
        inputs.set(kv.first, std::move(arr));
    }
    o.set("inputs", std::move(inputs));
    o.set("numOutputs", JsonValue::integer(model.numOutputs));

    // Compile statistics travel with the model so tools can report
    // how it was placed (notably whether a traffic profile guided
    // the placement).  Optional: older model files omit the block.
    JsonValue stats = JsonValue::object();
    stats.set("logicalCores",
              JsonValue::integer(model.stats.logicalCores));
    stats.set("splitterCores",
              JsonValue::integer(model.stats.splitterCores));
    stats.set("relayNeurons",
              JsonValue::integer(model.stats.relayNeurons));
    stats.set("axonsUsed",
              JsonValue::integer(
                  static_cast<int64_t>(model.stats.axonsUsed)));
    stats.set("synapses",
              JsonValue::integer(
                  static_cast<int64_t>(model.stats.synapses)));
    stats.set("meanDestHops",
              JsonValue::number(model.stats.meanDestHops));
    stats.set("interChipDests",
              JsonValue::integer(
                  static_cast<int64_t>(model.stats.interChipDests)));
    stats.set("placementCost",
              JsonValue::number(model.stats.placementCost));
    stats.set("profileGuided",
              JsonValue::boolean(model.stats.profileGuided));
    o.set("stats", std::move(stats));
    return o;
}

CompiledModel
compiledModelFromJson(const JsonValue &v)
{
    CompiledModel m;
    m.gridWidth = static_cast<uint32_t>(v.at("gridWidth").asInt());
    m.gridHeight = static_cast<uint32_t>(v.at("gridHeight").asInt());
    m.boardWidth = static_cast<uint32_t>(v.getInt("boardWidth", 1));
    m.boardHeight = static_cast<uint32_t>(v.getInt("boardHeight", 1));
    if (m.boardWidth == 0 || m.boardHeight == 0 ||
        m.gridWidth % m.boardWidth != 0 ||
        m.gridHeight % m.boardHeight != 0)
        fatal("model file: %ux%u board does not tile the %ux%u grid",
              m.boardWidth, m.boardHeight, m.gridWidth, m.gridHeight);
    const auto &cores = v.at("cores");
    if (cores.size() !=
        static_cast<size_t>(m.gridWidth) * m.gridHeight)
        fatal("model file: %zu cores for a %ux%u grid", cores.size(),
              m.gridWidth, m.gridHeight);
    for (size_t i = 0; i < cores.size(); ++i)
        m.cores.push_back(coreConfigFromJson(cores.at(i)));
    if (!m.cores.empty())
        m.geom = m.cores.front().geom;
    if (v.has("inputs")) {
        const auto &inputs = v.at("inputs");
        for (const auto &name : inputs.keys()) {
            std::vector<InputSpike> targets;
            const auto &arr = inputs.at(name);
            for (size_t i = 0; i < arr.size(); ++i) {
                const auto &tj = arr.at(i);
                InputSpike t;
                t.core = static_cast<uint32_t>(tj.at("core").asInt());
                t.axon = static_cast<uint32_t>(tj.at("axon").asInt());
                targets.push_back(t);
            }
            m.inputs[name] = std::move(targets);
        }
    }
    m.numOutputs = static_cast<uint32_t>(v.getInt("numOutputs", 0));
    if (v.has("stats")) {
        const JsonValue &s = v.at("stats");
        m.stats.logicalCores =
            static_cast<uint32_t>(s.getInt("logicalCores", 0));
        m.stats.splitterCores =
            static_cast<uint32_t>(s.getInt("splitterCores", 0));
        m.stats.relayNeurons =
            static_cast<uint32_t>(s.getInt("relayNeurons", 0));
        m.stats.axonsUsed =
            static_cast<uint64_t>(s.getInt("axonsUsed", 0));
        m.stats.synapses =
            static_cast<uint64_t>(s.getInt("synapses", 0));
        m.stats.meanDestHops = s.getDouble("meanDestHops", 0.0);
        m.stats.interChipDests =
            static_cast<uint64_t>(s.getInt("interChipDests", 0));
        m.stats.placementCost = s.getDouble("placementCost", 0.0);
        m.stats.profileGuided = s.getBool("profileGuided", false);
    }
    return m;
}

bool
saveCompiledModel(const std::string &path, const CompiledModel &model)
{
    return writeFile(path, compiledModelToJson(model).dump(2));
}

bool
loadCompiledModel(const std::string &path, CompiledModel &model)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    JsonParseResult res = parseJson(text);
    if (!res.ok) {
        warn("model file '%s': %s", path.c_str(), res.error.c_str());
        return false;
    }
    model = compiledModelFromJson(res.value);
    return true;
}

} // namespace nscs
