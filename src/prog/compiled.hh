/**
 * @file
 * The compiled model: the chip-ready artefact produced by the
 * compiler and consumed by the Chip, the functional reference
 * simulator and the model-file tools.
 */

#ifndef NSCS_PROG_COMPILED_HH
#define NSCS_PROG_COMPILED_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.hh"
#include "runtime/source.hh"
#include "util/json.hh"

namespace nscs {

/** Compile-time statistics for reporting/ablation. */
struct CompileStats
{
    uint32_t logicalCores = 0;    //!< cores holding user neurons
    uint32_t splitterCores = 0;   //!< cores added for fan-out
    uint32_t relayNeurons = 0;    //!< splitter relay neurons
    uint64_t axonsUsed = 0;       //!< allocated axons across cores
    uint64_t synapses = 0;        //!< crossbar bits set
    double meanDestHops = 0.0;    //!< mean |dx|+|dy| over neuron dests
    uint64_t interChipDests = 0;  //!< dests crossing a chip boundary
    double placementCost = 0.0;   //!< placer objective of the result
    bool profileGuided = false;   //!< placed with a traffic profile
};

/** A chip-ready (or board-ready) model. */
struct CompiledModel
{
    uint32_t gridWidth = 0;        //!< global grid width in cores
    uint32_t gridHeight = 0;       //!< global grid height in cores
    CoreGeometry geom;             //!< common core geometry
    std::vector<CoreConfig> cores; //!< one per grid cell, row-major

    /** Board target this model was compiled for (1x1 = one chip).
     *  The global grid divides evenly into boardWidth x boardHeight
     *  chip tiles; runners may still deploy the model on any board
     *  shape that divides the grid (or one big chip). */
    uint32_t boardWidth = 1;
    uint32_t boardHeight = 1;

    /** Input line name -> injection targets. */
    std::map<std::string, std::vector<InputSpike>> inputs;

    /** Number of output lines (ids are 0..numOutputs-1). */
    uint32_t numOutputs = 0;

    CompileStats stats;

    /** Injection targets for a named input (fatal if unknown). */
    const std::vector<InputSpike> &inputTargets(
        const std::string &name) const;
};

/** Serialize a compiled model (model-file format). */
JsonValue compiledModelToJson(const CompiledModel &model);

/** Parse a model file (fatal on malformed content). */
CompiledModel compiledModelFromJson(const JsonValue &v);

/** Convenience: write/read a model file; false on I/O error. */
bool saveCompiledModel(const std::string &path,
                       const CompiledModel &model);
bool loadCompiledModel(const std::string &path, CompiledModel &model);

} // namespace nscs

#endif // NSCS_PROG_COMPILED_HH
