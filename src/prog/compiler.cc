#include "prog/compiler.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>

#include "board/traffic.hh"
#include "util/logging.hh"

namespace nscs {

NeuronParams
relayNeuronParams()
{
    NeuronParams p;
    p.synWeight = {1, 0, 0, 0};
    p.threshold = 1;
    p.resetMode = ResetMode::Store;
    p.resetPotential = 0;
    return p;
}

namespace {

/** Destination before coordinates are known. */
struct LogicalDest
{
    NeuronDest::Kind kind = NeuronDest::Kind::None;
    uint32_t targetCore = 0;  //!< logical core id (Kind::Core)
    uint16_t axon = 0;
    uint8_t delay = 1;
    uint32_t line = 0;        //!< output line (Kind::Output)
};

/** A pending spike target of one source. */
struct Branch
{
    bool isOutput = false;
    uint32_t line = 0;        //!< when isOutput
    uint32_t core = 0;        //!< logical core (when !isOutput)
    uint16_t axon = 0;
    uint8_t delay = 1;        //!< required arrival offset
};

/** A logical core under construction. */
struct BuildCore
{
    explicit BuildCore(const CoreGeometry &g) : geom(g) {}

    const CoreGeometry &geom;
    std::vector<NeuronParams> params;
    std::vector<LogicalDest> dests;
    std::vector<uint8_t> axonTypes;
    std::vector<std::pair<uint16_t, uint16_t>> synapses;
    /** (sourceId, typeClass, delay) -> axon index. */
    std::map<std::tuple<uint32_t, uint8_t, uint8_t>, uint16_t> axonOf;

    uint32_t neuronsUsed() const
    {
        return static_cast<uint32_t>(params.size());
    }

    uint32_t axonsUsed() const
    {
        return static_cast<uint32_t>(axonTypes.size());
    }

    bool
    allocNeuron(const NeuronParams &p, uint32_t &slot)
    {
        if (neuronsUsed() >= geom.numNeurons)
            return false;
        slot = neuronsUsed();
        params.push_back(p);
        dests.push_back(LogicalDest{});
        return true;
    }

    /** Allocate (or reuse) the axon for @p key with @p type. */
    bool
    allocAxon(std::tuple<uint32_t, uint8_t, uint8_t> key,
              uint8_t type, uint16_t &axon)
    {
        auto it = axonOf.find(key);
        if (it != axonOf.end()) {
            axon = it->second;
            return true;
        }
        if (axonsUsed() >= geom.numAxons)
            return false;
        axon = static_cast<uint16_t>(axonTypes.size());
        axonTypes.push_back(type);
        axonOf.emplace(key, axon);
        return true;
    }

    void
    connect(uint16_t axon, uint16_t neuron)
    {
        synapses.emplace_back(axon, neuron);
    }
};

/** Whole-compilation scratch state. */
class Compilation
{
  public:
    Compilation(const Network &net, const CompileOptions &opt)
        : net_(net), opt_(opt)
    {
    }

    CompiledModel run();

  private:
    uint32_t coreOfGid(uint32_t gid) const
    {
        return gid / opt_.geom.numNeurons;
    }

    uint32_t slotOfGid(uint32_t gid) const
    {
        return gid % opt_.geom.numNeurons;
    }

    uint32_t
    freshSourceId()
    {
        return nextSourceId_++;
    }

    /** Splitter-core allocation: first fit over splitter cores. */
    uint32_t
    allocSplitterCore(uint32_t relays_needed)
    {
        for (uint32_t c : splitterCores_) {
            if (cores_[c].neuronsUsed() + relays_needed <=
                    opt_.geom.numNeurons &&
                cores_[c].axonsUsed() < opt_.geom.numAxons) {
                return c;
            }
        }
        auto c = static_cast<uint32_t>(cores_.size());
        cores_.emplace_back(opt_.geom);
        splitterCores_.push_back(c);
        return c;
    }

    /**
     * Resolve one source's branches into a single LogicalDest the
     * source can carry, inserting splitter relays as needed.
     * @p what names the source for diagnostics.
     */
    LogicalDest resolveFanout(std::vector<Branch> branches,
                              const std::string &what);

    const Network &net_;
    const CompileOptions &opt_;
    std::vector<BuildCore> cores_;
    std::vector<uint32_t> splitterCores_;
    uint32_t nextSourceId_ = 0;
    uint32_t relayNeurons_ = 0;
};

LogicalDest
Compilation::resolveFanout(std::vector<Branch> branches,
                           const std::string &what)
{
    NSCS_ASSERT(!branches.empty(), "resolveFanout with no branches");

    if (branches.size() == 1 && !branches[0].isOutput) {
        const Branch &b = branches[0];
        LogicalDest d;
        d.kind = NeuronDest::Kind::Core;
        d.targetCore = b.core;
        d.axon = b.axon;
        d.delay = b.delay;
        return d;
    }
    if (branches.size() == 1) {
        LogicalDest d;
        d.kind = NeuronDest::Kind::Output;
        d.line = branches[0].line;
        return d;
    }

    // Splitter tree height: every leaf relay sits h hops from the
    // source, so each core branch must afford delay >= h + 1.
    const uint32_t fan = opt_.geom.numNeurons;
    uint32_t height = 1;
    uint64_t capacity = fan;
    while (capacity < branches.size()) {
        capacity *= fan;
        ++height;
    }
    for (const Branch &b : branches) {
        if (!b.isOutput && b.delay < height + 1)
            fatal("%s: fan-out %zu needs a depth-%u splitter tree but "
                  "an edge has delay %u (< %u); increase the edge "
                  "delay", what.c_str(), branches.size(), height,
                  b.delay, height + 1);
    }

    // Create the leaf relays, chunked onto splitter cores; then feed
    // the chunks through recursion (each chunk entry must receive the
    // spike exactly at t + height - ... the recursion's own height).
    std::vector<Branch> entries;
    for (size_t at = 0; at < branches.size(); at += fan) {
        size_t chunk_end = std::min(branches.size(),
                                    at + static_cast<size_t>(fan));
        auto relays = static_cast<uint32_t>(chunk_end - at);
        uint32_t core = allocSplitterCore(relays);
        uint32_t vid = freshSourceId();
        uint16_t axon = 0;
        if (!cores_[core].allocAxon({vid, 0, 1}, 0, axon))
            panic("splitter core out of axons after allocation check");
        for (size_t i = at; i < chunk_end; ++i) {
            const Branch &b = branches[i];
            uint32_t slot = 0;
            if (!cores_[core].allocNeuron(relayNeuronParams(), slot))
                panic("splitter core out of neurons after check");
            ++relayNeurons_;
            cores_[core].connect(axon, static_cast<uint16_t>(slot));
            LogicalDest &ld = cores_[core].dests[slot];
            if (b.isOutput) {
                ld.kind = NeuronDest::Kind::Output;
                ld.line = b.line;
            } else {
                ld.kind = NeuronDest::Kind::Core;
                ld.targetCore = b.core;
                ld.axon = b.axon;
                ld.delay = static_cast<uint8_t>(b.delay - height);
            }
        }
        Branch entry;
        entry.isOutput = false;
        entry.core = core;
        entry.axon = axon;
        entry.delay = static_cast<uint8_t>(height);
        entries.push_back(entry);
    }
    return resolveFanout(std::move(entries), what);
}

CompiledModel
Compilation::run()
{
    net_.validate();
    const CoreGeometry &geom = opt_.geom;
    const uint32_t num_user = net_.numNeurons();
    const uint32_t num_inputs = net_.numInputs();
    if (num_user == 0)
        fatal("compiling an empty network");

    const uint32_t max_delay = geom.delaySlots - 1;

    // 1. user cores
    uint32_t user_cores = (num_user + geom.numNeurons - 1) /
        geom.numNeurons;
    for (uint32_t c = 0; c < user_cores; ++c)
        cores_.emplace_back(geom);
    for (uint32_t gid = 0; gid < num_user; ++gid) {
        NeuronRef ref = net_.fromGlobalIndex(gid);
        BuildCore &bc = cores_[coreOfGid(gid)];
        uint32_t slot = 0;
        if (!bc.allocNeuron(net_.neuronParams(ref), slot))
            panic("user core overflow");
        NSCS_ASSERT(slot == slotOfGid(gid), "packing out of order");
    }
    nextSourceId_ = num_user + num_inputs;

    // 2. group edges per source
    std::vector<std::vector<const Edge *>> out_edges(num_user);
    for (const Edge &e : net_.edges()) {
        if (e.delay > max_delay)
            fatal("edge delay %u exceeds scheduler budget %u",
                  e.delay, max_delay);
        out_edges[net_.globalIndex(e.src)].push_back(&e);
    }

    // Output lines per neuron.
    std::vector<int64_t> output_line(num_user, -1);
    for (uint32_t line = 0; line < net_.numOutputs(); ++line)
        output_line[net_.globalIndex(net_.outputNeuron(line))] = line;

    // 3. per-source branch building + fan-out resolution
    for (uint32_t gid = 0; gid < num_user; ++gid) {
        std::map<std::tuple<uint32_t, uint8_t, uint8_t>, Branch>
            branch_of;
        for (const Edge *e : out_edges[gid]) {
            uint32_t dst_gid = net_.globalIndex(e->dst);
            uint32_t dst_core = coreOfGid(dst_gid);
            auto key = std::make_tuple(dst_core, e->typeClass,
                                       e->delay);
            auto it = branch_of.find(key);
            if (it == branch_of.end()) {
                uint16_t axon = 0;
                if (!cores_[dst_core].allocAxon(
                        {gid, e->typeClass, e->delay}, e->typeClass,
                        axon))
                    fatal("core %u out of axons (%u) while wiring "
                          "neuron %u; reduce fan-in or use a larger "
                          "geometry", dst_core, geom.numAxons, gid);
                Branch b;
                b.core = dst_core;
                b.axon = axon;
                b.delay = e->delay;
                it = branch_of.emplace(key, b).first;
            }
            cores_[dst_core].connect(
                it->second.axon,
                static_cast<uint16_t>(slotOfGid(dst_gid)));
        }

        std::vector<Branch> branches;
        for (auto &kv : branch_of)
            branches.push_back(kv.second);
        if (output_line[gid] >= 0) {
            Branch b;
            b.isOutput = true;
            b.line = static_cast<uint32_t>(output_line[gid]);
            branches.push_back(b);
        }
        if (branches.empty())
            continue;
        std::string what = "neuron " + std::to_string(gid) + " ('" +
            net_.popName(net_.fromGlobalIndex(gid).pop) + "')";
        cores_[coreOfGid(gid)].dests[slotOfGid(gid)] =
            resolveFanout(std::move(branches), what);
    }

    // 4. external inputs: allocate axons, record injection targets
    std::map<std::string, std::vector<InputSpike>> input_targets;
    // (filled with logical core ids first; remapped after placement)
    for (uint32_t in = 0; in < num_inputs; ++in) {
        uint32_t src_id = num_user + in;
        std::vector<InputSpike> targets;
        std::map<std::pair<uint32_t, uint8_t>, uint16_t> seen;
        for (const InputAttachment &a : net_.inputAttachments(in)) {
            uint32_t dst_gid = net_.globalIndex(a.dst);
            uint32_t dst_core = coreOfGid(dst_gid);
            auto key = std::make_pair(dst_core, a.typeClass);
            auto it = seen.find(key);
            if (it == seen.end()) {
                uint16_t axon = 0;
                if (!cores_[dst_core].allocAxon(
                        {src_id, a.typeClass, 0}, a.typeClass, axon))
                    fatal("core %u out of axons while binding input "
                          "'%s'", dst_core,
                          net_.inputName(in).c_str());
                it = seen.emplace(key, axon).first;
                targets.push_back({dst_core, axon});
            }
            cores_[dst_core].connect(
                it->second,
                static_cast<uint16_t>(slotOfGid(dst_gid)));
        }
        input_targets[net_.inputName(in)] = std::move(targets);
    }

    // 5. traffic matrix and placement
    const auto num_logical = static_cast<uint32_t>(cores_.size());
    TrafficMatrix traffic(num_logical);
    for (uint32_t c = 0; c < num_logical; ++c)
        for (const LogicalDest &d : cores_[c].dests)
            if (d.kind == NeuronDest::Kind::Core)
                traffic[c][d.targetCore] += 1;

    const uint32_t board_w = std::max(1u, opt_.boardWidth);
    const uint32_t board_h = std::max(1u, opt_.boardHeight);
    uint32_t grid_w = opt_.gridWidth, grid_h = opt_.gridHeight;
    PlacerCostModel cost_model;
    if (board_w * board_h > 1) {
        // A board target must tile the grid evenly; auto-sized grids
        // grow to the smallest square chip tile (or the smallest
        // board-multiple of a partially specified dimension).
        auto round_up = [](uint32_t v, uint32_t m) {
            return (v + m - 1) / m * m;
        };
        if (grid_w == 0 && grid_h == 0) {
            uint32_t s = 1;
            while (static_cast<uint64_t>(board_w) * s * board_h * s <
                   num_logical)
                ++s;
            grid_w = board_w * s;
            grid_h = board_h * s;
        } else if (grid_w == 0) {
            grid_w = round_up((num_logical + grid_h - 1) / grid_h,
                              board_w);
        } else if (grid_h == 0) {
            grid_h = round_up((num_logical + grid_w - 1) / grid_w,
                              board_h);
        }
        if (grid_w % board_w != 0 || grid_h % board_h != 0)
            fatal("board %ux%u does not tile the %ux%u core grid",
                  board_w, board_h, grid_w, grid_h);
        cost_model.chipW = grid_w / board_w;
        cost_model.chipH = grid_h / board_h;
        cost_model.linkWeight = opt_.linkCostWeight;
    }
    if (opt_.trafficProfile) {
        const TrafficProfile &tp = *opt_.trafficProfile;
        if (cost_model.chipW == 0)
            fatal("CompileOptions::trafficProfile requires a board "
                  "target (boardWidth x boardHeight > 1)");
        if (tp.boardW != board_w || tp.boardH != board_h ||
            tp.chipW != cost_model.chipW ||
            tp.chipH != cost_model.chipH)
            fatal("traffic profile geometry (%ux%u chips of %ux%u "
                  "cores) does not match the compile target (%ux%u "
                  "chips of %ux%u cores)",
                  tp.boardW, tp.boardH, tp.chipW, tp.chipH,
                  board_w, board_h, cost_model.chipW,
                  cost_model.chipH);
        if (tp.cells.empty())
            fatal("traffic profile has no per-cell matrix; trace "
                  "with --trace-traffic on a board run");
        cost_model.traffic = opt_.trafficProfile;
    }

    Placement pl = placeCores(traffic, opt_.placement,
                              grid_w, grid_h,
                              opt_.placerSeed, cost_model);
    if (pl.width > 256 || pl.height > 256)
        fatal("placed grid %ux%u exceeds the 9-bit packet offset "
              "range", pl.width, pl.height);

    // 6. emit the grid
    CompiledModel model;
    model.gridWidth = pl.width;
    model.gridHeight = pl.height;
    model.boardWidth = board_w;
    model.boardHeight = board_h;
    model.geom = geom;
    model.numOutputs = net_.numOutputs();
    model.cores.reserve(static_cast<size_t>(pl.width) * pl.height);
    for (uint32_t i = 0;
         i < static_cast<uint32_t>(pl.width) * pl.height; ++i)
        model.cores.push_back(CoreConfig::make(geom));

    uint64_t axons_used = 0, synapse_count = 0;
    double hops_sum = 0.0;
    uint64_t hops_n = 0, inter_chip = 0;

    for (uint32_t c = 0; c < num_logical; ++c) {
        const BuildCore &bc = cores_[c];
        uint32_t cell = pl.y[c] * pl.width + pl.x[c];
        CoreConfig &cfg = model.cores[cell];
        cfg.rngSeed = static_cast<uint16_t>(opt_.rngSeedBase + cell);
        for (uint32_t a = 0; a < bc.axonsUsed(); ++a)
            cfg.axonType[a] = bc.axonTypes[a];
        for (auto [axon, neuron] : bc.synapses)
            cfg.connect(axon, neuron);
        for (uint32_t n = 0; n < bc.neuronsUsed(); ++n) {
            cfg.neurons[n] = bc.params[n];
            const LogicalDest &ld = bc.dests[n];
            NeuronDest &d = cfg.dests[n];
            switch (ld.kind) {
              case NeuronDest::Kind::None:
                break;
              case NeuronDest::Kind::Output:
                d.kind = NeuronDest::Kind::Output;
                d.line = ld.line;
                break;
              case NeuronDest::Kind::Core: {
                d.kind = NeuronDest::Kind::Core;
                d.axon = ld.axon;
                d.delay = ld.delay;
                d.dx = static_cast<int16_t>(
                    static_cast<int32_t>(pl.x[ld.targetCore]) -
                    static_cast<int32_t>(pl.x[c]));
                d.dy = static_cast<int16_t>(
                    static_cast<int32_t>(pl.y[ld.targetCore]) -
                    static_cast<int32_t>(pl.y[c]));
                hops_sum += std::abs(d.dx) + std::abs(d.dy);
                ++hops_n;
                if (cost_model.chipW != 0 &&
                    (pl.x[ld.targetCore] / cost_model.chipW !=
                         pl.x[c] / cost_model.chipW ||
                     pl.y[ld.targetCore] / cost_model.chipH !=
                         pl.y[c] / cost_model.chipH))
                    ++inter_chip;
                break;
              }
            }
        }
        axons_used += bc.axonsUsed();
        synapse_count += bc.synapses.size();
        validateCoreConfig(cfg, "compiled core");
    }

    // Remap input targets from logical core ids to grid cells.
    for (auto &kv : input_targets)
        for (InputSpike &t : kv.second)
            t.core = pl.y[t.core] * pl.width + pl.x[t.core];
    model.inputs = std::move(input_targets);

    model.stats.logicalCores = num_logical -
        static_cast<uint32_t>(splitterCores_.size());
    model.stats.splitterCores =
        static_cast<uint32_t>(splitterCores_.size());
    model.stats.relayNeurons = relayNeurons_;
    model.stats.axonsUsed = axons_used;
    model.stats.synapses = synapse_count;
    model.stats.meanDestHops =
        hops_n ? hops_sum / static_cast<double>(hops_n) : 0.0;
    model.stats.interChipDests = inter_chip;
    model.stats.placementCost = pl.cost;
    model.stats.profileGuided = pl.profileGuided;
    return model;
}

} // anonymous namespace

CompiledModel
compile(const Network &net, const CompileOptions &opt)
{
    Compilation c(net, opt);
    return c.run();
}

} // namespace nscs
