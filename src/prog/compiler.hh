/**
 * @file
 * The compiler: lowers a logical Network onto neurosynaptic cores.
 *
 * Lowering steps:
 *
 *  1. Pack user neurons sequentially onto logical cores (geometry
 *     neuron capacity per core).
 *  2. For every spike source (user neuron, external input, inserted
 *     relay), group its synapses into *branches*: one target axon per
 *     (destination core, axon type, delay) triple.  Axons are
 *     allocated per source so no two sources share an axon, exactly
 *     as in hardware.
 *  3. A source with one branch sends directly.  A source with more
 *     branches gets a splitter tree of relay neurons; each tree level
 *     consumes one tick of the edge delay budget (an edge needing a
 *     depth-h tree requires delay >= h + 1; violations are fatal with
 *     a diagnostic).  Relay neurons are packed onto shared splitter
 *     cores.
 *  4. External inputs allocate target axons the same way but are
 *     injected functionally (host-side fan-out, no splitters).
 *  5. A traffic matrix over logical cores feeds the placer; relative
 *     destination offsets are computed from the resulting
 *     coordinates.
 *  6. Unused grid cells receive empty core configurations.
 */

#ifndef NSCS_PROG_COMPILER_HH
#define NSCS_PROG_COMPILER_HH

#include <cstdint>

#include "core/config.hh"
#include "prog/compiled.hh"
#include "prog/network.hh"
#include "prog/placer.hh"

namespace nscs {

/** Compiler knobs. */
struct CompileOptions
{
    CoreGeometry geom;                 //!< target core geometry
    PlacementPolicy placement = PlacementPolicy::GreedyBfs;
    uint32_t gridWidth = 0;            //!< 0 = auto near-square
    uint32_t gridHeight = 0;           //!< 0 = auto near-square
    uint16_t rngSeedBase = 0x1234;     //!< per-core PRNG seed base
    uint64_t placerSeed = 1;           //!< annealing seed

    /**
     * Board target in chips; 1x1 compiles for a single chip.  With a
     * larger board the logical grid spans boardWidth x boardHeight
     * identical chip tiles (explicit grid dimensions must divide
     * evenly) and the placer weighs chip-boundary crossings with
     * linkCostWeight, keeping talkative clusters on one chip.
     */
    uint32_t boardWidth = 1;
    uint32_t boardHeight = 1;
    double linkCostWeight = 4.0;       //!< placement cost per crossing

    /**
     * Measured traffic profile from a trace run (nscs_run
     * --trace-traffic), enabling the placer's profile-guided second
     * pass (PlacerCostModel::traffic).  Requires a board target
     * whose geometry matches the profile; fatal on mismatch.
     */
    std::shared_ptr<const TrafficProfile> trafficProfile;
};

/** Relay neuron parameters used by splitter trees. */
NeuronParams relayNeuronParams();

/** Compile @p net; fatal() on capacity or delay-budget violations. */
CompiledModel compile(const Network &net, const CompileOptions &opt);

} // namespace nscs

#endif // NSCS_PROG_COMPILER_HH
