#include "prog/corelet.hh"

#include "prog/compiler.hh"
#include "util/logging.hh"

namespace nscs {
namespace corelets {

Ports
splitter(Network &net, const std::string &name, uint32_t fanout)
{
    if (fanout == 0)
        fatal("splitter '%s' with fanout 0", name.c_str());
    Ports ports;
    ports.pop = net.addPopulation(name, fanout, relayNeuronParams());
    for (uint32_t i = 0; i < fanout; ++i) {
        ports.in.push_back({ports.pop, i});
        ports.out.push_back({ports.pop, i});
    }
    return ports;
}

Ports
merger(Network &net, const std::string &name)
{
    Ports ports;
    ports.pop = net.addPopulation(name, 1, relayNeuronParams());
    ports.in.push_back({ports.pop, 0});
    ports.out.push_back({ports.pop, 0});
    return ports;
}

Ports
delayLine(Network &net, const std::string &name, uint32_t length)
{
    if (length == 0)
        fatal("delayLine '%s' with length 0", name.c_str());
    Ports ports;
    ports.pop = net.addPopulation(name, length, relayNeuronParams());
    for (uint32_t i = 0; i + 1 < length; ++i)
        net.connect({ports.pop, i}, {ports.pop, i + 1}, 0, 1);
    ports.in.push_back({ports.pop, 0});
    ports.out.push_back({ports.pop, length - 1});
    return ports;
}

Ports
rateScaler(Network &net, const std::string &name, uint32_t width,
           uint8_t prob256)
{
    if (width == 0)
        fatal("rateScaler '%s' with width 0", name.c_str());
    NeuronParams p = relayNeuronParams();
    p.synWeight[0] = prob256;
    p.synStochastic[0] = true;
    Ports ports;
    ports.pop = net.addPopulation(name, width, p);
    for (uint32_t i = 0; i < width; ++i) {
        ports.in.push_back({ports.pop, i});
        ports.out.push_back({ports.pop, i});
    }
    return ports;
}

Ports
winnerTakeAll(Network &net, const std::string &name, uint32_t width,
              int32_t threshold)
{
    if (width < 2)
        fatal("winnerTakeAll '%s': width %u < 2", name.c_str(),
              width);
    if (threshold < 1)
        fatal("winnerTakeAll '%s': threshold must be >= 1",
              name.c_str());
    // Channel neurons: excitation on type 0, mutual inhibition on
    // type 1.  The inhibitory weight exceeds the excitatory one, so
    // a firing channel suppresses its rivals' accumulated evidence;
    // a mild decaying leak lets the loser recover once the winner's
    // drive fades.
    NeuronParams p;
    p.synWeight = {2, -3, 0, 0};
    p.threshold = threshold;
    p.leak = -1;
    p.negThreshold = static_cast<int32_t>(threshold) * 2;
    p.negSaturate = true;
    p.resetMode = ResetMode::Store;
    p.resetPotential = 0;

    Ports ports;
    ports.pop = net.addPopulation(name, width, p);
    for (uint32_t i = 0; i < width; ++i) {
        // Delay 2 leaves splitter headroom when a channel is also
        // marked as an output line (two branches -> one relay level).
        for (uint32_t j = 0; j < width; ++j)
            if (i != j)
                net.connect({ports.pop, i}, {ports.pop, j}, 1, 2);
        ports.in.push_back({ports.pop, i});
        ports.out.push_back({ports.pop, i});
    }
    return ports;
}

Ports
majority(Network &net, const std::string &name, uint32_t k)
{
    if (k < 1 || k > 256)
        fatal("majority '%s': k=%u outside [1, 256]", name.c_str(), k);
    NeuronParams p;
    p.synWeight = {1, 0, 0, 0};
    p.threshold = 1;
    p.leak = -static_cast<int16_t>(k - 1);
    p.negThreshold = 0;
    p.negSaturate = true;
    p.resetMode = ResetMode::Store;
    p.resetPotential = 0;
    Ports ports;
    ports.pop = net.addPopulation(name, 1, p);
    ports.in.push_back({ports.pop, 0});
    ports.out.push_back({ports.pop, 0});
    return ports;
}

} // namespace corelets
} // namespace nscs
