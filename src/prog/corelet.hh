/**
 * @file
 * Standard corelets: reusable sub-network builders with named ports,
 * the library's analog of the published "corelet" tool flow.
 *
 * A corelet builds populations and internal wiring into a caller's
 * Network and returns port lists: `in` neurons are the attachment
 * points callers connect *into* (axon type 0 unless noted), `out`
 * neurons are what callers connect *from* (or mark as outputs).
 */

#ifndef NSCS_PROG_CORELET_HH
#define NSCS_PROG_CORELET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prog/network.hh"

namespace nscs {
namespace corelets {

/** Port bundle returned by every corelet builder. */
struct Ports
{
    PopId pop = 0;                 //!< primary population
    std::vector<NeuronRef> in;     //!< connect into these
    std::vector<NeuronRef> out;    //!< connect out of these
};

/**
 * Explicit 1-to-k splitter: @p fanout relay neurons that all repeat
 * the driving spike one tick after integration.  (The compiler also
 * auto-splits; this corelet gives programs explicit control over
 * where the relays live.)  in = out = the k relays.
 */
Ports splitter(Network &net, const std::string &name, uint32_t fanout);

/**
 * OR-merger: one neuron that fires when any of its drivers spiked
 * this tick.  Multiple simultaneous driver spikes still produce a
 * single output spike.
 */
Ports merger(Network &net, const std::string &name);

/**
 * Delay line of @p length relays in series: the output fires
 * length-1 ticks after the head integrates (plus the caller's edge
 * delay into the head).  in = head, out = tail.
 */
Ports delayLine(Network &net, const std::string &name, uint32_t length);

/**
 * Stochastic rate scaler: @p width parallel relays that each pass an
 * input spike with probability prob256/256 (the hardware stochastic
 * synapse).  in[i]/out[i] pair up.
 */
Ports rateScaler(Network &net, const std::string &name, uint32_t width,
                 uint8_t prob256);

/**
 * k-of-n majority gate: one neuron that fires exactly when at least
 * @p k of its drivers spike within one tick.  Uses a negative leak of
 * k-1 with a zero floor, so per-tick evidence never accumulates.
 * Requires 1 <= k <= 256.
 */
Ports majority(Network &net, const std::string &name, uint32_t k);

/**
 * Winner-take-all over @p width channels: channel i's excitatory
 * drive (connect into in[i], type 0) competes through mutual
 * inhibition; out[i] spikes only while channel i dominates.  The
 * race resolves within a few ticks of the inhibitory loop delay.
 * @p threshold sets the evidence needed before any channel fires.
 */
Ports winnerTakeAll(Network &net, const std::string &name,
                    uint32_t width, int32_t threshold = 4);

} // namespace corelets
} // namespace nscs

#endif // NSCS_PROG_CORELET_HH
