#include "prog/network.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {

PopId
Network::addPopulation(const std::string &name, uint32_t size,
                       const NeuronParams &proto)
{
    if (size == 0)
        fatal("population '%s' has size 0", name.c_str());
    validateNeuronParams(proto, name.c_str());
    Pop p;
    p.name = name;
    p.size = size;
    p.firstGid = totalNeurons_;
    p.proto = proto;
    pops_.push_back(std::move(p));
    totalNeurons_ += size;
    return static_cast<PopId>(pops_.size() - 1);
}

void
Network::checkRef(NeuronRef ref, const char *what) const
{
    if (ref.pop >= pops_.size())
        fatal("%s: population %u does not exist", what, ref.pop);
    if (ref.idx >= pops_[ref.pop].size)
        fatal("%s: neuron %u outside population '%s' (size %u)",
              what, ref.idx, pops_[ref.pop].name.c_str(),
              pops_[ref.pop].size);
}

void
Network::setNeuronParams(NeuronRef ref, const NeuronParams &params)
{
    checkRef(ref, "setNeuronParams");
    validateNeuronParams(params, "setNeuronParams");
    auto &ov = pops_[ref.pop].overrides;
    for (auto &kv : ov) {
        if (kv.first == ref.idx) {
            kv.second = params;
            return;
        }
    }
    ov.emplace_back(ref.idx, params);
}

const NeuronParams &
Network::neuronParams(NeuronRef ref) const
{
    checkRef(ref, "neuronParams");
    const auto &pop = pops_[ref.pop];
    for (const auto &kv : pop.overrides)
        if (kv.first == ref.idx)
            return kv.second;
    return pop.proto;
}

void
Network::connect(NeuronRef src, NeuronRef dst, uint8_t type_class,
                 uint8_t delay)
{
    checkRef(src, "connect src");
    checkRef(dst, "connect dst");
    if (type_class >= kNumAxonTypes)
        fatal("connect: type class %u >= %u", type_class,
              kNumAxonTypes);
    if (delay < 1)
        fatal("connect: delay must be >= 1");
    edges_.push_back({src, dst, type_class, delay});
}

void
Network::connectAllToAll(PopId src, PopId dst, uint8_t type_class,
                         uint8_t delay)
{
    uint32_t ns = popSize(src), nd = popSize(dst);
    for (uint32_t i = 0; i < ns; ++i)
        for (uint32_t j = 0; j < nd; ++j)
            connect({src, i}, {dst, j}, type_class, delay);
}

void
Network::connectOneToOne(PopId src, PopId dst, uint8_t type_class,
                         uint8_t delay)
{
    uint32_t ns = popSize(src), nd = popSize(dst);
    if (ns != nd)
        fatal("connectOneToOne: sizes differ (%u vs %u)", ns, nd);
    for (uint32_t i = 0; i < ns; ++i)
        connect({src, i}, {dst, i}, type_class, delay);
}

void
Network::connectRandom(PopId src, PopId dst, double p,
                       uint8_t type_class, uint8_t delay, uint64_t seed)
{
    if (p < 0.0 || p > 1.0)
        fatal("connectRandom: probability %f outside [0, 1]", p);
    Xoshiro256 rng(seed);
    uint32_t ns = popSize(src), nd = popSize(dst);
    for (uint32_t i = 0; i < ns; ++i)
        for (uint32_t j = 0; j < nd; ++j)
            if (rng.chance(p))
                connect({src, i}, {dst, j}, type_class, delay);
}

uint32_t
Network::addInput(const std::string &name)
{
    for (const auto &n : inputNames_)
        if (n == name)
            fatal("input '%s' already exists", name.c_str());
    inputNames_.push_back(name);
    inputAttach_.emplace_back();
    return static_cast<uint32_t>(inputNames_.size() - 1);
}

void
Network::bindInput(uint32_t input, NeuronRef dst, uint8_t type_class)
{
    if (input >= inputNames_.size())
        fatal("bindInput: input %u does not exist", input);
    checkRef(dst, "bindInput");
    if (type_class >= kNumAxonTypes)
        fatal("bindInput: type class %u >= %u", type_class,
              kNumAxonTypes);
    inputAttach_[input].push_back({dst, type_class});
}

uint32_t
Network::markOutput(NeuronRef ref)
{
    checkRef(ref, "markOutput");
    for (const auto &o : outputs_)
        if (o == ref)
            fatal("markOutput: neuron (%u, %u) already an output",
                  ref.pop, ref.idx);
    outputs_.push_back(ref);
    return static_cast<uint32_t>(outputs_.size() - 1);
}

uint32_t
Network::popSize(PopId pop) const
{
    if (pop >= pops_.size())
        fatal("popSize: population %u does not exist", pop);
    return pops_[pop].size;
}

const std::string &
Network::popName(PopId pop) const
{
    if (pop >= pops_.size())
        fatal("popName: population %u does not exist", pop);
    return pops_[pop].name;
}

const std::string &
Network::inputName(uint32_t input) const
{
    if (input >= inputNames_.size())
        fatal("inputName: input %u does not exist", input);
    return inputNames_[input];
}

const std::vector<InputAttachment> &
Network::inputAttachments(uint32_t input) const
{
    if (input >= inputAttach_.size())
        fatal("inputAttachments: input %u does not exist", input);
    return inputAttach_[input];
}

NeuronRef
Network::outputNeuron(uint32_t line) const
{
    if (line >= outputs_.size())
        fatal("outputNeuron: line %u does not exist", line);
    return outputs_[line];
}

uint32_t
Network::globalIndex(NeuronRef ref) const
{
    checkRef(ref, "globalIndex");
    return pops_[ref.pop].firstGid + ref.idx;
}

NeuronRef
Network::fromGlobalIndex(uint32_t gid) const
{
    for (PopId p = 0; p < pops_.size(); ++p) {
        const auto &pop = pops_[p];
        if (gid >= pop.firstGid && gid < pop.firstGid + pop.size)
            return {p, gid - pop.firstGid};
    }
    fatal("fromGlobalIndex: gid %u outside network (%u neurons)",
          gid, totalNeurons_);
}

void
Network::validate() const
{
    for (const auto &e : edges_) {
        checkRef(e.src, "edge src");
        checkRef(e.dst, "edge dst");
    }
    for (uint32_t i = 0; i < numInputs(); ++i)
        for (const auto &a : inputAttach_[i])
            checkRef(a.dst, "input attachment");
    for (const auto &o : outputs_)
        checkRef(o, "output");
}

} // namespace nscs
