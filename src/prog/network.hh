/**
 * @file
 * The logical network IR: what users and corelets build, and what the
 * compiler lowers onto cores.
 *
 * A network is a set of *populations* of neurons, synapse-level
 * *edges* between them, named external *inputs* and numbered
 * *outputs*.  Edges carry an axon *type class* (which of the target
 * neuron's four weights the synapse uses) and a delivery *delay* in
 * ticks; the magnitude of a synapse is therefore determined by the
 * target neuron's weight table, exactly as in the hardware.
 *
 * Delay semantics: a spike fired by the source at tick t integrates
 * at the target at tick t + delay.  When the compiler must insert
 * splitter relays (source fan-out beyond one core/axon), each relay
 * level consumes one tick of the edge's delay budget, so edges that
 * require splitting need delay >= 2 (validated at compile time).
 */

#ifndef NSCS_PROG_NETWORK_HH
#define NSCS_PROG_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "neuron/params.hh"

namespace nscs {

/** Population handle. */
using PopId = uint32_t;

/** A reference to one logical neuron. */
struct NeuronRef
{
    PopId pop = 0;
    uint32_t idx = 0;

    bool operator==(const NeuronRef &other) const = default;
    auto operator<=>(const NeuronRef &other) const = default;
};

/** One synapse-level edge. */
struct Edge
{
    NeuronRef src;
    NeuronRef dst;
    uint8_t typeClass = 0;  //!< target weight slot (0..3)
    uint8_t delay = 1;      //!< ticks from fire to integration
};

/** One external-input attachment. */
struct InputAttachment
{
    NeuronRef dst;
    uint8_t typeClass = 0;
};

/** The logical network. */
class Network
{
  public:
    /** Population of @p size neurons sharing @p proto parameters. */
    PopId addPopulation(const std::string &name, uint32_t size,
                        const NeuronParams &proto);

    /** Override one neuron's parameters. */
    void setNeuronParams(NeuronRef ref, const NeuronParams &params);

    /** Parameters of one neuron. */
    const NeuronParams &neuronParams(NeuronRef ref) const;

    /** Add one edge. */
    void connect(NeuronRef src, NeuronRef dst, uint8_t type_class,
                 uint8_t delay = 1);

    /** Every (i, j) pair between two populations. */
    void connectAllToAll(PopId src, PopId dst, uint8_t type_class,
                         uint8_t delay = 1);

    /** (i, i) pairs; sizes must match. */
    void connectOneToOne(PopId src, PopId dst, uint8_t type_class,
                         uint8_t delay = 1);

    /** Each (i, j) pair independently with probability @p p. */
    void connectRandom(PopId src, PopId dst, double p,
                       uint8_t type_class, uint8_t delay,
                       uint64_t seed);

    /**
     * Declare a named external input line.  @return the input id
     * used by InputBinding at runtime.
     */
    uint32_t addInput(const std::string &name);

    /** Attach input @p input to a target neuron's axon. */
    void bindInput(uint32_t input, NeuronRef dst, uint8_t type_class);

    /**
     * Mark a neuron as an output; @return its output line id.
     * A neuron may be marked once; it may also have regular edges
     * (the compiler splits as needed).
     */
    uint32_t markOutput(NeuronRef ref);

    // --- queries ---------------------------------------------------------

    /** Number of populations. */
    uint32_t numPopulations() const
    {
        return static_cast<uint32_t>(pops_.size());
    }

    /** Population size. */
    uint32_t popSize(PopId pop) const;

    /** Population name. */
    const std::string &popName(PopId pop) const;

    /** Total logical neurons. */
    uint32_t numNeurons() const { return totalNeurons_; }

    /** All edges in insertion order. */
    const std::vector<Edge> &edges() const { return edges_; }

    /** Number of declared inputs. */
    uint32_t numInputs() const
    {
        return static_cast<uint32_t>(inputNames_.size());
    }

    /** Input name. */
    const std::string &inputName(uint32_t input) const;

    /** Attachments of input @p input. */
    const std::vector<InputAttachment> &
    inputAttachments(uint32_t input) const;

    /** Number of output lines. */
    uint32_t numOutputs() const
    {
        return static_cast<uint32_t>(outputs_.size());
    }

    /** The neuron behind output line @p line. */
    NeuronRef outputNeuron(uint32_t line) const;

    /** Dense global index of a neuron (populations concatenated). */
    uint32_t globalIndex(NeuronRef ref) const;

    /** Inverse of globalIndex. */
    NeuronRef fromGlobalIndex(uint32_t gid) const;

    /** Consistency check; fatal() on violations. */
    void validate() const;

  private:
    struct Pop
    {
        std::string name;
        uint32_t size;
        uint32_t firstGid;
        NeuronParams proto;
        /** Sparse overrides: (idx, params). */
        std::vector<std::pair<uint32_t, NeuronParams>> overrides;
    };

    void checkRef(NeuronRef ref, const char *what) const;

    std::vector<Pop> pops_;
    std::vector<Edge> edges_;
    std::vector<std::string> inputNames_;
    std::vector<std::vector<InputAttachment>> inputAttach_;
    std::vector<NeuronRef> outputs_;
    uint32_t totalNeurons_ = 0;
};

} // namespace nscs

#endif // NSCS_PROG_NETWORK_HH
