#include "prog/placer.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "board/traffic.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {

const char *
placementPolicyName(PlacementPolicy p)
{
    switch (p) {
      case PlacementPolicy::RowMajor:  return "row-major";
      case PlacementPolicy::GreedyBfs: return "greedy-bfs";
      case PlacementPolicy::Anneal:    return "anneal";
    }
    return "?";
}

namespace {

/** Symmetrised adjacency view used by traversal and cost. */
TrafficMatrix
symmetrise(const TrafficMatrix &traffic)
{
    TrafficMatrix sym(traffic.size());
    for (uint32_t i = 0; i < traffic.size(); ++i) {
        for (const auto &kv : traffic[i]) {
            sym[i][kv.first] += kv.second;
            sym[kv.first][i] += kv.second;
        }
    }
    return sym;
}

/** Boustrophedon coordinate of ordinal @p k on a w-wide grid. */
std::pair<uint32_t, uint32_t>
snakeCoord(uint32_t k, uint32_t w)
{
    uint32_t row = k / w;
    uint32_t col = k % w;
    if (row % 2 == 1)
        col = w - 1 - col;
    return {col, row};
}

/**
 * Order logical cores by best-first traversal: repeatedly take the
 * unvisited core with the largest traffic into the visited set
 * (seeded by the highest-degree core of each component).
 */
std::vector<uint32_t>
greedyOrder(const TrafficMatrix &sym)
{
    const uint32_t n = static_cast<uint32_t>(sym.size());
    std::vector<uint32_t> order;
    order.reserve(n);
    std::vector<bool> visited(n, false);
    std::vector<uint64_t> attraction(n, 0);

    // Degree (total traffic) per core for seeding.
    std::vector<uint64_t> degree(n, 0);
    for (uint32_t i = 0; i < n; ++i)
        for (const auto &kv : sym[i])
            degree[i] += kv.second;

    for (uint32_t placed = 0; placed < n; ++placed) {
        // Pick the unvisited core with the largest attraction,
        // breaking ties by degree then index.
        uint32_t best = n;
        for (uint32_t i = 0; i < n; ++i) {
            if (visited[i])
                continue;
            if (best == n ||
                attraction[i] > attraction[best] ||
                (attraction[i] == attraction[best] &&
                 degree[i] > degree[best])) {
                best = i;
            }
        }
        visited[best] = true;
        order.push_back(best);
        for (const auto &kv : sym[best])
            if (!visited[kv.first])
                attraction[kv.first] += kv.second;
    }
    return order;
}

/**
 * Pairwise cost term: manhattan distance plus the weighted number of
 * chip-boundary crossings on the X-then-Y route (which equals the
 * chip-grid manhattan distance between the two chips).
 */
double
pairCost(uint32_t xi, uint32_t yi, uint32_t xj, uint32_t yj,
         const PlacerCostModel &model)
{
    double dist = static_cast<double>(
        std::abs(static_cast<int64_t>(xi) - xj) +
        std::abs(static_cast<int64_t>(yi) - yj));
    if (model.chipW != 0 && model.chipH != 0) {
        auto crossings =
            std::abs(static_cast<int64_t>(xi / model.chipW) -
                     xj / model.chipW) +
            std::abs(static_cast<int64_t>(yi / model.chipH) -
                     yj / model.chipH);
        dist += model.linkWeight * static_cast<double>(crossings);
    }
    return dist;
}

} // anonymous namespace

double
placementCost(const TrafficMatrix &traffic,
              const std::vector<uint32_t> &x,
              const std::vector<uint32_t> &y,
              const PlacerCostModel &model)
{
    double cost = 0.0;
    for (uint32_t i = 0; i < traffic.size(); ++i) {
        for (const auto &kv : traffic[i]) {
            uint32_t j = kv.first;
            cost += static_cast<double>(kv.second) *
                pairCost(x[i], y[i], x[j], y[j], model);
        }
    }
    return cost;
}

Placement
placeCores(const TrafficMatrix &traffic, PlacementPolicy policy,
           uint32_t grid_w, uint32_t grid_h, uint64_t seed,
           const PlacerCostModel &model)
{
    const uint32_t n = static_cast<uint32_t>(traffic.size());
    NSCS_ASSERT(n > 0, "placing zero cores");

    if (grid_w == 0 && grid_h == 0) {
        grid_w = static_cast<uint32_t>(
            std::ceil(std::sqrt(static_cast<double>(n))));
        grid_h = (n + grid_w - 1) / grid_w;
    } else if (grid_w == 0) {
        grid_w = (n + grid_h - 1) / grid_h;
    } else if (grid_h == 0) {
        grid_h = (n + grid_w - 1) / grid_w;
    }
    if (static_cast<uint64_t>(grid_w) * grid_h < n)
        fatal("placement grid %ux%u cannot hold %u cores",
              grid_w, grid_h, n);

    Placement pl;
    pl.width = grid_w;
    pl.height = grid_h;
    pl.x.resize(n);
    pl.y.resize(n);

    // With a board target, consecutive ordinals fill one chip tile
    // before spilling into the next (snake over chips, snake within
    // a chip), so the contiguous runs the greedy traversal produces
    // land on one chip instead of zigzagging across tile boundaries.
    // Without chip geometry (or when tiles do not divide the grid)
    // this degenerates to the plain boustrophedon.
    const bool tiled = model.chipW != 0 && model.chipH != 0 &&
        grid_w % model.chipW == 0 && grid_h % model.chipH == 0;
    auto assignByOrder = [&](const std::vector<uint32_t> &order) {
        if (tiled) {
            const uint32_t per_chip = model.chipW * model.chipH;
            const uint32_t chips_w = grid_w / model.chipW;
            for (uint32_t k = 0; k < n; ++k) {
                auto [ccx, ccy] = snakeCoord(k / per_chip, chips_w);
                auto [lx, ly] = snakeCoord(k % per_chip, model.chipW);
                pl.x[order[k]] = ccx * model.chipW + lx;
                pl.y[order[k]] = ccy * model.chipH + ly;
            }
            return;
        }
        for (uint32_t k = 0; k < n; ++k) {
            auto [cx, cy] = snakeCoord(k, grid_w);
            pl.x[order[k]] = cx;
            pl.y[order[k]] = cy;
        }
    };

    auto runPolicy = [&](const TrafficMatrix &weights) {
        switch (policy) {
          case PlacementPolicy::RowMajor: {
            // Plain row-major, not snaked: the naive baseline.
            for (uint32_t k = 0; k < n; ++k) {
                pl.x[k] = k % grid_w;
                pl.y[k] = k / grid_w;
            }
            break;
          }
          case PlacementPolicy::GreedyBfs: {
            assignByOrder(greedyOrder(symmetrise(weights)));
            break;
          }
          case PlacementPolicy::Anneal: {
            TrafficMatrix sym = symmetrise(weights);
            assignByOrder(greedyOrder(sym));

            // Pairwise-swap annealing over the symmetric cost.
            // Delta evaluation only touches the two swapped cores'
            // edges.
            Xoshiro256 rng(seed);
            auto nodeCost = [&](uint32_t i) {
                double c = 0.0;
                for (const auto &kv : sym[i]) {
                    uint32_t j = kv.first;
                    if (j == i)
                        continue;
                    c += static_cast<double>(kv.second) *
                        pairCost(pl.x[i], pl.y[i], pl.x[j], pl.y[j],
                                 model);
                }
                return c;
            };

            uint64_t iters = static_cast<uint64_t>(n) * 200;
            double temp = 8.0;
            double cooling = std::pow(
                0.01 / temp, 1.0 / static_cast<double>(iters));
            for (uint64_t it = 0; it < iters; ++it, temp *= cooling) {
                uint32_t a = static_cast<uint32_t>(rng.below(n));
                uint32_t b = static_cast<uint32_t>(rng.below(n));
                if (a == b)
                    continue;
                double before = nodeCost(a) + nodeCost(b);
                std::swap(pl.x[a], pl.x[b]);
                std::swap(pl.y[a], pl.y[b]);
                double after = nodeCost(a) + nodeCost(b);
                double delta = after - before;
                if (delta > 0.0 &&
                    rng.uniform() >=
                        std::exp(-delta / std::max(temp, 1e-9))) {
                    std::swap(pl.x[a], pl.x[b]);  // reject
                    std::swap(pl.y[a], pl.y[b]);
                }
            }
            break;
          }
        }
    };

    runPolicy(traffic);

    // Profile-guided second pass: the first pass reproduced the
    // traced run's placement (compilation is deterministic), so
    // pl.x/pl.y now map each logical core to the global cell it
    // occupied during the trace.  Reweight the estimate's edges with
    // the measured per-cell volumes and re-place.  RowMajor is
    // traffic-blind, so only the traffic-driven policies re-run.
    const TrafficMatrix *cost_matrix = &traffic;
    TrafficMatrix measured;
    if (model.traffic && policy != PlacementPolicy::RowMajor) {
        const TrafficProfile &tp = *model.traffic;
        const bool matches = tp.chipW == model.chipW &&
            tp.chipH == model.chipH &&
            tp.boardW * tp.chipW == grid_w &&
            tp.boardH * tp.chipH == grid_h && !tp.cells.empty();
        if (matches) {
            // The cell matrix is full-fidelity (chips record their
            // intra-chip routes, the board the inter-chip ones), so
            // every structural edge with firing sources is measured.
            // Silent edges keep weight 1: real but unexercised
            // structure should not anchor the re-place.
            measured.resize(n);
            for (uint32_t i = 0; i < n; ++i) {
                const uint32_t cell_i = pl.y[i] * grid_w + pl.x[i];
                const auto &row = tp.cells[cell_i];
                for (const auto &kv : traffic[i]) {
                    const uint32_t j = kv.first;
                    const uint32_t cell_j =
                        pl.y[j] * grid_w + pl.x[j];
                    auto it = row.find(cell_j);
                    measured[i][j] = it != row.end() && it->second > 0
                        ? it->second
                        : 1;
                }
            }
            std::vector<uint32_t> pass1_x = pl.x;
            std::vector<uint32_t> pass1_y = pl.y;
            const double pass1_cost =
                placementCost(measured, pl.x, pl.y, model);
            runPolicy(measured);
            // Keep whichever placement the measured weights score
            // better, so profile guidance never regresses its own
            // objective.
            if (placementCost(measured, pl.x, pl.y, model) >
                pass1_cost) {
                pl.x = std::move(pass1_x);
                pl.y = std::move(pass1_y);
            }
            cost_matrix = &measured;
            pl.profileGuided = true;
        }
    }

    pl.cost = placementCost(*cost_matrix, pl.x, pl.y, model);
    return pl;
}

} // namespace nscs
