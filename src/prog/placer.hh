/**
 * @file
 * Placement of logical cores onto the physical core grid.
 *
 * The compiler produces K logical cores and a core-to-core traffic
 * matrix; the placer assigns each logical core a grid coordinate to
 * minimise sum(traffic * manhattan distance) — the dominant term of
 * interconnect energy and latency.  Three policies (ablation A1):
 *
 *  - RowMajor:  identity order, the naive baseline;
 *  - GreedyBfs: order cores by best-first traversal of the traffic
 *               graph and lay them along a boustrophedon (snake)
 *               curve, keeping talkative neighbours adjacent;
 *  - Anneal:    simulated annealing of pairwise swaps on top of the
 *               greedy start.
 *
 * When the target is a board (a grid of chips), the cost model adds
 * a penalty per chip-boundary crossing: inter-chip links are
 * bandwidth-limited and higher-latency than the on-chip mesh, so a
 * hop that crosses a chip edge costs linkWeight extra manhattan
 * units.  This pulls talkative clusters inside one chip and reserves
 * the links for genuinely global traffic.
 */

#ifndef NSCS_PROG_PLACER_HH
#define NSCS_PROG_PLACER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace nscs {

struct TrafficProfile;

/** Placement policy selector. */
enum class PlacementPolicy : uint8_t {
    RowMajor,
    GreedyBfs,
    Anneal,
};

/** Short policy name for tables. */
const char *placementPolicyName(PlacementPolicy p);

/** traffic[i][j] = packets per window from logical core i to j. */
using TrafficMatrix = std::vector<std::map<uint32_t, uint64_t>>;

/**
 * Cost-model shape of the physical target.  chipW == 0 (the default)
 * is a single chip: pure manhattan distance.  With a chip tile set,
 * every chip-boundary crossing on the X-then-Y route adds linkWeight
 * manhattan-equivalent units.
 */
struct PlacerCostModel
{
    uint32_t chipW = 0;       //!< cores per chip in x (0 = no board)
    uint32_t chipH = 0;       //!< cores per chip in y
    double linkWeight = 4.0;  //!< cost of one chip-boundary crossing

    /**
     * Measured traffic from a trace run (board/traffic.hh).  When
     * set and its geometry matches the target, placeCores runs
     * twice: the first pass reproduces the traced placement (the
     * compile pipeline is deterministic), which maps each logical
     * core to the global cell it occupied during the trace; the
     * second pass reweights the estimate's edges with the measured
     * per-cell volumes (silent edges weigh 1) and re-places.  The
     * result is kept only if it costs no more than the first pass
     * under the measured weights.
     */
    std::shared_ptr<const TrafficProfile> traffic;
};

/** A computed placement. */
struct Placement
{
    std::vector<uint32_t> x;  //!< grid x per logical core
    std::vector<uint32_t> y;  //!< grid y per logical core
    uint32_t width = 0;       //!< grid width
    uint32_t height = 0;      //!< grid height
    double cost = 0.0;        //!< sum(traffic * manhattan)

    /** True when a matching PlacerCostModel::traffic profile
     *  reweighted the placement (cost is then measured-weighted). */
    bool profileGuided = false;
};

/** Weighted manhattan cost of a placement. */
double placementCost(const TrafficMatrix &traffic,
                     const std::vector<uint32_t> &x,
                     const std::vector<uint32_t> &y,
                     const PlacerCostModel &model = PlacerCostModel{});

/**
 * Place @p traffic.size() logical cores.  Grid dimensions of 0 choose
 * the smallest near-square grid that fits.  @p seed drives annealing;
 * @p model weighs chip-boundary crossings for board targets.
 */
Placement placeCores(const TrafficMatrix &traffic,
                     PlacementPolicy policy,
                     uint32_t grid_w = 0, uint32_t grid_h = 0,
                     uint64_t seed = 1,
                     const PlacerCostModel &model = PlacerCostModel{});

} // namespace nscs

#endif // NSCS_PROG_PLACER_HH
