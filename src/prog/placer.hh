/**
 * @file
 * Placement of logical cores onto the physical core grid.
 *
 * The compiler produces K logical cores and a core-to-core traffic
 * matrix; the placer assigns each logical core a grid coordinate to
 * minimise sum(traffic * manhattan distance) — the dominant term of
 * interconnect energy and latency.  Three policies (ablation A1):
 *
 *  - RowMajor:  identity order, the naive baseline;
 *  - GreedyBfs: order cores by best-first traversal of the traffic
 *               graph and lay them along a boustrophedon (snake)
 *               curve, keeping talkative neighbours adjacent;
 *  - Anneal:    simulated annealing of pairwise swaps on top of the
 *               greedy start.
 */

#ifndef NSCS_PROG_PLACER_HH
#define NSCS_PROG_PLACER_HH

#include <cstdint>
#include <map>
#include <vector>

namespace nscs {

/** Placement policy selector. */
enum class PlacementPolicy : uint8_t {
    RowMajor,
    GreedyBfs,
    Anneal,
};

/** Short policy name for tables. */
const char *placementPolicyName(PlacementPolicy p);

/** traffic[i][j] = packets per window from logical core i to j. */
using TrafficMatrix = std::vector<std::map<uint32_t, uint64_t>>;

/** A computed placement. */
struct Placement
{
    std::vector<uint32_t> x;  //!< grid x per logical core
    std::vector<uint32_t> y;  //!< grid y per logical core
    uint32_t width = 0;       //!< grid width
    uint32_t height = 0;      //!< grid height
    double cost = 0.0;        //!< sum(traffic * manhattan)
};

/** Weighted manhattan cost of a placement. */
double placementCost(const TrafficMatrix &traffic,
                     const std::vector<uint32_t> &x,
                     const std::vector<uint32_t> &y);

/**
 * Place @p traffic.size() logical cores.  Grid dimensions of 0 choose
 * the smallest near-square grid that fits.  @p seed drives annealing.
 */
Placement placeCores(const TrafficMatrix &traffic,
                     PlacementPolicy policy,
                     uint32_t grid_w = 0, uint32_t grid_h = 0,
                     uint64_t seed = 1);

} // namespace nscs

#endif // NSCS_PROG_PLACER_HH
