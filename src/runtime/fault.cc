#include "runtime/fault.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {

namespace {

constexpr int kFaultPlanVersion = 1;
constexpr const char *kFaultPlanFormat = "nscs-fault-plan";

struct KindName {
    FaultKind kind;
    const char *name;
};

constexpr KindName kKindNames[] = {
    { FaultKind::DeadCore, "dead-core" },
    { FaultKind::StuckWord, "stuck-word" },
    { FaultKind::PotentialFlip, "potential-flip" },
    { FaultKind::LinkDrop, "link-drop" },
    { FaultKind::LinkDuplicate, "link-duplicate" },
    { FaultKind::LinkDelay, "link-delay" },
    { FaultKind::DeadLink, "dead-link" },
};

} // anonymous namespace

const char *
faultKindName(FaultKind kind)
{
    for (const KindName &kn : kKindNames)
        if (kn.kind == kind)
            return kn.name;
    fatal("unknown FaultKind %d", static_cast<int>(kind));
}

bool
faultKindFromName(const std::string &name, FaultKind &out)
{
    for (const KindName &kn : kKindNames) {
        if (name == kn.name) {
            out = kn.kind;
            return true;
        }
    }
    return false;
}

bool
isLinkFault(FaultKind kind)
{
    return kind == FaultKind::LinkDrop || kind == FaultKind::LinkDuplicate ||
           kind == FaultKind::LinkDelay || kind == FaultKind::DeadLink;
}

JsonValue
FaultPlan::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("format", JsonValue::string(kFaultPlanFormat));
    doc.set("version", JsonValue::integer(kFaultPlanVersion));
    JsonValue evs = JsonValue::array();
    for (const FaultEvent &ev : events) {
        JsonValue e = JsonValue::object();
        e.set("kind", JsonValue::string(faultKindName(ev.kind)));
        e.set("tick", JsonValue::integer(static_cast<int64_t>(ev.tick)));
        if (ev.untilTick)
            e.set("until",
                  JsonValue::integer(static_cast<int64_t>(ev.untilTick)));
        switch (ev.kind) {
        case FaultKind::DeadCore:
            e.set("core", JsonValue::integer(ev.core));
            break;
        case FaultKind::StuckWord:
            e.set("core", JsonValue::integer(ev.core));
            e.set("axon", JsonValue::integer(ev.axon));
            e.set("word", JsonValue::integer(ev.word));
            e.set("bits", JsonValue::string(u64ToHex(ev.bits)));
            break;
        case FaultKind::PotentialFlip:
            e.set("core", JsonValue::integer(ev.core));
            e.set("neuron", JsonValue::integer(ev.neuron));
            e.set("bit", JsonValue::integer(ev.bit));
            if (ev.instance)
                e.set("instance", JsonValue::integer(ev.instance));
            break;
        case FaultKind::LinkDrop:
        case FaultKind::LinkDuplicate:
        case FaultKind::LinkDelay:
        case FaultKind::DeadLink:
            e.set("chip", JsonValue::integer(ev.chip));
            e.set("dir", JsonValue::integer(ev.dir));
            if (ev.kind == FaultKind::LinkDelay)
                e.set("delayTicks", JsonValue::integer(ev.delayTicks));
            break;
        }
        if (ev.transient)
            e.set("transient", JsonValue::boolean(true));
        evs.append(std::move(e));
    }
    doc.set("events", std::move(evs));
    return doc;
}

bool
FaultPlan::fromJson(const JsonValue &v, FaultPlan &out, std::string &err)
{
    if (v.type() != JsonValue::Type::Object) {
        err = "fault plan: document is not an object";
        return false;
    }
    if (v.getString("format", "") != kFaultPlanFormat) {
        err = "fault plan: unrecognized format field";
        return false;
    }
    int64_t version = v.getInt("version", -1);
    if (version != kFaultPlanVersion) {
        err = "fault plan: unsupported version " + std::to_string(version) +
              " (expected " + std::to_string(kFaultPlanVersion) + ")";
        return false;
    }
    if (!v.has("events") ||
        v.at("events").type() != JsonValue::Type::Array) {
        err = "fault plan: missing events array";
        return false;
    }
    const JsonValue &evs = v.at("events");
    out.events.clear();
    out.events.reserve(evs.size());
    for (size_t i = 0; i < evs.size(); ++i) {
        const JsonValue &e = evs.at(i);
        if (e.type() != JsonValue::Type::Object) {
            err = "fault plan: event " + std::to_string(i) +
                  " is not an object";
            return false;
        }
        FaultEvent ev;
        if (!faultKindFromName(e.getString("kind", ""), ev.kind)) {
            err = "fault plan: event " + std::to_string(i) +
                  " has unknown kind '" + e.getString("kind", "") + "'";
            return false;
        }
        ev.id = static_cast<uint32_t>(out.events.size());
        ev.tick = static_cast<uint64_t>(e.getInt("tick", 0));
        ev.untilTick = static_cast<uint64_t>(e.getInt("until", 0));
        ev.core = static_cast<uint32_t>(e.getInt("core", 0));
        ev.axon = static_cast<uint32_t>(e.getInt("axon", 0));
        ev.word = static_cast<uint32_t>(e.getInt("word", 0));
        ev.neuron = static_cast<uint32_t>(e.getInt("neuron", 0));
        ev.bit = static_cast<uint32_t>(e.getInt("bit", 0));
        ev.instance = static_cast<uint32_t>(e.getInt("instance", 0));
        ev.chip = static_cast<uint32_t>(e.getInt("chip", 0));
        ev.dir = static_cast<uint32_t>(e.getInt("dir", 0));
        ev.delayTicks = static_cast<uint32_t>(e.getInt("delayTicks", 0));
        ev.transient = e.getBool("transient", false);
        if (ev.kind == FaultKind::StuckWord &&
            !u64FromHex(e.getString("bits", ""), ev.bits)) {
            err = "fault plan: event " + std::to_string(i) +
                  " has malformed bits field";
            return false;
        }
        out.events.push_back(ev);
    }
    err.clear();
    return true;
}

size_t
FaultPlan::footprintBytes() const
{
    return sizeof(FaultPlan) + events.capacity() * sizeof(FaultEvent);
}

bool
loadFaultPlan(const std::string &path, FaultPlan &out, std::string &err)
{
    std::string text;
    if (!readFile(path, text)) {
        err = "cannot read fault plan file " + path;
        return false;
    }
    JsonParseResult parsed = parseJson(text);
    if (!parsed.ok) {
        err = "fault plan " + path + ": " + parsed.error;
        return false;
    }
    return FaultPlan::fromJson(parsed.value, out, err);
}

bool
saveFaultPlan(const std::string &path, const FaultPlan &plan)
{
    return writeFile(path, plan.toJson().dump(2) + "\n");
}

FaultPlan
makeRandomFaultPlan(const FaultCampaignSpec &spec, uint64_t seed)
{
    NSCS_ASSERT(spec.numCores > 0, "fault campaign needs cores");
    NSCS_ASSERT(spec.ticks > 0, "fault campaign needs a horizon");
    Xoshiro256 rng(seed);
    FaultPlan plan;
    uint32_t numChips = spec.boardW * spec.boardH;
    auto randomTick = [&] { return rng.below(spec.ticks); };
    auto randomLink = [&](FaultEvent &ev) {
        ev.chip = static_cast<uint32_t>(rng.below(numChips ? numChips : 1));
        ev.dir = static_cast<uint32_t>(rng.below(4));
    };
    for (uint32_t i = 0; i < spec.nDeadCore; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::DeadCore;
        ev.tick = randomTick();
        ev.core = static_cast<uint32_t>(rng.below(spec.numCores));
        plan.events.push_back(ev);
    }
    for (uint32_t i = 0; i < spec.nStuckWord; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::StuckWord;
        ev.tick = randomTick();
        ev.core = static_cast<uint32_t>(rng.below(spec.numCores));
        ev.axon = static_cast<uint32_t>(rng.below(spec.numAxons));
        ev.word = static_cast<uint32_t>(
            rng.below((spec.numNeurons + 63) / 64));
        ev.bits = rng.next();
        plan.events.push_back(ev);
    }
    for (uint32_t i = 0; i < spec.nSeu; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::PotentialFlip;
        ev.tick = randomTick();
        ev.core = static_cast<uint32_t>(rng.below(spec.numCores));
        ev.neuron = static_cast<uint32_t>(rng.below(spec.numNeurons));
        ev.bit = static_cast<uint32_t>(
            rng.below(spec.potentialBits ? spec.potentialBits : 1));
        ev.transient = spec.transientSeu;
        plan.events.push_back(ev);
    }
    auto makeWindow = [&](FaultEvent &ev) {
        ev.tick = randomTick();
        ev.untilTick = ev.tick + (spec.linkWindow ? spec.linkWindow : 1);
    };
    for (uint32_t i = 0; i < spec.nLinkDrop; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::LinkDrop;
        makeWindow(ev);
        randomLink(ev);
        ev.transient = spec.transientLinks;
        plan.events.push_back(ev);
    }
    for (uint32_t i = 0; i < spec.nLinkDup; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::LinkDuplicate;
        makeWindow(ev);
        randomLink(ev);
        ev.transient = spec.transientLinks;
        plan.events.push_back(ev);
    }
    for (uint32_t i = 0; i < spec.nLinkDelay; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::LinkDelay;
        makeWindow(ev);
        randomLink(ev);
        ev.delayTicks = spec.linkDelayTicks ? spec.linkDelayTicks : 1;
        plan.events.push_back(ev);
    }
    for (uint32_t i = 0; i < spec.nDeadLink; ++i) {
        FaultEvent ev;
        ev.kind = FaultKind::DeadLink;
        ev.tick = randomTick();
        randomLink(ev);
        plan.events.push_back(ev);
    }
    for (size_t i = 0; i < plan.events.size(); ++i)
        plan.events[i].id = static_cast<uint32_t>(i);
    return plan;
}

JsonValue
faultStatsToJson(const FaultStats &stats)
{
    JsonValue v = JsonValue::object();
    auto put = [&v](const char *key, uint64_t value) {
        v.set(key, JsonValue::integer(static_cast<int64_t>(value)));
    };
    put("deadCores", stats.deadCores);
    put("stuckWords", stats.stuckWords);
    put("seuFlips", stats.seuFlips);
    put("linkDrops", stats.linkDrops);
    put("linkDups", stats.linkDups);
    put("linkDelays", stats.linkDelays);
    put("deadLinks", stats.deadLinks);
    put("retries", stats.retries);
    put("dupsDropped", stats.dupsDropped);
    put("detours", stats.detours);
    put("detourDrops", stats.detourDrops);
    put("unrecoveredDrops", stats.unrecoveredDrops);
    put("checksumErrors", stats.checksumErrors);
    put("alarms", stats.alarms);
    return v;
}

FaultStats
faultStatsFromJson(const JsonValue &v)
{
    FaultStats stats;
    auto get = [&v](const char *key) {
        return static_cast<uint64_t>(v.getInt(key, 0));
    };
    stats.deadCores = get("deadCores");
    stats.stuckWords = get("stuckWords");
    stats.seuFlips = get("seuFlips");
    stats.linkDrops = get("linkDrops");
    stats.linkDups = get("linkDups");
    stats.linkDelays = get("linkDelays");
    stats.deadLinks = get("deadLinks");
    stats.retries = get("retries");
    stats.dupsDropped = get("dupsDropped");
    stats.detours = get("detours");
    stats.detourDrops = get("detourDrops");
    stats.unrecoveredDrops = get("unrecoveredDrops");
    stats.checksumErrors = get("checksumErrors");
    stats.alarms = get("alarms");
    return stats;
}

} // namespace nscs
