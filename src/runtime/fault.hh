/**
 * @file
 * Deterministic fault injection for chips and boards.
 *
 * A FaultPlan is an ordered list of scheduled fault events — dead
 * cores, stuck-at synapse words, SEU potential bit flips and
 * inter-chip link degradation (drop / duplicate / extra delay /
 * permanently dead links).  Plans are plain data: they serialize
 * through util/json, are generated reproducibly from a seed, and are
 * handed to Chip/Board through ChipParams/BoardParams.  The devices
 * apply core-level events at the scheduled tick and consult link
 * windows during packet walks, so a given (workload, plan) pair
 * always produces the same degraded execution, bit for bit, at any
 * thread count.
 *
 * Detection model: transient faults raise an *alarm* — immediately at
 * injection for SEU flips and for link faults on unprotected links
 * (modeling parity/ECC detection without correction), or on retry
 * exhaustion when the link protocol is on.  The Simulator turns
 * alarms into checkpoint rollback + deterministic replay (see
 * runtime/simulator.hh).  Permanent faults never alarm; they degrade
 * the computation, which tools/nscs_faultsim quantifies.
 */

#ifndef NSCS_RUNTIME_FAULT_HH
#define NSCS_RUNTIME_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hh"

namespace nscs {

/** Kind of injected fault. */
enum class FaultKind : uint8_t {
    DeadCore,       //!< core stops evaluating from the event tick on
    StuckWord,      //!< one 64-bit crossbar row word frozen at a value
    PotentialFlip,  //!< single-event upset: XOR one membrane potential bit
    LinkDrop,       //!< link loses every packet inside the window
    LinkDuplicate,  //!< link echoes every packet inside the window
    LinkDelay,      //!< link parks packets for extra ticks in the window
    DeadLink,       //!< link permanently down from the event tick on
};

/** Stable lowercase name for @p kind (JSON encoding). */
const char *faultKindName(FaultKind kind);

/** Decode faultKindName output; @return false on unknown name. */
bool faultKindFromName(const std::string &name, FaultKind &out);

/** @return true for the four link-targeted kinds. */
bool isLinkFault(FaultKind kind);

/**
 * One scheduled fault.  Which fields matter depends on kind; unused
 * fields stay zero.  Core indices are global (board-wide) when the
 * plan is attached to a Board and chip-local when attached to a
 * standalone Chip.
 */
struct FaultEvent {
    FaultKind kind = FaultKind::DeadCore;
    uint32_t id = 0;         //!< index in the originating plan
    uint64_t tick = 0;       //!< injection tick / window start
    uint64_t untilTick = 0;  //!< window end (exclusive) for link
                             //!< drop/dup/delay; 0 means tick + 1
    uint32_t core = 0;       //!< DeadCore / StuckWord / PotentialFlip
    uint32_t axon = 0;       //!< StuckWord: crossbar row
    uint32_t word = 0;       //!< StuckWord: 64-bit word index in the row
    uint64_t bits = 0;       //!< StuckWord: frozen word value
    uint32_t neuron = 0;     //!< PotentialFlip: neuron index
    uint32_t bit = 0;        //!< PotentialFlip: bit position (0..30)
    uint32_t instance = 0;   //!< PotentialFlip: instance lane
    uint32_t chip = 0;       //!< link faults: chip index (y*width+x)
    uint32_t dir = 0;        //!< link faults: Board::Dir of the link
    uint32_t delayTicks = 0; //!< LinkDelay: extra park ticks
    bool transient = false;  //!< raise a recovery alarm when detected

    /** Window end (exclusive); events without untilTick last 1 tick. */
    uint64_t windowEnd() const { return untilTick ? untilTick : tick + 1; }

    /** Field-wise equality (plan round-trip tests). */
    bool operator==(const FaultEvent &other) const = default;
};

/** An ordered, serializable set of fault events. */
struct FaultPlan {
    std::vector<FaultEvent> events;

    /** Serialize to the versioned nscs-fault-plan JSON document. */
    JsonValue toJson() const;

    /**
     * Parse a toJson() document.  @return false with @p err set on a
     * malformed document or unsupported version.
     */
    static bool fromJson(const JsonValue &v, FaultPlan &out,
                         std::string &err);

    /** Heap footprint in bytes. */
    size_t footprintBytes() const;
};

/** Load a fault plan file; false with @p err set on failure. */
bool loadFaultPlan(const std::string &path, FaultPlan &out,
                   std::string &err);

/** Write @p plan to @p path; false on I/O failure. */
bool saveFaultPlan(const std::string &path, const FaultPlan &plan);

/**
 * Shape of a randomly generated Monte-Carlo fault campaign: how many
 * events of each kind to scatter over a tick horizon and a device
 * geometry.  Counts, not probabilities, so a sweep's workload is
 * identical across seeds.
 */
struct FaultCampaignSpec {
    uint64_t ticks = 100;      //!< horizon events are scattered over
    uint32_t numCores = 16;    //!< global core count (board-wide)
    uint32_t boardW = 1;       //!< board grid width in chips
    uint32_t boardH = 1;       //!< board grid height in chips
    uint32_t numAxons = 256;   //!< per-core crossbar rows
    uint32_t numNeurons = 256; //!< per-core crossbar columns
    uint32_t potentialBits = 20; //!< SEU flips target bits below this
    uint32_t nDeadCore = 0;
    uint32_t nStuckWord = 0;
    uint32_t nSeu = 0;
    uint32_t nLinkDrop = 0;
    uint32_t nLinkDup = 0;
    uint32_t nLinkDelay = 0;
    uint32_t nDeadLink = 0;
    uint32_t linkWindow = 4;   //!< width of drop/dup/delay windows
    uint32_t linkDelayTicks = 3; //!< extra park ticks for LinkDelay
    bool transientLinks = true;  //!< mark link drop/dup events transient
    bool transientSeu = true;    //!< mark SEU flips transient
};

/**
 * Deterministically scatter @p spec's event counts over the horizon
 * using a Xoshiro256 stream seeded with @p seed.  Same (spec, seed)
 * always yields the same plan.
 */
FaultPlan makeRandomFaultPlan(const FaultCampaignSpec &spec, uint64_t seed);

/**
 * Injection/handling counters kept by a Chip (core-level fields) or
 * Board (link-level fields; board dumpStats also aggregates its
 * chips).  Restored verbatim by snapshots so dumpStats stays
 * bit-identical across a save/restore boundary.
 */
struct FaultStats {
    uint64_t deadCores = 0;       //!< cores killed
    uint64_t stuckWords = 0;      //!< crossbar words frozen
    uint64_t seuFlips = 0;        //!< potential bits flipped
    uint64_t linkDrops = 0;       //!< packets lost to drop faults
    uint64_t linkDups = 0;        //!< packets echoed by duplicate faults
    uint64_t linkDelays = 0;      //!< packets parked by delay faults
    uint64_t deadLinks = 0;       //!< links permanently killed
    uint64_t retries = 0;         //!< protocol retransmissions
    uint64_t dupsDropped = 0;     //!< duplicates masked by seq dedup
    uint64_t detours = 0;         //!< hops rerouted around dead links
    uint64_t detourDrops = 0;     //!< packets lost with no detour path
    uint64_t unrecoveredDrops = 0; //!< packets lost for good
    uint64_t checksumErrors = 0;  //!< packets failing checksum verify
    uint64_t alarms = 0;          //!< detection alarms raised
};

/** Serialize @p stats (snapshot helper). */
JsonValue faultStatsToJson(const FaultStats &stats);

/** Restore faultStatsToJson output. */
FaultStats faultStatsFromJson(const JsonValue &v);

} // namespace nscs

#endif // NSCS_RUNTIME_FAULT_HH
