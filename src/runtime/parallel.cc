#include "runtime/parallel.hh"

namespace nscs {

ThreadPool::ThreadPool(uint32_t threads)
{
    if (threads < 2)
        return;
    workers_.reserve(threads - 1);
    for (uint32_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::runLanes()
{
    // Claim-and-run until the index space is exhausted.  Indices are
    // claimed atomically, and parallelFor does not publish a new job
    // while any worker is still in here (active_ > 0), so every
    // index runs exactly once.
    for (;;) {
        uint32_t i = cursor_.fetch_add(1);
        uint32_t count = count_.load();
        if (i >= count)
            return;
        (*job_)(i);
        if (completed_.fetch_add(1) + 1 == count) {
            std::lock_guard<std::mutex> lk(mu_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        wake_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        // Register in active_ before dropping the lock: a new job
        // cannot be published while this worker might still claim
        // from the old cursor.
        ++active_;
        lk.unlock();
        runLanes();
        lk.lock();
        if (--active_ == 0)
            done_.notify_all();
    }
}

void
ThreadPool::parallelFor(uint32_t count,
                        const std::function<void(uint32_t)> &job)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (uint32_t i = 0; i < count; ++i)
            job(i);
        return;
    }
    {
        std::unique_lock<std::mutex> lk(mu_);
        // Wait out stragglers from the previous job: a worker still
        // inside runLanes could otherwise fetch_add a stale cursor
        // value between the stores below and claim an index of the
        // new job twice (or inflate completed_ past count).
        done_.wait(lk, [&] { return active_ == 0; });
        job_ = &job;
        completed_.store(0);
        count_.store(count);
        cursor_.store(0);
        ++generation_;
    }
    wake_.notify_all();
    runLanes();
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [&] { return completed_.load() == count; });
}

} // namespace nscs
