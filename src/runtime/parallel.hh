/**
 * @file
 * A persistent worker-thread pool for data-parallel tick evaluation.
 *
 * The pool is built once (threads are spawned at construction and
 * parked on a condition variable between jobs) and then reused every
 * tick, so the per-tick dispatch cost is one notify plus one join
 * rendezvous rather than thread creation.  Work is handed out as an
 * index space [0, count): each worker (plus the calling thread, which
 * participates) repeatedly claims the next unclaimed index from an
 * atomic cursor and runs the job on it.  parallelFor blocks until
 * every index has been processed.
 *
 * The job must be safe to run concurrently for distinct indices; the
 * pool provides no ordering between indices.  Exceptions must not
 * escape the job (the simulator core is exception-free; fatal() is
 * the error path).
 */

#ifndef NSCS_RUNTIME_PARALLEL_HH
#define NSCS_RUNTIME_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nscs {

/** Persistent pool of worker threads with a parallel-for primitive. */
class ThreadPool
{
  public:
    /**
     * Spawn @p threads - 1 workers (the caller is the remaining
     * lane).  @p threads < 2 spawns no workers; parallelFor then
     * degenerates to a serial loop on the calling thread.
     */
    explicit ThreadPool(uint32_t threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Join and reap all workers. */
    ~ThreadPool();

    /** Total lanes (workers + the calling thread). */
    uint32_t lanes() const { return static_cast<uint32_t>(workers_.size()) + 1; }

    /**
     * Run @p job(i) for every i in [0, count), distributing indices
     * across all lanes; returns when every index is done.  Must not
     * be called concurrently or re-entered from inside a job.
     */
    void parallelFor(uint32_t count, const std::function<void(uint32_t)> &job);

  private:
    void workerLoop();
    void runLanes();

    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable wake_;   //!< workers wait for a new job
    std::condition_variable done_;   //!< caller waits for completion
    uint64_t generation_ = 0;        //!< bumps once per parallelFor
    bool stop_ = false;

    const std::function<void(uint32_t)> *job_ = nullptr;
    std::atomic<uint32_t> count_{0};     //!< index-space size of the job
    std::atomic<uint32_t> cursor_{0};    //!< next unclaimed index
    std::atomic<uint32_t> completed_{0}; //!< indices finished
    uint32_t active_ = 0;  //!< workers inside runLanes (guarded by mu_)
};

} // namespace nscs

#endif // NSCS_RUNTIME_PARALLEL_HH
