#include "runtime/simulator.hh"

#include <chrono>

namespace nscs {

Simulator::Simulator(const ChipParams &params,
                     std::vector<CoreConfig> configs)
    : chip_(std::make_unique<Chip>(params, std::move(configs)))
{
}

Simulator::Simulator(const BoardParams &params,
                     std::vector<CoreConfig> configs)
    : board_(std::make_unique<Board>(params, std::move(configs)))
{
}

void
Simulator::addSource(std::unique_ptr<SpikeSource> source)
{
    sources_.push_back(std::move(source));
}

RunPerf
Simulator::run(uint64_t ticks)
{
    // RunPerf reports host ticks/sec for benches; the measured
    // duration never feeds back into the simulation, so output
    // stays deterministic.
    // nscs-lint: allow(wall-clock): host-side perf reporting only
    using clock = std::chrono::steady_clock;
    RunPerf perf;
    uint64_t out_before = recorder_.size();
    auto start = clock::now();

    for (uint64_t i = 0; i < ticks; ++i) {
        uint64_t t = chip_ ? chip_->now() : board_->now();
        inputScratch_.clear();
        for (auto &src : sources_)
            src->spikesFor(t, inputScratch_);
        if (chip_) {
            for (const InputSpike &s : inputScratch_)
                chip_->injectInput(s.core, s.axon, t);
            chip_->tick();
            if (!chip_->outputs().empty()) {
                recorder_.recordAll(chip_->outputs());
                chip_->clearOutputs();
            }
        } else {
            for (const InputSpike &s : inputScratch_)
                board_->injectInput(s.core, s.axon, t);
            board_->tick();
            if (!board_->outputs().empty()) {
                recorder_.recordAll(board_->outputs());
                board_->clearOutputs();
            }
        }
    }

    auto stop = clock::now();
    perf.ticks = ticks;
    perf.seconds =
        std::chrono::duration<double>(stop - start).count();
    perf.spikesOut = recorder_.size() - out_before;
    return perf;
}

void
Simulator::reset()
{
    if (chip_)
        chip_->reset();
    else
        board_->reset();
    recorder_.clear();
}

} // namespace nscs
