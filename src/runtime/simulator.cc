#include "runtime/simulator.hh"

#include <algorithm>
#include <chrono>

#include "runtime/snapshot.hh"
#include "util/logging.hh"

namespace nscs {

Simulator::Simulator(const ChipParams &params,
                     std::vector<CoreConfig> configs)
    : chip_(std::make_unique<Chip>(params, std::move(configs)))
{
}

Simulator::Simulator(const BoardParams &params,
                     std::vector<CoreConfig> configs)
    : board_(std::make_unique<Board>(params, std::move(configs)))
{
}

void
Simulator::addSource(std::unique_ptr<SpikeSource> source,
                     uint32_t instance)
{
    NSCS_ASSERT(instance < instances(),
                "source bound to instance %u of %u", instance,
                instances());
    sources_.push_back(std::move(source));
    sourceInstances_.push_back(instance);
}

RunPerf
Simulator::run(uint64_t ticks)
{
    // RunPerf reports host ticks/sec for benches; the measured
    // duration never feeds back into the simulation, so output
    // stays deterministic.
    // nscs-lint: allow(wall-clock): host-side perf reporting only
    using clock = std::chrono::steady_clock;
    RunPerf perf;
    uint64_t out_before = recorder_.size();
    auto start = clock::now();

    // The loop targets an end tick rather than counting iterations:
    // a rollback rewinds now(), and the replayed ticks re-execute
    // through the same loop until the target is reached again.
    const uint64_t target = now() + ticks;
    while (now() < target) {
        maybeCheckpoint();
        const uint64_t t = now();
        inputScratch_.clear();
        for (size_t si = 0; si < sources_.size(); ++si) {
            const size_t before = inputScratch_.size();
            sources_[si]->spikesFor(t, inputScratch_);
            if (sourceInstances_[si] != 0)
                for (size_t k = before; k < inputScratch_.size(); ++k)
                    inputScratch_[k].instance = sourceInstances_[si];
        }
        if (chip_) {
            chip_->injectInputs(inputScratch_, t);
            chip_->tick();
            if (!chip_->outputs().empty()) {
                recorder_.recordAll(chip_->outputs());
                chip_->clearOutputs();
            }
        } else {
            board_->injectInputs(inputScratch_, t);
            board_->tick();
            if (!board_->outputs().empty()) {
                recorder_.recordAll(board_->outputs());
                board_->clearOutputs();
            }
        }
        alarmScratch_.clear();
        if (chip_ && chip_->params().faultPlan)
            chip_->drainDetectedFaults(alarmScratch_);
        else if (board_ && board_->params().faultPlan)
            board_->drainDetectedFaults(alarmScratch_);
        if (!alarmScratch_.empty())
            handleAlarms();
    }

    auto stop = clock::now();
    perf.ticks = ticks;
    perf.seconds =
        std::chrono::duration<double>(stop - start).count();
    perf.spikesOut = recorder_.size() - out_before;
    return perf;
}

void
Simulator::maybeCheckpoint()
{
    if (checkpointEvery_ == 0 || now() % checkpointEvery_ != 0)
        return;
    if (haveCheckpoint_ && checkpointTick_ == now())
        return;  // just rolled back to this very tick
    checkpointBlob_ = snapshot().dump();
    checkpointTick_ = now();
    haveCheckpoint_ = true;
    ++recovery_.checkpoints;
}

void
Simulator::handleAlarms()
{
    // Dedup against everything already handled: a window fault can
    // alarm once per affected packet, and a rollback must suppress
    // each plan event exactly once.
    size_t fresh = 0;
    for (uint32_t id : alarmScratch_) {
        if (std::find(handled_.begin(), handled_.end(), id) ==
            handled_.end()) {
            handled_.push_back(id);
            ++fresh;
        }
    }
    if (fresh == 0)
        return;
    if (!autoRecover_ || !haveCheckpoint_) {
        recovery_.unrecoveredAlarms += fresh;
        return;
    }

    const uint64_t detectedAt = now();  // the faulty tick completed
    JsonParseResult parsed = parseJson(checkpointBlob_);
    NSCS_ASSERT(parsed.ok, "held checkpoint no longer parses: %s",
                parsed.error.c_str());
    std::string err;
    bool ok = restore(parsed.value, &err);
    NSCS_ASSERT(ok, "held checkpoint no longer restores: %s",
                err.c_str());
    // The checkpoint predates every suppression — re-apply the full
    // handled history, not just this alarm's ids.
    for (uint32_t id : handled_) {
        if (chip_)
            chip_->suppressFault(id);
        else
            board_->suppressFault(id);
    }
    ++recovery_.rollbacks;
    uint64_t span = detectedAt - checkpointTick_;
    recovery_.replayedTicks += span;
    recovery_.lastRecoveryLatencyTicks = span;
    recovery_.maxRecoveryLatencyTicks =
        std::max(recovery_.maxRecoveryLatencyTicks, span);
}

JsonValue
Simulator::snapshot() const
{
    return snapshotSimulator(*this);
}

bool
Simulator::restore(const JsonValue &snap, std::string *err)
{
    SnapshotStatus status = restoreSimulator(*this, snap);
    if (!status.ok && err)
        *err = status.error;
    return status.ok;
}

bool
Simulator::saveStateFile(const std::string &path,
                         std::string *err) const
{
    SnapshotStatus status = saveSnapshotFile(*this, path);
    if (!status.ok && err)
        *err = status.error;
    return status.ok;
}

bool
Simulator::restoreStateFile(const std::string &path, std::string *err)
{
    SnapshotStatus status = loadSnapshotFile(*this, path);
    if (!status.ok && err)
        *err = status.error;
    return status.ok;
}

size_t
Simulator::footprintBytes() const
{
    size_t bytes = sizeof(Simulator);
    bytes += chip_ ? chip_->footprintBytes()
                   : board_->footprintBytes();
    bytes += recorder_.footprintBytes();
    bytes += inputScratch_.capacity() * sizeof(InputSpike);
    bytes += sourceInstances_.capacity() * sizeof(uint32_t);
    bytes += checkpointBlob_.capacity();
    bytes += handled_.capacity() * sizeof(uint32_t);
    bytes += alarmScratch_.capacity() * sizeof(uint32_t);
    return bytes;
}

void
Simulator::reset()
{
    if (chip_)
        chip_->reset();
    else
        board_->reset();
    recorder_.clear();
    haveCheckpoint_ = false;
    checkpointTick_ = 0;
    checkpointBlob_.clear();
    handled_.clear();
    alarmScratch_.clear();
    recovery_ = RecoveryStats{};
}

} // namespace nscs
