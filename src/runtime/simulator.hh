/**
 * @file
 * Top-level simulation driver.
 *
 * The Simulator owns a Chip, a set of input sources and an output
 * recorder, and runs the per-tick loop:
 *
 *   1. poll every source for this tick's input spikes and inject
 *      them for same-tick delivery;
 *   2. execute the chip tick;
 *   3. drain output spikes into the recorder.
 *
 * It also keeps wall-clock statistics (ticks/second, real-time
 * headroom at the nominal 1 ms tick) used by the scaling and
 * real-time benches.
 */

#ifndef NSCS_RUNTIME_SIMULATOR_HH
#define NSCS_RUNTIME_SIMULATOR_HH

#include <memory>
#include <vector>

#include "chip/chip.hh"
#include "runtime/sink.hh"
#include "runtime/source.hh"

namespace nscs {

/** Wall-clock performance of a run() call. */
struct RunPerf
{
    uint64_t ticks = 0;        //!< ticks executed
    double seconds = 0.0;      //!< wall-clock seconds
    uint64_t spikesOut = 0;    //!< output spikes in the window

    /** Simulated ticks per wall-clock second. */
    double
    ticksPerSecond() const
    {
        return seconds > 0.0 ? static_cast<double>(ticks) / seconds : 0.0;
    }

    /**
     * Fraction of real time at @p tick_seconds per tick (> 1 means
     * faster than real time).
     */
    double
    realTimeFactor(double tick_seconds = 1e-3) const
    {
        return ticksPerSecond() * tick_seconds;
    }
};

/** Chip + I/O harness. */
class Simulator
{
  public:
    /** Build the chip from params and configs. */
    Simulator(const ChipParams &params,
              std::vector<CoreConfig> configs);

    /** Attach an input source (polled every tick, in order). */
    void addSource(std::unique_ptr<SpikeSource> source);

    /** Run @p ticks ticks; returns wall-clock performance. */
    RunPerf run(uint64_t ticks);

    /** The chip. */
    Chip &chip() { return *chip_; }

    /** The chip (const). */
    const Chip &chip() const { return *chip_; }

    /** Recorded output spikes. */
    SpikeRecorder &recorder() { return recorder_; }

    /** Recorded output spikes (const). */
    const SpikeRecorder &recorder() const { return recorder_; }

    /** Reset chip, recorder and performance counters (sources keep
     *  their own state and are not reset). */
    void reset();

  private:
    std::unique_ptr<Chip> chip_;
    std::vector<std::unique_ptr<SpikeSource>> sources_;
    SpikeRecorder recorder_;
    std::vector<InputSpike> inputScratch_;
};

} // namespace nscs

#endif // NSCS_RUNTIME_SIMULATOR_HH
