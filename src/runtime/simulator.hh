/**
 * @file
 * Top-level simulation driver.
 *
 * The Simulator owns a target device — a single Chip or a Board of
 * chips — plus a set of input sources and an output recorder, and
 * runs the per-tick loop:
 *
 *   1. poll every source for this tick's input spikes and inject
 *      them for same-tick delivery;
 *   2. execute the device tick;
 *   3. drain output spikes into the recorder.
 *
 * Input spikes address cores by *global* row-major index in both
 * modes (a board resolves the index to a (chip, local core) pair),
 * so sources and compiled models are device-agnostic.
 *
 * It also keeps wall-clock statistics (ticks/second, real-time
 * headroom at the nominal 1 ms tick) used by the scaling and
 * real-time benches.
 */

#ifndef NSCS_RUNTIME_SIMULATOR_HH
#define NSCS_RUNTIME_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "board/board.hh"
#include "chip/chip.hh"
#include "runtime/sink.hh"
#include "runtime/source.hh"

namespace nscs {

/** Checkpoint/rollback bookkeeping (fault recovery). */
struct RecoveryStats
{
    uint64_t checkpoints = 0;        //!< checkpoints taken
    uint64_t rollbacks = 0;          //!< restores after an alarm
    uint64_t replayedTicks = 0;      //!< ticks re-executed, total
    uint64_t unrecoveredAlarms = 0;  //!< alarms with no checkpoint
    uint64_t lastRecoveryLatencyTicks = 0; //!< replay span, last
    uint64_t maxRecoveryLatencyTicks = 0;  //!< replay span, worst
};

/** Wall-clock performance of a run() call. */
struct RunPerf
{
    uint64_t ticks = 0;        //!< ticks executed
    double seconds = 0.0;      //!< wall-clock seconds
    uint64_t spikesOut = 0;    //!< output spikes in the window

    /** Simulated ticks per wall-clock second. */
    double
    ticksPerSecond() const
    {
        return seconds > 0.0 ? static_cast<double>(ticks) / seconds : 0.0;
    }

    /**
     * Fraction of real time at @p tick_seconds per tick (> 1 means
     * faster than real time).
     */
    double
    realTimeFactor(double tick_seconds = 1e-3) const
    {
        return ticksPerSecond() * tick_seconds;
    }
};

/** Device (chip or board) + I/O harness. */
class Simulator
{
  public:
    /** Build a single-chip target from params and configs. */
    Simulator(const ChipParams &params,
              std::vector<CoreConfig> configs);

    /** Build a board target; @p configs covers the global core grid
     *  in row-major order (see Board). */
    Simulator(const BoardParams &params,
              std::vector<CoreConfig> configs);

    /**
     * Attach an input source (polled every tick, in order).  With
     * @p instance nonzero the source's spikes are stamped onto that
     * instance lane of a batched device; spikes whose InputSpike
     * already names a lane (instance binding 0) pass through
     * untouched.
     */
    void addSource(std::unique_ptr<SpikeSource> source,
                   uint32_t instance = 0);

    /** Run @p ticks ticks; returns wall-clock performance. */
    RunPerf run(uint64_t ticks);

    /** True when the target is a board. */
    bool isBoard() const { return board_ != nullptr; }

    /** The chip (single-chip targets only). */
    Chip &chip() { return *chip_; }

    /** The chip (const; single-chip targets only). */
    const Chip &chip() const { return *chip_; }

    /** The board (board targets only). */
    Board &board() { return *board_; }

    /** The board (const; board targets only). */
    const Board &board() const { return *board_; }

    /** Recorded output spikes. */
    SpikeRecorder &recorder() { return recorder_; }

    /** Recorded output spikes (const). */
    const SpikeRecorder &recorder() const { return recorder_; }

    /** Reset device, recorder and performance counters; drops the
     *  held checkpoint and recovery stats (sources keep their own
     *  state and are not reset). */
    void reset();

    /** Next tick to execute, whichever device backs the run. */
    uint64_t now() const { return chip_ ? chip_->now() : board_->now(); }

    /** Number of attached sources. */
    size_t numSources() const { return sources_.size(); }

    /** Source access (snapshot machinery). */
    SpikeSource &source(size_t i) { return *sources_[i]; }

    /** Source access (const). */
    const SpikeSource &source(size_t i) const { return *sources_[i]; }

    /** Instance lane source @p i is bound to (0 = pass-through). */
    uint32_t sourceInstance(size_t i) const
    {
        return sourceInstances_[i];
    }

    /** Instance lanes of the backing device. */
    uint32_t instances() const
    {
        return chip_ ? chip_->instances()
                     : board_->params().chip.instances;
    }

    // --- snapshot / checkpoint / recovery --------------------------------

    /** Serialize device + sources + recorder (snapshotSimulator). */
    JsonValue snapshot() const;

    /**
     * Restore a snapshot() document; on mismatch returns false and,
     * when @p err is non-null, stores the reason.  See
     * restoreSimulator for the validation contract.
     */
    bool restore(const JsonValue &snap, std::string *err = nullptr);

    /** Snapshot to a file (saveSnapshotFile). */
    bool saveStateFile(const std::string &path,
                       std::string *err = nullptr) const;

    /** Restore from a file (loadSnapshotFile). */
    bool restoreStateFile(const std::string &path,
                          std::string *err = nullptr);

    /**
     * Checkpoint every @p every ticks during run() (0 disables).  A
     * checkpoint is an in-memory snapshot; with auto-recovery armed
     * (the default) a detected-fault alarm rolls the simulation back
     * to the last checkpoint, suppresses the faults that alarmed and
     * replays deterministically, so transient upsets leave no trace
     * in the spike record.
     */
    void setCheckpointInterval(uint64_t every)
    {
        checkpointEvery_ = every;
    }

    /** Arm or disarm rollback on detected-fault alarms. */
    void setAutoRecover(bool on) { autoRecover_ = on; }

    /** Checkpoint/rollback counters. */
    const RecoveryStats &recoveryStats() const { return recovery_; }

    /** Heap footprint: device + recorder + checkpoint buffers. */
    size_t footprintBytes() const;

  private:
    void maybeCheckpoint();
    void handleAlarms();

    std::unique_ptr<Chip> chip_;     //!< exactly one of chip_ /
    std::unique_ptr<Board> board_;   //!< board_ is non-null
    std::vector<std::unique_ptr<SpikeSource>> sources_;
    std::vector<uint32_t> sourceInstances_;  //!< lane per source
    SpikeRecorder recorder_;
    std::vector<InputSpike> inputScratch_;

    // Checkpoint-rollback recovery.  The checkpoint is held as the
    // dumped JSON text (cheap to keep, exact to restore); handled_
    // remembers every suppressed fault id so a rollback to a
    // checkpoint that predates an earlier recovery re-suppresses the
    // whole history before replaying.
    uint64_t checkpointEvery_ = 0;
    bool autoRecover_ = true;
    bool haveCheckpoint_ = false;
    uint64_t checkpointTick_ = 0;
    std::string checkpointBlob_;
    std::vector<uint32_t> handled_;
    std::vector<uint32_t> alarmScratch_;
    RecoveryStats recovery_;
};

} // namespace nscs

#endif // NSCS_RUNTIME_SIMULATOR_HH
