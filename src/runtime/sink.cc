#include "runtime/sink.hh"

#include <algorithm>

namespace nscs {

void
SpikeRecorder::record(const OutputSpike &s)
{
    spikes_.push_back(s);
    byLine_[key(s.line, s.instance)].push_back(s.tick);
}

void
SpikeRecorder::recordAll(const std::vector<OutputSpike> &batch)
{
    for (const auto &s : batch)
        record(s);
}

uint64_t
SpikeRecorder::count(uint32_t line, uint32_t instance) const
{
    auto it = byLine_.find(key(line, instance));
    return it == byLine_.end() ? 0 : it->second.size();
}

uint64_t
SpikeRecorder::countInWindow(uint32_t line, uint64_t t0, uint64_t t1,
                             uint32_t instance) const
{
    auto it = byLine_.find(key(line, instance));
    if (it == byLine_.end())
        return 0;
    const auto &ticks = it->second;
    // Recorded in arrival order == tick order per line.
    auto lo = std::lower_bound(ticks.begin(), ticks.end(), t0);
    auto hi = std::lower_bound(ticks.begin(), ticks.end(), t1);
    return static_cast<uint64_t>(hi - lo);
}

std::optional<uint64_t>
SpikeRecorder::firstSpike(uint32_t line, uint32_t instance) const
{
    auto it = byLine_.find(key(line, instance));
    if (it == byLine_.end() || it->second.empty())
        return std::nullopt;
    return it->second.front();
}

std::vector<uint64_t>
SpikeRecorder::ticksOf(uint32_t line, uint32_t instance) const
{
    auto it = byLine_.find(key(line, instance));
    if (it == byLine_.end())
        return {};
    return it->second;
}

uint32_t
SpikeRecorder::argmaxLine(uint32_t line0, uint32_t n,
                          uint32_t instance) const
{
    uint32_t best = line0;
    uint64_t best_count = 0;
    for (uint32_t i = 0; i < n; ++i) {
        uint64_t c = count(line0 + i, instance);
        if (c > best_count) {
            best_count = c;
            best = line0 + i;
        }
    }
    return best;
}

uint32_t
SpikeRecorder::argmaxLineInWindow(uint32_t line0, uint32_t n,
                                  uint64_t t0, uint64_t t1,
                                  uint32_t instance) const
{
    uint32_t best = line0;
    uint64_t best_count = 0;
    for (uint32_t i = 0; i < n; ++i) {
        uint64_t c = countInWindow(line0 + i, t0, t1, instance);
        if (c > best_count) {
            best_count = c;
            best = line0 + i;
        }
    }
    return best;
}

void
SpikeRecorder::clear()
{
    spikes_.clear();
    byLine_.clear();
}

size_t
SpikeRecorder::footprintBytes() const
{
    size_t bytes = spikes_.capacity() * sizeof(OutputSpike);
    for (const auto &kv : byLine_)
        bytes += sizeof(kv) + kv.second.capacity() * sizeof(uint64_t);
    return bytes;
}

} // namespace nscs
