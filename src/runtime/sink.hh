/**
 * @file
 * Output spike recording and analysis.
 *
 * The SpikeRecorder accumulates off-chip spikes drained from the chip
 * and answers the queries benches and applications need: per-line
 * counts, window counts, rates, first-spike times and full rasters.
 */

#ifndef NSCS_RUNTIME_SINK_HH
#define NSCS_RUNTIME_SINK_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chip/chip.hh"

namespace nscs {

/** Accumulates output spikes. */
class SpikeRecorder
{
  public:
    /** Record one spike. */
    void record(const OutputSpike &s);

    /** Record a batch. */
    void recordAll(const std::vector<OutputSpike> &batch);

    /** All spikes in arrival order. */
    const std::vector<OutputSpike> &spikes() const { return spikes_; }

    /** Total recorded spikes. */
    size_t size() const { return spikes_.size(); }

    /** Spike count of @p line on instance lane @p instance. */
    uint64_t count(uint32_t line, uint32_t instance = 0) const;

    /** Spike count of @p line within [t0, t1). */
    uint64_t countInWindow(uint32_t line, uint64_t t0, uint64_t t1,
                           uint32_t instance = 0) const;

    /** First spike tick of @p line, or nullopt. */
    std::optional<uint64_t> firstSpike(uint32_t line,
                                       uint32_t instance = 0) const;

    /** Spike ticks of @p line in order. */
    std::vector<uint64_t> ticksOf(uint32_t line,
                                  uint32_t instance = 0) const;

    /**
     * Line with the highest count among lines [line0, line0 + n);
     * ties resolve to the lowest line.  Returns line0 when all are
     * silent.
     */
    uint32_t argmaxLine(uint32_t line0, uint32_t n,
                        uint32_t instance = 0) const;

    /** As argmaxLine, but counting only within [t0, t1). */
    uint32_t argmaxLineInWindow(uint32_t line0, uint32_t n,
                                uint64_t t0, uint64_t t1,
                                uint32_t instance = 0) const;

    /** Forget everything. */
    void clear();

    /** Heap footprint of the recorded spikes and per-line index. */
    size_t footprintBytes() const;

  private:
    /** Index key: instance lane in the high word, line in the low. */
    static uint64_t key(uint32_t line, uint32_t instance)
    {
        return (static_cast<uint64_t>(instance) << 32) | line;
    }

    std::vector<OutputSpike> spikes_;
    std::unordered_map<uint64_t, std::vector<uint64_t>> byLine_;
};

} // namespace nscs

#endif // NSCS_RUNTIME_SINK_HH
