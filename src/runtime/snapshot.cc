#include "runtime/snapshot.hh"

#include <utility>

#include "runtime/simulator.hh"

namespace nscs {

namespace {

const char *
engineName(EngineKind engine)
{
    return engine == EngineKind::Clock ? "clock" : "event";
}

SnapshotStatus
failStatus(std::string error)
{
    return {false, std::move(error)};
}

/** Static shape of the simulated device, for restore validation. */
JsonValue
geometryJson(const Simulator &sim)
{
    JsonValue g = JsonValue::object();
    const CoreGeometry &geom = sim.isBoard()
        ? sim.board().params().chip.coreGeom
        : sim.chip().params().coreGeom;
    if (sim.isBoard()) {
        const BoardParams &bp = sim.board().params();
        g.set("boardWidth", JsonValue::integer(bp.width));
        g.set("boardHeight", JsonValue::integer(bp.height));
        g.set("chipWidth", JsonValue::integer(bp.chip.width));
        g.set("chipHeight", JsonValue::integer(bp.chip.height));
    } else {
        const ChipParams &cp = sim.chip().params();
        g.set("chipWidth", JsonValue::integer(cp.width));
        g.set("chipHeight", JsonValue::integer(cp.height));
    }
    g.set("numAxons", JsonValue::integer(geom.numAxons));
    g.set("numNeurons", JsonValue::integer(geom.numNeurons));
    g.set("delaySlots", JsonValue::integer(geom.delaySlots));
    g.set("instances", JsonValue::integer(sim.instances()));
    return g;
}

} // anonymous namespace

JsonValue
snapshotSimulator(const Simulator &sim)
{
    JsonValue doc = JsonValue::object();
    doc.set("format", JsonValue::string(kSnapshotFormat));
    doc.set("version", JsonValue::integer(kSnapshotVersion));
    doc.set("target",
            JsonValue::string(sim.isBoard() ? "board" : "chip"));
    EngineKind engine = sim.isBoard()
        ? sim.board().params().chip.engine
        : sim.chip().params().engine;
    doc.set("engine", JsonValue::string(engineName(engine)));
    doc.set("geometry", geometryJson(sim));

    JsonValue device;
    if (sim.isBoard())
        sim.board().saveState(device);
    else
        sim.chip().saveState(device);
    doc.set("device", std::move(device));

    JsonValue recorder = JsonValue::array();
    for (const OutputSpike &s : sim.recorder().spikes()) {
        recorder.append(
            JsonValue::integer(static_cast<int64_t>(s.tick)));
        recorder.append(JsonValue::integer(s.line));
        recorder.append(JsonValue::integer(s.instance));
    }
    doc.set("recorder", std::move(recorder));

    JsonValue sources = JsonValue::array();
    for (size_t i = 0; i < sim.numSources(); ++i) {
        JsonValue s;
        sim.source(i).saveState(s);
        sources.append(std::move(s));
    }
    doc.set("sources", std::move(sources));
    return doc;
}

SnapshotStatus
restoreSimulator(Simulator &sim, const JsonValue &snap)
{
    if (snap.type() != JsonValue::Type::Object)
        return failStatus("snapshot is not a JSON object");
    std::string format = snap.getString("format", "");
    if (format != kSnapshotFormat)
        return failStatus("not an nscs snapshot (format tag is '" +
                          format + "')");
    int64_t version = snap.getInt("version", -1);
    if (version != kSnapshotVersion)
        return failStatus("snapshot version " +
                          std::to_string(version) +
                          " unsupported (this build reads version " +
                          std::to_string(kSnapshotVersion) + ")");

    const char *target = sim.isBoard() ? "board" : "chip";
    if (snap.getString("target", "") != target)
        return failStatus("snapshot targets a " +
                          snap.getString("target", "?") +
                          ", simulator drives a " + target);
    EngineKind engine = sim.isBoard()
        ? sim.board().params().chip.engine
        : sim.chip().params().engine;
    if (snap.getString("engine", "") != engineName(engine))
        return failStatus("snapshot engine '" +
                          snap.getString("engine", "?") +
                          "' does not match simulator engine '" +
                          engineName(engine) + "'");
    if (!sim.isBoard() &&
        sim.chip().params().noc != NocModel::Functional)
        return failStatus("snapshots require the functional "
                          "transport model");

    if (!snap.has("geometry") ||
        snap.at("geometry").type() != JsonValue::Type::Object)
        return failStatus("snapshot carries no geometry header");
    JsonValue expected = geometryJson(sim);
    const JsonValue &geometry = snap.at("geometry");
    for (const std::string &key : expected.keys()) {
        int64_t have = expected.at(key).asInt();
        int64_t got = geometry.getInt(key, -1);
        if (got != have)
            return failStatus("geometry mismatch: snapshot " + key +
                              " is " + std::to_string(got) +
                              ", simulator has " +
                              std::to_string(have));
    }

    if (!snap.has("device"))
        return failStatus("snapshot carries no device state");
    bool restored = sim.isBoard()
        ? sim.board().restoreState(snap.at("device"))
        : sim.chip().restoreState(snap.at("device"));
    if (!restored)
        return failStatus("device state rejected: snapshot is "
                          "malformed or from a different model");

    sim.recorder().clear();
    if (snap.has("recorder")) {
        const JsonValue &recorder = snap.at("recorder");
        if (recorder.type() != JsonValue::Type::Array ||
            recorder.size() % 3 != 0)
            return failStatus("recorder state is malformed");
        for (size_t i = 0; i < recorder.size(); i += 3)
            sim.recorder().record(
                {static_cast<uint64_t>(recorder.at(i).asInt()),
                 static_cast<uint32_t>(recorder.at(i + 1).asInt()),
                 static_cast<uint32_t>(recorder.at(i + 2).asInt())});
    }

    if (snap.has("sources")) {
        const JsonValue &sources = snap.at("sources");
        if (sources.size() != sim.numSources())
            return failStatus(
                "snapshot has " + std::to_string(sources.size()) +
                " source states, simulator has " +
                std::to_string(sim.numSources()) + " sources");
        for (size_t i = 0; i < sources.size(); ++i)
            if (!sim.source(i).restoreState(sources.at(i)))
                return failStatus("source " + std::to_string(i) +
                                  " rejected its state");
    } else if (sim.numSources() != 0) {
        return failStatus("snapshot carries no source states but "
                          "the simulator has sources");
    }
    return {};
}

SnapshotStatus
saveSnapshotFile(const Simulator &sim, const std::string &path)
{
    if (!writeFile(path, snapshotSimulator(sim).dump(2) + "\n"))
        return failStatus("cannot write snapshot file " + path);
    return {};
}

SnapshotStatus
loadSnapshotFile(Simulator &sim, const std::string &path)
{
    std::string text;
    if (!readFile(path, text))
        return failStatus("cannot read snapshot file " + path);
    JsonParseResult parsed = parseJson(text);
    if (!parsed.ok)
        return failStatus("snapshot file " + path + ": " +
                          parsed.error);
    return restoreSimulator(sim, parsed.value);
}

} // namespace nscs
