/**
 * @file
 * Deterministic simulator snapshots.
 *
 * A snapshot captures the complete mutable state of a Simulator —
 * device (every neuron potential, scheduler slot, LFSR position,
 * event agenda and in-flight board packet), attached sources and the
 * output recorder — as a versioned JSON document.  Restoring a
 * snapshot into a freshly constructed Simulator with the same model
 * and parameters, then running on, is bit-identical to having run
 * the original straight through: the restore point is invisible in
 * the spike record.  The thread count is NOT part of the contract;
 * a snapshot taken at threads=N restores into threads=M because the
 * engines are bit-identical across thread counts.
 *
 * The same machinery backs the checkpoint/rollback recovery loop
 * (Simulator::setCheckpointInterval): a checkpoint is a snapshot
 * held in memory, and a rollback is a restore plus deterministic
 * replay.
 *
 * Snapshots require the functional transport model; the cycle mesh's
 * in-flight flits are not serialized.
 */

#ifndef NSCS_RUNTIME_SNAPSHOT_HH
#define NSCS_RUNTIME_SNAPSHOT_HH

#include <string>

#include "util/json.hh"

namespace nscs {

class Simulator;

/** Snapshot document version this build reads and writes.
 *  v2 (instance batching): geometry carries the instance-lane count,
 *  core state splits into per-lane records, and recorder/output
 *  entries carry the originating instance.  v1 documents are
 *  rejected with a version diagnostic. */
inline constexpr int kSnapshotVersion = 2;

/** Snapshot document format tag. */
inline constexpr const char *kSnapshotFormat = "nscs-snapshot";

/** Outcome of a snapshot restore/load. */
struct SnapshotStatus
{
    bool ok = true;
    std::string error;
};

/** Serialize @p sim's complete mutable state. */
JsonValue snapshotSimulator(const Simulator &sim);

/**
 * Restore @p snap into @p sim.  The simulator must be built from the
 * same model and parameters (target kind, engine, geometry and source
 * count are validated; a mismatch is reported, not asserted).  On
 * failure the simulator's state is unspecified — reset() it before
 * further use.
 */
SnapshotStatus restoreSimulator(Simulator &sim, const JsonValue &snap);

/** Snapshot @p sim and write it to @p path (pretty-printed JSON). */
SnapshotStatus saveSnapshotFile(const Simulator &sim,
                                const std::string &path);

/** Read @p path and restore it into @p sim. */
SnapshotStatus loadSnapshotFile(Simulator &sim,
                                const std::string &path);

} // namespace nscs

#endif // NSCS_RUNTIME_SNAPSHOT_HH
