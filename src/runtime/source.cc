#include "runtime/source.hh"

#include "util/logging.hh"

namespace nscs {

PoissonSource::PoissonSource(std::vector<InputSpike> targets,
                             double rate, uint64_t seed)
    : targets_(std::move(targets)),
      rates_(targets_.size(), rate),
      rng_(seed)
{
    NSCS_ASSERT(rate >= 0.0 && rate <= 1.0,
                "per-tick rate %f outside [0, 1]", rate);
}

PoissonSource::PoissonSource(std::vector<InputSpike> targets,
                             std::vector<double> rates, uint64_t seed)
    : targets_(std::move(targets)), rates_(std::move(rates)),
      rng_(seed)
{
    NSCS_ASSERT(targets_.size() == rates_.size(),
                "targets (%zu) and rates (%zu) size mismatch",
                targets_.size(), rates_.size());
    for (double r : rates_)
        NSCS_ASSERT(r >= 0.0 && r <= 1.0,
                    "per-tick rate %f outside [0, 1]", r);
}

void
PoissonSource::spikesFor(uint64_t, std::vector<InputSpike> &out)
{
    for (size_t i = 0; i < targets_.size(); ++i)
        if (rng_.chance(rates_[i]))
            out.push_back(targets_[i]);
}

void
PoissonSource::saveState(JsonValue &out) const
{
    out = JsonValue::object();
    out.set("kind", JsonValue::string("poisson"));
    Xoshiro256::State st = rng_.saveState();
    JsonValue rng = JsonValue::object();
    JsonValue words = JsonValue::array();
    for (uint64_t w : st.s)
        words.append(JsonValue::string(u64ToHex(w)));
    rng.set("s", std::move(words));
    rng.set("cachedNormalBits",
            JsonValue::string(u64ToHex(st.cachedNormalBits)));
    rng.set("hasCachedNormal",
            JsonValue::boolean(st.hasCachedNormal));
    out.set("rng", std::move(rng));
}

bool
PoissonSource::restoreState(const JsonValue &in)
{
    if (in.type() != JsonValue::Type::Object || !in.has("rng") ||
        in.getString("kind", "") != "poisson")
        return false;
    const JsonValue &rng = in.at("rng");
    if (!rng.has("s") || rng.at("s").size() != 4)
        return false;
    Xoshiro256::State st;
    for (size_t i = 0; i < 4; ++i)
        if (!u64FromHex(rng.at("s").at(i).asString(), st.s[i]))
            return false;
    if (!u64FromHex(rng.getString("cachedNormalBits",
                                  "0000000000000000"),
                    st.cachedNormalBits))
        return false;
    st.hasCachedNormal = rng.getBool("hasCachedNormal", false);
    rng_.restoreState(st);
    return true;
}

RegularSource::RegularSource(std::vector<InputSpike> targets,
                             uint64_t period, uint64_t phase)
    : targets_(std::move(targets)), period_(period), phase_(phase)
{
    NSCS_ASSERT(period_ > 0, "RegularSource period must be > 0");
}

void
RegularSource::spikesFor(uint64_t t, std::vector<InputSpike> &out)
{
    if (t < phase_ || (t - phase_) % period_ != 0)
        return;
    out.insert(out.end(), targets_.begin(), targets_.end());
}

void
ScheduleSource::add(uint64_t tick, InputSpike spike)
{
    // An add that lands below the sorted prefix's maximum lowers
    // the prefix boundary to the first entry past the stray tick;
    // the prefix stays sorted and never exceeds the tail's minimum,
    // so the next query only has to sort the tail.
    const bool clean = prefix_ == entries_.size();
    if (clean && (entries_.empty() ||
                  tick >= entries_.back().tick)) {
        entries_.push_back(Entry{tick, spike});
        ++prefix_;
        return;
    }
    if (prefix_ > 0 && tick < entries_[prefix_ - 1].tick) {
        auto end = entries_.begin() +
            static_cast<ptrdiff_t>(prefix_);
        auto it = std::upper_bound(entries_.begin(), end, tick,
                                   [](uint64_t t, const Entry &e) {
                                       return t < e.tick;
                                   });
        prefix_ = static_cast<size_t>(it - entries_.begin());
    }
    entries_.push_back(Entry{tick, spike});
}

/**
 * Sort the dirty tail [prefix_, end) by tick, stably, and advance
 * prefix_ past it.  A schedule built per serving pass concentrates
 * its adds in one short tick window, so the tail is counting-sorted
 * through persistent scratch (two linear passes, no allocation once
 * warm) whenever its tick range is small; a stable scatter in scan
 * order preserves per-tick insertion order exactly as stable_sort
 * would, so the emitted spike order — the deterministic trace — is
 * identical on both routes.  Wide-range tails fall back to
 * stable_sort.
 */
void
ScheduleSource::sortTail()
{
    const size_t n = entries_.size() - prefix_;
    if (n == 0) {
        prefix_ = entries_.size();
        return;
    }
    Entry *tail = entries_.data() + prefix_;
    uint64_t lo = tail[0].tick, hi = tail[0].tick;
    for (size_t i = 1; i < n; ++i) {
        lo = std::min(lo, tail[i].tick);
        hi = std::max(hi, tail[i].tick);
    }
    const uint64_t range = hi - lo + 1;
    // Beyond a few thousand distinct ticks the count array outgrows
    // the tail itself; comparison sort wins there.
    if (range > std::max<uint64_t>(4096, n)) {
        std::stable_sort(entries_.begin() +
                             static_cast<ptrdiff_t>(prefix_),
                         entries_.end(),
                         [](const Entry &a, const Entry &b) {
                             return a.tick < b.tick;
                         });
        prefix_ = entries_.size();
        return;
    }
    countScratch_.assign(static_cast<size_t>(range), 0);
    for (size_t i = 0; i < n; ++i)
        ++countScratch_[tail[i].tick - lo];
    uint32_t sum = 0;
    for (uint32_t &c : countScratch_) {
        uint32_t here = c;
        c = sum;
        sum += here;
    }
    scatterScratch_.resize(n);
    for (size_t i = 0; i < n; ++i)
        scatterScratch_[countScratch_[tail[i].tick - lo]++] = tail[i];
    std::copy(scatterScratch_.begin(), scatterScratch_.end(), tail);
    prefix_ = entries_.size();
}

void
ScheduleSource::discardBefore(uint64_t tick)
{
    if (prefix_ != entries_.size())
        sortTail();
    auto it = std::lower_bound(entries_.begin(), entries_.end(),
                               tick,
                               [](const Entry &e, uint64_t t) {
                                   return e.tick < t;
                               });
    entries_.erase(entries_.begin(), it);
    prefix_ = entries_.size();
}

void
ScheduleSource::spikesFor(uint64_t t, std::vector<InputSpike> &out)
{
    if (prefix_ != entries_.size())
        sortTail();
    auto it = std::lower_bound(entries_.begin(), entries_.end(), t,
                               [](const Entry &e, uint64_t tick) {
                                   return e.tick < tick;
                               });
    for (; it != entries_.end() && it->tick == t; ++it)
        out.push_back(it->spike);
}

} // namespace nscs
