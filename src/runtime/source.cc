#include "runtime/source.hh"

#include "util/logging.hh"

namespace nscs {

PoissonSource::PoissonSource(std::vector<InputSpike> targets,
                             double rate, uint64_t seed)
    : targets_(std::move(targets)),
      rates_(targets_.size(), rate),
      rng_(seed)
{
    NSCS_ASSERT(rate >= 0.0 && rate <= 1.0,
                "per-tick rate %f outside [0, 1]", rate);
}

PoissonSource::PoissonSource(std::vector<InputSpike> targets,
                             std::vector<double> rates, uint64_t seed)
    : targets_(std::move(targets)), rates_(std::move(rates)),
      rng_(seed)
{
    NSCS_ASSERT(targets_.size() == rates_.size(),
                "targets (%zu) and rates (%zu) size mismatch",
                targets_.size(), rates_.size());
    for (double r : rates_)
        NSCS_ASSERT(r >= 0.0 && r <= 1.0,
                    "per-tick rate %f outside [0, 1]", r);
}

void
PoissonSource::spikesFor(uint64_t, std::vector<InputSpike> &out)
{
    for (size_t i = 0; i < targets_.size(); ++i)
        if (rng_.chance(rates_[i]))
            out.push_back(targets_[i]);
}

void
PoissonSource::saveState(JsonValue &out) const
{
    out = JsonValue::object();
    out.set("kind", JsonValue::string("poisson"));
    Xoshiro256::State st = rng_.saveState();
    JsonValue rng = JsonValue::object();
    JsonValue words = JsonValue::array();
    for (uint64_t w : st.s)
        words.append(JsonValue::string(u64ToHex(w)));
    rng.set("s", std::move(words));
    rng.set("cachedNormalBits",
            JsonValue::string(u64ToHex(st.cachedNormalBits)));
    rng.set("hasCachedNormal",
            JsonValue::boolean(st.hasCachedNormal));
    out.set("rng", std::move(rng));
}

bool
PoissonSource::restoreState(const JsonValue &in)
{
    if (in.type() != JsonValue::Type::Object || !in.has("rng") ||
        in.getString("kind", "") != "poisson")
        return false;
    const JsonValue &rng = in.at("rng");
    if (!rng.has("s") || rng.at("s").size() != 4)
        return false;
    Xoshiro256::State st;
    for (size_t i = 0; i < 4; ++i)
        if (!u64FromHex(rng.at("s").at(i).asString(), st.s[i]))
            return false;
    if (!u64FromHex(rng.getString("cachedNormalBits",
                                  "0000000000000000"),
                    st.cachedNormalBits))
        return false;
    st.hasCachedNormal = rng.getBool("hasCachedNormal", false);
    rng_.restoreState(st);
    return true;
}

RegularSource::RegularSource(std::vector<InputSpike> targets,
                             uint64_t period, uint64_t phase)
    : targets_(std::move(targets)), period_(period), phase_(phase)
{
    NSCS_ASSERT(period_ > 0, "RegularSource period must be > 0");
}

void
RegularSource::spikesFor(uint64_t t, std::vector<InputSpike> &out)
{
    if (t < phase_ || (t - phase_) % period_ != 0)
        return;
    out.insert(out.end(), targets_.begin(), targets_.end());
}

void
ScheduleSource::add(uint64_t tick, InputSpike spike)
{
    schedule_[tick].push_back(spike);
    ++count_;
}

void
ScheduleSource::spikesFor(uint64_t t, std::vector<InputSpike> &out)
{
    auto it = schedule_.find(t);
    if (it == schedule_.end())
        return;
    out.insert(out.end(), it->second.begin(), it->second.end());
}

} // namespace nscs
