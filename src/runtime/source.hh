/**
 * @file
 * Input spike sources.
 *
 * A source produces the external spikes to inject at each tick.  The
 * Simulator polls every attached source once per tick, before the
 * chip executes that tick, and injects the produced spikes for
 * same-tick delivery.
 *
 * All stochastic sources use a private seeded host RNG; reruns with
 * the same seed produce the same input streams.
 */

#ifndef NSCS_RUNTIME_SOURCE_HH
#define NSCS_RUNTIME_SOURCE_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "util/json.hh"
#include "util/rng.hh"

namespace nscs {

/** One external spike: a (core, axon) target. */
struct InputSpike
{
    uint32_t core = 0;  //!< target core index (row-major)
    uint32_t axon = 0;  //!< target axon

    bool operator==(const InputSpike &other) const = default;
};

/** Produces input spikes per tick. */
class SpikeSource
{
  public:
    virtual ~SpikeSource() = default;

    /** Append this source's spikes for tick @p t to @p out. */
    virtual void spikesFor(uint64_t t, std::vector<InputSpike> &out) = 0;

    /**
     * Serialize the source's mutable state (snapshot).  Sources whose
     * output is a pure function of the tick have none; the default
     * marks the source stateless.
     */
    virtual void
    saveState(JsonValue &out) const
    {
        out = JsonValue::object();
        out.set("kind", JsonValue::string("stateless"));
    }

    /** Restore saveState() output; @return false on mismatch. */
    virtual bool restoreState(const JsonValue &in)
    {
        return in.type() == JsonValue::Type::Object;
    }
};

/**
 * Independent Bernoulli spiking per target per tick: target i fires
 * with probability rate[i] (spikes/tick, <= 1).
 */
class PoissonSource : public SpikeSource
{
  public:
    /** Same rate for all targets. */
    PoissonSource(std::vector<InputSpike> targets, double rate,
                  uint64_t seed);

    /** Per-target rates; sizes must match. */
    PoissonSource(std::vector<InputSpike> targets,
                  std::vector<double> rates, uint64_t seed);

    void spikesFor(uint64_t t, std::vector<InputSpike> &out) override;

    void saveState(JsonValue &out) const override;
    bool restoreState(const JsonValue &in) override;

  private:
    std::vector<InputSpike> targets_;
    std::vector<double> rates_;
    Xoshiro256 rng_;
};

/** Fires every target every @p period ticks starting at @p phase. */
class RegularSource : public SpikeSource
{
  public:
    RegularSource(std::vector<InputSpike> targets, uint64_t period,
                  uint64_t phase = 0);

    void spikesFor(uint64_t t, std::vector<InputSpike> &out) override;

  private:
    std::vector<InputSpike> targets_;
    uint64_t period_;
    uint64_t phase_;
};

/** Replays an explicit (tick -> spikes) schedule. */
class ScheduleSource : public SpikeSource
{
  public:
    ScheduleSource() = default;

    /** Add one spike at @p tick. */
    void add(uint64_t tick, InputSpike spike);

    void spikesFor(uint64_t t, std::vector<InputSpike> &out) override;

    /** Total scheduled spikes. */
    size_t size() const { return count_; }

  private:
    std::map<uint64_t, std::vector<InputSpike>> schedule_;
    size_t count_ = 0;
};

} // namespace nscs

#endif // NSCS_RUNTIME_SOURCE_HH
