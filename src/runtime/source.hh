/**
 * @file
 * Input spike sources.
 *
 * A source produces the external spikes to inject at each tick.  The
 * Simulator polls every attached source once per tick, before the
 * chip executes that tick, and injects the produced spikes for
 * same-tick delivery.
 *
 * All stochastic sources use a private seeded host RNG; reruns with
 * the same seed produce the same input streams.
 */

#ifndef NSCS_RUNTIME_SOURCE_HH
#define NSCS_RUNTIME_SOURCE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/json.hh"
#include "util/rng.hh"

namespace nscs {

/** One external spike: a (core, axon) target. */
struct InputSpike
{
    uint32_t core = 0;      //!< target core index (row-major)
    uint32_t axon = 0;      //!< target axon
    uint32_t instance = 0;  //!< target instance lane (batched runs)

    bool operator==(const InputSpike &other) const = default;
};

/** Produces input spikes per tick. */
class SpikeSource
{
  public:
    virtual ~SpikeSource() = default;

    /** Append this source's spikes for tick @p t to @p out. */
    virtual void spikesFor(uint64_t t, std::vector<InputSpike> &out) = 0;

    /**
     * Serialize the source's mutable state (snapshot).  Sources whose
     * output is a pure function of the tick have none; the default
     * marks the source stateless.
     */
    virtual void
    saveState(JsonValue &out) const
    {
        out = JsonValue::object();
        out.set("kind", JsonValue::string("stateless"));
    }

    /** Restore saveState() output; @return false on mismatch. */
    virtual bool restoreState(const JsonValue &in)
    {
        return in.type() == JsonValue::Type::Object;
    }
};

/**
 * Independent Bernoulli spiking per target per tick: target i fires
 * with probability rate[i] (spikes/tick, <= 1).
 */
class PoissonSource : public SpikeSource
{
  public:
    /** Same rate for all targets. */
    PoissonSource(std::vector<InputSpike> targets, double rate,
                  uint64_t seed);

    /** Per-target rates; sizes must match. */
    PoissonSource(std::vector<InputSpike> targets,
                  std::vector<double> rates, uint64_t seed);

    void spikesFor(uint64_t t, std::vector<InputSpike> &out) override;

    void saveState(JsonValue &out) const override;
    bool restoreState(const JsonValue &in) override;

  private:
    std::vector<InputSpike> targets_;
    std::vector<double> rates_;
    Xoshiro256 rng_;
};

/** Fires every target every @p period ticks starting at @p phase. */
class RegularSource : public SpikeSource
{
  public:
    RegularSource(std::vector<InputSpike> targets, uint64_t period,
                  uint64_t phase = 0);

    void spikesFor(uint64_t t, std::vector<InputSpike> &out) override;

  private:
    std::vector<InputSpike> targets_;
    uint64_t period_;
    uint64_t phase_;
};

/**
 * Replays an explicit (tick -> spikes) schedule.
 *
 * Entries live in one flat vector kept in tick order, so add() is
 * O(1) — the classifier front-end schedules thousands of
 * rate-coded spikes per request, and a per-spike map insert
 * dominated its serving cost.  Out-of-order adds dirty only the
 * vector's tail: the sorted-prefix boundary drops to the first
 * entry beyond the stray tick, and the next query stable-sorts
 * just the tail (each classifier request touches its own window,
 * so the tail is that request's spikes, not the whole history).
 * The stable sort preserves per-tick insertion order, so emitted
 * spike order (and with it the deterministic trace) is unchanged.
 * Delivered entries are retained: checkpoint rollback replays
 * earlier ticks and must see the same schedule again.
 */
class ScheduleSource : public SpikeSource
{
  public:
    ScheduleSource() = default;

    /** Add one spike at @p tick. */
    void add(uint64_t tick, InputSpike spike);

    void spikesFor(uint64_t t, std::vector<InputSpike> &out) override;

    /**
     * Drop every entry scheduled before @p tick.  A persistent
     * server (the classifier front-end) calls this at the start of
     * each pass with the pass's first tick: everything older has
     * been delivered and can never be queried again, so retaining
     * it only grows the schedule without bound.  Do not call when
     * checkpoint rollback may replay ticks before @p tick.
     */
    void discardBefore(uint64_t tick);

    /** Total scheduled spikes. */
    size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        uint64_t tick;
        InputSpike spike;
    };

    /** Restore global tick order by sorting the dirty tail. */
    void sortTail();

    std::vector<Entry> entries_;
    /**
     * entries_[0, prefix_) is sorted by tick and every entry at or
     * past prefix_ has a tick >= entries_[prefix_ - 1].tick, so
     * sorting the tail alone restores global order.
     */
    size_t prefix_ = 0;
    /** Counting-sort scratch (sortTail), reused across passes so a
     *  per-pass sort never reallocates. */
    std::vector<Entry> scatterScratch_;
    std::vector<uint32_t> countScratch_;
};

} // namespace nscs

#endif // NSCS_RUNTIME_SOURCE_HH
