#include "runtime/trace.hh"

#include <sstream>

#include "util/json.hh"

namespace nscs {

std::string
formatSpikeTrace(const std::vector<OutputSpike> &spikes)
{
    std::ostringstream os;
    os << "# nscs spike trace: tick line [instance]\n";
    for (const auto &s : spikes) {
        os << s.tick << ' ' << s.line;
        if (s.instance != 0)
            os << ' ' << s.instance;
        os << '\n';
    }
    return os.str();
}

bool
parseSpikeTrace(const std::string &text, std::vector<OutputSpike> &out)
{
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        size_t pos = line.find_first_not_of(" \t");
        if (pos == std::string::npos || line[pos] == '#')
            continue;
        std::istringstream ls(line);
        OutputSpike s;
        if (!(ls >> s.tick >> s.line))
            return false;
        // Optional third column: instance lane (batched runs).
        if (!(ls >> s.instance))
            s.instance = 0;
        out.push_back(s);
    }
    return true;
}

bool
writeSpikeTrace(const std::string &path,
                const std::vector<OutputSpike> &spikes)
{
    return writeFile(path, formatSpikeTrace(spikes));
}

bool
readSpikeTrace(const std::string &path, std::vector<OutputSpike> &out)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    return parseSpikeTrace(text, out);
}

std::string
renderRaster(const std::vector<OutputSpike> &spikes, uint32_t line0,
             uint32_t nlines, uint64_t t0, uint64_t t1)
{
    size_t width = static_cast<size_t>(t1 - t0);
    std::vector<std::string> rows(nlines, std::string(width, '.'));
    for (const auto &s : spikes) {
        if (s.line < line0 || s.line >= line0 + nlines)
            continue;
        if (s.tick < t0 || s.tick >= t1)
            continue;
        rows[s.line - line0][static_cast<size_t>(s.tick - t0)] = '|';
    }
    std::ostringstream os;
    for (uint32_t i = 0; i < nlines; ++i)
        os << "line " << (line0 + i) << "  " << rows[i] << '\n';
    return os.str();
}

std::string
renderSpikeRow(const std::vector<uint32_t> &ticks, uint32_t t0,
               uint32_t t1)
{
    std::string row(t1 - t0, '.');
    for (uint32_t t : ticks)
        if (t >= t0 && t < t1)
            row[t - t0] = '|';
    return row;
}

} // namespace nscs
