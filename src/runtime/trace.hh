/**
 * @file
 * Spike trace file I/O and ASCII raster rendering.
 *
 * Trace format: one "tick line" pair per text line, '#' comments
 * allowed.  Rasters render lines as rows and ticks as columns, '|'
 * marking a spike — the library's stand-in for the paper's raster
 * figures.
 */

#ifndef NSCS_RUNTIME_TRACE_HH
#define NSCS_RUNTIME_TRACE_HH

#include <string>
#include <vector>

#include "chip/chip.hh"

namespace nscs {

/** Serialize a spike list to the text trace format. */
std::string formatSpikeTrace(const std::vector<OutputSpike> &spikes);

/**
 * Parse a text trace.  @return false on malformed input (parsing
 * user files is a recoverable condition).
 */
bool parseSpikeTrace(const std::string &text,
                     std::vector<OutputSpike> &out);

/** Write a trace file; false on I/O error. */
bool writeSpikeTrace(const std::string &path,
                     const std::vector<OutputSpike> &spikes);

/** Read a trace file; false on I/O or parse error. */
bool readSpikeTrace(const std::string &path,
                    std::vector<OutputSpike> &out);

/**
 * Render lines [line0, line0+nlines) over ticks [t0, t1) as an ASCII
 * raster, one row per line: '|' spike, '.' silence.
 */
std::string renderRaster(const std::vector<OutputSpike> &spikes,
                         uint32_t line0, uint32_t nlines,
                         uint64_t t0, uint64_t t1);

/**
 * Render a single spike train (ticks of one unit) as one raster row.
 */
std::string renderSpikeRow(const std::vector<uint32_t> &ticks,
                           uint32_t t0, uint32_t t1);

} // namespace nscs

#endif // NSCS_RUNTIME_TRACE_HH
