#include "util/bitvec.hh"

#include "util/logging.hh"
#include "util/simd.hh"

namespace nscs {

BitVec::BitVec(size_t nbits)
    : nbits_(nbits), words_((nbits + 63) / 64, 0)
{
}

void
BitVec::set(size_t idx, bool value)
{
    NSCS_ASSERT(idx < nbits_, "BitVec::set(%zu) out of range %zu",
                idx, nbits_);
    uint64_t mask = 1ull << (idx & 63);
    if (value)
        words_[idx >> 6] |= mask;
    else
        words_[idx >> 6] &= ~mask;
}

bool
BitVec::test(size_t idx) const
{
    NSCS_ASSERT(idx < nbits_, "BitVec::test(%zu) out of range %zu",
                idx, nbits_);
    return (words_[idx >> 6] >> (idx & 63)) & 1ull;
}

void
BitVec::reset()
{
    for (auto &w : words_)
        w = 0;
}

size_t
BitVec::count() const
{
    size_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
}

bool
BitVec::none() const
{
    for (uint64_t w : words_)
        if (w)
            return false;
    return true;
}

BitVec &
BitVec::operator|=(const BitVec &other)
{
    NSCS_ASSERT(nbits_ == other.nbits_, "BitVec size mismatch %zu vs %zu",
                nbits_, other.nbits_);
    simd::ops().orAccumulate(words_.data(), other.words_.data(),
                             words_.size());
    return *this;
}

BitVec &
BitVec::operator&=(const BitVec &other)
{
    NSCS_ASSERT(nbits_ == other.nbits_, "BitVec size mismatch %zu vs %zu",
                nbits_, other.nbits_);
    simd::ops().andWords(words_.data(), other.words_.data(),
                         words_.size());
    return *this;
}

void
BitVec::setWord(size_t word_index, uint64_t bits)
{
    NSCS_ASSERT(word_index < words_.size(),
                "BitVec::setWord(%zu) out of range %zu", word_index,
                words_.size());
    uint64_t mask = ~0ull;
    if ((word_index + 1) * 64 > nbits_) {
        size_t tail = nbits_ - word_index * 64;
        mask = tail ? (~0ull >> (64 - tail)) : 0ull;
    }
    words_[word_index] = bits & mask;
}

namespace {

const char kHexDigits[] = "0123456789abcdef";

/** @return the value of hex digit @p c, or -1 if not a hex digit. */
int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::string
BitVec::toHex() const
{
    std::string out;
    out.reserve(words_.size() * 16);
    for (uint64_t w : words_)
        for (int shift = 60; shift >= 0; shift -= 4)
            out.push_back(kHexDigits[(w >> shift) & 0xF]);
    return out;
}

bool
BitVec::fromHex(const std::string &hex)
{
    if (hex.size() != words_.size() * 16)
        return false;
    std::vector<uint64_t> decoded(words_.size(), 0);
    for (size_t w = 0; w < decoded.size(); ++w) {
        uint64_t value = 0;
        for (size_t d = 0; d < 16; ++d) {
            int v = hexValue(hex[w * 16 + d]);
            if (v < 0)
                return false;
            value = (value << 4) | static_cast<uint64_t>(v);
        }
        decoded[w] = value;
    }
    if (!decoded.empty() && (nbits_ & 63) != 0) {
        uint64_t mask = ~0ull >> (64 - (nbits_ & 63));
        if (decoded.back() & ~mask)
            return false;
    }
    words_ = std::move(decoded);
    return true;
}

void
BitVec::assertSameSize(const BitVec &other) const
{
    NSCS_ASSERT(nbits_ == other.nbits_, "BitVec size mismatch %zu vs %zu",
                nbits_, other.nbits_);
}

bool
BitVec::orAccumulate(const BitVec &other)
{
    assertSameSize(other);
    return simd::ops().orAccumulate(words_.data(),
                                    other.words_.data(),
                                    words_.size());
}

size_t
BitVec::andPopcount(const BitVec &other) const
{
    assertSameSize(other);
    return static_cast<size_t>(simd::ops().andPopcount(
        words_.data(), other.words_.data(), words_.size()));
}

bool
BitVec::intersects(const BitVec &other) const
{
    assertSameSize(other);
    for (size_t i = 0; i < words_.size(); ++i)
        if (words_[i] & other.words_[i])
            return true;
    return false;
}

} // namespace nscs
