#include "util/bitvec.hh"

#include "util/logging.hh"

namespace nscs {

BitVec::BitVec(size_t nbits)
    : nbits_(nbits), words_((nbits + 63) / 64, 0)
{
}

void
BitVec::set(size_t idx, bool value)
{
    NSCS_ASSERT(idx < nbits_, "BitVec::set(%zu) out of range %zu",
                idx, nbits_);
    uint64_t mask = 1ull << (idx & 63);
    if (value)
        words_[idx >> 6] |= mask;
    else
        words_[idx >> 6] &= ~mask;
}

bool
BitVec::test(size_t idx) const
{
    NSCS_ASSERT(idx < nbits_, "BitVec::test(%zu) out of range %zu",
                idx, nbits_);
    return (words_[idx >> 6] >> (idx & 63)) & 1ull;
}

void
BitVec::reset()
{
    for (auto &w : words_)
        w = 0;
}

size_t
BitVec::count() const
{
    size_t n = 0;
    for (uint64_t w : words_)
        n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
}

bool
BitVec::none() const
{
    for (uint64_t w : words_)
        if (w)
            return false;
    return true;
}

BitVec &
BitVec::operator|=(const BitVec &other)
{
    NSCS_ASSERT(nbits_ == other.nbits_, "BitVec size mismatch %zu vs %zu",
                nbits_, other.nbits_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

BitVec &
BitVec::operator&=(const BitVec &other)
{
    NSCS_ASSERT(nbits_ == other.nbits_, "BitVec size mismatch %zu vs %zu",
                nbits_, other.nbits_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

void
BitVec::assertSameSize(const BitVec &other) const
{
    NSCS_ASSERT(nbits_ == other.nbits_, "BitVec size mismatch %zu vs %zu",
                nbits_, other.nbits_);
}

bool
BitVec::orAccumulate(const BitVec &other)
{
    assertSameSize(other);
    uint64_t changed = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
        uint64_t fresh = other.words_[i] & ~words_[i];
        words_[i] |= fresh;
        changed |= fresh;
    }
    return changed != 0;
}

size_t
BitVec::andPopcount(const BitVec &other) const
{
    assertSameSize(other);
    size_t n = 0;
    for (size_t i = 0; i < words_.size(); ++i)
        n += static_cast<size_t>(
            __builtin_popcountll(words_[i] & other.words_[i]));
    return n;
}

bool
BitVec::intersects(const BitVec &other) const
{
    assertSameSize(other);
    for (size_t i = 0; i < words_.size(); ++i)
        if (words_[i] & other.words_[i])
            return true;
    return false;
}

} // namespace nscs
