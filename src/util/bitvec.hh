/**
 * @file
 * A compact dynamic bit vector used for crossbar rows and scheduler
 * slots, with fast iteration over set bits.
 *
 * std::vector<bool> lacks word access and std::bitset is fixed-size;
 * crossbar geometry is a runtime parameter, so NSCS carries its own
 * minimal implementation.
 */

#ifndef NSCS_UTIL_BITVEC_HH
#define NSCS_UTIL_BITVEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nscs {

/**
 * Fixed-length (at construction) vector of bits backed by 64-bit
 * words.  All index arguments are asserted in range in debug terms via
 * bounds checks kept cheap enough for release builds.
 */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct @p nbits bits, all clear. */
    explicit BitVec(size_t nbits);

    /** Number of bits. */
    size_t size() const { return nbits_; }

    /** Set bit @p idx to @p value. */
    void set(size_t idx, bool value = true);

    /** Clear bit @p idx. */
    void clear(size_t idx) { set(idx, false); }

    /** Clear all bits. */
    void reset();

    /** @return the value of bit @p idx. */
    bool test(size_t idx) const;

    /** @return number of set bits. */
    size_t count() const;

    /** @return true if no bit is set. */
    bool none() const;

    /** @return true if any bit is set. */
    bool any() const { return !none(); }

    /** Bitwise OR-assign; sizes must match. */
    BitVec &operator|=(const BitVec &other);

    /** Bitwise AND-assign; sizes must match. */
    BitVec &operator&=(const BitVec &other);

    /**
     * Word-wise OR-accumulate of @p other into this vector (sizes
     * must match).  @return true if any bit changed.
     */
    bool orAccumulate(const BitVec &other);

    /**
     * OR @p bits into backing word @p word_index.  The caller must
     * not set bits beyond size() (i.e. @p bits must come from a
     * same-width vector's word at the same index).
     */
    void
    orWordAt(size_t word_index, uint64_t bits)
    {
        words_[word_index] |= bits;
    }

    /** Popcount of (*this & other) without materializing the AND;
     *  sizes must match. */
    size_t andPopcount(const BitVec &other) const;

    /** True if (*this & other) has any set bit; sizes must match. */
    bool intersects(const BitVec &other) const;

    /** Equality compares size and content. */
    bool operator==(const BitVec &other) const = default;

    /**
     * Call @p fn(size_t index) for every set bit in increasing index
     * order.  This is the hot path of synaptic integration: it scans
     * words and extracts set bits with countr_zero.
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t bits = words_[w];
            while (bits) {
                unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
                fn(w * 64 + b);
                bits &= bits - 1;
            }
        }
    }

    /**
     * Call @p fn(size_t word_index, uint64_t word) for every nonzero
     * backing word, in increasing word order.  The word-parallel
     * integrate path folds whole 64-neuron strips through this.
     */
    template <typename Fn>
    void
    forEachSetWord(Fn &&fn) const
    {
        for (size_t w = 0; w < words_.size(); ++w)
            if (words_[w])
                fn(w, words_[w]);
    }

    /**
     * Masked variant of forEachSet: visit set bits of
     * (*this & mask) in increasing index order without materializing
     * the intersection.  Sizes must match.
     */
    template <typename Fn>
    void
    forEachSetMasked(const BitVec &mask, Fn &&fn) const
    {
        assertSameSize(mask);
        const std::vector<uint64_t> &mw = mask.words_;
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t bits = words_[w] & mw[w];
            while (bits) {
                unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
                fn(w * 64 + b);
                bits &= bits - 1;
            }
        }
    }

    /** Direct word access (serialization). */
    const std::vector<uint64_t> &words() const { return words_; }

    /**
     * Overwrite backing word @p word_index with @p bits.  Bits beyond
     * size() are masked off, so the count()/none() invariants hold
     * for any input.  Snapshot restore and fault injection only — not
     * a hot path.
     */
    void setWord(size_t word_index, uint64_t bits);

    /**
     * Hex encoding of the backing words (16 lowercase digits per
     * word, word 0 first) for snapshot serialization.
     */
    std::string toHex() const;

    /**
     * Decode a toHex() string into this vector.  The length must
     * match this vector's word count exactly and no bit beyond
     * size() may be set; @return false on any violation (the vector
     * is unchanged on failure).
     */
    bool fromHex(const std::string &hex);

    /** Approximate heap footprint in bytes. */
    size_t footprintBytes() const { return words_.size() * 8; }

  private:
    /** Panics unless @p other has the same bit length (out-of-line
     *  so the header needs no logging include). */
    void assertSameSize(const BitVec &other) const;

    size_t nbits_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace nscs

#endif // NSCS_UTIL_BITVEC_HH
