#include "util/csv.hh"

namespace nscs {

std::string
CsvWriter::escape(const std::string &field)
{
    bool needs = false;
    for (char c : field) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs = true;
            break;
        }
    }
    if (!needs)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void
CsvWriter::row(const std::vector<std::string> &fields)
{
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(fields[i]);
    }
    os_ << '\n';
}

} // namespace nscs
