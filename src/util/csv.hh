/**
 * @file
 * Minimal CSV emitter so benches can dump machine-readable series
 * next to the human-readable tables.
 */

#ifndef NSCS_UTIL_CSV_HH
#define NSCS_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace nscs {

/**
 * Streams rows of comma-separated values with RFC-4180-style quoting
 * of fields containing commas, quotes or newlines.
 */
class CsvWriter
{
  public:
    /** Write to @p os; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Emit one row. */
    void row(const std::vector<std::string> &fields);

    /** Quote a single field if needed. */
    static std::string escape(const std::string &field);

  private:
    std::ostream &os_;
};

} // namespace nscs

#endif // NSCS_UTIL_CSV_HH
