#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace nscs {

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::integer(int64_t i)
{
    JsonValue v;
    v.type_ = Type::Int;
    v.int_ = i;
    v.dbl_ = static_cast<double>(i);
    return v;
}

JsonValue
JsonValue::number(double d)
{
    JsonValue v;
    v.type_ = Type::Double;
    v.dbl_ = d;
    return v;
}

JsonValue
JsonValue::string(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.type_ = Type::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.type_ = Type::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    NSCS_ASSERT(type_ == Type::Bool, "JSON node is not a bool");
    return bool_;
}

int64_t
JsonValue::asInt() const
{
    if (type_ == Type::Int)
        return int_;
    NSCS_ASSERT(type_ == Type::Double && dbl_ == std::floor(dbl_),
                "JSON node is not an integral number");
    return static_cast<int64_t>(dbl_);
}

double
JsonValue::asDouble() const
{
    NSCS_ASSERT(isNumber(), "JSON node is not numeric");
    return type_ == Type::Int ? static_cast<double>(int_) : dbl_;
}

const std::string &
JsonValue::asString() const
{
    NSCS_ASSERT(type_ == Type::String, "JSON node is not a string");
    return str_;
}

size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

void
JsonValue::append(JsonValue v)
{
    NSCS_ASSERT(type_ == Type::Array, "append on non-array JSON node");
    arr_.push_back(std::move(v));
}

const JsonValue &
JsonValue::at(size_t i) const
{
    NSCS_ASSERT(type_ == Type::Array && i < arr_.size(),
                "JSON array index %zu out of range", i);
    return arr_[i];
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    NSCS_ASSERT(type_ == Type::Object, "set on non-object JSON node");
    obj_[key] = std::move(v);
}

bool
JsonValue::has(const std::string &key) const
{
    return type_ == Type::Object && obj_.count(key) > 0;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    NSCS_ASSERT(type_ == Type::Object, "at(key) on non-object JSON node");
    auto it = obj_.find(key);
    NSCS_ASSERT(it != obj_.end(), "JSON object missing key '%s'",
                key.c_str());
    return it->second;
}

int64_t
JsonValue::getInt(const std::string &key, int64_t dflt) const
{
    return has(key) ? at(key).asInt() : dflt;
}

double
JsonValue::getDouble(const std::string &key, double dflt) const
{
    return has(key) ? at(key).asDouble() : dflt;
}

bool
JsonValue::getBool(const std::string &key, bool dflt) const
{
    return has(key) ? at(key).asBool() : dflt;
}

std::string
JsonValue::getString(const std::string &key, const std::string &dflt) const
{
    return has(key) ? at(key).asString() : dflt;
}

std::vector<std::string>
JsonValue::keys() const
{
    std::vector<std::string> out;
    if (type_ == Type::Object)
        for (const auto &kv : obj_)
            out.push_back(kv.first);
    return out;
}

namespace {

void
escapeInto(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
indentInto(std::string &out, int indent, int depth)
{
    if (indent > 0) {
        out.push_back('\n');
        out.append(static_cast<size_t>(indent) * depth, ' ');
    }
}

} // anonymous namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(int_);
        break;
      case Type::Double: {
        if (std::isfinite(dbl_)) {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
            out += buf;
        } else {
            out += "null";  // JSON has no inf/nan
        }
        break;
      }
      case Type::String:
        escapeInto(out, str_);
        break;
      case Type::Array: {
        out.push_back('[');
        bool first = true;
        for (const auto &v : arr_) {
            if (!first)
                out.push_back(',');
            first = false;
            indentInto(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            indentInto(out, indent, depth);
        out.push_back(']');
        break;
      }
      case Type::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto &kv : obj_) {
            if (!first)
                out.push_back(',');
            first = false;
            indentInto(out, indent, depth + 1);
            escapeInto(out, kv.first);
            out += indent > 0 ? ": " : ":";
            kv.second.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            indentInto(out, indent, depth);
        out.push_back('}');
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    JsonParseResult
    run()
    {
        JsonParseResult res;
        skipWs();
        if (!parseValue(res.value)) {
            res.ok = false;
            res.error = error_;
            return res;
        }
        skipWs();
        if (pos_ != text_.size()) {
            res.ok = false;
            res.error = errAt("trailing content");
            return res;
        }
        res.ok = true;
        return res;
    }

  private:
    std::string
    errAt(const std::string &msg)
    {
        return msg + " at offset " + std::to_string(pos_);
    }

    bool
    fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = errAt(msg);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return fail(std::string("expected '") + word + "'");
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': return parseString(out);
          case 't':
            if (!literal("true"))
                return false;
            out = JsonValue::boolean(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = JsonValue::boolean(false);
            return true;
          case 'n':
            if (!literal("null"))
                return false;
            out = JsonValue();
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(JsonValue &out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = JsonValue::string(std::move(s));
        return true;
    }

    bool
    parseRawString(std::string &s)
    {
        if (text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                s.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("bad escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':  s.push_back('"'); break;
              case '\\': s.push_back('\\'); break;
              case '/':  s.push_back('/'); break;
              case 'b':  s.push_back('\b'); break;
              case 'f':  s.push_back('\f'); break;
              case 'n':  s.push_back('\n'); break;
              case 'r':  s.push_back('\r'); break;
              case 't':  s.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u digit");
                }
                if (code < 0x80) {
                    s.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    s.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    s.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    s.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool isInt = true;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            isInt = false;
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            isInt = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
            return fail("expected number");
        std::string tok = text_.substr(start, pos_ - start);
        if (isInt) {
            errno = 0;
            long long v = std::strtoll(tok.c_str(), nullptr, 10);
            if (errno == 0) {
                out = JsonValue::integer(v);
                return true;
            }
            // fall through to double on overflow
        }
        out = JsonValue::number(std::strtod(tok.c_str(), nullptr));
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        ++pos_;  // '['
        out = JsonValue::array();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue elem;
            skipWs();
            if (!parseValue(elem))
                return false;
            out.append(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        ++pos_;  // '{'
        out = JsonValue::object();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseRawString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue val;
            if (!parseValue(val))
                return false;
            out.set(key, std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

} // anonymous namespace

JsonParseResult
parseJson(const std::string &text)
{
    return Parser(text).run();
}

std::string
u64ToHex(uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

bool
u64FromHex(const std::string &s, uint64_t &out)
{
    if (s.size() != 16)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            d = c - 'A' + 10;
        else
            return false;
        v = (v << 4) | static_cast<uint64_t>(d);
    }
    out = v;
    return true;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream of(path, std::ios::binary | std::ios::trunc);
    if (!of)
        return false;
    of << content;
    return static_cast<bool>(of);
}

} // namespace nscs
