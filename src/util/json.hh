/**
 * @file
 * Minimal self-contained JSON value, parser and writer.
 *
 * Used for model-file serialization (compiled networks, core
 * configurations, experiment manifests).  Supports the full JSON
 * grammar except for \u escapes beyond the Basic Latin range, which
 * model files never contain.  Parsing errors are reported with byte
 * offsets through a status object rather than exceptions.
 */

#ifndef NSCS_UTIL_JSON_HH
#define NSCS_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nscs {

/**
 * A JSON document node.  Numbers are stored as double plus an exact
 * int64 when the literal was integral, so round-tripping configuration
 * integers is lossless up to 2^53 (and up to int64 via asInt).
 */
class JsonValue
{
  public:
    /** JSON node kind. */
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    JsonValue() : type_(Type::Null) {}

    /** Boolean literal. */
    static JsonValue boolean(bool b);

    /** Integer number. */
    static JsonValue integer(int64_t v);

    /** Floating number. */
    static JsonValue number(double v);

    /** String literal. */
    static JsonValue string(std::string s);

    /** Empty array. */
    static JsonValue array();

    /** Empty object. */
    static JsonValue object();

    /** Node kind. */
    Type type() const { return type_; }

    /** @return true for Null nodes. */
    bool isNull() const { return type_ == Type::Null; }

    /** @return true for Int or Double nodes. */
    bool
    isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Double;
    }

    /** Boolean content; node must be Bool. */
    bool asBool() const;

    /** Integer content; node must be numeric and integral. */
    int64_t asInt() const;

    /** Numeric content as double; node must be numeric. */
    double asDouble() const;

    /** String content; node must be String. */
    const std::string &asString() const;

    // --- array interface -------------------------------------------------

    /** Number of elements / members. */
    size_t size() const;

    /** Append to an Array node. */
    void append(JsonValue v);

    /** Element access; node must be Array and index in range. */
    const JsonValue &at(size_t i) const;

    // --- object interface ------------------------------------------------

    /** Set object member @p key. */
    void set(const std::string &key, JsonValue v);

    /** @return true if the Object node has member @p key. */
    bool has(const std::string &key) const;

    /** Member access; node must be Object and key present. */
    const JsonValue &at(const std::string &key) const;

    /** Member access with default when the key is absent. */
    int64_t getInt(const std::string &key, int64_t dflt) const;

    /** Member access with default when the key is absent. */
    double getDouble(const std::string &key, double dflt) const;

    /** Member access with default when the key is absent. */
    bool getBool(const std::string &key, bool dflt) const;

    /** Member access with default when the key is absent. */
    std::string getString(const std::string &key,
                          const std::string &dflt) const;

    /** Object keys in sorted order. */
    std::vector<std::string> keys() const;

    // --- serialization ---------------------------------------------------

    /** Serialize; @p indent > 0 pretty-prints with that indent. */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/** Result of JsonValue parsing. */
struct JsonParseResult
{
    bool ok = false;        //!< true when parsing succeeded
    std::string error;      //!< human-readable error with offset
    JsonValue value;        //!< parsed document when ok
};

/** Parse a complete JSON document from @p text. */
JsonParseResult parseJson(const std::string &text);

/**
 * Fixed-width (16 digit) lowercase hex encoding of @p v.  JSON
 * integers only carry int64 losslessly, so full-range uint64 values
 * (bit masks, xoshiro words) travel as hex strings in snapshots.
 */
std::string u64ToHex(uint64_t v);

/** Decode u64ToHex output; @return false on malformed input. */
bool u64FromHex(const std::string &s, uint64_t &out);

/** Read a whole file; returns false on I/O failure. */
bool readFile(const std::string &path, std::string &out);

/** Write a whole file; returns false on I/O failure. */
bool writeFile(const std::string &path, const std::string &content);

} // namespace nscs

#endif // NSCS_UTIL_JSON_HH
