#include "util/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace nscs {

namespace {

// Atomic: warn()/inform() are legal from pool worker threads while a
// test toggles setQuiet() on the main thread.
std::atomic<bool> quietFlag{false};

void
report(const char *prefix, const char *fmt, std::va_list ap)
{
    std::string msg = vstrprintf(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // anonymous namespace

std::string
vstrprintf(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    report("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    report("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    report("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    report("info", fmt, ap);
    va_end(ap);
}

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

} // namespace nscs
