/**
 * @file
 * Status/error reporting for the simulator, in the gem5 tradition.
 *
 * Two terminating reporters with distinct meanings:
 *
 *  - panic():  something happened that should never happen regardless
 *              of user input — a simulator bug.  Calls std::abort so a
 *              core dump / debugger break is possible.
 *  - fatal():  the simulation cannot continue because of a *user*
 *              error (bad configuration, invalid model file...).
 *              Exits with status 1.
 *
 * Two non-terminating reporters:
 *
 *  - warn():   functionality is questionable but the run continues.
 *  - inform(): purely informational status for the user.
 *
 * All take printf-style format strings.  NSCS_ASSERT(cond, ...) is a
 * panic-on-failure assertion that stays enabled in release builds; it
 * guards simulator invariants, not user input.
 */

#ifndef NSCS_UTIL_LOGGING_HH
#define NSCS_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace nscs {

/** Terminate with a simulator-bug diagnostic (calls std::abort). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Terminate with a user-error diagnostic (calls std::exit(1)). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress / restore warn() and inform() output (used by tests). */
void setQuiet(bool quiet);

/** @return true while warn()/inform() output is suppressed. */
bool quiet();

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list ap);

} // namespace nscs

/**
 * Invariant assertion that survives release builds.  On failure it
 * panics with file/line plus the formatted message.
 */
#define NSCS_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::nscs::panic("assertion '%s' failed at %s:%d: %s",         \
                          #cond, __FILE__, __LINE__,                    \
                          ::nscs::strprintf(__VA_ARGS__).c_str());      \
        }                                                               \
    } while (0)

#endif // NSCS_UTIL_LOGGING_HH
