#include "util/rng.hh"

#include <bit>
#include <cmath>

#include "util/logging.hh"

namespace nscs {

namespace {

/** SplitMix64 step used for state expansion. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

void
Xoshiro256::reset(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &w : s_)
        w = splitmix64(sm);
    // An all-zero state is invalid for xoshiro; splitmix64 cannot
    // produce four zero outputs in a row, but be defensive anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9E3779B97F4A7C15ull;
    hasCachedNormal_ = false;
}

uint64_t
Xoshiro256::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Xoshiro256::below(uint64_t n)
{
    NSCS_ASSERT(n > 0, "below(0) is undefined");
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Xoshiro256::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double m = std::sqrt(-2.0 * std::log(s) / s);
    cachedNormal_ = v * m;
    hasCachedNormal_ = true;
    return u * m;
}

Xoshiro256::State
Xoshiro256::saveState() const
{
    State st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = s_[i];
    st.cachedNormalBits = std::bit_cast<uint64_t>(cachedNormal_);
    st.hasCachedNormal = hasCachedNormal_;
    return st;
}

void
Xoshiro256::restoreState(const State &st)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = st.s[i];
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9E3779B97F4A7C15ull;
    cachedNormal_ = std::bit_cast<double>(st.cachedNormalBits);
    hasCachedNormal_ = st.hasCachedNormal;
}

uint64_t
Xoshiro256::poisson(double lambda)
{
    NSCS_ASSERT(lambda >= 0.0, "poisson(lambda<0)");
    if (lambda == 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth's product-of-uniforms method.
        double limit = std::exp(-lambda);
        uint64_t k = 0;
        double p = uniform();
        while (p > limit) {
            ++k;
            p *= uniform();
        }
        return k;
    }
    // Normal approximation with continuity correction; adequate for
    // workload synthesis at high rates.
    double draw = normal(lambda, std::sqrt(lambda));
    if (draw < 0.0)
        return 0;
    return static_cast<uint64_t>(draw + 0.5);
}

} // namespace nscs
