/**
 * @file
 * Random number generation for NSCS.
 *
 * Two distinct generators with distinct roles:
 *
 *  - Lfsr16:     models the per-core hardware pseudo-random number
 *                generator.  TrueNorth-class cores share one small
 *                linear-feedback shift register among all neurons of a
 *                core; its draws decide stochastic synapse, leak and
 *                threshold events.  Both the cycle-level chip and the
 *                functional reference simulator use this generator in
 *                an identical, documented draw order so that their
 *                spike outputs are bit-for-bit equal.
 *
 *  - Xoshiro256: host-side general purpose generator (workload
 *                synthesis, datasets, placement annealing...).  Never
 *                used inside the simulated architecture.
 *
 * All generators are seedable and fully deterministic; NSCS never
 * touches global random state.
 */

#ifndef NSCS_UTIL_RNG_HH
#define NSCS_UTIL_RNG_HH

#include <cstdint>

namespace nscs {

/**
 * 16-bit maximal-length Galois LFSR (taps 16,14,13,11: polynomial
 * 0xB400), the hardware PRNG model.
 *
 * A zero seed is remapped to a fixed non-zero constant because an LFSR
 * locks up at state zero.  Draw order discipline (see chip/chip.hh):
 * per tick, draws occur in the order the core performs stochastic
 * operations — synaptic draws in (axon, neuron) order while spikes are
 * drained, then per-neuron leak and threshold draws in neuron index
 * order.
 */
class Lfsr16
{
  public:
    /** Construct with a seed; seed 0 is remapped to 0xACE1. */
    explicit Lfsr16(uint16_t seed = 0xACE1) { reset(seed); }

    /** Re-seed the register. */
    void
    reset(uint16_t seed)
    {
        state_ = seed ? seed : 0xACE1;
        draws_ = 0;
    }

    /** Advance one step and return the full 16-bit state. */
    uint16_t
    next()
    {
        uint16_t lsb = state_ & 1u;
        state_ >>= 1;
        if (lsb)
            state_ ^= 0xB400u;
        ++draws_;
        return state_;
    }

    /** Draw an 8-bit value (the compare operand for stochastic ops). */
    uint8_t nextByte() { return static_cast<uint8_t>(next() & 0xFFu); }

    /**
     * Draw and mask to the low @p bits bits (0..16).  Used for the
     * stochastic threshold mask eta = draw & (2^TM - 1).
     */
    uint16_t
    nextMasked(unsigned bits)
    {
        uint16_t v = next();
        if (bits >= 16)
            return v;
        return static_cast<uint16_t>(v & ((1u << bits) - 1u));
    }

    /** Current register state (for serialization / debugging). */
    uint16_t state() const { return state_; }

    /** Number of draws since the last reset (equivalence checking). */
    uint64_t draws() const { return draws_; }

    /**
     * Restore a previously observed (state(), draws()) pair exactly
     * (snapshot restore).  A zero state is remapped like a zero seed
     * — it cannot legitimately appear in a snapshot.
     */
    void
    restoreState(uint16_t state, uint64_t draws)
    {
        state_ = state ? state : 0xACE1;
        draws_ = draws;
    }

  private:
    uint16_t state_ = 0xACE1;
    uint64_t draws_ = 0;
};

/**
 * xoshiro256** host-side generator (Blackman & Vigna), seeded through
 * SplitMix64 so any 64-bit seed yields a good state.
 */
class Xoshiro256
{
  public:
    explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        reset(seed);
    }

    /** Re-seed via SplitMix64 expansion of @p seed. */
    void reset(uint64_t seed);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); n must be > 0. */
    uint64_t below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with success probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Standard normal draw (polar Box-Muller, cached pair). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double
    normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /** Poisson draw (Knuth for small lambda, normal approx beyond). */
    uint64_t poisson(double lambda);

    /**
     * Full generator state, exposed for snapshot serialization.  The
     * cached Box-Muller normal is carried as raw IEEE-754 bits so the
     * round trip is exact.
     */
    struct State {
        uint64_t s[4] = {};
        uint64_t cachedNormalBits = 0;
        bool hasCachedNormal = false;
    };

    /** Capture the full state for later restoreState(). */
    State saveState() const;

    /** Restore a state captured by saveState(). */
    void restoreState(const State &st);

  private:
    uint64_t s_[4] = {};
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace nscs

#endif // NSCS_UTIL_RNG_HH
