/**
 * @file
 * Saturating fixed-point helpers for the membrane-potential register.
 *
 * The hardware stores the membrane potential in a fixed-width signed
 * register that saturates instead of wrapping.  NSCS keeps potentials
 * in int32_t and saturates to a configurable bit width.
 */

#ifndef NSCS_UTIL_SATURATE_HH
#define NSCS_UTIL_SATURATE_HH

#include <cstdint>

namespace nscs {

/**
 * Maximum representable value of a signed @p bits-bit register.
 * Shifts stay in unsigned arithmetic and bits == 0 degenerates to an
 * empty [0, 0] range instead of shifting by (unsigned)-1, so the
 * helpers are total functions under UBSan even though configs
 * validate potentialBits into [8, 31] long before arriving here.
 */
constexpr int32_t
satMax(unsigned bits)
{
    if (bits == 0)
        return 0;
    if (bits >= 31)
        return INT32_MAX;
    return static_cast<int32_t>((1u << (bits - 1)) - 1);
}

/** Minimum representable value of a signed @p bits-bit register. */
constexpr int32_t
satMin(unsigned bits)
{
    if (bits == 0)
        return 0;
    if (bits >= 31)
        return INT32_MIN;
    return -static_cast<int32_t>(1u << (bits - 1));
}

/** Clamp @p v into the signed @p bits-bit range. */
constexpr int32_t
satClamp(int64_t v, unsigned bits)
{
    int64_t hi = satMax(bits);
    int64_t lo = satMin(bits);
    if (v > hi)
        return static_cast<int32_t>(hi);
    if (v < lo)
        return static_cast<int32_t>(lo);
    return static_cast<int32_t>(v);
}

/** Saturating add of @p a and @p b within a signed @p bits register. */
constexpr int32_t
satAdd(int32_t a, int32_t b, unsigned bits)
{
    return satClamp(static_cast<int64_t>(a) + b, bits);
}

} // namespace nscs

#endif // NSCS_UTIL_SATURATE_HH
