/**
 * @file
 * The per-level SIMD kernel implementations and the runtime
 * dispatch table (see util/simd.hh for the contract).
 *
 * x86-64 variants are compiled with per-function target attributes
 * (`target("avx2")` / `target("avx512f")`), so this translation
 * unit builds under the project's baseline -O2 flags and the binary
 * stays runnable on hosts without the extensions — the cpuid probe
 * decides what actually executes.  NEON is aarch64 baseline and
 * needs no attribute.  Every variant implements the identical
 * integer arithmetic; tails that don't fill a vector run the scalar
 * reference so a level's output never depends on the word count.
 *
 * This is the only file in src/ allowed to use vendor intrinsics
 * (linter rule `simd-guard`).
 */

#include "util/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define NSCS_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define NSCS_SIMD_NEON 1
#include <arm_neon.h>
#endif

// GCC's avx512fintrin.h implements _mm512_undefined_epi32 (used by
// the unaligned load/store intrinsics) with a self-initialized
// variable, which -Wmaybe-uninitialized flags once those helpers are
// inlined here.  The values are fully overwritten before use; mute
// just those diagnostics for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace nscs {
namespace simd {

namespace {

// ---------------------------------------------------------------
// Scalar reference kernels.  Range variants exist so the vector
// kernels can delegate their sub-vector tails.
// ---------------------------------------------------------------

void
foldRowScalarRange(uint64_t *planes, size_t stride,
                   uint32_t plane_count, const uint64_t *row,
                   size_t w0, size_t words)
{
    for (size_t w = w0; w < words; ++w) {
        uint64_t carry = row[w];
        if (!carry)
            continue;
        size_t idx = w;
        for (uint32_t p = 0; p < plane_count && carry;
             ++p, idx += stride) {
            uint64_t old = planes[idx];
            planes[idx] = old ^ carry;
            carry &= old;
        }
    }
}

void
foldRowScalar(uint64_t *planes, size_t stride, uint32_t plane_count,
              const uint64_t *row, size_t words)
{
    foldRowScalarRange(planes, stride, plane_count, row, 0, words);
}

uint64_t
orAccumulateScalarRange(uint64_t *dst, const uint64_t *src, size_t w0,
                        size_t words)
{
    uint64_t changed = 0;
    for (size_t w = w0; w < words; ++w) {
        uint64_t old = dst[w];
        uint64_t nw = old | src[w];
        changed |= old ^ nw;
        dst[w] = nw;
    }
    return changed;
}

bool
orAccumulateScalar(uint64_t *dst, const uint64_t *src, size_t words)
{
    return orAccumulateScalarRange(dst, src, 0, words) != 0;
}

void
andWordsScalar(uint64_t *dst, const uint64_t *src, size_t words)
{
    for (size_t w = 0; w < words; ++w)
        dst[w] &= src[w];
}

uint64_t
andPopcountScalarRange(const uint64_t *a, const uint64_t *b,
                       size_t w0, size_t words)
{
    uint64_t total = 0;
    for (size_t w = w0; w < words; ++w)
        total += static_cast<uint64_t>(
            __builtin_popcountll(a[w] & b[w]));
    return total;
}

uint64_t
andPopcountScalar(const uint64_t *a, const uint64_t *b, size_t words)
{
    return andPopcountScalarRange(a, b, 0, words);
}

/**
 * The narrow batched neuron update over strip lanes [begin, end) —
 * the same arithmetic as neuron/batch.hh's batchUpdateOneV<int32_t>,
 * value for value (the narrow proof bounds every intermediate inside
 * int32).  @return fired flags at their absolute lane positions.
 */
uint64_t
updateStripScalarRange(const UpdateStrip &s, uint32_t begin,
                       uint32_t end)
{
    uint64_t fired_bits = 0;
    for (uint32_t j = begin; j < end; ++j) {
        int32_t x = s.v[j];
        int32_t sg = (x > 0) - (x < 0);
        int32_t omega = 1 + s.rev[j] * (sg - 1);
        int32_t lo = s.lo[j];
        int32_t hi = s.hi[j];
        int32_t u = x + omega * s.leak[j];
        u = u < lo ? lo : (u > hi ? hi : u);
        bool fired = u >= s.thr[j];
        bool neg = u < s.negLim[j];
        int32_t pos = s.posMul[j] * u + s.posAdd[j];
        pos = pos < lo ? lo : (pos > hi ? hi : pos);
        int32_t ng = s.negMul[j] * u + s.negAdd[j];
        ng = ng < lo ? lo : (ng > hi ? hi : ng);
        s.v[j] = fired ? pos : (neg ? ng : u);
        fired_bits |= static_cast<uint64_t>(fired) << j;
    }
    return fired_bits;
}

uint64_t
updateStripScalar(const UpdateStrip &s, uint32_t n)
{
    return updateStripScalarRange(s, 0, n);
}

/**
 * The batched synaptic apply over lanes [begin, end) — the reference
 * for util/simd.hh's applyWord contract.  Every intermediate fits
 * int32: counts <= 2^8, |weight| <= 255 and |v| <= 2^30 (potential
 * rails cap at 31 bits), so pos/neg/delta stay under 2^18 and the
 * guard sums under 2^31.
 */
uint64_t
applyWordScalarRange(const ApplyWord &a, uint32_t begin, uint32_t end)
{
    uint64_t applied = 0;
    for (uint32_t b = begin; b < end; ++b) {
        if ((a.forcedDivert >> b) & 1)
            continue;
        int32_t delta = 0, pos = 0, neg = 0;
        for (unsigned g = 0; g < kApplyWordTypes; ++g) {
            if (!a.detUsed[g])
                continue;
            const int32_t wt = a.weight[g][b];
            int32_t d;
            if ((a.stochMask[g] >> b) & 1) {
                int32_t scnt = 0;
                const uint64_t *sp = a.succPlanes[g];
                for (uint32_t p = 0; p < a.succUsed[g]; ++p)
                    scnt |= static_cast<int32_t>(
                                (sp[p * a.succStride] >> b) & 1)
                        << p;
                d = scnt * ((wt > 0) - (wt < 0));
            } else {
                int32_t cnt = 0;
                const uint64_t *pl = a.detPlanes[g];
                for (uint32_t p = 0; p < a.detUsed[g]; ++p)
                    cnt |= static_cast<int32_t>(
                               (pl[p * a.detStride] >> b) & 1)
                        << p;
                d = cnt * wt;
            }
            delta += d;
            if (d > 0)
                pos += d;
            else
                neg += d;
        }
        const int32_t v0 = a.v[b];
        if (v0 + pos <= a.vHi[b] && v0 + neg >= a.vLo[b]) {
            a.v[b] = v0 + delta;
            applied |= uint64_t{1} << b;
        }
    }
    return applied;
}

uint64_t
applyWordScalar(const ApplyWord &a, uint32_t n)
{
    return applyWordScalarRange(a, 0, n);
}

#ifdef NSCS_SIMD_X86

// ---------------------------------------------------------------
// AVX2 kernels: 4 x u64 / 8 x i32 per vector.
// ---------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i
load256(const void *p)
{
    // nscs-lint: allow(raw-serialize): unaligned SIMD lane load
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

__attribute__((target("avx2"))) inline void
store256(void *p, __m256i x)
{
    // nscs-lint: allow(raw-serialize): unaligned SIMD lane store
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), x);
}

__attribute__((target("avx2"))) void
foldRowAvx2(uint64_t *planes, size_t stride, uint32_t plane_count,
            const uint64_t *row, size_t words)
{
    size_t w = 0;
    for (; w + 4 <= words; w += 4) {
        __m256i carry = load256(row + w);
        if (_mm256_testz_si256(carry, carry))
            continue;
        size_t idx = w;
        for (uint32_t p = 0; p < plane_count; ++p, idx += stride) {
            __m256i old = load256(planes + idx);
            store256(planes + idx, _mm256_xor_si256(old, carry));
            carry = _mm256_and_si256(carry, old);
            if (_mm256_testz_si256(carry, carry))
                break;
        }
    }
    foldRowScalarRange(planes, stride, plane_count, row, w, words);
}

__attribute__((target("avx2"))) bool
orAccumulateAvx2(uint64_t *dst, const uint64_t *src, size_t words)
{
    __m256i changed = _mm256_setzero_si256();
    size_t w = 0;
    for (; w + 4 <= words; w += 4) {
        __m256i old = load256(dst + w);
        __m256i nw = _mm256_or_si256(old, load256(src + w));
        changed = _mm256_or_si256(changed,
                                  _mm256_xor_si256(old, nw));
        store256(dst + w, nw);
    }
    uint64_t tail = orAccumulateScalarRange(dst, src, w, words);
    return !_mm256_testz_si256(changed, changed) || tail != 0;
}

__attribute__((target("avx2"))) void
andWordsAvx2(uint64_t *dst, const uint64_t *src, size_t words)
{
    size_t w = 0;
    for (; w + 4 <= words; w += 4)
        store256(dst + w,
                 _mm256_and_si256(load256(dst + w), load256(src + w)));
    for (; w < words; ++w)
        dst[w] &= src[w];
}

/** Nibble-LUT popcount of a 256-bit vector into 4 u64 partials. */
__attribute__((target("avx2"))) inline __m256i
popcount256(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    __m256i lo = _mm256_and_si256(v, low);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                  _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) uint64_t
andPopcountAvx2(const uint64_t *a, const uint64_t *b, size_t words)
{
    __m256i acc = _mm256_setzero_si256();
    size_t w = 0;
    for (; w + 4 <= words; w += 4)
        acc = _mm256_add_epi64(
            acc, popcount256(_mm256_and_si256(load256(a + w),
                                              load256(b + w))));
    uint64_t lanes[4];
    store256(lanes, acc);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
        andPopcountScalarRange(a, b, w, words);
}

__attribute__((target("avx2"))) inline __m256i
clamp256(__m256i x, __m256i lo, __m256i hi)
{
    return _mm256_min_epi32(_mm256_max_epi32(x, lo), hi);
}

__attribute__((target("avx2"))) uint64_t
updateStripAvx2(const UpdateStrip &s, uint32_t n)
{
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i zero = _mm256_setzero_si256();
    uint64_t fired_bits = 0;
    uint32_t j = 0;
    for (; j + 8 <= n; j += 8) {
        __m256i x = load256(s.v + j);
        __m256i sg = _mm256_sub_epi32(_mm256_cmpgt_epi32(zero, x),
                                      _mm256_cmpgt_epi32(x, zero));
        __m256i omega = _mm256_add_epi32(
            one, _mm256_mullo_epi32(load256(s.rev + j),
                                    _mm256_sub_epi32(sg, one)));
        __m256i lo = load256(s.lo + j);
        __m256i hi = load256(s.hi + j);
        __m256i u = _mm256_add_epi32(
            x, _mm256_mullo_epi32(omega, load256(s.leak + j)));
        u = clamp256(u, lo, hi);
        __m256i thr = load256(s.thr + j);
        __m256i fired = _mm256_or_si256(_mm256_cmpgt_epi32(u, thr),
                                        _mm256_cmpeq_epi32(u, thr));
        __m256i neg = _mm256_cmpgt_epi32(load256(s.negLim + j), u);
        __m256i pos = _mm256_add_epi32(
            _mm256_mullo_epi32(load256(s.posMul + j), u),
            load256(s.posAdd + j));
        pos = clamp256(pos, lo, hi);
        __m256i ng = _mm256_add_epi32(
            _mm256_mullo_epi32(load256(s.negMul + j), u),
            load256(s.negAdd + j));
        ng = clamp256(ng, lo, hi);
        __m256i out = _mm256_blendv_epi8(u, ng, neg);
        out = _mm256_blendv_epi8(out, pos, fired);
        store256(s.v + j, out);
        unsigned m = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(fired)));
        fired_bits |= static_cast<uint64_t>(m) << j;
    }
    return fired_bits | updateStripScalarRange(s, j, n);
}

/** Expand 8 plane bits (lanes sh..sh+7 of a word) into 32-bit lane
 *  masks: all-ones where the bit is set (AVX2 has no mask registers,
 *  so predication goes through compare + blend vectors). */
__attribute__((target("avx2"))) inline __m256i
laneMask256(uint64_t word, unsigned sh)
{
    const __m256i sel =
        _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    const __m256i bits = _mm256_set1_epi32(
        static_cast<int32_t>((word >> sh) & 0xff));
    return _mm256_cmpeq_epi32(_mm256_and_si256(bits, sel), sel);
}

__attribute__((target("avx2"))) uint64_t
applyWordAvx2(const ApplyWord &a, uint32_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    uint64_t applied = 0;
    uint32_t c = 0;
    for (; c + 8 <= n; c += 8) {
        __m256i delta = zero, pos = zero, neg = zero;
        for (unsigned g = 0; g < kApplyWordTypes; ++g) {
            if (!a.detUsed[g])
                continue;
            __m256i cnt = zero;
            for (uint32_t p = 0; p < a.detUsed[g]; ++p)
                cnt = _mm256_add_epi32(
                    cnt,
                    _mm256_and_si256(
                        laneMask256(a.detPlanes[g][p * a.detStride],
                                    c),
                        _mm256_set1_epi32(1 << p)));
            const __m256i wt = load256(a.weight[g] + c);
            __m256i d = _mm256_mullo_epi32(cnt, wt);
            const uint64_t sm = a.stochMask[g];
            if ((sm >> c) & 0xff) {
                __m256i scnt = zero;
                for (uint32_t p = 0; p < a.succUsed[g]; ++p)
                    scnt = _mm256_add_epi32(
                        scnt,
                        _mm256_and_si256(
                            laneMask256(
                                a.succPlanes[g][p * a.succStride],
                                c),
                            _mm256_set1_epi32(1 << p)));
                const __m256i sg = clamp256(
                    wt, _mm256_set1_epi32(-1), _mm256_set1_epi32(1));
                d = _mm256_blendv_epi8(
                    d, _mm256_mullo_epi32(scnt, sg),
                    laneMask256(sm, c));
            }
            delta = _mm256_add_epi32(delta, d);
            pos = _mm256_add_epi32(pos, _mm256_max_epi32(d, zero));
            neg = _mm256_add_epi32(neg, _mm256_min_epi32(d, zero));
        }
        const __m256i v0 = load256(a.v + c);
        // ok = (v0 + pos <= vHi) && (v0 + neg >= vLo) && !divert,
        // built from andnot of the inverted compares.
        const __m256i ok = _mm256_andnot_si256(
            _mm256_cmpgt_epi32(_mm256_add_epi32(v0, pos),
                               load256(a.vHi + c)),
            _mm256_andnot_si256(
                _mm256_cmpgt_epi32(load256(a.vLo + c),
                                   _mm256_add_epi32(v0, neg)),
                _mm256_andnot_si256(laneMask256(a.forcedDivert, c),
                                    _mm256_set1_epi32(-1))));
        store256(a.v + c,
                 _mm256_blendv_epi8(v0, _mm256_add_epi32(v0, delta),
                                    ok));
        const unsigned m = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(ok)));
        applied |= static_cast<uint64_t>(m) << c;
    }
    return applied | applyWordScalarRange(a, c, n);
}

// ---------------------------------------------------------------
// AVX-512 kernels: 8 x u64 / 16 x i32 per vector (AVX-512F only;
// the VPOPCNTDQ popcount is probed separately at dispatch).
// ---------------------------------------------------------------

__attribute__((target("avx512f"))) void
foldRowAvx512(uint64_t *planes, size_t stride, uint32_t plane_count,
              const uint64_t *row, size_t words)
{
    size_t w = 0;
    for (; w + 8 <= words; w += 8) {
        __m512i carry = _mm512_loadu_si512(row + w);
        if (_mm512_test_epi64_mask(carry, carry) == 0)
            continue;
        size_t idx = w;
        for (uint32_t p = 0; p < plane_count; ++p, idx += stride) {
            __m512i old = _mm512_loadu_si512(planes + idx);
            _mm512_storeu_si512(planes + idx,
                                _mm512_xor_si512(old, carry));
            carry = _mm512_and_si512(carry, old);
            if (_mm512_test_epi64_mask(carry, carry) == 0)
                break;
        }
    }
    foldRowScalarRange(planes, stride, plane_count, row, w, words);
}

__attribute__((target("avx512f"))) bool
orAccumulateAvx512(uint64_t *dst, const uint64_t *src, size_t words)
{
    __m512i changed = _mm512_setzero_si512();
    size_t w = 0;
    for (; w + 8 <= words; w += 8) {
        __m512i old = _mm512_loadu_si512(dst + w);
        __m512i nw = _mm512_or_si512(old, _mm512_loadu_si512(src + w));
        changed = _mm512_or_si512(changed, _mm512_xor_si512(old, nw));
        _mm512_storeu_si512(dst + w, nw);
    }
    uint64_t tail = orAccumulateScalarRange(dst, src, w, words);
    return _mm512_test_epi64_mask(changed, changed) != 0 || tail != 0;
}

__attribute__((target("avx512f"))) void
andWordsAvx512(uint64_t *dst, const uint64_t *src, size_t words)
{
    size_t w = 0;
    for (; w + 8 <= words; w += 8)
        _mm512_storeu_si512(
            dst + w, _mm512_and_si512(_mm512_loadu_si512(dst + w),
                                      _mm512_loadu_si512(src + w)));
    for (; w < words; ++w)
        dst[w] &= src[w];
}

__attribute__((target("avx512f,avx512vpopcntdq"))) uint64_t
andPopcountAvx512Vp(const uint64_t *a, const uint64_t *b,
                    size_t words)
{
    __m512i acc = _mm512_setzero_si512();
    size_t w = 0;
    for (; w + 8 <= words; w += 8)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(
                     _mm512_and_si512(_mm512_loadu_si512(a + w),
                                      _mm512_loadu_si512(b + w))));
    return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc)) +
        andPopcountScalarRange(a, b, w, words);
}

bool
hasVpopcntdq()
{
    static const bool has =
        __builtin_cpu_supports("avx512vpopcntdq") != 0;
    return has;
}

uint64_t
andPopcountAvx512(const uint64_t *a, const uint64_t *b, size_t words)
{
    if (hasVpopcntdq())
        return andPopcountAvx512Vp(a, b, words);
    // AVX-512F alone has no vector popcount; the AVX2 nibble-LUT
    // kernel is the fastest fallback and keeps results identical.
    return andPopcountAvx2(a, b, words);
}

__attribute__((target("avx512f"))) inline __m512i
clamp512(__m512i x, __m512i lo, __m512i hi)
{
    return _mm512_min_epi32(_mm512_max_epi32(x, lo), hi);
}

__attribute__((target("avx512f"))) uint64_t
updateStripAvx512(const UpdateStrip &s, uint32_t n)
{
    const __m512i one = _mm512_set1_epi32(1);
    const __m512i zero = _mm512_setzero_si512();
    uint64_t fired_bits = 0;
    uint32_t j = 0;
    for (; j + 16 <= n; j += 16) {
        __m512i x = _mm512_loadu_si512(s.v + j);
        // sg = (x > 0) - (x < 0), via mask-gated subtracts.
        __m512i sg = _mm512_mask_sub_epi32(
            zero, _mm512_cmpgt_epi32_mask(x, zero), zero,
            _mm512_set1_epi32(-1));
        sg = _mm512_mask_add_epi32(
            sg, _mm512_cmpgt_epi32_mask(zero, x), sg,
            _mm512_set1_epi32(-1));
        __m512i omega = _mm512_add_epi32(
            one, _mm512_mullo_epi32(_mm512_loadu_si512(s.rev + j),
                                    _mm512_sub_epi32(sg, one)));
        __m512i lo = _mm512_loadu_si512(s.lo + j);
        __m512i hi = _mm512_loadu_si512(s.hi + j);
        __m512i u = _mm512_add_epi32(
            x, _mm512_mullo_epi32(omega,
                                  _mm512_loadu_si512(s.leak + j)));
        u = clamp512(u, lo, hi);
        __mmask16 fired = _mm512_cmp_epi32_mask(
            u, _mm512_loadu_si512(s.thr + j), _MM_CMPINT_NLT);
        __mmask16 neg = _mm512_cmp_epi32_mask(
            u, _mm512_loadu_si512(s.negLim + j), _MM_CMPINT_LT);
        __m512i pos = _mm512_add_epi32(
            _mm512_mullo_epi32(_mm512_loadu_si512(s.posMul + j), u),
            _mm512_loadu_si512(s.posAdd + j));
        pos = clamp512(pos, lo, hi);
        __m512i ng = _mm512_add_epi32(
            _mm512_mullo_epi32(_mm512_loadu_si512(s.negMul + j), u),
            _mm512_loadu_si512(s.negAdd + j));
        ng = clamp512(ng, lo, hi);
        __m512i out = _mm512_mask_blend_epi32(neg, u, ng);
        out = _mm512_mask_blend_epi32(fired, out, pos);
        _mm512_storeu_si512(s.v + j, out);
        fired_bits |= static_cast<uint64_t>(
                          static_cast<uint16_t>(fired))
            << j;
    }
    return fired_bits | updateStripScalarRange(s, j, n);
}

__attribute__((target("avx512f"))) uint64_t
applyWordAvx512(const ApplyWord &a, uint32_t n)
{
    const __m512i zero = _mm512_setzero_si512();
    uint64_t applied = 0;
    uint32_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m512i delta = zero, pos = zero, neg = zero;
        for (unsigned g = 0; g < kApplyWordTypes; ++g) {
            if (!a.detUsed[g])
                continue;
            __m512i cnt = zero;
            for (uint32_t p = 0; p < a.detUsed[g]; ++p) {
                const auto m = static_cast<__mmask16>(
                    a.detPlanes[g][p * a.detStride] >> c);
                cnt = _mm512_mask_add_epi32(
                    cnt, m, cnt, _mm512_set1_epi32(1 << p));
            }
            const __m512i wt = _mm512_loadu_si512(a.weight[g] + c);
            __m512i d = _mm512_mullo_epi32(cnt, wt);
            const auto sm =
                static_cast<__mmask16>(a.stochMask[g] >> c);
            if (sm) {
                __m512i scnt = zero;
                for (uint32_t p = 0; p < a.succUsed[g]; ++p) {
                    const auto m = static_cast<__mmask16>(
                        a.succPlanes[g][p * a.succStride] >> c);
                    scnt = _mm512_mask_add_epi32(
                        scnt, m, scnt, _mm512_set1_epi32(1 << p));
                }
                const __m512i sg = clamp512(
                    wt, _mm512_set1_epi32(-1), _mm512_set1_epi32(1));
                d = _mm512_mask_blend_epi32(
                    sm, d, _mm512_mullo_epi32(scnt, sg));
            }
            delta = _mm512_add_epi32(delta, d);
            pos = _mm512_add_epi32(pos, _mm512_max_epi32(d, zero));
            neg = _mm512_add_epi32(neg, _mm512_min_epi32(d, zero));
        }
        const __m512i v0 = _mm512_loadu_si512(a.v + c);
        __mmask16 ok = _mm512_cmp_epi32_mask(
            _mm512_add_epi32(v0, pos),
            _mm512_loadu_si512(a.vHi + c), _MM_CMPINT_LE);
        ok = _mm512_mask_cmp_epi32_mask(
            ok, _mm512_add_epi32(v0, neg),
            _mm512_loadu_si512(a.vLo + c), _MM_CMPINT_NLT);
        ok &= static_cast<__mmask16>(~(a.forcedDivert >> c));
        _mm512_mask_storeu_epi32(a.v + c, ok,
                                 _mm512_add_epi32(v0, delta));
        applied |= static_cast<uint64_t>(static_cast<uint16_t>(ok))
            << c;
    }
    return applied | applyWordScalarRange(a, c, n);
}

#endif // NSCS_SIMD_X86

#ifdef NSCS_SIMD_NEON

// ---------------------------------------------------------------
// NEON kernels: 2 x u64 / 4 x i32 per vector (aarch64 baseline).
// ---------------------------------------------------------------

void
foldRowNeon(uint64_t *planes, size_t stride, uint32_t plane_count,
            const uint64_t *row, size_t words)
{
    size_t w = 0;
    for (; w + 2 <= words; w += 2) {
        uint64x2_t carry = vld1q_u64(row + w);
        if (vmaxvq_u32(vreinterpretq_u32_u64(carry)) == 0)
            continue;
        size_t idx = w;
        for (uint32_t p = 0; p < plane_count; ++p, idx += stride) {
            uint64x2_t old = vld1q_u64(planes + idx);
            vst1q_u64(planes + idx, veorq_u64(old, carry));
            carry = vandq_u64(carry, old);
            if (vmaxvq_u32(vreinterpretq_u32_u64(carry)) == 0)
                break;
        }
    }
    foldRowScalarRange(planes, stride, plane_count, row, w, words);
}

bool
orAccumulateNeon(uint64_t *dst, const uint64_t *src, size_t words)
{
    uint64x2_t changed = vdupq_n_u64(0);
    size_t w = 0;
    for (; w + 2 <= words; w += 2) {
        uint64x2_t old = vld1q_u64(dst + w);
        uint64x2_t nw = vorrq_u64(old, vld1q_u64(src + w));
        changed = vorrq_u64(changed, veorq_u64(old, nw));
        vst1q_u64(dst + w, nw);
    }
    uint64_t tail = orAccumulateScalarRange(dst, src, w, words);
    return vmaxvq_u32(vreinterpretq_u32_u64(changed)) != 0 ||
        tail != 0;
}

void
andWordsNeon(uint64_t *dst, const uint64_t *src, size_t words)
{
    size_t w = 0;
    for (; w + 2 <= words; w += 2)
        vst1q_u64(dst + w,
                  vandq_u64(vld1q_u64(dst + w), vld1q_u64(src + w)));
    for (; w < words; ++w)
        dst[w] &= src[w];
}

uint64_t
andPopcountNeon(const uint64_t *a, const uint64_t *b, size_t words)
{
    uint64x2_t acc = vdupq_n_u64(0);
    size_t w = 0;
    for (; w + 2 <= words; w += 2) {
        uint8x16_t bits = vreinterpretq_u8_u64(
            vandq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
        acc = vaddq_u64(
            acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(bits)))));
    }
    return vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1) +
        andPopcountScalarRange(a, b, w, words);
}

uint64_t
updateStripNeon(const UpdateStrip &s, uint32_t n)
{
    const int32x4_t one = vdupq_n_s32(1);
    const int32x4_t zero = vdupq_n_s32(0);
    const uint32x4_t bitsel = {1u, 2u, 4u, 8u};
    uint64_t fired_bits = 0;
    uint32_t j = 0;
    for (; j + 4 <= n; j += 4) {
        int32x4_t x = vld1q_s32(s.v + j);
        int32x4_t sg = vsubq_s32(
            vreinterpretq_s32_u32(vcgtq_s32(zero, x)),
            vreinterpretq_s32_u32(vcgtq_s32(x, zero)));
        int32x4_t omega = vaddq_s32(
            one, vmulq_s32(vld1q_s32(s.rev + j), vsubq_s32(sg, one)));
        int32x4_t lo = vld1q_s32(s.lo + j);
        int32x4_t hi = vld1q_s32(s.hi + j);
        int32x4_t u =
            vmlaq_s32(x, omega, vld1q_s32(s.leak + j));
        u = vminq_s32(vmaxq_s32(u, lo), hi);
        uint32x4_t fired = vcgeq_s32(u, vld1q_s32(s.thr + j));
        uint32x4_t neg = vcltq_s32(u, vld1q_s32(s.negLim + j));
        int32x4_t pos = vmlaq_s32(vld1q_s32(s.posAdd + j),
                                  vld1q_s32(s.posMul + j), u);
        pos = vminq_s32(vmaxq_s32(pos, lo), hi);
        int32x4_t ng = vmlaq_s32(vld1q_s32(s.negAdd + j),
                                 vld1q_s32(s.negMul + j), u);
        ng = vminq_s32(vmaxq_s32(ng, lo), hi);
        int32x4_t out = vbslq_s32(neg, ng, u);
        out = vbslq_s32(fired, pos, out);
        vst1q_s32(s.v + j, out);
        uint32_t m = vaddvq_u32(vandq_u32(fired, bitsel));
        fired_bits |= static_cast<uint64_t>(m) << j;
    }
    return fired_bits | updateStripScalarRange(s, j, n);
}

/** Expand 4 plane bits (lanes sh..sh+3 of a word) into 32-bit lane
 *  masks: all-ones where the bit is set — the 4-lane sibling of
 *  laneMask256 (NEON predication also goes through compare + bsl). */
inline uint32x4_t
laneMask4(uint64_t word, unsigned sh)
{
    const uint32x4_t sel = {1u, 2u, 4u, 8u};
    const uint32x4_t bits =
        vdupq_n_u32(static_cast<uint32_t>((word >> sh) & 0xf));
    return vceqq_u32(vandq_u32(bits, sel), sel);
}

uint64_t
applyWordNeon(const ApplyWord &a, uint32_t n)
{
    const int32x4_t zero = vdupq_n_s32(0);
    const uint32x4_t bitsel = {1u, 2u, 4u, 8u};
    uint64_t applied = 0;
    uint32_t c = 0;
    for (; c + 4 <= n; c += 4) {
        int32x4_t delta = zero, pos = zero, neg = zero;
        for (unsigned g = 0; g < kApplyWordTypes; ++g) {
            if (!a.detUsed[g])
                continue;
            int32x4_t cnt = zero;
            for (uint32_t p = 0; p < a.detUsed[g]; ++p)
                cnt = vaddq_s32(
                    cnt,
                    vreinterpretq_s32_u32(vandq_u32(
                        laneMask4(a.detPlanes[g][p * a.detStride],
                                  c),
                        vdupq_n_u32(1u << p))));
            const int32x4_t wt = vld1q_s32(a.weight[g] + c);
            int32x4_t d = vmulq_s32(cnt, wt);
            const uint64_t sm = a.stochMask[g];
            if ((sm >> c) & 0xf) {
                int32x4_t scnt = zero;
                for (uint32_t p = 0; p < a.succUsed[g]; ++p)
                    scnt = vaddq_s32(
                        scnt,
                        vreinterpretq_s32_u32(vandq_u32(
                            laneMask4(
                                a.succPlanes[g][p * a.succStride],
                                c),
                            vdupq_n_u32(1u << p))));
                // Stochastic lanes apply sign(weight) per success.
                const int32x4_t sg = vminq_s32(
                    vmaxq_s32(wt, vdupq_n_s32(-1)), vdupq_n_s32(1));
                d = vbslq_s32(laneMask4(sm, c), vmulq_s32(scnt, sg),
                              d);
            }
            delta = vaddq_s32(delta, d);
            pos = vaddq_s32(pos, vmaxq_s32(d, zero));
            neg = vaddq_s32(neg, vminq_s32(d, zero));
        }
        const int32x4_t v0 = vld1q_s32(a.v + c);
        // ok = (v0 + pos <= vHi) && (v0 + neg >= vLo) && !divert.
        const uint32x4_t ok = vandq_u32(
            vandq_u32(vcleq_s32(vaddq_s32(v0, pos),
                                vld1q_s32(a.vHi + c)),
                      vcgeq_s32(vaddq_s32(v0, neg),
                                vld1q_s32(a.vLo + c))),
            vmvnq_u32(laneMask4(a.forcedDivert, c)));
        vst1q_s32(a.v + c, vbslq_s32(ok, vaddq_s32(v0, delta), v0));
        applied |= static_cast<uint64_t>(
                       vaddvq_u32(vandq_u32(ok, bitsel)))
            << c;
    }
    return applied | applyWordScalarRange(a, c, n);
}

#endif // NSCS_SIMD_NEON

const Ops kScalarOps = {foldRowScalar, orAccumulateScalar,
                        andWordsScalar, andPopcountScalar,
                        updateStripScalar, applyWordScalar};

#ifdef NSCS_SIMD_X86
const Ops kAvx2Ops = {foldRowAvx2, orAccumulateAvx2, andWordsAvx2,
                      andPopcountAvx2, updateStripAvx2,
                      applyWordAvx2};
const Ops kAvx512Ops = {foldRowAvx512, orAccumulateAvx512,
                        andWordsAvx512, andPopcountAvx512,
                        updateStripAvx512, applyWordAvx512};
#endif
#ifdef NSCS_SIMD_NEON
const Ops kNeonOps = {foldRowNeon, orAccumulateNeon, andWordsNeon,
                      andPopcountNeon, updateStripNeon,
                      applyWordNeon};
#endif

Level
detectImpl()
{
#ifdef NSCS_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f"))
        return Level::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
    return Level::Scalar;
#elif defined(NSCS_SIMD_NEON)
    return Level::Neon;
#else
    return Level::Scalar;
#endif
}

constexpr uint8_t kLevelUnset = 0xff;

/** The pinned level; kLevelUnset until first use resolves it. */
std::atomic<uint8_t> activeStore{kLevelUnset};

/** Startup level: the NSCS_SIMD override when valid, else probe. */
Level
initialLevel()
{
    const char *env = std::getenv("NSCS_SIMD");
    Level l;
    if (env && *env && parseLevel(env, l) && levelAvailable(l))
        return l;
    return detectedLevel();
}

} // anonymous namespace

Level
detectedLevel()
{
    static const Level level = detectImpl();
    return level;
}

bool
levelAvailable(Level l)
{
    switch (l) {
      case Level::Scalar:
        return true;
      case Level::Avx2:
        return detectedLevel() == Level::Avx2 ||
            detectedLevel() == Level::Avx512;
      case Level::Avx512:
      case Level::Neon:
        return detectedLevel() == l;
    }
    return false;
}

Level
activeLevel()
{
    uint8_t a = activeStore.load(std::memory_order_acquire);
    if (a != kLevelUnset)
        return static_cast<Level>(a);
    uint8_t init = static_cast<uint8_t>(initialLevel());
    uint8_t expected = kLevelUnset;
    activeStore.compare_exchange_strong(expected, init,
                                        std::memory_order_acq_rel);
    return static_cast<Level>(
        activeStore.load(std::memory_order_acquire));
}

bool
setActiveLevel(Level l)
{
    if (!levelAvailable(l))
        return false;
    activeStore.store(static_cast<uint8_t>(l),
                      std::memory_order_release);
    return true;
}

std::vector<Level>
availableLevels()
{
    std::vector<Level> out;
    for (Level l : {Level::Scalar, Level::Avx2, Level::Avx512,
                    Level::Neon})
        if (levelAvailable(l))
            out.push_back(l);
    return out;
}

const char *
levelName(Level l)
{
    switch (l) {
      case Level::Scalar:
        return "scalar";
      case Level::Avx2:
        return "avx2";
      case Level::Avx512:
        return "avx512";
      case Level::Neon:
        return "neon";
    }
    return "scalar";
}

bool
parseLevel(const char *name, Level &out)
{
    if (!name)
        return false;
    if (std::strcmp(name, "scalar") == 0) {
        out = Level::Scalar;
        return true;
    }
    if (std::strcmp(name, "avx2") == 0) {
        out = Level::Avx2;
        return true;
    }
    if (std::strcmp(name, "avx512") == 0) {
        out = Level::Avx512;
        return true;
    }
    if (std::strcmp(name, "neon") == 0) {
        out = Level::Neon;
        return true;
    }
    if (std::strcmp(name, "native") == 0) {
        out = detectedLevel();
        return true;
    }
    return false;
}

const Ops &
opsFor(Level l)
{
    switch (l) {
#ifdef NSCS_SIMD_X86
      case Level::Avx2:
        return kAvx2Ops;
      case Level::Avx512:
        return kAvx512Ops;
#endif
#ifdef NSCS_SIMD_NEON
      case Level::Neon:
        return kNeonOps;
#endif
      default:
        return kScalarOps;
    }
}

const Ops &
ops()
{
    return opsFor(activeLevel());
}

} // namespace simd
} // namespace nscs
