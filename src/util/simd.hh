/**
 * @file
 * Explicit SIMD kernels behind a runtime-dispatched table (I9).
 *
 * Everything hot in the simulator that used to lean on
 * auto-vectorization — the bit-plane carry-save fold, the BitVec
 * bulk word ops, the narrow (int32) batched neuron-update strip and
 * the batched synaptic apply of the fast integrate paths — is
 * expressed here once per instruction-set level: a portable
 * scalar reference, AVX2 and AVX-512 variants on x86-64 (compiled
 * with per-function target attributes, so the translation unit
 * builds with the project's baseline flags) and NEON on aarch64.
 *
 * Dispatch is a function-pointer table selected at first use from a
 * cpuid probe, overridable two ways:
 *
 *  - the `NSCS_SIMD` environment variable (`scalar`, `avx2`,
 *    `avx512`, `neon`, `native`) pins the process-wide level at
 *    startup — `native` re-selects the probe result; an unavailable
 *    or unknown value falls back to the probe;
 *  - setActiveLevel() re-pins it mid-process (tests sweep every
 *    available level in one binary).  The active level lives in an
 *    atomic, so concurrent tick engines observe a coherent table.
 *
 * Determinism contract: every kernel is pure integer arithmetic with
 * the same operation set at every level, so all levels produce
 * bit-identical results — the differential suites
 * (tests/test_integrate_fast.cc, tests/test_update_fast.cc) prove it
 * per level.  Intrinsics are confined to src/util/simd.cc by the
 * linter's `simd-guard` rule.
 */

#ifndef NSCS_UTIL_SIMD_HH
#define NSCS_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nscs {
namespace simd {

/** Instruction-set levels, ordered by capability on their ISA. */
enum class Level : uint8_t
{
    Scalar = 0,  //!< portable reference (always available)
    Avx2 = 1,    //!< x86-64 with AVX2
    Avx512 = 2,  //!< x86-64 with AVX-512F (VPOPCNTDQ probed extra)
    Neon = 3,    //!< aarch64 (baseline)
};

/**
 * One <= 64-lane strip of the narrow batched neuron-update kernel's
 * inputs: the potential slice being updated in place plus the ten
 * projected SoA lanes (see neuron/batch.hh), all offset so index 0
 * is the strip's first neuron.  Plain pointers keep util/ free of a
 * neuron/ dependency.
 */
struct UpdateStrip
{
    int32_t *v;             //!< membrane potentials (updated in place)
    const int32_t *leak;    //!< signed leak per tick
    const int32_t *rev;     //!< 1 if leakReversal else 0
    const int32_t *thr;     //!< positive threshold
    const int32_t *negLim;  //!< -negThreshold
    const int32_t *posMul;  //!< positive-reset select: mul
    const int32_t *posAdd;  //!< positive-reset select: add
    const int32_t *negMul;  //!< negative-rule select: mul
    const int32_t *negAdd;  //!< negative-rule select: add
    const int32_t *lo;      //!< lower saturation rail
    const int32_t *hi;      //!< upper saturation rail
};

/** Axon-type groups the batched integrate apply distinguishes. */
inline constexpr unsigned kApplyWordTypes = 4;

/**
 * One 64-neuron word of the batched synaptic apply's inputs (the
 * phase-2 sweep of the word-parallel and axon-word integrate paths).
 *
 * Per axon type g the caller hands the carry-save count bit-planes
 * of the deterministic events (detPlanes[g][p * detStride], p <
 * detUsed[g]; detUsed[g] == 0 skips the type), the pre-drawn
 * stochastic success-count planes laid out the same way, the type's
 * 64 per-neuron weights at this word, and the word of the type's
 * stochastic-target mask.  Lanes the planes never touch see zero
 * counts everywhere and reduce to a harmless `v += 0`, so the caller
 * does not pre-mask — it intersects the returned applied mask with
 * its touched word instead.
 */
struct ApplyWord
{
    const uint64_t *detPlanes[kApplyWordTypes];  //!< plane 0 per type
    const uint64_t *succPlanes[kApplyWordTypes]; //!< plane 0 per type
    const int32_t *weight[kApplyWordTypes];      //!< 64 weights/type
    uint64_t stochMask[kApplyWordTypes];  //!< stochastic-target lanes
    size_t detStride;               //!< words between det planes
    size_t succStride;              //!< words between succ planes
    uint32_t detUsed[kApplyWordTypes];   //!< det planes live per type
    uint32_t succUsed[kApplyWordTypes];  //!< succ planes live per type
    uint64_t forcedDivert;  //!< lanes the caller sends to fallback
    int32_t *v;             //!< potentials at this word (in place)
    const int32_t *vLo;     //!< per-neuron lower rails at this word
    const int32_t *vHi;     //!< per-neuron upper rails at this word
};

/** The per-level kernel table. */
struct Ops
{
    /**
     * Carry-save fold of one crossbar row into plane-major bit
     * planes: for each word w, ripple row[w] through
     * planes[p * stride + w], p ascending — exactly a column-wise
     * add-with-carry.  The caller guarantees @p plane_count planes
     * are enough to hold the running count (any residual carry would
     * be dropped).
     */
    void (*foldRow)(uint64_t *planes, size_t stride,
                    uint32_t plane_count, const uint64_t *row,
                    size_t words);

    /** dst |= src over @p words words; true iff any dst word changed. */
    bool (*orAccumulate)(uint64_t *dst, const uint64_t *src,
                         size_t words);

    /** dst &= src over @p words words. */
    void (*andWords)(uint64_t *dst, const uint64_t *src, size_t words);

    /** popcount(a & b) over @p words words. */
    uint64_t (*andPopcount)(const uint64_t *a, const uint64_t *b,
                            size_t words);

    /**
     * Narrow (int32) batched update of @p n <= 64 neurons — the
     * arithmetic of neuron/batch.hh's batchUpdateOneV<int32_t>,
     * value for value.  @return fired flags, bit k = strip lane k.
     */
    uint64_t (*updateStrip)(const UpdateStrip &s, uint32_t n);

    /**
     * Batched synaptic apply over @p n <= 64 lanes: per lane, gather
     * each type's event count from its bit-planes, form the type
     * delta (count x weight deterministic, successes x sgn(weight)
     * stochastic), and commit `v += sum(delta)` iff the worst-case
     * excursion guard holds — v plus the positive deltas stays at or
     * under vHi and v plus the negative deltas at or over vLo — and
     * the lane is not in forcedDivert.  @return the committed lanes
     * (guard-passing bits; the caller diverts `touched & ~applied`
     * to the scalar fallback replay and derives the event counters
     * from popcounts of the planes masked with the result).
     */
    uint64_t (*applyWord)(const ApplyWord &a, uint32_t n);
};

/** The probe result for this host (cached; ignores overrides). */
Level detectedLevel();

/**
 * The level the dispatch table currently serves: the NSCS_SIMD
 * override if valid, else the probe result, else the most recent
 * setActiveLevel().
 */
Level activeLevel();

/** True when @p l can execute on this host. */
bool levelAvailable(Level l);

/**
 * Re-pin the active level (test sweeps).  @return false — and leave
 * the level unchanged — when @p l is not available on this host.
 */
bool setActiveLevel(Level l);

/** All levels available on this host, Scalar first. */
std::vector<Level> availableLevels();

/** Stable lowercase name (matches the NSCS_SIMD spellings). */
const char *levelName(Level l);

/** Parse an NSCS_SIMD spelling; `native` maps to detectedLevel(). */
bool parseLevel(const char *name, Level &out);

/** The kernel table for the active level. */
const Ops &ops();

/** The kernel table for a specific level (differential tests). */
const Ops &opsFor(Level l);

} // namespace simd
} // namespace nscs

#endif // NSCS_UTIL_SIMD_HH
