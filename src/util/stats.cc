#include "util/stats.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace nscs {

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t nbins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(nbins)),
      bins_(nbins, 0)
{
    NSCS_ASSERT(hi > lo && nbins > 0,
                "bad histogram range [%f, %f) x %zu", lo, hi, nbins);
}

void
Histogram::add(double x)
{
    ++count_;
    stat_.add(x);
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto i = static_cast<size_t>((x - lo_) / width_);
        if (i >= bins_.size())
            i = bins_.size() - 1;  // guard FP edge at hi
        ++bins_[i];
    }
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    auto target = static_cast<uint64_t>(
        q * static_cast<double>(count_ - 1)) + 1;
    uint64_t seen = underflow_;
    if (seen >= target)
        return lo_;
    for (size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (seen >= target)
            return lo_ + width_ * static_cast<double>(i + 1);
    }
    return stat_.max();
}

void
Histogram::reset()
{
    for (auto &b : bins_)
        b = 0;
    underflow_ = overflow_ = count_ = 0;
    stat_.reset();
}

double
StatGroup::get(const std::string &name) const
{
    for (const auto &e : entries_)
        if (e.name == name)
            return e.value;
    return std::nan("");
}

std::string
StatGroup::format() const
{
    size_t w = 0;
    for (const auto &e : entries_)
        if (e.name.size() > w)
            w = e.name.size();
    std::ostringstream os;
    for (const auto &e : entries_) {
        os << e.name;
        for (size_t i = e.name.size(); i < w + 2; ++i)
            os << ' ';
        os << strprintf("%14.6g", e.value);
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
    return os.str();
}

} // namespace nscs
