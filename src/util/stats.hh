/**
 * @file
 * Small statistics package: running scalar statistics, linear
 * histograms and named stat groups, in the spirit of gem5's stats.
 *
 * Everything is plain value types; benches and the energy model read
 * the counters directly.
 */

#ifndef NSCS_UTIL_STATS_HH
#define NSCS_UTIL_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace nscs {

/**
 * Streaming scalar statistic (Welford's algorithm): count, mean,
 * variance, min, max without storing samples.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    /** Number of samples. */
    uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 when fewer than 2 samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return mean_ * static_cast<double>(n_); }

    /** Forget all samples. */
    void reset() { *this = RunningStat(); }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Linear-bin histogram over [lo, hi) with an underflow and an
 * overflow bucket; supports quantile queries over binned data.
 */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 10) {}

    /** @p nbins bins spanning [lo, hi). */
    Histogram(double lo, double hi, size_t nbins);

    /** Add one sample. */
    void add(double x);

    /** Total samples (including under/overflow). */
    uint64_t count() const { return count_; }

    /** Count in bin @p i. */
    uint64_t binCount(size_t i) const { return bins_[i]; }

    /** Number of bins (excluding under/overflow). */
    size_t numBins() const { return bins_.size(); }

    /** Samples below lo. */
    uint64_t underflow() const { return underflow_; }

    /** Samples at or above hi. */
    uint64_t overflow() const { return overflow_; }

    /** Mean of all samples (exact, tracked separately). */
    double mean() const { return stat_.mean(); }

    /** Max of all samples (exact). */
    double max() const { return stat_.max(); }

    /**
     * Approximate quantile (0..1) using bin upper edges; overflow
     * samples report the exact observed max.
     */
    double quantile(double q) const;

    /** Forget all samples. */
    void reset();

  private:
    double lo_, hi_, width_;
    std::vector<uint64_t> bins_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
    RunningStat stat_;
};

/**
 * A named scalar for human-readable stat dumps.
 */
struct StatEntry
{
    std::string name;  //!< dotted stat path, e.g. "core.synEvents"
    double value;      //!< current value
    std::string desc;  //!< one-line description
};

/**
 * An ordered collection of named scalars.  Modules expose a
 * `dumpStats` that appends entries; tools print them via formatStats.
 */
class StatGroup
{
  public:
    /** Append one named scalar. */
    void
    add(const std::string &name, double value, const std::string &desc)
    {
        entries_.push_back({name, value, desc});
    }

    /** All entries in insertion order. */
    const std::vector<StatEntry> &entries() const { return entries_; }

    /** Find an entry by exact name; returns NaN when missing. */
    double get(const std::string &name) const;

    /** Render as an aligned text block. */
    std::string format() const;

  private:
    std::vector<StatEntry> entries_;
};

} // namespace nscs

#endif // NSCS_UTIL_STATS_HH
