#include "util/table.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace nscs {

namespace {
const std::string kRuleMarker = "\x01";
} // anonymous namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addRule()
{
    rows_.push_back({kRuleMarker});
}

std::string
TextTable::str() const
{
    // Compute column widths over header and all rows.
    std::vector<size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (row.size() == 1 && row[0] == kRuleMarker)
            return;
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            if (row[i].size() > widths[i])
                widths[i] = row[i].size();
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    if (total >= 2)
        total -= 2;

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                for (size_t p = row[i].size(); p < widths[i] + 2; ++p)
                    os << ' ';
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_) {
        if (r.size() == 1 && r[0] == kRuleMarker)
            os << std::string(total, '-') << '\n';
        else
            emit(r);
    }
    return os.str();
}

std::string
fmtF(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
fmtInt(uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
fmtSi(double v, const std::string &unit)
{
    if (v == 0.0)
        return "0" + unit;
    static const struct { double scale; const char *prefix; } steps[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
        {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
    };
    double mag = std::fabs(v);
    for (const auto &s : steps) {
        if (mag >= s.scale) {
            double scaled = v / s.scale;
            int decimals = (std::fabs(scaled) >= 100) ? 0
                         : (std::fabs(scaled) >= 10) ? 1 : 2;
            return strprintf("%.*f%s%s", decimals, scaled, s.prefix,
                             unit.c_str());
        }
    }
    return strprintf("%.3g%s", v, unit.c_str());
}

std::string
fmtBytes(uint64_t bytes)
{
    static const struct { uint64_t scale; const char *suffix; } steps[] = {
        {1ull << 30, "GiB"}, {1ull << 20, "MiB"}, {1ull << 10, "KiB"},
    };
    for (const auto &s : steps)
        if (bytes >= s.scale)
            return strprintf("%.2f %s",
                             static_cast<double>(bytes) /
                                 static_cast<double>(s.scale),
                             s.suffix);
    return strprintf("%llu B", static_cast<unsigned long long>(bytes));
}

} // namespace nscs
