/**
 * @file
 * Aligned ASCII table emitter used by every bench to print the
 * paper-style tables and figure series, plus number formatting
 * helpers (SI prefixes, bytes, fixed decimals).
 */

#ifndef NSCS_UTIL_TABLE_HH
#define NSCS_UTIL_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nscs {

/**
 * Column-aligned text table.  Usage:
 * @code
 *   TextTable t({"cores", "ticks/s", "speedup"});
 *   t.addRow({"16", "12000", "1.0x"});
 *   std::cout << t.str();
 * @endcode
 */
class TextTable
{
  public:
    TextTable() = default;

    /** Construct with a header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; width may differ from the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addRule();

    /** Render the table with 2-space column gaps. */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    /** Rows; an empty optional-marker row (single "\x01") is a rule. */
    std::vector<std::vector<std::string>> rows_;
};

/** Format with @p decimals fixed decimals, e.g. 3.142. */
std::string fmtF(double v, int decimals = 2);

/** Format an integer with thousands separators, e.g. 1,234,567. */
std::string fmtInt(uint64_t v);

/**
 * Format with an SI prefix and ~3 significant digits,
 * e.g. 2.56G, 13.4m, 26p.
 */
std::string fmtSi(double v, const std::string &unit = "");

/** Format a byte count with binary prefixes, e.g. 1.50 MiB. */
std::string fmtBytes(uint64_t bytes);

} // namespace nscs

#endif // NSCS_UTIL_TABLE_HH
