/**
 * @file
 * Application-layer tests: synthetic datasets, spike encoders, the
 * trainer/quantiser, and the deployed spiking classifier.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/classifier.hh"
#include "apps/dataset.hh"
#include "apps/encoder.hh"
#include "apps/trainer.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {
namespace {

// --- datasets ----------------------------------------------------------------

TEST(Dataset, GaussianDigitsShapeAndDeterminism)
{
    Dataset a = makeGaussianDigits(4, 8, 10, 0.1, 7);
    Dataset b = makeGaussianDigits(4, 8, 10, 0.1, 7);
    EXPECT_EQ(a.numClasses, 4u);
    EXPECT_EQ(a.featureDim, 64u);
    EXPECT_EQ(a.samples.size(), 40u);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].label, b.samples[i].label);
        EXPECT_EQ(a.samples[i].features, b.samples[i].features);
    }
    Dataset c = makeGaussianDigits(4, 8, 10, 0.1, 8);
    EXPECT_NE(a.samples[0].features, c.samples[0].features);
}

TEST(Dataset, FeaturesInUnitRange)
{
    Dataset ds = makeGaussianDigits(3, 6, 20, 0.3, 5);
    for (const Sample &s : ds.samples) {
        EXPECT_LT(s.label, 3u);
        for (double f : s.features) {
            EXPECT_GE(f, 0.0);
            EXPECT_LE(f, 1.0);
        }
    }
}

TEST(Dataset, SplitIsStratifiedAndDisjoint)
{
    Dataset ds = makeGaussianDigits(2, 6, 30, 0.1, 3);
    Dataset train, test;
    ds.split(4, train, test);
    EXPECT_EQ(train.samples.size() + test.samples.size(),
              ds.samples.size());
    // Per-class stratification: ceil(30 / 4) samples per class.
    EXPECT_EQ(test.samples.size(), 16u);
    // Both classes appear in the test split (samples interleave).
    std::set<uint32_t> labels;
    for (const Sample &s : test.samples)
        labels.insert(s.label);
    EXPECT_EQ(labels.size(), 2u);
}

TEST(Dataset, XorLabelsMatchQuadrants)
{
    Dataset ds = makeXor(50, 0.02, 11);
    EXPECT_EQ(ds.featureDim, 2u);
    for (const Sample &s : ds.samples) {
        bool qx = s.features[0] > 0.5;
        bool qy = s.features[1] > 0.5;
        EXPECT_EQ(s.label, (qx != qy) ? 1u : 0u);
    }
}

TEST(Dataset, BarsHaveBarStructure)
{
    Dataset ds = makeBars(6, 20, 0.0, 13);
    EXPECT_EQ(ds.numClasses, 6u);
    for (const Sample &s : ds.samples) {
        double sum = 0;
        for (double f : s.features)
            sum += f;
        EXPECT_DOUBLE_EQ(sum, 6.0);  // exactly one bar, no noise
        // The bar occupies the labelled row.
        for (uint32_t k = 0; k < 6; ++k)
            EXPECT_EQ(s.features[s.label * 6 + k], 1.0);
    }
}

// --- encoders ----------------------------------------------------------------

TEST(Encoder, RateCountIsExact)
{
    for (double v : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        auto spikes = encodeRate(v, 64);
        EXPECT_EQ(spikes.size(),
                  static_cast<size_t>(std::lround(v * 64)))
            << "value " << v;
    }
    EXPECT_TRUE(encodeRate(0.0, 64).empty());
}

TEST(Encoder, RateSpikesAreEvenlySpaced)
{
    auto spikes = encodeRate(0.25, 64);
    ASSERT_EQ(spikes.size(), 16u);
    for (size_t i = 1; i < spikes.size(); ++i)
        EXPECT_EQ(spikes[i] - spikes[i - 1], 4u);
}

TEST(Encoder, RateStochasticMean)
{
    Xoshiro256 rng(21);
    size_t total = 0;
    for (int rep = 0; rep < 50; ++rep)
        total += encodeRateStochastic(0.3, 100, rng).size();
    EXPECT_NEAR(static_cast<double>(total) / 5000.0, 0.3, 0.03);
}

TEST(Encoder, TimeToSpikePosition)
{
    EXPECT_EQ(encodeTimeToSpike(1.0, 64),
              (std::vector<uint32_t>{0}));
    EXPECT_EQ(encodeTimeToSpike(0.5, 65),
              (std::vector<uint32_t>{32}));
    EXPECT_TRUE(encodeTimeToSpike(0.0, 64).empty());
}

TEST(Encoder, PopulationPeaksAtNearestUnit)
{
    auto trains = encodePopulation(0.5, 5, 0.15, 100);
    ASSERT_EQ(trains.size(), 5u);
    // Centres at 0, .25, .5, .75, 1: unit 2 responds most.
    size_t best = 0;
    for (size_t i = 1; i < trains.size(); ++i)
        if (trains[i].size() > trains[best].size())
            best = i;
    EXPECT_EQ(best, 2u);
    EXPECT_EQ(trains[2].size(), 100u);  // activation 1 at centre
}

TEST(Encoder, DecodeRateInvertsEncode)
{
    for (double v : {0.1, 0.4, 0.9})
        EXPECT_NEAR(decodeRate(encodeRate(v, 200), 200), v, 0.01);
}

// --- trainer ------------------------------------------------------------------

TEST(Trainer, LearnsSeparableDigits)
{
    Dataset ds = makeGaussianDigits(4, 8, 40, 0.05, 17);
    Dataset train, test;
    ds.split(5, train, test);
    LinearModel model = trainPerceptron(train, 10, 1);
    EXPECT_GE(modelAccuracy(model, train), 0.95);
    EXPECT_GE(modelAccuracy(model, test), 0.9);
}

TEST(Trainer, QuantisationKeepsMostAccuracy)
{
    Dataset ds = makeBars(6, 60, 0.05, 23);
    Dataset train, test;
    ds.split(5, train, test);
    LinearModel model = trainPerceptron(train, 12, 2);
    QuantizedModel qm = quantize(model);
    EXPECT_EQ(qm.classes, 6u);
    EXPECT_EQ(qm.dim, 36u);
    for (int8_t q : qm.q) {
        EXPECT_GE(q, -2);
        EXPECT_LE(q, 2);
    }
    double fa = modelAccuracy(model, test);
    double qa = quantizedAccuracy(qm, test);
    EXPECT_GE(fa, 0.9);
    EXPECT_GE(qa, fa - 0.15);
}

TEST(Trainer, XorIsNotLinearlySeparable)
{
    // Sanity: the linear model must NOT ace XOR.
    Dataset ds = makeXor(100, 0.02, 31);
    LinearModel model = trainPerceptron(ds, 10, 3);
    EXPECT_LE(modelAccuracy(model, ds), 0.8);
}

// --- spiking classifier ---------------------------------------------------------

TEST(Classifier, NetworkShape)
{
    Dataset ds = makeBars(4, 10, 0.05, 41);
    LinearModel model = trainPerceptron(ds, 5, 4);
    QuantizedModel qm = quantize(model);
    Network net = buildClassifierNetwork(qm, 3);
    EXPECT_EQ(net.numInputs(), 16u);
    EXPECT_EQ(net.numOutputs(), 4u);
    EXPECT_EQ(net.numNeurons(), 4u);
}

TEST(Classifier, EndToEndBars)
{
    Dataset ds = makeBars(5, 40, 0.03, 43);
    Dataset train, test;
    ds.split(4, train, test);
    LinearModel model = trainPerceptron(train, 10, 5);
    QuantizedModel qm = quantize(model);

    ClassifierOptions opt;
    opt.window = 48;
    SpikingClassifier clf(qm, opt);
    EvalResult res = clf.evaluate(test);
    EXPECT_EQ(res.samples, test.samples.size());
    EXPECT_GE(res.accuracy, 0.85)
        << "on-chip accuracy collapsed vs host "
        << quantizedAccuracy(qm, test);
    EXPECT_GT(res.meanPerInference.inputSpikes, 0u);
    EXPECT_GT(res.meanPerInference.energyJ, 0.0);
    EXPECT_EQ(res.meanPerInference.ticks, opt.window + clf.gap());
}

TEST(Classifier, OnChipAgreesWithHostQuantised)
{
    Dataset ds = makeGaussianDigits(3, 6, 20, 0.05, 47);
    LinearModel model = trainPerceptron(ds, 8, 6);
    QuantizedModel qm = quantize(model);

    ClassifierOptions opt;
    opt.window = 64;
    SpikingClassifier clf(qm, opt);

    uint32_t agree = 0, n = 24;
    for (uint32_t i = 0; i < n; ++i) {
        const Sample &s = ds.samples[i];
        uint32_t host = 0;
        double best = -1e18;
        for (uint32_t c = 0; c < qm.classes; ++c) {
            double score = 0;
            for (uint32_t f = 0; f < qm.dim; ++f)
                score += qm.weight(c, f) * s.features[f];
            if (score > best) {
                best = score;
                host = c;
            }
        }
        if (clf.classify(s) == host)
            ++agree;
    }
    EXPECT_GE(agree, n * 3 / 4)
        << "rate-coded chip decision diverges from host argmax";
}

TEST(Classifier, DeterministicAcrossRuns)
{
    Dataset ds = makeBars(4, 10, 0.05, 53);
    LinearModel model = trainPerceptron(ds, 6, 7);
    QuantizedModel qm = quantize(model);
    ClassifierOptions opt;
    opt.window = 32;

    std::vector<uint32_t> first;
    for (int rep = 0; rep < 2; ++rep) {
        SpikingClassifier clf(qm, opt);
        std::vector<uint32_t> preds;
        for (uint32_t i = 0; i < 8; ++i)
            preds.push_back(clf.classify(ds.samples[i]));
        if (rep == 0)
            first = preds;
        else
            EXPECT_EQ(first, preds);
    }
}

} // anonymous namespace
} // namespace nscs
