/**
 * @file
 * Baseline-simulator tests, centred on the published one-to-one
 * verification claim: the functional reference simulator and the
 * cycle-level chip must produce identical output spike streams for
 * every legal model, including stochastic ones, under every engine
 * and transport combination.  The conventional (DenseSim) baseline
 * must agree with the chip on deterministic, splitter-free networks.
 */

#include <gtest/gtest.h>

#include "baseline/dense_sim.hh"
#include "baseline/reference_sim.hh"
#include "chip/chip.hh"
#include "prog/compiler.hh"
#include "prog/network.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {
namespace {

CompileOptions
smallOptions()
{
    CompileOptions opt;
    // Generous axon budget: every neuron of the random networks may
    // need a distinct axon on a destination core.
    opt.geom.numAxons = 256;
    opt.geom.numNeurons = 32;
    opt.geom.delaySlots = 16;
    return opt;
}

/** Random logical network exercising all features. */
Network
randomNetwork(uint64_t seed, bool allow_stochastic)
{
    Xoshiro256 rng(seed);
    Network net;

    uint32_t pops = 2 + static_cast<uint32_t>(rng.below(3));
    std::vector<PopId> ids;
    for (uint32_t p = 0; p < pops; ++p) {
        NeuronParams proto;
        proto.synWeight = {
            static_cast<int16_t>(rng.range(1, 4)),
            static_cast<int16_t>(rng.range(-4, -1)),
            static_cast<int16_t>(rng.range(1, 6)),
            static_cast<int16_t>(rng.range(-6, -1))};
        proto.threshold = static_cast<int32_t>(rng.range(2, 8));
        proto.leak = static_cast<int16_t>(rng.range(-2, 2));
        proto.negThreshold = static_cast<int32_t>(rng.below(10));
        proto.negSaturate = true;
        proto.resetMode = static_cast<ResetMode>(rng.below(2));
        if (allow_stochastic) {
            proto.synStochastic[0] = rng.chance(0.3);
            proto.leakStochastic = rng.chance(0.3);
            proto.thresholdMaskBits = rng.chance(0.3)
                ? static_cast<uint8_t>(1 + rng.below(2)) : 0;
        }
        ids.push_back(net.addPopulation(
            "p" + std::to_string(p),
            8 + static_cast<uint32_t>(rng.below(9)), proto));
    }
    for (uint32_t e = 0; e < pops * 2; ++e) {
        PopId src = ids[rng.below(ids.size())];
        PopId dst = ids[rng.below(ids.size())];
        net.connectRandom(src, dst, 0.08,
                          static_cast<uint8_t>(rng.below(4)),
                          static_cast<uint8_t>(rng.range(2, 6)),
                          rng.next());
    }
    uint32_t in = net.addInput("drive");
    for (uint32_t k = 0; k < 6; ++k)
        net.bindInput(in, {ids[k % ids.size()],
                           static_cast<uint32_t>(
                               rng.below(net.popSize(
                                   ids[k % ids.size()])))},
                      static_cast<uint8_t>(rng.below(2)) ? 0 : 2);
    for (uint32_t k = 0; k < 8; ++k) {
        PopId p = ids[rng.below(ids.size())];
        NeuronRef ref{p, static_cast<uint32_t>(
            rng.below(net.popSize(p)))};
        bool dup = false;
        for (uint32_t l = 0; l < net.numOutputs(); ++l)
            if (net.outputNeuron(l) == ref)
                dup = true;
        if (!dup)
            net.markOutput(ref);
    }
    return net;
}

class ReferenceEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(ReferenceEquivalence, ChipMatchesReferenceSpikeForSpike)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 6700417 + 11;
    Network net = randomNetwork(seed, /*allow_stochastic=*/true);
    CompiledModel model = compile(net, smallOptions());

    // Shared input schedule.
    Xoshiro256 rng(seed ^ 0x5A5A);
    const uint64_t ticks = 150;
    std::vector<std::vector<uint8_t>> fire(ticks);
    for (uint64_t t = 0; t < ticks; ++t)
        fire[t] = {rng.chance(0.5)};

    const auto &targets = model.inputTargets("drive");

    ReferenceSim ref(model);
    for (uint64_t t = 0; t < ticks; ++t) {
        if (fire[t][0])
            for (const InputSpike &s : targets)
                ref.injectInput(s.core, s.axon, t);
        ref.tick();
    }

    struct Combo { EngineKind ek; NocModel nm; };
    const Combo combos[] = {
        {EngineKind::Clock, NocModel::Functional},
        {EngineKind::Event, NocModel::Functional},
        {EngineKind::Event, NocModel::Cycle},
    };
    for (const Combo &combo : combos) {
        ChipParams cp;
        cp.width = model.gridWidth;
        cp.height = model.gridHeight;
        cp.coreGeom = model.geom;
        cp.engine = combo.ek;
        cp.noc = combo.nm;
        Chip chip(cp, model.cores);
        for (uint64_t t = 0; t < ticks; ++t) {
            if (fire[t][0])
                for (const InputSpike &s : targets)
                    chip.injectInput(s.core, s.axon, t);
            chip.tick();
        }
        ASSERT_EQ(chip.outputs(), ref.outputs())
            << "seed " << seed << " engine "
            << static_cast<int>(combo.ek) << " noc "
            << static_cast<int>(combo.nm);
        // Architectural counters agree too.
        uint64_t chip_sops = 0, chip_spikes = 0;
        for (uint32_t c = 0; c < chip.numCores(); ++c) {
            chip_sops += chip.core(c).counters().sops;
            chip_spikes += chip.core(c).counters().spikes;
        }
        EXPECT_EQ(chip_sops, ref.counters().sops);
        EXPECT_EQ(chip_spikes, ref.counters().spikes);
    }
    setQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReferenceEquivalence,
                         ::testing::Range(0, 25));

TEST(ReferenceSim, ResetRestoresInitialState)
{
    Network net = randomNetwork(3, false);
    CompiledModel model = compile(net, smallOptions());
    ReferenceSim ref(model);
    const auto &targets = model.inputTargets("drive");
    for (uint64_t t = 0; t < 50; ++t) {
        for (const InputSpike &s : targets)
            ref.injectInput(s.core, s.axon, t);
        ref.tick();
    }
    auto first = ref.outputs();
    ref.reset();
    EXPECT_EQ(ref.now(), 0u);
    for (uint64_t t = 0; t < 50; ++t) {
        for (const InputSpike &s : targets)
            ref.injectInput(s.core, s.axon, t);
        ref.tick();
    }
    EXPECT_EQ(ref.outputs(), first);
}

// --- DenseSim ------------------------------------------------------------------

/**
 * Deterministic network that compiles splitter-free: every source
 * neuron's edges share one (core, type, delay) branch, and output
 * neurons have no other edges.  Pop a is recurrently inhibitory
 * (its type-0 weight is -1) and excites pop b (type-0 weight +2);
 * the external drive arrives on type 2.
 */
Network
chainNetwork()
{
    Network net;
    NeuronParams pa;
    pa.synWeight = {-1, 0, 2, 0};
    pa.threshold = 3;
    pa.leak = -1;
    pa.negSaturate = true;
    NeuronParams pb;
    pb.synWeight = {2, 0, 0, 0};
    pb.threshold = 3;
    PopId a = net.addPopulation("a", 12, pa);
    PopId b = net.addPopulation("b", 12, pb);
    net.connectOneToOne(a, b, 0, 2);
    net.connectRandom(a, a, 0.15, 0, 2, 99);
    uint32_t in = net.addInput("drive");
    for (uint32_t i = 0; i < 12; ++i)
        net.bindInput(in, {a, i}, 2);
    for (uint32_t i = 0; i < 12; ++i)
        net.markOutput({b, i});
    return net;
}

TEST(DenseSim, MatchesChipOnDeterministicNetwork)
{
    Network net = chainNetwork();
    CompiledModel model = compile(net, smallOptions());
    ASSERT_EQ(model.stats.splitterCores, 0u)
        << "test requires a splitter-free lowering";

    DenseSim dense(net);
    ChipParams cp;
    cp.width = model.gridWidth;
    cp.height = model.gridHeight;
    cp.coreGeom = model.geom;
    Chip chip(cp, model.cores);

    const auto &targets = model.inputTargets("drive");
    Xoshiro256 rng(4242);
    for (uint64_t t = 0; t < 200; ++t) {
        if (rng.chance(0.4)) {
            dense.injectInput(0, t);
            for (const InputSpike &s : targets)
                chip.injectInput(s.core, s.axon, t);
        }
        dense.tick();
        chip.tick();
    }
    ASSERT_FALSE(dense.outputs().empty());
    EXPECT_EQ(dense.outputs(), chip.outputs());
}

TEST(DenseSim, CountersAndPotentials)
{
    Network net = chainNetwork();
    DenseSim dense(net);
    dense.injectInput(0, 0);
    dense.run(5);
    EXPECT_EQ(dense.now(), 5u);
    EXPECT_EQ(dense.counters().ticks, 5u);
    EXPECT_EQ(dense.counters().evals, 5u * net.numNeurons());
    EXPECT_GT(dense.counters().sops, 0u);
    dense.reset();
    EXPECT_EQ(dense.counters().ticks, 0u);
    EXPECT_EQ(dense.now(), 0u);
}

TEST(DenseSimDeath, RejectsBadInput)
{
    Network net = chainNetwork();
    DenseSim dense(net);
    EXPECT_DEATH(dense.injectInput(9, 0), "input");
    dense.run(3);
    EXPECT_DEATH(dense.injectInput(0, 1), "past");
}

} // anonymous namespace
} // namespace nscs
