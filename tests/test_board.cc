/**
 * @file
 * Board fabric tests.
 *
 * The load-bearing property is the board equivalence contract: a
 * network sharded across a board must emit the same spike stream as
 * the identical network on one large chip when the inter-chip link
 * is unconstrained (unlimited budget, zero transit delay), across
 * {Clock, Event} engines and {serial, parallel} execution at both
 * the board and chip level.
 *
 * Stream comparison is canonical per tick: within one tick the
 * monolithic chip emits output spikes in global core order while the
 * board emits them in chip-major order, an evaluation-order artifact
 * with no architectural meaning (hardware output lines fire in
 * parallel within the 1 ms tick).  Canonicalisation sorts each
 * tick's spikes by line, which preserves exactly the architectural
 * content: the (tick, line) multiset and all cross-tick ordering.
 * Board-vs-board comparisons (serial vs parallel) assert raw
 * bit-identical vectors with no canonicalisation, per the
 * determinism contract.
 *
 * The link model (budget stalls, queue drops, transit delay, late
 * deliveries) is exercised with a hand-built two-chip pacemaker
 * network where every event is predictable.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bench/workload.hh"
#include "board/board.hh"
#include "runtime/simulator.hh"

namespace nscs {
namespace {

/** Canonical per-tick ordering: sort by (tick, line). */
std::vector<OutputSpike>
canonical(std::vector<OutputSpike> v)
{
    std::sort(v.begin(), v.end(),
              [](const OutputSpike &a, const OutputSpike &b) {
                  return a.tick != b.tick ? a.tick < b.tick
                                          : a.line < b.line;
              });
    return v;
}

/**
 * The cortical workload with every third neuron re-aimed at an
 * output line (as in test_parallel.cc) so runs produce a comparable
 * OutputSpike stream.
 */
bench::CorticalWorkload
tappedWorkload(uint32_t grid_w, uint32_t grid_h, uint64_t seed)
{
    bench::CorticalParams wp;
    wp.gridW = grid_w;
    wp.gridH = grid_h;
    wp.density = 32;
    wp.ratePerTick = 0.05;
    wp.seed = seed;
    bench::CorticalWorkload w = bench::makeCortical(wp);
    const uint32_t neurons = CoreGeometry{}.numNeurons;
    for (uint32_t c = 0; c < w.cores.size(); ++c) {
        for (uint32_t n = 0; n < neurons; n += 3) {
            NeuronDest &d = w.cores[c].dests[n];
            d = NeuronDest{};
            d.kind = NeuronDest::Kind::Output;
            d.line = c * neurons + n;
        }
    }
    return w;
}

/** Aggregate architectural totals that must be framing-invariant. */
struct Totals
{
    uint64_t sops = 0;
    uint64_t spikes = 0;
    uint64_t hops = 0;
    uint64_t routed = 0;  //!< core-to-core spikes (any framing)
    uint64_t out = 0;
    uint64_t late = 0;
};

Totals
chipTotals(const Chip &chip)
{
    EnergyEvents e = chip.energyEvents();
    Totals t;
    t.sops = e.sops;
    t.spikes = e.spikes;
    t.hops = e.hops;
    t.routed = chip.counters().spikesRouted;
    t.out = chip.counters().spikesOut;
    t.late = chip.counters().lateDeliveries;
    return t;
}

Totals
boardTotals(const Board &board)
{
    EnergyEvents e = board.energyEvents();
    Totals t;
    t.sops = e.sops;
    t.spikes = e.spikes;
    t.hops = e.hops;
    for (uint32_t c = 0; c < board.numChips(); ++c) {
        t.routed += board.chip(c).counters().spikesRouted;
        t.out += board.chip(c).counters().spikesOut;
        t.late += board.chip(c).counters().lateDeliveries;
    }
    // Egress spikes are the board framing of core-to-core routes.
    t.routed += board.counters().egressSpikes;
    return t;
}

/**
 * The tentpole acceptance test: a network split across a board is
 * bit-identical (canonical stream + aggregate counters) to the same
 * network on one big chip under an unconstrained link, across
 * {Clock, Event} x {serial, parallel}.
 */
TEST(BoardEquivalence, TwoByOneBoardMatchesSingleChip)
{
    const uint64_t ticks = 40;
    for (uint64_t seed : {1ull, 42ull}) {
        bench::CorticalWorkload w = tappedWorkload(4, 2, seed);
        for (EngineKind ek : {EngineKind::Clock, EngineKind::Event}) {
            auto mono = bench::makeCorticalSim(w, ek);
            mono->run(ticks);
            auto ref = canonical(mono->recorder().spikes());
            ASSERT_FALSE(ref.empty());
            Totals mt = chipTotals(mono->chip());

            struct Lanes { uint32_t board, chip; };
            for (Lanes lanes : {Lanes{0, 0}, Lanes{3, 0},
                                Lanes{2, 2}}) {
                auto sharded = bench::makeCorticalBoardSim(
                    w, ek, 2, 1, lanes.board, LinkParams{},
                    lanes.chip);
                sharded->run(ticks);
                EXPECT_EQ(canonical(sharded->recorder().spikes()),
                          ref)
                    << "seed " << seed << " engine " << int(ek)
                    << " lanes " << lanes.board << "/" << lanes.chip;
                Totals bt = boardTotals(sharded->board());
                EXPECT_EQ(bt.sops, mt.sops);
                EXPECT_EQ(bt.spikes, mt.spikes);
                EXPECT_EQ(bt.hops, mt.hops);
                EXPECT_EQ(bt.routed, mt.routed);
                EXPECT_EQ(bt.out, mt.out);
                EXPECT_EQ(bt.late, mt.late);
                EXPECT_GT(sharded->board().counters().egressSpikes,
                          0u);
                EXPECT_EQ(sharded->board().counters().linkStalls,
                          0u);
                EXPECT_EQ(sharded->board().counters().linkDrops, 0u);
            }
        }
    }
}

TEST(BoardEquivalence, TwoByTwoBoardMatchesSingleChip)
{
    const uint64_t ticks = 30;
    bench::CorticalWorkload w = tappedWorkload(4, 4, 7);
    auto mono = bench::makeCorticalSim(w, EngineKind::Event);
    mono->run(ticks);
    auto ref = canonical(mono->recorder().spikes());
    ASSERT_FALSE(ref.empty());

    auto sharded = bench::makeCorticalBoardSim(
        w, EngineKind::Event, 2, 2, 3);
    sharded->run(ticks);
    EXPECT_EQ(canonical(sharded->recorder().spikes()), ref);
    // Multi-hop routes exist on a 2x2 board (diagonal chip pairs).
    EXPECT_GT(sharded->board().counters().linkPackets,
              sharded->board().counters().egressSpikes);
}

TEST(BoardDeterminism, SerialAndParallelBitIdentical)
{
    // Raw vector equality — no canonicalisation — plus identical
    // link statistics: the board's own determinism contract.
    const uint64_t ticks = 35;
    bench::CorticalWorkload w = tappedWorkload(4, 2, 9);
    LinkParams link;
    link.packetsPerTick = 3;  // constrained: stall paths must also
    link.extraDelay = 1;      // be thread-count-invariant
    auto serial = bench::makeCorticalBoardSim(
        w, EngineKind::Event, 2, 2, 0, link);
    auto parallel = bench::makeCorticalBoardSim(
        w, EngineKind::Event, 2, 2, 4, link, 2);
    serial->run(ticks);
    parallel->run(ticks);
    EXPECT_EQ(serial->recorder().spikes(),
              parallel->recorder().spikes());
    const auto &sl = serial->board().linkCounters();
    const auto &pl = parallel->board().linkCounters();
    ASSERT_EQ(sl.size(), pl.size());
    for (size_t i = 0; i < sl.size(); ++i) {
        EXPECT_EQ(sl[i].packets, pl[i].packets) << "link " << i;
        EXPECT_EQ(sl[i].stalls, pl[i].stalls) << "link " << i;
        EXPECT_EQ(sl[i].drops, pl[i].drops) << "link " << i;
        EXPECT_EQ(sl[i].peakQueue, pl[i].peakQueue) << "link " << i;
    }
    EXPECT_GT(serial->board().counters().linkStalls, 0u);
}

// --- hand-built two-chip link-model scenarios ------------------------------

/**
 * A 2x1 board of 1x1-core chips.  Core 0 holds @p pacemakers
 * neurons firing every @p period ticks (staggered phases when
 * @p stagger), each targeting its own axon on core 1 with delay 1;
 * core 1's neurons fire on every input spike and route to output
 * lines.
 */
std::vector<CoreConfig>
relayConfigs(uint32_t pacemakers, int32_t period, bool stagger)
{
    CoreGeometry g;
    g.numAxons = 16;
    g.numNeurons = 16;
    g.delaySlots = 16;
    CoreConfig src = CoreConfig::make(g);
    CoreConfig dst = CoreConfig::make(g);
    for (uint32_t n = 0; n < pacemakers; ++n) {
        NeuronParams p;
        p.leak = 1;
        p.threshold = period;
        p.resetMode = ResetMode::Store;
        p.initialPotential =
            stagger ? static_cast<int32_t>(n) % period : 0;
        src.neurons[n] = p;
        NeuronDest &d = src.dests[n];
        d.kind = NeuronDest::Kind::Core;
        d.dx = 1;
        d.dy = 0;
        d.axon = static_cast<uint16_t>(n);
        d.delay = 1;

        dst.connect(n, n);
        NeuronParams q;
        q.synWeight = {1, 1, 1, 1};
        q.threshold = 1;
        dst.neurons[n] = q;
        NeuronDest &o = dst.dests[n];
        o.kind = NeuronDest::Kind::Output;
        o.line = n;
    }
    return {src, dst};
}

BoardParams
relayBoardParams(LinkParams link, EngineKind ek = EngineKind::Clock)
{
    BoardParams bp;
    bp.width = 2;
    bp.height = 1;
    bp.chip.width = 1;
    bp.chip.height = 1;
    CoreGeometry g;
    g.numAxons = 16;
    g.numNeurons = 16;
    g.delaySlots = 16;
    bp.chip.coreGeom = g;
    bp.chip.engine = ek;
    bp.link = link;
    return bp;
}

TEST(BoardLink, UnconstrainedRelayTiming)
{
    // Pacemaker fires at t = 3, 7, 11 (period 4, v starts at 0,
    // leak 1, fires when v reaches 4); the relay integrates at t+1
    // and fires then, so outputs land at t = 4 and 8 within the
    // 12-tick window while the t = 11 spike is still in the
    // scheduler when the run ends.
    Board board(relayBoardParams(LinkParams{}), relayConfigs(1, 4,
                                                             false));
    board.run(12);
    std::vector<OutputSpike> expect = {{4, 0}, {8, 0}};
    EXPECT_EQ(board.outputs(), expect);
    EXPECT_EQ(board.counters().egressSpikes, 3u);
    EXPECT_EQ(board.counters().linkPackets, 3u);
    EXPECT_EQ(board.counters().linkStalls, 0u);
    EXPECT_EQ(board.counters().hops, 3u);
}

TEST(BoardLink, TransitDelayShiftsDelivery)
{
    // extraDelay d: the packet resumes d ticks later with its
    // delivery tick moved by d, so the relay fires d ticks later —
    // and no late delivery is recorded.
    for (uint32_t d : {1u, 3u}) {
        LinkParams link;
        link.extraDelay = d;
        Board board(relayBoardParams(link), relayConfigs(1, 4, false));
        board.run(12);
        ASSERT_FALSE(board.outputs().empty()) << "delay " << d;
        EXPECT_EQ(board.outputs()[0].tick, 4u + d) << "delay " << d;
        EXPECT_EQ(board.chip(1).counters().lateDeliveries, 0u);
    }
}

TEST(BoardLink, BudgetStallsSurfaceAsLateDeliveries)
{
    // Eight synchronized pacemakers fire together but the link moves
    // one packet per tick: seven stall at least once, and stalled
    // packets miss their delivery slot (late wrap), while all spikes
    // are eventually delivered (no drops with an unlimited queue).
    LinkParams link;
    link.packetsPerTick = 1;
    Board board(relayBoardParams(link), relayConfigs(8, 4, false));
    board.run(30);
    EXPECT_GT(board.counters().linkStalls, 0u);
    EXPECT_EQ(board.counters().linkDrops, 0u);
    EXPECT_GT(board.chip(1).counters().lateDeliveries, 0u);
    // Exactly one packet crosses per tick once the backlog builds;
    // the rest of the 8-wide fire waves queue up (demand outruns the
    // link, so the run ends with a standing backlog).
    EXPECT_GE(board.counters().linkPackets, 20u);
    EXPECT_LT(board.counters().linkPackets,
              board.counters().egressSpikes);
    const LinkCounters &east = board.linkCounters()[0 * 4 +
                                                    Board::East];
    EXPECT_GT(east.peakQueue, 4u);
    EXPECT_EQ(east.packets, board.counters().linkPackets);
}

TEST(BoardLink, FullQueueDropsPackets)
{
    LinkParams link;
    link.packetsPerTick = 1;
    link.queueCapacity = 2;
    Board board(relayBoardParams(link), relayConfigs(8, 4, false));
    board.run(30);
    EXPECT_GT(board.counters().linkDrops, 0u);
    // Conservation: every egress packet crossed, dropped, or is one
    // of the <= queueCapacity packets still parked at run end.
    uint64_t accounted = board.counters().linkPackets +
        board.counters().linkDrops;
    EXPECT_GE(board.counters().egressSpikes, accounted);
    EXPECT_LE(board.counters().egressSpikes, accounted + 2);
}

TEST(BoardLink, ResetClearsFabricState)
{
    LinkParams link;
    link.packetsPerTick = 1;
    Board board(relayBoardParams(link), relayConfigs(8, 4, false));
    board.run(30);
    std::vector<OutputSpike> first = board.outputs();
    ASSERT_FALSE(first.empty());
    board.reset();
    EXPECT_EQ(board.now(), 0u);
    EXPECT_EQ(board.counters().ticks, 0u);
    EXPECT_EQ(board.counters().linkStalls, 0u);
    EXPECT_TRUE(board.outputs().empty());
    board.run(30);
    EXPECT_EQ(board.outputs(), first);
}

TEST(BoardLink, InjectInputReachesGlobalCore)
{
    // Inject into global core 1 (= chip 1, local core 0): the relay
    // neuron fires next tick without any pacemaker involvement.
    Board board(relayBoardParams(LinkParams{}), relayConfigs(1, 100,
                                                             false));
    board.injectInput(1, 0, 0);
    board.run(2);
    std::vector<OutputSpike> expect = {{0, 0}};
    EXPECT_EQ(board.outputs(), expect);
}

TEST(BoardLink, FootprintAndStatsCoverFabric)
{
    Board board(relayBoardParams(LinkParams{}), relayConfigs(4, 4,
                                                             true));
    size_t before = board.footprintBytes();
    EXPECT_GT(before, board.chip(0).footprintBytes() +
                          board.chip(1).footprintBytes());
    board.run(20);
    StatGroup g;
    board.dumpStats("board", g);
    std::string text = g.format();
    EXPECT_NE(text.find("board.egressSpikes"), std::string::npos);
    EXPECT_NE(text.find("board.link.chip(0,0).east.packets"),
              std::string::npos);
}

} // namespace
} // namespace nscs
