/**
 * @file
 * Board comms fast-path tests: packet coalescing, traffic tracing,
 * profile-guided placement and congestion-aware routing.
 *
 * The load-bearing property is that none of the fast-path machinery
 * changes which spikes are delivered where or when: under an
 * unconstrained link, every combination of {coalescing on/off} x
 * {XY/profile-derived routes} x {serial/parallel board} emits a
 * bit-identical spike stream, and all of them match the same network
 * on one monolithic chip.  The remaining tests pin the mechanism
 * details: coalesced packets as the unit of budget/stall/drop/retry,
 * trace determinism and profile round-trip, the route table's
 * XY-equivalence under uniform load and its divert-around-hot-link
 * behavior, the placer's keep-better guarantee under measured
 * weights, and snapshot round-trips with coalesced packets parked
 * mid-flight.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "bench/workload.hh"
#include "board/board.hh"
#include "board/traffic.hh"
#include "prog/placer.hh"
#include "runtime/fault.hh"
#include "runtime/simulator.hh"
#include "util/json.hh"

namespace nscs {
namespace {

/** Canonical per-tick ordering: sort by (tick, line). */
std::vector<OutputSpike>
canonical(std::vector<OutputSpike> v)
{
    std::sort(v.begin(), v.end(),
              [](const OutputSpike &a, const OutputSpike &b) {
                  return a.tick != b.tick ? a.tick < b.tick
                                          : a.line < b.line;
              });
    return v;
}

/** Cortical workload with every third neuron tapped to an output
 *  line (as in test_board.cc) so runs emit comparable streams. */
bench::CorticalWorkload
tappedWorkload(uint32_t grid_w, uint32_t grid_h, uint64_t seed)
{
    bench::CorticalParams wp;
    wp.gridW = grid_w;
    wp.gridH = grid_h;
    wp.density = 32;
    wp.ratePerTick = 0.05;
    wp.seed = seed;
    bench::CorticalWorkload w = bench::makeCortical(wp);
    const uint32_t neurons = CoreGeometry{}.numNeurons;
    for (uint32_t c = 0; c < w.cores.size(); ++c) {
        for (uint32_t n = 0; n < neurons; n += 3) {
            NeuronDest &d = w.cores[c].dests[n];
            d = NeuronDest{};
            d.kind = NeuronDest::Kind::Output;
            d.line = c * neurons + n;
        }
    }
    return w;
}

/** Board simulator with the fast-path knobs the bench factory does
 *  not expose: coalescing, route profile, traffic tracing. */
std::unique_ptr<Simulator>
commsBoardSim(const bench::CorticalWorkload &w,
              uint32_t board_w, uint32_t board_h, uint32_t coalesce,
              std::shared_ptr<const TrafficProfile> routes,
              uint32_t board_threads, bool trace)
{
    BoardParams bp;
    bp.width = board_w;
    bp.height = board_h;
    bp.chip.width = w.params.gridW / board_w;
    bp.chip.height = w.params.gridH / board_h;
    bp.chip.coreGeom = CoreGeometry{};
    bp.chip.engine = EngineKind::Event;
    bp.link.coalesce = coalesce;
    bp.trafficProfile = std::move(routes);
    bp.traceTraffic = trace;
    bp.threads = board_threads;
    auto sim = std::make_unique<Simulator>(bp, w.cores);
    sim->addSource(std::make_unique<PoissonSource>(
        w.drivenAxons, w.params.ratePerTick,
        w.params.seed ^ 0xD1CEull));
    return sim;
}

/**
 * The acceptance differential: {coalesce off/on} x {XY/profile
 * routes} x {serial/parallel} on an unconstrained 2x2 board are all
 * raw bit-identical to each other and canonically identical to the
 * monolithic chip.
 */
TEST(BoardCommsEquivalence, AllFastPathCombosPreserveSpikes)
{
    const uint64_t ticks = 30;
    bench::CorticalWorkload w = tappedWorkload(4, 4, 11);

    auto mono = bench::makeCorticalSim(w, EngineKind::Event);
    mono->run(ticks);
    auto ref = canonical(mono->recorder().spikes());
    ASSERT_FALSE(ref.empty());

    // Trace run: harvest the measured profile the routed combos use.
    auto tracer = commsBoardSim(w, 2, 2, 0, nullptr, 0, true);
    tracer->run(ticks);
    auto profile = std::make_shared<TrafficProfile>(
        tracer->board().trafficProfile());
    ASSERT_GT(profile->egressSpikes, 0u);

    std::vector<OutputSpike> raw_ref;
    uint64_t egress_ref = 0;
    for (uint32_t coalesce : {0u, 8u}) {
        for (bool routed : {false, true}) {
            for (uint32_t threads : {0u, 3u}) {
                auto sim = commsBoardSim(
                    w, 2, 2, coalesce,
                    routed ? profile : nullptr, threads, false);
                sim->run(ticks);
                const auto &got = sim->recorder().spikes();
                if (raw_ref.empty()) {
                    raw_ref = got;
                    egress_ref =
                        sim->board().counters().egressSpikes;
                }
                EXPECT_EQ(got, raw_ref)
                    << "coalesce " << coalesce << " routed "
                    << routed << " threads " << threads;
                EXPECT_EQ(canonical(got), ref);
                const BoardCounters &bc = sim->board().counters();
                EXPECT_EQ(bc.egressSpikes, egress_ref);
                if (coalesce > 1) {
                    // Same spikes, fewer packets.
                    EXPECT_GT(bc.packetsCoalesced, 0u);
                    EXPECT_LT(bc.fabricPackets, bc.egressSpikes);
                    EXPECT_EQ(bc.fabricPackets + bc.packetsCoalesced,
                              bc.egressSpikes);
                } else {
                    EXPECT_EQ(bc.packetsCoalesced, 0u);
                    EXPECT_EQ(bc.fabricPackets, bc.egressSpikes);
                }
            }
        }
    }
}

// --- hand-built two-chip scenarios -----------------------------------------

/** 2x1 board, one core per chip: @p pacemakers synchronized
 *  period-@p period neurons on chip 0, each relayed by chip 1 to an
 *  output line. */
std::vector<CoreConfig>
relayConfigs(uint32_t pacemakers, int32_t period = 4)
{
    CoreGeometry g;
    g.numAxons = 16;
    g.numNeurons = 16;
    g.delaySlots = 16;
    CoreConfig src = CoreConfig::make(g);
    CoreConfig dst = CoreConfig::make(g);
    for (uint32_t n = 0; n < pacemakers; ++n) {
        NeuronParams p;
        p.leak = 1;
        p.threshold = period;
        p.resetMode = ResetMode::Store;
        src.neurons[n] = p;
        NeuronDest &d = src.dests[n];
        d.kind = NeuronDest::Kind::Core;
        d.dx = 1;
        d.dy = 0;
        d.axon = static_cast<uint16_t>(n);
        d.delay = 1;

        dst.connect(n, n);
        NeuronParams q;
        q.synWeight = {1, 1, 1, 1};
        q.threshold = 1;
        dst.neurons[n] = q;
        NeuronDest &o = dst.dests[n];
        o.kind = NeuronDest::Kind::Output;
        o.line = n;
    }
    return {src, dst};
}

BoardParams
relayBoardParams(LinkParams link,
                 std::shared_ptr<const FaultPlan> plan = nullptr)
{
    BoardParams bp;
    bp.width = 2;
    bp.height = 1;
    bp.chip.width = 1;
    bp.chip.height = 1;
    CoreGeometry g;
    g.numAxons = 16;
    g.numNeurons = 16;
    g.delaySlots = 16;
    bp.chip.coreGeom = g;
    bp.link = link;
    bp.faultPlan = std::move(plan);
    return bp;
}

TEST(BoardCommsCoalesce, PacketIsTheBudgetUnit)
{
    // Eight synchronized pacemakers, one packet of budget per tick.
    // Uncoalesced, each 8-spike wave is 8 packets: seven stall.
    // Coalesced, the wave is one packet and rides the budget freely.
    LinkParams tight;
    tight.packetsPerTick = 1;

    Board plain(relayBoardParams(tight), relayConfigs(8));
    plain.run(30);
    EXPECT_GT(plain.counters().linkStalls, 0u);
    EXPECT_GT(plain.chip(1).counters().lateDeliveries, 0u);

    LinkParams batched = tight;
    batched.coalesce = 16;
    Board fast(relayBoardParams(batched), relayConfigs(8));
    fast.run(30);
    EXPECT_EQ(fast.counters().linkStalls, 0u);
    EXPECT_EQ(fast.counters().linkDrops, 0u);
    EXPECT_EQ(fast.chip(1).counters().lateDeliveries, 0u);
    const BoardCounters &bc = fast.counters();
    // Every wave is one 8-spike packet.
    EXPECT_EQ(bc.fabricPackets * 8, bc.egressSpikes);
    EXPECT_EQ(bc.packetsCoalesced + bc.fabricPackets,
              bc.egressSpikes);

    // The coalesced constrained run delivers exactly what an
    // unconstrained uncoalesced run delivers.
    Board free(relayBoardParams(LinkParams{}), relayConfigs(8));
    free.run(30);
    EXPECT_EQ(fast.outputs(), free.outputs());
}

TEST(BoardCommsCoalesce, CapSplitsOversizedWaves)
{
    // Cap 3 splits each 8-spike wave into ceil(8/3) = 3 packets.
    LinkParams link;
    link.coalesce = 3;
    Board board(relayBoardParams(link), relayConfigs(8));
    board.run(12);
    const BoardCounters &bc = board.counters();
    ASSERT_GT(bc.egressSpikes, 0u);
    EXPECT_EQ(bc.egressSpikes % 8, 0u);
    EXPECT_EQ(bc.fabricPackets, bc.egressSpikes / 8 * 3);
}

TEST(BoardCommsCoalesce, ReliableLinkRetriesWholePacket)
{
    // A one-tick LinkDrop window swallows the first wave's single
    // coalesced packet.  With the reliable protocol the whole packet
    // retransmits and every spike still arrives (late-wrapped by the
    // 16-slot scheduler); without it the whole 8-spike wave is lost
    // at once.  Period 5 keeps the wrapped delivery tick (5 + 16)
    // off the regular delivery grid so the recovered wave cannot be
    // absorbed by a later wave on the same axons.
    auto plan = std::make_shared<FaultPlan>();
    FaultEvent ev;
    ev.kind = FaultKind::LinkDrop;
    ev.tick = 4;  // first wave crosses at t = 4
    ev.untilTick = 5;
    ev.chip = 0;
    ev.dir = Board::East;
    plan->events.push_back(ev);

    LinkParams link;
    link.coalesce = 16;

    Board clean(relayBoardParams(link), relayConfigs(8, 5));
    clean.run(40);
    ASSERT_FALSE(clean.outputs().empty());

    LinkParams reliable = link;
    reliable.reliable = true;
    Board recovered(relayBoardParams(reliable, plan),
                    relayConfigs(8, 5));
    recovered.run(40);
    EXPECT_EQ(recovered.outputs().size(), clean.outputs().size());
    EXPECT_GT(recovered.faultStats().retries, 0u);

    Board lossy(relayBoardParams(link, plan), relayConfigs(8, 5));
    lossy.run(40);
    EXPECT_EQ(lossy.outputs().size() + 8, clean.outputs().size());
}

// --- trace + profile -------------------------------------------------------

TEST(BoardCommsTrace, ProfileIsDeterministicAndRoundTrips)
{
    const uint64_t ticks = 25;
    bench::CorticalWorkload w = tappedWorkload(4, 4, 3);

    auto a = commsBoardSim(w, 2, 2, 0, nullptr, 0, true);
    auto b = commsBoardSim(w, 2, 2, 4, nullptr, 3, true);
    a->run(ticks);
    b->run(ticks);
    TrafficProfile pa = a->board().trafficProfile();
    TrafficProfile pb = b->board().trafficProfile();

    // Trace determinism: two runs — even at different thread counts
    // and coalescing settings — serialize to the identical document,
    // except for the link-load block, which legitimately sees fewer
    // (multi-spike) packets when coalescing is on.
    pb.links = pa.links;
    EXPECT_EQ(trafficProfileToJson(pa).dump(),
              trafficProfileToJson(pb).dump());

    // Full fidelity: the trace covers intra-chip routes too.
    const uint32_t gw = pa.boardW * pa.chipW;
    bool intra = false;
    for (uint32_t src = 0; src < pa.cells.size() && !intra; ++src) {
        for (const auto &[dst, n] : pa.cells[src]) {
            const uint32_t sc = (src % gw) / pa.chipW +
                (src / gw) / pa.chipH * pa.boardW;
            const uint32_t dc = (dst % gw) / pa.chipW +
                (dst / gw) / pa.chipH * pa.boardW;
            if (sc == dc && n > 0) {
                intra = true;
                break;
            }
        }
    }
    EXPECT_TRUE(intra);

    // JSON round-trip preserves the document bit for bit.
    TrafficProfile back;
    std::string err;
    ASSERT_TRUE(trafficProfileFromJson(trafficProfileToJson(pa),
                                       back, &err))
        << err;
    EXPECT_EQ(trafficProfileToJson(back).dump(),
              trafficProfileToJson(pa).dump());
}

// --- route table -----------------------------------------------------------

/** Hop count of the table walk from @p at to @p dst, asserting each
 *  step is a grid neighbor; fails the test if it exceeds @p cap. */
uint32_t
walkHops(const RouteTable &rt, uint32_t at, uint32_t dst,
         uint32_t cap)
{
    uint32_t hops = 0;
    while (at != dst) {
        auto [dir, next] = rt.step(at, dst);
        EXPECT_LT(dir, 4u);
        EXPECT_NE(next, at);
        at = next;
        if (++hops > cap) {
            ADD_FAILURE() << "route exceeds " << cap << " hops";
            break;
        }
    }
    return hops;
}

TEST(BoardCommsRouting, UniformLoadReproducesXy)
{
    TrafficProfile tp;
    tp.boardW = 3;
    tp.boardH = 3;
    tp.links.assign(9 * 4, TrafficLinkLoad{});
    for (auto &l : tp.links)
        l.packets = 7;
    RouteTable rt = buildRouteTable(tp);
    ASSERT_FALSE(rt.empty());
    for (uint32_t at = 0; at < 9; ++at) {
        for (uint32_t dst = 0; dst < 9; ++dst) {
            if (at == dst)
                continue;
            uint32_t cursor = at;
            while (cursor != dst) {
                auto xy = xyRouteStep(cursor, dst, 3);
                auto tbl = rt.step(cursor, dst);
                EXPECT_EQ(tbl, xy)
                    << "at " << cursor << " dst " << dst;
                cursor = xy.second;
            }
        }
    }

    // A profile with no link load yields no table: XY fallback.
    TrafficProfile unloaded;
    unloaded.boardW = 3;
    unloaded.boardH = 3;
    unloaded.links.assign(9 * 4, TrafficLinkLoad{});
    EXPECT_TRUE(buildRouteTable(unloaded).empty());
}

TEST(BoardCommsRouting, HotLinkDiverts)
{
    // 2x2 board; chip 0's east link is an order of magnitude hotter
    // than the rest, so 0 -> 1 pays less going S, E, N around it.
    TrafficProfile tp;
    tp.boardW = 2;
    tp.boardH = 2;
    tp.links.assign(4 * 4, TrafficLinkLoad{});
    tp.links[0 * 4 + Board::East].packets = 1000;
    tp.links[0 * 4 + Board::South].packets = 10;
    tp.links[2 * 4 + Board::East].packets = 10;
    tp.links[3 * 4 + Board::North].packets = 10;
    RouteTable rt = buildRouteTable(tp);
    ASSERT_FALSE(rt.empty());
    EXPECT_NE(rt.step(0, 1).first,
              static_cast<uint32_t>(Board::East));
    EXPECT_EQ(walkHops(rt, 0, 1, 4), 3u);
    // Other pairs keep sane bounded routes.
    for (uint32_t at = 0; at < 4; ++at)
        for (uint32_t dst = 0; dst < 4; ++dst)
            if (at != dst)
                walkHops(rt, at, dst, 4);
}

// --- profile-guided placement ----------------------------------------------

TEST(BoardCommsPlacement, ProfileGuidanceNeverRegressesMeasuredCost)
{
    // A 16-pop ring, alternating slow (vol 10) and fast (vol 1000)
    // edges, on a 2x2 board of 2x2-core chips — the bench's shape in
    // miniature.  The estimate weighs all edges equally.
    const uint32_t n = 16;
    TrafficMatrix est(n);
    std::vector<uint64_t> vol(n);
    for (uint32_t i = 0; i < n; ++i) {
        est[i][(i + 1) % n] = 256;
        vol[i] = i % 2 == 0 ? 10 : 1000;
    }
    PlacerCostModel model;
    model.chipW = 2;
    model.chipH = 2;

    Placement pass1 = placeCores(est, PlacementPolicy::Anneal,
                                 4, 4, 1, model);
    ASSERT_FALSE(pass1.profileGuided);

    // Trace as the traced run would have recorded it: measured
    // volumes keyed by the pass-1 placement's global cells.
    auto tp = std::make_shared<TrafficProfile>();
    tp->boardW = 2;
    tp->boardH = 2;
    tp->chipW = 2;
    tp->chipH = 2;
    tp->cells.resize(16);
    auto cellOf = [&](const Placement &pl, uint32_t i) {
        return pl.y[i] * 4 + pl.x[i];
    };
    for (uint32_t i = 0; i < n; ++i)
        tp->cells[cellOf(pass1, i)][cellOf(pass1, (i + 1) % n)] =
            vol[i];

    PlacerCostModel guided = model;
    guided.traffic = tp;
    Placement pass2 = placeCores(est, PlacementPolicy::Anneal,
                                 4, 4, 1, guided);
    EXPECT_TRUE(pass2.profileGuided);

    // Keep-better guarantee: under the measured weights the guided
    // placement costs no more than the estimate placement.
    TrafficMatrix measured(n);
    for (uint32_t i = 0; i < n; ++i)
        measured[i][(i + 1) % n] = vol[i];
    EXPECT_LE(placementCost(measured, pass2.x, pass2.y, model),
              placementCost(measured, pass1.x, pass1.y, model));

    // Determinism: same inputs, same placement.
    Placement again = placeCores(est, PlacementPolicy::Anneal,
                                 4, 4, 1, guided);
    EXPECT_EQ(again.x, pass2.x);
    EXPECT_EQ(again.y, pass2.y);
    EXPECT_TRUE(again.profileGuided);
}

// --- snapshot --------------------------------------------------------------

TEST(BoardCommsSnapshot, RoundTripsInFlightCoalescedPackets)
{
    // extraDelay parks each wave's coalesced packet mid-flight for
    // two ticks; snapshot at t = 5 catches the t = 3 wave in transit.
    LinkParams link;
    link.coalesce = 16;
    link.extraDelay = 2;

    Board ref(relayBoardParams(link), relayConfigs(8));
    ref.run(20);
    ASSERT_FALSE(ref.outputs().empty());

    Board donor(relayBoardParams(link), relayConfigs(8));
    donor.run(5);
    JsonValue snap;
    donor.saveState(snap);

    Board restored(relayBoardParams(link), relayConfigs(8));
    ASSERT_TRUE(restored.restoreState(snap));
    donor.run(15);
    restored.run(15);
    EXPECT_EQ(restored.outputs(), donor.outputs());
    EXPECT_EQ(restored.counters().fabricPackets,
              donor.counters().fabricPackets);
    EXPECT_EQ(restored.counters().packetsCoalesced,
              donor.counters().packetsCoalesced);
    // And the spliced run matches an uninterrupted one tick-for-tick
    // from the snapshot point on.
    auto tail = [](const std::vector<OutputSpike> &v) {
        std::vector<OutputSpike> t;
        for (const OutputSpike &s : v)
            if (s.tick >= 5)
                t.push_back(s);
        return t;
    };
    EXPECT_EQ(tail(restored.outputs()), tail(ref.outputs()));
}

} // namespace
} // namespace nscs
