/**
 * @file
 * Chip-level tests: tick discipline, cross-core routing, output
 * capture, engine/transport equivalence, late-delivery accounting,
 * and the energy model.
 */

#include <gtest/gtest.h>

#include "chip/chip.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {
namespace {

CoreGeometry
smallGeom()
{
    CoreGeometry g;
    g.numAxons = 16;
    g.numNeurons = 16;
    g.delaySlots = 16;
    return g;
}

/** A core whose neuron n fires on axon n and forwards per dests. */
CoreConfig
relayCore()
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    for (uint32_t n = 0; n < 16; ++n) {
        cfg.neurons[n].threshold = 1;
        cfg.connect(n, n);
    }
    return cfg;
}

ChipParams
params1x1(EngineKind ek = EngineKind::Event,
          NocModel nm = NocModel::Functional)
{
    ChipParams p;
    p.width = 1;
    p.height = 1;
    p.coreGeom = smallGeom();
    p.engine = ek;
    p.noc = nm;
    return p;
}

TEST(Chip, OutputSpikeEmitted)
{
    CoreConfig cfg = relayCore();
    cfg.dests[3].kind = NeuronDest::Kind::Output;
    cfg.dests[3].line = 9;
    Chip chip(params1x1(), {cfg});
    chip.injectInput(0, 3, 0);
    chip.tick();
    ASSERT_EQ(chip.outputs().size(), 1u);
    EXPECT_EQ(chip.outputs()[0], (OutputSpike{0, 9}));
    EXPECT_EQ(chip.counters().spikesOut, 1u);
}

TEST(Chip, CrossCoreRoutingWithDelay)
{
    // Core 0 neuron 0 -> core 1 axon 5 with delay 3; core 1 neuron 5
    // is an output.
    CoreConfig c0 = relayCore();
    c0.dests[0].kind = NeuronDest::Kind::Core;
    c0.dests[0].dx = 1;
    c0.dests[0].dy = 0;
    c0.dests[0].axon = 5;
    c0.dests[0].delay = 3;
    CoreConfig c1 = relayCore();
    c1.dests[5].kind = NeuronDest::Kind::Output;
    c1.dests[5].line = 0;

    ChipParams p = params1x1();
    p.width = 2;
    Chip chip(p, {c0, c1});
    chip.injectInput(0, 0, 0);
    chip.run(6);
    // Fire at t=0, delivery t=3, fire at t=3.
    ASSERT_EQ(chip.outputs().size(), 1u);
    EXPECT_EQ(chip.outputs()[0].tick, 3u);
    EXPECT_EQ(chip.counters().spikesRouted, 1u);
    EXPECT_EQ(chip.counters().hops, 1u);
    EXPECT_EQ(chip.counters().lateDeliveries, 0u);
}

TEST(Chip, SelfLoopSpikesRepeat)
{
    // Neuron 0 re-excites its own axon: a one-neuron oscillator with
    // period equal to the loop delay.
    CoreConfig cfg = relayCore();
    cfg.dests[0].kind = NeuronDest::Kind::Core;
    cfg.dests[0].dx = 0;
    cfg.dests[0].dy = 0;
    cfg.dests[0].axon = 0;
    cfg.dests[0].delay = 4;
    cfg.neurons[1].threshold = 1;
    cfg.connect(0, 1);  // axon 0 also drives neuron 1 (an output)
    cfg.dests[1].kind = NeuronDest::Kind::Output;
    cfg.dests[1].line = 0;

    Chip chip(params1x1(), {cfg});
    chip.injectInput(0, 0, 0);
    chip.run(20);
    std::vector<uint64_t> ticks;
    for (const auto &s : chip.outputs())
        ticks.push_back(s.tick);
    EXPECT_EQ(ticks, (std::vector<uint64_t>{0, 4, 8, 12, 16}));
}

TEST(ChipDeath, OffGridDestRejected)
{
    CoreConfig cfg = relayCore();
    cfg.dests[0].kind = NeuronDest::Kind::Core;
    cfg.dests[0].dx = 5;
    EXPECT_EXIT(Chip(params1x1(), {cfg}),
                ::testing::ExitedWithCode(1), "outside");
}

TEST(ChipDeath, InjectOutsideWindowPanics)
{
    Chip chip(params1x1(), {relayCore()});
    EXPECT_DEATH(chip.injectInput(0, 0, 20), "overruns");
    chip.run(5);
    EXPECT_DEATH(chip.injectInput(0, 0, 2), "past");
}

TEST(Chip, RunAdvancesClockAndReset)
{
    Chip chip(params1x1(), {relayCore()});
    chip.run(7);
    EXPECT_EQ(chip.now(), 7u);
    EXPECT_EQ(chip.counters().ticks, 7u);
    chip.reset();
    EXPECT_EQ(chip.now(), 0u);
    EXPECT_EQ(chip.counters().ticks, 0u);
}

TEST(Chip, MeshStatsOnlyInCycleMode)
{
    Chip functional(params1x1(), {relayCore()});
    EXPECT_EQ(functional.meshStats(), nullptr);
    Chip cycle(params1x1(EngineKind::Event, NocModel::Cycle),
               {relayCore()});
    EXPECT_NE(cycle.meshStats(), nullptr);
}

TEST(Chip, LateDeliveryUnderTinyCycleBudget)
{
    // One router cycle per tick cannot carry a packet 3 hops before
    // its delay-1 deadline.
    CoreConfig c0 = relayCore();
    c0.dests[0].kind = NeuronDest::Kind::Core;
    c0.dests[0].dx = 3;
    c0.dests[0].axon = 2;
    c0.dests[0].delay = 1;
    CoreConfig c3 = relayCore();
    c3.dests[2].kind = NeuronDest::Kind::Output;
    c3.dests[2].line = 0;

    ChipParams p = params1x1(EngineKind::Event, NocModel::Cycle);
    p.width = 4;
    p.cyclesPerTick = 1;
    Chip chip(p, {c0, relayCore(), relayCore(), c3});
    chip.injectInput(0, 0, 0);
    chip.run(40);
    EXPECT_GE(chip.counters().lateDeliveries, 1u);
    // The spike still arrives, a scheduler wrap later.
    ASSERT_EQ(chip.outputs().size(), 1u);
    EXPECT_GT(chip.outputs()[0].tick, 1u);
}

TEST(Chip, EnergyDecomposition)
{
    Chip chip(params1x1(), {relayCore()});
    chip.run(100);
    EnergyEvents e = chip.energyEvents();
    EXPECT_EQ(e.ticks, 100u);
    EXPECT_EQ(e.cores, 1u);
    EXPECT_EQ(e.neurons, 16u);
    EXPECT_EQ(e.sops, 0u);
    EnergyBreakdown b = chip.energy();
    EXPECT_GT(b.leakageJ, 0.0);
    EXPECT_GT(b.neuronJ, 0.0);
    EXPECT_EQ(b.sopJ, 0.0);
    EXPECT_NEAR(b.totalJ(),
                b.leakageJ + b.neuronJ + b.spikeJ + b.hopJ + b.sopJ,
                1e-18);
    EXPECT_EQ(energyPerSopJ(b, e), 0.0);
}

TEST(Chip, EnergyGrowsWithActivity)
{
    CoreConfig cfg = relayCore();
    cfg.dests[0].kind = NeuronDest::Kind::Output;
    cfg.dests[0].line = 0;

    Chip quiet(params1x1(), {cfg});
    quiet.run(50);

    Chip busy(params1x1(), {cfg});
    for (int t = 0; t < 50; ++t) {
        busy.injectInput(0, 0, busy.now());
        busy.tick();
    }
    EXPECT_GT(busy.energy().totalJ(), quiet.energy().totalJ());
    EXPECT_GT(energyPerSopJ(busy.energy(), busy.energyEvents()), 0.0);
}

TEST(Chip, DumpStatsHasKeyEntries)
{
    Chip chip(params1x1(), {relayCore()});
    chip.run(10);
    StatGroup g;
    chip.dumpStats("chip", g);
    EXPECT_EQ(g.get("chip.ticks"), 10.0);
    EXPECT_EQ(g.get("chip.cores"), 1.0);
    EXPECT_GE(g.get("chip.energy.powerW"), 0.0);
}

// --- engine/transport equivalence property ----------------------------------

/** Random multi-core chip model exercising all neuron classes. */
std::vector<CoreConfig>
randomChipModel(uint64_t seed, uint32_t w, uint32_t h)
{
    Xoshiro256 rng(seed);
    CoreGeometry g = smallGeom();
    std::vector<CoreConfig> cfgs;
    for (uint32_t cy = 0; cy < h; ++cy) {
        for (uint32_t cx = 0; cx < w; ++cx) {
            CoreConfig cfg = CoreConfig::make(g);
            cfg.rngSeed = static_cast<uint16_t>(rng.below(65536));
            for (uint32_t a = 0; a < g.numAxons; ++a) {
                cfg.axonType[a] = static_cast<uint8_t>(rng.below(4));
                for (uint32_t n = 0; n < g.numNeurons; ++n)
                    if (rng.chance(0.15))
                        cfg.connect(a, n);
            }
            for (uint32_t n = 0; n < g.numNeurons; ++n) {
                NeuronParams &p = cfg.neurons[n];
                for (unsigned t = 0; t < kNumAxonTypes; ++t) {
                    p.synWeight[t] =
                        static_cast<int16_t>(rng.range(-6, 6));
                    p.synStochastic[t] = rng.chance(0.15);
                }
                p.leak = static_cast<int16_t>(rng.range(-3, 3));
                p.leakReversal = rng.chance(0.15);
                p.leakStochastic = rng.chance(0.15);
                p.threshold = static_cast<int32_t>(rng.range(3, 25));
                p.negThreshold =
                    static_cast<int32_t>(rng.below(15));
                p.negSaturate = rng.chance(0.7);
                p.thresholdMaskBits = rng.chance(0.15)
                    ? static_cast<uint8_t>(rng.below(3)) : 0;
                p.resetMode = static_cast<ResetMode>(rng.below(3));
                p.resetPotential =
                    static_cast<int32_t>(rng.range(-4, 0));
                p.initialPotential =
                    static_cast<int32_t>(rng.range(-10, 10));

                NeuronDest &d = cfg.dests[n];
                double roll = rng.uniform();
                if (roll < 0.5) {
                    d.kind = NeuronDest::Kind::Core;
                    auto txx = static_cast<uint32_t>(rng.below(w));
                    auto tyy = static_cast<uint32_t>(rng.below(h));
                    d.dx = static_cast<int16_t>(
                        static_cast<int32_t>(txx) -
                        static_cast<int32_t>(cx));
                    d.dy = static_cast<int16_t>(
                        static_cast<int32_t>(tyy) -
                        static_cast<int32_t>(cy));
                    d.axon = static_cast<uint16_t>(
                        rng.below(g.numAxons));
                    d.delay = static_cast<uint8_t>(rng.range(1, 15));
                } else if (roll < 0.8) {
                    d.kind = NeuronDest::Kind::Output;
                    d.line = static_cast<uint32_t>(rng.below(64));
                }
            }
            cfgs.push_back(std::move(cfg));
        }
    }
    return cfgs;
}

class ChipEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(ChipEquivalence, EnginesAndTransportsAgree)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 15485863 + 3;
    const uint32_t w = 3, h = 2;
    auto model = randomChipModel(seed, w, h);

    struct Combo
    {
        EngineKind ek;
        NocModel nm;
    };
    const Combo combos[] = {
        {EngineKind::Clock, NocModel::Functional},
        {EngineKind::Event, NocModel::Functional},
        {EngineKind::Clock, NocModel::Cycle},
        {EngineKind::Event, NocModel::Cycle},
    };

    // Shared random input schedule.
    Xoshiro256 in_rng(seed ^ 0xF00D);
    const uint64_t ticks = 120;
    std::vector<std::vector<uint32_t>> inputs(ticks);
    for (uint64_t t = 0; t < ticks; ++t)
        for (uint32_t a = 0; a < 16; ++a)
            if (in_rng.chance(0.08))
                inputs[t].push_back(a);

    std::vector<std::vector<OutputSpike>> results;
    for (const Combo &combo : combos) {
        ChipParams p;
        p.width = w;
        p.height = h;
        p.coreGeom = smallGeom();
        p.engine = combo.ek;
        p.noc = combo.nm;
        Chip chip(p, model);
        for (uint64_t t = 0; t < ticks; ++t) {
            for (uint32_t a : inputs[t])
                chip.injectInput(
                    static_cast<uint32_t>((t + a) % (w * h)), a, t);
            chip.tick();
        }
        EXPECT_EQ(chip.counters().lateDeliveries, 0u);
        results.push_back(chip.outputs());
    }

    ASSERT_FALSE(results[0].empty()) << "degenerate: no spikes";
    for (size_t i = 1; i < results.size(); ++i)
        ASSERT_EQ(results[0], results[i])
            << "combo " << i << " diverged, seed " << seed;
    setQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChipEquivalence,
                         ::testing::Range(0, 30));

TEST(ChipDeterminism, SameSeedSameTrace)
{
    auto model = randomChipModel(42, 2, 2);
    std::vector<OutputSpike> first;
    for (int rep = 0; rep < 2; ++rep) {
        ChipParams p;
        p.width = 2;
        p.height = 2;
        p.coreGeom = smallGeom();
        Chip chip(p, model);
        for (uint64_t t = 0; t < 100; ++t) {
            chip.injectInput(static_cast<uint32_t>(t % 4),
                             static_cast<uint32_t>(t % 16), t);
            chip.tick();
        }
        if (rep == 0)
            first = chip.outputs();
        else
            EXPECT_EQ(first, chip.outputs());
    }
}

} // anonymous namespace
} // namespace nscs
