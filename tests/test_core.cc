/**
 * @file
 * Unit and property tests for the neurosynaptic core: crossbar,
 * scheduler, configuration, the tick pipeline and dense/sparse
 * evaluation equivalence.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/core.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace nscs {
namespace {

/** Small geometry keeps tests fast and readable. */
CoreGeometry
smallGeom()
{
    CoreGeometry g;
    g.numAxons = 16;
    g.numNeurons = 16;
    g.delaySlots = 16;
    return g;
}

CoreConfig
relayCore()
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    for (uint32_t n = 0; n < 16; ++n) {
        cfg.neurons[n].threshold = 1;
        cfg.connect(n, n);
    }
    return cfg;
}

// --- crossbar ----------------------------------------------------------------

TEST(Crossbar, ConnectivityAndDegrees)
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    cfg.connect(0, 1);
    cfg.connect(0, 3);
    cfg.connect(2, 3);
    Crossbar x(cfg.xbarRows, 16);
    EXPECT_TRUE(x.connected(0, 1));
    EXPECT_FALSE(x.connected(1, 0));
    EXPECT_EQ(x.synapseCount(), 3u);
    EXPECT_EQ(x.axonDegree(0), 2u);
    EXPECT_EQ(x.neuronFanIn(3), 2u);
    EXPECT_GT(x.footprintBytes(), 0u);
}

// --- scheduler -----------------------------------------------------------------

TEST(Scheduler, DepositDrainClear)
{
    Scheduler s(16, 16);
    EXPECT_TRUE(s.slotEmpty(5));
    EXPECT_FALSE(s.deposit(5, 3));
    EXPECT_FALSE(s.slotEmpty(5));
    EXPECT_TRUE(s.slot(5).test(3));
    // Same slot via wraparound tick.
    EXPECT_TRUE(s.slot(21).test(3));
    s.clearSlot(5);
    EXPECT_TRUE(s.slotEmpty(5));
}

TEST(Scheduler, CollisionsMerge)
{
    Scheduler s(16, 16);
    EXPECT_FALSE(s.deposit(2, 7));
    EXPECT_TRUE(s.deposit(2, 7));
    EXPECT_EQ(s.deposits(), 2u);
    EXPECT_EQ(s.collisions(), 1u);
    EXPECT_EQ(s.slot(2).count(), 1u);
}

TEST(Scheduler, SlotsAreIndependent)
{
    Scheduler s(16, 8);
    s.deposit(1, 0);
    s.deposit(2, 1);
    EXPECT_TRUE(s.slot(1).test(0));
    EXPECT_FALSE(s.slot(1).test(1));
    EXPECT_TRUE(s.slot(2).test(1));
}

// --- configuration -------------------------------------------------------------

TEST(CoreConfig, MakeSizesEverything)
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    EXPECT_EQ(cfg.axonType.size(), 16u);
    EXPECT_EQ(cfg.xbarRows.size(), 16u);
    EXPECT_EQ(cfg.neurons.size(), 16u);
    EXPECT_EQ(cfg.dests.size(), 16u);
    validateCoreConfig(cfg, "test");
}

TEST(CoreConfigDeath, ValidationCatchesBadDelay)
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    cfg.dests[0].kind = NeuronDest::Kind::Core;
    cfg.dests[0].delay = 16;  // == delaySlots
    EXPECT_EXIT(validateCoreConfig(cfg, "test"),
                ::testing::ExitedWithCode(1), "delay");
}

TEST(CoreConfigDeath, ValidationCatchesBadOffset)
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    cfg.dests[0].kind = NeuronDest::Kind::Core;
    cfg.dests[0].dx = 300;
    EXPECT_EXIT(validateCoreConfig(cfg, "test"),
                ::testing::ExitedWithCode(1), "packet range");
}

TEST(CoreConfig, JsonRoundTrip)
{
    CoreConfig cfg = relayCore();
    cfg.axonType[2] = 3;
    cfg.neurons[5].leak = -4;
    cfg.dests[1].kind = NeuronDest::Kind::Core;
    cfg.dests[1].dx = -2;
    cfg.dests[1].dy = 1;
    cfg.dests[1].axon = 9;
    cfg.dests[1].delay = 3;
    cfg.dests[2].kind = NeuronDest::Kind::Output;
    cfg.dests[2].line = 42;
    cfg.rngSeed = 0x5555;

    CoreConfig back = coreConfigFromJson(coreConfigToJson(cfg));
    EXPECT_EQ(back.geom, cfg.geom);
    EXPECT_EQ(back.axonType, cfg.axonType);
    EXPECT_EQ(back.xbarRows, cfg.xbarRows);
    EXPECT_EQ(back.neurons, cfg.neurons);
    EXPECT_EQ(back.dests, cfg.dests);
    EXPECT_EQ(back.rngSeed, cfg.rngSeed);
}

// --- core pipeline ---------------------------------------------------------------

TEST(Core, SingleSpikePropagates)
{
    Core core(relayCore());
    std::vector<uint32_t> fired;
    core.deposit(0, 4);  // axon 4 at tick 0
    core.tickDense(0, fired);
    EXPECT_EQ(fired, (std::vector<uint32_t>{4}));
    fired.clear();
    core.tickDense(1, fired);
    EXPECT_TRUE(fired.empty());
    EXPECT_EQ(core.counters().sops, 1u);
    EXPECT_EQ(core.counters().spikes, 1u);
}

TEST(Core, DelayedDeposit)
{
    Core core(relayCore());
    std::vector<uint32_t> fired;
    core.deposit(5, 2);
    for (uint64_t t = 0; t < 5; ++t) {
        core.tickDense(t, fired);
        EXPECT_TRUE(fired.empty()) << "premature fire at " << t;
    }
    core.tickDense(5, fired);
    EXPECT_EQ(fired, (std::vector<uint32_t>{2}));
}

TEST(Core, IntegrationIsAxonTyped)
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    cfg.axonType[0] = 0;
    cfg.axonType[1] = 1;
    cfg.neurons[0].synWeight = {3, -2, 0, 0};
    cfg.neurons[0].threshold = 100;
    cfg.connect(0, 0);
    cfg.connect(1, 0);
    Core core(cfg);
    std::vector<uint32_t> fired;
    core.deposit(0, 0);
    core.deposit(0, 1);
    core.tickDense(0, fired);
    EXPECT_EQ(core.potential(0), 1);  // +3 - 2
}

TEST(Core, ResetRestoresInitialState)
{
    Core core(relayCore());
    std::vector<uint32_t> fired;
    core.deposit(0, 1);
    core.tickDense(0, fired);
    EXPECT_EQ(core.counters().spikes, 1u);
    core.reset();
    EXPECT_EQ(core.counters().spikes, 0u);
    fired.clear();
    core.tickDense(0, fired);
    EXPECT_TRUE(fired.empty());
}

TEST(Core, InitialPotentialNormalisedAtReset)
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    cfg.neurons[0].negThreshold = 5;
    cfg.neurons[0].negSaturate = true;
    cfg.neurons[0].initialPotential = -50;
    cfg.neurons[0].threshold = 10;
    Core core(cfg);
    EXPECT_EQ(core.potential(0), -5);
}

TEST(CoreDeath, MixedStrategiesPanic)
{
    Core core(relayCore());
    std::vector<uint32_t> fired;
    core.tickDense(0, fired);
    EXPECT_DEATH(core.tickSparse(1, fired), "mixed");
}

TEST(Core, FootprintPositive)
{
    Core core(relayCore());
    EXPECT_GT(core.footprintBytes(), sizeof(Core));
}

// --- dense/sparse equivalence -------------------------------------------------

/**
 * Drive a sparse core per its contract: tick whenever the slot is
 * non-empty, a dense neuron exists, or a self-event is due.
 */
void
sparseContractTick(Core &core, uint64_t t, std::vector<uint32_t> &fired)
{
    bool must = core.hasDenseNeurons() || !core.slotEmpty(t);
    auto se = core.nextSelfEvent();
    if (se && *se <= t)
        must = true;
    if (must)
        core.tickSparse(t, fired);
}

/** Random core config exercising every neuron class. */
CoreConfig
randomConfig(uint64_t seed)
{
    Xoshiro256 rng(seed);
    CoreGeometry g;
    g.numAxons = 24;
    g.numNeurons = 24;
    g.delaySlots = 16;
    CoreConfig cfg = CoreConfig::make(g);
    cfg.rngSeed = static_cast<uint16_t>(rng.below(65536));

    for (uint32_t a = 0; a < g.numAxons; ++a) {
        cfg.axonType[a] = static_cast<uint8_t>(rng.below(4));
        for (uint32_t n = 0; n < g.numNeurons; ++n)
            if (rng.chance(0.2))
                cfg.connect(a, n);
    }
    for (uint32_t n = 0; n < g.numNeurons; ++n) {
        NeuronParams &p = cfg.neurons[n];
        for (unsigned w = 0; w < kNumAxonTypes; ++w) {
            p.synWeight[w] = static_cast<int16_t>(rng.range(-8, 8));
            p.synStochastic[w] = rng.chance(0.2);
        }
        p.leak = static_cast<int16_t>(rng.range(-4, 4));
        p.leakReversal = rng.chance(0.2);
        p.leakStochastic = rng.chance(0.2);
        p.threshold = static_cast<int32_t>(rng.range(2, 30));
        p.negThreshold = static_cast<int32_t>(rng.below(20));
        p.negSaturate = rng.chance(0.7);
        p.thresholdMaskBits =
            rng.chance(0.2) ? static_cast<uint8_t>(rng.below(4)) : 0;
        p.resetMode = static_cast<ResetMode>(rng.below(3));
        p.resetPotential = static_cast<int32_t>(rng.range(-5, 1));
        p.initialPotential = static_cast<int32_t>(rng.range(-30, 20));
    }
    return cfg;
}

class CoreEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(CoreEquivalence, DenseAndSparseProduceIdenticalSpikes)
{
    setQuiet(true);
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 1299709 + 17;
    CoreConfig cfg = randomConfig(seed);
    Core dense(cfg);
    Core sparse(cfg);

    Xoshiro256 input_rng(seed ^ 0xABCDEF);
    const uint64_t ticks = 300;
    std::map<uint64_t, std::vector<uint32_t>> inputs;
    for (uint64_t t = 0; t < ticks; ++t)
        for (uint32_t a = 0; a < cfg.geom.numAxons; ++a)
            if (input_rng.chance(0.05))
                inputs[t].push_back(a);

    std::vector<uint32_t> fired_d, fired_s;
    for (uint64_t t = 0; t < ticks; ++t) {
        auto it = inputs.find(t);
        if (it != inputs.end()) {
            for (uint32_t a : it->second) {
                dense.deposit(t, a);
                sparse.deposit(t, a);
            }
        }
        fired_d.clear();
        fired_s.clear();
        dense.tickDense(t, fired_d);
        sparseContractTick(sparse, t, fired_s);
        ASSERT_EQ(fired_d, fired_s) << "tick " << t << " seed " << seed;
    }

    // Architectural counters match; simulation effort may not.
    EXPECT_EQ(dense.counters().sops, sparse.counters().sops);
    EXPECT_EQ(dense.counters().spikes, sparse.counters().spikes);
    EXPECT_EQ(dense.counters().rngDraws, sparse.counters().rngDraws);
    EXPECT_GE(dense.counters().evals, sparse.counters().evals);
    setQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoreEquivalence,
                         ::testing::Range(0, 40));

TEST(CoreSparse, SkipsWorkOnQuietCores)
{
    // A purely reactive core (Pure neurons only) evaluates nothing
    // on silent ticks.
    Core core(relayCore());
    std::vector<uint32_t> fired;
    for (uint64_t t = 0; t < 100; ++t)
        sparseContractTick(core, t, fired);
    EXPECT_EQ(core.counters().evals, 0u);
    EXPECT_TRUE(fired.empty());

    core.deposit(100, 3);
    sparseContractTick(core, 100, fired);
    EXPECT_EQ(fired, (std::vector<uint32_t>{3}));
    EXPECT_EQ(core.counters().evals, 1u);
}

TEST(CoreSparse, PacemakerSelfEventsFire)
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    cfg.neurons[7].leak = 2;
    cfg.neurons[7].threshold = 16;
    Core core(cfg);

    std::vector<uint32_t> fired;
    std::vector<uint64_t> spike_ticks;
    for (uint64_t t = 0; t < 50; ++t) {
        fired.clear();
        sparseContractTick(core, t, fired);
        for (uint32_t n : fired) {
            EXPECT_EQ(n, 7u);
            spike_ticks.push_back(t);
        }
    }
    ASSERT_GE(spike_ticks.size(), 5u);
    EXPECT_EQ(spike_ticks[0], 7u);
    for (size_t i = 1; i < spike_ticks.size(); ++i)
        EXPECT_EQ(spike_ticks[i] - spike_ticks[i - 1], 8u);
    // Evaluations only at the firing ticks.
    EXPECT_EQ(core.counters().evals, spike_ticks.size());
}

TEST(CoreSparse, SettledPotentialProjectsLeak)
{
    CoreConfig cfg = CoreConfig::make(smallGeom());
    cfg.neurons[0].leak = -2;
    cfg.neurons[0].threshold = 100;
    cfg.neurons[0].initialPotential = 50;
    cfg.neurons[0].negSaturate = true;
    cfg.neurons[0].negThreshold = 0;
    Core core(cfg);

    std::vector<uint32_t> fired;
    core.deposit(0, 0);  // axon 0 unconnected: just forces a tick
    core.tickSparse(0, fired);
    // After tick 0 the neuron decayed once (if evaluated) or is
    // projected: settled value at t=10 is 50 - 2*10 = 30.
    EXPECT_EQ(core.settledPotential(0, 10), 30);
}

} // anonymous namespace
} // namespace nscs
