/**
 * @file
 * Unit tests for the energy/power model as a pure function: the
 * decomposition identity, linearity in event counts, calibration
 * anchors at the published operating points, and the stat dump.
 */

#include <gtest/gtest.h>

#include "chip/energy.hh"

namespace nscs {
namespace {

EnergyEvents
nominal4096()
{
    // The published nominal point: 64x64 cores, 1 M neurons at
    // 20 Hz mean rate, 128 synaptic events per spike, over 1 s.
    EnergyEvents e;
    e.ticks = 1000;
    e.cores = 4096;
    e.neurons = 1048576;
    e.spikes = e.neurons * 20 / 1000 * e.ticks;  // 20 Hz
    e.sops = e.spikes * 128;
    e.hops = e.spikes * 8;  // typical mean path
    return e;
}

TEST(EnergyModel, DecompositionIdentity)
{
    EnergyEvents e = nominal4096();
    EnergyParams p;
    EnergyBreakdown b = computeEnergy(e, p);
    EXPECT_NEAR(b.totalJ(),
                b.leakageJ + b.sopJ + b.neuronJ + b.spikeJ + b.hopJ,
                1e-15);
    EXPECT_GT(b.leakageJ, 0.0);
    EXPECT_GT(b.sopJ, 0.0);
}

TEST(EnergyModel, LinearInEventCounts)
{
    EnergyEvents e = nominal4096();
    EnergyParams p;
    EnergyBreakdown b1 = computeEnergy(e, p);

    EnergyEvents e2 = e;
    e2.sops *= 2;
    e2.spikes *= 2;
    e2.hops *= 2;
    EnergyBreakdown b2 = computeEnergy(e2, p);
    EXPECT_NEAR(b2.sopJ, 2 * b1.sopJ, 1e-12);
    EXPECT_NEAR(b2.spikeJ, 2 * b1.spikeJ, 1e-12);
    EXPECT_NEAR(b2.hopJ, 2 * b1.hopJ, 1e-12);
    // Static terms unchanged.
    EXPECT_DOUBLE_EQ(b2.leakageJ, b1.leakageJ);
    EXPECT_DOUBLE_EQ(b2.neuronJ, b1.neuronJ);
}

TEST(EnergyModel, CalibrationAnchors)
{
    // The defaults must land in the published bands at the nominal
    // point: leakage floor 20-35 mW, total power 40-90 mW,
    // effective energy 15-40 pJ/SOP.
    EnergyEvents e = nominal4096();
    EnergyParams p;
    EnergyBreakdown b = computeEnergy(e, p);
    double power = averagePowerW(b, e, p);
    EXPECT_GT(power, 0.040);
    EXPECT_LT(power, 0.090);

    EnergyEvents idle = e;
    idle.sops = idle.spikes = idle.hops = 0;
    EnergyBreakdown ib = computeEnergy(idle, p);
    double floor = averagePowerW(ib, idle, p);
    EXPECT_GT(floor, 0.020);
    EXPECT_LT(floor, 0.035);

    double pj = energyPerSopJ(b, e) * 1e12;
    EXPECT_GT(pj, 15.0);
    EXPECT_LT(pj, 40.0);
}

TEST(EnergyModel, ZeroWindowAndZeroSops)
{
    EnergyEvents e;  // everything zero
    EnergyParams p;
    EnergyBreakdown b = computeEnergy(e, p);
    EXPECT_DOUBLE_EQ(b.totalJ(), 0.0);
    EXPECT_DOUBLE_EQ(averagePowerW(b, e, p), 0.0);
    EXPECT_DOUBLE_EQ(energyPerSopJ(b, e), 0.0);
}

TEST(EnergyModel, PowerScalesWithTickDuration)
{
    // Halving the real-time tick duration doubles power for the
    // same event counts (energy fixed, window halved) apart from
    // the time-proportional static terms.
    EnergyEvents e = nominal4096();
    EnergyParams fast;
    fast.tickSeconds = 0.5e-3;
    EnergyParams slow;
    slow.tickSeconds = 1e-3;
    EnergyBreakdown bf = computeEnergy(e, fast);
    EnergyBreakdown bs = computeEnergy(e, slow);
    // Static leakage energy halves with the window...
    EXPECT_NEAR(bf.leakageJ, bs.leakageJ / 2, 1e-12);
    // ...while event energies are window-independent.
    EXPECT_DOUBLE_EQ(bf.sopJ, bs.sopJ);
}

TEST(EnergyModel, StatsDumpHasAllComponents)
{
    EnergyEvents e = nominal4096();
    EnergyParams p;
    EnergyBreakdown b = computeEnergy(e, p);
    StatGroup g;
    energyStats(b, e, p, "en", g);
    EXPECT_GT(g.get("en.leakageJ"), 0.0);
    EXPECT_GT(g.get("en.sopJ"), 0.0);
    EXPECT_GT(g.get("en.totalJ"), 0.0);
    EXPECT_GT(g.get("en.powerW"), 0.0);
    EXPECT_GT(g.get("en.pJPerSop"), 0.0);
}

} // anonymous namespace
} // namespace nscs
