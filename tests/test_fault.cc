/**
 * @file
 * Fault injection and recovery tests.
 *
 * Three layers, one per tentpole claim:
 *
 *  - injection is deterministic: each fault class fires at its
 *    scheduled tick with the documented effect and the same degraded
 *    spike stream on Clock and Event engines;
 *  - the reliable link protocol masks transient link faults in place
 *    (retransmission recovers drops, sequence dedup discards echoes)
 *    with a spike stream bit-identical to the fault-free run;
 *  - checkpoint rollback masks transient faults that protocol can't
 *    (SEUs, faults on unprotected links): the recovered run is
 *    bit-identical to the fault-free run, and the recovery counters
 *    account for every rollback and replayed tick.
 *
 * All workloads are deterministic, so every assertion — including
 * "the degraded stream differs" — is exact, not statistical.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "bench/workload.hh"
#include "runtime/fault.hh"
#include "runtime/simulator.hh"

namespace nscs {
namespace {

/**
 * The cortical workload with every third neuron re-aimed at an
 * output line (as in test_board.cc).  Core-bound destinations keep a
 * delay of at least @p min_delay ticks so a one-tick retransmission
 * still lands before the delivery tick (late-delivery wrap would
 * otherwise make "retry masks the drop" timing-dependent).
 */
bench::CorticalWorkload
tappedWorkload(uint32_t grid_w, uint32_t grid_h, uint64_t seed,
               uint8_t min_delay = 1)
{
    bench::CorticalParams wp;
    wp.gridW = grid_w;
    wp.gridH = grid_h;
    wp.density = 32;
    wp.ratePerTick = 0.05;
    wp.seed = seed;
    bench::CorticalWorkload w = bench::makeCortical(wp);
    const uint32_t neurons = CoreGeometry{}.numNeurons;
    for (uint32_t c = 0; c < w.cores.size(); ++c) {
        for (uint32_t n = 0; n < neurons; ++n) {
            NeuronDest &d = w.cores[c].dests[n];
            if (n % 3 == 0) {
                d = NeuronDest{};
                d.kind = NeuronDest::Kind::Output;
                d.line = c * neurons + n;
            } else if (d.delay < min_delay) {
                d.delay = min_delay;
            }
        }
    }
    return w;
}

std::shared_ptr<const FaultPlan>
planOf(std::vector<FaultEvent> events)
{
    FaultPlan plan;
    plan.events = std::move(events);
    for (size_t i = 0; i < plan.events.size(); ++i)
        plan.events[i].id = static_cast<uint32_t>(i);
    return std::make_shared<const FaultPlan>(std::move(plan));
}

std::unique_ptr<Simulator>
chipSim(const bench::CorticalWorkload &w, EngineKind engine,
        std::shared_ptr<const FaultPlan> plan = nullptr)
{
    return bench::makeCorticalSim(w, engine, NocModel::Functional, 0,
                                  std::move(plan));
}

std::unique_ptr<Simulator>
boardSim(const bench::CorticalWorkload &w, uint32_t bw, uint32_t bh,
         LinkParams link,
         std::shared_ptr<const FaultPlan> plan = nullptr)
{
    return bench::makeCorticalBoardSim(w, EngineKind::Event, bw, bh, 0,
                                       link, 0, std::move(plan));
}

// ---------------------------------------------------------------------------
// Core-level fault classes
// ---------------------------------------------------------------------------

TEST(FaultInject, DeadCoreSilencesItsOutputsFromTheEventTick)
{
    const uint64_t ticks = 30, killAt = 5;
    const uint32_t neurons = CoreGeometry{}.numNeurons;
    bench::CorticalWorkload w = tappedWorkload(2, 2, 7);

    auto ref = chipSim(w, EngineKind::Clock);
    ref->run(ticks);

    FaultEvent kill;
    kill.kind = FaultKind::DeadCore;
    kill.tick = killAt;
    kill.core = 0;
    auto faulty = chipSim(w, EngineKind::Clock, planOf({kill}));
    faulty->run(ticks);

    EXPECT_EQ(faulty->chip().faultStats().deadCores, 1u);
    EXPECT_TRUE(faulty->chip().coreDead(0));

    // Core 0's output lines live below `neurons`; the fault-free run
    // keeps firing them past the kill tick, the faulty run goes
    // silent from the kill tick on.
    auto lateCore0 = [&](const Simulator &sim) {
        uint64_t n = 0;
        for (const OutputSpike &s : sim.recorder().spikes())
            if (s.line < neurons && s.tick >= killAt)
                ++n;
        return n;
    };
    EXPECT_GT(lateCore0(*ref), 0u);
    EXPECT_EQ(lateCore0(*faulty), 0u);

    // The degraded run is still deterministic across engines.
    auto faultyEvent = chipSim(w, EngineKind::Event, planOf({kill}));
    faultyEvent->run(ticks);
    EXPECT_EQ(faultyEvent->recorder().spikes(),
              faulty->recorder().spikes());
}

TEST(FaultInject, StuckWordPerturbsTheCrossbar)
{
    const uint64_t ticks = 60;
    bench::CorticalWorkload w = tappedWorkload(2, 2, 9);

    auto ref = chipSim(w, EngineKind::Event);
    ref->run(ticks);

    // Freeze word 0 of driven axon 0's row on core 0 to all-ones:
    // neurons 32..63 gain synapses the workload never configured.
    FaultEvent stuck;
    stuck.kind = FaultKind::StuckWord;
    stuck.tick = 1;
    stuck.core = 0;
    stuck.axon = 0;
    stuck.word = 0;
    stuck.bits = ~0ull;
    auto faulty = chipSim(w, EngineKind::Event, planOf({stuck}));
    faulty->run(ticks);

    EXPECT_EQ(faulty->chip().faultStats().stuckWords, 1u);
    EXPECT_NE(faulty->chip().energyEvents().sops,
              ref->chip().energyEvents().sops);
}

TEST(FaultInject, ChipPlanRejectsLinkFaults)
{
    bench::CorticalWorkload w = tappedWorkload(2, 2, 7);
    FaultEvent drop;
    drop.kind = FaultKind::LinkDrop;
    drop.tick = 3;
    EXPECT_DEATH((void)chipSim(w, EngineKind::Event, planOf({drop})),
                 "link fault");
}

// ---------------------------------------------------------------------------
// Checkpoint rollback (SEU recovery)
// ---------------------------------------------------------------------------

TEST(FaultRecovery, SeuRollbackIsBitIdenticalToFaultFree)
{
    const uint64_t ticks = 40;
    bench::CorticalWorkload w = tappedWorkload(2, 2, 11);

    auto ref = chipSim(w, EngineKind::Event);
    ref->run(ticks);

    FaultEvent seu;
    seu.kind = FaultKind::PotentialFlip;
    seu.tick = 17;
    seu.core = 2;
    seu.neuron = 5;
    seu.bit = 12;
    seu.transient = true;
    auto faulty = chipSim(w, EngineKind::Event, planOf({seu}));
    faulty->setCheckpointInterval(10);
    faulty->run(ticks);

    // The upset alarms after tick 17, rolls back to the tick-10
    // checkpoint and replays with the flip suppressed: the transient
    // leaves no trace in the spike record.
    EXPECT_EQ(faulty->recorder().spikes(), ref->recorder().spikes());
    const RecoveryStats &rs = faulty->recoveryStats();
    EXPECT_EQ(rs.rollbacks, 1u);
    EXPECT_EQ(rs.checkpoints, 4u);  // ticks 0, 10, 20, 30
    EXPECT_EQ(rs.replayedTicks, 8u);  // detected at 18, rolled to 10
    EXPECT_EQ(rs.lastRecoveryLatencyTicks, 8u);
    EXPECT_EQ(rs.maxRecoveryLatencyTicks, 8u);
    EXPECT_EQ(rs.unrecoveredAlarms, 0u);
}

TEST(FaultRecovery, SeuWithoutCheckpointGoesUnrecovered)
{
    const uint64_t ticks = 40;
    bench::CorticalWorkload w = tappedWorkload(2, 2, 11);

    FaultEvent seu;
    seu.kind = FaultKind::PotentialFlip;
    seu.tick = 17;
    seu.core = 2;
    seu.neuron = 5;
    seu.bit = 12;
    seu.transient = true;
    auto faulty = chipSim(w, EngineKind::Event, planOf({seu}));
    faulty->run(ticks);  // no checkpoint interval set

    const RecoveryStats &rs = faulty->recoveryStats();
    EXPECT_EQ(rs.rollbacks, 0u);
    EXPECT_EQ(rs.unrecoveredAlarms, 1u);
    EXPECT_EQ(faulty->chip().faultStats().seuFlips, 1u);
    EXPECT_EQ(faulty->chip().faultStats().alarms, 1u);
}

// ---------------------------------------------------------------------------
// Link protocol (reliable links mask faults without rollback)
// ---------------------------------------------------------------------------

TEST(FaultLink, ReliableLinkRetransmitsDroppedPackets)
{
    const uint64_t ticks = 30;
    // min_delay 3: a one-tick retransmission still beats the
    // delivery tick, so recovery is invisible in the spike record.
    bench::CorticalWorkload w = tappedWorkload(4, 2, 13, 3);

    LinkParams link;
    link.reliable = true;
    auto ref = boardSim(w, 2, 1, link);
    ref->run(ticks);

    // The integrators take ~16 ticks to reach threshold, so the
    // window sits in steady state.  Width 2 < maxRetries keeps every
    // retransmission chain within budget: a packet dropped at 20 and
    // 21 passes on its second retry at 22, two ticks after its fire
    // tick — still before its min_delay-3 delivery tick.
    FaultEvent drop;
    drop.kind = FaultKind::LinkDrop;
    drop.tick = 20;
    drop.untilTick = 22;
    drop.chip = 0;
    drop.dir = 0;  // East: the only chip0 -> chip1 link on a 2x1 board
    drop.transient = true;
    auto faulty = boardSim(w, 2, 1, link, planOf({drop}));
    faulty->run(ticks);

    const FaultStats &fs = faulty->board().faultStats();
    EXPECT_GT(fs.linkDrops, 0u);
    EXPECT_GT(fs.retries, 0u);
    EXPECT_EQ(fs.unrecoveredDrops, 0u);
    EXPECT_EQ(fs.alarms, 0u);  // protocol recovered; no rollback path
    EXPECT_EQ(faulty->recoveryStats().rollbacks, 0u);
    EXPECT_EQ(faulty->recorder().spikes(), ref->recorder().spikes());
}

TEST(FaultLink, ReliableLinkDedupsDuplicatedPackets)
{
    const uint64_t ticks = 30;
    bench::CorticalWorkload w = tappedWorkload(4, 2, 15);

    LinkParams link;
    link.reliable = true;
    auto ref = boardSim(w, 2, 1, link);
    ref->run(ticks);

    FaultEvent dup;
    dup.kind = FaultKind::LinkDuplicate;
    dup.tick = 6;
    dup.untilTick = 10;
    dup.chip = 0;
    dup.dir = 0;
    dup.transient = true;
    auto faulty = boardSim(w, 2, 1, link, planOf({dup}));
    faulty->run(ticks);

    const FaultStats &fs = faulty->board().faultStats();
    EXPECT_GT(fs.linkDups, 0u);
    EXPECT_EQ(fs.dupsDropped, fs.linkDups);  // every echo discarded
    EXPECT_EQ(faulty->recoveryStats().rollbacks, 0u);
    EXPECT_EQ(faulty->recorder().spikes(), ref->recorder().spikes());
}

// ---------------------------------------------------------------------------
// Checkpoint rollback on unprotected links
// ---------------------------------------------------------------------------

TEST(FaultRecovery, UnprotectedLinkDropRollsBackBitIdentical)
{
    const uint64_t ticks = 30;
    bench::CorticalWorkload w = tappedWorkload(4, 2, 17);

    LinkParams link;  // unreliable: drops alarm instead of retrying
    auto ref = boardSim(w, 2, 1, link);
    ref->run(ticks);

    FaultEvent drop;
    drop.kind = FaultKind::LinkDrop;
    drop.tick = 18;  // steady state: the link carries traffic by now
    drop.untilTick = 20;
    drop.chip = 0;
    drop.dir = 0;
    drop.transient = true;
    auto faulty = boardSim(w, 2, 1, link, planOf({drop}));
    faulty->setCheckpointInterval(5);
    faulty->run(ticks);

    EXPECT_GE(faulty->recoveryStats().rollbacks, 1u);
    EXPECT_EQ(faulty->recoveryStats().unrecoveredAlarms, 0u);
    EXPECT_EQ(faulty->recorder().spikes(), ref->recorder().spikes());
}

TEST(FaultRecovery, UnprotectedLinkDuplicateRollsBackBitIdentical)
{
    const uint64_t ticks = 30;
    bench::CorticalWorkload w = tappedWorkload(4, 2, 19);

    LinkParams link;
    auto ref = boardSim(w, 2, 1, link);
    ref->run(ticks);

    FaultEvent dup;
    dup.kind = FaultKind::LinkDuplicate;
    dup.tick = 18;  // steady state: the link carries traffic by now
    dup.untilTick = 21;
    dup.chip = 0;
    dup.dir = 0;
    dup.transient = true;
    auto faulty = boardSim(w, 2, 1, link, planOf({dup}));
    faulty->setCheckpointInterval(5);
    faulty->run(ticks);

    EXPECT_GE(faulty->recoveryStats().rollbacks, 1u);
    EXPECT_EQ(faulty->recorder().spikes(), ref->recorder().spikes());
}

// ---------------------------------------------------------------------------
// Link degradation without recovery semantics
// ---------------------------------------------------------------------------

TEST(FaultLink, LinkDelayParksPackets)
{
    const uint64_t ticks = 30;
    bench::CorticalWorkload w = tappedWorkload(4, 2, 21);

    FaultEvent slow;
    slow.kind = FaultKind::LinkDelay;
    slow.tick = 5;
    slow.untilTick = 12;
    slow.chip = 0;
    slow.dir = 0;
    slow.delayTicks = 3;
    auto faulty = boardSim(w, 2, 1, LinkParams{}, planOf({slow}));
    faulty->run(ticks);

    EXPECT_GT(faulty->board().faultStats().linkDelays, 0u);
    EXPECT_EQ(faulty->board().faultStats().alarms, 0u);  // permanent
}

TEST(FaultLink, DeadLinkReroutesWithoutChangingTheSpikeStream)
{
    const uint64_t ticks = 30;
    bench::CorticalWorkload w = tappedWorkload(4, 4, 23);

    auto ref = boardSim(w, 2, 2, LinkParams{});
    ref->run(ticks);

    // Kill chip0's eastbound link before the first tick: chip0 ->
    // chip1 traffic detours north, east, then south.  With an
    // unconstrained link every hop stays cut-through, so the detour
    // changes hop counts but not the spike stream.
    FaultEvent dead;
    dead.kind = FaultKind::DeadLink;
    dead.tick = 0;
    dead.chip = 0;
    dead.dir = 0;
    auto faulty = boardSim(w, 2, 2, LinkParams{}, planOf({dead}));
    faulty->run(ticks);

    const FaultStats &fs = faulty->board().faultStats();
    EXPECT_EQ(fs.deadLinks, 1u);
    EXPECT_TRUE(faulty->board().linkDead(0 * 4 + 0));
    EXPECT_GT(fs.detours, 0u);
    EXPECT_EQ(fs.detourDrops, 0u);
    EXPECT_EQ(faulty->recorder().spikes(), ref->recorder().spikes());
}

TEST(FaultLink, DeadLinkWithNoAlternatePathDropsPackets)
{
    const uint64_t ticks = 30;
    bench::CorticalWorkload w = tappedWorkload(4, 2, 25);

    // On a 2x1 board there is no detour around the single east link.
    FaultEvent dead;
    dead.kind = FaultKind::DeadLink;
    dead.tick = 0;
    dead.chip = 0;
    dead.dir = 0;
    auto faulty = boardSim(w, 2, 1, LinkParams{}, planOf({dead}));
    faulty->run(ticks);

    const FaultStats &fs = faulty->board().faultStats();
    EXPECT_GT(fs.detourDrops, 0u);
    EXPECT_GT(fs.unrecoveredDrops, 0u);
}

TEST(FaultInject, BoardPlanSlicesGlobalCoreIndices)
{
    const uint64_t ticks = 20;
    bench::CorticalWorkload w = tappedWorkload(4, 4, 27);

    // Global core 9 on the 4x4 grid = (x 1, y 2) -> chip (0, 1) of a
    // 2x2 board, local core (x 1, y 0).
    FaultEvent kill;
    kill.kind = FaultKind::DeadCore;
    kill.tick = 2;
    kill.core = 9;
    auto faulty = boardSim(w, 2, 2, LinkParams{}, planOf({kill}));
    faulty->run(ticks);

    EXPECT_EQ(faulty->board().faultStats().deadCores, 1u);
    EXPECT_TRUE(faulty->board().chip(2).coreDead(1));
}

// ---------------------------------------------------------------------------
// Plans: serialization, generation, accounting
// ---------------------------------------------------------------------------

TEST(FaultPlanIo, JsonRoundTripPreservesEveryEvent)
{
    FaultCampaignSpec spec;
    spec.ticks = 50;
    spec.numCores = 16;
    spec.boardW = 2;
    spec.boardH = 2;
    spec.nDeadCore = 2;
    spec.nStuckWord = 2;
    spec.nSeu = 3;
    spec.nLinkDrop = 2;
    spec.nLinkDup = 1;
    spec.nLinkDelay = 1;
    spec.nDeadLink = 1;
    FaultPlan plan = makeRandomFaultPlan(spec, 31);
    ASSERT_EQ(plan.events.size(), 12u);

    FaultPlan back;
    std::string err;
    ASSERT_TRUE(FaultPlan::fromJson(plan.toJson(), back, err)) << err;
    EXPECT_EQ(back.events, plan.events);

    // Same (spec, seed) regenerates the identical plan.
    EXPECT_EQ(makeRandomFaultPlan(spec, 31).events, plan.events);
}

TEST(FaultPlanIo, FileRoundTripAndRejection)
{
    FaultCampaignSpec spec;
    spec.nSeu = 2;
    spec.nLinkDrop = 1;
    FaultPlan plan = makeRandomFaultPlan(spec, 5);
    const std::string path = testing::TempDir() + "nscs_plan.json";
    ASSERT_TRUE(saveFaultPlan(path, plan));

    FaultPlan back;
    std::string err;
    ASSERT_TRUE(loadFaultPlan(path, back, err)) << err;
    EXPECT_EQ(back.events, plan.events);

    EXPECT_FALSE(loadFaultPlan(testing::TempDir() + "no_plan.json",
                               back, err));
    EXPECT_FALSE(err.empty());

    JsonValue doc = plan.toJson();
    doc.set("version", JsonValue::integer(99));
    EXPECT_FALSE(FaultPlan::fromJson(doc, back, err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(FaultFootprint, PlansAndCheckpointsAreAccounted)
{
    bench::CorticalWorkload w = tappedWorkload(2, 2, 29);

    FaultCampaignSpec spec;
    spec.numCores = 4;
    spec.nSeu = 8;
    auto plan = std::make_shared<const FaultPlan>(
        makeRandomFaultPlan(spec, 3));
    auto bare = chipSim(w, EngineKind::Event);
    auto loaded = chipSim(w, EngineKind::Event, plan);
    EXPECT_GT(loaded->chip().footprintBytes(),
              bare->chip().footprintBytes());

    // A checkpointed run holds the snapshot blob, and the footprint
    // says so.
    size_t before = bare->footprintBytes();
    bare->setCheckpointInterval(5);
    bare->run(10);
    EXPECT_GT(bare->footprintBytes(), before);
}

} // anonymous namespace
} // namespace nscs
