/**
 * @file
 * Instance-batching differential tests: B replica lanes through one
 * shared crossbar must be bit-identical, per lane, to B independent
 * single-instance runs with the same per-lane sources — across
 * {Clock, Event} x {serial, parallel} x {Chip, Board} for
 * B in {2, 8}.  Also covers the uneven last batch in the classifier
 * front-end, per-instance fault isolation, snapshot lane-mismatch
 * rejection, the schedule source's tail sort and the offset-mask
 * encoder the batch scheduler builds on.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/classifier.hh"
#include "apps/dataset.hh"
#include "apps/encoder.hh"
#include "apps/trainer.hh"
#include "bench/workload.hh"
#include "runtime/snapshot.hh"

namespace nscs {
namespace {

/**
 * The cortical bench workload with every third neuron re-aimed at an
 * off-chip output line so per-lane spike streams are observable.
 */
bench::CorticalWorkload
tappedWorkload(uint32_t side, uint64_t seed)
{
    bench::CorticalParams wp;
    wp.gridW = wp.gridH = side;
    wp.density = 32;
    wp.ratePerTick = 0.05;
    wp.seed = seed;
    bench::CorticalWorkload w = bench::makeCortical(wp);
    const uint32_t neurons = CoreGeometry{}.numNeurons;
    for (uint32_t c = 0; c < w.cores.size(); ++c) {
        for (uint32_t n = 0; n < neurons; n += 3) {
            NeuronDest &d = w.cores[c].dests[n];
            d = NeuronDest{};
            d.kind = NeuronDest::Kind::Output;
            d.line = c * neurons + n;
        }
    }
    return w;
}

/** Distinct deterministic Poisson stream per lane. */
uint64_t
laneSeed(uint64_t base, uint32_t lane)
{
    return base ^ (0xD1CEull + 0x9E3779B97F4A7C15ull * (lane + 1));
}

/**
 * Simulator over @p w with @p lanes instance lanes, as a standalone
 * chip or a 2x1 board of half-width chips, serial or parallel.  No
 * sources attached — callers bind one per lane.
 */
std::unique_ptr<Simulator>
makeSim(const bench::CorticalWorkload &w, EngineKind engine,
        uint32_t threads, bool board, uint32_t lanes,
        std::shared_ptr<const FaultPlan> fault_plan = nullptr)
{
    if (board) {
        BoardParams bp;
        bp.width = 2;
        bp.height = 1;
        bp.chip.width = w.params.gridW / 2;
        bp.chip.height = w.params.gridH;
        bp.chip.coreGeom = CoreGeometry{};
        bp.chip.engine = engine;
        bp.chip.instances = lanes;
        bp.threads = threads;
        bp.faultPlan = std::move(fault_plan);
        return std::make_unique<Simulator>(bp, w.cores);
    }
    ChipParams cp;
    cp.width = w.params.gridW;
    cp.height = w.params.gridH;
    cp.coreGeom = CoreGeometry{};
    cp.engine = engine;
    cp.threads = threads;
    cp.instances = lanes;
    cp.faultPlan = std::move(fault_plan);
    return std::make_unique<Simulator>(cp, w.cores);
}

void
addLaneSource(Simulator &sim, const bench::CorticalWorkload &w,
              uint32_t lane, uint32_t bind_to)
{
    sim.addSource(std::make_unique<PoissonSource>(
                      w.drivenAxons, w.params.ratePerTick,
                      laneSeed(w.params.seed, lane)),
                  bind_to);
}

/** Lane @p lane's spikes in record order, instance field zeroed so
 *  the stream compares against a single-instance run's. */
std::vector<OutputSpike>
laneStream(const std::vector<OutputSpike> &all, uint32_t lane)
{
    std::vector<OutputSpike> out;
    for (OutputSpike s : all) {
        if (s.instance != lane)
            continue;
        s.instance = 0;
        out.push_back(s);
    }
    return out;
}

/**
 * The core differential: one B-lane batched run vs B independent
 * single-instance runs, each fed that lane's source stream.
 */
void
runDifferential(uint32_t lanes, EngineKind engine, uint32_t threads,
                bool board, uint64_t seed = 17)
{
    const uint64_t kTicks = 40;
    bench::CorticalWorkload w = tappedWorkload(2, seed);

    auto batched = makeSim(w, engine, threads, board, lanes);
    for (uint32_t i = 0; i < lanes; ++i)
        addLaneSource(*batched, w, i, i);
    batched->run(kTicks);
    const std::vector<OutputSpike> &all =
        batched->recorder().spikes();
    ASSERT_FALSE(all.empty());
    // Distinct per-lane seeds must yield distinct streams, or the
    // per-lane comparison below proves nothing.
    ASSERT_NE(laneStream(all, 0), laneStream(all, 1));

    for (uint32_t i = 0; i < lanes; ++i) {
        auto single = makeSim(w, engine, threads, board, 1);
        addLaneSource(*single, w, i, 0);
        single->run(kTicks);
        EXPECT_EQ(laneStream(all, i), single->recorder().spikes())
            << "lane " << i << " engine " << static_cast<int>(engine)
            << " threads " << threads << " board " << board;
    }
}

TEST(InstanceBatch, BitIdenticalChipSerial)
{
    for (uint32_t lanes : {2u, 8u})
        for (EngineKind ek : {EngineKind::Clock, EngineKind::Event})
            runDifferential(lanes, ek, 0, false);
}

TEST(InstanceBatch, BitIdenticalChipParallel)
{
    for (uint32_t lanes : {2u, 8u})
        for (EngineKind ek : {EngineKind::Clock, EngineKind::Event})
            runDifferential(lanes, ek, 4, false);
}

TEST(InstanceBatch, BitIdenticalBoardSerial)
{
    for (uint32_t lanes : {2u, 8u})
        for (EngineKind ek : {EngineKind::Clock, EngineKind::Event})
            runDifferential(lanes, ek, 0, true);
}

TEST(InstanceBatch, BitIdenticalBoardParallel)
{
    for (uint32_t lanes : {2u, 8u})
        for (EngineKind ek : {EngineKind::Clock, EngineKind::Event})
            runDifferential(lanes, ek, 4, true);
}

TEST(InstanceBatch, BitIdenticalAcrossSeeds)
{
    // A second seed on the cheapest configuration guards against the
    // matrix above passing by coincidence of one input pattern.
    runDifferential(2, EngineKind::Event, 0, false, 103);
}

// ---------------------------------------------------------------------------
// Per-instance fault isolation
// ---------------------------------------------------------------------------

TEST(InstanceBatch, PotentialFlipStaysOnItsLane)
{
    const uint64_t kTicks = 40;
    const uint32_t kLanes = 4;
    bench::CorticalWorkload w = tappedWorkload(2, 29);

    auto clean = makeSim(w, EngineKind::Event, 0, false, kLanes);
    for (uint32_t i = 0; i < kLanes; ++i)
        addLaneSource(*clean, w, i, i);
    clean->run(kTicks);

    // Neuron 6 is one of the output-tapped neurons (every third), so
    // the flipped potential shows up in the spike record; bit 12 is
    // far above the integrate threshold, forcing an early fire.
    FaultEvent seu;
    seu.kind = FaultKind::PotentialFlip;
    seu.tick = 9;
    seu.core = 1;
    seu.neuron = 6;
    seu.bit = 12;
    seu.instance = 1;
    auto plan = std::make_shared<FaultPlan>();
    plan->events.push_back(seu);

    auto faulty =
        makeSim(w, EngineKind::Event, 0, false, kLanes, plan);
    for (uint32_t i = 0; i < kLanes; ++i)
        addLaneSource(*faulty, w, i, i);
    faulty->run(kTicks);
    EXPECT_EQ(faulty->chip().faultStats().seuFlips, 1u);

    const std::vector<OutputSpike> &a = clean->recorder().spikes();
    const std::vector<OutputSpike> &b = faulty->recorder().spikes();
    // The flip perturbs lane 1 and only lane 1: every other lane's
    // stream is untouched — the isolation the shared-crossbar layout
    // must preserve.
    EXPECT_NE(laneStream(a, 1), laneStream(b, 1));
    for (uint32_t i : {0u, 2u, 3u})
        EXPECT_EQ(laneStream(a, i), laneStream(b, i)) << "lane " << i;
}

// ---------------------------------------------------------------------------
// Classifier front-end: batched serving vs one-at-a-time
// ---------------------------------------------------------------------------

ClassifierOptions
digitOptions(uint32_t lanes, uint32_t window = 64)
{
    ClassifierOptions opt;
    opt.window = window;
    opt.instances = lanes;
    return opt;
}

TEST(InstanceBatch, ClassifyBatchMatchesSequentialClassify)
{
    Dataset data = makeGaussianDigits(6, 6, 30, 0.07, 211);
    Dataset train, test;
    data.split(4, train, test);
    QuantizedModel qm = quantize(trainPerceptron(train, 10, 5));

    const uint32_t kLanes = 8;
    SpikingClassifier batched(qm, digitOptions(kLanes));
    SpikingClassifier single(qm, digitOptions(1));

    // Full batch, then the uneven tail of a request stream: trailing
    // lanes idle, predictions still lane-for-lane identical to a
    // fresh single-instance classify of each sample.
    for (size_t n : {size_t{kLanes}, size_t{3}, size_t{1}}) {
        ASSERT_GE(test.samples.size(), n);
        std::vector<Sample> batch(test.samples.begin(),
                                  test.samples.begin() +
                                      static_cast<ptrdiff_t>(n));
        std::vector<uint32_t> preds = batched.classifyBatch(batch);
        ASSERT_EQ(preds.size(), n);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(preds[i], single.classify(batch[i]))
                << "batch size " << n << " lane " << i;
    }
}

TEST(InstanceBatch, WideWindowFallbackMatchesSequential)
{
    // window > 64 exceeds one offset-mask word, so scheduleBatch
    // takes the per-lane path and the tail sort; predictions must
    // not depend on which scheduling route ran.
    Dataset data = makeGaussianDigits(4, 5, 24, 0.08, 307);
    Dataset train, test;
    data.split(4, train, test);
    QuantizedModel qm = quantize(trainPerceptron(train, 10, 5));

    SpikingClassifier batched(qm, digitOptions(4, 96));
    SpikingClassifier single(qm, digitOptions(1, 96));
    std::vector<Sample> batch(test.samples.begin(),
                              test.samples.begin() + 4);
    std::vector<uint32_t> preds = batched.classifyBatch(batch);
    for (size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(preds[i], single.classify(batch[i])) << i;
}

TEST(InstanceBatch, EvaluateThroughputModeMatchesSequential)
{
    Dataset data = makeGaussianDigits(5, 6, 26, 0.07, 401);
    Dataset train, test;
    data.split(4, train, test);
    QuantizedModel qm = quantize(trainPerceptron(train, 10, 5));

    SpikingClassifier batched(qm, digitOptions(8));
    SpikingClassifier single(qm, digitOptions(1));
    // test set size is not a multiple of 8, so the tail pass runs
    // short inside evaluate().
    ASSERT_NE(test.samples.size() % 8, 0u);
    EvalResult br = batched.evaluate(test);
    EvalResult sr = single.evaluate(test);
    EXPECT_EQ(br.samples, sr.samples);
    EXPECT_DOUBLE_EQ(br.accuracy, sr.accuracy);
    EXPECT_EQ(br.meanPerInference.inputSpikes,
              sr.meanPerInference.inputSpikes);
    EXPECT_EQ(br.meanPerInference.outputSpikes,
              sr.meanPerInference.outputSpikes);
}

// ---------------------------------------------------------------------------
// Snapshot: lane-count and version mismatches reject with diagnostics
// ---------------------------------------------------------------------------

TEST(InstanceSnapshot, LaneCountMismatchRejects)
{
    bench::CorticalWorkload w = tappedWorkload(2, 5);
    auto src = makeSim(w, EngineKind::Event, 0, false, 2);
    for (uint32_t i = 0; i < 2; ++i)
        addLaneSource(*src, w, i, i);
    src->run(10);
    JsonValue snap = src->snapshot();

    auto wider = makeSim(w, EngineKind::Event, 0, false, 4);
    for (uint32_t i = 0; i < 2; ++i)
        addLaneSource(*wider, w, i, i);
    std::string err;
    EXPECT_FALSE(wider->restore(snap, &err));
    EXPECT_NE(err.find("instances"), std::string::npos) << err;

    auto same = makeSim(w, EngineKind::Event, 0, false, 2);
    for (uint32_t i = 0; i < 2; ++i)
        addLaneSource(*same, w, i, i);
    err.clear();
    EXPECT_TRUE(same->restore(snap, &err)) << err;
    same->run(10);
    src->run(10);
    EXPECT_EQ(same->recorder().spikes(), src->recorder().spikes());
}

TEST(InstanceSnapshot, PreInstanceVersionRejects)
{
    bench::CorticalWorkload w = tappedWorkload(2, 5);
    auto src = makeSim(w, EngineKind::Event, 0, false, 2);
    for (uint32_t i = 0; i < 2; ++i)
        addLaneSource(*src, w, i, i);
    src->run(10);
    JsonValue snap = src->snapshot();
    snap.set("version", JsonValue::integer(1));

    std::string err;
    EXPECT_FALSE(src->restore(snap, &err));
    EXPECT_NE(err.find("version 1"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// ScheduleSource tail sort and the offset-mask encoder
// ---------------------------------------------------------------------------

std::vector<InputSpike>
drain(ScheduleSource &s, uint64_t from, uint64_t to)
{
    std::vector<InputSpike> out;
    for (uint64_t t = from; t < to; ++t)
        s.spikesFor(t, out);
    return out;
}

TEST(ScheduleSourceSort, OutOfOrderAddsDrainStably)
{
    // Narrow tick range takes the counting-sort route; per-tick
    // insertion order must survive (axon encodes insertion rank).
    ScheduleSource narrow;
    uint32_t rank = 0;
    for (uint64_t tick : {9ull, 3ull, 9ull, 0ull, 3ull, 9ull})
        narrow.add(tick, InputSpike{0, rank++, 0});
    std::vector<InputSpike> got = drain(narrow, 0, 10);
    std::vector<uint32_t> order;
    for (const InputSpike &s : got)
        order.push_back(s.axon);
    EXPECT_EQ(order, (std::vector<uint32_t>{3, 1, 4, 0, 2, 5}));

    // Wide range falls back to stable_sort; same contract.
    ScheduleSource wide;
    rank = 0;
    for (uint64_t tick : {50000ull, 7ull, 50000ull, 7ull})
        wide.add(tick, InputSpike{0, rank++, 0});
    got = drain(wide, 0, 8);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].axon, 1u);
    EXPECT_EQ(got[1].axon, 3u);
    got.clear();
    wide.spikesFor(50000, got);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].axon, 0u);
    EXPECT_EQ(got[1].axon, 2u);
}

TEST(ScheduleSourceSort, DiscardBeforeSortsThenDrops)
{
    ScheduleSource s;
    s.add(6, InputSpike{0, 0, 0});
    s.add(2, InputSpike{0, 1, 0});  // dirties the prefix
    s.add(4, InputSpike{0, 2, 0});
    s.discardBefore(4);
    EXPECT_EQ(s.size(), 2u);
    std::vector<InputSpike> got = drain(s, 0, 8);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].axon, 2u);
    EXPECT_EQ(got[1].axon, 0u);
}

TEST(Encoder, RateMaskMatchesEncodeRate)
{
    for (uint32_t window : {1u, 7u, 33u, 64u}) {
        for (double v : {0.0, 0.1, 0.25, 1.0 / 3.0, 0.5, 0.73, 1.0}) {
            uint64_t mask = encodeRateMask(v, window);
            std::vector<uint32_t> ticks = encodeRate(v, window);
            uint64_t expect = 0;
            for (uint32_t t : ticks)
                expect |= 1ull << t;
            EXPECT_EQ(mask, expect)
                << "v=" << v << " window=" << window;
        }
    }
}

} // namespace
} // namespace nscs
